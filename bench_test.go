// Package repro's root benchmark harness regenerates every table and
// figure of the paper's evaluation as a testing.B benchmark. Each bench
// runs the corresponding experiment end to end on the simulation
// substrate and reports domain-specific metrics alongside wall time:
// failed requests per recovery, recovery milliseconds, goodput, and so
// on. Run with:
//
//	go test -bench=. -benchmem
//
// The benches use quick-mode experiment scaling; cmd/experiments runs the
// full-scale versions and prints the complete paper-style tables.
package repro

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ebid"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/store/db"
	"repro/internal/store/session"
	"repro/internal/workload"
)

var benchOpts = experiments.Options{Quick: true, Seed: 42}

// BenchmarkTable1_WorkloadMix regenerates the client workload mix table.
func BenchmarkTable1_WorkloadMix(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.Table1(benchOpts)
		b.ReportMetric(float64(r.Total)/float64(b.N), "requests")
	}
}

// BenchmarkTable2_FaultRecoveryMatrix regenerates the worst-case recovery
// matrix: all 26 fault rows, each driven through the recursive policy.
func BenchmarkTable2_FaultRecoveryMatrix(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.Table2(benchOpts)
		match := 0
		for _, row := range r.Rows {
			if row.Match {
				match++
			}
		}
		b.ReportMetric(float64(match), "rows-matching-paper")
	}
}

// BenchmarkTable3_RecoveryTimes measures per-component µRB times under
// load (10 trials per component).
func BenchmarkTable3_RecoveryTimes(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.Table3(benchOpts)
		var ejbTotal time.Duration
		var n int
		for _, row := range r.Rows {
			if row.Component != "WAR" && row.Component != "eBid" && row.Component != "JVM restart" {
				ejbTotal += row.Total
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(float64(ejbTotal.Milliseconds())/float64(n), "avg-EJB-µRB-ms")
		}
	}
}

// BenchmarkFigure1_TawTimeline runs the 3-fault Taw comparison and
// reports the failed-request ratio (paper: ~50x).
func BenchmarkFigure1_TawTimeline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure1(benchOpts)
		if r.MicroFailedReqs > 0 {
			b.ReportMetric(float64(r.RestartFailedReqs)/float64(r.MicroFailedReqs), "restart/µRB-failed-ratio")
		}
		b.ReportMetric(r.MicroAvgPerRecovery, "failed-per-µRB")
	}
}

// BenchmarkFigure2_FunctionalDisruption measures per-group disruption
// around one recovery event.
func BenchmarkFigure2_FunctionalDisruption(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure2(benchOpts)
		b.ReportMetric(r.RestartTotalDown.Seconds(), "restart-total-outage-s")
		b.ReportMetric(r.MicroTotalDown.Seconds(), "µRB-total-outage-s")
	}
}

// BenchmarkFigure3_FailoverNormalLoad runs the cluster failover
// experiment across cluster sizes.
func BenchmarkFigure3_FailoverNormalLoad(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure3(benchOpts)
		if len(r.Rows) > 0 {
			b.ReportMetric(float64(r.Rows[0].MicroFailed), "µRB-failed@2nodes")
			b.ReportMetric(float64(r.Rows[0].RestartFailed), "restart-failed@2nodes")
		}
	}
}

// BenchmarkFigure4_FailoverDoubledLoad runs the doubled-load failover
// experiment (response-time series).
func BenchmarkFigure4_FailoverDoubledLoad(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure4(benchOpts)
		if len(r.Rows) > 0 {
			b.ReportMetric(r.Rows[0].RestartPeak.Seconds(), "restart-peak-latency-s@2nodes")
			b.ReportMetric(r.Rows[0].MicroPeak.Seconds(), "µRB-peak-latency-s@2nodes")
		}
	}
}

// BenchmarkTable4_Over8s counts requests exceeding the 8-second
// abandonment threshold during doubled-load failover.
func BenchmarkTable4_Over8s(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.Table4(benchOpts)
		if len(r.Rows) > 0 {
			b.ReportMetric(float64(r.Rows[0].RestartOver8s), "restart-over8s@2nodes")
			b.ReportMetric(float64(r.Rows[0].MicroOver8s), "µRB-over8s@2nodes")
		}
	}
}

// BenchmarkTable5_PerformanceImpact measures fault-free throughput and
// latency across the four configurations.
func BenchmarkTable5_PerformanceImpact(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.Table5(benchOpts)
		b.ReportMetric(r.Rows[1].Throughput, "µRB+FastS-req/s")
		b.ReportMetric(float64(r.Rows[1].MeanLatency.Microseconds())/1000, "µRB+FastS-latency-ms")
		b.ReportMetric(float64(r.Rows[3].MeanLatency.Microseconds())/1000, "µRB+SSM-latency-ms")
	}
}

// BenchmarkTable6_RetryMasking measures HTTP/1.1 Retry-After masking of
// microreboots.
func BenchmarkTable6_RetryMasking(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.Table6(benchOpts)
		var noRetry, retry float64
		for _, row := range r.Rows {
			noRetry += row.NoRetry
			retry += row.Retry
		}
		b.ReportMetric(noRetry/float64(len(r.Rows)), "failed-no-retry")
		b.ReportMetric(retry/float64(len(r.Rows)), "failed-with-retry")
	}
}

// BenchmarkFigure5_DetectionTime sweeps the failure-detection delay.
func BenchmarkFigure5_DetectionTime(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure5Left(benchOpts)
		b.ReportMetric(r.CrossoverTdet.Seconds(), "crossover-Tdet-s")
	}
}

// BenchmarkFigure5_FalsePositives computes the false-positive tolerance
// curve from measured per-recovery costs.
func BenchmarkFigure5_FalsePositives(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure5Right(78, 3917)
		b.ReportMetric(r.ToleratedFPRate*100, "tolerated-FP-%")
	}
}

// BenchmarkFigure6_Microrejuvenation runs the leak + rejuvenation
// experiment in both modes.
func BenchmarkFigure6_Microrejuvenation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure6(benchOpts)
		b.ReportMetric(float64(r.MicroFailed), "µRB-rejuv-failed")
		b.ReportMetric(float64(r.RestartFailed), "restart-rejuv-failed")
	}
}

// BenchmarkSection61_FailoverSchemes compares failover schemes and the
// six-nines budgets.
func BenchmarkSection61_FailoverSchemes(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fig1 := &experiments.Figure1Result{MicroAvgPerRecovery: 78, RestartAvgPerRecovery: 3917}
		fig3 := experiments.Figure3(benchOpts)
		r := experiments.Section61(benchOpts, fig1, fig3)
		b.ReportMetric(float64(r.BudgetNoFailoverMicro), "six-nines-budget-µRB")
		b.ReportMetric(float64(r.BudgetRestart), "six-nines-budget-restart")
	}
}

// BenchmarkAblation_SentinelDelay sweeps the sentinel-to-crash grace
// delay — the tradeoff the paper measured at one point (200 ms) but left
// unanalyzed.
func BenchmarkAblation_SentinelDelay(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.AblationDelay(benchOpts, "")
		b.ReportMetric(float64(r.BestDelay.Milliseconds()), "best-delay-ms")
		b.ReportMetric(r.Rows[0].FailedPerRB, "failed-no-delay")
	}
}

// ----------------------------------------------------- store micro-benches

// singleLockStore is the pre-stripe FastS design — one RWMutex guarding
// one map — kept here as the baseline the striped FastS is measured
// against in the parallel benchmarks.
type singleLockStore struct {
	mu       sync.RWMutex
	sessions map[string]*session.Session
}

func newSingleLockStore() *singleLockStore {
	return &singleLockStore{sessions: map[string]*session.Session{}}
}

func (s *singleLockStore) Name() string                 { return "SingleLock" }
func (s *singleLockStore) SurvivesProcessRestart() bool { return false }

func (s *singleLockStore) Read(id string) (*session.Session, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, session.ErrNotFound
	}
	return sess.Clone(), nil
}

func (s *singleLockStore) Write(sess *session.Session) error {
	if sess == nil || sess.ID == "" {
		return errors.New("bench: Write requires an ID")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sessions[sess.ID] = sess.Clone()
	return nil
}

func (s *singleLockStore) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.sessions, id)
	return nil
}

func (s *singleLockStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sessions)
}

var _ session.Store = (*singleLockStore)(nil)

// benchStores builds one instance of every store under test.
func benchStores(b *testing.B) map[string]session.Store {
	b.Helper()
	cl, err := session.NewSSMCluster(session.ClusterConfig{Shards: 4, Replicas: 3, WriteQuorum: 2})
	if err != nil {
		b.Fatal(err)
	}
	return map[string]session.Store{
		"SingleLock": newSingleLockStore(),
		"FastS":      session.NewFastS(),
		"SSM":        session.NewSSM(nil, 0),
		"SSMCluster": cl,
	}
}

// benchStoreOrder fixes sub-benchmark ordering (maps iterate randomly).
var benchStoreOrder = []string{"SingleLock", "FastS", "SSM", "SSMCluster"}

const benchSessionPop = 1024

// benchIDs precomputes the session-id table so read benchmarks measure
// the store, not fmt.Sprintf.
var benchIDs = func() [benchSessionPop]string {
	var ids [benchSessionPop]string
	for i := range ids {
		ids[i] = fmt.Sprintf("sess-%d", i)
	}
	return ids
}()

func benchID(i int) string { return benchIDs[i%benchSessionPop] }

func benchSession(i int) *session.Session {
	return &session.Session{
		ID:     benchID(i),
		UserID: int64(i + 1),
		Data:   map[string]string{"cart": "open", "step": "2"},
		Items:  []int64{7, 9},
	}
}

func populate(b *testing.B, s session.Store) {
	b.Helper()
	for i := 0; i < benchSessionPop; i++ {
		if err := s.Write(benchSession(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreSequentialWrite measures single-goroutine write latency
// per store backend.
func BenchmarkStoreSequentialWrite(b *testing.B) {
	stores := benchStores(b)
	for _, name := range benchStoreOrder {
		s := stores[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := s.Write(benchSession(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreSequentialRead measures single-goroutine read latency.
func BenchmarkStoreSequentialRead(b *testing.B) {
	stores := benchStores(b)
	for _, name := range benchStoreOrder {
		s := stores[name]
		populate(b, s)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Read(benchID(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreParallelRead is the contention benchmark: many readers on
// a shared store. On multi-core hardware the striped FastS beats the
// single-lock baseline here — readers of different sessions no longer
// serialize on one RWMutex cache line (on a single-core runner the two
// are equivalent, since nothing actually contends).
func BenchmarkStoreParallelRead(b *testing.B) {
	stores := benchStores(b)
	for _, name := range benchStoreOrder {
		s := stores[name]
		populate(b, s)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var off int64
			b.RunParallel(func(pb *testing.PB) {
				// Offset each goroutine so readers spread across the key
				// space instead of marching in lockstep.
				i := int(atomic.AddInt64(&off, 251))
				for pb.Next() {
					i++
					if _, err := s.Read(benchID(i)); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkStoreParallelWrite measures write throughput under contention.
func BenchmarkStoreParallelWrite(b *testing.B) {
	stores := benchStores(b)
	for _, name := range benchStoreOrder {
		s := stores[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var off int64
			b.RunParallel(func(pb *testing.PB) {
				i := int(atomic.AddInt64(&off, 251))
				for pb.Next() {
					i++
					if err := s.Write(benchSession(i)); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// ---------------------------------------------------------- LB routing

// benchLB builds an 8-node cluster behind a balancer for routing
// micro-benches (the routing decision only — nothing is submitted).
func benchLB(b *testing.B, policy cluster.RoutingPolicy) *cluster.LoadBalancer {
	b.Helper()
	k := sim.NewKernel(1)
	d := db.New(nil)
	ds := ebid.DatasetConfig{Users: 50, Items: 100, BidsPerItem: 2, Categories: 5, Regions: 5, OldItems: 10}
	if err := ebid.LoadDataset(d, ds); err != nil {
		b.Fatal(err)
	}
	nodes := make([]*cluster.Node, 0, 8)
	for i := 0; i < 8; i++ {
		n, err := cluster.NewNode(k, d, session.NewFastS(), cluster.NodeConfig{
			Name: fmt.Sprintf("bench-n%d", i), Dataset: ds,
		})
		if err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	lb := cluster.NewLoadBalancer(nodes)
	if policy != nil {
		lb.SetPolicy(policy)
	}
	return lb
}

// BenchmarkLBRouteNew measures the per-request routing decision for a
// session-free request (no affinity hit) under each policy over 8
// nodes. benchdiff tracks the policies' relative cost.
func BenchmarkLBRouteNew(b *testing.B) {
	policies := []struct {
		name   string
		policy cluster.RoutingPolicy
	}{
		{"RoundRobin", nil},
		{"LeastLoaded", cluster.LeastLoadedPolicy{}},
		{"ShedLeastLoaded", &cluster.SheddingPolicy{Inner: cluster.LeastLoadedPolicy{}}},
	}
	for _, p := range policies {
		b.Run(p.name, func(b *testing.B) {
			lb := benchLB(b, p.policy)
			req := &workload.Request{Op: ebid.ViewItem, SessionID: "bench-anon"}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := lb.Route(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLBRouteAffinity measures the sticky-session fast path.
func BenchmarkLBRouteAffinity(b *testing.B) {
	lb := benchLB(b, nil)
	for i := 0; i < 64; i++ {
		if _, err := lb.Route(&workload.Request{Op: ebid.OpHome, SessionID: fmt.Sprintf("bench-s%d", i)}); err != nil {
			b.Fatal(err)
		}
	}
	req := &workload.Request{Op: ebid.AboutMe, SessionID: "bench-s7"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lb.Route(req); err != nil {
			b.Fatal(err)
		}
	}
}

// ----------------------------------------------------- invoke hot path

// benchApp builds a loaded eBid app with one authenticated session for
// the end-to-end invoke benchmarks.
func benchApp(b *testing.B) *ebid.App {
	b.Helper()
	d := db.New(nil)
	ds := ebid.DatasetConfig{Users: 50, Items: 100, BidsPerItem: 2, Categories: 5, Regions: 5, OldItems: 10}
	if err := ebid.LoadDataset(d, ds); err != nil {
		b.Fatal(err)
	}
	app, err := ebid.New(d, session.NewFastS(), nil)
	if err != nil {
		b.Fatal(err)
	}
	auth := &core.Call{Op: ebid.Authenticate, SessionID: "bench-sess", Args: core.ArgMap{"user": int64(1)}}
	if _, err := app.Execute(context.Background(), auth); err != nil {
		b.Fatal(err)
	}
	return app
}

// BenchmarkInvokeOpsPerSec measures the end-to-end invocation pipeline —
// WAR dispatch, interceptors, shepherd tracking, session/entity hops —
// at steady state, with no faults injected. This is the Table 5 question
// asked of the implementation itself: what does the microreboot plumbing
// cost per request?
func BenchmarkInvokeOpsPerSec(b *testing.B) {
	app := benchApp(b)
	ctx := context.Background()
	b.Run("ViewItem", func(b *testing.B) {
		args := &ebid.OpArgs{Item: 1}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			call := core.NewCall(ebid.ViewItem, "", args, 0)
			if _, err := app.Execute(ctx, call); err != nil {
				b.Fatal(err)
			}
			call.Release()
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
	})
	b.Run("AboutMe", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			call := core.NewCall(ebid.AboutMe, "bench-sess", nil, 0)
			if _, err := app.Execute(ctx, call); err != nil {
				b.Fatal(err)
			}
			call.Release()
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
	})
	b.Run("ViewItemParallel", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			args := &ebid.OpArgs{Item: 1}
			for pb.Next() {
				call := core.NewCall(ebid.ViewItem, "", args, 0)
				if _, err := app.Execute(ctx, call); err != nil {
					b.Error(err)
					return
				}
				call.Release()
			}
		})
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
	})
}

// benchAppSessions builds a loaded eBid app with n authenticated
// sessions ("bench-p0" … "bench-pN-1") so parallel benchmarks can spread
// goroutines across distinct sessions, the way production traffic looks.
func benchAppSessions(b *testing.B, n int) *ebid.App {
	b.Helper()
	d := db.New(nil)
	ds := ebid.DatasetConfig{Users: 50, Items: 100, BidsPerItem: 2, Categories: 5, Regions: 5, OldItems: 10}
	if err := ebid.LoadDataset(d, ds); err != nil {
		b.Fatal(err)
	}
	app, err := ebid.New(d, session.NewFastS(), nil)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		auth := &core.Call{
			Op:        ebid.Authenticate,
			SessionID: fmt.Sprintf("bench-p%d", i),
			Args:      core.ArgMap{"user": int64(i%50 + 1)},
		}
		if _, err := app.Execute(context.Background(), auth); err != nil {
			b.Fatal(err)
		}
	}
	return app
}

// benchReadHeavyOp issues the i-th op of the read-dominated mix —
// roughly the eBid browse/view traffic shape: item views dominate, with
// user views, bid histories, and the session-backed AboutMe mixed in.
// exec is app.Execute, or the batching lane's Do wrapping it.
func benchReadHeavyOp(ctx context.Context, b *testing.B, exec func(context.Context, *core.Call) (string, error), sid string, args *ebid.OpArgs, i int) bool {
	*args = ebid.OpArgs{}
	var op string
	switch i % 8 {
	case 0, 1, 2, 3:
		op = ebid.ViewItem
		args.Item = int64(i%100 + 1)
	case 4, 5:
		op = ebid.ViewUserInfo
		args.User = int64(i%50 + 1)
	case 6:
		op = ebid.ViewBidHistory
		args.Item = int64(i%100 + 1)
	default:
		op = ebid.AboutMe
	}
	call := core.NewCall(op, sid, args, 0)
	_, err := exec(ctx, call)
	call.Release()
	if err != nil {
		b.Error(err)
		return false
	}
	return true
}

// BenchmarkInvokeOpsPerSecParallel runs the invoke pipeline the way
// production traffic looks: many goroutines, distinct sessions, a
// read-dominated mix. ReadHeavySerial is the single-goroutine baseline
// for the same mix, so the ops/s ratio between the two sub-benches is the
// read-path concurrency win (on a multi-core runner; a single-core
// container shows ~1x by construction). Mixed90 adds ~10% writing ops,
// whose commits take the store's exclusive lock; write conflicts on the
// id-sequence row are fail-fast retries in the crash-only design, and
// count as work here, not failures.
func BenchmarkInvokeOpsPerSecParallel(b *testing.B) {
	const sessions = 64
	ctx := context.Background()
	b.Run("ReadHeavySerial", func(b *testing.B) {
		app := benchAppSessions(b, sessions)
		args := &ebid.OpArgs{}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !benchReadHeavyOp(ctx, b, app.Execute, "bench-p0", args, i) {
				return
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
	})
	b.Run("ReadHeavy", func(b *testing.B) {
		app := benchAppSessions(b, sessions)
		var gid int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			g := atomic.AddInt64(&gid, 1)
			sid := fmt.Sprintf("bench-p%d", g%sessions)
			args := &ebid.OpArgs{}
			// Offset per goroutine so the mix phases don't march in
			// lockstep across goroutines.
			i := int(g * 251)
			for pb.Next() {
				i++
				if !benchReadHeavyOp(ctx, b, app.Execute, sid, args, i) {
					return
				}
			}
		})
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
	})
	// The Herd pair measures the micro-batching lane under its design
	// load: waves of simultaneous same-session arrivals (a flash crowd on
	// one hot auction — bid-sniping traffic). Closed-loop RunParallel
	// can't produce this shape: the scheduler time-multiplexes the
	// goroutines, so same-shard requests almost never overlap. Each
	// iteration here releases one wave of herdSize concurrent requests on
	// a single session and waits for all of them; ReadHeavyHerd is the
	// lane-off control, and the ops/s delta to ReadHeavyHerdBatched is
	// the lock-combining win.
	const herdSize = 32
	herdWaves := func(b *testing.B, mkExec func(*ebid.App) func(context.Context, *core.Call) (string, error)) {
		app := benchAppSessions(b, sessions)
		exec := mkExec(app)
		argSlots := make([]ebid.OpArgs, herdSize)
		b.ReportAllocs()
		b.ResetTimer()
		for wave := 0; wave < b.N; wave++ {
			var wg sync.WaitGroup
			wg.Add(herdSize)
			for k := 0; k < herdSize; k++ {
				go func(k int) {
					defer wg.Done()
					benchReadHeavyOp(ctx, b, exec, "bench-p0", &argSlots[k], wave*herdSize+k)
				}(k)
			}
			wg.Wait()
		}
		b.ReportMetric(float64(b.N*herdSize)/b.Elapsed().Seconds(), "ops/s")
	}
	b.Run("ReadHeavyHerd", func(b *testing.B) {
		herdWaves(b, func(app *ebid.App) func(context.Context, *core.Call) (string, error) {
			return app.Execute
		})
	})
	b.Run("ReadHeavyHerdBatched", func(b *testing.B) {
		var lane *workload.Batcher
		herdWaves(b, func(app *ebid.App) func(context.Context, *core.Call) (string, error) {
			lane = workload.NewBatcher(app.Execute, 8)
			return lane.Do
		})
		direct, batched, bypassed := lane.Stats()
		if total := direct + batched + bypassed; total > 0 {
			b.ReportMetric(float64(batched)/float64(total), "batched-frac")
		}
	})
	b.Run("Mixed90", func(b *testing.B) {
		app := benchAppSessions(b, sessions)
		var gid int64
		var conflicts int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			g := atomic.AddInt64(&gid, 1)
			sid := fmt.Sprintf("bench-p%d", g%sessions)
			args := &ebid.OpArgs{}
			i := int(g * 251)
			for pb.Next() {
				i++
				if i%10 != 9 {
					if !benchReadHeavyOp(ctx, b, app.Execute, sid, args, i) {
						return
					}
					continue
				}
				*args = ebid.OpArgs{Category: 1}
				call := core.NewCall(ebid.RegisterNewItem, sid, args, 0)
				_, err := app.Execute(ctx, call)
				call.Release()
				if err != nil {
					if errors.Is(err, db.ErrConflict) {
						atomic.AddInt64(&conflicts, 1)
						continue
					}
					b.Error(err)
					return
				}
			}
		})
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		b.ReportMetric(float64(atomic.LoadInt64(&conflicts))/float64(b.N), "conflicts/op")
	})
}

// BenchmarkStoreTxCommit measures transaction commit latency against a
// mirrored WAL sink — the path group commit batches.
func BenchmarkStoreTxCommit(b *testing.B) {
	newBenchDB := func(b *testing.B) *db.DB {
		d := db.New(db.NewWALWithSink(io.Discard))
		err := d.CreateTable(db.Schema{Name: "t", Columns: []db.Column{{Name: "v", Type: db.Int}}})
		if err != nil {
			b.Fatal(err)
		}
		return d
	}
	b.Run("Sequential", func(b *testing.B) {
		d := newBenchDB(b)
		row := db.Row{"v": int64(1)}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tx, err := d.Begin()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := tx.Insert("t", row); err != nil {
				b.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Parallel", func(b *testing.B) {
		d := newBenchDB(b)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			row := db.Row{"v": int64(1)}
			for pb.Next() {
				tx, err := d.Begin()
				if err != nil {
					b.Error(err)
					return
				}
				if _, err := tx.Insert("t", row); err != nil {
					b.Error(err)
					return
				}
				if err := tx.Commit(); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
}

// BenchmarkFigureFleet_Routing regenerates the fleet routing comparison
// (round-robin collapse vs shedding + least-loaded) and reports the p99
// gap as the domain metric.
func BenchmarkFigureFleet_Routing(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.FigureFleet(benchOpts)
		b.ReportMetric(float64(r.RoundRobin.P99.Milliseconds()), "rr-p99-ms")
		b.ReportMetric(float64(r.Routed.P99.Milliseconds()), "routed-p99-ms")
		b.ReportMetric(float64(r.Routed.Shed), "shed")
	}
}
