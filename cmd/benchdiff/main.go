// Command benchdiff compares two benchmark runs captured as test2json
// event streams (the BENCH_PR.json artifacts CI uploads per run) and
// flags per-benchmark ns/op movements beyond a threshold — the trend
// tracker that turns the per-commit artifacts into an actual perf gate.
//
// Usage:
//
//	benchdiff -old baseline/BENCH_PR.json -new BENCH_PR.json [-threshold 20] [-fail]
//
// Output is one line per benchmark movement, plus GitHub workflow
// annotations (::error:: for regressions, ::notice:: for improvements)
// so the movements surface on the run page. With -fail, any regression
// beyond the threshold exits non-zero.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of test2json's record benchdiff needs.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// benchLine matches a benchmark result line inside an output event, e.g.
// "BenchmarkStoreRead/SSMCluster-4   9246   129797 ns/op  2 extra".
// The -N GOMAXPROCS suffix is stripped so runs from different machines
// stay comparable.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBench extracts benchmark → ns/op from a test2json stream. A
// benchmark that appears more than once (reruns) keeps its last value.
func parseBench(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			// Tolerate non-JSON noise (interleaved tool output).
			continue
		}
		if ev.Action != "output" {
			continue
		}
		m := benchLine.FindStringSubmatch(strings.TrimSpace(ev.Output))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		out[ev.Package+"."+m[1]] = ns
	}
	return out, sc.Err()
}

// movement is one benchmark's old→new comparison.
type movement struct {
	name     string
	oldNs    float64
	newNs    float64
	deltaPct float64
}

// diff compares two parsed runs and returns the movements for
// benchmarks present in both, sorted worst-regression first.
func diff(oldRun, newRun map[string]float64) (moves []movement, onlyOld, onlyNew []string) {
	for name, oldNs := range oldRun {
		newNs, ok := newRun[name]
		if !ok {
			onlyOld = append(onlyOld, name)
			continue
		}
		deltaPct := 0.0
		if oldNs > 0 {
			deltaPct = (newNs - oldNs) / oldNs * 100
		}
		moves = append(moves, movement{name: name, oldNs: oldNs, newNs: newNs, deltaPct: deltaPct})
	}
	for name := range newRun {
		if _, ok := oldRun[name]; !ok {
			onlyNew = append(onlyNew, name)
		}
	}
	sort.Slice(moves, func(i, j int) bool {
		if moves[i].deltaPct != moves[j].deltaPct {
			return moves[i].deltaPct > moves[j].deltaPct
		}
		return moves[i].name < moves[j].name
	})
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return moves, onlyOld, onlyNew
}

func parseFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseBench(f)
}

func main() {
	oldPath := flag.String("old", "", "baseline test2json bench stream")
	newPath := flag.String("new", "", "current test2json bench stream")
	threshold := flag.Float64("threshold", 20, "percent ns/op movement that counts as a regression/improvement")
	fail := flag.Bool("fail", false, "exit non-zero when any regression exceeds the threshold")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		os.Exit(2)
	}
	oldRun, err := parseFile(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newRun, err := parseFile(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if len(oldRun) == 0 {
		// An empty baseline (first run on a branch, artifact expired) is
		// not a regression; say so and succeed.
		fmt.Printf("benchdiff: baseline has no benchmark results; nothing to compare (%d current)\n", len(newRun))
		return
	}
	moves, onlyOld, onlyNew := diff(oldRun, newRun)
	regressions := 0
	for _, m := range moves {
		switch {
		case m.deltaPct > *threshold:
			regressions++
			fmt.Printf("::error::bench regression: %s %.0f → %.0f ns/op (%+.1f%%)\n",
				m.name, m.oldNs, m.newNs, m.deltaPct)
		case m.deltaPct < -*threshold:
			fmt.Printf("::notice::bench improvement: %s %.0f → %.0f ns/op (%+.1f%%)\n",
				m.name, m.oldNs, m.newNs, m.deltaPct)
		default:
			fmt.Printf("bench ok: %s %.0f → %.0f ns/op (%+.1f%%)\n",
				m.name, m.oldNs, m.newNs, m.deltaPct)
		}
	}
	for _, name := range onlyOld {
		fmt.Printf("bench removed: %s\n", name)
	}
	for _, name := range onlyNew {
		fmt.Printf("bench added: %s\n", name)
	}
	fmt.Printf("benchdiff: %d compared, %d regressions beyond %.0f%% (%d removed, %d added)\n",
		len(moves), regressions, *threshold, len(onlyOld), len(onlyNew))
	if *fail && regressions > 0 {
		os.Exit(1)
	}
}
