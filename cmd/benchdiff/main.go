// Command benchdiff compares two benchmark runs captured as test2json
// event streams (the BENCH_PR.json artifacts CI uploads per run) and
// flags per-benchmark ns/op and allocs/op movements beyond a threshold —
// the trend tracker that turns the per-commit artifacts into an actual
// perf gate.
//
// Usage:
//
//	benchdiff -old baseline/BENCH_PR.json -new BENCH_PR.json [-threshold 20] [-alloc-threshold 10] [-higher-better ops/s] [-fail]
//
// Output is one line per benchmark movement, plus GitHub workflow
// annotations (::error:: for regressions, ::notice:: for improvements)
// so the movements surface on the run page. With -fail, any regression
// beyond the thresholds exits non-zero. When both runs carry -benchmem
// columns, a benchmark that was allocation-free and now allocates is
// always a regression, regardless of percentage.
//
// Custom bench metrics (b.ReportMetric) are parsed off the bench line as
// "value unit" pairs. Units listed in -higher-better (default ops/s) are
// throughput-style gauges where DOWN is the regression: a drop beyond
// -threshold percent fails the gate even when ns/op looks flat (a
// parallel benchmark can lose throughput to contention without its
// per-iteration time moving much). Other custom units (domain gauges like
// requests or rr-p99-ms) are carried but never gated.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of test2json's record benchdiff needs.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// result is one benchmark's parsed metrics. bytes/allocs are only
// meaningful when hasMem is set (the run used -benchmem). metrics holds
// any custom b.ReportMetric columns by unit (e.g. "ops/s").
type result struct {
	ns      float64
	bytes   float64
	allocs  float64
	hasMem  bool
	metrics map[string]float64
}

// test2json frequently splits a benchmark line across two output events:
// first the bare name ("BenchmarkX/Sub-4"), then the counters
// ("  524792\t 1027 ns/op\t 12 B/op\t 1 allocs/op"). benchFull matches the
// single-line form, benchName/benchCounters the split form, which
// parseBench stitches back together per package. The -N GOMAXPROCS
// suffix is stripped so runs from different machines stay comparable —
// unless one artifact holds a -cpu sweep (several distinct counts), in
// which case the suffix is kept so each cpu point trends independently.
var (
	benchFull     = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)
	benchName     = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s*$`)
	benchCounters = regexp.MustCompile(`^\d+\s+([0-9.]+) ns/op(.*)$`)
	memBytes      = regexp.MustCompile(`([0-9.]+) B/op`)
	memAllocs     = regexp.MustCompile(`([0-9.]+) allocs/op`)
	// benchMetric matches every "value unit" column after ns/op; the
	// -benchmem units are filtered out when collecting custom metrics.
	benchMetric = regexp.MustCompile(`([0-9.eE+-]+) ([A-Za-z%][^\s]*)`)
)

// parseResult builds a result from the ns/op figure and the rest of the
// counter line (which holds the -benchmem columns when present).
func parseResult(nsText, rest string) (result, bool) {
	ns, err := strconv.ParseFloat(nsText, 64)
	if err != nil {
		return result{}, false
	}
	r := result{ns: ns}
	bm := memBytes.FindStringSubmatch(rest)
	am := memAllocs.FindStringSubmatch(rest)
	if bm != nil && am != nil {
		r.bytes, _ = strconv.ParseFloat(bm[1], 64)
		r.allocs, _ = strconv.ParseFloat(am[1], 64)
		r.hasMem = true
	}
	for _, m := range benchMetric.FindAllStringSubmatch(rest, -1) {
		unit := m[2]
		if unit == "B/op" || unit == "allocs/op" {
			continue
		}
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			continue
		}
		if r.metrics == nil {
			r.metrics = map[string]float64{}
		}
		r.metrics[unit] = v
	}
	return r, true
}

// benchRun is one parsed artifact: benchmark → result, plus the set of
// cpu counts its bench lines ran at (from the -N GOMAXPROCS suffix;
// lines without one ran at 1). The cpu set is what makes the trend gate
// runner-aware: diffing a 4-core baseline against a 1-core run is not a
// perf trend, and the gate skips rather than poisons itself.
type benchRun struct {
	results map[string]result
	cpus    map[string]bool
}

// cpuList renders the run's cpu counts, sorted, for messages.
func (r benchRun) cpuList() string {
	var cs []string
	for c := range r.cpus {
		cs = append(cs, c)
	}
	sort.Strings(cs)
	return strings.Join(cs, ",")
}

// sameCPUs reports whether two runs were taken at the same cpu counts.
func sameCPUs(a, b benchRun) bool {
	if len(a.cpus) != len(b.cpus) {
		return false
	}
	for c := range a.cpus {
		if !b.cpus[c] {
			return false
		}
	}
	return true
}

// cpuOf normalizes a "-N" suffix match to the cpu count it encodes (no
// suffix means the bench ran at one proc).
func cpuOf(suffix string) string {
	if suffix == "" {
		return "1"
	}
	return strings.TrimPrefix(suffix, "-")
}

// benchEntry is one parsed bench line, held until the whole stream is
// read: only then is it known whether the artifact is a -cpu sweep
// (suffixes kept in keys) or a single-count run (suffixes stripped).
type benchEntry struct {
	pkg, name, suffix string
	res               result
}

// parseBench extracts benchmark → result from a test2json stream. A
// benchmark that appears more than once (reruns) keeps its last value.
func parseBench(r io.Reader) (map[string]result, error) {
	run, err := parseBenchRun(r)
	return run.results, err
}

// parseBenchRun is parseBench plus the cpu-count set; main uses it so
// the gate can refuse cross-cpu diffs.
func parseBenchRun(r io.Reader) (benchRun, error) {
	run := benchRun{results: map[string]result{}, cpus: map[string]bool{}}
	var entries []benchEntry
	// pending holds the (name, suffix) seen on a name-only line, per
	// package, awaiting its counters line.
	type pendingName struct{ name, suffix string }
	pending := map[string]pendingName{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			// Tolerate non-JSON noise (interleaved tool output).
			continue
		}
		if ev.Action != "output" {
			continue
		}
		text := strings.TrimSpace(ev.Output)
		if m := benchFull.FindStringSubmatch(text); m != nil {
			if res, ok := parseResult(m[3], m[4]); ok {
				entries = append(entries, benchEntry{ev.Package, m[1], m[2], res})
			}
			delete(pending, ev.Package)
			continue
		}
		if m := benchName.FindStringSubmatch(text); m != nil {
			pending[ev.Package] = pendingName{m[1], m[2]}
			continue
		}
		if m := benchCounters.FindStringSubmatch(text); m != nil {
			p, ok := pending[ev.Package]
			if !ok {
				continue
			}
			if res, ok := parseResult(m[1], m[2]); ok {
				entries = append(entries, benchEntry{ev.Package, p.name, p.suffix, res})
			}
			delete(pending, ev.Package)
			continue
		}
	}
	for _, e := range entries {
		run.cpus[cpuOf(e.suffix)] = true
	}
	// A -cpu sweep keeps the suffix so each cpu point trends on its own;
	// a single-count run strips it so runs from machines with different
	// core counts stay comparable.
	sweep := len(run.cpus) > 1
	for _, e := range entries {
		key := e.pkg + "." + e.name
		if sweep {
			key += e.suffix
		}
		run.results[key] = e.res
	}
	return run, sc.Err()
}

// movement is one benchmark's old→new comparison.
type movement struct {
	name     string
	oldR     result
	newR     result
	deltaPct float64 // ns/op movement
	allocPct float64 // allocs/op movement; meaningful when hasMem
	// hasMem reports that both runs carried -benchmem columns, so the
	// alloc comparison is valid.
	hasMem bool
}

// allocRegressed reports whether the allocation movement alone counts as
// a regression: newly allocating on a previously allocation-free
// benchmark (any amount), or allocs/op up by more than threshold percent.
func (m movement) allocRegressed(threshold float64) bool {
	if !m.hasMem {
		return false
	}
	if m.oldR.allocs == 0 {
		return m.newR.allocs > 0
	}
	return m.allocPct > threshold
}

// hbPct returns the percentage movement of one higher-is-better custom
// metric, when both runs report it (negative means throughput dropped).
func (m movement) hbPct(unit string) (float64, bool) {
	oldV, okOld := m.oldR.metrics[unit]
	newV, okNew := m.newR.metrics[unit]
	if !okOld || !okNew || oldV <= 0 {
		return 0, false
	}
	return (newV - oldV) / oldV * 100, true
}

// hbRegressed reports whether any of the higher-is-better units dropped
// by more than threshold percent; hbImproved is the symmetric notice.
func (m movement) hbRegressed(units []string, threshold float64) bool {
	for _, u := range units {
		if pct, ok := m.hbPct(u); ok && pct < -threshold {
			return true
		}
	}
	return false
}

func (m movement) hbImproved(units []string, threshold float64) bool {
	for _, u := range units {
		if pct, ok := m.hbPct(u); ok && pct > threshold {
			return true
		}
	}
	return false
}

// diff compares two parsed runs and returns the movements for
// benchmarks present in both, sorted worst-regression first.
func diff(oldRun, newRun map[string]result) (moves []movement, onlyOld, onlyNew []string) {
	for name, oldR := range oldRun {
		newR, ok := newRun[name]
		if !ok {
			onlyOld = append(onlyOld, name)
			continue
		}
		m := movement{name: name, oldR: oldR, newR: newR, hasMem: oldR.hasMem && newR.hasMem}
		if oldR.ns > 0 {
			m.deltaPct = (newR.ns - oldR.ns) / oldR.ns * 100
		}
		if m.hasMem && oldR.allocs > 0 {
			m.allocPct = (newR.allocs - oldR.allocs) / oldR.allocs * 100
		}
		moves = append(moves, m)
	}
	for name := range newRun {
		if _, ok := oldRun[name]; !ok {
			onlyNew = append(onlyNew, name)
		}
	}
	sort.Slice(moves, func(i, j int) bool {
		if moves[i].deltaPct != moves[j].deltaPct {
			return moves[i].deltaPct > moves[j].deltaPct
		}
		return moves[i].name < moves[j].name
	})
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return moves, onlyOld, onlyNew
}

func parseFile(path string) (benchRun, error) {
	f, err := os.Open(path)
	if err != nil {
		return benchRun{}, err
	}
	defer f.Close()
	return parseBenchRun(f)
}

// describe renders one movement, appending the alloc column when both
// runs have it and any gated higher-is-better metrics both runs report.
func describe(m movement, hbUnits []string) string {
	s := fmt.Sprintf("%s %.0f → %.0f ns/op (%+.1f%%)", m.name, m.oldR.ns, m.newR.ns, m.deltaPct)
	if m.hasMem {
		s += fmt.Sprintf(", %.0f → %.0f allocs/op", m.oldR.allocs, m.newR.allocs)
	}
	for _, u := range hbUnits {
		if pct, ok := m.hbPct(u); ok {
			s += fmt.Sprintf(", %.0f → %.0f %s (%+.1f%%)", m.oldR.metrics[u], m.newR.metrics[u], u, pct)
		}
	}
	return s
}

func main() {
	oldPath := flag.String("old", "", "baseline test2json bench stream")
	newPath := flag.String("new", "", "current test2json bench stream")
	threshold := flag.Float64("threshold", 20, "percent ns/op movement that counts as a regression/improvement")
	allocThreshold := flag.Float64("alloc-threshold", 10, "percent allocs/op growth that counts as a regression (requires -benchmem in both runs)")
	higherBetter := flag.String("higher-better", "ops/s", "comma-separated custom metric units where a drop beyond -threshold percent is a regression")
	fail := flag.Bool("fail", false, "exit non-zero when any regression exceeds the thresholds")
	flag.Parse()
	var hbUnits []string
	for _, u := range strings.Split(*higherBetter, ",") {
		if u = strings.TrimSpace(u); u != "" {
			hbUnits = append(hbUnits, u)
		}
	}
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		os.Exit(2)
	}
	oldParsed, err := parseFile(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newParsed, err := parseFile(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	oldRun, newRun := oldParsed.results, newParsed.results
	if len(oldRun) == 0 {
		// An empty baseline (first run on a branch, artifact expired) is
		// not a regression; say so and succeed.
		fmt.Printf("benchdiff: baseline has no benchmark results; nothing to compare (%d current)\n", len(newRun))
		return
	}
	if !sameCPUs(oldParsed, newParsed) {
		// A runner change (different core count, or a sweep added/removed)
		// makes the trend meaningless: warn and skip the gate rather than
		// fail the PR or silently poison the trend with apples-to-oranges
		// percentages.
		fmt.Printf("::warning::benchdiff: cpu counts differ between runs (baseline at [%s], current at [%s]); skipping bench gate — perf trends across cpu counts are not comparable\n",
			oldParsed.cpuList(), newParsed.cpuList())
		return
	}
	moves, onlyOld, onlyNew := diff(oldRun, newRun)
	regressions := 0
	for _, m := range moves {
		switch {
		case m.deltaPct > *threshold:
			regressions++
			fmt.Printf("::error::bench regression: %s\n", describe(m, hbUnits))
		case m.allocRegressed(*allocThreshold):
			regressions++
			fmt.Printf("::error::bench alloc regression: %s\n", describe(m, hbUnits))
		case m.hbRegressed(hbUnits, *threshold):
			regressions++
			fmt.Printf("::error::bench throughput regression: %s\n", describe(m, hbUnits))
		case m.deltaPct < -*threshold || m.hbImproved(hbUnits, *threshold):
			fmt.Printf("::notice::bench improvement: %s\n", describe(m, hbUnits))
		default:
			fmt.Printf("bench ok: %s\n", describe(m, hbUnits))
		}
	}
	for _, name := range onlyOld {
		fmt.Printf("bench removed: %s\n", name)
	}
	for _, name := range onlyNew {
		fmt.Printf("bench added: %s\n", name)
	}
	fmt.Printf("benchdiff: %d compared, %d regressions beyond %.0f%% ns / %.0f%% allocs (%d removed, %d added)\n",
		len(moves), regressions, *threshold, *allocThreshold, len(onlyOld), len(onlyNew))
	if *fail && regressions > 0 {
		os.Exit(1)
	}
}
