package main

import (
	"strings"
	"testing"
)

const oldStream = `
{"Action":"output","Package":"repro","Output":"BenchmarkStoreRead/FastS-4   \t  500000\t      2100 ns/op\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkStoreRead/SSMCluster-4   \t  10000\t    130000 ns/op\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkGone-4 \t 100 \t 999 ns/op\n"}
{"Action":"run","Package":"repro"}
not json at all
{"Action":"output","Package":"repro","Output":"ok  \trepro\t1.2s\n"}
`

const newStream = `
{"Action":"output","Package":"repro","Output":"BenchmarkStoreRead/FastS-8   \t  500000\t      2700 ns/op\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkStoreRead/SSMCluster-8   \t  10000\t     90000 ns/op\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkFresh-8 \t 100 \t 50 ns/op\n"}
`

func TestParseBenchExtractsResults(t *testing.T) {
	got, err := parseBench(strings.NewReader(oldStream))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	if got["repro.BenchmarkStoreRead/FastS"] != 2100 {
		t.Fatalf("FastS = %v", got["repro.BenchmarkStoreRead/FastS"])
	}
	// The -N GOMAXPROCS suffix must not leak into the key.
	for name := range got {
		if strings.HasSuffix(name, "-4") {
			t.Fatalf("key kept its GOMAXPROCS suffix: %s", name)
		}
	}
}

func TestDiffFlagsRegressionsAndChurn(t *testing.T) {
	oldRun, _ := parseBench(strings.NewReader(oldStream))
	newRun, _ := parseBench(strings.NewReader(newStream))
	moves, onlyOld, onlyNew := diff(oldRun, newRun)
	if len(moves) != 2 {
		t.Fatalf("moves = %+v, want 2", moves)
	}
	// Sorted worst-first: the FastS +28.6% regression leads.
	if moves[0].name != "repro.BenchmarkStoreRead/FastS" || moves[0].deltaPct < 28 || moves[0].deltaPct > 29 {
		t.Fatalf("worst move = %+v", moves[0])
	}
	// SSMCluster got ~31% faster.
	if moves[1].deltaPct > -30 {
		t.Fatalf("improvement not detected: %+v", moves[1])
	}
	if len(onlyOld) != 1 || onlyOld[0] != "repro.BenchmarkGone" {
		t.Fatalf("onlyOld = %v", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "repro.BenchmarkFresh" {
		t.Fatalf("onlyNew = %v", onlyNew)
	}
}

func TestDiffIdenticalRunsAreQuiet(t *testing.T) {
	run, _ := parseBench(strings.NewReader(oldStream))
	moves, onlyOld, onlyNew := diff(run, run)
	for _, m := range moves {
		if m.deltaPct != 0 {
			t.Fatalf("self-diff moved: %+v", m)
		}
	}
	if len(onlyOld) != 0 || len(onlyNew) != 0 {
		t.Fatalf("self-diff churn: %v / %v", onlyOld, onlyNew)
	}
}
