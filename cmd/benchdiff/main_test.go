package main

import (
	"strings"
	"testing"
)

const oldStream = `
{"Action":"output","Package":"repro","Output":"BenchmarkStoreRead/FastS-4   \t  500000\t      2100 ns/op\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkStoreRead/SSMCluster-4   \t  10000\t    130000 ns/op\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkGone-4 \t 100 \t 999 ns/op\n"}
{"Action":"run","Package":"repro"}
not json at all
{"Action":"output","Package":"repro","Output":"ok  \trepro\t1.2s\n"}
`

const newStream = `
{"Action":"output","Package":"repro","Output":"BenchmarkStoreRead/FastS-8   \t  500000\t      2700 ns/op\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkStoreRead/SSMCluster-8   \t  10000\t     90000 ns/op\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkFresh-8 \t 100 \t 50 ns/op\n"}
`

func TestParseBenchExtractsResults(t *testing.T) {
	got, err := parseBench(strings.NewReader(oldStream))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	if got["repro.BenchmarkStoreRead/FastS"].ns != 2100 {
		t.Fatalf("FastS = %v", got["repro.BenchmarkStoreRead/FastS"])
	}
	if got["repro.BenchmarkStoreRead/FastS"].hasMem {
		t.Fatal("no -benchmem columns, but hasMem is set")
	}
	// The -N GOMAXPROCS suffix must not leak into the key.
	for name := range got {
		if strings.HasSuffix(name, "-4") {
			t.Fatalf("key kept its GOMAXPROCS suffix: %s", name)
		}
	}
}

// test2json often emits the bench name and its counters as two separate
// output events; the parser must stitch them back together per package.
const splitStream = `
{"Action":"output","Package":"repro","Output":"BenchmarkInvoke/ViewItem-4         \t"}
{"Action":"output","Package":"repro","Output":"  524792\t      1027 ns/op\t     120 B/op\t       4 allocs/op\n"}
{"Action":"output","Package":"repro/other","Output":"BenchmarkRoute-4 \t"}
{"Action":"output","Package":"repro","Output":"BenchmarkInvoke/AboutMe-4 \t"}
{"Action":"output","Package":"repro/other","Output":"  100\t 42 ns/op\t 0 B/op\t 0 allocs/op\n"}
{"Action":"output","Package":"repro","Output":"  1000\t 2000 ns/op\t 512 B/op\t 8 allocs/op\n"}
{"Action":"output","Package":"repro","Output":"=== RUN   TestSomething\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkSingleLine-4 \t 100 \t 10 ns/op \t 16 B/op \t 2 allocs/op\n"}
`

func TestParseBenchStitchesSplitLines(t *testing.T) {
	got, err := parseBench(strings.NewReader(splitStream))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", len(got), got)
	}
	vi := got["repro.BenchmarkInvoke/ViewItem"]
	if vi.ns != 1027 || !vi.hasMem || vi.allocs != 4 || vi.bytes != 120 {
		t.Fatalf("ViewItem = %+v", vi)
	}
	// Interleaved packages must not cross-stitch.
	rt := got["repro/other.BenchmarkRoute"]
	if rt.ns != 42 || rt.allocs != 0 || !rt.hasMem {
		t.Fatalf("Route = %+v", rt)
	}
	am := got["repro.BenchmarkInvoke/AboutMe"]
	if am.ns != 2000 || am.allocs != 8 {
		t.Fatalf("AboutMe = %+v", am)
	}
	sl := got["repro.BenchmarkSingleLine"]
	if sl.ns != 10 || !sl.hasMem || sl.allocs != 2 {
		t.Fatalf("SingleLine = %+v", sl)
	}
}

func TestDiffFlagsRegressionsAndChurn(t *testing.T) {
	oldRun, _ := parseBench(strings.NewReader(oldStream))
	newRun, _ := parseBench(strings.NewReader(newStream))
	moves, onlyOld, onlyNew := diff(oldRun, newRun)
	if len(moves) != 2 {
		t.Fatalf("moves = %+v, want 2", moves)
	}
	// Sorted worst-first: the FastS +28.6% regression leads.
	if moves[0].name != "repro.BenchmarkStoreRead/FastS" || moves[0].deltaPct < 28 || moves[0].deltaPct > 29 {
		t.Fatalf("worst move = %+v", moves[0])
	}
	// SSMCluster got ~31% faster.
	if moves[1].deltaPct > -30 {
		t.Fatalf("improvement not detected: %+v", moves[1])
	}
	if len(onlyOld) != 1 || onlyOld[0] != "repro.BenchmarkGone" {
		t.Fatalf("onlyOld = %v", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "repro.BenchmarkFresh" {
		t.Fatalf("onlyNew = %v", onlyNew)
	}
}

func TestDiffAllocRegressions(t *testing.T) {
	oldRun := map[string]result{
		"p.BenchZeroToSome": {ns: 100, allocs: 0, hasMem: true},
		"p.BenchGrew":       {ns: 100, allocs: 10, hasMem: true},
		"p.BenchSteady":     {ns: 100, allocs: 10, hasMem: true},
		"p.BenchNoMem":      {ns: 100},
	}
	newRun := map[string]result{
		"p.BenchZeroToSome": {ns: 100, allocs: 1, hasMem: true},
		"p.BenchGrew":       {ns: 100, allocs: 12, hasMem: true},
		"p.BenchSteady":     {ns: 100, allocs: 10, hasMem: true},
		"p.BenchNoMem":      {ns: 100},
	}
	moves, _, _ := diff(oldRun, newRun)
	byName := map[string]movement{}
	for _, m := range moves {
		byName[m.name] = m
	}
	// 0 → 1 allocs is a regression no matter the threshold.
	if !byName["p.BenchZeroToSome"].allocRegressed(10) {
		t.Fatal("0→1 allocs/op not flagged")
	}
	if !byName["p.BenchZeroToSome"].allocRegressed(1000) {
		t.Fatal("0→1 allocs/op must ignore the percentage threshold")
	}
	// 10 → 12 is +20%: past a 10% threshold, inside a 30% one.
	if !byName["p.BenchGrew"].allocRegressed(10) {
		t.Fatal("+20% allocs/op not flagged at threshold 10")
	}
	if byName["p.BenchGrew"].allocRegressed(30) {
		t.Fatal("+20% allocs/op flagged at threshold 30")
	}
	if byName["p.BenchSteady"].allocRegressed(10) {
		t.Fatal("steady allocs flagged")
	}
	// Without -benchmem in both runs there is no alloc verdict.
	if byName["p.BenchNoMem"].allocRegressed(0) {
		t.Fatal("mem-less benchmark flagged")
	}
}

// Parallel throughput benches report a custom "ops/s" metric via
// b.ReportMetric; it lands on the bench line between ns/op and the
// -benchmem columns. The parser must lift it into result.metrics and the
// higher-is-better gate must flag throughput DROPS (down = bad), while
// domain gauges like rr-p99-ms stay ungated.
const hbOldStream = `
{"Action":"output","Package":"repro","Output":"BenchmarkInvokeOpsPerSecParallel/ReadHeavy-4 \t  500000\t      2100 ns/op\t    480000 ops/s\t      64 B/op\t       3 allocs/op\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkFleetRR-4 \t 10 \t 100000 ns/op\t 200 requests\t 9.5 rr-p99-ms\n"}
`

const hbNewStream = `
{"Action":"output","Package":"repro","Output":"BenchmarkInvokeOpsPerSecParallel/ReadHeavy-4 \t  500000\t      2200 ns/op\t    240000 ops/s\t      64 B/op\t       3 allocs/op\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkFleetRR-4 \t 10 \t 100000 ns/op\t 90 requests\t 9.5 rr-p99-ms\n"}
`

func TestParseBenchExtractsCustomMetrics(t *testing.T) {
	got, err := parseBench(strings.NewReader(hbOldStream))
	if err != nil {
		t.Fatal(err)
	}
	par := got["repro.BenchmarkInvokeOpsPerSecParallel/ReadHeavy"]
	if par.ns != 2100 || !par.hasMem || par.allocs != 3 {
		t.Fatalf("parallel bench = %+v", par)
	}
	if par.metrics["ops/s"] != 480000 {
		t.Fatalf("ops/s = %v, want 480000 (metrics %v)", par.metrics["ops/s"], par.metrics)
	}
	// The -benchmem columns must not leak into the custom metric map.
	if _, ok := par.metrics["B/op"]; ok {
		t.Fatalf("B/op leaked into metrics: %v", par.metrics)
	}
	if _, ok := par.metrics["allocs/op"]; ok {
		t.Fatalf("allocs/op leaked into metrics: %v", par.metrics)
	}
	rr := got["repro.BenchmarkFleetRR"]
	if rr.metrics["requests"] != 200 || rr.metrics["rr-p99-ms"] != 9.5 {
		t.Fatalf("domain metrics = %v", rr.metrics)
	}
}

func TestDiffFlagsThroughputDrops(t *testing.T) {
	oldRun, _ := parseBench(strings.NewReader(hbOldStream))
	newRun, _ := parseBench(strings.NewReader(hbNewStream))
	moves, _, _ := diff(oldRun, newRun)
	byName := map[string]movement{}
	for _, m := range moves {
		byName[m.name] = m
	}
	par := byName["repro.BenchmarkInvokeOpsPerSecParallel/ReadHeavy"]
	// ops/s halved (-50%): regression past a 20% threshold even though
	// ns/op only moved +4.8%.
	if par.deltaPct > 20 {
		t.Fatalf("ns/op alone should not regress: %+v", par)
	}
	if pct, ok := par.hbPct("ops/s"); !ok || pct > -49 || pct < -51 {
		t.Fatalf("ops/s pct = %v ok=%v, want ≈ -50", pct, ok)
	}
	if !par.hbRegressed([]string{"ops/s"}, 20) {
		t.Fatal("-50% ops/s not flagged at threshold 20")
	}
	if par.hbRegressed([]string{"ops/s"}, 60) {
		t.Fatal("-50% ops/s flagged at threshold 60")
	}
	// Unlisted units never gate, even when they crater.
	fleet := byName["repro.BenchmarkFleetRR"]
	if fleet.hbRegressed([]string{"ops/s"}, 20) {
		t.Fatalf("requests drop gated without being listed: %+v", fleet)
	}
	if !fleet.hbRegressed([]string{"requests"}, 20) {
		t.Fatal("explicitly listed unit did not gate")
	}
	// Improvements are symmetric: swap old/new.
	rev, _, _ := diff(newRun, oldRun)
	for _, m := range rev {
		if m.name == par.name && !m.hbImproved([]string{"ops/s"}, 20) {
			t.Fatal("doubled ops/s not reported as improvement")
		}
	}
}

// A -cpu sweep artifact (one bench at several GOMAXPROCS counts) must
// keep the -N suffix in the keys — collapsing the sweep would let the
// last-parsed cpu point silently overwrite the others — while a
// single-count artifact still strips it for cross-machine comparability.
const sweepStream = `
{"Action":"output","Package":"repro","Output":"BenchmarkInvokeOpsPerSecParallel/ReadHeavy \t  500000\t      3000 ns/op\t    330000 ops/s\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkInvokeOpsPerSecParallel/ReadHeavy-2 \t  500000\t      2500 ns/op\t    400000 ops/s\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkInvokeOpsPerSecParallel/ReadHeavy-4 \t  500000\t      2100 ns/op\t    480000 ops/s\n"}
`

func TestParseBenchKeepsSuffixForCPUSweep(t *testing.T) {
	run, err := parseBenchRun(strings.NewReader(sweepStream))
	if err != nil {
		t.Fatal(err)
	}
	if len(run.cpus) != 3 || !run.cpus["1"] || !run.cpus["2"] || !run.cpus["4"] {
		t.Fatalf("cpus = %v, want {1,2,4}", run.cpus)
	}
	if run.cpuList() != "1,2,4" {
		t.Fatalf("cpuList = %q", run.cpuList())
	}
	if len(run.results) != 3 {
		t.Fatalf("results = %v, want 3 distinct cpu points", run.results)
	}
	if run.results["repro.BenchmarkInvokeOpsPerSecParallel/ReadHeavy-4"].metrics["ops/s"] != 480000 {
		t.Fatalf("4-cpu point missing: %v", run.results)
	}
	if run.results["repro.BenchmarkInvokeOpsPerSecParallel/ReadHeavy"].metrics["ops/s"] != 330000 {
		t.Fatalf("1-cpu point missing: %v", run.results)
	}
}

func TestParseBenchRecordsSingleCPUCount(t *testing.T) {
	run, err := parseBenchRun(strings.NewReader(oldStream))
	if err != nil {
		t.Fatal(err)
	}
	if len(run.cpus) != 1 || !run.cpus["4"] {
		t.Fatalf("cpus = %v, want {4}", run.cpus)
	}
	// Single-count artifacts keep stripping the suffix.
	for name := range run.results {
		if strings.HasSuffix(name, "-4") {
			t.Fatalf("single-count run kept its suffix: %s", name)
		}
	}
}

func TestSameCPUsDetectsRunnerChanges(t *testing.T) {
	at4, _ := parseBenchRun(strings.NewReader(oldStream))     // bench lines at -4
	at8, _ := parseBenchRun(strings.NewReader(newStream))     // bench lines at -8
	sweep, _ := parseBenchRun(strings.NewReader(sweepStream)) // 1,2,4
	if sameCPUs(at4, at8) {
		t.Fatal("4-core vs 8-core runs reported comparable")
	}
	if sameCPUs(at4, sweep) {
		t.Fatal("single-count vs sweep runs reported comparable")
	}
	if !sameCPUs(at4, at4) || !sameCPUs(sweep, sweep) {
		t.Fatal("identical cpu sets reported incomparable")
	}
}

func TestDiffIdenticalRunsAreQuiet(t *testing.T) {
	run, _ := parseBench(strings.NewReader(oldStream))
	moves, onlyOld, onlyNew := diff(run, run)
	for _, m := range moves {
		if m.deltaPct != 0 {
			t.Fatalf("self-diff moved: %+v", m)
		}
		if m.allocRegressed(10) {
			t.Fatalf("self-diff alloc-regressed: %+v", m)
		}
	}
	if len(onlyOld) != 0 || len(onlyNew) != 0 {
		t.Fatalf("self-diff churn: %v / %v", onlyOld, onlyNew)
	}
}
