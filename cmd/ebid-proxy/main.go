// Command ebid-proxy runs a real multi-process eBid fleet: it spawns N
// ebid-server child processes, supervises them (crash → respawn with
// backoff, crash loops escalate), and fronts them as a reverse-proxy
// load balancer reusing the in-process cluster routing policies over
// live health/load polls. Node-scope recovery here is literal — a
// reboot is SIGKILL + re-exec of an OS process, and the WAL brings the
// next incarnation back with everything that was committed.
//
// Try it (with ebid-server on PATH or -server-bin):
//
//	ebid-proxy -addr :8080 -backends 3 -policy shed
//	curl localhost:8080/ebid/Authenticate?user=3
//	curl localhost:8080/admin/proxy/status
//	curl -X POST 'localhost:8080/admin/proxy/kill?backend=node1'   # chaos: SIGKILL; watch it respawn
//	curl -X POST 'localhost:8080/admin/proxy/reboot?backend=node2' # deliberate node reboot
//	curl -X POST 'localhost:8080/admin/proxy/drain?backend=node0'  # exclude from new sessions
//
// A control plane ticks alongside: its fleet probe samples each
// backend through the router, and with -rejuvenate-every the fleet
// controller runs rolling drain→reboot→restore passes over the real
// processes. Inspect it at /admin/controlplane/status.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/controlplane"
	"repro/internal/fleet"
)

func main() {
	addr := flag.String("addr", ":8080", "proxy listen address")
	serverBin := flag.String("server-bin", "", "path to the ebid-server binary (default: look next to this binary, then PATH)")
	backends := flag.Int("backends", 3, "number of ebid-server processes to spawn")
	basePort := flag.Int("base-port", 8081, "first backend port; backend i listens on base-port+i")
	policyName := flag.String("policy", "least-loaded", "routing policy: round-robin, least-loaded or shed")
	shedWatermark := flag.Int("shed-watermark", cluster.DefaultShedWatermark,
		"shed policy: per-backend queue depth past which new logins get 503 + Retry-After")
	pollInterval := flag.Duration("poll-interval", 250*time.Millisecond, "backend health/load poll cadence")
	tickInterval := flag.Duration("tick-interval", 100*time.Millisecond, "control plane tick cadence")
	rejuvenateEvery := flag.Duration("rejuvenate-every", 0,
		"rolling drain→reboot→restore of one backend this often (0 disables)")
	walDir := flag.String("wal-dir", "", "directory for per-backend WAL files (default: a temp dir; survives respawns, not proxy restarts)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "per-backend graceful shutdown budget")
	serverFlags := flag.String("server-flags", "", "extra flags passed to every ebid-server child (space-separated)")
	flag.Parse()

	bin, err := findServerBin(*serverBin)
	if err != nil {
		log.Fatalf("ebid-proxy: %v", err)
	}
	dir := *walDir
	if dir == "" {
		dir, err = os.MkdirTemp("", "ebid-fleet-")
		if err != nil {
			log.Fatalf("ebid-proxy: wal dir: %v", err)
		}
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatalf("ebid-proxy: wal dir: %v", err)
	}

	var policy cluster.RoutingPolicy
	switch *policyName {
	case "round-robin":
		policy = cluster.NewRoundRobin()
	case "least-loaded":
		policy = cluster.LeastLoadedPolicy{}
	case "shed":
		policy = &cluster.SheddingPolicy{Inner: cluster.LeastLoadedPolicy{}, QueueWatermark: *shedWatermark}
	default:
		log.Fatalf("ebid-proxy: unknown policy %q", *policyName)
	}

	sup := fleet.New(func(e fleet.Event) {
		switch e.Kind {
		case fleet.EventCrashLoop:
			log.Printf("supervisor: %s is CRASH-LOOPING (%d crashes in window) — escalate beyond process restarts", e.Child, e.Crashes)
		case fleet.EventRespawn:
			log.Printf("supervisor: respawning %s in %v", e.Child, e.Backoff)
		default:
			log.Printf("supervisor: %s %s (pid %d, gen %d)", e.Child, e.Kind, e.Pid, e.Gen)
		}
	})

	extra := strings.Fields(*serverFlags)
	fleetBackends := make([]*fleet.Backend, *backends)
	for i := 0; i < *backends; i++ {
		name := fmt.Sprintf("node%d", i)
		port := *basePort + i
		url := fmt.Sprintf("http://127.0.0.1:%d", port)
		args := append([]string{
			"-addr", fmt.Sprintf("127.0.0.1:%d", port),
			"-node", name,
			"-wal", filepath.Join(dir, name+".wal"),
			"-drain-timeout", drainTimeout.String(),
		}, extra...)
		err := sup.Add(fleet.ChildSpec{
			Name: name, Path: bin, Args: args,
			ReadyURL:     url + "/healthz",
			DrainTimeout: *drainTimeout + 2*time.Second, // child enforces its own budget first
		})
		if err != nil {
			sup.Stop()
			log.Fatalf("ebid-proxy: %v", err)
		}
		fleetBackends[i] = &fleet.Backend{Name: name, URL: url}
	}

	router := fleet.NewRouter(policy, fleetBackends, *pollInterval)
	router.Start()

	start := time.Now()
	plane := controlplane.New(controlplane.Config{
		Clock: func() time.Duration { return time.Since(start) },
		Fleet: router,
	})
	fc := controlplane.NewFleetController(
		&fleet.Actuator{Router: router, Sup: sup},
		controlplane.FleetConfig{RejuvenateEvery: *rejuvenateEvery, DrainTimeout: *drainTimeout},
	)
	plane.Use(fc)
	planeStop := make(chan struct{})
	go func() {
		tick := time.NewTicker(*tickInterval)
		defer tick.Stop()
		for {
			select {
			case <-planeStop:
				return
			case <-tick.C:
				plane.Tick()
			}
		}
	}()
	if *rejuvenateEvery > 0 {
		log.Printf("rejuvenation: rolling reboot of one backend every %v", *rejuvenateEvery)
	}

	mux := http.NewServeMux()
	mux.Handle("/ebid/", router)
	mux.HandleFunc("/admin/proxy/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{
			"router":     router.Status(),
			"supervisor": sup.Status(),
		})
	})
	mux.HandleFunc("/admin/proxy/ready", func(w http.ResponseWriter, r *http.Request) {
		if !router.AllHealthy() {
			http.Error(w, "fleet not fully healthy", http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, map[string]any{"ready": true, "backends": *backends})
	})
	mux.HandleFunc("/admin/proxy/drain", func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Query().Get("backend")
		drain := r.URL.Query().Get("off") == ""
		if !router.SetDrain(name, drain) {
			http.Error(w, "unknown backend "+name, http.StatusNotFound)
			return
		}
		writeJSON(w, map[string]any{"backend": name, "draining": drain})
	})
	mux.HandleFunc("/admin/proxy/reboot", func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Query().Get("backend")
		graceful := r.URL.Query().Get("hard") == ""
		down, err := sup.Restart(name, graceful)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, map[string]any{"backend": name, "graceful": graceful, "downtime_ms": down.Milliseconds()})
	})
	mux.HandleFunc("/admin/proxy/kill", func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Query().Get("backend")
		if err := sup.Kill(name); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, map[string]any{"backend": name, "killed": true})
	})
	mux.HandleFunc("/admin/proxy/rejuvenate", func(w http.ResponseWriter, r *http.Request) {
		fc.RequestRejuvenation()
		writeJSON(w, map[string]any{"requested": true})
	})
	mux.HandleFunc("/admin/controlplane/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, plane.Status())
	})

	srv := &http.Server{Addr: *addr, Handler: mux}
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		sig := <-sigCh
		log.Printf("ebid-proxy: %v: draining fleet", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	log.Printf("ebid-proxy: %d × %s behind %s (policy %s, WALs in %s)", *backends, bin, *addr, policy.Name(), dir)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		sup.Stop()
		log.Fatalf("ebid-proxy: %v", err)
	}
	close(planeStop)
	router.Stop()
	sup.Stop() // SIGTERM each child, SIGKILL stragglers past their drain budget
	log.Printf("ebid-proxy: fleet stopped")
}

// findServerBin resolves the ebid-server binary: explicit flag, next to
// this executable, then PATH.
func findServerBin(explicit string) (string, error) {
	if explicit != "" {
		if _, err := os.Stat(explicit); err != nil {
			return "", fmt.Errorf("server binary %s: %w", explicit, err)
		}
		return explicit, nil
	}
	if self, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(self), "ebid-server")
		if _, err := os.Stat(cand); err == nil {
			return cand, nil
		}
	}
	if p, err := exec.LookPath("ebid-server"); err == nil {
		return p, nil
	}
	return "", fmt.Errorf("ebid-server binary not found: build it (go build ./cmd/ebid-server) and pass -server-bin")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
