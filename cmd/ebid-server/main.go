// Command ebid-server hosts the crash-only eBid auction application over
// real HTTP, with the microreboot method exposed for remote invocation —
// the live-system counterpart of the simulation experiments.
//
// Usage:
//
//	ebid-server [-addr :8080] [-store fasts|ssm|ssm-cluster] [-shards S] [-replicas N] [-write-quorum W] [-users N] [-items N] [-wal file] [-reap-interval D] [-autoscale] [-autoscale-min N] [-autoscale-max N] [-autoscale-high X] [-autoscale-low X] [-shed-watermark N] [-detect-sample N]
//
// Try it:
//
//	curl localhost:8080/ebid/Authenticate?user=3
//	curl -X POST 'localhost:8080/admin/microreboot?component=ViewItem'
//	curl -i localhost:8080/ebid/ViewItem?item=1   # 503 + Retry-After while recovering
//
// With -store ssm-cluster the brick ring is elastic at runtime:
//
//	curl -X POST localhost:8080/admin/ssm/addshard
//	curl -X POST 'localhost:8080/admin/ssm/removeshard?shard=0'
//	curl localhost:8080/admin/ssm/elastic
//
// A control plane ticks every -migrate-interval: its probes sample the
// front's in-flight load and (with a brick cluster) per-shard load, a
// load-adaptive migration pacer streams entries to their new owner
// shards after every ring change (backing off when client p95 latency
// rises), and with -autoscale the ring resizes itself against the load
// watermarks. Inspect it at /admin/controlplane/status and
// /admin/fleet/status. With -shed-watermark N the front sheds
// session-starting requests (503 + Retry-After) past N in-flight
// requests; with -detect-sample N one in N idempotent operations is
// replayed against a known-good shadow instance and any discrepancy is
// published on the bus. A lease reaper garbage-collects lapsed sessions
// on the SSM stores every -reap-interval.
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/controlplane"
	"repro/internal/detect"
	"repro/internal/ebid"
	"repro/internal/httpfront"
	"repro/internal/store/db"
	"repro/internal/store/session"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	storeKind := flag.String("store", "fasts", "session store: fasts, ssm or ssm-cluster")
	shards := flag.Int("shards", 4, "ssm-cluster: hash shards S")
	replicas := flag.Int("replicas", 3, "ssm-cluster: brick replicas N per shard")
	writeQuorum := flag.Int("write-quorum", 2, "ssm-cluster: write quorum W (W ≤ N)")
	users := flag.Int("users", 250, "dataset users")
	items := flag.Int("items", 3300, "dataset items")
	walPath := flag.String("wal", "", "mirror the database WAL to this file")
	reapInterval := flag.Duration("reap-interval", time.Minute,
		"how often the lease reaper garbage-collects expired SSM sessions (0 disables)")
	migrateInterval := flag.Duration("migrate-interval", 100*time.Millisecond,
		"ssm-cluster: how often the control plane ticks (migration pacing, load probes; 0 disables)")
	autoscale := flag.Bool("autoscale", false,
		"ssm-cluster: let the control plane add/remove shards against the load watermarks")
	autoscaleMin := flag.Int("autoscale-min", 2, "autoscaler: minimum shards")
	autoscaleMax := flag.Int("autoscale-max", 8, "autoscaler: maximum shards")
	autoscaleHigh := flag.Float64("autoscale-high", 5000, "autoscaler: add a shard above this mean sessions/shard")
	autoscaleLow := flag.Float64("autoscale-low", 500, "autoscaler: remove a shard below this mean sessions/shard")
	targetP95 := flag.Duration("migrate-target-p95", 500*time.Millisecond,
		"ssm-cluster: client p95 above which the migration pacer backs off")
	shedWatermark := flag.Int("shed-watermark", 0,
		"admission control: shed session-starting requests with 503 + Retry-After while more than this many requests are in flight (0 disables)")
	detectSample := flag.Int64("detect-sample", 0,
		"comparison detector: replay 1 in N idempotent operations against a known-good shadow instance and publish discrepancies (0 disables)")
	flag.Parse()

	var wal *db.WAL
	if *walPath != "" {
		fh, err := os.Create(*walPath)
		if err != nil {
			log.Fatalf("wal: %v", err)
		}
		defer fh.Close()
		wal = db.NewWALWithSink(fh)
	}
	database := db.New(wal)
	cfg := ebid.DefaultDataset()
	cfg.Users, cfg.Items = *users, *items
	log.Printf("loading dataset: %d users, %d items", cfg.Users, cfg.Items)
	if err := ebid.LoadDataset(database, cfg); err != nil {
		log.Fatalf("dataset: %v", err)
	}

	start := time.Now()
	clock := func() time.Duration { return time.Since(start) }
	var store session.Store
	var cl *session.SSMCluster
	switch *storeKind {
	case "ssm":
		store = session.NewSSM(clock, session.DefaultLeaseTTL)
	case "ssm-cluster":
		var err error
		cl, err = session.NewSSMCluster(session.ClusterConfig{
			Shards:      *shards,
			Replicas:    *replicas,
			WriteQuorum: *writeQuorum,
			Now:         clock,
			LeaseTTL:    session.DefaultLeaseTTL,
		})
		if err != nil {
			log.Fatalf("store: %v", err)
		}
		log.Printf("ssm brick cluster: %d shards × %d replicas, write quorum %d (%d bricks)",
			*shards, *replicas, *writeQuorum, len(cl.Bricks()))
		store = cl
	case "fasts":
		store = session.NewFastS()
	default:
		log.Fatalf("unknown store %q", *storeKind)
	}

	app, err := ebid.New(database, store, clock)
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	log.Printf("deployed eBid: %d components, session store %s", len(app.Server.Components()), store.Name())

	// Background lease reaper: ReapExpired finally runs outside the
	// simulations, completing the lease story for the live SSM stores
	// (FastS has no leases to reap).
	if reaper, ok := store.(interface{ ReapExpired() int }); ok && *reapInterval > 0 {
		go func() {
			for range time.Tick(*reapInterval) {
				if n := reaper.ReapExpired(); n > 0 {
					log.Printf("lease reaper: collected %d expired sessions", n)
				}
			}
		}()
		log.Printf("lease reaper running every %v", *reapInterval)
	}
	front := httpfront.New(app)
	front.Cluster = cl
	front.ShedWatermark = *shedWatermark
	if *shedWatermark > 0 {
		log.Printf("admission control: shedding new sessions past %d in-flight requests", *shedWatermark)
	}

	// The control plane: every request's latency and failure feed its
	// bus through the HTTP front end, and the front's own in-flight
	// count is probed as a one-node fleet (visible at
	// /admin/fleet/status). With an SSM brick cluster the probes also
	// sample per-shard load, the migration pacer replaces the old
	// fixed-budget migrator (backing off when client p95 rises, full
	// throttle when idle), and -autoscale closes the elasticity loop.
	// Without a ticking plane a ring change could never drain (and would
	// wedge further resizes), so disabling it disables the elastic
	// control surface too.
	if cl != nil && *migrateInterval <= 0 {
		log.Printf("control plane disabled (-migrate-interval %v): elastic ring controls are off", *migrateInterval)
		cl = nil
	}
	plane := controlplane.New(controlplane.Config{Clock: clock, Cluster: clusterOrNil(cl), Fleet: front})
	// An observe-only fleet controller (no balancer to actuate on a
	// single node) keeps the per-node samples for the status surface.
	plane.Use(controlplane.NewFleetController(nil, controlplane.FleetConfig{}))
	if *detectSample > 0 {
		// The known-good shadow instance shares the database (so data
		// evolution matches) but nothing else; only idempotent,
		// session-free operations are replayed.
		shadow, err := ebid.New(database, session.NewFastS(), clock)
		if err != nil {
			log.Fatalf("shadow instance: %v", err)
		}
		front.Sampler = &detect.Sampler{
			Comp:  &detect.Comparison{Good: shadow},
			Every: *detectSample,
			OnDiscrepancy: func(op string, v detect.Verdict) {
				plane.ReportDiscrepancy(op, v.Detail)
				log.Printf("comparison detector: %s: %s (%s)", op, v.Type, v.Detail)
			},
		}
		log.Printf("comparison detector sampling 1 in %d idempotent operations", *detectSample)
	}
	if cl != nil {
		pacer := controlplane.NewMigrationPacer(cl, controlplane.PacerConfig{TargetP95: *targetP95})
		plane.Use(pacer)
		if *autoscale {
			scaler := controlplane.NewAutoscaler(cl, controlplane.AutoscalerConfig{
				MinShards: *autoscaleMin, MaxShards: *autoscaleMax,
				HighWater: *autoscaleHigh, LowWater: *autoscaleLow,
				OnResize: func(act controlplane.ResizeAction) {
					verb := "removed"
					if act.Added {
						verb = "added"
					}
					if act.Err != "" {
						log.Printf("autoscaler: resize failed at %.0f sessions/shard: %s", act.AvgLoad, act.Err)
						return
					}
					log.Printf("autoscaler: %s shard %d at %.0f sessions/shard", verb, act.Shard, act.AvgLoad)
				},
			})
			plane.Use(scaler)
			log.Printf("autoscaler watching the ring: %d..%d shards, add above %.0f, remove below %.0f sessions/shard",
				*autoscaleMin, *autoscaleMax, *autoscaleHigh, *autoscaleLow)
		}
	}
	if *migrateInterval > 0 {
		go func() {
			migrating := false
			for range time.Tick(*migrateInterval) {
				plane.Tick()
				if cl == nil {
					continue
				}
				if m := cl.Migrating(); m != migrating {
					migrating = m
					st := cl.Elastic()
					if m {
						log.Printf("migrator: ring change v%d draining", st.RingVersion)
					} else {
						log.Printf("migrator: ring v%d converged (%d entries moved so far, shards %v)",
							st.RingVersion, st.Migrated, st.Shards)
					}
				}
			}
		}()
	}

	front.Plane = plane
	log.Printf("serving on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, front.Handler()))
}

// clusterOrNil avoids the typed-nil interface trap when no brick cluster
// is configured.
func clusterOrNil(cl *session.SSMCluster) controlplane.ShardCluster {
	if cl == nil {
		return nil
	}
	return cl
}
