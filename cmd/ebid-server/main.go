// Command ebid-server hosts the crash-only eBid auction application over
// real HTTP, with the microreboot method exposed for remote invocation —
// the live-system counterpart of the simulation experiments.
//
// Usage:
//
//	ebid-server [-addr :8080] [-store fasts|ssm|ssm-cluster] [-shards S] [-replicas N] [-write-quorum W] [-users N] [-items N] [-wal file] [-reap-interval D]
//
// Try it:
//
//	curl localhost:8080/ebid/Authenticate?user=3
//	curl -X POST 'localhost:8080/admin/microreboot?component=ViewItem'
//	curl -i localhost:8080/ebid/ViewItem?item=1   # 503 + Retry-After while recovering
//
// With -store ssm-cluster the brick ring is elastic at runtime:
//
//	curl -X POST localhost:8080/admin/ssm/addshard
//	curl -X POST 'localhost:8080/admin/ssm/removeshard?shard=0'
//	curl localhost:8080/admin/ssm/elastic
//
// A background migrator streams entries to their new owner shards after
// every ring change, and a lease reaper garbage-collects lapsed sessions
// on the SSM stores every -reap-interval.
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/ebid"
	"repro/internal/httpfront"
	"repro/internal/store/db"
	"repro/internal/store/session"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	storeKind := flag.String("store", "fasts", "session store: fasts, ssm or ssm-cluster")
	shards := flag.Int("shards", 4, "ssm-cluster: hash shards S")
	replicas := flag.Int("replicas", 3, "ssm-cluster: brick replicas N per shard")
	writeQuorum := flag.Int("write-quorum", 2, "ssm-cluster: write quorum W (W ≤ N)")
	users := flag.Int("users", 250, "dataset users")
	items := flag.Int("items", 3300, "dataset items")
	walPath := flag.String("wal", "", "mirror the database WAL to this file")
	reapInterval := flag.Duration("reap-interval", time.Minute,
		"how often the lease reaper garbage-collects expired SSM sessions (0 disables)")
	migrateInterval := flag.Duration("migrate-interval", 100*time.Millisecond,
		"ssm-cluster: how often the background migrator advances after a ring change")
	flag.Parse()

	var wal *db.WAL
	if *walPath != "" {
		fh, err := os.Create(*walPath)
		if err != nil {
			log.Fatalf("wal: %v", err)
		}
		defer fh.Close()
		wal = db.NewWALWithSink(fh)
	}
	database := db.New(wal)
	cfg := ebid.DefaultDataset()
	cfg.Users, cfg.Items = *users, *items
	log.Printf("loading dataset: %d users, %d items", cfg.Users, cfg.Items)
	if err := ebid.LoadDataset(database, cfg); err != nil {
		log.Fatalf("dataset: %v", err)
	}

	start := time.Now()
	clock := func() time.Duration { return time.Since(start) }
	var store session.Store
	var cl *session.SSMCluster
	switch *storeKind {
	case "ssm":
		store = session.NewSSM(clock, session.DefaultLeaseTTL)
	case "ssm-cluster":
		var err error
		cl, err = session.NewSSMCluster(session.ClusterConfig{
			Shards:      *shards,
			Replicas:    *replicas,
			WriteQuorum: *writeQuorum,
			Now:         clock,
			LeaseTTL:    session.DefaultLeaseTTL,
		})
		if err != nil {
			log.Fatalf("store: %v", err)
		}
		log.Printf("ssm brick cluster: %d shards × %d replicas, write quorum %d (%d bricks)",
			*shards, *replicas, *writeQuorum, len(cl.Bricks()))
		store = cl
	case "fasts":
		store = session.NewFastS()
	default:
		log.Fatalf("unknown store %q", *storeKind)
	}

	app, err := ebid.New(database, store, clock)
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	log.Printf("deployed eBid: %d components, session store %s", len(app.Server.Components()), store.Name())

	// Background lease reaper: ReapExpired finally runs outside the
	// simulations, completing the lease story for the live SSM stores
	// (FastS has no leases to reap).
	if reaper, ok := store.(interface{ ReapExpired() int }); ok && *reapInterval > 0 {
		go func() {
			for range time.Tick(*reapInterval) {
				if n := reaper.ReapExpired(); n > 0 {
					log.Printf("lease reaper: collected %d expired sessions", n)
				}
			}
		}()
		log.Printf("lease reaper running every %v", *reapInterval)
	}
	// Background migrator: after an /admin/ssm/addshard or removeshard
	// ring change, stream entries to their new owner shards. A step is a
	// cheap no-op while the ring is stable. Without a migrator a ring
	// change could never drain (and would wedge further resizes), so
	// disabling it disables the elastic control surface too.
	if cl != nil && *migrateInterval <= 0 {
		log.Printf("migrator disabled (-migrate-interval %v): elastic ring controls are off", *migrateInterval)
		cl = nil
	}
	if cl != nil {
		go func() {
			migrating := false
			for range time.Tick(*migrateInterval) {
				moved, done := cl.MigrateStep(256)
				switch {
				case !done && !migrating:
					migrating = true
					log.Printf("migrator: ring change v%d draining", cl.RingVersion())
				case done && migrating:
					migrating = false
					st := cl.Elastic()
					log.Printf("migrator: ring v%d converged (%d entries moved so far, shards %v)",
						st.RingVersion, st.Migrated, st.Shards)
				case moved > 0:
					log.Printf("migrator: moved %d entries", moved)
				}
			}
		}()
	}

	front := httpfront.New(app)
	front.Cluster = cl
	log.Printf("serving on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, front.Handler()))
}
