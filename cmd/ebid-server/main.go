// Command ebid-server hosts the crash-only eBid auction application over
// real HTTP, with the microreboot method exposed for remote invocation —
// the live-system counterpart of the simulation experiments.
//
// Usage:
//
//	ebid-server [-addr :8080] [-store fasts|ssm|ssm-cluster] [-shards S] [-replicas N] [-write-quorum W] [-users N] [-items N] [-wal file]
//
// Try it:
//
//	curl localhost:8080/ebid/Authenticate?user=3
//	curl -X POST 'localhost:8080/admin/microreboot?component=ViewItem'
//	curl -i localhost:8080/ebid/ViewItem?item=1   # 503 + Retry-After while recovering
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/ebid"
	"repro/internal/httpfront"
	"repro/internal/store/db"
	"repro/internal/store/session"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	storeKind := flag.String("store", "fasts", "session store: fasts, ssm or ssm-cluster")
	shards := flag.Int("shards", 4, "ssm-cluster: hash shards S")
	replicas := flag.Int("replicas", 3, "ssm-cluster: brick replicas N per shard")
	writeQuorum := flag.Int("write-quorum", 2, "ssm-cluster: write quorum W (W ≤ N)")
	users := flag.Int("users", 250, "dataset users")
	items := flag.Int("items", 3300, "dataset items")
	walPath := flag.String("wal", "", "mirror the database WAL to this file")
	flag.Parse()

	var wal *db.WAL
	if *walPath != "" {
		fh, err := os.Create(*walPath)
		if err != nil {
			log.Fatalf("wal: %v", err)
		}
		defer fh.Close()
		wal = db.NewWALWithSink(fh)
	}
	database := db.New(wal)
	cfg := ebid.DefaultDataset()
	cfg.Users, cfg.Items = *users, *items
	log.Printf("loading dataset: %d users, %d items", cfg.Users, cfg.Items)
	if err := ebid.LoadDataset(database, cfg); err != nil {
		log.Fatalf("dataset: %v", err)
	}

	start := time.Now()
	clock := func() time.Duration { return time.Since(start) }
	var store session.Store
	switch *storeKind {
	case "ssm":
		store = session.NewSSM(clock, session.DefaultLeaseTTL)
	case "ssm-cluster":
		cl, err := session.NewSSMCluster(session.ClusterConfig{
			Shards:      *shards,
			Replicas:    *replicas,
			WriteQuorum: *writeQuorum,
			Now:         clock,
			LeaseTTL:    session.DefaultLeaseTTL,
		})
		if err != nil {
			log.Fatalf("store: %v", err)
		}
		log.Printf("ssm brick cluster: %d shards × %d replicas, write quorum %d (%d bricks)",
			*shards, *replicas, *writeQuorum, len(cl.Bricks()))
		store = cl
	case "fasts":
		store = session.NewFastS()
	default:
		log.Fatalf("unknown store %q", *storeKind)
	}

	app, err := ebid.New(database, store, clock)
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	log.Printf("deployed eBid: %d components, session store %s", len(app.Server.Components()), store.Name())
	front := httpfront.New(app)
	log.Printf("serving on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, front.Handler()))
}
