// Command ebid-server hosts the crash-only eBid auction application over
// real HTTP, with the microreboot method exposed for remote invocation —
// the live-system counterpart of the simulation experiments.
//
// Usage:
//
//	ebid-server [-addr :8080] [-store fasts|ssm|ssm-cluster] [-shards S] [-replicas N] [-write-quorum W] [-users N] [-items N] [-wal file] [-reap-interval D] [-autoscale] [-autoscale-min N] [-autoscale-max N] [-autoscale-high X] [-autoscale-low X] [-shed-watermark N] [-detect-sample N] [-batch-lane] [-batch-k K]
//
// Try it:
//
//	curl localhost:8080/ebid/Authenticate?user=3
//	curl -X POST 'localhost:8080/admin/microreboot?component=ViewItem'
//	curl -i localhost:8080/ebid/ViewItem?item=1   # 503 + Retry-After while recovering
//
// With -store ssm-cluster the brick ring is elastic at runtime:
//
//	curl -X POST localhost:8080/admin/ssm/addshard
//	curl -X POST 'localhost:8080/admin/ssm/removeshard?shard=0'
//	curl localhost:8080/admin/ssm/elastic
//
// A control plane ticks every -migrate-interval: its probes sample the
// front's in-flight load and (with a brick cluster) per-shard load, a
// load-adaptive migration pacer streams entries to their new owner
// shards after every ring change (backing off when client p95 latency
// rises), and with -autoscale the ring resizes itself against the load
// watermarks. Inspect it at /admin/controlplane/status and
// /admin/fleet/status. With -shed-watermark N the front sheds
// session-starting requests (503 + Retry-After) past N in-flight
// requests; with -detect-sample N one in N idempotent operations is
// replayed against a known-good shadow instance and any discrepancy is
// published on the bus. A lease reaper garbage-collects lapsed sessions
// on the SSM stores every -reap-interval.
//
// As a supervised fleet member (spawned by cmd/ebid-proxy or
// internal/fleet.Supervisor) the server is a well-behaved crash-only
// child: /healthz answers once it is serving, SIGTERM/SIGINT drain
// in-flight requests up to -drain-timeout and flush the WAL before
// exit, and startup against an existing -wal file recovers all
// committed state instead of truncating it — a SIGKILL + re-exec
// "node reboot" loses nothing that was committed.
//
// Exit-code contract (what a supervisor sees): 0 = graceful drain
// completed; 2 = drain deadline exceeded (connections force-closed, WAL
// still flushed); anything else, or death by signal, is a crash.
package main

import (
	"context"
	"flag"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/controlplane"
	"repro/internal/detect"
	"repro/internal/ebid"
	"repro/internal/httpfront"
	"repro/internal/store/db"
	"repro/internal/store/session"
	"repro/internal/workload"
)

// Exit codes of the drain contract.
const (
	exitGraceful    = 0
	exitDrainForced = 2
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	nodeName := flag.String("node", "", "fleet identity reported on /healthz and /admin/fleet/status (default http0)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second,
		"how long SIGTERM/SIGINT waits for in-flight requests before force-closing")
	degrade := flag.Duration("degrade", 0,
		"stall every operation by this much (a deliberately degraded replica for routing experiments)")
	storeKind := flag.String("store", "fasts", "session store: fasts, ssm or ssm-cluster")
	shards := flag.Int("shards", 4, "ssm-cluster: hash shards S")
	replicas := flag.Int("replicas", 3, "ssm-cluster: brick replicas N per shard")
	writeQuorum := flag.Int("write-quorum", 2, "ssm-cluster: write quorum W (W ≤ N)")
	users := flag.Int("users", 250, "dataset users")
	items := flag.Int("items", 3300, "dataset items")
	walPath := flag.String("wal", "", "mirror the database WAL to this file")
	reapInterval := flag.Duration("reap-interval", time.Minute,
		"how often the lease reaper garbage-collects expired SSM sessions (0 disables)")
	migrateInterval := flag.Duration("migrate-interval", 100*time.Millisecond,
		"ssm-cluster: how often the control plane ticks (migration pacing, load probes; 0 disables)")
	autoscale := flag.Bool("autoscale", false,
		"ssm-cluster: let the control plane add/remove shards against the load watermarks")
	autoscaleMin := flag.Int("autoscale-min", 2, "autoscaler: minimum shards")
	autoscaleMax := flag.Int("autoscale-max", 8, "autoscaler: maximum shards")
	autoscaleHigh := flag.Float64("autoscale-high", 5000, "autoscaler: add a shard above this mean sessions/shard")
	autoscaleLow := flag.Float64("autoscale-low", 500, "autoscaler: remove a shard below this mean sessions/shard")
	targetP95 := flag.Duration("migrate-target-p95", 500*time.Millisecond,
		"ssm-cluster: client p95 above which the migration pacer backs off")
	shedWatermark := flag.Int("shed-watermark", 0,
		"admission control: shed session-starting requests with 503 + Retry-After while more than this many requests are in flight (0 disables)")
	detectSample := flag.Int64("detect-sample", 0,
		"comparison detector: replay 1 in N idempotent operations against a known-good shadow instance and publish discrepancies (0 disables)")
	batchLane := flag.Bool("batch-lane", false,
		"micro-batching lane: coalesce concurrently-arriving read-only operations per session shard into one back-to-back store pass")
	batchK := flag.Int("batch-k", 8,
		"batch lane: max parked requests per session shard (bounds added latency)")
	flag.Parse()

	// Crash-safe startup against the WAL: an existing non-empty log file
	// means a previous incarnation of this node committed state — replay
	// it (truncating any torn tail from a crash mid-flush) instead of
	// truncating the file, so a SIGKILL + re-exec recovers everything
	// that was committed. A fresh or empty file gets the seed dataset.
	var wal *db.WAL
	var walFile *os.File
	recovered := false
	if *walPath != "" {
		fh, err := os.OpenFile(*walPath, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			log.Fatalf("wal: %v", err)
		}
		walFile = fh
		loaded, offset, err := db.LoadWAL(fh)
		if err != nil {
			log.Fatalf("wal: reading %s: %v", *walPath, err)
		}
		if loaded.Len() > 0 {
			if err := fh.Truncate(offset); err != nil {
				log.Fatalf("wal: truncating torn tail: %v", err)
			}
			if _, err := fh.Seek(0, io.SeekEnd); err != nil {
				log.Fatalf("wal: %v", err)
			}
			wal = loaded
			recovered = true
			log.Printf("wal: recovering %d records from %s", loaded.Len(), *walPath)
		}
	}
	var database *db.DB
	if recovered {
		database = db.New(wal)
		if err := database.Recover(); err != nil {
			log.Fatalf("wal recovery: %v", err)
		}
		// The store's row cache resets inside Recover; drop the interned
		// response bodies with it so the node restarts cold end to end.
		ebid.InternReset()
		wal.AttachSink(walFile)
		log.Printf("recovered %d tables from the WAL; skipping dataset load", len(database.Tables()))
	} else {
		if walFile != nil {
			wal = db.NewWALWithSink(walFile)
		}
		database = db.New(wal)
		cfg := ebid.DefaultDataset()
		cfg.Users, cfg.Items = *users, *items
		log.Printf("loading dataset: %d users, %d items", cfg.Users, cfg.Items)
		if err := ebid.LoadDataset(database, cfg); err != nil {
			log.Fatalf("dataset: %v", err)
		}
	}

	start := time.Now()
	clock := func() time.Duration { return time.Since(start) }
	var store session.Store
	var cl *session.SSMCluster
	switch *storeKind {
	case "ssm":
		store = session.NewSSM(clock, session.DefaultLeaseTTL)
	case "ssm-cluster":
		var err error
		cl, err = session.NewSSMCluster(session.ClusterConfig{
			Shards:      *shards,
			Replicas:    *replicas,
			WriteQuorum: *writeQuorum,
			Now:         clock,
			LeaseTTL:    session.DefaultLeaseTTL,
		})
		if err != nil {
			log.Fatalf("store: %v", err)
		}
		log.Printf("ssm brick cluster: %d shards × %d replicas, write quorum %d (%d bricks)",
			*shards, *replicas, *writeQuorum, len(cl.Bricks()))
		store = cl
	case "fasts":
		store = session.NewFastS()
	default:
		log.Fatalf("unknown store %q", *storeKind)
	}

	app, err := ebid.New(database, store, clock)
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	log.Printf("deployed eBid: %d components, session store %s", len(app.Server.Components()), store.Name())

	// Background lease reaper: ReapExpired finally runs outside the
	// simulations, completing the lease story for the live SSM stores
	// (FastS has no leases to reap).
	if reaper, ok := store.(interface{ ReapExpired() int }); ok && *reapInterval > 0 {
		go func() {
			for range time.Tick(*reapInterval) {
				if n := reaper.ReapExpired(); n > 0 {
					log.Printf("lease reaper: collected %d expired sessions", n)
				}
			}
		}()
		log.Printf("lease reaper running every %v", *reapInterval)
	}
	front := httpfront.New(app)
	front.Cluster = cl
	front.Node = *nodeName
	front.Degrade = *degrade
	if *degrade > 0 {
		log.Printf("degraded replica: stalling every operation by %v", *degrade)
	}
	front.ShedWatermark = *shedWatermark
	if *shedWatermark > 0 {
		log.Printf("admission control: shedding new sessions past %d in-flight requests", *shedWatermark)
	}
	if *batchLane {
		front.Batch = workload.NewBatcher(app.Execute, *batchK)
		log.Printf("batch lane: coalescing read-only ops, up to %d parked per session shard", *batchK)
	}

	// The control plane: every request's latency and failure feed its
	// bus through the HTTP front end, and the front's own in-flight
	// count is probed as a one-node fleet (visible at
	// /admin/fleet/status). With an SSM brick cluster the probes also
	// sample per-shard load, the migration pacer replaces the old
	// fixed-budget migrator (backing off when client p95 rises, full
	// throttle when idle), and -autoscale closes the elasticity loop.
	// Without a ticking plane a ring change could never drain (and would
	// wedge further resizes), so disabling it disables the elastic
	// control surface too.
	if cl != nil && *migrateInterval <= 0 {
		log.Printf("control plane disabled (-migrate-interval %v): elastic ring controls are off", *migrateInterval)
		cl = nil
	}
	plane := controlplane.New(controlplane.Config{Clock: clock, Cluster: clusterOrNil(cl), Fleet: front})
	// An observe-only fleet controller (no balancer to actuate on a
	// single node) keeps the per-node samples for the status surface.
	plane.Use(controlplane.NewFleetController(nil, controlplane.FleetConfig{}))
	if *detectSample > 0 {
		// The known-good shadow instance shares the database (so data
		// evolution matches) but nothing else; only idempotent,
		// session-free operations are replayed.
		shadow, err := ebid.New(database, session.NewFastS(), clock)
		if err != nil {
			log.Fatalf("shadow instance: %v", err)
		}
		front.Sampler = &detect.Sampler{
			Comp:  &detect.Comparison{Good: shadow},
			Every: *detectSample,
			OnDiscrepancy: func(op string, v detect.Verdict) {
				plane.ReportDiscrepancy(op, v.Detail)
				log.Printf("comparison detector: %s: %s (%s)", op, v.Type, v.Detail)
			},
		}
		log.Printf("comparison detector sampling 1 in %d idempotent operations", *detectSample)
	}
	if cl != nil {
		pacer := controlplane.NewMigrationPacer(cl, controlplane.PacerConfig{TargetP95: *targetP95})
		plane.Use(pacer)
		if *autoscale {
			scaler := controlplane.NewAutoscaler(cl, controlplane.AutoscalerConfig{
				MinShards: *autoscaleMin, MaxShards: *autoscaleMax,
				HighWater: *autoscaleHigh, LowWater: *autoscaleLow,
				OnResize: func(act controlplane.ResizeAction) {
					verb := "removed"
					if act.Added {
						verb = "added"
					}
					if act.Err != "" {
						log.Printf("autoscaler: resize failed at %.0f sessions/shard: %s", act.AvgLoad, act.Err)
						return
					}
					log.Printf("autoscaler: %s shard %d at %.0f sessions/shard", verb, act.Shard, act.AvgLoad)
				},
			})
			plane.Use(scaler)
			log.Printf("autoscaler watching the ring: %d..%d shards, add above %.0f, remove below %.0f sessions/shard",
				*autoscaleMin, *autoscaleMax, *autoscaleHigh, *autoscaleLow)
		}
	}
	if *migrateInterval > 0 {
		go func() {
			migrating := false
			for range time.Tick(*migrateInterval) {
				plane.Tick()
				if cl == nil {
					continue
				}
				if m := cl.Migrating(); m != migrating {
					migrating = m
					st := cl.Elastic()
					if m {
						log.Printf("migrator: ring change v%d draining", st.RingVersion)
					} else {
						log.Printf("migrator: ring v%d converged (%d entries moved so far, shards %v)",
							st.RingVersion, st.Migrated, st.Shards)
					}
				}
			}
		}()
	}

	front.Plane = plane
	srv := &http.Server{Addr: *addr, Handler: front.Handler()}

	// Graceful drain: SIGTERM/SIGINT stop the listener, let in-flight
	// requests finish up to -drain-timeout, flush the WAL, and exit with
	// the drain contract's code — so a supervisor can tell a clean drain
	// (0), a forced one (2), and a crash (anything else) apart.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan int, 1)
	go func() {
		sig := <-sigCh
		log.Printf("%v: draining (deadline %v)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		code := exitGraceful
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("drain deadline exceeded, force-closing: %v", err)
			srv.Close()
			code = exitDrainForced
		}
		done <- code
	}()

	log.Printf("serving on %s (node %s, pid %d)", *addr, front.FleetStats()[0].Node, os.Getpid())
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("serve: %v", err)
	}
	code := <-done
	if walFile != nil {
		// The WAL's group commit writes through on every batch; Sync
		// pushes the OS cache to disk so the drained state is durable.
		if err := walFile.Sync(); err != nil {
			log.Printf("wal sync: %v", err)
		}
		walFile.Close()
	}
	log.Printf("drained; exiting %d", code)
	os.Exit(code)
}

// clusterOrNil avoids the typed-nil interface trap when no brick cluster
// is configured.
func clusterOrNil(cl *session.SSMCluster) controlplane.ShardCluster {
	if cl == nil {
		return nil
	}
	return cl
}
