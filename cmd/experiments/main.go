// Command experiments regenerates every table and figure of the
// microreboot paper's evaluation and prints them in paper-style form,
// with the paper's own numbers alongside for comparison. It is also the
// scenario-campaign runner: -scenario interprets declarative chaos
// specs, -matrix runs the builtin fault × store × routing campaign.
//
// Usage:
//
//	experiments [-quick] [-seed N] [-only table2,figure1,...] [-cluster-store fasts|ssm-cluster]
//	experiments -list
//	experiments [-quick] -scenario <file.toml|dir> [-matrix] [-matrix-out FILE]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

func main() {
	quick := flag.Bool("quick", false, "run shortened experiments (seconds instead of minutes)")
	seed := flag.Int64("seed", 42, "simulation seed")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	clusterStore := flag.String("cluster-store", "fasts",
		"session store shared by the cluster experiments (figures 3/4, section61): fasts or ssm-cluster")
	list := flag.Bool("list", false, "list experiment ids and discovered scenario specs, then exit")
	scenarioPath := flag.String("scenario", "", "run scenario spec(s): a .toml file or a directory of them")
	matrix := flag.Bool("matrix", false, "also run the builtin fault × store × routing scenario matrix")
	matrixOut := flag.String("matrix-out", "", "write the campaign pass/fail matrix as JSON to this file")
	fleetExec := flag.Bool("fleet-exec", false,
		"run the fleet routing experiment over real ebid-server OS processes behind the reverse proxy, then exit")
	fleetBin := flag.String("fleet-bin", "", "ebid-server binary for -fleet-exec (default: look beside this binary, PATH, then go build)")
	flag.Parse()
	switch *clusterStore {
	case "fasts", "ssm", "ssm-cluster":
	default:
		fmt.Fprintf(os.Stderr, "unknown -cluster-store %q (want fasts, ssm or ssm-cluster)\n", *clusterStore)
		os.Exit(2)
	}

	// An explicitly passed -seed pins the seed even when it is zero;
	// otherwise the harness default (42) applies.
	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})

	o := experiments.Options{Quick: *quick, Seed: *seed, SeedSet: seedSet, ClusterStore: *clusterStore}

	if *list {
		listAll()
		return
	}
	if *fleetExec {
		os.Exit(runFleetExec(o, *fleetBin))
	}
	if *scenarioPath != "" || *matrix {
		os.Exit(runScenarios(o, *scenarioPath, *matrix, *matrixOut))
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToLower(strings.TrimSpace(id))] = true
		}
	}
	run := func(id string) bool { return len(want) == 0 || want[id] }

	start := time.Now()
	var fig1 *experiments.Figure1Result
	var fig3 *experiments.Figure3Result

	if run("table1") {
		section("Table 1")
		fmt.Println(experiments.Table1(o))
	}
	if run("table2") {
		section("Table 2")
		fmt.Println(experiments.Table2(o))
	}
	if run("table3") {
		section("Table 3")
		fmt.Println(experiments.Table3(o))
	}
	if run("figure1") {
		section("Figure 1")
		fig1 = experiments.Figure1(o)
		fmt.Println(fig1)
	}
	if run("figure2") {
		section("Figure 2")
		fmt.Println(experiments.Figure2(o))
	}
	if run("figure3") {
		section("Figure 3")
		fig3 = experiments.Figure3(o)
		fmt.Println(fig3)
	}
	if run("figure4") || run("table4") {
		section("Figure 4 / Table 4")
		fmt.Println(experiments.Figure4(o))
	}
	if run("table5") {
		section("Table 5")
		fmt.Println(experiments.Table5(o))
	}
	if run("table6") {
		section("Table 6")
		fmt.Println(experiments.Table6(o))
	}
	if run("figure5") {
		section("Figure 5")
		fmt.Println(experiments.Figure5Left(o))
		micro, restart := 78.0, 3917.0
		if fig1 != nil && fig1.MicroAvgPerRecovery > 0 {
			micro, restart = fig1.MicroAvgPerRecovery, fig1.RestartAvgPerRecovery
		}
		fmt.Println(experiments.Figure5Right(micro, restart))
	}
	if run("figure6") {
		section("Figure 6")
		fmt.Println(experiments.Figure6(o))
	}
	if run("ablation") {
		section("Ablation (extension): sentinel-to-crash delay")
		fmt.Println(experiments.AblationDelay(o, ""))
	}
	if run("brickcrash") {
		section("Brick crash (extension): SSM brick cluster under load")
		fmt.Println(experiments.FigureBrickCrash(o))
	}
	if run("elastic") {
		section("Elastic ring (extension): shard add/remove under load")
		fmt.Println(experiments.FigureElastic(o))
	}
	if run("autoscale") {
		section("Autoscale (extension): control-plane-driven resize under load")
		fmt.Println(experiments.FigureAutoscale(o))
	}
	if run("brickslow") {
		section("Brick slow (extension): fail-stutter latency with/without slow-replica routing")
		fmt.Println(experiments.FigureBrickSlow(o))
	}
	if run("fleet") {
		section("Fleet routing (extension): shedding + least-loaded vs static round-robin")
		fmt.Println(experiments.FigureFleet(o))
	}
	if run("section61") {
		section("Section 6.1")
		if fig1 == nil {
			fig1 = &experiments.Figure1Result{MicroAvgPerRecovery: 78, RestartAvgPerRecovery: 3917}
		}
		if fig3 == nil {
			fig3 = experiments.Figure3(o)
		}
		fmt.Println(experiments.Section61(o, fig1, fig3))
	}

	fmt.Fprintf(os.Stderr, "all experiments completed in %v\n", time.Since(start).Round(time.Millisecond))
}

func section(title string) {
	fmt.Println(strings.Repeat("=", 78))
	fmt.Println("  " + title)
	fmt.Println(strings.Repeat("=", 78))
}

// listAll prints every -only id and every scenario spec discovered under
// ./scenarios, each with its one-line description.
func listAll() {
	fmt.Println("experiments (-only):")
	for _, e := range experiments.Catalog() {
		fmt.Printf("  %-12s %s\n", e.ID, e.Description)
	}
	specs, err := scenario.LoadDir("scenarios")
	if err != nil {
		fmt.Printf("\nscenarios: none discovered (%v)\n", err)
		return
	}
	fmt.Println("\nscenarios (-scenario scenarios/<name>.toml, or -scenario scenarios for all):")
	for _, s := range specs {
		name := s.Name
		if s.ExpectFail {
			name += " (negative control)"
		}
		fmt.Printf("  %-22s %s\n", name, s.Description)
	}
	fmt.Println("\nbuiltin matrix (-matrix):")
	for _, s := range scenario.MatrixSpecs() {
		fmt.Printf("  %-40s %s\n", s.Name, s.Description)
	}
}

// runScenarios runs the requested scenario campaign and returns the
// process exit code.
func runScenarios(o experiments.Options, path string, matrix bool, out string) int {
	var specs []*scenario.Spec
	if path != "" {
		st, err := os.Stat(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if st.IsDir() {
			specs, err = scenario.LoadDir(path)
		} else {
			var s *scenario.Spec
			s, err = scenario.LoadFile(path)
			specs = []*scenario.Spec{s}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if matrix {
		specs = append(specs, scenario.MatrixSpecs()...)
	}
	section("Scenario campaign")
	c, err := scenario.RunCampaign(specs, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, r := range c.Results {
		fmt.Println(r.Outcome)
	}
	fmt.Println()
	fmt.Print(c.Table())
	if out != "" {
		blob, err := c.JSON()
		if err == nil {
			err = os.WriteFile(out, blob, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "matrix-out:", err)
			return 2
		}
		fmt.Fprintln(os.Stderr, "wrote", out)
	}
	if !c.Passed() {
		return 1
	}
	return 0
}

// runFleetExec resolves an ebid-server binary and runs the routing
// experiment over real OS processes.
func runFleetExec(o experiments.Options, bin string) int {
	resolved, cleanup, err := resolveServerBin(bin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer cleanup()
	section("Fleet routing (OS processes)")
	res, err := experiments.FigureFleetExec(o, resolved)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleet-exec:", err)
		return 1
	}
	fmt.Println(res)
	if res.RoundRobin.Estab5xx+res.Routed.Estab5xx > 0 {
		fmt.Fprintf(os.Stderr, "fleet-exec: %d established sessions saw 5xx\n",
			res.RoundRobin.Estab5xx+res.Routed.Estab5xx)
		return 1
	}
	if res.Routed.LostSessions > 0 {
		fmt.Fprintf(os.Stderr, "fleet-exec: %d sessions lost\n", res.Routed.LostSessions)
		return 1
	}
	return 0
}

// resolveServerBin finds (or builds) the ebid-server binary: the
// explicit path, a sibling of this executable, PATH, then go build into
// a temp dir (cleaned up by the returned func).
func resolveServerBin(explicit string) (string, func(), error) {
	nop := func() {}
	if explicit != "" {
		if _, err := os.Stat(explicit); err != nil {
			return "", nop, fmt.Errorf("-fleet-bin %s: %w", explicit, err)
		}
		return explicit, nop, nil
	}
	if self, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(self), "ebid-server")
		if _, err := os.Stat(cand); err == nil {
			return cand, nop, nil
		}
	}
	if p, err := exec.LookPath("ebid-server"); err == nil {
		return p, nop, nil
	}
	dir, err := os.MkdirTemp("", "fleet-bin-")
	if err != nil {
		return "", nop, err
	}
	out := filepath.Join(dir, "ebid-server")
	cmd := exec.Command("go", "build", "-o", out, "repro/cmd/ebid-server")
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		os.RemoveAll(dir)
		return "", nop, fmt.Errorf("building ebid-server: %w (pass -fleet-bin)", err)
	}
	return out, func() { os.RemoveAll(dir) }, nil
}
