// Command loadgen drives a running ebid-server (or an ebid-proxy fleet)
// with the paper's client workload over real HTTP: emulated users
// walking the Markov chain of Table 1, with client-side failure
// detection and a live Taw readout.
//
// The client behaves crash-only: a 401 means its session lapsed (the
// backend process died and took the session store with it), so it logs
// in again and repeats the operation; a 503 + Retry-After is admission
// control, honored by waiting. Neither is a failure. A plain 5xx to an
// established session IS a failure — with -fail-established-5xx the
// exit code makes that a CI-enforceable contract.
//
// Usage:
//
//	loadgen [-url http://localhost:8080] [-clients 50] [-duration 30s] [-think 500ms] [-fail-established-5xx]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/cookiejar"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ebid"
)

// counters aggregates client-observed outcomes across all emulated users.
type counters struct {
	good     atomic.Int64 // 200s with sane bodies
	bad      atomic.Int64 // failures the user saw
	retried  atomic.Int64 // 503 + Retry-After honored (admission control)
	relogins atomic.Int64 // 401 session lapses answered by logging in again
	estab5xx atomic.Int64 // 5xx (not shedding) on an established session — the fleet contract violation
}

func main() {
	base := flag.String("url", "http://localhost:8080", "ebid-server or ebid-proxy base URL")
	clients := flag.Int("clients", 50, "concurrent emulated users")
	duration := flag.Duration("duration", 30*time.Second, "run length")
	think := flag.Duration("think", 500*time.Millisecond, "mean think time (paper: 7s)")
	users := flag.Int64("users", 250, "dataset user-id range")
	items := flag.Int64("items", 3300, "dataset item-id range")
	failEstab := flag.Bool("fail-established-5xx", false,
		"exit 1 if any established session receives a 5xx other than admission-control shedding")
	flag.Parse()

	var c counters
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			runClient(id, *base, deadline, *think, *users, *items, &c)
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	tick := time.NewTicker(2 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			log.Printf("good=%d bad=%d retried=%d relogins=%d estab5xx=%d",
				c.good.Load(), c.bad.Load(), c.retried.Load(), c.relogins.Load(), c.estab5xx.Load())
		case <-done:
			fmt.Printf("final: good=%d bad=%d retried=%d relogins=%d estab5xx=%d\n",
				c.good.Load(), c.bad.Load(), c.retried.Load(), c.relogins.Load(), c.estab5xx.Load())
			if *failEstab && c.estab5xx.Load() > 0 {
				fmt.Printf("FAIL: %d established sessions saw 5xx\n", c.estab5xx.Load())
				os.Exit(1)
			}
			return
		}
	}
}

// runClient walks a simplified session loop: login, browse/bid, logout.
func runClient(id int, base string, deadline time.Time, think time.Duration,
	users, items int64, c *counters) {
	rng := rand.New(rand.NewSource(int64(id) + 1))
	jar, err := cookiejar.New(nil)
	if err != nil {
		return
	}
	hc := &http.Client{Jar: jar, Timeout: 30 * time.Second}

	established := false
	curUser := int64(1)

	fetch := func(op string, query string) (*http.Response, []byte, bool) {
		url := base + "/ebid/" + op
		if query != "" {
			url += "?" + query
		}
		resp, err := hc.Get(url)
		if err != nil {
			return nil, nil, false
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, body, true
	}

	get := func(op string, query string) bool {
		for attempt := 0; attempt < 4; attempt++ {
			resp, body, ok := fetch(op, query)
			if !ok {
				c.bad.Add(1)
				return false
			}
			if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") != "" {
				// Admission control: honor Retry-After (§6.2's retry).
				c.retried.Add(1)
				wait := time.Second
				var secs int
				if _, err := fmt.Sscan(resp.Header.Get("Retry-After"), &secs); err == nil && secs > 0 {
					wait = time.Duration(secs) * time.Second
				}
				time.Sleep(wait)
				continue
			}
			if resp.StatusCode == http.StatusUnauthorized {
				// Session lapse: the crash-only answer is to log in
				// again and repeat the operation, transparently to the
				// "user".
				c.relogins.Add(1)
				established = false
				if op == ebid.Authenticate {
					c.bad.Add(1)
					return false
				}
				if r2, _, ok2 := fetch(ebid.Authenticate, fmt.Sprintf("user=%d", curUser)); ok2 && r2.StatusCode == http.StatusOK {
					established = true
					continue
				}
				c.bad.Add(1)
				return false
			}
			if resp.StatusCode >= 500 {
				if established {
					c.estab5xx.Add(1)
				}
				c.bad.Add(1)
				return false
			}
			lower := strings.ToLower(string(body))
			if resp.StatusCode != 200 || strings.Contains(lower, "exception") ||
				strings.Contains(lower, "error") || strings.Contains(lower, "failed") {
				c.bad.Add(1)
				return false
			}
			c.good.Add(1)
			return true
		}
		c.bad.Add(1)
		return false
	}
	pause := func() {
		d := time.Duration(rng.ExpFloat64() * float64(think))
		if d > 10*think {
			d = 10 * think
		}
		time.Sleep(d)
	}

	for time.Now().Before(deadline) {
		get(ebid.OpHome, "")
		pause()
		curUser = 1 + rng.Int63n(users)
		if get(ebid.Authenticate, fmt.Sprintf("user=%d", curUser)) {
			established = true
		}
		pause()
		for i := 0; i < 3+rng.Intn(5) && time.Now().Before(deadline); i++ {
			switch rng.Intn(5) {
			case 0:
				get(ebid.BrowseCategories, "")
			case 1:
				get(ebid.ViewItem, fmt.Sprintf("item=%d", 1+rng.Int63n(items)))
			case 2:
				get(ebid.SearchItemsByCategory, fmt.Sprintf("category=%d", 1+rng.Int63n(20)))
			case 3:
				if get(ebid.MakeBid, fmt.Sprintf("item=%d", 1+rng.Int63n(items))) {
					pause()
					get(ebid.CommitBid, fmt.Sprintf("amount=%d", 1+rng.Intn(500)))
				}
			case 4:
				get(ebid.AboutMe, "")
			}
			pause()
		}
		get(ebid.OpLogout, "")
		established = false
		pause()
	}
}
