// Command loadgen drives a running ebid-server with the paper's client
// workload over real HTTP: emulated users walking the Markov chain of
// Table 1, with client-side failure detection and a live Taw readout.
//
// Usage:
//
//	loadgen [-url http://localhost:8080] [-clients 50] [-duration 30s] [-think 500ms]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/cookiejar"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ebid"
)

func main() {
	base := flag.String("url", "http://localhost:8080", "ebid-server base URL")
	clients := flag.Int("clients", 50, "concurrent emulated users")
	duration := flag.Duration("duration", 30*time.Second, "run length")
	think := flag.Duration("think", 500*time.Millisecond, "mean think time (paper: 7s)")
	users := flag.Int64("users", 250, "dataset user-id range")
	items := flag.Int64("items", 3300, "dataset item-id range")
	flag.Parse()

	var good, bad, retried atomic.Int64
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			runClient(id, *base, deadline, *think, *users, *items, &good, &bad, &retried)
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	tick := time.NewTicker(2 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			log.Printf("good=%d bad=%d retried=%d", good.Load(), bad.Load(), retried.Load())
		case <-done:
			fmt.Printf("final: good=%d bad=%d retried=%d\n", good.Load(), bad.Load(), retried.Load())
			return
		}
	}
}

// runClient walks a simplified session loop: login, browse/bid, logout.
func runClient(id int, base string, deadline time.Time, think time.Duration,
	users, items int64, good, bad, retried *atomic.Int64) {
	rng := rand.New(rand.NewSource(int64(id) + 1))
	jar, err := cookiejar.New(nil)
	if err != nil {
		return
	}
	hc := &http.Client{Jar: jar, Timeout: 30 * time.Second}

	get := func(op string, query string) bool {
		url := base + "/ebid/" + op
		if query != "" {
			url += "?" + query
		}
		for attempt := 0; attempt < 3; attempt++ {
			resp, err := hc.Get(url)
			if err != nil {
				bad.Add(1)
				return false
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusServiceUnavailable {
				// Honor Retry-After: the transparent retry of §6.2.
				retried.Add(1)
				wait := time.Second
				if ra := resp.Header.Get("Retry-After"); ra != "" {
					var secs int
					if _, err := fmt.Sscan(ra, &secs); err == nil && secs > 0 {
						wait = time.Duration(secs) * time.Second
					}
				}
				time.Sleep(wait)
				continue
			}
			lower := strings.ToLower(string(body))
			if resp.StatusCode != 200 || strings.Contains(lower, "exception") ||
				strings.Contains(lower, "error") || strings.Contains(lower, "failed") {
				bad.Add(1)
				return false
			}
			good.Add(1)
			return true
		}
		bad.Add(1)
		return false
	}
	pause := func() {
		d := time.Duration(rng.ExpFloat64() * float64(think))
		if d > 10*think {
			d = 10 * think
		}
		time.Sleep(d)
	}

	for time.Now().Before(deadline) {
		get(ebid.OpHome, "")
		pause()
		get(ebid.Authenticate, fmt.Sprintf("user=%d", 1+rng.Int63n(users)))
		pause()
		for i := 0; i < 3+rng.Intn(5) && time.Now().Before(deadline); i++ {
			switch rng.Intn(5) {
			case 0:
				get(ebid.BrowseCategories, "")
			case 1:
				get(ebid.ViewItem, fmt.Sprintf("item=%d", 1+rng.Int63n(items)))
			case 2:
				get(ebid.SearchItemsByCategory, fmt.Sprintf("category=%d", 1+rng.Int63n(20)))
			case 3:
				if get(ebid.MakeBid, fmt.Sprintf("item=%d", 1+rng.Int63n(items))) {
					pause()
					get(ebid.CommitBid, fmt.Sprintf("amount=%d", 1+rng.Intn(500)))
				}
			case 4:
				get(ebid.AboutMe, "")
			}
			pause()
		}
		get(ebid.OpLogout, "")
		pause()
	}
}
