// Auction: the full crash-only eBid application under emulated load,
// with a fault injected mid-run and the recovery manager curing it by
// microreboot — the Figure 1 scenario in miniature.
//
//	go run ./examples/auction
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/ebid"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/store/db"
	"repro/internal/store/session"
	"repro/internal/workload"
)

func main() {
	kernel := sim.NewKernel(7)
	database := db.New(nil)
	dataset := ebid.DefaultDataset()
	if err := ebid.LoadDataset(database, dataset); err != nil {
		log.Fatal(err)
	}
	store := session.NewFastS()
	node, err := cluster.NewNode(kernel, database, store, cluster.NodeConfig{
		Name: "node0", Dataset: dataset,
	})
	if err != nil {
		log.Fatal(err)
	}

	recorder := metrics.NewRecorder(time.Second, 8*time.Second)
	emulator := workload.NewEmulator(kernel, node, recorder, workload.Config{
		Clients: 500,
		Users:   int64(dataset.Users), Items: int64(dataset.Items),
		Categories: int64(dataset.Categories), Regions: int64(dataset.Regions),
	})

	// Recovery manager fed by the client-side failure monitors.
	rm := recovery.NewManager(kernel, node, recovery.Config{Threshold: 3})
	emulator.OnFailure(func(_ int, op string, resp workload.Response) {
		rm.Report(recovery.Report{Op: op, Kind: "client-detector"})
	})

	// At t=3min, corrupt the naming entry for the bid-commit component.
	// The injector must target the node's actual store: with a fresh
	// FastS here, store-corruption faults would silently damage an
	// unused map instead of live session state.
	injector := faults.NewInjector(node.Server(), database, node.Store())
	kernel.ScheduleAt(3*time.Minute, func() {
		fmt.Println("t=3m  injecting: corrupt naming entry for CommitBid")
		if _, err := injector.Inject(faults.Spec{
			Kind: faults.CorruptNaming, Component: ebid.CommitBid, Mode: faults.ModeNull,
		}); err != nil {
			log.Fatal(err)
		}
	})

	fmt.Println("running 500 emulated clients for 8 simulated minutes...")
	emulator.Start()
	kernel.RunFor(8 * time.Minute)
	emulator.Stop()
	emulator.FlushActions()

	fmt.Printf("\ngoodput: %.1f req/s, mean latency %v\n",
		recorder.GoodputOver(time.Minute, 8*time.Minute), recorder.Latencies().Mean())
	fmt.Printf("failed requests: %d (of %d); failed actions: %d\n",
		recorder.BadOps(), recorder.BadOps()+recorder.GoodOps(), recorder.FailedActions())
	fmt.Println("\nrecovery actions taken by the manager:")
	for _, a := range rm.Actions {
		fmt.Printf("  t=%-8v %-6s reboot of %s (members: %s, took %v)\n",
			a.At.Round(time.Second), a.Scope, a.Target,
			strings.Join(a.Reboot.Members, ","), a.Reboot.Duration())
	}
	if len(rm.Actions) == 0 {
		fmt.Println("  (none)")
	}
}
