// Cluster failover: a 4-node cluster behind a session-affinity load
// balancer; one node develops a fault and is recovered two ways — by a
// whole-process restart with failover, and by a microreboot — showing
// the Figure 3 effect: the µRB loses an order of magnitude fewer
// requests because sessions stay put and the recovery window is tiny.
//
//	go run ./examples/clusterfailover
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/ebid"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/store/db"
	"repro/internal/store/session"
	"repro/internal/workload"
)

func run(useRestart bool) (failed int64, sessions int) {
	kernel := sim.NewKernel(21)
	database := db.New(nil)
	dataset := ebid.DefaultDataset()
	if err := ebid.LoadDataset(database, dataset); err != nil {
		log.Fatal(err)
	}
	var nodes []*cluster.Node
	var injectors []*faults.Injector
	for i := 0; i < 4; i++ {
		store := session.NewFastS() // node-local session state
		n, err := cluster.NewNode(kernel, database, store, cluster.NodeConfig{
			Name: fmt.Sprintf("node%d", i), Dataset: dataset,
		})
		if err != nil {
			log.Fatal(err)
		}
		nodes = append(nodes, n)
		injectors = append(injectors, faults.NewInjector(n.Server(), database, store))
	}
	lb := cluster.NewLoadBalancer(nodes)
	plane := controlplane.New(controlplane.Config{Clock: kernel.Now, Fleet: lb})
	plane.Use(controlplane.NewFleetController(lb, controlplane.FleetConfig{}))
	recorder := metrics.NewRecorder(time.Second, 8*time.Second)
	emulator := workload.NewEmulator(kernel, lb, recorder, workload.Config{
		Clients: 4 * 500,
		Users:   int64(dataset.Users), Items: int64(dataset.Items),
		Categories: int64(dataset.Categories), Regions: int64(dataset.Regions),
	})
	emulator.Start()
	kernel.RunFor(3 * time.Minute)

	// Node 0 develops a µRB-curable fault.
	bad := nodes[0]
	if _, err := injectors[0].Inject(faults.Spec{
		Kind: faults.TransientException, Component: ebid.BrowseCategories,
	}); err != nil {
		log.Fatal(err)
	}
	kernel.RunFor(2 * time.Second) // detection latency
	lb.ResetFailoverStats()
	// Recovery announces itself on the control-plane bus; the fleet
	// controller drains the node's traffic away (and restores it when
	// the recovered signal lands) — nothing pokes the balancer directly.
	plane.ReportNodeRecovery(bad.Name, true)
	var rb *core.Reboot
	var err error
	if useRestart {
		rb, err = bad.RebootScope(core.ScopeProcess)
	} else {
		rb, err = bad.Microreboot(ebid.BrowseCategories)
	}
	if err != nil {
		log.Fatal(err)
	}
	kernel.Schedule(rb.Duration(), func() { plane.ReportNodeRecovery(bad.Name, false) })

	kernel.RunFor(7 * time.Minute)
	emulator.Stop()
	emulator.FlushActions()
	kernel.RunFor(30 * time.Second)
	return recorder.BadOps(), lb.SessionsFailedOver()
}

func main() {
	fmt.Println("4-node cluster, 2000 clients, fault in node0, failover during recovery")
	fmt.Println("\n-- recovery by JVM process restart (19.1s) --")
	rf, rs := run(true)
	fmt.Printf("failed requests: %d; sessions failed over: %d\n", rf, rs)

	fmt.Println("\n-- recovery by microreboot (0.4s) --")
	mf, ms := run(false)
	fmt.Printf("failed requests: %d; sessions failed over: %d\n", mf, ms)

	if mf > 0 {
		fmt.Printf("\nmicroreboot lost %.0fx fewer requests\n", float64(rf)/float64(mf))
	}
}
