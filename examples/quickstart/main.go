// Quickstart: the microreboot machinery in ~80 lines.
//
// Two components are deployed on an application server; one is
// microrebooted while the other keeps serving; a call into the recovering
// component receives RetryAfter, and after reintegration everything
// works again. Calls flow through Server.Invoke, which runs the
// interceptor pipeline — here a one-line logging interceptor — and binds
// a context to each request.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"repro/internal/core"
)

// greeter is a minimal crash-only component: stateless, instant init.
type greeter struct{ name string }

func (g *greeter) Init(env *core.Env) error { return nil }
func (g *greeter) Stop() error              { return nil }
func (g *greeter) Serve(ctx context.Context, call *core.Call) (any, error) {
	return fmt.Sprintf("%s handled %s", g.name, call.Op), nil
}

func main() {
	srv := core.NewServer()
	// A logging interceptor observes every hop of every invocation.
	srv.Use(func(ctx context.Context, call *core.Call, next core.Handler) (any, error) {
		res, err := next(ctx, call)
		fmt.Printf("  [interceptor] %s/%s err=%v\n", call.Component, call.Op, err)
		return res, err
	})
	app := core.Application{
		Name: "quickstart",
		Components: []core.Descriptor{
			{Name: "Greeter", Factory: func() core.Component { return &greeter{name: "Greeter"} }},
			{Name: "Sidekick", Factory: func() core.Component { return &greeter{name: "Sidekick"} }},
		},
	}
	if err := srv.Deploy(app); err != nil {
		log.Fatal(err)
	}
	fmt.Println("deployed:", srv.Components())

	invoke := func(name string) {
		res, err := srv.Invoke(context.Background(), name, &core.Call{Op: "hello"})
		if err != nil {
			var ra *core.RetryAfterError
			if errors.As(err, &ra) {
				fmt.Printf("%s: recovering, retry after %v\n", name, ra.After)
				return
			}
			fmt.Printf("%s: %v\n", name, err)
			return
		}
		fmt.Printf("%s: %v\n", name, res)
	}

	fmt.Println("\n-- before microreboot --")
	invoke("Greeter")
	invoke("Sidekick")

	// Begin a microreboot of Greeter: its name is bound to a sentinel,
	// instances destroyed, resources released, shepherded calls killed
	// via context cancellation. Sidekick is untouched.
	rb, err := srv.BeginMicroreboot("Greeter")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n-- during microreboot (modeled duration %v) --\n", rb.Duration())
	invoke("Greeter")  // RetryAfter
	invoke("Sidekick") // still serving

	// Complete reintegration: fresh instances, name rebound.
	if err := srv.CompleteMicroreboot(rb); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n-- after microreboot --")
	invoke("Greeter")
	invoke("Sidekick")
}
