// Rejuvenation: a memory-leaking component is kept alive indefinitely by
// microrejuvenation — the Figure 6 / Section 6.4 scenario. The service
// watches heap watermarks and reboots the leakiest components first,
// without ever taking the node down.
//
//	go run ./examples/rejuvenation
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/ebid"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/rejuv"
	"repro/internal/sim"
	"repro/internal/store/db"
	"repro/internal/store/session"
	"repro/internal/workload"
)

func main() {
	kernel := sim.NewKernel(11)
	database := db.New(nil)
	dataset := ebid.DefaultDataset()
	if err := ebid.LoadDataset(database, dataset); err != nil {
		log.Fatal(err)
	}
	store := session.NewFastS()
	node, err := cluster.NewNode(kernel, database, store, cluster.NodeConfig{Name: "node0", Dataset: dataset})
	if err != nil {
		log.Fatal(err)
	}
	injector := faults.NewInjector(node.Server(), database, store)

	// The paper's leaks: 2 KB/invocation in Item, 250 KB in ViewItem.
	for comp, perCall := range map[string]int64{
		ebid.EntItem:  2 << 10,
		ebid.ViewItem: 250 << 10,
	} {
		if _, err := injector.Inject(faults.Spec{
			Kind: faults.AppMemoryLeak, Component: comp, LeakPerCall: perCall,
		}); err != nil {
			log.Fatal(err)
		}
	}

	heap := rejuv.NewHeap(1<<30, 64<<20, node.Server(), nil)
	svc := rejuv.NewService(kernel, node, node.Server(), heap, rejuv.Config{
		Malarm:      350 << 20, // 35% of the 1 GB heap
		Msufficient: 800 << 20, // 80%
		Interval:    5 * time.Second,
	})
	svc.Start()

	recorder := metrics.NewRecorder(time.Second, 8*time.Second)
	emulator := workload.NewEmulator(kernel, node, recorder, workload.Config{
		Clients: 500,
		Users:   int64(dataset.Users), Items: int64(dataset.Items),
		Categories: int64(dataset.Categories), Regions: int64(dataset.Regions),
	})
	emulator.Start()

	fmt.Println("running 30 simulated minutes with injected leaks...")
	kernel.RunFor(30 * time.Minute)
	svc.Stop()
	emulator.Stop()
	emulator.FlushActions()

	fmt.Printf("\nrejuvenation episodes: %d (component µRBs: %d, process restarts: %d)\n",
		svc.Rejuvenations, svc.ComponentReboots, svc.ProcessRestarts)
	fmt.Printf("failed requests across the whole run: %d of %d\n",
		recorder.BadOps(), recorder.BadOps()+recorder.GoodOps())
	fmt.Printf("node was never shut down: %v\n", !node.Down())

	fmt.Println("\navailable memory timeline (sampled):")
	step := len(svc.Samples) / 15
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(svc.Samples); i += step {
		s := svc.Samples[i]
		bar := int(s.Available >> 20 / 32)
		fmt.Printf("  t=%-8v %4d MB |%s\n", s.At.Round(time.Second), s.Available>>20,
			stringsRepeat('#', bar))
	}
}

func stringsRepeat(c byte, n int) string {
	if n < 0 {
		n = 0
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}
