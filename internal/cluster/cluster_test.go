package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ebid"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/store/db"
	"repro/internal/store/session"
	"repro/internal/workload"
)

func testDataset() ebid.DatasetConfig {
	return ebid.DatasetConfig{Users: 100, Items: 500, BidsPerItem: 5, Categories: 10, Regions: 10, OldItems: 20, Seed: 1}
}

func newTestNode(t *testing.T, k *sim.Kernel, cfg NodeConfig) *Node {
	t.Helper()
	d := db.New(nil)
	if err := ebid.LoadDataset(d, testDataset()); err != nil {
		t.Fatal(err)
	}
	cfg.Dataset = testDataset()
	n, err := NewNode(k, d, session.NewFastS(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func emulatorConfig(clients int) workload.Config {
	ds := testDataset()
	return workload.Config{
		Clients:    clients,
		Users:      int64(ds.Users),
		Items:      int64(ds.Items),
		Categories: int64(ds.Categories),
		Regions:    int64(ds.Regions),
	}
}

func TestSteadyStateThroughputAndLatency(t *testing.T) {
	k := sim.NewKernel(1)
	n := newTestNode(t, k, NodeConfig{Name: "n0"})
	rec := metrics.NewRecorder(time.Second, 8*time.Second)
	em := workload.NewEmulator(k, n, rec, emulatorConfig(500))
	em.Start()
	k.RunFor(10 * time.Minute)
	em.Stop()
	em.FlushActions()

	rate := rec.GoodputOver(2*time.Minute, 10*time.Minute)
	if rate < 60 || rate > 85 {
		t.Fatalf("goodput = %.1f req/s, want ~72 (Table 5)", rate)
	}
	mean := rec.Latencies().Mean()
	if mean < 10*time.Millisecond || mean > 25*time.Millisecond {
		t.Fatalf("mean latency = %v, want ~15ms (Table 5)", mean)
	}
	if rec.BadOps() != 0 {
		t.Fatalf("fault-free run had %d bad ops", rec.BadOps())
	}
	t.Logf("goodput=%.1f req/s, mean latency=%v", rate, mean)
}

func TestMicrorebootFailsFewerRequestsThanRestart(t *testing.T) {
	run := func(useRestart bool) int64 {
		k := sim.NewKernel(2)
		n := newTestNode(t, k, NodeConfig{Name: "n0"})
		rec := metrics.NewRecorder(time.Second, 8*time.Second)
		em := workload.NewEmulator(k, n, rec, emulatorConfig(500))
		em.Start()
		k.RunFor(3 * time.Minute)
		if useRestart {
			if _, err := n.RebootScope(core.ScopeProcess); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := n.Microreboot(ebid.EntItem); err != nil {
				t.Fatal(err)
			}
		}
		k.RunFor(4 * time.Minute)
		em.Stop()
		em.FlushActions()
		k.RunFor(time.Minute)
		return rec.BadOps()
	}
	mrb := run(false)
	restart := run(true)
	if mrb == 0 {
		t.Fatal("µRB of EntityGroup failed zero requests; model too forgiving")
	}
	if restart < 10*mrb {
		t.Fatalf("restart failed %d vs µRB %d; want ≥10× (order of magnitude)", restart, mrb)
	}
	t.Logf("failed requests: µRB=%d, process restart=%d (%.0fx)", mrb, restart, float64(restart)/float64(mrb))
}

func TestProcessRestartLosesFastSSessions(t *testing.T) {
	k := sim.NewKernel(3)
	n := newTestNode(t, k, NodeConfig{Name: "n0"})
	// Establish a session directly.
	done := false
	n.Submit(&workload.Request{
		Op: ebid.Authenticate, SessionID: "s1",
		Args:     core.ArgMap{"user": int64(1)},
		Complete: func(r workload.Response) { done = r.OK() },
	})
	k.RunFor(time.Second)
	if !done {
		t.Fatal("login failed")
	}
	if _, err := n.RebootScope(core.ScopeProcess); err != nil {
		t.Fatal(err)
	}
	// While down: connection refused.
	var refused error
	n.Submit(&workload.Request{Op: ebid.OpHome, SessionID: "s1",
		Complete: func(r workload.Response) { refused = r.Err }})
	k.RunFor(5 * time.Second)
	if !errors.Is(refused, ErrConnectionRefused) {
		t.Fatalf("during restart err = %v, want connection refused", refused)
	}
	k.RunFor(30 * time.Second) // restart completes (19.083s)
	var after error
	n.Submit(&workload.Request{Op: ebid.AboutMe, SessionID: "s1",
		Complete: func(r workload.Response) { after = r.Err }})
	k.RunFor(5 * time.Second)
	if after == nil {
		t.Fatal("session survived a process restart with FastS")
	}
}

func TestRetry503MasksMicroreboot(t *testing.T) {
	count := func(retry bool) (failed int64, retried int64) {
		k := sim.NewKernel(4)
		n := newTestNode(t, k, NodeConfig{Name: "n0", Retry503: retry})
		rec := metrics.NewRecorder(time.Second, 8*time.Second)
		em := workload.NewEmulator(k, n, rec, emulatorConfig(500))
		em.Start()
		k.RunFor(2 * time.Minute)
		// Ten spaced µRBs so the recovery windows see real traffic.
		for i := 0; i < 10; i++ {
			if _, err := n.Microreboot(ebid.BrowseCategories); err != nil {
				t.Fatal(err)
			}
			k.RunFor(10 * time.Second)
		}
		em.Stop()
		em.FlushActions()
		_, _, r, _ := n.Stats()
		return rec.BadOps(), r
	}
	noRetryFailed, _ := count(false)
	retryFailed, retried := count(true)
	if retried == 0 {
		t.Fatal("no transparent retries happened")
	}
	if retryFailed >= noRetryFailed {
		t.Fatalf("retry did not reduce failures: %d vs %d", retryFailed, noRetryFailed)
	}
	t.Logf("failed: no-retry=%d, retry=%d (retried %d calls)", noRetryFailed, retryFailed, retried)
}

func TestHungRequestsOccupyWorkersUntilKilled(t *testing.T) {
	k := sim.NewKernel(5)
	n := newTestNode(t, k, NodeConfig{Name: "n0", Workers: 2, RequestTTL: time.Hour})
	// Wedge both workers via an injected infinite loop: the fault hook
	// runs as an interceptor on the node's server.
	inj := faults.NewInjector(n.Server(), nil, nil)
	wedge, err := inj.Inject(faults.Spec{Kind: faults.InfiniteLoop, Component: ebid.ViewItem})
	if err != nil {
		t.Fatal(err)
	}
	var results []error
	for i := 0; i < 2; i++ {
		n.Submit(&workload.Request{Op: ebid.ViewItem, Args: core.ArgMap{"item": int64(1)},
			Complete: func(r workload.Response) { results = append(results, r.Err) }})
	}
	k.RunFor(time.Second)
	if n.Busy() != 2 {
		t.Fatalf("busy = %d, want 2 wedged workers", n.Busy())
	}
	// A third request queues behind the wedged workers.
	n.Submit(&workload.Request{Op: ebid.OpHome,
		Complete: func(r workload.Response) { results = append(results, r.Err) }})
	k.RunFor(10 * time.Second)
	if len(results) != 0 {
		t.Fatalf("requests completed while wedged: %v", results)
	}
	// µRB the hung component: shepherds killed, workers freed, queue drains.
	wedge.Deactivate()
	if _, err := n.Microreboot(ebid.ViewItem); err != nil {
		t.Fatal(err)
	}
	k.RunFor(5 * time.Second)
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3 (2 killed + 1 drained)", len(results))
	}
	if results[0] == nil || results[1] == nil {
		t.Fatal("killed requests must fail")
	}
	if results[2] != nil {
		t.Fatalf("queued request failed after recovery: %v", results[2])
	}
}

func TestRequestTTLPurgesStuckRequests(t *testing.T) {
	k := sim.NewKernel(6)
	n := newTestNode(t, k, NodeConfig{Name: "n0", Workers: 1, RequestTTL: 10 * time.Second})
	inj := faults.NewInjector(n.Server(), nil, nil)
	if _, err := inj.Inject(faults.Spec{Kind: faults.InfiniteLoop, Component: ebid.ViewItem}); err != nil {
		t.Fatal(err)
	}
	var got error
	fired := false
	n.Submit(&workload.Request{Op: ebid.ViewItem, Args: core.ArgMap{"item": int64(1)},
		Complete: func(r workload.Response) { got, fired = r.Err, true }})
	k.RunFor(11 * time.Second)
	if !fired || !errors.Is(got, ErrRequestTimeout) {
		t.Fatalf("TTL purge: fired=%v err=%v", fired, got)
	}
	_, _, _, purged := n.Stats()
	if purged != 1 {
		t.Fatalf("purged = %d, want 1", purged)
	}
}

func TestLoadBalancerAffinityAndFailover(t *testing.T) {
	k := sim.NewKernel(7)
	d := db.New(nil)
	if err := ebid.LoadDataset(d, testDataset()); err != nil {
		t.Fatal(err)
	}
	var nodes []*Node
	for i := 0; i < 2; i++ {
		n, err := NewNode(k, d, session.NewFastS(), NodeConfig{Name: fmt.Sprintf("n%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	lb := NewLoadBalancer(nodes)

	// Establish sessions: affinity must pin them.
	ok := 0
	for i := 0; i < 10; i++ {
		sid := fmt.Sprintf("s%d", i)
		lb.Submit(&workload.Request{Op: ebid.Authenticate, SessionID: sid,
			Args: core.ArgMap{"user": int64(i + 1)},
			Complete: func(r workload.Response) {
				if r.OK() {
					ok++
				}
			}})
	}
	k.RunFor(time.Second)
	if ok != 10 {
		t.Fatalf("logins ok = %d, want 10", ok)
	}
	if lb.SessionsOn(nodes[0])+lb.SessionsOn(nodes[1]) != 10 {
		t.Fatal("affinity lost sessions")
	}
	if lb.SessionsOn(nodes[0]) == 0 || lb.SessionsOn(nodes[1]) == 0 {
		t.Fatal("round-robin did not spread sessions")
	}

	// Non-login follow-ups stick to the affinity node (FastS works).
	ok = 0
	for i := 0; i < 10; i++ {
		sid := fmt.Sprintf("s%d", i)
		lb.Submit(&workload.Request{Op: ebid.AboutMe, SessionID: sid,
			Complete: func(r workload.Response) {
				if r.OK() {
					ok++
				}
			}})
	}
	k.RunFor(time.Second)
	if ok != 10 {
		t.Fatalf("affinity follow-ups ok = %d, want 10", ok)
	}

	// Drain node 0: its sessions get redirected and fail (FastS is
	// node-local), while node 1's sessions keep working. The failed
	// sessions' affinity entries are pruned as their loss is observed, so
	// count node 0's sessions before draining.
	n0Sessions := lb.SessionsOn(nodes[0])
	lb.SetDrain(nodes[0].Name, true)
	var failed, succeeded int
	for i := 0; i < 10; i++ {
		sid := fmt.Sprintf("s%d", i)
		lb.Submit(&workload.Request{Op: ebid.AboutMe, SessionID: sid,
			Complete: func(r workload.Response) {
				if r.OK() {
					succeeded++
				} else {
					failed++
				}
			}})
	}
	k.RunFor(time.Second)
	if failed != n0Sessions {
		t.Fatalf("failed = %d, want %d (node 0's redirected sessions)", failed, n0Sessions)
	}
	if succeeded != 10-n0Sessions {
		t.Fatalf("succeeded = %d, want %d", succeeded, 10-n0Sessions)
	}
	if lb.SessionsFailedOver() != n0Sessions {
		t.Fatalf("SessionsFailedOver = %d, want %d", lb.SessionsFailedOver(), n0Sessions)
	}
	lb.SetDrain(nodes[0].Name, false)
	lb.ResetFailoverStats()
	if lb.FailedOverRequests() != 0 {
		t.Fatal("stats not reset")
	}
}

func TestSharedSSMSurvivesFailover(t *testing.T) {
	k := sim.NewKernel(8)
	d := db.New(nil)
	if err := ebid.LoadDataset(d, testDataset()); err != nil {
		t.Fatal(err)
	}
	ssm := session.NewSSM(k.Now, time.Hour)
	var nodes []*Node
	for i := 0; i < 2; i++ {
		n, err := NewNode(k, d, ssm, NodeConfig{Name: fmt.Sprintf("n%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	lb := NewLoadBalancer(nodes)
	okCount := 0
	lb.Submit(&workload.Request{Op: ebid.Authenticate, SessionID: "s0",
		Args: core.ArgMap{"user": int64(1)},
		Complete: func(r workload.Response) {
			if r.OK() {
				okCount++
			}
		}})
	k.RunFor(time.Second)
	home := lb.affinity["s0"]
	lb.SetDrain(home.Name, true)
	lb.Submit(&workload.Request{Op: ebid.AboutMe, SessionID: "s0",
		Complete: func(r workload.Response) {
			if r.OK() {
				okCount++
			}
		}})
	k.RunFor(time.Second)
	if okCount != 2 {
		t.Fatalf("ok = %d, want 2: SSM-backed failover must preserve the session", okCount)
	}
}

func TestSSMLatencyHigherThanFastS(t *testing.T) {
	meanFor := func(store session.Store) time.Duration {
		k := sim.NewKernel(9)
		d := db.New(nil)
		if err := ebid.LoadDataset(d, testDataset()); err != nil {
			t.Fatal(err)
		}
		n, err := NewNode(k, d, store, NodeConfig{Name: "n"})
		if err != nil {
			t.Fatal(err)
		}
		rec := metrics.NewRecorder(time.Second, 8*time.Second)
		em := workload.NewEmulator(k, n, rec, emulatorConfig(200))
		em.Start()
		k.RunFor(5 * time.Minute)
		em.Stop()
		em.FlushActions()
		return rec.Latencies().Mean()
	}
	fasts := meanFor(session.NewFastS())
	ssm := meanFor(session.NewSSM(nil, time.Hour))
	if ssm <= fasts+5*time.Millisecond {
		t.Fatalf("SSM latency %v not appreciably above FastS %v", ssm, fasts)
	}
	t.Logf("mean latency: FastS=%v SSM=%v", fasts, ssm)
}

func TestMicrorebootWithDelayDrainsInFlight(t *testing.T) {
	k := sim.NewKernel(10)
	n := newTestNode(t, k, NodeConfig{Name: "n0"})
	if err := n.MicrorebootWithDelay(200*time.Millisecond, ebid.ViewItem); err != nil {
		t.Fatal(err)
	}
	// During the grace window the sentinel is already bound.
	var got error
	n.Submit(&workload.Request{Op: ebid.ViewItem, Args: core.ArgMap{"item": int64(1)},
		Complete: func(r workload.Response) { got = r.Err }})
	k.RunFor(100 * time.Millisecond)
	if got == nil || !errors.Is(got, ErrServiceUnavailable) {
		t.Fatalf("during grace window err = %v, want 503", got)
	}
	k.RunFor(2 * time.Second)
	var after error
	fired := false
	n.Submit(&workload.Request{Op: ebid.ViewItem, Args: core.ArgMap{"item": int64(1)},
		Complete: func(r workload.Response) { after, fired = r.Err, true }})
	k.RunFor(time.Second)
	if !fired || after != nil {
		t.Fatalf("after recovery: fired=%v err=%v", fired, after)
	}
}
