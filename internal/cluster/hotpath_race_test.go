package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ebid"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/store/session"
	"repro/internal/workload"
)

// TestRouteHotPathRaces hammers the balancer's read-locked routing fast
// path concurrently with every writer that can touch its state: policy
// swaps, drain flips, affinity pruning via completion notes, failover
// stat resets, and the probe-side getters. Run with -race this is the
// regression net for the RWMutex split — it routes against idle nodes
// only (dispatch stays off the simulation kernel's thread) and asserts
// nothing beyond "no request is lost and no invariant-free answer comes
// back".
func TestRouteHotPathRaces(t *testing.T) {
	k := sim.NewKernel(77)
	nodes := newTestCluster(t, k, 4, func() session.Store { return session.NewFastS() }, NodeConfig{RequestTTL: time.Hour})
	lb := NewLoadBalancer(nodes)

	const (
		routers    = 4
		perRouter  = 2000
		flipEvery  = 50 * time.Microsecond
		flipBudget = 200
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Routers: a mix of login ops (affinity writes), sticky follow-ups
	// (affinity reads), and logouts (prune path via noteCompletion).
	for r := 0; r < routers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perRouter; i++ {
				sid := fmt.Sprintf("r%d-s%d", r, i%17)
				login := &workload.Request{Op: ebid.Authenticate, SessionID: sid, Complete: func(workload.Response) {}}
				if _, err := lb.Route(login); err != nil {
					t.Errorf("login route: %v", err)
					return
				}
				browse := &workload.Request{Op: ebid.ViewItem, SessionID: sid}
				if n, err := lb.Route(browse); err != nil || n == nil {
					t.Errorf("browse route: n=%v err=%v", n, err)
					return
				}
				// Exercise the prune path the way Submit would.
				lb.noteCompletion(ebid.OpLogout, sid, workload.Response{})
			}
		}(r)
	}

	// Writer: policy swaps and drain flips while routing is in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		policies := []RoutingPolicy{
			NewRoundRobin(),
			LeastLoadedPolicy{},
			&SheddingPolicy{Inner: NewRoundRobin(), QueueWatermark: 100},
		}
		for i := 0; i < flipBudget; i++ {
			lb.SetPolicy(policies[i%len(policies)])
			lb.SetDrain(nodes[i%len(nodes)].Name, i%2 == 0)
			if i%10 == 0 {
				lb.ResetFailoverStats()
			}
			time.Sleep(flipEvery)
		}
		// Leave every node undrained for the tail of the routing storm.
		for _, n := range nodes {
			lb.SetDrain(n.Name, false)
		}
		close(stop)
	}()

	// Probe: the control plane's view, concurrent with everything above.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = lb.FleetStats()
			_ = lb.PolicyName()
			_ = lb.AffinitySize()
			_ = lb.AffinityPruned()
			_ = lb.FailedOverRequests()
			_ = lb.SessionsFailedOver()
			_ = lb.Shed()
			_ = lb.SessionsOn(nodes[0])
			time.Sleep(10 * time.Microsecond)
		}
	}()

	wg.Wait()
}

// TestInvocationStatsInterceptorRaces drives the stats interceptor from
// many goroutines while readers snapshot components, totals, and latency
// quantiles — the sharded-recorder replacement for the old single-mutex
// accounting must hold up under -race.
func TestInvocationStatsInterceptorRaces(t *testing.T) {
	stats := metrics.NewInvocationStats(nil)
	ic := stats.Interceptor()
	handler := func(ctx context.Context, call *core.Call) (any, error) {
		time.Sleep(time.Microsecond)
		return "ok", nil
	}

	var wg sync.WaitGroup
	const writers = 8
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				call := &core.Call{Op: "op", Component: fmt.Sprintf("comp-%d", i%5)}
				if _, err := ic(context.Background(), call, handler); err != nil {
					t.Errorf("interceptor: %v", err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			var served uint64
			for _, name := range stats.Components() {
				served += stats.Component(name).Served
			}
			if want := uint64(writers * 3000); served != want {
				t.Fatalf("served = %d, want %d (striped counters lost updates)", served, want)
			}
			total, failed := stats.Totals()
			if total != served || failed != 0 {
				t.Fatalf("totals = %d/%d, want %d/0", total, failed, served)
			}
			return
		default:
			for _, name := range stats.Components() {
				_ = stats.Component(name)
				_ = stats.LatencyQuantile(name, 0.99)
			}
			_, _ = stats.Totals()
		}
	}
}
