package cluster

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"sync/atomic"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/ebid"
	"repro/internal/workload"
)

// Endpoint is the load view a routing policy sees of one routable
// target. In-process simulation nodes (*Node) and the reverse proxy's
// remote backends (fleet.Backend, whose gauges come from polling each
// process's /admin/fleet/status) both implement it, so the same policy
// implementations route goroutine fleets and real OS-process fleets.
type Endpoint interface {
	// QueueDepth is how many requests are waiting for a worker (for a
	// remote backend: queued at the proxy).
	QueueDepth() int
	// Busy is how many requests are executing right now.
	Busy() int
}

// RoutingPolicy decides which endpoint serves a request the affinity map
// does not already pin. Policies are invoked OUTSIDE the balancer's lock
// (so routing hot paths never serialize on it) and may be called
// concurrently — implementations must be concurrency-safe. Candidate
// slices are the healthy endpoints, or every endpoint when none is
// healthy (the fallback path: the request must reach some node to fail
// honestly); they are only valid for the duration of the call.
type RoutingPolicy interface {
	Name() string
	// RouteNew picks the endpoint for a request with no session
	// affinity. A non-nil error rejects the request instead (admission
	// control); no endpoint is charged.
	RouteNew(req *workload.Request, cands []Endpoint) (Endpoint, error)
	// RouteSpill picks the failover target for an established session
	// redirected away from its draining or down affinity endpoint.
	// Established sessions are never shed, so spill cannot fail.
	RouteSpill(req *workload.Request, cands []Endpoint) Endpoint
}

// RoundRobinPolicy is the paper's static discipline: even distribution
// of new sessions, uniform redirection of failover traffic. It is
// load-blind — the baseline the queue-aware policies are measured
// against.
type RoundRobinPolicy struct {
	rrNew   atomic.Uint64
	rrSpill atomic.Uint64
}

// NewRoundRobin builds the static baseline policy.
func NewRoundRobin() *RoundRobinPolicy { return &RoundRobinPolicy{} }

// Name implements RoutingPolicy.
func (p *RoundRobinPolicy) Name() string { return "round-robin" }

// RouteNew implements RoutingPolicy.
func (p *RoundRobinPolicy) RouteNew(req *workload.Request, cands []Endpoint) (Endpoint, error) {
	return cands[int((p.rrNew.Add(1)-1)%uint64(len(cands)))], nil
}

// RouteSpill implements RoutingPolicy.
func (p *RoundRobinPolicy) RouteSpill(req *workload.Request, cands []Endpoint) Endpoint {
	return cands[int((p.rrSpill.Add(1)-1)%uint64(len(cands)))]
}

// LeastLoadedPolicy routes to the candidate with the fewest requests in
// the building (queued + busy workers): routing driven by live
// backpressure instead of static position, so a degraded node receives
// only what it can actually drain. Ties fall to the earliest candidate
// for determinism.
type LeastLoadedPolicy struct{}

// Name implements RoutingPolicy.
func (LeastLoadedPolicy) Name() string { return "least-loaded" }

func leastLoaded(cands []Endpoint) Endpoint {
	best := cands[0]
	bestLoad := best.QueueDepth() + best.Busy()
	for _, n := range cands[1:] {
		if load := n.QueueDepth() + n.Busy(); load < bestLoad {
			best, bestLoad = n, load
		}
	}
	return best
}

// RouteNew implements RoutingPolicy.
func (LeastLoadedPolicy) RouteNew(req *workload.Request, cands []Endpoint) (Endpoint, error) {
	return leastLoaded(cands), nil
}

// RouteSpill implements RoutingPolicy.
func (LeastLoadedPolicy) RouteSpill(req *workload.Request, cands []Endpoint) Endpoint {
	return leastLoaded(cands)
}

// DefaultShedWatermark is the per-node queue depth past which the
// shedding policy starts refusing new logins.
const DefaultShedWatermark = 8

// SheddingPolicy is admission control at the balancer: when every
// candidate's queue sits past QueueWatermark, session-establishing
// requests are rejected with a Retry-After hint instead of joining
// queues that can only collapse — the admission control the paper notes
// commercial application servers lack when overloaded (the Figure 4
// regime). Established sessions and non-login traffic are never shed;
// they route through Inner.
type SheddingPolicy struct {
	// Inner picks the node for everything that is admitted.
	Inner RoutingPolicy
	// QueueWatermark is the per-node queue depth that counts as "past
	// capacity" (DefaultShedWatermark when zero).
	QueueWatermark int
	// RetryAfter is the interval advertised to shed clients (default:
	// the paper's 2 s).
	RetryAfter time.Duration
}

// Name implements RoutingPolicy.
func (p *SheddingPolicy) Name() string { return "shed+" + p.Inner.Name() }

func (p *SheddingPolicy) watermark() int {
	if p.QueueWatermark <= 0 {
		return DefaultShedWatermark
	}
	return p.QueueWatermark
}

func (p *SheddingPolicy) retryAfter() time.Duration {
	if p.RetryAfter <= 0 {
		return 2 * time.Second
	}
	return p.RetryAfter
}

// IsLoginOp reports whether op establishes a session (the affinity-
// assigning set). Exported so the reverse proxy's router classifies
// requests the same way the in-process balancer does.
func IsLoginOp(op string) bool {
	return op == ebid.Authenticate || op == ebid.RegisterNewUser || op == ebid.OpHome
}

// RouteNew implements RoutingPolicy.
func (p *SheddingPolicy) RouteNew(req *workload.Request, cands []Endpoint) (Endpoint, error) {
	if IsLoginOp(req.Op) {
		past := 0
		for _, n := range cands {
			if n.QueueDepth() > p.watermark() {
				past++
			}
		}
		if past == len(cands) {
			return nil, &ShedError{After: p.retryAfter()}
		}
	}
	return p.Inner.RouteNew(req, cands)
}

// RouteSpill implements RoutingPolicy.
func (p *SheddingPolicy) RouteSpill(req *workload.Request, cands []Endpoint) Endpoint {
	return p.Inner.RouteSpill(req, cands)
}

// ShedError is the 503 + Retry-After admission control answers a new
// login with while every node is past the queue watermark.
type ShedError struct{ After time.Duration }

// Error implements error. The text carries the 503 marker so the
// client-side detector classifies it as an HTTP error.
func (e *ShedError) Error() string {
	return fmt.Sprintf("%v: overloaded, retry after %v", ErrServiceUnavailable, e.After)
}

// Unwrap lets errors.Is(err, ErrServiceUnavailable) match.
func (e *ShedError) Unwrap() error { return ErrServiceUnavailable }

// LoadBalancer is the client-side load balancer of Section 5.3, grown
// into a fleet-controlled router: new sessions are placed by a pluggable
// RoutingPolicy (static round-robin, queue-aware least-loaded, or
// shedding admission control), established sessions stick to their node,
// and a node marked draining — by the control plane's FleetController,
// on recovery signals or for a rolling reboot — has its traffic
// redirected to the good nodes until it is restored.
//
// The balancer's hot path is read-mostly: Route takes only a read lock
// on the shared RWMutex (affinity hits write nothing), counters are
// atomics, policies keep their own concurrency-safe cursors and run
// outside the lock, and candidate slices come from a pool — steady-state
// routing allocates nothing and never serializes behind a drain flip or
// a fleet probe. Writers (SetPolicy, SetDrain, affinity assignment and
// pruning) take the write lock. The nodes themselves belong to the
// single-threaded simulation kernel: routing reads their queue/busy
// gauges, but request dispatch must stay on the kernel's thread.
type LoadBalancer struct {
	mu       sync.RWMutex
	nodes    []*Node
	byName   map[string]*Node
	affinity map[string]*Node
	// draining marks nodes the fleet controller asked us to drain.
	draining map[*Node]bool
	policy   RoutingPolicy

	// Failover enables redirection; with it off, requests keep flowing
	// to the recovering node (the paper's pre-failover µRB scheme).
	// Set at construction/experiment setup, before routing traffic.
	Failover bool

	// stats — atomics so the routing fast path bumps them without
	// promoting its read lock.
	failedOver atomic.Int64
	shed       atomic.Int64
	pruned     atomic.Int64

	// movedMu guards sessionsMoved (failover spills are rare; a plain
	// mutex there keeps the hot path's RWMutex uncontended).
	movedMu       sync.Mutex
	sessionsMoved map[string]bool
}

// NewLoadBalancer builds a balancer over the given nodes with the
// round-robin policy.
func NewLoadBalancer(nodes []*Node) *LoadBalancer {
	byName := make(map[string]*Node, len(nodes))
	for _, n := range nodes {
		byName[n.Name] = n
	}
	return &LoadBalancer{
		nodes:         nodes,
		byName:        byName,
		affinity:      map[string]*Node{},
		draining:      map[*Node]bool{},
		policy:        NewRoundRobin(),
		Failover:      true,
		sessionsMoved: map[string]bool{},
	}
}

// Nodes returns the balanced node set.
func (lb *LoadBalancer) Nodes() []*Node { return lb.nodes }

// SetPolicy installs a routing policy (round-robin when never called).
func (lb *LoadBalancer) SetPolicy(p RoutingPolicy) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	lb.policy = p
}

// PolicyName reports the installed policy.
func (lb *LoadBalancer) PolicyName() string {
	lb.mu.RLock()
	defer lb.mu.RUnlock()
	return lb.policy.Name()
}

// SetDrain moves the named node into (true) or out of (false) the
// drained state. The control plane's FleetController is the caller —
// drain is a fleet-level decision, not something recovery code flips
// directly. Unknown nodes report false.
func (lb *LoadBalancer) SetDrain(node string, drain bool) bool {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	n, ok := lb.byName[node]
	if !ok {
		return false
	}
	if drain {
		lb.draining[n] = true
	} else {
		delete(lb.draining, n)
	}
	return true
}

// RebootNode performs a node-scope (process) reboot of the named node,
// returning the modeled recovery duration — the fleet controller's
// rolling-rejuvenation actuator.
func (lb *LoadBalancer) RebootNode(node string) (time.Duration, error) {
	lb.mu.RLock()
	n, ok := lb.byName[node]
	lb.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("cluster: unknown node %q", node)
	}
	rb, err := n.RebootScope(core.ScopeProcess)
	if err != nil {
		return 0, err
	}
	return rb.Duration(), nil
}

// FleetStats implements controlplane.FleetProbe: one load/health sample
// per node for the plane's per-tick fleet probe.
func (lb *LoadBalancer) FleetStats() []controlplane.NodeStat {
	lb.mu.RLock()
	defer lb.mu.RUnlock()
	out := make([]controlplane.NodeStat, 0, len(lb.nodes))
	for _, n := range lb.nodes {
		completed, failed, _, _ := n.Stats()
		out = append(out, controlplane.NodeStat{
			Node:       n.Name,
			Queue:      n.QueueDepth(),
			Busy:       n.Busy(),
			Workers:    n.Workers(),
			Down:       n.Down(),
			Recovering: n.Recovering(),
			Draining:   lb.draining[n],
			Completed:  completed,
			Failed:     failed,
		})
	}
	return out
}

// FailedOverRequests reports how many requests were redirected away from
// their affinity node.
func (lb *LoadBalancer) FailedOverRequests() int64 { return lb.failedOver.Load() }

// SessionsFailedOver reports how many distinct sessions had at least one
// request redirected.
func (lb *LoadBalancer) SessionsFailedOver() int {
	lb.movedMu.Lock()
	defer lb.movedMu.Unlock()
	return len(lb.sessionsMoved)
}

// Shed reports how many requests admission control rejected.
func (lb *LoadBalancer) Shed() int64 { return lb.shed.Load() }

// AffinitySize reports the live affinity-map population (the leak the
// pruning exists to prevent).
func (lb *LoadBalancer) AffinitySize() int {
	lb.mu.RLock()
	defer lb.mu.RUnlock()
	return len(lb.affinity)
}

// AffinityPruned reports how many affinity entries were retired on
// logout or session lapse.
func (lb *LoadBalancer) AffinityPruned() int64 { return lb.pruned.Load() }

// candPool recycles candidate buffers so steady-state routing does not
// allocate. Buffers start at 16 slots and grow with the fleet. The
// elements are Endpoint interface values, but a *Node stored in one is a
// bare pointer word — no per-route boxing allocation.
var candPool = sync.Pool{New: func() any {
	b := make([]Endpoint, 0, 16)
	return &b
}}

// healthyInto fills a pooled buffer with the nodes that are neither down
// nor draining. Callers hold lb.mu (read suffices) and must return the
// buffer with putCands once the policy call is over.
func (lb *LoadBalancer) healthyInto() *[]Endpoint {
	buf := candPool.Get().(*[]Endpoint)
	*buf = (*buf)[:0]
	for _, n := range lb.nodes {
		if !n.Down() && !lb.draining[n] {
			*buf = append(*buf, n)
		}
	}
	return buf
}

func putCands(buf *[]Endpoint) {
	for i := range *buf {
		(*buf)[i] = nil
	}
	*buf = (*buf)[:0]
	candPool.Put(buf)
}

// Submit implements workload.Frontend.
func (lb *LoadBalancer) Submit(req *workload.Request) {
	target, err := lb.Route(req)
	if err != nil {
		// Admission control turned the request away at the door: no node
		// is charged, and the client gets the Retry-After answer.
		req.Complete(workload.Response{Err: err})
		return
	}
	lb.armPrune(req)
	target.Submit(req)
}

// Route picks the node that will serve req and performs the balancer's
// bookkeeping (affinity assignment, failover accounting) without
// submitting it. A non-nil error means admission control rejected the
// request.
func (lb *LoadBalancer) Route(req *workload.Request) (*Node, error) {
	lb.mu.RLock()
	policy := lb.policy
	// Established sessions stick to their node.
	if n, ok := lb.affinity[req.SessionID]; ok {
		if lb.Failover && (lb.draining[n] || n.Down()) {
			// Redirect to the good nodes; the policy picks which.
			good := lb.healthyInto()
			lb.mu.RUnlock()
			if len(*good) == 0 {
				putCands(good)
				return n, nil
			}
			lb.failedOver.Add(1)
			lb.movedMu.Lock()
			lb.sessionsMoved[req.SessionID] = true
			lb.movedMu.Unlock()
			spill := policy.RouteSpill(req, *good).(*Node)
			putCands(good)
			return spill, nil
		}
		lb.mu.RUnlock()
		return n, nil
	}
	// New sessions (the request establishing them) go wherever the
	// policy says; if no node is healthy, any node takes the failure.
	buf := lb.healthyInto()
	lb.mu.RUnlock()
	if len(*buf) == 0 {
		// lb.nodes is fixed at construction, safe to read unlocked.
		for _, n := range lb.nodes {
			*buf = append(*buf, n)
		}
	}
	picked, err := policy.RouteNew(req, *buf)
	putCands(buf)
	if err != nil {
		lb.shed.Add(1)
		return nil, err
	}
	n := picked.(*Node)
	if IsLoginOp(req.Op) {
		lb.mu.Lock()
		lb.affinity[req.SessionID] = n
		lb.mu.Unlock()
	}
	return n, nil
}

// armPrune hooks the request's completion so affinity entries die with
// their sessions. Without this the map grows by one entry per session
// for the life of the process.
func (lb *LoadBalancer) armPrune(req *workload.Request) {
	op, sid, inner := req.Op, req.SessionID, req.Complete
	req.Complete = func(resp workload.Response) {
		lb.noteCompletion(op, sid, resp)
		if inner != nil {
			inner(resp)
		}
	}
}

// noteCompletion retires affinity entries that can never route again: a
// completed Logout deleted the stored session, and a "not logged in"
// failure means the session lapsed (its lease expired or its store
// died). The next request with that id is, correctly, a new session.
func (lb *LoadBalancer) noteCompletion(op, sid string, resp workload.Response) {
	gone := (op == ebid.OpLogout && resp.Err == nil) ||
		(resp.Err != nil && strings.Contains(resp.Err.Error(), "not logged in"))
	if !gone {
		return
	}
	lb.mu.Lock()
	defer lb.mu.Unlock()
	if _, ok := lb.affinity[sid]; ok {
		delete(lb.affinity, sid)
		lb.pruned.Add(1)
	}
}

// SessionsOn counts sessions whose affinity points at n.
func (lb *LoadBalancer) SessionsOn(n *Node) int {
	lb.mu.RLock()
	defer lb.mu.RUnlock()
	count := 0
	for _, node := range lb.affinity {
		if node == n {
			count++
		}
	}
	return count
}

// ResetFailoverStats clears the failover counters (between experiment
// phases).
func (lb *LoadBalancer) ResetFailoverStats() {
	lb.failedOver.Store(0)
	lb.movedMu.Lock()
	defer lb.movedMu.Unlock()
	lb.sessionsMoved = map[string]bool{}
}
