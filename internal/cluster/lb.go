package cluster

import (
	"repro/internal/ebid"
	"repro/internal/workload"
)

// LoadBalancer is the client-side load balancer of Section 5.3: it
// distributes new login requests evenly between nodes and implements
// session affinity for established sessions. When the recovery manager
// notifies it that a node is recovering, it redirects that node's
// requests uniformly to the good nodes (failover); once recovery
// completes, distribution returns to normal.
type LoadBalancer struct {
	nodes    []*Node
	affinity map[string]*Node
	// redirecting marks nodes the recovery manager asked us to drain.
	redirecting map[*Node]bool
	// Failover enables redirection; with it off, requests keep flowing
	// to the recovering node (the paper's pre-failover µRB scheme).
	Failover bool

	rrNew   int // round-robin cursor for new sessions
	rrSpill int // round-robin cursor for redirected traffic

	// stats
	failedOver    int64
	sessionsMoved map[string]bool
}

// NewLoadBalancer builds a balancer over the given nodes.
func NewLoadBalancer(nodes []*Node) *LoadBalancer {
	return &LoadBalancer{
		nodes:         nodes,
		affinity:      map[string]*Node{},
		redirecting:   map[*Node]bool{},
		Failover:      true,
		sessionsMoved: map[string]bool{},
	}
}

// Nodes returns the balanced node set.
func (lb *LoadBalancer) Nodes() []*Node { return lb.nodes }

// SetRedirect marks a node as recovering (true) or recovered (false); the
// recovery manager calls this around recovery actions.
func (lb *LoadBalancer) SetRedirect(n *Node, redirect bool) {
	if redirect {
		lb.redirecting[n] = true
	} else {
		delete(lb.redirecting, n)
	}
}

// FailedOverRequests reports how many requests were redirected away from
// their affinity node.
func (lb *LoadBalancer) FailedOverRequests() int64 { return lb.failedOver }

// SessionsFailedOver reports how many distinct sessions had at least one
// request redirected.
func (lb *LoadBalancer) SessionsFailedOver() int { return len(lb.sessionsMoved) }

// healthy returns nodes that are neither down nor being drained.
func (lb *LoadBalancer) healthy() []*Node {
	var out []*Node
	for _, n := range lb.nodes {
		if !n.Down() && !lb.redirecting[n] {
			out = append(out, n)
		}
	}
	return out
}

// Submit implements workload.Frontend.
func (lb *LoadBalancer) Submit(req *workload.Request) {
	target := lb.route(req)
	target.Submit(req)
}

func (lb *LoadBalancer) route(req *workload.Request) *Node {
	// Established sessions stick to their node.
	if n, ok := lb.affinity[req.SessionID]; ok {
		if lb.Failover && (lb.redirecting[n] || n.Down()) {
			// Redirect uniformly to the good nodes.
			good := lb.healthy()
			if len(good) > 0 {
				lb.failedOver++
				lb.sessionsMoved[req.SessionID] = true
				spill := good[lb.rrSpill%len(good)]
				lb.rrSpill++
				return spill
			}
		}
		return n
	}
	// New sessions (the request establishing them) round-robin across
	// healthy nodes; if none are healthy, any node takes the failure.
	candidates := lb.healthy()
	if len(candidates) == 0 {
		candidates = lb.nodes
	}
	n := candidates[lb.rrNew%len(candidates)]
	lb.rrNew++
	if req.Op == ebid.Authenticate || req.Op == ebid.RegisterNewUser || req.Op == ebid.OpHome {
		lb.affinity[req.SessionID] = n
	}
	return n
}

// SessionsOn counts sessions whose affinity points at n.
func (lb *LoadBalancer) SessionsOn(n *Node) int {
	count := 0
	for _, node := range lb.affinity {
		if node == n {
			count++
		}
	}
	return count
}

// ResetFailoverStats clears the failover counters (between experiment
// phases).
func (lb *LoadBalancer) ResetFailoverStats() {
	lb.failedOver = 0
	lb.sessionsMoved = map[string]bool{}
}
