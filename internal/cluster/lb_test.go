package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/ebid"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/store/db"
	"repro/internal/store/session"
	"repro/internal/workload"
)

// newTestCluster builds n nodes over one database and one shared store
// builder (per-node stores when mk returns fresh instances).
func newTestCluster(t *testing.T, k *sim.Kernel, n int, mk func() session.Store, cfg NodeConfig) []*Node {
	t.Helper()
	d := db.New(nil)
	if err := ebid.LoadDataset(d, testDataset()); err != nil {
		t.Fatal(err)
	}
	var nodes []*Node
	for i := 0; i < n; i++ {
		c := cfg
		c.Name = fmt.Sprintf("n%d", i)
		c.Dataset = testDataset()
		node, err := NewNode(k, d, mk(), c)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
	}
	return nodes
}

// wedge occupies all of node's workers plus depth queued requests with
// hang-parked calls, so its queue depth and busy count are controlled.
func wedge(t *testing.T, k *sim.Kernel, n *Node, depth int) *faults.ActiveFault {
	t.Helper()
	inj := faults.NewInjector(n.Server(), nil, nil)
	f, err := inj.Inject(faults.Spec{Kind: faults.InfiniteLoop, Component: ebid.ViewItem})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n.Workers()+depth; i++ {
		n.Submit(&workload.Request{Op: ebid.ViewItem, Args: core.ArgMap{"item": int64(1)},
			Complete: func(workload.Response) {}})
	}
	k.RunFor(100 * time.Millisecond)
	if n.Busy() != n.Workers() || n.QueueDepth() != depth {
		t.Fatalf("wedge: busy=%d queue=%d, want %d/%d", n.Busy(), n.QueueDepth(), n.Workers(), depth)
	}
	return f
}

func TestLeastLoadedRoutesAroundBacklog(t *testing.T) {
	k := sim.NewKernel(11)
	nodes := newTestCluster(t, k, 3, func() session.Store { return session.NewFastS() }, NodeConfig{RequestTTL: time.Hour})
	lb := NewLoadBalancer(nodes)
	lb.SetPolicy(LeastLoadedPolicy{})

	// node0 drowns in backlog; node2 carries a lighter one.
	wedge(t, k, nodes[0], 6)
	wedge(t, k, nodes[2], 2)

	for i := 0; i < 5; i++ {
		req := &workload.Request{Op: ebid.OpHome, SessionID: fmt.Sprintf("ll-%d", i)}
		n, err := lb.Route(req)
		if err != nil {
			t.Fatal(err)
		}
		if n != nodes[1] {
			t.Fatalf("least-loaded routed to %s, want n1 (the idle node)", n.Name)
		}
	}
	if lb.PolicyName() != "least-loaded" {
		t.Fatalf("policy name = %q", lb.PolicyName())
	}
}

func TestSheddingRejectsNewLoginsPastWatermark(t *testing.T) {
	k := sim.NewKernel(12)
	nodes := newTestCluster(t, k, 2, func() session.Store { return session.NewFastS() }, NodeConfig{Workers: 2, RequestTTL: time.Hour})
	lb := NewLoadBalancer(nodes)
	lb.SetPolicy(&SheddingPolicy{Inner: LeastLoadedPolicy{}, QueueWatermark: 2, RetryAfter: 3 * time.Second})

	// Establish a session while the fleet is healthy.
	var ok bool
	lb.Submit(&workload.Request{Op: ebid.Authenticate, SessionID: "held",
		Args:     core.ArgMap{"user": int64(1)},
		Complete: func(r workload.Response) { ok = r.OK() }})
	k.RunFor(time.Second)
	if !ok {
		t.Fatal("login failed on a healthy fleet")
	}

	// Push every node past the watermark.
	wedge(t, k, nodes[0], 3)
	wedge(t, k, nodes[1], 3)

	// New logins are shed with Retry-After...
	_, err := lb.Route(&workload.Request{Op: ebid.Authenticate, SessionID: "newcomer"})
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("overloaded login err = %v, want ShedError", err)
	}
	if shed.After != 3*time.Second {
		t.Fatalf("Retry-After = %v, want 3s", shed.After)
	}
	if !errors.Is(err, ErrServiceUnavailable) {
		t.Fatal("ShedError must unwrap to 503")
	}
	// ...but established sessions still route to their node,
	if n, err := lb.Route(&workload.Request{Op: ebid.AboutMe, SessionID: "held"}); err != nil || n == nil {
		t.Fatalf("established session was shed: %v", err)
	}
	// and non-login traffic is admitted through the inner policy.
	if _, err := lb.Route(&workload.Request{Op: ebid.BrowseCategories, SessionID: "anon"}); err != nil {
		t.Fatalf("non-login op was shed: %v", err)
	}
	if lb.Shed() != 1 {
		t.Fatalf("shed counter = %d, want 1", lb.Shed())
	}

	// A shed submit completes with the error and charges no node.
	var got error
	lb.Submit(&workload.Request{Op: ebid.OpHome, SessionID: "turned-away",
		Complete: func(r workload.Response) { got = r.Err }})
	if !errors.As(got, &shed) {
		t.Fatalf("shed submit err = %v", got)
	}
}

func TestPoliciesSurviveAllNodesUnhealthy(t *testing.T) {
	k := sim.NewKernel(13)
	nodes := newTestCluster(t, k, 2, func() session.Store { return session.NewFastS() }, NodeConfig{})
	for _, policy := range []RoutingPolicy{
		NewRoundRobin(),
		LeastLoadedPolicy{},
		&SheddingPolicy{Inner: NewRoundRobin(), QueueWatermark: 1},
	} {
		lb := NewLoadBalancer(nodes)
		lb.SetPolicy(policy)
		lb.SetDrain("n0", true)
		lb.SetDrain("n1", true)
		// No healthy candidates: the request must still reach a node (to
		// fail honestly with a transport error), never panic or shed —
		// the drained nodes' queues are empty, not past any watermark.
		n, err := lb.Route(&workload.Request{Op: ebid.OpHome, SessionID: "fallback"})
		if err != nil || n == nil {
			t.Fatalf("%s: fallback route = (%v, %v)", policy.Name(), n, err)
		}
	}
}

func TestAffinityPrunedOnLogoutAndLease(t *testing.T) {
	k := sim.NewKernel(14)
	// A shared SSM with a short lease: sessions lapse while idle.
	ssm := session.NewSSM(k.Now, 30*time.Second)
	nodes := newTestCluster(t, k, 2, func() session.Store { return ssm }, NodeConfig{})
	lb := NewLoadBalancer(nodes)

	login := func(sid string, user int64) {
		var ok bool
		lb.Submit(&workload.Request{Op: ebid.Authenticate, SessionID: sid,
			Args:     core.ArgMap{"user": user},
			Complete: func(r workload.Response) { ok = r.OK() }})
		k.RunFor(time.Second)
		if !ok {
			t.Fatalf("login %s failed", sid)
		}
	}

	login("s-out", 1)
	login("s-lapse", 2)
	if lb.AffinitySize() != 2 {
		t.Fatalf("affinity = %d, want 2", lb.AffinitySize())
	}

	// Logout deletes the stored session — and, with it, the entry.
	var ok bool
	lb.Submit(&workload.Request{Op: ebid.OpLogout, SessionID: "s-out",
		Complete: func(r workload.Response) { ok = r.OK() }})
	k.RunFor(time.Second)
	if !ok {
		t.Fatal("logout failed")
	}
	if lb.AffinitySize() != 1 {
		t.Fatalf("affinity after logout = %d, want 1 (regression: entries leaked forever)", lb.AffinitySize())
	}

	// The other session's lease expires; the next request observes the
	// loss and the entry dies with it.
	k.RunFor(2 * time.Minute)
	var lapseErr error
	lb.Submit(&workload.Request{Op: ebid.AboutMe, SessionID: "s-lapse",
		Complete: func(r workload.Response) { lapseErr = r.Err }})
	k.RunFor(time.Second)
	if lapseErr == nil {
		t.Fatal("lapsed session request succeeded")
	}
	if lb.AffinitySize() != 0 {
		t.Fatalf("affinity after lease expiry = %d, want 0", lb.AffinitySize())
	}
	if lb.AffinityPruned() != 2 {
		t.Fatalf("pruned = %d, want 2", lb.AffinityPruned())
	}
}

// TestFleetControllerRollingReboot drives the full control-plane loop
// against real nodes: the plane's fleet probe samples the balancer, and
// the FleetController cycles the fleet through drain → node-scope
// reboot → restore on its rejuvenation schedule.
func TestFleetControllerRollingReboot(t *testing.T) {
	k := sim.NewKernel(15)
	nodes := newTestCluster(t, k, 2, func() session.Store { return session.NewFastS() }, NodeConfig{})
	lb := NewLoadBalancer(nodes)
	plane := controlplane.New(controlplane.Config{Clock: k.Now, Fleet: lb})
	fleet := controlplane.NewFleetController(lb, controlplane.FleetConfig{
		RejuvenateEvery: 30 * time.Second,
		DrainTimeout:    5 * time.Second,
	})
	plane.Use(fleet)
	var tick func()
	tick = func() {
		plane.Tick()
		k.Schedule(time.Second, tick)
	}
	k.Schedule(time.Second, tick)

	k.RunFor(3 * time.Minute)

	st := fleet.Status().(controlplane.FleetStatus)
	if len(st.Reboots) < 3 {
		t.Fatalf("rolling reboots = %d, want ≥3 over 3 min at a 30s cadence", len(st.Reboots))
	}
	// The rotation must alternate over both nodes.
	seen := map[string]bool{}
	for _, rb := range st.Reboots {
		if rb.Err != "" {
			t.Fatalf("reboot of %s failed: %s", rb.Node, rb.Err)
		}
		seen[rb.Node] = true
	}
	if !seen["n0"] || !seen["n1"] {
		t.Fatalf("rotation did not cover the fleet: %v", seen)
	}
	if fleet.Rejuvenations() == 0 {
		t.Fatal("no pass ever completed")
	}
	// Every pass restored its drain: the fleet ends fully routable.
	for _, n := range nodes {
		if n.Down() {
			t.Fatalf("%s left down after rejuvenation", n.Name)
		}
	}
	if got, err := lb.Route(&workload.Request{Op: ebid.OpHome, SessionID: "after"}); err != nil || got == nil {
		t.Fatalf("fleet not routable after rejuvenation: %v", err)
	}
	if st.RollingState == "idle" && st.RollingVictim != "" {
		t.Fatalf("idle state kept a victim: %+v", st)
	}
}

// TestLoadBalancerConcurrentDrainRace drives the balancer's routing
// decision from many goroutines while a fleet-controller stand-in
// toggles drain state, the plane's probe samples the fleet, and
// completions prune affinity — the lock coverage a live multi-node
// front end needs. Run under -race. (The node hand-off itself belongs
// to the single-threaded simulation kernel, so the test exercises Route
// rather than Submit.)
func TestLoadBalancerConcurrentDrainRace(t *testing.T) {
	k := sim.NewKernel(16)
	nodes := newTestCluster(t, k, 3, func() session.Store { return session.NewFastS() }, NodeConfig{})
	lb := NewLoadBalancer(nodes)
	lb.SetPolicy(&SheddingPolicy{Inner: LeastLoadedPolicy{}, QueueWatermark: 4})

	// Pin some sessions first so the spill path runs too.
	for i := 0; i < 16; i++ {
		if _, err := lb.Route(&workload.Request{Op: ebid.OpHome, SessionID: fmt.Sprintf("pin-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}

	const iters = 2000
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				sid := fmt.Sprintf("g%d-%d", g, i)
				if i%2 == 0 {
					sid = fmt.Sprintf("pin-%d", i%16)
				}
				_, _ = lb.Route(&workload.Request{Op: ebid.ViewItem, SessionID: sid})
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			lb.SetDrain("n0", i%2 == 0)
			lb.SetDrain("n2", i%3 == 0)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			_ = lb.FleetStats()
			_ = lb.SessionsOn(nodes[1])
			_ = lb.Shed()
			_ = lb.AffinitySize()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			lb.noteCompletion(ebid.OpLogout, fmt.Sprintf("pin-%d", i%16), workload.Response{})
			if i%16 == 0 {
				_, _ = lb.Route(&workload.Request{Op: ebid.OpHome, SessionID: fmt.Sprintf("pin-%d", i%16)})
			}
		}
	}()
	wg.Wait()
	lb.SetDrain("n0", false)
	lb.SetDrain("n2", false)
	if n, err := lb.Route(&workload.Request{Op: ebid.OpHome, SessionID: "post-race"}); err != nil || n == nil {
		t.Fatalf("balancer unusable after the storm: %v", err)
	}
}
