// Package cluster models application-server nodes and the client-side
// load balancer of the paper's evaluation testbed.
//
// A Node is one application-server process hosting the eBid application:
// an event-driven multi-worker queue on the simulation kernel. Requests
// occupy a worker for a calibrated service time; requests that hit a
// deadlocked or looping component occupy their worker until a microreboot
// kills them or their execution lease (TTL) expires — reproducing the
// resource-exhaustion dynamics of the paper's fault studies.
//
// The LoadBalancer implements the paper's failover discipline — session
// affinity for established sessions, redirection away from a draining
// node — behind a pluggable RoutingPolicy (static round-robin,
// queue-aware least-loaded, shedding admission control). Drain state is
// owned by the control plane's FleetController, which reacts to recovery
// signals on the bus; nothing flips the balancer directly anymore.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/ebid"
	"repro/internal/sim"
	"repro/internal/store/db"
	"repro/internal/store/session"
	"repro/internal/workload"
)

// Errors surfaced to clients.
var (
	// ErrConnectionRefused models the transport error seen while the
	// node's process is down.
	ErrConnectionRefused = errors.New("cluster: connection refused")
	// ErrConnectionReset models in-flight requests cut by a process
	// restart.
	ErrConnectionReset = errors.New("cluster: connection reset")
	// ErrRequestTimeout models a request whose execution lease expired.
	ErrRequestTimeout = errors.New("cluster: request timed out")
	// ErrServiceUnavailable is the HTTP 503 surfaced when a request hits
	// a recovering component and cannot be transparently retried.
	ErrServiceUnavailable = errors.New("cluster: 503 service unavailable")
)

// NodeConfig parameterizes a node.
type NodeConfig struct {
	// Name identifies the node in diagnostics.
	Name string
	// Workers is the request-thread pool size (default 4).
	Workers int
	// RequestTTL is the execution lease on a request (default 60 s):
	// stuck requests are purged when it expires.
	RequestTTL time.Duration
	// Retry503 enables transparent call-level retry: idempotent requests
	// that hit a recovering component are retried after the advertised
	// Retry-After interval instead of failing (Section 6.2).
	Retry503 bool
	// RetryAfter overrides the advertised retry interval (default: the
	// paper's 2 s).
	RetryAfter time.Duration
	// MaxRetries bounds transparent retries per request (default 3).
	MaxRetries int
	// MicrorebootEnabled models the µRB-capable server (adds the ~1 ms
	// interceptor overhead of Table 5). Defaults to true.
	MicrorebootDisabled bool
	// CongestionScale, when positive, degrades service times under
	// queueing pressure: effective service = base × (1 + depth/scale).
	// This models the GC and cache thrash of an overloaded JVM with no
	// admission control — the regime behind the paper's Figure 4, where
	// commercial application servers "do not do admission control when
	// overloaded" and response times collapse.
	CongestionScale int
	// Dataset cardinalities are taken from the deployed database.
	Dataset ebid.DatasetConfig
	// Seed offsets the node's service-time stream (nodes share the
	// kernel RNG, so this is only used for distinguishability).
	Seed int64
}

func (c *NodeConfig) fill() {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.RequestTTL == 0 {
		c.RequestTTL = 60 * time.Second
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = 2 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
}

// pending tracks one request inside the node.
type pending struct {
	req     *workload.Request
	call    *core.Call
	retries int
	// hung marks a request parked on a deadlocked/looping component.
	hung bool
	// ttlTimer purges the request when its lease expires.
	ttlTimer *sim.Timer
	done     bool
}

// Node is one application-server process.
type Node struct {
	Name string

	kernel *sim.Kernel
	cfg    NodeConfig

	app   *ebid.App
	fastS *session.FastS // non-nil when session state is node-local
	store session.Store

	queue   []*pending
	busy    int
	down    bool
	serving map[*core.Call]*pending

	// recovering tracks components currently mid-µRB (for diagnostics).
	recovering map[string]bool

	// stats
	completed, failed, retried, purged int64
}

// NewNode builds a node hosting a freshly deployed eBid instance over the
// given database and session store.
func NewNode(k *sim.Kernel, d *db.DB, store session.Store, cfg NodeConfig) (*Node, error) {
	cfg.fill()
	app, err := ebid.New(d, store, k.Now)
	if err != nil {
		return nil, err
	}
	n := &Node{
		Name:       cfg.Name,
		kernel:     k,
		cfg:        cfg,
		app:        app,
		store:      store,
		serving:    map[*core.Call]*pending{},
		recovering: map[string]bool{},
	}
	if fs, ok := store.(*session.FastS); ok {
		n.fastS = fs
	}
	return n, nil
}

// App exposes the node's application (fault injection and recovery attach
// through it).
func (n *Node) App() *ebid.App { return n.app }

// Server exposes the node's application server.
func (n *Node) Server() *core.Server { return n.app.Server }

// Store exposes the node's session store (fault injectors and recovery
// managers must target the store the node actually uses).
func (n *Node) Store() session.Store { return n.store }

// Down reports whether the node's process is currently down.
func (n *Node) Down() bool { return n.down }

// Recovering reports whether any component (or the process) is mid-reboot.
func (n *Node) Recovering() bool {
	return n.down || len(n.recovering) > 0
}

// Stats reports completed/failed/retried/purged counters.
func (n *Node) Stats() (completed, failed, retried, purged int64) {
	return n.completed, n.failed, n.retried, n.purged
}

// Submit implements workload.Frontend.
func (n *Node) Submit(req *workload.Request) {
	if n.down {
		// Connection refused: fast transport-level failure.
		n.kernel.Schedule(time.Millisecond, func() {
			n.finishErr(req, ErrConnectionRefused)
		})
		return
	}
	p := &pending{req: req}
	n.queue = append(n.queue, p)
	n.pump()
}

// pump starts queued requests while workers are free.
func (n *Node) pump() {
	for n.busy < n.cfg.Workers && len(n.queue) > 0 {
		p := n.queue[0]
		n.queue = n.queue[1:]
		n.start(p)
	}
}

// serviceTime draws the calibrated per-request service time.
func (n *Node) serviceTime(op, sessionID string) time.Duration {
	d := n.kernel.Normal(ebid.BaseServiceMean, ebid.BaseServiceStddev)
	if !n.cfg.MicrorebootDisabled {
		d += ebid.MicrorebootOverhead
	}
	if info, ok := ebid.Info(op); ok && (info.NeedsSession || op == ebid.Authenticate || op == ebid.RegisterNewUser || op == ebid.OpLogout) {
		// Off-node stores (SSM and the SSM brick cluster) pay the
		// marshalling + network cost on every session access — plus the
		// fail-stutter penalty when the session's read is served by a
		// degraded brick replica.
		if n.store.SurvivesProcessRestart() {
			d += ebid.SSMAccessCost
			if pen, ok := n.store.(session.ReadPenalized); ok {
				d += pen.ReadPenalty(sessionID)
			}
		}
	}
	return d
}

// start executes one request: business logic runs immediately; the
// response is delivered after the modeled service time.
func (n *Node) start(p *pending) {
	n.busy++
	call := &core.Call{
		Op:        p.req.Op,
		SessionID: p.req.SessionID,
		Args:      p.req.Args,
		TTL:       n.cfg.RequestTTL,
	}
	p.call = call
	p.req.Call = call
	n.serving[call] = p

	// The node runs on the discrete-event kernel, so the invocation
	// completes synchronously; hang parking stays off and ErrHang is
	// surfaced for virtual-time parking below. The request context still
	// threads through the invocation pipeline (interceptors, lease
	// bookkeeping) like a real front end's would.
	ctx := p.req.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	body, err := n.app.Execute(ctx, call)

	if errors.Is(err, core.ErrHang) {
		// Deadlock or infinite loop: the shepherding thread is stuck.
		// The worker stays occupied until a µRB kills the call or the
		// execution lease expires.
		p.hung = true
		p.ttlTimer = n.kernel.Schedule(n.cfg.RequestTTL, func() {
			if p.done {
				return
			}
			n.purged++
			n.completeNow(p, workload.Response{Err: ErrRequestTimeout})
		})
		return
	}

	var ra *core.RetryAfterError
	if errors.As(err, &ra) {
		info, _ := ebid.Info(p.req.Op)
		if n.cfg.Retry503 && info.Idempotent && p.retries < n.cfg.MaxRetries {
			// HTTP/1.1 503 + Retry-After: the servlet container replies
			// Retry-After and the request is transparently reissued.
			p.retries++
			n.retried++
			n.release(p)
			wait := n.cfg.RetryAfter
			if ra.After > 0 && ra.After < wait {
				wait = ra.After
			}
			n.kernel.Schedule(wait, func() {
				if n.down {
					n.finishErr(p.req, ErrConnectionRefused)
					return
				}
				n.queue = append(n.queue, p)
				n.pump()
			})
			return
		}
		err = fmt.Errorf("%w: %v", ErrServiceUnavailable, err)
	}

	svc := n.serviceTime(p.req.Op, p.req.SessionID)
	if n.cfg.CongestionScale > 0 && len(n.queue) > 0 {
		// Degradation is capped at 3x so a collapsed node can still
		// drain its queue once the surge ends.
		factor := 1 + float64(len(n.queue))/float64(n.cfg.CongestionScale)
		if factor > 3 {
			factor = 3
		}
		svc = time.Duration(float64(svc) * factor)
	}
	n.kernel.Schedule(svc, func() {
		if p.done {
			return
		}
		n.completeNow(p, workload.Response{Body: body, Err: err, Retried: p.retries})
	})
}

// release frees the worker without completing the request.
func (n *Node) release(p *pending) {
	if p.call != nil {
		delete(n.serving, p.call)
	}
	n.busy--
	n.pump()
}

// completeNow finalizes a request and frees its worker.
func (n *Node) completeNow(p *pending, resp workload.Response) {
	if p.done {
		return
	}
	p.done = true
	if p.ttlTimer != nil {
		p.ttlTimer.Stop()
	}
	n.release(p)
	n.finish(p.req, resp)
}

func (n *Node) finish(req *workload.Request, resp workload.Response) {
	if resp.Err != nil {
		n.failed++
	} else {
		n.completed++
	}
	req.Complete(resp)
}

func (n *Node) finishErr(req *workload.Request, err error) {
	n.finish(req, workload.Response{Err: err})
}

// failKilled fails the in-service requests whose shepherds a reboot
// destroyed, plus hung requests parked inside any rebooted component
// (their shepherding threads are killed by the µRB even though the
// component had already returned control to the platform).
func (n *Node) failKilled(rb *core.Reboot) {
	for _, call := range rb.KilledCalls {
		root := call.Root()
		if p, ok := n.serving[root]; ok && !p.done {
			n.completeNow(p, workload.Response{Err: workload.KilledError()})
		}
	}
	members := map[string]bool{}
	for _, m := range rb.Members {
		members[m] = true
	}
	for _, p := range n.servingSnapshot() {
		if p.done || !p.hung || p.call == nil {
			continue
		}
		for _, comp := range p.call.Path {
			if members[comp] {
				n.completeNow(p, workload.Response{Err: workload.KilledError()})
				break
			}
		}
	}
}

// Microreboot performs a microreboot of the named components on the
// simulation timeline: crash now, reinitialization completes after the
// modeled recovery time. It returns the reboot descriptor.
func (n *Node) Microreboot(names ...string) (*core.Reboot, error) {
	rb, err := n.Server().BeginMicroreboot(names...)
	if err != nil {
		return nil, err
	}
	n.failKilled(rb)
	for _, m := range rb.Members {
		n.recovering[m] = true
	}
	n.kernel.Schedule(rb.Duration(), func() {
		if err := n.Server().CompleteMicroreboot(rb); err != nil {
			panic(fmt.Sprintf("cluster: complete µRB on %s: %v", n.Name, err))
		}
		for _, m := range rb.Members {
			delete(n.recovering, m)
		}
		n.pump()
	})
	return rb, nil
}

// MicrorebootWithDelay binds the recovery sentinels immediately, lets
// in-flight requests drain for the grace delay, then performs the µRB
// (the Section 6.2 experiment that further reduces failed requests).
func (n *Node) MicrorebootWithDelay(delay time.Duration, names ...string) error {
	if _, err := n.Server().BindSentinels(names...); err != nil {
		return err
	}
	n.kernel.Schedule(delay, func() {
		if _, err := n.Microreboot(names...); err != nil {
			panic(fmt.Sprintf("cluster: delayed µRB on %s: %v", n.Name, err))
		}
	})
	return nil
}

// RebootScope reboots at WAR, application, process, or node scope. For
// process and node scopes, the whole server goes down: every in-flight
// and queued request fails, node-local session state (FastS) is lost, and
// arriving requests get connection-refused until reinitialization
// finishes.
func (n *Node) RebootScope(scope core.Scope) (*core.Reboot, error) {
	rb, err := n.Server().BeginScopedReboot(scope, "eBid")
	if err != nil {
		return nil, err
	}
	n.failKilled(rb)
	for _, m := range rb.Members {
		n.recovering[m] = true
	}
	if scope >= core.ScopeProcess {
		n.down = true
		// The dying process resets every connection.
		for _, p := range append([]*pending(nil), n.queue...) {
			n.completeNow(p, workload.Response{Err: ErrConnectionReset})
		}
		n.queue = nil
		for _, p := range n.servingSnapshot() {
			n.completeNow(p, workload.Response{Err: ErrConnectionReset})
		}
		if n.fastS != nil {
			n.fastS.LoseAll()
		}
	}
	n.kernel.Schedule(rb.Duration(), func() {
		if err := n.Server().CompleteMicroreboot(rb); err != nil {
			panic(fmt.Sprintf("cluster: complete reboot on %s: %v", n.Name, err))
		}
		for _, m := range rb.Members {
			delete(n.recovering, m)
		}
		if scope >= core.ScopeProcess {
			n.down = false
		}
		n.pump()
	})
	return rb, nil
}

func (n *Node) servingSnapshot() []*pending {
	out := make([]*pending, 0, len(n.serving))
	for _, p := range n.serving {
		out = append(out, p)
	}
	return out
}

// QueueDepth reports the number of requests waiting for a worker.
func (n *Node) QueueDepth() int { return len(n.queue) }

// Busy reports the number of occupied workers.
func (n *Node) Busy() int { return n.busy }

// Workers reports the size of the request-thread pool.
func (n *Node) Workers() int { return n.cfg.Workers }
