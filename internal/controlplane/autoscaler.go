package controlplane

import (
	"time"
)

// ShardResizer is the actuator the autoscaler drives;
// *session.SSMCluster implements it.
type ShardResizer interface {
	AddShard() (int, error)
	RemoveShard(id int) error
}

// AutoscalerConfig parameterizes the elastic-ring controller.
type AutoscalerConfig struct {
	// MinShards/MaxShards bound the ring size (defaults 1 / 8).
	MinShards, MaxShards int
	// HighWater adds a shard when the mean per-shard session population
	// stays above it; LowWater removes the least-populated shard when the
	// mean stays below it. HighWater must exceed LowWater enough that a
	// resize cannot immediately re-trigger the opposite one.
	HighWater, LowWater float64
	// Sustain is how many consecutive load samples must sit beyond a
	// watermark before the controller acts (default 3) — a single noisy
	// sample must not resize the ring.
	Sustain int
	// Cooldown is the minimum time between resize actions (default 30 s):
	// the previous migration needs to drain and the population needs to
	// re-settle before the next decision means anything.
	Cooldown time.Duration
	// WarmUp, when positive, is the resize cost model's holdoff: for this
	// long after a successful AddShard the new shard is not counted as
	// absorbing load (the watermark mean divides by the pre-add shard
	// count). A freshly provisioned brick set spends real time warming
	// caches and receiving migrated entries, so a grow decision must pay
	// its warm-up before it can look like it helped — growing stops being
	// free, and a shrink can never fire on the artificial dip the new
	// denominator would otherwise produce.
	WarmUp time.Duration
	// OnResize, when set, observes every action (the live server logs
	// through it).
	OnResize func(ResizeAction)
}

func (c *AutoscalerConfig) fill() {
	if c.MinShards == 0 {
		c.MinShards = 1
	}
	if c.MaxShards == 0 {
		c.MaxShards = 8
	}
	if c.Sustain == 0 {
		c.Sustain = 3
	}
	if c.Cooldown == 0 {
		c.Cooldown = 30 * time.Second
	}
}

// ResizeAction is one autoscaler decision that reached the actuator.
type ResizeAction struct {
	At      time.Duration `json:"at"`
	Added   bool          `json:"added"`
	Shard   int           `json:"shard"`
	AvgLoad float64       `json:"avg_load"`
	Err     string        `json:"err,omitempty"`
}

// Autoscaler closes the elasticity loop: it watches SignalShardLoad
// samples and calls AddShard/RemoveShard on its own once the mean
// per-shard population sits beyond a watermark for Sustain consecutive
// samples (and the cooldown has passed, and no migration is draining).
type Autoscaler struct {
	cfg    AutoscalerConfig
	target ShardResizer

	aboveHigh, belowLow int
	lastResize          time.Duration
	resized             bool
	// warmUntil is the end of the current warm-up holdoff (zero: none).
	warmUntil time.Duration
	warming   bool

	// lastAvg/lastShards are the most recent sample, for status.
	lastAvg    float64
	lastShards int

	// Actions is the resize log.
	Actions []ResizeAction
}

// NewAutoscaler builds the controller driving the given resizer.
func NewAutoscaler(target ShardResizer, cfg AutoscalerConfig) *Autoscaler {
	cfg.fill()
	return &Autoscaler{cfg: cfg, target: target}
}

// Name implements Controller.
func (a *Autoscaler) Name() string { return "autoscaler" }

// Tick implements Controller: decisions are sample-driven, so the tick
// has nothing periodic to do. (The actuator calls happen in OnSignal,
// under the plane lock: unlike a migration step, installing a ring
// generation is a few microseconds of in-memory work, and the cooldown
// makes it rare.)
func (a *Autoscaler) Tick(time.Duration) func() { return nil }

// OnSignal implements Controller: every shard-load sample advances the
// sustain counters and possibly acts.
func (a *Autoscaler) OnSignal(s Signal) {
	if s.Kind != SignalShardLoad || len(s.Shards) == 0 {
		return
	}
	if a.warming && s.At >= a.warmUntil {
		a.warming = false
	}
	// During a warm-up holdoff the newest shard is not yet absorbing
	// load: the mean the watermarks judge divides by one fewer shard.
	eff := len(s.Shards)
	if a.warming && eff > 1 {
		eff--
	}
	avg := float64(s.Sessions) / float64(eff)
	a.lastAvg, a.lastShards = avg, len(s.Shards)
	// A draining migration pins the ring (resizes would fail with
	// ErrResizing anyway) and inflates populations (mid-flight entries
	// sit on both owners), so mid-migration samples are no evidence at
	// all: the sustain counters reset and the controller re-earns its
	// next decision from Sustain consecutive post-migration samples.
	if s.Migrating {
		a.aboveHigh, a.belowLow = 0, 0
		return
	}
	switch {
	case avg > a.cfg.HighWater:
		a.aboveHigh++
		a.belowLow = 0
	case avg < a.cfg.LowWater:
		a.belowLow++
		a.aboveHigh = 0
	default:
		a.aboveHigh, a.belowLow = 0, 0
	}
	if a.resized && s.At-a.lastResize < a.cfg.Cooldown {
		return
	}
	if a.aboveHigh >= a.cfg.Sustain && len(s.Shards) < a.cfg.MaxShards {
		act := ResizeAction{At: s.At, Added: true, AvgLoad: avg}
		shard, err := a.target.AddShard()
		if err != nil {
			act.Err = err.Error()
		} else {
			act.Shard = shard
		}
		a.record(act)
		return
	}
	if a.belowLow >= a.cfg.Sustain && len(s.Shards) > a.cfg.MinShards {
		act := ResizeAction{At: s.At, Added: false, AvgLoad: avg}
		act.Shard = leastPopulated(s.Shards)
		if err := a.target.RemoveShard(act.Shard); err != nil {
			act.Err = err.Error()
		}
		a.record(act)
	}
}

func (a *Autoscaler) record(act ResizeAction) {
	a.Actions = append(a.Actions, act)
	// Only a resize that actually happened starts the cooldown and
	// resets the sustain evidence. A failed actuator call (e.g. a ring
	// change raced in that the last sample had not observed) must not
	// silence a still-needed resize for a whole cooldown — the evidence
	// stands, and the next sample retries.
	if act.Err == "" {
		a.lastResize = act.At
		a.resized = true
		a.aboveHigh, a.belowLow = 0, 0
		if act.Added && a.cfg.WarmUp > 0 {
			a.warming = true
			a.warmUntil = act.At + a.cfg.WarmUp
		}
	}
	if a.cfg.OnResize != nil {
		a.cfg.OnResize(act)
	}
}

// leastPopulated picks the shard with the fewest sessions (lowest id on
// ties, for determinism): draining it moves the fewest entries.
func leastPopulated(shards map[int]int) int {
	best, bestPop := -1, -1
	for id, pop := range shards {
		if best == -1 || pop < bestPop || (pop == bestPop && id < best) {
			best, bestPop = id, pop
		}
	}
	return best
}

// AutoscalerStatus is the controller's operator snapshot.
type AutoscalerStatus struct {
	Shards    int            `json:"shards"`
	AvgLoad   float64        `json:"avg_load"`
	HighWater float64        `json:"high_water"`
	LowWater  float64        `json:"low_water"`
	Warming   bool           `json:"warming"`
	Actions   []ResizeAction `json:"actions"`
}

// Status implements Controller.
func (a *Autoscaler) Status() any {
	return AutoscalerStatus{
		Shards:    a.lastShards,
		AvgLoad:   a.lastAvg,
		HighWater: a.cfg.HighWater,
		LowWater:  a.cfg.LowWater,
		Warming:   a.warming,
		Actions:   append([]ResizeAction(nil), a.Actions...),
	}
}
