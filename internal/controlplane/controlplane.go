// Package controlplane unifies the system's self-management loops —
// failure diagnosis/recovery, brick heartbeat monitoring, elastic ring
// resizing, and migration pacing — into one observe–decide–act control
// plane.
//
// The observe half is a signal bus: client monitors publish failure
// reports, the latency tap publishes per-operation response times,
// recovery managers publish node recovery lifecycles, the comparison
// detector publishes sampled discrepancies, and the plane's own probes
// publish per-shard session populations, brick heartbeat loss, and
// per-node load samples (queue depth, busy workers). The decide/act half
// is a set of controllers that subscribe to the bus: a
// RecoveryController feeds the recovery manager's diagnosis engine, an
// Autoscaler resizes the SSM brick ring against load watermarks, a
// MigrationPacer adapts the background migrator's per-step budget to
// foreground client latency, and a FleetController drives the load
// balancer's drain/failover state and orchestrates rolling node
// rejuvenation. Components stop calling each other directly; they meet
// on the bus.
//
// The plane is driven the same way the rest of this codebase is: a host
// calls Tick periodically (a simulation-kernel event in experiments, a
// goroutine ticker in the live server) and every decision happens inside
// a tick or a publish, under one lock, so controllers need no locking of
// their own.
package controlplane

import (
	"sync"
	"time"
)

// Clock supplies the plane's notion of time: virtual (sim.Kernel.Now) in
// experiments, time-since-start in the live server.
type Clock func() time.Duration

// SignalKind enumerates the observation types on the bus.
type SignalKind int

// Signal kinds.
const (
	// SignalFailure is one end-user operation failure seen by a client
	// monitor (the paper's UDP failure reports).
	SignalFailure SignalKind = iota
	// SignalBrickDead is one brick heartbeat-loss observation.
	SignalBrickDead
	// SignalShardLoad is one sample of per-shard session populations.
	SignalShardLoad
	// SignalLatency is one client-observed operation response time.
	SignalLatency
	// SignalNodeLoad is one node's load/health sample from the fleet
	// probe (queue depth, busy workers, outcome counters).
	SignalNodeLoad
	// SignalNodeRecovery is a recovery manager announcing that a node is
	// entering (Recovering true) or leaving (false) recovery. The fleet
	// controller turns these into load-balancer drain/restore actions.
	SignalNodeRecovery
	// SignalDiscrepancy is one comparison-detector mismatch: a sampled
	// live response differed from the known-good instance's.
	SignalDiscrepancy
)

// signalKinds is the number of distinct kinds (bus counter array size).
const signalKinds = 7

// String names the kind for status surfaces.
func (k SignalKind) String() string {
	switch k {
	case SignalFailure:
		return "failure"
	case SignalBrickDead:
		return "brick-dead"
	case SignalShardLoad:
		return "shard-load"
	case SignalLatency:
		return "latency"
	case SignalNodeLoad:
		return "node-load"
	case SignalNodeRecovery:
		return "node-recovery"
	case SignalDiscrepancy:
		return "discrepancy"
	default:
		return "unknown"
	}
}

// Signal is one observation on the bus. Kind says which fields are
// meaningful.
type Signal struct {
	Kind SignalKind
	At   time.Duration

	// SignalFailure: the failed end-user operation and failure type.
	Op          string
	FailureKind string

	// SignalBrickDead: the brick whose heartbeat is missing.
	Brick string

	// SignalShardLoad: shard id → session population, plus totals.
	Shards    map[int]int
	Sessions  int
	Migrating bool

	// SignalLatency: one operation's response time and outcome.
	Latency time.Duration
	OK      bool

	// SignalNodeLoad / SignalNodeRecovery: the node concerned.
	Node string

	// SignalNodeLoad: the node's full load sample.
	Load NodeStat

	// SignalNodeRecovery: entering (true) or leaving (false) recovery.
	Recovering bool

	// SignalDiscrepancy: what the comparison detector saw (Op carries
	// the operation).
	Detail string
}

// NodeStat is one application-server node's load/health sample as
// published by the fleet probe (SignalNodeLoad). Queue depth and busy
// workers are the backpressure signals queue-aware routing policies and
// the fleet controller act on; the cumulative outcome counters let
// controllers derive in-flight failure rates from sample deltas.
type NodeStat struct {
	Node       string `json:"node"`
	Queue      int    `json:"queue"`
	Busy       int    `json:"busy"`
	Workers    int    `json:"workers"`
	Down       bool   `json:"down"`
	Recovering bool   `json:"recovering"`
	Draining   bool   `json:"draining"`
	Completed  int64  `json:"completed"`
	Failed     int64  `json:"failed"`
}

// FleetProbe is the per-node view the plane samples every tick;
// *cluster.LoadBalancer implements it. Unlike the O(sessions) cluster
// probe, a fleet sample is a handful of integer reads per node, so it
// runs on every tick rather than on the probe interval.
type FleetProbe interface {
	FleetStats() []NodeStat
}

// Bus fans observations out to subscribers synchronously, in
// subscription order. It keeps per-kind counts for status surfaces.
// The Plane serializes all publishes under its lock.
type Bus struct {
	subs   []func(Signal)
	counts [signalKinds]int64
}

// Subscribe registers a consumer for every signal.
func (b *Bus) Subscribe(fn func(Signal)) {
	b.subs = append(b.subs, fn)
}

// Publish delivers one signal to every subscriber.
func (b *Bus) Publish(s Signal) {
	if int(s.Kind) >= 0 && int(s.Kind) < len(b.counts) {
		b.counts[s.Kind]++
	}
	for _, fn := range b.subs {
		fn(s)
	}
}

// Counts reports how many signals of each kind have been published.
func (b *Bus) Counts() map[string]int64 {
	out := make(map[string]int64, len(b.counts))
	for k, n := range b.counts {
		out[SignalKind(k).String()] = n
	}
	return out
}

// Controller is one decide/act loop on the plane. OnSignal observes (it
// must not block); Tick decides under the plane lock and may return the
// act half as a closure, which the plane runs after releasing its lock —
// so a slow actuator (a migration step, a ring change) never stalls the
// foreground emitters serializing on that lock. Status is a JSON-able
// snapshot for operators.
type Controller interface {
	Name() string
	OnSignal(Signal)
	Tick(now time.Duration) (act func())
	Status() any
}

// ShardCluster is the view of the SSM brick cluster the plane's probes
// sample; *session.SSMCluster implements it.
type ShardCluster interface {
	ShardPopulations() map[int]int
	DeadBricks() []string
	Migrating() bool
}

// DefaultProbeInterval is how often the cluster probe samples per-shard
// populations and brick heartbeats. Load moves at session-lifetime
// speed, so probing faster than ~1 s buys nothing — and the population
// scan is O(sessions), so a fast-ticking plane must not pay it per tick.
const DefaultProbeInterval = time.Second

// Config parameterizes a Plane.
type Config struct {
	// Clock supplies time; required.
	Clock Clock
	// Cluster, when set, is probed every ProbeInterval: per-shard
	// populations become SignalShardLoad, missing brick heartbeats
	// SignalBrickDead.
	Cluster ShardCluster
	// Fleet, when set, is probed every Tick: each node's load sample
	// becomes one SignalNodeLoad.
	Fleet FleetProbe
	// ProbeInterval overrides the cluster probe cadence
	// (DefaultProbeInterval when zero). Ticks between probes still run
	// the controllers.
	ProbeInterval time.Duration
}

// Plane owns the bus, the probes, and the controllers.
type Plane struct {
	mu            sync.Mutex
	clock         Clock
	bus           *Bus
	cluster       ShardCluster
	fleet         FleetProbe
	probeInterval time.Duration

	controllers []Controller
	ticks       int64
	lastProbe   time.Duration
	probed      bool
}

// New builds a control plane.
func New(cfg Config) *Plane {
	if cfg.Clock == nil {
		panic("controlplane: Config.Clock is required")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	return &Plane{clock: cfg.Clock, bus: &Bus{}, cluster: cfg.Cluster, fleet: cfg.Fleet, probeInterval: cfg.ProbeInterval}
}

// Use attaches a controller: it is subscribed to the bus and ticked on
// every Plane.Tick.
func (p *Plane) Use(c Controller) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.controllers = append(p.controllers, c)
	p.bus.Subscribe(c.OnSignal)
}

// Publish puts one raw signal on the bus (emitters usually go through
// the typed helpers below). The timestamp is stamped here.
func (p *Plane) Publish(s Signal) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s.At = p.clock()
	p.bus.Publish(s)
}

// ReportFailure publishes one end-user operation failure — the client
// monitors' entry point onto the bus.
func (p *Plane) ReportFailure(op, kind string) {
	p.Publish(Signal{Kind: SignalFailure, Op: op, FailureKind: kind})
}

// ObserveOp publishes one operation's client-observed response time.
func (p *Plane) ObserveOp(latency time.Duration, ok bool) {
	p.Publish(Signal{Kind: SignalLatency, Latency: latency, OK: ok})
}

// ReportNodeRecovery publishes a node's recovery lifecycle edge — the
// recovery manager's entry point onto the bus (the fleet controller
// actuates the load balancer's drain from these; nobody calls the LB
// directly anymore).
func (p *Plane) ReportNodeRecovery(node string, recovering bool) {
	p.Publish(Signal{Kind: SignalNodeRecovery, Node: node, Recovering: recovering})
}

// ReportDiscrepancy publishes one comparison-detector mismatch.
func (p *Plane) ReportDiscrepancy(op, detail string) {
	p.Publish(Signal{Kind: SignalDiscrepancy, Op: op, Detail: detail})
}

// Tick runs one observe–decide–act round: the probes publish what they
// see (at most once per ProbeInterval), then every controller gets its
// decide step; the act closures the controllers return run last, after
// the plane lock is released. The O(sessions) cluster probe also runs
// before the lock is taken — so foreground emitters (every live HTTP
// request reports its latency) only ever wait on controller
// bookkeeping, never on store scans or actuators.
func (p *Plane) Tick() {
	now := p.clock()
	var probes []Signal
	if p.fleet != nil {
		for _, st := range p.fleet.FleetStats() {
			probes = append(probes, Signal{Kind: SignalNodeLoad, At: now, Node: st.Node, Load: st})
		}
	}
	if p.cluster != nil && p.probeDue(now) {
		pops := p.cluster.ShardPopulations()
		total := 0
		for _, n := range pops {
			total += n
		}
		probes = append(probes, Signal{
			Kind:      SignalShardLoad,
			At:        now,
			Shards:    pops,
			Sessions:  total,
			Migrating: p.cluster.Migrating(),
		})
		for _, brick := range p.cluster.DeadBricks() {
			probes = append(probes, Signal{Kind: SignalBrickDead, At: now, Brick: brick})
		}
	}
	var acts []func()
	p.mu.Lock()
	p.ticks++
	for _, s := range probes {
		p.bus.Publish(s)
	}
	for _, c := range p.controllers {
		if act := c.Tick(now); act != nil {
			acts = append(acts, act)
		}
	}
	p.mu.Unlock()
	for _, act := range acts {
		act()
	}
}

// probeDue reports (and records) whether a cluster probe should run at
// now. The first tick always probes.
func (p *Plane) probeDue(now time.Duration) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.probed && now-p.lastProbe < p.probeInterval {
		return false
	}
	p.probed = true
	p.lastProbe = now
	return true
}

// Status is the operator view served by /admin/controlplane/status.
type Status struct {
	Now         time.Duration    `json:"now"`
	Ticks       int64            `json:"ticks"`
	Signals     map[string]int64 `json:"signals"`
	Controllers map[string]any   `json:"controllers"`
}

// Status snapshots the plane.
func (p *Plane) Status() Status {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := Status{
		Now:         p.clock(),
		Ticks:       p.ticks,
		Signals:     p.bus.Counts(),
		Controllers: map[string]any{},
	}
	for _, c := range p.controllers {
		st.Controllers[c.Name()] = c.Status()
	}
	return st
}

// ControllerStatus snapshots one controller by name (status surfaces
// that want a single controller's view, e.g. /admin/fleet/status).
func (p *Plane) ControllerStatus(name string) (any, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.controllers {
		if c.Name() == name {
			return c.Status(), true
		}
	}
	return nil, false
}
