package controlplane

import (
	"errors"
	"testing"
	"time"

	"repro/internal/recovery"
	"repro/internal/store/session"
)

// manualClock is a settable Clock.
type manualClock struct{ now time.Duration }

func (c *manualClock) Now() time.Duration      { return c.now }
func (c *manualClock) Advance(d time.Duration) { c.now += d }

func TestBusFanOutAndCounts(t *testing.T) {
	b := &Bus{}
	var got []SignalKind
	b.Subscribe(func(s Signal) { got = append(got, s.Kind) })
	b.Subscribe(func(s Signal) { got = append(got, s.Kind) })
	b.Publish(Signal{Kind: SignalFailure})
	b.Publish(Signal{Kind: SignalLatency})
	if len(got) != 4 || got[0] != SignalFailure || got[3] != SignalLatency {
		t.Fatalf("fan-out = %v", got)
	}
	counts := b.Counts()
	if counts["failure"] != 1 || counts["latency"] != 1 || counts["shard-load"] != 0 {
		t.Fatalf("counts = %v", counts)
	}
}

// fakeResizer records autoscaler actuation.
type fakeResizer struct {
	added   int
	removed []int
	next    int
	err     error
}

func (f *fakeResizer) AddShard() (int, error) {
	if f.err != nil {
		return 0, f.err
	}
	f.added++
	f.next++
	return f.next - 1, nil
}

func (f *fakeResizer) RemoveShard(id int) error {
	if f.err != nil {
		return f.err
	}
	f.removed = append(f.removed, id)
	return nil
}

// loadSignal builds one shard-load sample with even population.
func loadSignal(at time.Duration, shards, perShard int, migrating bool) Signal {
	pops := map[int]int{}
	for i := 0; i < shards; i++ {
		pops[i] = perShard
	}
	return Signal{
		Kind: SignalShardLoad, At: at,
		Shards: pops, Sessions: shards * perShard, Migrating: migrating,
	}
}

func TestAutoscalerAddsAfterSustainedHighLoad(t *testing.T) {
	fr := &fakeResizer{next: 2}
	a := NewAutoscaler(fr, AutoscalerConfig{
		MinShards: 2, MaxShards: 3, HighWater: 100, LowWater: 20, Sustain: 3, Cooldown: time.Minute,
	})
	// Two high samples: not sustained yet.
	a.OnSignal(loadSignal(1*time.Second, 2, 150, false))
	a.OnSignal(loadSignal(2*time.Second, 2, 150, false))
	if fr.added != 0 {
		t.Fatal("resized before the sustain threshold")
	}
	// A normal sample resets the counter.
	a.OnSignal(loadSignal(3*time.Second, 2, 50, false))
	a.OnSignal(loadSignal(4*time.Second, 2, 150, false))
	a.OnSignal(loadSignal(5*time.Second, 2, 150, false))
	if fr.added != 0 {
		t.Fatal("sustain counter survived a normal sample")
	}
	a.OnSignal(loadSignal(6*time.Second, 2, 150, false))
	if fr.added != 1 {
		t.Fatalf("added = %d, want 1 after 3 sustained samples", fr.added)
	}
	if len(a.Actions) != 1 || !a.Actions[0].Added || a.Actions[0].Shard != 2 {
		t.Fatalf("actions = %+v", a.Actions)
	}
	// Still hot, but inside the cooldown — and then capped by MaxShards.
	a.OnSignal(loadSignal(7*time.Second, 3, 140, false))
	a.OnSignal(loadSignal(8*time.Second, 3, 140, false))
	a.OnSignal(loadSignal(9*time.Second, 3, 140, false))
	if fr.added != 1 {
		t.Fatal("resized during cooldown")
	}
	a.OnSignal(loadSignal(2*time.Minute, 3, 140, false))
	a.OnSignal(loadSignal(2*time.Minute+time.Second, 3, 140, false))
	a.OnSignal(loadSignal(2*time.Minute+2*time.Second, 3, 140, false))
	if fr.added != 1 {
		t.Fatal("grew past MaxShards")
	}
}

func TestAutoscalerRemovesLeastPopulatedShard(t *testing.T) {
	fr := &fakeResizer{}
	a := NewAutoscaler(fr, AutoscalerConfig{
		MinShards: 2, MaxShards: 4, HighWater: 100, LowWater: 30, Sustain: 2, Cooldown: time.Second,
	})
	low := Signal{
		Kind: SignalShardLoad, At: time.Second,
		Shards: map[int]int{0: 30, 1: 5, 2: 25}, Sessions: 60,
	}
	a.OnSignal(low)
	low.At = 2 * time.Second
	a.OnSignal(low)
	if len(fr.removed) != 1 || fr.removed[0] != 1 {
		t.Fatalf("removed = %v, want the least-populated shard 1", fr.removed)
	}
	// MinShards floor: 2 shards left, still cold → no further removal.
	cold := Signal{
		Kind: SignalShardLoad, At: time.Minute,
		Shards: map[int]int{0: 10, 2: 10}, Sessions: 20,
	}
	a.OnSignal(cold)
	cold.At = time.Minute + time.Second
	a.OnSignal(cold)
	cold.At = time.Minute + 2*time.Second
	a.OnSignal(cold)
	if len(fr.removed) != 1 {
		t.Fatalf("removed = %v, shrank below MinShards", fr.removed)
	}
}

func TestAutoscalerHoldsDuringMigration(t *testing.T) {
	fr := &fakeResizer{next: 2}
	a := NewAutoscaler(fr, AutoscalerConfig{
		MinShards: 1, MaxShards: 4, HighWater: 100, LowWater: 10, Sustain: 2, Cooldown: time.Second,
	})
	a.OnSignal(loadSignal(1*time.Second, 2, 200, true))
	a.OnSignal(loadSignal(2*time.Second, 2, 200, true))
	a.OnSignal(loadSignal(3*time.Second, 2, 200, true))
	if fr.added != 0 {
		t.Fatal("resized while a migration was draining")
	}
	// Mid-migration samples are inflated (entries sit on both owners),
	// so they must NOT count toward the sustain threshold: the first
	// post-migration sample alone cannot resize.
	a.OnSignal(loadSignal(4*time.Second, 2, 200, false))
	if fr.added != 0 {
		t.Fatal("acted on a single post-migration sample (mid-migration evidence leaked)")
	}
	a.OnSignal(loadSignal(5*time.Second, 2, 200, false))
	if fr.added != 1 {
		t.Fatal("did not act after Sustain post-migration samples")
	}
}

func TestAutoscalerRecordsActuatorErrors(t *testing.T) {
	fr := &fakeResizer{err: errors.New("ring change already in progress")}
	a := NewAutoscaler(fr, AutoscalerConfig{
		MinShards: 1, MaxShards: 4, HighWater: 10, LowWater: 1, Sustain: 1,
	})
	a.OnSignal(loadSignal(time.Second, 2, 50, false))
	if len(a.Actions) != 1 || a.Actions[0].Err == "" {
		t.Fatalf("actions = %+v, want one errored action", a.Actions)
	}
}

// fakePump records migration step budgets.
type fakePump struct{ budgets []int }

func (f *fakePump) MigrateStep(max int) (int, bool) {
	f.budgets = append(f.budgets, max)
	return max, false
}

func TestPacerBacksOffUnderLatencyAndRecovers(t *testing.T) {
	fp := &fakePump{}
	p := NewMigrationPacer(fp, PacerConfig{
		TargetP95: 100 * time.Millisecond, Window: 10 * time.Second,
		MinBudget: 16, MaxBudget: 1024, StartBudget: 256,
	})
	// Foreground latency well over target: multiplicative decrease.
	now := time.Second
	for i := 0; i < 20; i++ {
		p.OnSignal(Signal{Kind: SignalLatency, At: now, Latency: 400 * time.Millisecond, OK: true})
	}
	tickPacer(p, now)
	if got := p.Budget(); got != 128 {
		t.Fatalf("budget after one hot tick = %d, want 128", got)
	}
	tickPacer(p, now+time.Second)
	tickPacer(p, now+2*time.Second)
	tickPacer(p, now+3*time.Second)
	if got := p.Budget(); got != 16 {
		t.Fatalf("budget did not floor at MinBudget: %d", got)
	}
	// Latency back under target: additive increase.
	now += 15 * time.Second
	for i := 0; i < 20; i++ {
		p.OnSignal(Signal{Kind: SignalLatency, At: now, Latency: 10 * time.Millisecond, OK: true})
	}
	tickPacer(p, now)
	if got := p.Budget(); got <= 16 || got > 16+(1024-16)/8 {
		t.Fatalf("budget after recovery tick = %d, want one additive step up", got)
	}
	// Idle (window drains): straight to MaxBudget.
	tickPacer(p, now+time.Minute)
	if got := p.Budget(); got != 1024 {
		t.Fatalf("idle budget = %d, want MaxBudget", got)
	}
	if p.MinBudgetUsed() != 16 || p.MaxBudgetUsed() != 1024 {
		t.Fatalf("budget extremes = %d..%d", p.MinBudgetUsed(), p.MaxBudgetUsed())
	}
	// Every tick advanced the migrator with the then-current budget.
	if len(fp.budgets) != 6 || fp.budgets[len(fp.budgets)-1] != 1024 {
		t.Fatalf("pump budgets = %v", fp.budgets)
	}
}

func TestPacerAllFailingTrafficBacksOff(t *testing.T) {
	// Zero successful ops with traffic present is an outage, not an idle
	// system: the pacer must back off, never sprint to MaxBudget — and
	// the failures' pathological latencies must not pollute the p95.
	fp := &fakePump{}
	p := NewMigrationPacer(fp, PacerConfig{
		TargetP95: 100 * time.Millisecond, MinBudget: 16, MaxBudget: 1024, StartBudget: 256,
	})
	p.OnSignal(Signal{Kind: SignalLatency, At: time.Second, Latency: time.Minute, OK: false})
	tickPacer(p, time.Second)
	st := p.Status().(PacerStatus)
	if st.Idle {
		t.Fatal("all-failing traffic classified as idle")
	}
	if st.Budget != 128 || st.Backoffs != 1 {
		t.Fatalf("budget = %d backoffs = %d, want a backoff to 128", st.Budget, st.Backoffs)
	}
	if st.LastP95 != 0 {
		t.Fatalf("failed op latency entered the p95 window: %v", st.LastP95)
	}
	// Once even the failures stop, the system really is idle.
	tickPacer(p, time.Minute)
	if got := p.Budget(); got != 1024 {
		t.Fatalf("idle budget = %d, want MaxBudget", got)
	}
}

// fakeSink records what the recovery controller forwards.
type fakeSink struct {
	reports []recovery.Report
	bricks  []string
}

func (f *fakeSink) Report(r recovery.Report)    { f.reports = append(f.reports, r) }
func (f *fakeSink) ReportBrickFailure(b string) { f.bricks = append(f.bricks, b) }

func TestRecoveryControllerBridgesSignals(t *testing.T) {
	fs := &fakeSink{}
	rc := NewRecoveryController(fs)
	rc.OnSignal(Signal{Kind: SignalFailure, Op: "MakeBid", FailureKind: "http-error"})
	rc.OnSignal(Signal{Kind: SignalBrickDead, Brick: "ssm/s0-r1"})
	rc.OnSignal(Signal{Kind: SignalLatency, Latency: time.Millisecond, OK: true})
	// OnSignal only observes: the sink must see nothing until the act
	// closure from Tick runs — a Report can synchronously trigger a
	// recovery that re-enters the plane, so it must run lock-free.
	if len(fs.reports) != 0 || len(fs.bricks) != 0 {
		t.Fatalf("sink fed before tick: reports=%+v bricks=%v", fs.reports, fs.bricks)
	}
	act := rc.Tick(time.Second)
	if act == nil {
		t.Fatal("Tick returned no act closure with pending evidence")
	}
	act()
	if len(fs.reports) != 1 || fs.reports[0] != (recovery.Report{Op: "MakeBid", Kind: "http-error"}) {
		t.Fatalf("reports = %+v", fs.reports)
	}
	if len(fs.bricks) != 1 || fs.bricks[0] != "ssm/s0-r1" {
		t.Fatalf("bricks = %v", fs.bricks)
	}
	st := rc.Status().(RecoveryStatus)
	if st.FailureReports != 1 || st.BrickFailures != 1 {
		t.Fatalf("status = %+v", st)
	}
	// The buffer drained: a quiet tick has nothing to act on.
	if rc.Tick(time.Second) != nil {
		t.Fatal("Tick re-delivered drained evidence")
	}
}

func TestPlaneProbesClusterAndTicksControllers(t *testing.T) {
	clock := &manualClock{}
	cl, err := session.NewSSMCluster(session.ClusterConfig{Shards: 2, Replicas: 2, WriteQuorum: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c", "d", "e"} {
		if err := cl.Write(&session.Session{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.CrashBrick("ssm/s0-r0"); err != nil {
		t.Fatal(err)
	}
	p := New(Config{Clock: clock.Now, Cluster: cl})
	var loads, deadBricks int
	probeWatcher := &funcController{
		name: "watcher",
		onSignal: func(s Signal) {
			switch s.Kind {
			case SignalShardLoad:
				loads++
				if s.Sessions != 5 {
					t.Errorf("sessions = %d, want 5", s.Sessions)
				}
			case SignalBrickDead:
				deadBricks++
				if s.Brick != "ssm/s0-r0" {
					t.Errorf("brick = %q", s.Brick)
				}
			}
		},
	}
	p.Use(probeWatcher)
	clock.Advance(time.Second)
	p.Tick()
	clock.Advance(time.Second)
	p.Tick()
	if loads != 2 || deadBricks != 2 {
		t.Fatalf("loads = %d deadBricks = %d, want 2/2", loads, deadBricks)
	}
	if probeWatcher.ticks != 2 {
		t.Fatalf("controller ticks = %d", probeWatcher.ticks)
	}
	st := p.Status()
	if st.Ticks != 2 || st.Signals["shard-load"] != 2 || st.Signals["brick-dead"] != 2 {
		t.Fatalf("status = %+v", st)
	}
	if _, ok := st.Controllers["watcher"]; !ok {
		t.Fatal("controller status missing")
	}
}

func TestPlaneEmitterHelpersStampTime(t *testing.T) {
	clock := &manualClock{now: 42 * time.Second}
	p := New(Config{Clock: clock.Now})
	var got []Signal
	p.Use(&funcController{name: "rec", onSignal: func(s Signal) { got = append(got, s) }})
	p.ReportFailure("ViewItem", "keyword")
	p.ObserveOp(7*time.Millisecond, true)
	if len(got) != 2 {
		t.Fatalf("signals = %d", len(got))
	}
	if got[0].Kind != SignalFailure || got[0].Op != "ViewItem" || got[0].At != 42*time.Second {
		t.Fatalf("failure signal = %+v", got[0])
	}
	if got[1].Kind != SignalLatency || got[1].Latency != 7*time.Millisecond || !got[1].OK {
		t.Fatalf("latency signal = %+v", got[1])
	}
}

// funcController adapts closures to the Controller interface.
type funcController struct {
	name     string
	onSignal func(Signal)
	ticks    int
}

func (f *funcController) Name() string              { return f.name }
func (f *funcController) OnSignal(s Signal)         { f.onSignal(s) }
func (f *funcController) Tick(time.Duration) func() { f.ticks++; return nil }
func (f *funcController) Status() any               { return map[string]int{"ticks": f.ticks} }

// tickPacer runs one decide+act round the way the plane does.
func tickPacer(p *MigrationPacer, now time.Duration) {
	if act := p.Tick(now); act != nil {
		act()
	}
}

func TestAutoscalerRetriesAfterActuatorError(t *testing.T) {
	// A failed resize must not start the cooldown or burn the sustain
	// evidence: the next sample retries, and once the actuator heals the
	// resize happens.
	fr := &fakeResizer{next: 2, err: errors.New("ring change already in progress")}
	a := NewAutoscaler(fr, AutoscalerConfig{
		MinShards: 1, MaxShards: 4, HighWater: 10, LowWater: 1, Sustain: 1, Cooldown: time.Minute,
	})
	a.OnSignal(loadSignal(time.Second, 2, 50, false))
	a.OnSignal(loadSignal(2*time.Second, 2, 50, false))
	if len(a.Actions) != 2 {
		t.Fatalf("actions = %+v, want a retry per sample while erroring", a.Actions)
	}
	fr.err = nil
	a.OnSignal(loadSignal(3*time.Second, 2, 50, false))
	if fr.added != 1 {
		t.Fatalf("added = %d, want the resize once the actuator healed", fr.added)
	}
	// And only now does the cooldown bite.
	a.OnSignal(loadSignal(4*time.Second, 3, 50, false))
	if fr.added != 1 {
		t.Fatal("resized during the post-success cooldown")
	}
}

// fakeFleet records drain flips and reboots, and lets tests shape the
// node-load samples the controller sees.
type fakeFleet struct {
	drains   []string // "+name" / "-name"
	reboots  []string
	duration time.Duration
	err      error
}

func (f *fakeFleet) SetDrain(node string, drain bool) bool {
	if drain {
		f.drains = append(f.drains, "+"+node)
	} else {
		f.drains = append(f.drains, "-"+node)
	}
	return true
}

func (f *fakeFleet) RebootNode(node string) (time.Duration, error) {
	f.reboots = append(f.reboots, node)
	return f.duration, f.err
}

// nodeLoad builds one node-load sample.
func nodeLoad(at time.Duration, node string, queue, busy int) Signal {
	return Signal{Kind: SignalNodeLoad, At: at, Node: node,
		Load: NodeStat{Node: node, Queue: queue, Busy: busy, Workers: 4}}
}

// tickFleet runs one decide+act round the way the plane does.
func tickFleet(f *FleetController, now time.Duration) {
	if act := f.Tick(now); act != nil {
		act()
	}
}

func TestFleetControllerDrainsOnRecoverySignals(t *testing.T) {
	fa := &fakeFleet{}
	fc := NewFleetController(fa, FleetConfig{})
	fc.OnSignal(Signal{Kind: SignalNodeRecovery, Node: "node0", Recovering: true})
	// A duplicate edge is idempotent.
	fc.OnSignal(Signal{Kind: SignalNodeRecovery, Node: "node0", Recovering: true})
	fc.OnSignal(Signal{Kind: SignalNodeRecovery, Node: "node0", Recovering: false})
	if len(fa.drains) != 2 || fa.drains[0] != "+node0" || fa.drains[1] != "-node0" {
		t.Fatalf("drains = %v, want one drain and one restore", fa.drains)
	}
	st := fc.Status().(FleetStatus)
	if st.Drains != 1 || st.Restores != 1 {
		t.Fatalf("status = %+v", st)
	}
}

func TestFleetControllerRollingPassWaitsForDrain(t *testing.T) {
	fa := &fakeFleet{duration: 20 * time.Second}
	fc := NewFleetController(fa, FleetConfig{DrainTimeout: 10 * time.Second})
	fc.OnSignal(nodeLoad(time.Second, "node0", 0, 2))
	fc.OnSignal(nodeLoad(time.Second, "node1", 0, 0))
	tickFleet(fc, time.Second) // arms the schedule; nothing due

	fc.RequestRejuvenation()
	tickFleet(fc, 2*time.Second)
	if len(fa.drains) != 1 || fa.drains[0] != "+node0" {
		t.Fatalf("drains = %v, want node0 drained first", fa.drains)
	}
	// Still busy: the reboot must wait.
	fc.OnSignal(nodeLoad(3*time.Second, "node0", 0, 1))
	tickFleet(fc, 3*time.Second)
	if len(fa.reboots) != 0 {
		t.Fatal("rebooted before the node drained")
	}
	// Drained: reboot fires, and the restore waits out the reboot.
	fc.OnSignal(nodeLoad(4*time.Second, "node0", 0, 0))
	tickFleet(fc, 4*time.Second)
	if len(fa.reboots) != 1 || fa.reboots[0] != "node0" {
		t.Fatalf("reboots = %v", fa.reboots)
	}
	tickFleet(fc, 5*time.Second)
	if len(fa.drains) != 1 {
		t.Fatal("restored while the node was still rebooting")
	}
	tickFleet(fc, 24*time.Second+100*time.Millisecond)
	if len(fa.drains) != 2 || fa.drains[1] != "-node0" {
		t.Fatalf("drains = %v, want the restore after the reboot window", fa.drains)
	}
	if fc.Rejuvenations() != 1 {
		t.Fatalf("rejuvenations = %d", fc.Rejuvenations())
	}
}

func TestFleetControllerDrainTimeoutForcesReboot(t *testing.T) {
	fa := &fakeFleet{duration: time.Second}
	fc := NewFleetController(fa, FleetConfig{RejuvenateEvery: 10 * time.Second, DrainTimeout: 5 * time.Second})
	fc.OnSignal(nodeLoad(time.Second, "node0", 3, 4))
	tickFleet(fc, time.Second)
	tickFleet(fc, 11*time.Second) // schedule due: drain starts
	if len(fa.drains) != 1 {
		t.Fatalf("drains = %v", fa.drains)
	}
	// The node never empties — a wedged request holds a worker — but the
	// drain timeout bounds the wait.
	fc.OnSignal(nodeLoad(12*time.Second, "node0", 0, 1))
	tickFleet(fc, 12*time.Second)
	if len(fa.reboots) != 0 {
		t.Fatal("rebooted before the timeout")
	}
	tickFleet(fc, 16*time.Second+time.Millisecond)
	if len(fa.reboots) != 1 {
		t.Fatalf("reboots = %v, want the timeout to force it", fa.reboots)
	}
}

func TestFleetControllerKeepsVictimDrainedThroughRecoverySignals(t *testing.T) {
	fa := &fakeFleet{duration: 10 * time.Second}
	fc := NewFleetController(fa, FleetConfig{DrainTimeout: 5 * time.Second})
	fc.OnSignal(nodeLoad(time.Second, "node0", 0, 0))
	tickFleet(fc, time.Second)
	fc.RequestRejuvenation()
	tickFleet(fc, 2*time.Second) // pass starts: node0 drained

	// A component recovery on the victim completes mid-pass: its
	// recovered edge must NOT undrain the node the rolling reboot owns.
	fc.OnSignal(Signal{Kind: SignalNodeRecovery, Node: "node0", Recovering: true})
	fc.OnSignal(Signal{Kind: SignalNodeRecovery, Node: "node0", Recovering: false})
	for _, d := range fa.drains[1:] {
		if d == "-node0" {
			t.Fatalf("recovery signal undrained the rolling victim: %v", fa.drains)
		}
	}
	// The pass still completes and restores exactly once.
	fc.OnSignal(nodeLoad(3*time.Second, "node0", 0, 0))
	tickFleet(fc, 3*time.Second) // reboot fires
	tickFleet(fc, 14*time.Second)
	if fa.drains[len(fa.drains)-1] != "-node0" {
		t.Fatalf("pass did not restore the victim: %v", fa.drains)
	}
}

func TestFleetControllerFailedRebootIsNotARejuvenation(t *testing.T) {
	fa := &fakeFleet{err: errors.New("node vanished")}
	fc := NewFleetController(fa, FleetConfig{DrainTimeout: time.Second})
	fc.OnSignal(nodeLoad(time.Second, "node0", 0, 0))
	tickFleet(fc, time.Second)
	fc.RequestRejuvenation()
	tickFleet(fc, 2*time.Second) // drain
	fc.OnSignal(nodeLoad(3*time.Second, "node0", 0, 0))
	tickFleet(fc, 3*time.Second) // reboot attempt fails
	tickFleet(fc, 4*time.Second) // pass ends: drain restored, no credit
	if fc.Rejuvenations() != 0 {
		t.Fatalf("rejuvenations = %d after a failed reboot, want 0", fc.Rejuvenations())
	}
	st := fc.Status().(FleetStatus)
	if len(st.Reboots) != 1 || st.Reboots[0].Err == "" {
		t.Fatalf("reboot log = %+v, want one errored entry", st.Reboots)
	}
	if fa.drains[len(fa.drains)-1] != "-node0" {
		t.Fatalf("failed pass left node0 drained: %v", fa.drains)
	}
}

func TestFleetControllerHoldsWhileRecoveryDrains(t *testing.T) {
	fa := &fakeFleet{duration: time.Second}
	fc := NewFleetController(fa, FleetConfig{DrainTimeout: 5 * time.Second})
	fc.OnSignal(nodeLoad(time.Second, "node0", 0, 0))
	tickFleet(fc, time.Second)
	// A recovery is in flight: rejuvenation must not stack a second
	// drain on the fleet.
	fc.OnSignal(Signal{Kind: SignalNodeRecovery, Node: "node0", Recovering: true})
	fc.RequestRejuvenation()
	tickFleet(fc, 2*time.Second)
	if len(fa.reboots) != 0 || len(fa.drains) != 1 {
		t.Fatalf("rolling pass started during recovery: drains=%v reboots=%v", fa.drains, fa.reboots)
	}
	fc.OnSignal(Signal{Kind: SignalNodeRecovery, Node: "node0", Recovering: false})
	fc.OnSignal(nodeLoad(3*time.Second, "node0", 0, 0))
	tickFleet(fc, 3*time.Second)
	if len(fa.drains) != 3 || fa.drains[2] != "+node0" {
		t.Fatalf("queued pass did not start after recovery: %v", fa.drains)
	}
}

func TestPlaneFleetProbePublishesNodeLoad(t *testing.T) {
	clock := &manualClock{}
	probe := fleetProbeFunc(func() []NodeStat {
		return []NodeStat{{Node: "node0", Queue: 3, Busy: 2}, {Node: "node1"}}
	})
	p := New(Config{Clock: clock.Now, Fleet: probe})
	var got []Signal
	p.Use(&funcController{name: "watch", onSignal: func(s Signal) {
		if s.Kind == SignalNodeLoad {
			got = append(got, s)
		}
	}})
	clock.Advance(time.Second)
	p.Tick()
	clock.Advance(time.Second)
	p.Tick()
	if len(got) != 4 {
		t.Fatalf("node-load signals = %d, want 2 nodes × 2 ticks", len(got))
	}
	if got[0].Node != "node0" || got[0].Load.Queue != 3 || got[0].Load.Busy != 2 {
		t.Fatalf("sample = %+v", got[0])
	}
	if st := p.Status(); st.Signals["node-load"] != 4 {
		t.Fatalf("status counts = %v", st.Signals)
	}
	if _, ok := p.ControllerStatus("watch"); !ok {
		t.Fatal("ControllerStatus lookup failed")
	}
	if _, ok := p.ControllerStatus("ghost"); ok {
		t.Fatal("ControllerStatus invented a controller")
	}
}

type fleetProbeFunc func() []NodeStat

func (f fleetProbeFunc) FleetStats() []NodeStat { return f() }

func TestRecoveryControllerBridgesDiscrepancies(t *testing.T) {
	fs := &fakeSink{}
	rc := NewRecoveryController(fs)
	rc.OnSignal(Signal{Kind: SignalDiscrepancy, Op: "ViewItem", Detail: "body differs"})
	if act := rc.Tick(time.Second); act != nil {
		act()
	}
	if len(fs.reports) != 1 || fs.reports[0] != (recovery.Report{Op: "ViewItem", Kind: "comparison-mismatch"}) {
		t.Fatalf("reports = %+v", fs.reports)
	}
	if st := rc.Status().(RecoveryStatus); st.Discrepancies != 1 {
		t.Fatalf("status = %+v", st)
	}
}

func TestAutoscalerWarmUpHoldoffChargesGrow(t *testing.T) {
	fr := &fakeResizer{next: 2}
	a := NewAutoscaler(fr, AutoscalerConfig{
		MinShards: 1, MaxShards: 4, HighWater: 100, LowWater: 60, Sustain: 1,
		Cooldown: time.Second, WarmUp: time.Minute,
	})
	a.OnSignal(loadSignal(time.Second, 2, 150, false))
	if fr.added != 1 {
		t.Fatal("grow did not fire")
	}
	// 3 shards × 80 sessions: the raw mean (80) sits between the
	// watermarks, but during warm-up the new shard absorbs nothing —
	// the charged mean is 240/2 = 120, still past the high water, so
	// the dip the new denominator would fake cannot trigger a shrink
	// and the controller still sees the pressure it paid to relieve.
	a.OnSignal(loadSignal(3*time.Second, 3, 80, false))
	st := a.Status().(AutoscalerStatus)
	if !st.Warming || st.AvgLoad != 120 {
		t.Fatalf("warm-up mean = %.0f (warming=%v), want 120 over 2 shards", st.AvgLoad, st.Warming)
	}
	// After the holdoff the full ring counts again.
	a.OnSignal(loadSignal(2*time.Minute, 3, 80, false))
	st = a.Status().(AutoscalerStatus)
	if st.Warming || st.AvgLoad != 80 {
		t.Fatalf("post-warm-up mean = %.0f (warming=%v), want 80 over 3 shards", st.AvgLoad, st.Warming)
	}
	if len(fr.removed) != 0 {
		t.Fatalf("warm-up dip triggered a shrink: %v", fr.removed)
	}
}
