package controlplane

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/recovery"
)

// FleetActuator is the load-balancer side the fleet controller drives;
// *cluster.LoadBalancer implements it.
type FleetActuator interface {
	// SetDrain moves the named node into (true) or out of (false) the
	// drained state: new sessions avoid it and, with failover on,
	// established sessions are redirected. Unknown nodes report false.
	SetDrain(node string, drain bool) bool
	// RebootNode performs a node-scope (process) reboot of the named
	// node, returning the modeled recovery duration.
	RebootNode(node string) (time.Duration, error)
}

// FleetConfig parameterizes the fleet controller.
type FleetConfig struct {
	// RejuvenateEvery, when positive, starts one rolling
	// drain→reboot→restore of the next node in rotation this often —
	// software rejuvenation as a control-plane decision rather than a
	// per-node service. Zero disables the schedule;
	// RequestRejuvenation still triggers single passes.
	RejuvenateEvery time.Duration
	// DrainTimeout bounds how long a draining node may hold the rolling
	// reboot while its in-flight requests finish (default 15 s).
	DrainTimeout time.Duration
}

func (c *FleetConfig) fill() {
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 15 * time.Second
	}
}

// rollState is where the rolling-reboot state machine stands.
type rollState int

const (
	rollIdle rollState = iota
	rollDraining
	rollRebooting
)

func (s rollState) String() string {
	switch s {
	case rollDraining:
		return "draining"
	case rollRebooting:
		return "rebooting"
	default:
		return "idle"
	}
}

// fleetNode is the controller's memory of one node.
type fleetNode struct {
	last NodeStat
	seen time.Duration
	// recovering tracks SignalNodeRecovery edges (a drain the recovery
	// manager asked for, as opposed to one the rolling reboot owns).
	recovering bool
}

// FleetReboot is one rolling-reboot action that reached the actuator.
type FleetReboot struct {
	Node     string        `json:"node"`
	At       time.Duration `json:"at"`
	Duration time.Duration `json:"duration"`
	Err      string        `json:"err,omitempty"`
}

// FleetController closes the node/LB loop on the plane: recovery
// managers publish "node recovering/recovered" and the controller
// drains/restores the balancer (the failover the paper's RM used to
// request from LB directly); node-load samples keep a live per-node
// view for status surfaces and the rolling rejuvenator, which cycles
// the fleet through drain → node-scope reboot → restore so no node
// accumulates decay while clients notice.
type FleetController struct {
	cfg FleetConfig
	act FleetActuator

	nodes map[string]*fleetNode
	order []string // rotation order = sample arrival order

	state      rollState
	victim     string
	drainFrom  time.Duration
	deadline   time.Duration
	next       int
	lastPass   time.Duration
	started    bool
	drains     int64
	restores   int64
	rejuvDone  int64
	requested  atomic.Int64
	recovering int // nodes currently in recovery-driven drain

	// Reboot bookkeeping is written by act closures outside the plane
	// lock (a live server's ticker goroutine) while Status reads under
	// it — hence its own mutex.
	rmu         sync.Mutex
	rebootArmed bool
	rebootDone  time.Duration
	rebootErr   string
	Reboots     []FleetReboot
}

// NewFleetController builds the controller driving the given actuator.
// act may be nil for an observe-only fleet view (single-node servers):
// load samples are tracked, but recovery signals and the rejuvenation
// schedule actuate nothing.
func NewFleetController(act FleetActuator, cfg FleetConfig) *FleetController {
	cfg.fill()
	return &FleetController{cfg: cfg, act: act, nodes: map[string]*fleetNode{}}
}

// Name implements Controller.
func (f *FleetController) Name() string { return "fleet" }

// RequestRejuvenation queues one rolling drain→reboot→restore pass,
// started at the next tick. Safe to call from any goroutine.
func (f *FleetController) RequestRejuvenation() { f.requested.Add(1) }

// Rejuvenations reports completed rolling-reboot passes.
func (f *FleetController) Rejuvenations() int64 { return atomic.LoadInt64(&f.rejuvDone) }

// OnSignal implements Controller. Node-load samples refresh the fleet
// view; recovery edges actuate the drain immediately (a map flip on the
// balancer, same cost class as the autoscaler's in-signal ring change —
// failover must not wait for the next tick).
func (f *FleetController) OnSignal(s Signal) {
	switch s.Kind {
	case SignalNodeLoad:
		n, ok := f.nodes[s.Node]
		if !ok {
			n = &fleetNode{}
			f.nodes[s.Node] = n
			f.order = append(f.order, s.Node)
		}
		n.last = s.Load
		n.seen = s.At
	case SignalNodeRecovery:
		n, ok := f.nodes[s.Node]
		if !ok {
			n = &fleetNode{}
			f.nodes[s.Node] = n
			f.order = append(f.order, s.Node)
		}
		if n.recovering == s.Recovering {
			return
		}
		n.recovering = s.Recovering
		if s.Recovering {
			f.recovering++
			f.drains++
		} else {
			f.recovering--
			f.restores++
		}
		// While a rolling pass owns the victim's drain, a recovery
		// lifecycle on that node must not undrain it mid-pass (the
		// reboot would fire on a node receiving traffic); the pass
		// restores it when it completes.
		if s.Node == f.victim && f.state != rollIdle && !s.Recovering {
			return
		}
		if f.act != nil {
			f.act.SetDrain(s.Node, s.Recovering)
		}
	}
}

// Tick implements Controller: advance the rolling-reboot state machine.
// Decisions happen here under the plane lock; the returned act closure
// performs the drain flip or the reboot after the lock is released.
func (f *FleetController) Tick(now time.Duration) func() {
	if !f.started {
		// Arm the schedule from the first tick, not from time zero, so a
		// plane started mid-experiment doesn't immediately owe a pass.
		f.started = true
		f.lastPass = now
	}
	if f.act == nil {
		return nil
	}
	switch f.state {
	case rollIdle:
		due := f.cfg.RejuvenateEvery > 0 && now-f.lastPass >= f.cfg.RejuvenateEvery
		if (f.requested.Load() > 0 || due) && len(f.order) > 0 && f.recovering == 0 {
			if f.requested.Load() > 0 {
				f.requested.Add(-1)
			}
			f.victim = f.order[f.next%len(f.order)]
			f.next++
			f.lastPass = now
			f.state = rollDraining
			f.drainFrom = now
			f.deadline = now + f.cfg.DrainTimeout
			f.drains++
			victim := f.victim
			return func() { f.act.SetDrain(victim, true) }
		}
	case rollDraining:
		n := f.nodes[f.victim]
		drained := n != nil && n.seen > f.drainFrom && n.last.Queue == 0 && n.last.Busy == 0
		if drained || now >= f.deadline {
			f.state = rollRebooting
			victim := f.victim
			return func() {
				d, err := f.act.RebootNode(victim)
				f.rmu.Lock()
				defer f.rmu.Unlock()
				f.rebootArmed = true
				f.rebootDone = now + d
				f.rebootErr = ""
				if err != nil {
					f.rebootErr = err.Error()
					f.rebootDone = now // restore immediately
				}
				f.Reboots = append(f.Reboots, FleetReboot{Node: victim, At: now, Duration: d, Err: f.rebootErr})
			}
		}
	case rollRebooting:
		f.rmu.Lock()
		done := f.rebootArmed && now >= f.rebootDone
		failed := f.rebootErr != ""
		if done {
			f.rebootArmed = false
		}
		f.rmu.Unlock()
		if done {
			f.state = rollIdle
			f.restores++
			// A reboot that never happened is not a rejuvenation; the
			// errored entry in the Reboots log tells the story.
			if !failed {
				atomic.AddInt64(&f.rejuvDone, 1)
			}
			victim := f.victim
			f.victim = ""
			if n := f.nodes[victim]; n != nil && n.recovering {
				// Recovery re-drained the victim during the reboot; its
				// recovered signal owns the restore now.
				return nil
			}
			return func() { f.act.SetDrain(victim, false) }
		}
	}
	return nil
}

// FleetStatus is the controller's operator snapshot.
type FleetStatus struct {
	Nodes         []NodeStat    `json:"nodes"`
	RollingState  string        `json:"rolling_state"`
	RollingVictim string        `json:"rolling_victim,omitempty"`
	Drains        int64         `json:"drains"`
	Restores      int64         `json:"restores"`
	Rejuvenations int64         `json:"rejuvenations"`
	Reboots       []FleetReboot `json:"rolling_reboots"`
}

// Status implements Controller.
func (f *FleetController) Status() any {
	st := FleetStatus{
		RollingState:  f.state.String(),
		RollingVictim: f.victim,
		Drains:        f.drains,
		Restores:      f.restores,
		Rejuvenations: atomic.LoadInt64(&f.rejuvDone),
	}
	for _, name := range f.order {
		st.Nodes = append(st.Nodes, f.nodes[name].last)
	}
	f.rmu.Lock()
	st.Reboots = append([]FleetReboot(nil), f.Reboots...)
	f.rmu.Unlock()
	return st
}

// BindRecoveryLifecycle routes a recovery manager's lifecycle onto the
// bus as node-recovery signals: the manager announces, and whatever
// fleet controller is listening actuates the balancer. This replaces
// the old direct manager→LoadBalancer.SetRedirect coupling.
func BindRecoveryLifecycle(p *Plane, m *recovery.Manager, node string) {
	m.OnRecoveryStart = func() { p.ReportNodeRecovery(node, true) }
	m.OnRecoveryEnd = func() { p.ReportNodeRecovery(node, false) }
}
