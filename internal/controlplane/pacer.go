package controlplane

import (
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// MigrationPump is the actuator the pacer drives; *session.SSMCluster
// implements it.
type MigrationPump interface {
	MigrateStep(max int) (moved int, done bool)
}

// PacerConfig parameterizes the load-adaptive migration controller.
type PacerConfig struct {
	// TargetP95 is the foreground-latency ceiling the pacer defends: when
	// the client p95 over the trailing window exceeds it, the migration
	// budget backs off (default 500 ms).
	TargetP95 time.Duration
	// Window is the trailing latency window width (default
	// metrics.DefaultWindowWidth).
	Window time.Duration
	// MinBudget/MaxBudget bound the per-step entry budget (defaults
	// 16/1024); StartBudget is the initial value (default 256 — the old
	// flat per-step budget).
	MinBudget, MaxBudget, StartBudget int
}

func (c *PacerConfig) fill() {
	if c.TargetP95 == 0 {
		c.TargetP95 = 500 * time.Millisecond
	}
	if c.MinBudget == 0 {
		c.MinBudget = 16
	}
	if c.MaxBudget == 0 {
		c.MaxBudget = 1024
	}
	if c.StartBudget == 0 {
		c.StartBudget = 256
	}
}

// MigrationPacer makes the background migrator load-adaptive: it watches
// client latency signals and adjusts MigrateStep's per-step entry budget
// AIMD-style — halve when the trailing p95 exceeds the target
// (foreground traffic is hurting), add a fixed increment when it is
// comfortably below, and jump straight to the maximum when the system is
// idle (no foreground samples at all: migrate as fast as possible while
// nobody is watching). Each Tick then advances the migrator by the
// current budget; the step is a cheap no-op while the ring is stable.
type MigrationPacer struct {
	cfg  PacerConfig
	pump MigrationPump
	// window holds successful-op latencies (the p95 source); traffic
	// counts every op, success or failure, so an all-failing system is
	// distinguishable from an idle one.
	window  *metrics.Window
	traffic *metrics.Window

	budget  int
	lastP95 time.Duration
	idle    bool

	// moved is updated by the act closure outside the plane lock, while
	// Status reads under it — hence atomic.
	moved                atomic.Int64
	minBudget, maxBudget int // extreme budgets actually used, for status
	backoffs             int64
}

// NewMigrationPacer builds the controller driving the given pump.
func NewMigrationPacer(pump MigrationPump, cfg PacerConfig) *MigrationPacer {
	cfg.fill()
	return &MigrationPacer{
		cfg:       cfg,
		pump:      pump,
		window:    metrics.NewWindow(cfg.Window),
		traffic:   metrics.NewWindow(cfg.Window),
		budget:    cfg.StartBudget,
		minBudget: cfg.StartBudget,
		maxBudget: cfg.StartBudget,
	}
}

// Name implements Controller.
func (m *MigrationPacer) Name() string { return "migration-pacer" }

// OnSignal implements Controller: successful-operation latencies feed
// the trailing p95 window (failures have pathological latencies —
// timeouts, instant refusals — that say nothing about migration
// pressure), while every operation counts as traffic.
func (m *MigrationPacer) OnSignal(s Signal) {
	if s.Kind != SignalLatency {
		return
	}
	m.traffic.Observe(s.At, s.Latency)
	if s.OK {
		m.window.Observe(s.At, s.Latency)
	}
}

// Budget returns the current per-step entry budget.
func (m *MigrationPacer) Budget() int { return m.budget }

// growthIncrement is the additive-increase step, as a fraction of the
// budget range: ~8 ticks from min to max when latency stays healthy.
func (m *MigrationPacer) growthIncrement() int {
	inc := (m.cfg.MaxBudget - m.cfg.MinBudget) / 8
	if inc < 1 {
		inc = 1
	}
	return inc
}

// Tick implements Controller: re-estimate the trailing p95 and adapt
// the budget (the decide half, under the plane lock); the returned act
// closure advances the migrator by the chosen budget after the lock is
// released, so in-flight requests never wait on a migration step.
func (m *MigrationPacer) Tick(now time.Duration) func() {
	m.window.Prune(now)
	m.traffic.Prune(now)
	m.idle = m.traffic.Count() == 0
	switch {
	case m.idle:
		// Nobody is looking: drain at full throttle.
		m.budget = m.cfg.MaxBudget
		m.lastP95 = 0
	case m.window.Count() == 0:
		// Traffic exists but nothing succeeds — an outage or a recovery
		// in flight, not idleness. The opposite of a license to sprint:
		// back off and stay out of the way.
		m.lastP95 = 0
		m.budget /= 2
		if m.budget < m.cfg.MinBudget {
			m.budget = m.cfg.MinBudget
		}
		m.backoffs++
	default:
		m.lastP95 = m.window.Quantile(0.95)
		if m.lastP95 > m.cfg.TargetP95 {
			m.budget /= 2
			if m.budget < m.cfg.MinBudget {
				m.budget = m.cfg.MinBudget
			}
			m.backoffs++
		} else {
			m.budget += m.growthIncrement()
			if m.budget > m.cfg.MaxBudget {
				m.budget = m.cfg.MaxBudget
			}
		}
	}
	if m.budget < m.minBudget {
		m.minBudget = m.budget
	}
	if m.budget > m.maxBudget {
		m.maxBudget = m.budget
	}
	budget := m.budget
	return func() {
		moved, _ := m.pump.MigrateStep(budget)
		m.moved.Add(int64(moved))
	}
}

// PacerStatus is the controller's operator snapshot.
type PacerStatus struct {
	Budget    int           `json:"budget"`
	MinUsed   int           `json:"min_budget_used"`
	MaxUsed   int           `json:"max_budget_used"`
	LastP95   time.Duration `json:"last_p95"`
	TargetP95 time.Duration `json:"target_p95"`
	Idle      bool          `json:"idle"`
	Moved     int64         `json:"entries_moved"`
	Backoffs  int64         `json:"backoffs"`
}

// Status implements Controller.
func (m *MigrationPacer) Status() any {
	return PacerStatus{
		Budget:    m.budget,
		MinUsed:   m.minBudget,
		MaxUsed:   m.maxBudget,
		LastP95:   m.lastP95,
		TargetP95: m.cfg.TargetP95,
		Idle:      m.idle,
		Moved:     m.moved.Load(),
		Backoffs:  m.backoffs,
	}
}

// MinBudgetUsed and MaxBudgetUsed report the extreme budgets the pacer
// actually ran with (experiments assert the adaptation really happened).
func (m *MigrationPacer) MinBudgetUsed() int { return m.minBudget }

// MaxBudgetUsed reports the largest budget used.
func (m *MigrationPacer) MaxBudgetUsed() int { return m.maxBudget }
