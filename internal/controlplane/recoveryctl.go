package controlplane

import (
	"time"

	"repro/internal/recovery"
)

// FailureSink is the decide/act half the RecoveryController feeds;
// *recovery.Manager implements it (its Diagnosis scores the evidence,
// its EscalationPolicy picks the reboot).
type FailureSink interface {
	Report(recovery.Report)
	ReportBrickFailure(brick string)
}

// RecoveryController bridges the bus to the recovery manager: failure
// signals become diagnosis reports, brick heartbeat loss becomes brick
// failure reports, and sampled comparison-detector discrepancies feed
// the same diagnosis (the paper's second detector finding complex
// failures the client-side checks miss). With it, the monitors that
// used to call the manager directly (client-side detectors, the brick
// heartbeat pump) just publish, and recovery becomes one more
// controller on the plane.
type RecoveryController struct {
	sink FailureSink

	failures, brickFailures, discrepancies int64
}

// NewRecoveryController builds the bridge into the given sink.
func NewRecoveryController(sink FailureSink) *RecoveryController {
	return &RecoveryController{sink: sink}
}

// Name implements Controller.
func (r *RecoveryController) Name() string { return "recovery" }

// OnSignal implements Controller.
func (r *RecoveryController) OnSignal(s Signal) {
	switch s.Kind {
	case SignalFailure:
		r.failures++
		r.sink.Report(recovery.Report{Op: s.Op, Kind: s.FailureKind})
	case SignalBrickDead:
		r.brickFailures++
		r.sink.ReportBrickFailure(s.Brick)
	case SignalDiscrepancy:
		r.discrepancies++
		r.sink.Report(recovery.Report{Op: s.Op, Kind: "comparison-mismatch"})
	}
}

// Tick implements Controller: the manager runs its own timeline (grace
// windows, detection delays) on its kernel; nothing periodic here.
func (r *RecoveryController) Tick(time.Duration) func() { return nil }

// RecoveryStatus is the controller's operator snapshot.
type RecoveryStatus struct {
	FailureReports int64 `json:"failure_reports"`
	BrickFailures  int64 `json:"brick_failure_reports"`
	Discrepancies  int64 `json:"discrepancy_reports"`
}

// Status implements Controller.
func (r *RecoveryController) Status() any {
	return RecoveryStatus{FailureReports: r.failures, BrickFailures: r.brickFailures, Discrepancies: r.discrepancies}
}
