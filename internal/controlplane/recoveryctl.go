package controlplane

import (
	"time"

	"repro/internal/recovery"
)

// FailureSink is the decide/act half the RecoveryController feeds;
// *recovery.Manager implements it (its Diagnosis scores the evidence,
// its EscalationPolicy picks the reboot).
type FailureSink interface {
	Report(recovery.Report)
	ReportBrickFailure(brick string)
}

// RecoveryController bridges the bus to the recovery manager: failure
// signals become diagnosis reports, brick heartbeat loss becomes brick
// failure reports, and sampled comparison-detector discrepancies feed
// the same diagnosis (the paper's second detector finding complex
// failures the client-side checks miss). With it, the monitors that
// used to call the manager directly (client-side detectors, the brick
// heartbeat pump) just publish, and recovery becomes one more
// controller on the plane.
type RecoveryController struct {
	sink FailureSink

	failures, brickFailures, discrepancies int64

	// pending buffers evidence between ticks. OnSignal runs under the
	// plane lock and must only observe; Report can synchronously trigger
	// a recovery whose killed in-flight requests re-enter the plane
	// (their failure monitors publish), so delivery into the sink is the
	// act half and runs after the lock is released.
	pending       []recovery.Report
	pendingBricks []string
}

// NewRecoveryController builds the bridge into the given sink.
func NewRecoveryController(sink FailureSink) *RecoveryController {
	return &RecoveryController{sink: sink}
}

// Name implements Controller.
func (r *RecoveryController) Name() string { return "recovery" }

// OnSignal implements Controller: evidence is buffered, never acted on.
func (r *RecoveryController) OnSignal(s Signal) {
	switch s.Kind {
	case SignalFailure:
		r.failures++
		r.pending = append(r.pending, recovery.Report{Op: s.Op, Kind: s.FailureKind})
	case SignalBrickDead:
		r.brickFailures++
		r.pendingBricks = append(r.pendingBricks, s.Brick)
	case SignalDiscrepancy:
		r.discrepancies++
		r.pending = append(r.pending, recovery.Report{Op: s.Op, Kind: "comparison-mismatch"})
	}
}

// Tick implements Controller: buffered evidence drains into the manager
// in the act phase. The manager runs its own timeline (grace windows,
// detection delays) on its kernel; detection latency gains at most one
// plane tick.
func (r *RecoveryController) Tick(time.Duration) func() {
	if len(r.pending) == 0 && len(r.pendingBricks) == 0 {
		return nil
	}
	reports, bricks := r.pending, r.pendingBricks
	r.pending, r.pendingBricks = nil, nil
	return func() {
		for _, rep := range reports {
			r.sink.Report(rep)
		}
		for _, b := range bricks {
			r.sink.ReportBrickFailure(b)
		}
	}
}

// RecoveryStatus is the controller's operator snapshot.
type RecoveryStatus struct {
	FailureReports int64 `json:"failure_reports"`
	BrickFailures  int64 `json:"brick_failure_reports"`
	Discrepancies  int64 `json:"discrepancy_reports"`
}

// Status implements Controller.
func (r *RecoveryController) Status() any {
	return RecoveryStatus{FailureReports: r.failures, BrickFailures: r.brickFailures, Discrepancies: r.discrepancies}
}
