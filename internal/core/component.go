// Package core implements the paper's primary contribution: the
// microreboot machinery of a component application server.
//
// The design follows Section 3.2 of the paper. Applications are deployed
// as sets of components (EJB analogs) described by deployment descriptors.
// Each component runs inside a Container that manages an instance pool and
// per-component metadata (the transaction method map). A naming Registry
// (JNDI analog) maps component names to containers; during a microreboot
// the name is bound to a sentinel and lookups return ErrRetryAfter, which
// the web tier translates into HTTP 503 + Retry-After.
//
// Invocations enter through Server.Invoke, which binds a root
// context.Context to the request (the execution lease becomes a context
// deadline; a microreboot kill becomes a context cancellation) and runs an
// Interceptor pipeline before dispatching to the component's container.
// The shepherding thread of the paper is therefore a context tree: one
// cancellation kills the whole request, wherever it currently executes.
//
// Microreboot(name) expands the target to its recovery group — the
// transitive closure of hard inter-component references declared in the
// descriptors — then, for each member: destroys all extant instances,
// kills the shepherding calls associated with them (by cancelling their
// root contexts), aborts their open transactions, releases leased
// resources, discards server metadata held on the component's behalf, and
// finally reinstantiates and reinitializes the component. The component's
// Factory (the classloader analog) is the only thing preserved, exactly
// as JBoss preserves the EJB classloader.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies components, mirroring the two EJB flavors used by eBid
// plus the web tier.
type Kind int

// Component kinds.
const (
	// StatelessSession components implement end-user operations; each
	// operation is a stateless session EJB interacting with entities.
	StatelessSession Kind = iota
	// Entity components implement persistent application objects whose
	// instance state maps to database rows (container-managed
	// persistence).
	Entity
	// Web is the presentation tier (the WAR): servlets invoking the
	// session components and formatting results.
	Web
)

func (k Kind) String() string {
	switch k {
	case StatelessSession:
		return "stateless-session"
	case Entity:
		return "entity"
	case Web:
		return "web"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// TxAttr is a transaction attribute in the container's transaction method
// map (a J2EE deployment concept; corrupting this map is one of the
// Table 2 faults).
type TxAttr string

// Transaction attributes.
const (
	TxRequired  TxAttr = "Required"
	TxSupports  TxAttr = "Supports"
	TxNever     TxAttr = "Never"
	txCorrupted TxAttr = "\x00corrupted"
)

// Args carries operation arguments through a Call. Implementations are
// typed per-operation codecs: a struct with one field per argument avoids
// the per-call map allocation the generic form pays. ArgMap is the
// generic (map-backed) implementation for tests, tools, and arbitrary
// key sets.
type Args interface {
	// Arg returns the named argument; ok is false when absent. A zero
	// value that is legal for the argument must still report ok (typed
	// codecs carry explicit presence where zero is meaningful).
	Arg(name string) (any, bool)
}

// ArgMap is the generic map-backed Args implementation.
type ArgMap map[string]any

// Arg implements Args.
func (m ArgMap) Arg(name string) (any, bool) {
	v, ok := m[name]
	return v, ok
}

// Call is one invocation travelling through the application: the unit the
// shepherding thread of the paper carries from the web tier through the
// EJBs. Components append themselves to Path, which both reproduces the
// "path of calls between servlets and EJBs" that the recovery manager's
// diagnosis uses and lets the server kill the calls shepherded by a
// component being microrebooted.
type Call struct {
	// Op is the end-user operation, e.g. "MakeBid".
	Op string
	// Component is the component this (sub)invocation targets; set by
	// Server.Invoke before the interceptor chain runs.
	Component string
	// SessionID identifies the HTTP session (cookie analog).
	SessionID string
	// Args carries operation arguments.
	Args Args
	// TTL is the execution lease: Server.Invoke enforces it as a context
	// deadline on the root invocation, so a stuck call observes
	// cancellation (cause ErrLeaseExpired) when it expires.
	TTL time.Duration
	// Path accumulates the components traversed, in order.
	Path []string
	// parent links a sub-invocation back to the call it was spawned
	// from: one shepherd (context tree) carries a user request through
	// multiple components, so killing any hop kills the whole request.
	parent *Call
	// killed is set when a microreboot destroys the call's shepherd.
	killed atomic.Bool

	// trackPrev/trackNext link the call into its component's active-call
	// list while an Invoke is in flight. They are owned by the server's
	// call tracking (guarded by the component shard's mutex) and give
	// track/untrack O(1) cost with no map hashing.
	trackPrev, trackNext *Call

	// mu guards the context binding below; it is only meaningful on the
	// root call of a request.
	mu     sync.Mutex
	bound  bool
	cancel context.CancelCauseFunc
}

// callPool recycles Call objects across requests. A Call holds a mutex
// and an atomic, so it is reset field by field (never copied) before
// being pooled again.
var callPool = sync.Pool{New: func() any { return new(Call) }}

// NewCall returns a root call drawn from the call pool. Callers that own
// the request's lifetime should hand the call back with Release once the
// invocation has returned and the call is no longer referenced.
func NewCall(op, sessionID string, args Args, ttl time.Duration) *Call {
	c := callPool.Get().(*Call)
	c.Op = op
	c.SessionID = sessionID
	c.Args = args
	c.TTL = ttl
	return c
}

// Child derives a sub-invocation for an inter-component call: it shares
// the session and TTL, records its traversal into the parent's path, and
// propagates kills to the parent (the shepherding thread is one and the
// same). The child is drawn from the call pool; release it with Release
// after its Invoke returns.
func (c *Call) Child(op string, args Args) *Call {
	ch := callPool.Get().(*Call)
	ch.Op = op
	ch.SessionID = c.SessionID
	ch.Args = args
	ch.TTL = c.TTL
	ch.parent = c
	return ch
}

// Release resets the call and returns it to the call pool, reporting
// whether it was recycled. Killed calls are refused: a microreboot
// retains them in Reboot.KilledCalls, so recycling would alias live
// bookkeeping. The server kills calls only while they are tracked (under
// the shard lock Invoke untracks through), so once Invoke has returned,
// the killed flag is stable and Release is safe to call.
func (c *Call) Release() bool {
	if c.killed.Load() {
		return false
	}
	c.mu.Lock()
	bound := c.bound
	c.mu.Unlock()
	if bound {
		return false
	}
	c.Op, c.Component, c.SessionID = "", "", ""
	c.Args = nil
	c.TTL = 0
	c.Path = c.Path[:0] // keep capacity: Via appends stay allocation-free
	c.parent = nil
	c.trackPrev, c.trackNext = nil, nil
	callPool.Put(c)
	return true
}

// Via records that the call entered the named component; the traversal is
// visible on the root call's Path.
func (c *Call) Via(component string) {
	c.Path = append(c.Path, component)
	if c.parent != nil {
		c.parent.Via(component)
	}
}

// Killed reports whether a microreboot killed this call's shepherd.
func (c *Call) Killed() bool { return c.killed.Load() }

// Kill marks the call — and the request it belongs to — as killed, and
// cancels the request's root context (cause ErrKilled) so a blocked
// component observes ctx.Done() immediately.
func (c *Call) Kill() {
	for p := c; p != nil; p = p.parent {
		p.killed.Store(true)
	}
	r := c.Root()
	r.mu.Lock()
	cancel := r.cancel
	r.mu.Unlock()
	if cancel != nil {
		cancel(ErrKilled)
	}
}

// Root returns the top-level call of the request.
func (c *Call) Root() *Call {
	r := c
	for r.parent != nil {
		r = r.parent
	}
	return r
}

// bindContext attaches an invocation context to the request's root call:
// the execution lease (TTL) becomes a deadline and Kill becomes a
// cancellation. It is a no-op for sub-invocations of an already-bound
// request (they inherit the caller's derived context). The returned
// release func (nil when already bound) must run when the root invocation
// finishes.
func (c *Call) bindContext(parent context.Context) (context.Context, func()) {
	r := c.Root()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.bound {
		return parent, nil
	}
	ctx, cancel := context.WithCancelCause(parent)
	stop := func() {}
	if r.TTL > 0 {
		ctx, stop = context.WithTimeoutCause(ctx, r.TTL, ErrLeaseExpired)
	}
	if r.killed.Load() {
		cancel(ErrKilled)
	}
	r.bound = true
	r.cancel = cancel
	return ctx, func() {
		stop()
		cancel(context.Canceled)
		r.mu.Lock()
		r.bound = false
		r.cancel = nil
		r.mu.Unlock()
	}
}

// Arg fetches a typed argument; ok is false when absent or mistyped —
// typed access fails closed rather than coercing across types.
func Arg[T any](c *Call, name string) (T, bool) {
	var zero T
	if c.Args == nil {
		return zero, false
	}
	v, ok := c.Args.Arg(name)
	if !ok {
		return zero, false
	}
	t, ok := v.(T)
	if !ok {
		return zero, false
	}
	return t, true
}

// Component is the unit of microrebootability. Implementations must be
// cheap to construct and initialize — the paper's first design goal is
// components that are as small as possible in program logic and startup
// time.
type Component interface {
	// Init prepares a fresh instance. It runs at deployment and again
	// after every microreboot; it must be idempotent with respect to
	// external state.
	Init(env *Env) error
	// Serve handles one operation dispatched to this component. The
	// context is the request's shepherd: it is cancelled when a
	// microreboot kills the call (cause ErrKilled) or the execution
	// lease expires (cause ErrLeaseExpired). Components that block must
	// select on ctx.Done().
	Serve(ctx context.Context, call *Call) (any, error)
	// Stop releases instance resources. It is called on graceful
	// undeployment but NOT on a microreboot crash — µRBs forcefully
	// destroy instances without relying on their cooperation.
	Stop() error
}

// Factory creates component instances. It is the classloader analog:
// preserved across microreboots, so state captured in its closure plays
// the role of Java static variables (which J2EE discourages mutating, and
// which a µRB deliberately does not reset).
type Factory func() Component

// Descriptor is the deployment descriptor for one component.
type Descriptor struct {
	Name string
	Kind Kind
	// Refs are loose references resolved through the naming service;
	// they define the call paths used by failure diagnosis but do NOT
	// force components into a common recovery group.
	Refs []string
	// HardRefs are container-spanning metadata relationships (e.g. CMP
	// relationships between entities). The transitive closure of
	// HardRefs defines the recovery group that must microreboot
	// together.
	HardRefs []string
	// Factory builds instances. Required.
	Factory Factory
	// TxMethods is the transaction method map installed into the
	// container at (re)initialization.
	TxMethods map[string]TxAttr
	// PoolSize is the instance pool size; zero means DefaultPoolSize.
	PoolSize int
}

// DefaultPoolSize is the container instance pool size when a descriptor
// does not specify one.
const DefaultPoolSize = 4

// Application is a deployable set of components.
type Application struct {
	Name       string
	Components []Descriptor
}

// Env is the server-provided environment handed to component instances at
// Init. It deliberately exposes only high-level facilities: the paper
// argues components must obtain resources exclusively through their
// platform, or microreboots leak them.
type Env struct {
	// Registry resolves inter-component references.
	Registry *Registry
	// Resources carries application-wide facilities (database handle,
	// session store, ...) registered at deployment. Keys are
	// well-known strings owned by the application.
	Resources map[string]any
	// Now supplies virtual (or real) time.
	Now func() time.Duration
	// Server lets components reach platform services: inter-component
	// calls go through Server.Invoke so the interceptor pipeline and
	// shepherd tracking see every hop.
	Server *Server
	// componentName is the name of the component this Env was built for.
	componentName string
}

// Resource fetches a typed resource from the environment.
func Resource[T any](e *Env, key string) (T, bool) {
	var zero T
	v, ok := e.Resources[key].(T)
	if !ok {
		return zero, false
	}
	return v, true
}

// ComponentName returns the name of the component the Env belongs to.
func (e *Env) ComponentName() string { return e.componentName }

// Errors returned by the core machinery.
var (
	// ErrRetryAfter is returned when a call reaches a component that is
	// currently microrebooting; see RetryAfterError.
	ErrRetryAfter = errors.New("core: component is recovering, retry after")
	// ErrNotBound is returned when a name has no binding.
	ErrNotBound = errors.New("core: name not bound")
	// ErrHang marks a call that would block forever (deadlock or
	// infinite loop); the hosting node parks it until killed or TTL.
	ErrHang = errors.New("core: call hung")
	// ErrComponentFault is the generic failure surfaced to callers when
	// a component malfunctions.
	ErrComponentFault = errors.New("core: component fault")
	// ErrStopped is returned by calls into an undeployed component.
	ErrStopped = errors.New("core: component stopped")
	// ErrKilled is the cancellation cause delivered to a call whose
	// shepherd was destroyed by a microreboot.
	ErrKilled = errors.New("core: call killed by microreboot")
	// ErrLeaseExpired is the cancellation cause delivered to a call
	// whose execution lease (TTL) ran out.
	ErrLeaseExpired = errors.New("core: execution lease expired")
)

// CancelCause extracts the invocation-level failure behind a context
// cancellation: ErrKilled, ErrLeaseExpired, or the raw context error when
// the cancellation came from outside the server (e.g. an HTTP client
// disconnect).
func CancelCause(ctx context.Context) error {
	if cause := context.Cause(ctx); cause != nil {
		return cause
	}
	return ctx.Err()
}

// RetryAfterError tells the caller when to retry; the web tier maps it to
// HTTP 503 with a Retry-After header (Section 6.2 of the paper).
type RetryAfterError struct {
	// Component is the recovering component.
	Component string
	// After is the estimated remaining recovery time.
	After time.Duration
}

// Error implements error.
func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("core: %s is recovering, retry after %v", e.Component, e.After)
}

// Unwrap makes errors.Is(err, ErrRetryAfter) work.
func (e *RetryAfterError) Unwrap() error { return ErrRetryAfter }
