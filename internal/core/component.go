// Package core implements the paper's primary contribution: the
// microreboot machinery of a component application server.
//
// The design follows Section 3.2 of the paper. Applications are deployed
// as sets of components (EJB analogs) described by deployment descriptors.
// Each component runs inside a Container that manages an instance pool and
// per-component metadata (the transaction method map). A naming Registry
// (JNDI analog) maps component names to containers; during a microreboot
// the name is bound to a sentinel and lookups return ErrRetryAfter, which
// the web tier translates into HTTP 503 + Retry-After.
//
// Invocations enter through Server.Invoke, which binds a root
// context.Context to the request (the execution lease becomes a context
// deadline; a microreboot kill becomes a context cancellation) and runs an
// Interceptor pipeline before dispatching to the component's container.
// The shepherding thread of the paper is therefore a context tree: one
// cancellation kills the whole request, wherever it currently executes.
//
// Microreboot(name) expands the target to its recovery group — the
// transitive closure of hard inter-component references declared in the
// descriptors — then, for each member: destroys all extant instances,
// kills the shepherding calls associated with them (by cancelling their
// root contexts), aborts their open transactions, releases leased
// resources, discards server metadata held on the component's behalf, and
// finally reinstantiates and reinitializes the component. The component's
// Factory (the classloader analog) is the only thing preserved, exactly
// as JBoss preserves the EJB classloader.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies components, mirroring the two EJB flavors used by eBid
// plus the web tier.
type Kind int

// Component kinds.
const (
	// StatelessSession components implement end-user operations; each
	// operation is a stateless session EJB interacting with entities.
	StatelessSession Kind = iota
	// Entity components implement persistent application objects whose
	// instance state maps to database rows (container-managed
	// persistence).
	Entity
	// Web is the presentation tier (the WAR): servlets invoking the
	// session components and formatting results.
	Web
)

func (k Kind) String() string {
	switch k {
	case StatelessSession:
		return "stateless-session"
	case Entity:
		return "entity"
	case Web:
		return "web"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// TxAttr is a transaction attribute in the container's transaction method
// map (a J2EE deployment concept; corrupting this map is one of the
// Table 2 faults).
type TxAttr string

// Transaction attributes.
const (
	TxRequired  TxAttr = "Required"
	TxSupports  TxAttr = "Supports"
	TxNever     TxAttr = "Never"
	txCorrupted TxAttr = "\x00corrupted"
)

// Args carries operation arguments through a Call. Implementations are
// typed per-operation codecs: a struct with one field per argument avoids
// the per-call map allocation the generic form pays. ArgMap is the
// generic (map-backed) implementation for tests, tools, and arbitrary
// key sets.
type Args interface {
	// Arg returns the named argument; ok is false when absent. A zero
	// value that is legal for the argument must still report ok (typed
	// codecs carry explicit presence where zero is meaningful).
	Arg(name string) (any, bool)
}

// ArgMap is the generic map-backed Args implementation.
type ArgMap map[string]any

// Arg implements Args.
func (m ArgMap) Arg(name string) (any, bool) {
	v, ok := m[name]
	return v, ok
}

// Call is one invocation travelling through the application: the unit the
// shepherding thread of the paper carries from the web tier through the
// EJBs. Components append themselves to Path, which both reproduces the
// "path of calls between servlets and EJBs" that the recovery manager's
// diagnosis uses and lets the server kill the calls shepherded by a
// component being microrebooted.
type Call struct {
	// Op is the end-user operation, e.g. "MakeBid".
	Op string
	// Component is the component this (sub)invocation targets; set by
	// Server.Invoke before the interceptor chain runs.
	Component string
	// SessionID identifies the HTTP session (cookie analog).
	SessionID string
	// Args carries operation arguments.
	Args Args
	// TTL is the execution lease: Server.Invoke enforces it as a context
	// deadline on the root invocation, so a stuck call observes
	// cancellation (cause ErrLeaseExpired) when it expires.
	TTL time.Duration
	// Path accumulates the components traversed, in order.
	Path []string
	// parent links a sub-invocation back to the call it was spawned
	// from: one shepherd (context tree) carries a user request through
	// multiple components, so killing any hop kills the whole request.
	parent *Call
	// killed is set when a microreboot destroys the call's shepherd.
	killed atomic.Bool

	// trackPrev/trackNext link the call into its component's active-call
	// list while an Invoke is in flight. They are owned by the server's
	// call tracking (guarded by the component shard's mutex) and give
	// track/untrack O(1) cost with no map hashing.
	trackPrev, trackNext *Call

	// shep is the request's shepherd context, embedded in the pooled
	// call so binding a root context costs no allocation. Only
	// meaningful on the root call of a request.
	shep shepherd

	// Typed result slots: the result-side mirror of the typed arg
	// codecs. A component whose result is one of the hot shapes (a
	// rendered body string, a key list) writes it here and returns the
	// SlotResult sentinel from Serve instead of boxing the value through
	// `any` — the sentinel is a package variable, so returning it
	// allocates nothing. Callers that see SlotResult read the slot;
	// everything else flows through `any` exactly as before, which is
	// what keeps the fault-injection interceptors (which fabricate plain
	// `any` results) and the sim/figure callers working unchanged.
	resBody    string
	hasResBody bool
	resKeys    []int64
	hasResKeys bool
}

// slotResult is the sentinel type returned (as its package-var instance
// SlotResult) by components that deposited their result in the call's
// typed result slots.
type slotResult struct{}

// SlotResult signals "the result is in the call's typed result slots".
var SlotResult any = slotResult{}

// SetBodyResult deposits a rendered body string in the call's result
// slot. Return SlotResult from Serve after calling it.
func (c *Call) SetBodyResult(body string) {
	c.resBody = body
	c.hasResBody = true
}

// BodyResult reads (and clears) the body result slot.
func (c *Call) BodyResult() (string, bool) {
	if !c.hasResBody {
		return "", false
	}
	s := c.resBody
	c.resBody, c.hasResBody = "", false
	return s, true
}

// SetKeysResult deposits a key-list result in the call's result slot.
// The slice is retained until read or Release; callers hand over
// ownership.
func (c *Call) SetKeysResult(keys []int64) {
	c.resKeys = keys
	c.hasResKeys = true
}

// KeysResult reads (and clears) the key-list result slot.
func (c *Call) KeysResult() ([]int64, bool) {
	if !c.hasResKeys {
		return nil, false
	}
	k := c.resKeys
	c.resKeys, c.hasResKeys = nil, false
	return k, true
}

// callPool recycles Call objects across requests. A Call holds a mutex
// and an atomic, so it is reset field by field (never copied) before
// being pooled again.
var callPool = sync.Pool{New: func() any { return new(Call) }}

// NewCall returns a root call drawn from the call pool. Callers that own
// the request's lifetime should hand the call back with Release once the
// invocation has returned and the call is no longer referenced.
func NewCall(op, sessionID string, args Args, ttl time.Duration) *Call {
	c := callPool.Get().(*Call)
	c.Op = op
	c.SessionID = sessionID
	c.Args = args
	c.TTL = ttl
	return c
}

// Child derives a sub-invocation for an inter-component call: it shares
// the session and TTL, records its traversal into the parent's path, and
// propagates kills to the parent (the shepherding thread is one and the
// same). The child is drawn from the call pool; release it with Release
// after its Invoke returns.
func (c *Call) Child(op string, args Args) *Call {
	ch := callPool.Get().(*Call)
	ch.Op = op
	ch.SessionID = c.SessionID
	ch.Args = args
	ch.TTL = c.TTL
	ch.parent = c
	return ch
}

// Release resets the call and returns it to the call pool, reporting
// whether it was recycled. Killed calls are refused: a microreboot
// retains them in Reboot.KilledCalls, so recycling would alias live
// bookkeeping. The server kills calls only while they are tracked (under
// the shard lock Invoke untracks through), so once Invoke has returned,
// the killed flag is stable and Release is safe to call.
func (c *Call) Release() bool {
	if c.killed.Load() {
		return false
	}
	c.shep.mu.Lock()
	bound := c.shep.bound
	c.shep.mu.Unlock()
	if bound {
		return false
	}
	c.Op, c.Component, c.SessionID = "", "", ""
	c.Args = nil
	c.TTL = 0
	c.Path = c.Path[:0] // keep capacity: Via appends stay allocation-free
	c.parent = nil
	c.trackPrev, c.trackNext = nil, nil
	c.resBody, c.hasResBody = "", false
	c.resKeys, c.hasResKeys = nil, false
	callPool.Put(c)
	return true
}

// Via records that the call entered the named component; the traversal is
// visible on the root call's Path.
func (c *Call) Via(component string) {
	c.Path = append(c.Path, component)
	if c.parent != nil {
		c.parent.Via(component)
	}
}

// Killed reports whether a microreboot killed this call's shepherd.
func (c *Call) Killed() bool { return c.killed.Load() }

// Kill marks the call — and the request it belongs to — as killed, and
// cancels the request's root context (cause ErrKilled) so a blocked
// component observes ctx.Done() immediately.
func (c *Call) Kill() {
	for p := c; p != nil; p = p.parent {
		p.killed.Store(true)
	}
	c.Root().shep.kill()
}

// Root returns the top-level call of the request.
func (c *Call) Root() *Call {
	r := c
	for r.parent != nil {
		r = r.parent
	}
	return r
}

// bindContext attaches an invocation context to the request's root call:
// the execution lease (TTL) becomes a deadline and Kill becomes a
// cancellation. It is a no-op for sub-invocations of an already-bound
// request (they inherit the caller's derived context). The returned
// shepherd (nil when already bound) must be unbound when the root
// invocation finishes.
func (c *Call) bindContext(parent context.Context) (context.Context, *shepherd) {
	r := c.Root()
	s := &r.shep
	s.mu.Lock()
	if s.bound {
		s.mu.Unlock()
		return parent, nil
	}
	s.bound = true
	s.parent = parent
	s.deadline = time.Time{}
	s.done = nil
	s.err, s.cause = nil, nil
	if r.TTL > 0 {
		s.deadline = time.Now().Add(r.TTL)
		if pd, ok := parent.Deadline(); ok && pd.Before(s.deadline) {
			s.deadline = pd
		}
	}
	if r.killed.Load() {
		s.cancelLocked(context.Canceled, ErrKilled)
	}
	s.mu.Unlock()
	return s, s
}

// shepherd is the root invocation context, embedded in the pooled Call so
// binding a context per request allocates nothing. Cancellation state is
// evaluated lazily: Err checks the lease deadline and the parent on
// demand, and the done channel, lease timer, and parent watcher only
// materialize when something actually blocks on Done — the common
// non-blocking request never pays for any of them.
//
// The context is valid only for the duration of its request: once the
// root Invoke returns, the call (and this context with it) may be
// recycled for a different request. Code must not retain it past Serve —
// the same contract net/http puts on request contexts.
type shepherd struct {
	mu       sync.Mutex
	bound    bool
	parent   context.Context
	deadline time.Time     // lease expiry; zero when the call has no TTL
	done     chan struct{} // lazily created by Done
	timer    *time.Timer   // lease timer, armed alongside done
	err      error         // Canceled/DeadlineExceeded once cancelled
	cause    error         // ErrKilled, ErrLeaseExpired, or the parent's cause
}

// closedchan is the reusable pre-closed Done channel for contexts that
// were cancelled before anything blocked on them.
var closedchan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// shepherdKey is the Value key under which a shepherd exposes itself, so
// CancelCause can find the invocation cause through WithValue wrappers
// and library-derived child contexts.
type shepherdKey struct{}

// Deadline implements context.Context.
func (s *shepherd) Deadline() (time.Time, bool) {
	s.mu.Lock()
	d, parent := s.deadline, s.parent
	s.mu.Unlock()
	if !d.IsZero() {
		return d, true
	}
	if parent != nil {
		return parent.Deadline()
	}
	return time.Time{}, false
}

// Done implements context.Context. The first call arms the heavyweight
// machinery: the lease timer and, when the parent is cancellable, a
// watcher goroutine propagating its cancellation.
func (s *shepherd) Done() <-chan struct{} {
	s.mu.Lock()
	if s.done == nil {
		if s.errLocked() != nil {
			s.mu.Unlock()
			return closedchan
		}
		done := make(chan struct{})
		s.done = done
		if !s.deadline.IsZero() {
			s.timer = time.AfterFunc(time.Until(s.deadline), func() {
				s.cancelFor(done, context.DeadlineExceeded, ErrLeaseExpired)
			})
		}
		if parent := s.parent; parent != nil && parent.Done() != nil {
			go func() {
				select {
				case <-parent.Done():
					s.cancelFor(done, parent.Err(), context.Cause(parent))
				case <-done:
				}
			}()
		}
	}
	d := s.done
	s.mu.Unlock()
	return d
}

// Err implements context.Context, lazily observing lease expiry and
// parent cancellation — no timer needs to have fired for a hop-boundary
// lease check to see an expired lease.
func (s *shepherd) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.errLocked()
}

func (s *shepherd) errLocked() error {
	if s.err != nil {
		return s.err
	}
	if !s.deadline.IsZero() && !time.Now().Before(s.deadline) {
		s.cancelLocked(context.DeadlineExceeded, ErrLeaseExpired)
		return s.err
	}
	if s.parent != nil {
		if perr := s.parent.Err(); perr != nil {
			s.cancelLocked(perr, context.Cause(s.parent))
			return s.err
		}
	}
	return nil
}

// Value implements context.Context.
func (s *shepherd) Value(key any) any {
	if _, ok := key.(shepherdKey); ok {
		return s
	}
	s.mu.Lock()
	parent := s.parent
	s.mu.Unlock()
	if parent != nil {
		return parent.Value(key)
	}
	return nil
}

// causeErr returns the invocation-level cancellation cause, nil while
// the context is live.
func (s *shepherd) causeErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.errLocked() == nil {
		return nil
	}
	return s.cause
}

// kill cancels a bound shepherd with cause ErrKilled; on an unbound call
// the killed flag alone carries the verdict until bindContext runs.
func (s *shepherd) kill() {
	s.mu.Lock()
	if s.bound {
		s.cancelLocked(context.Canceled, ErrKilled)
	}
	s.mu.Unlock()
}

func (s *shepherd) cancelLocked(err, cause error) {
	if s.err != nil {
		return
	}
	s.err, s.cause = err, cause
	if s.done != nil {
		close(s.done)
	}
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
}

// cancelFor cancels only if done is still the current request's channel:
// the lease timer and parent watcher capture the channel they were armed
// for, so a callback outliving its request can never cancel the next
// request bound to the recycled call.
func (s *shepherd) cancelFor(done chan struct{}, err, cause error) {
	s.mu.Lock()
	if s.done == done {
		s.cancelLocked(err, cause)
	}
	s.mu.Unlock()
}

// unbind ends the request: the context is cancelled (unblocking any
// straggling watcher) and stays cancelled while unbound, so retained
// references observe a dead context rather than a reset one. bindContext
// re-arms the state for the next request.
func (s *shepherd) unbind() {
	s.mu.Lock()
	s.cancelLocked(context.Canceled, context.Canceled)
	s.bound = false
	s.parent = nil
	s.mu.Unlock()
}

// Arg fetches a typed argument; ok is false when absent or mistyped —
// typed access fails closed rather than coercing across types.
func Arg[T any](c *Call, name string) (T, bool) {
	var zero T
	if c.Args == nil {
		return zero, false
	}
	v, ok := c.Args.Arg(name)
	if !ok {
		return zero, false
	}
	t, ok := v.(T)
	if !ok {
		return zero, false
	}
	return t, true
}

// Component is the unit of microrebootability. Implementations must be
// cheap to construct and initialize — the paper's first design goal is
// components that are as small as possible in program logic and startup
// time.
type Component interface {
	// Init prepares a fresh instance. It runs at deployment and again
	// after every microreboot; it must be idempotent with respect to
	// external state.
	Init(env *Env) error
	// Serve handles one operation dispatched to this component. The
	// context is the request's shepherd: it is cancelled when a
	// microreboot kills the call (cause ErrKilled) or the execution
	// lease expires (cause ErrLeaseExpired). Components that block must
	// select on ctx.Done().
	Serve(ctx context.Context, call *Call) (any, error)
	// Stop releases instance resources. It is called on graceful
	// undeployment but NOT on a microreboot crash — µRBs forcefully
	// destroy instances without relying on their cooperation.
	Stop() error
}

// Factory creates component instances. It is the classloader analog:
// preserved across microreboots, so state captured in its closure plays
// the role of Java static variables (which J2EE discourages mutating, and
// which a µRB deliberately does not reset).
type Factory func() Component

// Descriptor is the deployment descriptor for one component.
type Descriptor struct {
	Name string
	Kind Kind
	// Refs are loose references resolved through the naming service;
	// they define the call paths used by failure diagnosis but do NOT
	// force components into a common recovery group.
	Refs []string
	// HardRefs are container-spanning metadata relationships (e.g. CMP
	// relationships between entities). The transitive closure of
	// HardRefs defines the recovery group that must microreboot
	// together.
	HardRefs []string
	// Factory builds instances. Required.
	Factory Factory
	// TxMethods is the transaction method map installed into the
	// container at (re)initialization.
	TxMethods map[string]TxAttr
	// PoolSize is the instance pool size; zero means DefaultPoolSize.
	PoolSize int
}

// DefaultPoolSize is the container instance pool size when a descriptor
// does not specify one.
const DefaultPoolSize = 4

// Application is a deployable set of components.
type Application struct {
	Name       string
	Components []Descriptor
}

// Env is the server-provided environment handed to component instances at
// Init. It deliberately exposes only high-level facilities: the paper
// argues components must obtain resources exclusively through their
// platform, or microreboots leak them.
type Env struct {
	// Registry resolves inter-component references.
	Registry *Registry
	// Resources carries application-wide facilities (database handle,
	// session store, ...) registered at deployment. Keys are
	// well-known strings owned by the application.
	Resources map[string]any
	// Now supplies virtual (or real) time.
	Now func() time.Duration
	// Server lets components reach platform services: inter-component
	// calls go through Server.Invoke so the interceptor pipeline and
	// shepherd tracking see every hop.
	Server *Server
	// componentName is the name of the component this Env was built for.
	componentName string
}

// Resource fetches a typed resource from the environment.
func Resource[T any](e *Env, key string) (T, bool) {
	var zero T
	v, ok := e.Resources[key].(T)
	if !ok {
		return zero, false
	}
	return v, true
}

// ComponentName returns the name of the component the Env belongs to.
func (e *Env) ComponentName() string { return e.componentName }

// Errors returned by the core machinery.
var (
	// ErrRetryAfter is returned when a call reaches a component that is
	// currently microrebooting; see RetryAfterError.
	ErrRetryAfter = errors.New("core: component is recovering, retry after")
	// ErrNotBound is returned when a name has no binding.
	ErrNotBound = errors.New("core: name not bound")
	// ErrHang marks a call that would block forever (deadlock or
	// infinite loop); the hosting node parks it until killed or TTL.
	ErrHang = errors.New("core: call hung")
	// ErrComponentFault is the generic failure surfaced to callers when
	// a component malfunctions.
	ErrComponentFault = errors.New("core: component fault")
	// ErrStopped is returned by calls into an undeployed component.
	ErrStopped = errors.New("core: component stopped")
	// ErrKilled is the cancellation cause delivered to a call whose
	// shepherd was destroyed by a microreboot.
	ErrKilled = errors.New("core: call killed by microreboot")
	// ErrLeaseExpired is the cancellation cause delivered to a call
	// whose execution lease (TTL) ran out.
	ErrLeaseExpired = errors.New("core: execution lease expired")
)

// CancelCause extracts the invocation-level failure behind a context
// cancellation: ErrKilled, ErrLeaseExpired, or the raw context error when
// the cancellation came from outside the server (e.g. an HTTP client
// disconnect). The shepherd context is not a context-package cancelCtx,
// so context.Cause alone cannot see its cause; look it up through the
// Value chain first (which also works for contexts derived from the
// shepherd), then fall back to the standard machinery.
func CancelCause(ctx context.Context) error {
	if s, ok := ctx.Value(shepherdKey{}).(*shepherd); ok {
		if cause := s.causeErr(); cause != nil {
			return cause
		}
	}
	if cause := context.Cause(ctx); cause != nil {
		return cause
	}
	return ctx.Err()
}

// RetryAfterError tells the caller when to retry; the web tier maps it to
// HTTP 503 with a Retry-After header (Section 6.2 of the paper).
type RetryAfterError struct {
	// Component is the recovering component.
	Component string
	// After is the estimated remaining recovery time.
	After time.Duration
}

// Error implements error.
func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("core: %s is recovering, retry after %v", e.Component, e.After)
}

// Unwrap makes errors.Is(err, ErrRetryAfter) work.
func (e *RetryAfterError) Unwrap() error { return ErrRetryAfter }
