package core

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// ContainerState tracks the lifecycle of a container.
type ContainerState int

// Container states.
const (
	StateRunning ContainerState = iota
	StateRebooting
	StateStopped
)

func (s ContainerState) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateRebooting:
		return "rebooting"
	case StateStopped:
		return "stopped"
	default:
		return fmt.Sprintf("ContainerState(%d)", int(s))
	}
}

// Container manages all instances of one component, the per-component
// server metadata, and the component's volatile resource accounting. It is
// the JBoss "management container" analog. Cross-cutting concerns — fault
// injection, metrics, call-path recording, shepherd tracking — live in
// the Server's interceptor pipeline, not here.
type Container struct {
	mu   sync.Mutex
	desc Descriptor
	env  *Env

	state     ContainerState
	instances []Component
	next      int // round-robin instance cursor

	// txMethods is the live transaction method map; rebuilt from the
	// descriptor on every (re)initialization, so corruption is cured by
	// a µRB.
	txMethods map[string]TxAttr

	// leakedBytes models memory held beyond the instance pool (leaks);
	// a µRB releases it. Drives the microrejuvenation experiments.
	leakedBytes int64

	// rebooted counts crash phases this container went through.
	rebooted uint64

	// recoveryEstimate is how long a µRB of this component is expected
	// to take; used for the RetryAfter hint.
	recoveryEstimate time.Duration
}

func newContainer(desc Descriptor, env *Env) *Container {
	return &Container{
		desc:  desc,
		env:   env,
		state: StateStopped,
	}
}

// Name returns the component name.
func (c *Container) Name() string { return c.desc.Name }

// Kind returns the component kind.
func (c *Container) Kind() Kind { return c.desc.Kind }

// Descriptor returns a copy of the deployment descriptor.
func (c *Container) Descriptor() Descriptor { return c.desc }

// State returns the container's lifecycle state.
func (c *Container) State() ContainerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// initialize builds the instance pool and metadata. Called at deployment
// and at the completion phase of a microreboot. The instance Factory is
// deliberately reused (classloader preservation).
func (c *Container) initialize() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.initializeLocked()
}

func (c *Container) initializeLocked() error {
	size := c.desc.PoolSize
	if size <= 0 {
		size = DefaultPoolSize
	}
	c.instances = make([]Component, 0, size)
	for i := 0; i < size; i++ {
		inst := c.desc.Factory()
		if inst == nil {
			return fmt.Errorf("core: factory for %s returned nil", c.desc.Name)
		}
		if err := inst.Init(c.env); err != nil {
			return fmt.Errorf("core: init %s: %w", c.desc.Name, err)
		}
		c.instances = append(c.instances, inst)
	}
	// Rebuild the transaction method map from the descriptor: corrupted
	// metadata is discarded by the µRB.
	c.txMethods = make(map[string]TxAttr, len(c.desc.TxMethods))
	for op, attr := range c.desc.TxMethods {
		c.txMethods[op] = attr
	}
	c.state = StateRunning
	return nil
}

// crash forcefully destroys all instances and discards metadata. It
// returns the number of leaked bytes released. The shepherded calls are
// killed by the Server, which owns shepherd tracking.
func (c *Container) crash() (freed int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.state = StateRebooting
	c.instances = nil // destroy all extant instances
	c.next = 0
	c.txMethods = nil // discard server metadata
	freed = c.leakedBytes
	c.leakedBytes = 0
	c.rebooted++
	return freed
}

// stop gracefully undeploys the component.
func (c *Container) stop() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var firstErr error
	for _, inst := range c.instances {
		if err := inst.Stop(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	c.instances = nil
	c.state = StateStopped
	return firstErr
}

// CorruptTxMethodMap damages the live transaction method map (Table 2:
// "corrupt transaction method map"). mode is "null", "invalid" or
// "wrong". The damage persists until the next µRB rebuilds the map.
func (c *Container) CorruptTxMethodMap(mode string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch mode {
	case "null":
		c.txMethods = nil
	case "invalid":
		for op := range c.txMethods {
			c.txMethods[op] = txCorrupted
		}
	case "wrong":
		// Swap attributes so transactional ops run without transactions:
		// valid-looking, semantically wrong.
		for op := range c.txMethods {
			if c.txMethods[op] == TxRequired {
				c.txMethods[op] = TxNever
			} else {
				c.txMethods[op] = TxRequired
			}
		}
	default:
		return fmt.Errorf("core: unknown corruption mode %q", mode)
	}
	return nil
}

// TxAttrFor reports the transaction attribute for op. Calls on a container
// whose map was nulled or invalidated fail — reproducing the fault's
// user-visible symptom.
func (c *Container) TxAttrFor(op string) (TxAttr, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.txMethods == nil {
		return "", fmt.Errorf("%w: %s transaction method map missing", ErrComponentFault, c.desc.Name)
	}
	attr, ok := c.txMethods[op]
	if !ok {
		return TxSupports, nil // sensible default for undeclared ops
	}
	if attr == txCorrupted {
		return "", fmt.Errorf("%w: %s transaction method map corrupted", ErrComponentFault, c.desc.Name)
	}
	return attr, nil
}

// Leak adds n bytes to the container's modeled leaked memory.
func (c *Container) Leak(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.leakedBytes += n
}

// LeakedBytes reports the current modeled leak.
func (c *Container) LeakedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.leakedBytes
}

// Rebooted reports how many crash phases this container went through.
func (c *Container) Rebooted() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rebooted
}

// ReplaceInstance discards one pooled instance and builds a fresh one.
// The container does this automatically when an instance-level fault is
// detected — which is why Table 2 marks null/invalid attribute corruption
// of stateless session EJBs as needing no reboot at all: the faulty
// instance is naturally expunged after the first call fails.
func (c *Container) ReplaceInstance(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.instances) {
		return fmt.Errorf("core: instance index %d out of range", i)
	}
	inst := c.desc.Factory()
	if err := inst.Init(c.env); err != nil {
		return err
	}
	c.instances[i] = inst
	return nil
}

// Serve dispatches a call to a pooled instance. It enforces the container
// state and consults the transaction method map; everything else about
// the hop (path recording, metrics, fault hooks, kill tracking) happens
// in the Server's interceptor pipeline before the call gets here.
func (c *Container) Serve(ctx context.Context, call *Call) (any, error) {
	c.mu.Lock()
	switch c.state {
	case StateRebooting:
		est := c.recoveryEstimate
		c.mu.Unlock()
		return nil, &RetryAfterError{Component: c.desc.Name, After: est}
	case StateStopped:
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrStopped, c.desc.Name)
	}
	if len(c.instances) == 0 {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %s has no instances", ErrComponentFault, c.desc.Name)
	}
	idx := c.next % len(c.instances)
	inst := c.instances[idx]
	c.next++
	c.mu.Unlock()

	// The transaction method map must be intact for any declared op.
	if _, err := c.TxAttrFor(call.Op); err != nil {
		return nil, err
	}

	return inst.Serve(ctx, call)
}
