package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/store/db"
)

// echoComponent is a trivial component for framework tests.
type echoComponent struct {
	name    string
	inited  int
	stopped int
}

func (e *echoComponent) Init(env *Env) error { e.inited++; return nil }
func (e *echoComponent) Serve(ctx context.Context, call *Call) (any, error) {
	return fmt.Sprintf("%s:%s", e.name, call.Op), nil
}
func (e *echoComponent) Stop() error { e.stopped++; return nil }

func echoDesc(name string, kind Kind, hardRefs ...string) Descriptor {
	return Descriptor{
		Name:     name,
		Kind:     kind,
		HardRefs: hardRefs,
		Factory:  func() Component { return &echoComponent{name: name} },
		TxMethods: map[string]TxAttr{
			"write": TxRequired,
			"read":  TxSupports,
		},
	}
}

func deployEcho(t *testing.T, names ...string) *Server {
	t.Helper()
	s := NewServer()
	app := Application{Name: "test"}
	for _, n := range names {
		app.Components = append(app.Components, echoDesc(n, StatelessSession))
	}
	if err := s.Deploy(app); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	return s
}

func bg() context.Context { return context.Background() }

func TestDeployAndServe(t *testing.T) {
	s := deployEcho(t, "A", "B")
	res, err := s.Invoke(bg(), "A", &Call{Op: "read"})
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if res != "A:read" {
		t.Fatalf("res = %v, want A:read", res)
	}
	if got := s.Components(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("Components = %v", got)
	}
}

func TestDeployErrors(t *testing.T) {
	s := deployEcho(t, "A")
	if err := s.Deploy(Application{Name: "test"}); err == nil {
		t.Fatal("duplicate app deploy should fail")
	}
	if err := s.Deploy(Application{Name: "other", Components: []Descriptor{echoDesc("A", StatelessSession)}}); err == nil {
		t.Fatal("duplicate component deploy should fail")
	}
	if err := s.Deploy(Application{Name: "nofac", Components: []Descriptor{{Name: "X"}}}); err == nil {
		t.Fatal("deploy without factory should fail")
	}
}

func TestCallPathRecorded(t *testing.T) {
	s := deployEcho(t, "A")
	call := &Call{Op: "read"}
	if _, err := s.Invoke(bg(), "A", call); err != nil {
		t.Fatal(err)
	}
	if len(call.Path) != 1 || call.Path[0] != "A" {
		t.Fatalf("Path = %v, want [A]", call.Path)
	}
}

func TestMicrorebootLifecycle(t *testing.T) {
	s := deployEcho(t, "A", "B")
	rb, err := s.BeginMicroreboot("A")
	if err != nil {
		t.Fatalf("BeginMicroreboot: %v", err)
	}
	if len(rb.Members) != 1 || rb.Members[0] != "A" {
		t.Fatalf("Members = %v, want [A]", rb.Members)
	}
	if rb.Duration() <= 0 {
		t.Fatal("zero recovery duration")
	}

	// During the µRB, lookups hit the sentinel.
	_, err = s.Registry().Lookup("A")
	var ra *RetryAfterError
	if !errors.As(err, &ra) {
		t.Fatalf("Lookup during µRB err = %v, want RetryAfterError", err)
	}
	if !errors.Is(err, ErrRetryAfter) {
		t.Fatal("RetryAfterError must unwrap to ErrRetryAfter")
	}
	if ra.After <= 0 {
		t.Fatal("RetryAfter hint must be positive")
	}

	// B is unaffected.
	if _, err := s.Invoke(bg(), "B", &Call{Op: "read"}); err != nil {
		t.Fatalf("B invoke during A µRB: %v", err)
	}

	if err := s.CompleteMicroreboot(rb); err != nil {
		t.Fatalf("CompleteMicroreboot: %v", err)
	}
	if _, err := s.Invoke(bg(), "A", &Call{Op: "read"}); err != nil {
		t.Fatalf("Invoke after µRB: %v", err)
	}
	if err := s.CompleteMicroreboot(rb); err == nil {
		t.Fatal("double complete should fail")
	}
	if s.Reboots() != 1 {
		t.Fatalf("Reboots = %d, want 1", s.Reboots())
	}
}

// blockingComponent blocks its Serve until released or its context is
// cancelled, reporting what it observed.
type blockingComponent struct {
	started chan struct{}
	release chan struct{}
}

func (b blockingComponent) Init(*Env) error { return nil }
func (b blockingComponent) Serve(ctx context.Context, call *Call) (any, error) {
	b.started <- struct{}{}
	select {
	case <-b.release:
		return "released", nil
	case <-ctx.Done():
		return nil, CancelCause(ctx)
	}
}
func (b blockingComponent) Stop() error { return nil }

func deployBlocking(t *testing.T) (*Server, blockingComponent) {
	t.Helper()
	bc := blockingComponent{started: make(chan struct{}, 8), release: make(chan struct{})}
	s := NewServer()
	if err := s.Deploy(Application{Name: "t", Components: []Descriptor{{
		Name: "Block", Factory: func() Component { return bc },
	}}}); err != nil {
		t.Fatal(err)
	}
	return s, bc
}

// The acceptance test for the context redesign: a component blocked
// mid-Serve observes ctx.Done() the moment a microreboot kills its
// shepherd, with cause ErrKilled.
func TestMicrorebootCancelsBlockedCallContext(t *testing.T) {
	s, bc := deployBlocking(t)
	call := &Call{Op: "read"}
	done := make(chan error, 1)
	go func() {
		_, err := s.Invoke(bg(), "Block", call)
		done <- err
	}()
	<-bc.started // wait until the component is inside Serve

	rb, err := s.BeginMicroreboot("Block")
	if err != nil {
		t.Fatal(err)
	}
	if len(rb.KilledCalls) != 1 || rb.KilledCalls[0] != call {
		t.Fatalf("KilledCalls = %v, want the in-flight call", rb.KilledCalls)
	}
	if !call.Killed() {
		t.Fatal("call not marked killed")
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrKilled) {
			t.Fatalf("blocked invoke err = %v, want ErrKilled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked call did not observe context cancellation")
	}
	if err := s.CompleteMicroreboot(rb); err != nil {
		t.Fatal(err)
	}
}

// TTL enforcement is structural: the execution lease becomes a context
// deadline, so a stuck call unblocks with cause ErrLeaseExpired.
func TestLeaseExpiryCancelsBlockedCall(t *testing.T) {
	s, bc := deployBlocking(t)
	call := &Call{Op: "read", TTL: 30 * time.Millisecond}
	done := make(chan error, 1)
	go func() {
		_, err := s.Invoke(bg(), "Block", call)
		done <- err
	}()
	<-bc.started
	select {
	case err := <-done:
		if !errors.Is(err, ErrLeaseExpired) {
			t.Fatalf("err = %v, want ErrLeaseExpired", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("lease expiry did not cancel the call")
	}
}

func TestHangParkingWaitsForKill(t *testing.T) {
	s := deployEcho(t, "A")
	s.SetHangParking(true)
	s.Use(func(ctx context.Context, call *Call, next Handler) (any, error) {
		if call.Op == "wedge" {
			return nil, ErrHang
		}
		return next(ctx, call)
	})
	call := &Call{Op: "wedge"}
	done := make(chan error, 1)
	go func() {
		_, err := s.Invoke(bg(), "A", call)
		done <- err
	}()
	// The call must be parked, not returned.
	select {
	case err := <-done:
		t.Fatalf("hung call returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if s.ActiveCalls("A") != 1 {
		t.Fatalf("ActiveCalls = %d, want 1 parked call", s.ActiveCalls("A"))
	}
	if _, err := s.Microreboot("A"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrKilled) {
			t.Fatalf("parked call err = %v, want ErrKilled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked call not released by µRB")
	}
}

func TestHangParkingDisabledSurfacesErrHang(t *testing.T) {
	s := deployEcho(t, "A")
	s.Use(func(ctx context.Context, call *Call, next Handler) (any, error) {
		return nil, ErrHang
	})
	if _, err := s.Invoke(bg(), "A", &Call{Op: "read"}); !errors.Is(err, ErrHang) {
		t.Fatalf("err = %v, want synchronous ErrHang", err)
	}
}

func TestRecoveryGroups(t *testing.T) {
	s := NewServer()
	app := Application{Name: "g", Components: []Descriptor{
		echoDesc("User", Entity, "Item"),
		echoDesc("Item", Entity, "Bid"),
		echoDesc("Bid", Entity),
		echoDesc("Region", Entity, "User"),
		echoDesc("MakeBid", StatelessSession), // loose refs only
		echoDesc("Search", StatelessSession),
	}}
	if err := s.Deploy(app); err != nil {
		t.Fatal(err)
	}
	g, err := s.RecoveryGroup("Bid")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Bid", "Item", "Region", "User"}
	if len(g) != len(want) {
		t.Fatalf("group = %v, want %v", g, want)
	}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("group = %v, want %v", g, want)
		}
	}
	// Session components stay alone.
	g2, _ := s.RecoveryGroup("MakeBid")
	if len(g2) != 1 || g2[0] != "MakeBid" {
		t.Fatalf("MakeBid group = %v, want singleton", g2)
	}
	// µRB of one group member takes the whole group down.
	rb, err := s.BeginMicroreboot("User")
	if err != nil {
		t.Fatal(err)
	}
	if len(rb.Members) != 4 {
		t.Fatalf("reboot members = %v, want 4 entities", rb.Members)
	}
	for _, m := range rb.Members {
		if _, err := s.Registry().Lookup(m); !errors.Is(err, ErrRetryAfter) {
			t.Fatalf("member %s not sentinel-bound: %v", m, err)
		}
	}
	// Non-members unaffected.
	if _, err := s.Registry().Lookup("Search"); err != nil {
		t.Fatalf("Search lookup: %v", err)
	}
	if err := s.CompleteMicroreboot(rb); err != nil {
		t.Fatal(err)
	}
}

// Property: recovery-group membership is symmetric and idempotent —
// for random hard-ref graphs, a ∈ group(b) ⇔ b ∈ group(a), and
// group(group(a)[i]) == group(a).
func TestPropertyRecoveryGroupClosure(t *testing.T) {
	f := func(edges []uint8) bool {
		const n = 8
		s := NewServer()
		app := Application{Name: "p"}
		refs := make(map[int][]string)
		for _, e := range edges {
			a, b := int(e>>4)%n, int(e&0xF)%n
			if a != b {
				refs[a] = append(refs[a], fmt.Sprintf("C%d", b))
			}
		}
		for i := 0; i < n; i++ {
			app.Components = append(app.Components, echoDesc(fmt.Sprintf("C%d", i), Entity, refs[i]...))
		}
		if err := s.Deploy(app); err != nil {
			return false
		}
		groups := map[string][]string{}
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("C%d", i)
			g, err := s.RecoveryGroup(name)
			if err != nil {
				return false
			}
			groups[name] = g
		}
		for name, g := range groups {
			inOwn := false
			for _, m := range g {
				if m == name {
					inOwn = true
				}
				// symmetry: every member's group equals this group
				mg := groups[m]
				if len(mg) != len(g) {
					return false
				}
				for k := range g {
					if mg[k] != g[k] {
						return false
					}
				}
			}
			if !inOwn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(41))}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryCorruptionAndHealing(t *testing.T) {
	s := deployEcho(t, "A", "B")
	for _, mode := range []string{"null", "invalid"} {
		if err := s.Registry().Corrupt("A", mode); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Invoke(bg(), "A", &Call{Op: "read"}); !errors.Is(err, ErrComponentFault) {
			t.Fatalf("mode %s: err = %v, want ErrComponentFault", mode, err)
		}
		// A µRB rebinds the name, healing the corruption.
		if _, err := s.Microreboot("A"); err != nil {
			t.Fatal(err)
		}
		if !s.Registry().Healthy("A") {
			t.Fatalf("mode %s: binding not healed by µRB", mode)
		}
	}
	// "wrong" resolves to another component's container.
	if err := s.Registry().Corrupt("A", "wrong"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Invoke(bg(), "A", &Call{Op: "read"})
	if err != nil {
		t.Fatalf("wrong-mode invoke should succeed: %v", err)
	}
	if res != "B:read" {
		t.Fatalf("wrong-mode result = %v, want routed to B", res)
	}
	if _, err := s.Microreboot("A"); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Invoke(bg(), "A", &Call{Op: "read"})
	if res != "A:read" {
		t.Fatal("µRB did not heal wrong binding")
	}
	if err := s.Registry().Corrupt("Ghost", "null"); !errors.Is(err, ErrNotBound) {
		t.Fatalf("corrupt unbound err = %v", err)
	}
	if err := s.Registry().Corrupt("A", "weird"); err == nil {
		t.Fatal("unknown mode should error")
	}
}

func TestTxMethodMapCorruptionAndHealing(t *testing.T) {
	s := deployEcho(t, "A")
	c, _ := s.Container("A")
	for _, mode := range []string{"null", "invalid"} {
		if err := c.CorruptTxMethodMap(mode); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Invoke(bg(), "A", &Call{Op: "write"}); !errors.Is(err, ErrComponentFault) {
			t.Fatalf("mode %s: Invoke err = %v, want ErrComponentFault", mode, err)
		}
		if _, err := s.Microreboot("A"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Invoke(bg(), "A", &Call{Op: "write"}); err != nil {
			t.Fatalf("mode %s: Invoke after µRB: %v", mode, err)
		}
	}
	// "wrong" swaps attributes silently — calls succeed but run with the
	// wrong transactional behavior.
	if err := c.CorruptTxMethodMap("wrong"); err != nil {
		t.Fatal(err)
	}
	attr, err := c.TxAttrFor("write")
	if err != nil {
		t.Fatal(err)
	}
	if attr != TxNever {
		t.Fatalf("wrong-mode attr = %v, want swapped TxNever", attr)
	}
	if err := c.CorruptTxMethodMap("nope"); err == nil {
		t.Fatal("unknown mode should error")
	}
}

func TestMicrorebootAbortsTransactions(t *testing.T) {
	d := db.New(nil)
	if err := d.CreateTable(db.Schema{Name: "t", Columns: []db.Column{{Name: "v", Type: db.Int}}}); err != nil {
		t.Fatal(err)
	}
	s := deployEcho(t, "A", "B")
	txA, _ := d.Begin()
	txB, _ := d.Begin()
	s.RegisterTx("A", txA)
	s.RegisterTx("B", txB)
	rb, err := s.Microreboot("A")
	if err != nil {
		t.Fatal(err)
	}
	if rb.AbortedTxs != 1 {
		t.Fatalf("AbortedTxs = %d, want 1", rb.AbortedTxs)
	}
	if !txA.Done() {
		t.Fatal("A's transaction not aborted by µRB")
	}
	if txB.Done() {
		t.Fatal("B's transaction wrongly aborted")
	}
	// Released transactions are not aborted.
	txA2, _ := d.Begin()
	s.RegisterTx("A", txA2)
	s.ReleaseTx("A", txA2)
	_ = txA2.Commit()
	rb2, _ := s.Microreboot("A")
	if rb2.AbortedTxs != 0 {
		t.Fatalf("AbortedTxs = %d, want 0 after release", rb2.AbortedTxs)
	}
	_ = txB.Abort()
}

func TestMicrorebootReleasesLeakedMemory(t *testing.T) {
	s := deployEcho(t, "A")
	c, _ := s.Container("A")
	c.Leak(1 << 20)
	c.Leak(1 << 20)
	if c.LeakedBytes() != 2<<20 {
		t.Fatalf("LeakedBytes = %d", c.LeakedBytes())
	}
	rb, err := s.Microreboot("A")
	if err != nil {
		t.Fatal(err)
	}
	if rb.FreedBytes != 2<<20 {
		t.Fatalf("FreedBytes = %d, want 2MiB", rb.FreedBytes)
	}
	c, _ = s.Container("A")
	if c.LeakedBytes() != 0 {
		t.Fatal("leak survived µRB")
	}
}

func TestFactoryPreservedAcrossMicroreboot(t *testing.T) {
	// State captured in the factory closure (the classloader/static-var
	// analog) must survive a µRB; instance state must not.
	staticCounter := 0
	s := NewServer()
	err := s.Deploy(Application{Name: "t", Components: []Descriptor{{
		Name: "C",
		Factory: func() Component {
			staticCounter++
			return &echoComponent{name: "C"}
		},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	afterDeploy := staticCounter
	if afterDeploy == 0 {
		t.Fatal("factory never invoked at deploy")
	}
	if _, err := s.Microreboot("C"); err != nil {
		t.Fatal(err)
	}
	if staticCounter <= afterDeploy {
		t.Fatal("factory not reused for reinstantiation")
	}
}

func TestRebootObservers(t *testing.T) {
	s := deployEcho(t, "A", "B")
	var events []*Reboot
	s.OnReboot(func(r *Reboot) { events = append(events, r) })
	if _, err := s.Microreboot("A"); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Members[0] != "A" || events[0].Scope != ScopeComponent {
		t.Fatalf("events = %+v", events)
	}
}

func TestScopedReboots(t *testing.T) {
	s := NewServer()
	err := s.Deploy(Application{Name: "app", Components: []Descriptor{
		echoDesc("WAR", Web),
		echoDesc("E1", StatelessSession),
		echoDesc("E2", Entity),
	}})
	if err != nil {
		t.Fatal(err)
	}
	// WAR scope picks only web components.
	rb, err := s.BeginScopedReboot(ScopeWAR, "app")
	if err != nil {
		t.Fatal(err)
	}
	if len(rb.Members) != 1 || rb.Members[0] != "WAR" {
		t.Fatalf("WAR reboot members = %v", rb.Members)
	}
	if err := s.CompleteMicroreboot(rb); err != nil {
		t.Fatal(err)
	}
	// App scope covers everything in the app.
	rb, err = s.BeginScopedReboot(ScopeApp, "app")
	if err != nil {
		t.Fatal(err)
	}
	if len(rb.Members) != 3 {
		t.Fatalf("app reboot members = %v", rb.Members)
	}
	// App restart is optimized: cheaper than the sum of its parts but
	// more expensive than any single EJB.
	var sum time.Duration
	m := uniformCost{}
	for _, n := range rb.Members {
		sum += m.CrashTime(n) + m.ReinitTime(n)
	}
	if rb.Duration() <= 0 {
		t.Fatal("app restart has zero duration")
	}
	if err := s.CompleteMicroreboot(rb); err != nil {
		t.Fatal(err)
	}
	// Process scope covers all components on the server.
	rb, err = s.BeginScopedReboot(ScopeProcess, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rb.Members) != 3 {
		t.Fatalf("process reboot members = %v", rb.Members)
	}
	pc, pr := m.ScopeTime(ScopeProcess)
	if rb.Crash != pc || rb.Reinit != pr {
		t.Fatalf("process durations = %v/%v, want %v/%v", rb.Crash, rb.Reinit, pc, pr)
	}
	if err := s.CompleteMicroreboot(rb); err != nil {
		t.Fatal(err)
	}
	if _, err := s.BeginScopedReboot(ScopeComponent, "app"); err == nil {
		t.Fatal("component scope through BeginScopedReboot should error")
	}
	if _, err := s.BeginScopedReboot(ScopeWAR, "ghost"); err == nil {
		t.Fatal("unknown app should error")
	}
}

func TestWARCostApplied(t *testing.T) {
	s := NewServer()
	if err := s.Deploy(Application{Name: "a", Components: []Descriptor{echoDesc("W", Web)}}); err != nil {
		t.Fatal(err)
	}
	rb, err := s.BeginMicroreboot("W")
	if err != nil {
		t.Fatal(err)
	}
	wc, wr := uniformCost{}.ScopeTime(ScopeWAR)
	if rb.Crash < wc || rb.Reinit < wr {
		t.Fatalf("WAR µRB durations %v/%v below scope cost %v/%v", rb.Crash, rb.Reinit, wc, wr)
	}
	_ = s.CompleteMicroreboot(rb)
}

func TestServeStoppedAndRebooting(t *testing.T) {
	s := deployEcho(t, "A")
	c, _ := s.Container("A")
	rb, _ := s.BeginMicroreboot("A")
	if _, err := s.Invoke(bg(), "A", &Call{Op: "read"}); !errors.Is(err, ErrRetryAfter) {
		t.Fatalf("Invoke during µRB err = %v, want ErrRetryAfter", err)
	}
	// Direct container dispatch during the reboot also refuses.
	if _, err := c.Serve(bg(), &Call{Op: "read"}); !errors.Is(err, ErrRetryAfter) {
		t.Fatalf("Serve during µRB err = %v, want ErrRetryAfter", err)
	}
	_ = s.CompleteMicroreboot(rb)
	if err := c.stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Serve(bg(), &Call{Op: "read"}); !errors.Is(err, ErrStopped) {
		t.Fatalf("Serve stopped err = %v, want ErrStopped", err)
	}
}

func TestInstanceReplacement(t *testing.T) {
	s := deployEcho(t, "A")
	c, _ := s.Container("A")
	if err := c.ReplaceInstance(0); err != nil {
		t.Fatal(err)
	}
	if err := c.ReplaceInstance(99); err == nil {
		t.Fatal("out-of-range replacement should error")
	}
}

// TestInterceptorPipeline verifies ordering, short-circuiting, and
// outcome observation of interceptors registered with Use.
func TestInterceptorPipeline(t *testing.T) {
	s := deployEcho(t, "A")
	var order []string
	s.Use(func(ctx context.Context, call *Call, next Handler) (any, error) {
		order = append(order, "outer-pre")
		res, err := next(ctx, call)
		order = append(order, "outer-post")
		return res, err
	})
	boom := errors.New("boom")
	s.Use(func(ctx context.Context, call *Call, next Handler) (any, error) {
		order = append(order, "inner")
		if call.Op == "write" {
			return nil, boom // short-circuit: the component never runs
		}
		return next(ctx, call)
	})
	if _, err := s.Invoke(bg(), "A", &Call{Op: "write"}); !errors.Is(err, boom) {
		t.Fatalf("short-circuited op err = %v, want boom", err)
	}
	res, err := s.Invoke(bg(), "A", &Call{Op: "read"})
	if err != nil || res != "A:read" {
		t.Fatalf("passthrough = %v/%v", res, err)
	}
	want := []string{"outer-pre", "inner", "outer-post", "outer-pre", "inner", "outer-post"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// Interceptors observe every hop: the path-recording built-in runs before
// user interceptors, so Call.Component and Path are already populated.
func TestInterceptorSeesComponentAndPath(t *testing.T) {
	s := deployEcho(t, "A")
	var seen []string
	s.Use(func(ctx context.Context, call *Call, next Handler) (any, error) {
		seen = append(seen, call.Component)
		if len(call.Path) == 0 || call.Path[len(call.Path)-1] != call.Component {
			t.Errorf("Path %v does not end with %s", call.Path, call.Component)
		}
		return next(ctx, call)
	})
	if _, err := s.Invoke(bg(), "A", &Call{Op: "read"}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0] != "A" {
		t.Fatalf("seen = %v", seen)
	}
}

func TestLeaseTable(t *testing.T) {
	var now time.Duration
	lt := NewLeaseTable(func() time.Duration { return now })
	released := map[string]int{}
	id1 := lt.Acquire("A", time.Minute, func() { released["r1"]++ })
	lt.Acquire("A", time.Hour, func() { released["r2"]++ })
	lt.Acquire("B", time.Minute, func() { released["r3"]++ })
	if lt.Live("") != 3 || lt.Live("A") != 2 {
		t.Fatalf("Live = %d/%d", lt.Live(""), lt.Live("A"))
	}
	// Renewal keeps r1 alive past its original expiry.
	if !lt.Renew(id1, 2*time.Hour) {
		t.Fatal("Renew failed")
	}
	now = 30 * time.Minute
	if n := lt.Reap(); n != 1 {
		t.Fatalf("Reap = %d, want 1 (r3)", n)
	}
	if released["r3"] != 1 || released["r1"] != 0 {
		t.Fatalf("released = %v", released)
	}
	// µRB force-releases everything A holds.
	if n := lt.ForceReleaseHolder("A"); n != 2 {
		t.Fatalf("ForceReleaseHolder = %d, want 2", n)
	}
	if released["r1"] != 1 || released["r2"] != 1 {
		t.Fatalf("released = %v", released)
	}
	if lt.Live("") != 0 {
		t.Fatalf("Live = %d, want 0", lt.Live(""))
	}
	if lt.Release(id1) {
		t.Fatal("Release of dead lease should report false")
	}
	if lt.Renew(id1, time.Hour) {
		t.Fatal("Renew of dead lease should report false")
	}
}

// Property: after any sequence of µRBs, every container is running, every
// binding healthy, and calls succeed — reintegration is always complete.
func TestPropertyMicrorebootAlwaysReintegrates(t *testing.T) {
	names := []string{"A", "B", "C", "D"}
	f := func(picks []uint8) bool {
		s := deployEcho(t, names...)
		for _, p := range picks {
			n := names[int(p)%len(names)]
			if _, err := s.Microreboot(n); err != nil {
				return false
			}
		}
		for _, n := range names {
			c, err := s.Registry().Lookup(n)
			if err != nil {
				return false
			}
			if c.State() != StateRunning {
				return false
			}
			if _, err := s.Invoke(bg(), n, &Call{Op: "read"}); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(51))}); err != nil {
		t.Fatal(err)
	}
}

func TestCallHelpers(t *testing.T) {
	c := &Call{Op: "x", Args: ArgMap{"id": int64(7), "name": "n"}}
	if v, ok := Arg[int64](c, "id"); !ok || v != 7 {
		t.Fatalf("Arg[int64] = %v/%v", v, ok)
	}
	if _, ok := Arg[string](c, "id"); ok {
		t.Fatal("mistyped Arg should report !ok")
	}
	if _, ok := Arg[int64](c, "missing"); ok {
		t.Fatal("missing Arg should report !ok")
	}
	if _, ok := Arg[int64](&Call{}, "id"); ok {
		t.Fatal("nil Args should report !ok")
	}
}

func TestEnvResource(t *testing.T) {
	s := NewServer(WithResource("db", 42))
	var got int
	ok := false
	err := s.Deploy(Application{Name: "a", Components: []Descriptor{{
		Name: "C",
		Factory: func() Component {
			return initFunc(func(env *Env) error {
				got, ok = Resource[int](env, "db")
				if env.ComponentName() != "C" {
					t.Errorf("ComponentName = %s", env.ComponentName())
				}
				return nil
			})
		},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if !ok || got != 42 {
		t.Fatalf("Resource = %v/%v", got, ok)
	}
}

type initFunc func(*Env) error

func (f initFunc) Init(e *Env) error                         { return f(e) }
func (f initFunc) Serve(context.Context, *Call) (any, error) { return nil, nil }
func (f initFunc) Stop() error                               { return nil }

func TestStringers(t *testing.T) {
	for _, k := range []Kind{StatelessSession, Entity, Web, Kind(9)} {
		if k.String() == "" {
			t.Fatal("empty Kind string")
		}
	}
	for _, sc := range []Scope{ScopeComponent, ScopeWAR, ScopeApp, ScopeProcess, ScopeNode, Scope(9)} {
		if sc.String() == "" {
			t.Fatal("empty Scope string")
		}
	}
	for _, st := range []ContainerState{StateRunning, StateRebooting, StateStopped, ContainerState(9)} {
		if st.String() == "" {
			t.Fatal("empty ContainerState string")
		}
	}
}
