package core

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// LeaseTable implements the lease-based resource accounting of the
// crash-only design: "Resources in a frequently-microrebooting system
// should be leased, to improve the reliability of cleaning up after µRBs."
// Holders register resources with a TTL and a release function; expired
// leases are reaped, and a microreboot can force-release every lease held
// by a component.
type LeaseTable struct {
	mu     sync.Mutex
	now    func() time.Duration
	nextID uint64
	leases map[uint64]*lease
	// byHolder indexes leases by the owning component.
	byHolder map[string]map[uint64]struct{}
}

type lease struct {
	id      uint64
	holder  string
	expires time.Duration
	release func()
}

// NewLeaseTable builds a lease table driven by the given time source.
func NewLeaseTable(now func() time.Duration) *LeaseTable {
	if now == nil {
		now = func() time.Duration { return 0 }
	}
	return &LeaseTable{
		now:      now,
		leases:   map[uint64]*lease{},
		byHolder: map[string]map[uint64]struct{}{},
	}
}

// Acquire registers a leased resource held by component holder. release
// runs exactly once, when the lease expires, is renewed-then-expires, is
// explicitly released, or is force-released by a µRB. It returns the
// lease id.
func (t *LeaseTable) Acquire(holder string, ttl time.Duration, release func()) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.nextID
	t.nextID++
	t.leases[id] = &lease{id: id, holder: holder, expires: t.now() + ttl, release: release}
	set := t.byHolder[holder]
	if set == nil {
		set = map[uint64]struct{}{}
		t.byHolder[holder] = set
	}
	set[id] = struct{}{}
	return id
}

// Renew extends a lease's TTL from now. It reports whether the lease was
// still live.
func (t *LeaseTable) Renew(id uint64, ttl time.Duration) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.leases[id]
	if !ok {
		return false
	}
	l.expires = t.now() + ttl
	return true
}

// Release ends a lease explicitly, running its release function.
func (t *LeaseTable) Release(id uint64) bool {
	t.mu.Lock()
	l, ok := t.leases[id]
	if ok {
		t.removeLocked(l)
	}
	t.mu.Unlock()
	if ok && l.release != nil {
		l.release()
	}
	return ok
}

func (t *LeaseTable) removeLocked(l *lease) {
	delete(t.leases, l.id)
	if set := t.byHolder[l.holder]; set != nil {
		delete(set, l.id)
		if len(set) == 0 {
			delete(t.byHolder, l.holder)
		}
	}
}

// Reap releases every expired lease and returns how many were collected.
// A rejuvenation or maintenance loop calls this periodically.
func (t *LeaseTable) Reap() int {
	t.mu.Lock()
	now := t.now()
	var victims []*lease
	for _, l := range t.leases {
		if l.expires < now {
			victims = append(victims, l)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
	for _, l := range victims {
		t.removeLocked(l)
	}
	t.mu.Unlock()
	for _, l := range victims {
		if l.release != nil {
			l.release()
		}
	}
	return len(victims)
}

// ForceReleaseHolder releases every lease held by a component, regardless
// of expiry; the microreboot machinery calls this so that a rebooted
// component cannot leak resources acquired through the platform.
func (t *LeaseTable) ForceReleaseHolder(holder string) int {
	t.mu.Lock()
	var victims []*lease
	for id := range t.byHolder[holder] {
		victims = append(victims, t.leases[id])
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
	for _, l := range victims {
		t.removeLocked(l)
	}
	t.mu.Unlock()
	for _, l := range victims {
		if l.release != nil {
			l.release()
		}
	}
	return len(victims)
}

// Live reports the number of live leases, and how many are held by holder
// when holder is non-empty.
func (t *LeaseTable) Live(holder string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if holder == "" {
		return len(t.leases)
	}
	return len(t.byHolder[holder])
}

// String summarizes the table for diagnostics.
func (t *LeaseTable) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return fmt.Sprintf("leases{live=%d holders=%d}", len(t.leases), len(t.byHolder))
}
