package core

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// bindingState describes what a name currently resolves to.
type bindingState int

const (
	bindOK bindingState = iota
	// bindSentinel marks a component mid-microreboot; lookups yield
	// RetryAfterError instead of a container (Section 6.2: "we bind the
	// component's name to a sentinel during µRB").
	bindSentinel
	// bindNull / bindInvalid / bindWrong model corrupted naming entries
	// (Table 2: "corrupt JNDI entries", set null / invalid / wrong).
	bindNull
	bindInvalid
	bindWrong
)

type binding struct {
	state     bindingState
	container *Container
	// retryAfter is the estimated recovery time advertised while the
	// sentinel is bound.
	retryAfter time.Duration
	// wrongTarget is the container a "wrong" corruption points at.
	wrongTarget *Container
}

// Registry is the naming service (JNDI analog): it maps component names to
// containers. References obtained from it may be cached by callers, but in
// a crash-only application every inter-component call re-resolves through
// the registry so that sentinels and rebinds take effect immediately.
type Registry struct {
	mu       sync.Mutex
	bindings map[string]*binding
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{bindings: map[string]*binding{}}
}

// bind installs or replaces a healthy binding.
func (r *Registry) bind(name string, c *Container) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bindings[name] = &binding{state: bindOK, container: c}
}

// unbind removes a name entirely.
func (r *Registry) unbind(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.bindings, name)
}

// bindSentinelFor replaces the binding with a sentinel advertising the
// estimated recovery time.
func (r *Registry) bindSentinelFor(name string, retryAfter time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.bindings[name]
	if !ok {
		r.bindings[name] = &binding{state: bindSentinel, retryAfter: retryAfter}
		return
	}
	b.state = bindSentinel
	b.retryAfter = retryAfter
}

// Lookup resolves a name to its container. While a sentinel is bound it
// returns a *RetryAfterError; corrupted entries produce the corresponding
// failure mode.
func (r *Registry) Lookup(name string) (*Container, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.bindings[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotBound, name)
	}
	switch b.state {
	case bindOK:
		return b.container, nil
	case bindSentinel:
		return nil, &RetryAfterError{Component: name, After: b.retryAfter}
	case bindNull:
		return nil, fmt.Errorf("%w: naming entry for %s is null", ErrComponentFault, name)
	case bindInvalid:
		return nil, fmt.Errorf("%w: naming entry for %s is invalid", ErrComponentFault, name)
	case bindWrong:
		// A wrong entry resolves to some other component's container:
		// type-checks, but the call will fail or misbehave.
		if b.wrongTarget != nil {
			return b.wrongTarget, nil
		}
		return nil, fmt.Errorf("%w: naming entry for %s dangles", ErrComponentFault, name)
	default:
		return nil, fmt.Errorf("%w: naming entry for %s unreadable", ErrComponentFault, name)
	}
}

// Corrupt damages the naming entry for name (Table 2 "corrupt JNDI
// entries"). mode is "null", "invalid" or "wrong". The corruption persists
// until the component's next µRB rebinds the name.
func (r *Registry) Corrupt(name, mode string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.bindings[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotBound, name)
	}
	switch mode {
	case "null":
		b.state = bindNull
	case "invalid":
		b.state = bindInvalid
	case "wrong":
		b.state = bindWrong
		// Point at an arbitrary other container, deterministically.
		names := make([]string, 0, len(r.bindings))
		for n := range r.bindings {
			if n != name {
				names = append(names, n)
			}
		}
		sort.Strings(names)
		for _, n := range names {
			if other := r.bindings[n]; other.state == bindOK {
				b.wrongTarget = other.container
				break
			}
		}
	default:
		return fmt.Errorf("core: unknown corruption mode %q", mode)
	}
	return nil
}

// Names returns all bound names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.bindings))
	for n := range r.bindings {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Healthy reports whether the binding for name is present and undamaged.
func (r *Registry) Healthy(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.bindings[name]
	return ok && b.state == bindOK
}
