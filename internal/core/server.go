package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store/db"
)

// Scope identifies how much of the system a reboot covers; the recursive
// recovery policy walks these levels from cheapest to most disruptive.
type Scope int

// Reboot scopes, in ascending order of disruption.
const (
	ScopeComponent Scope = iota // one recovery group of EJBs
	ScopeWAR                    // the web tier component
	ScopeApp                    // the entire application
	ScopeProcess                // the JVM/JBoss process
	ScopeNode                   // operating-system reboot
)

func (s Scope) String() string {
	switch s {
	case ScopeComponent:
		return "EJB"
	case ScopeWAR:
		return "WAR"
	case ScopeApp:
		return "application"
	case ScopeProcess:
		return "process"
	case ScopeNode:
		return "node"
	default:
		return fmt.Sprintf("Scope(%d)", int(s))
	}
}

// CostModel supplies the modeled duration of reboot phases. The eBid
// implementation encodes Table 3 of the paper; tests use synthetic models.
type CostModel interface {
	// CrashTime is how long forcibly shutting the target down takes.
	CrashTime(component string) time.Duration
	// ReinitTime is how long redeploying and reinitializing takes.
	ReinitTime(component string) time.Duration
	// ScopeTime returns (crash, reinit) for whole-WAR, whole-app,
	// process and node reboots, which are NOT the sum of their parts
	// (restarting the app is optimized to avoid restarting each EJB).
	ScopeTime(s Scope) (crash, reinit time.Duration)
}

// uniformCost is the fallback cost model: paper-magnitude constants.
type uniformCost struct{}

func (uniformCost) CrashTime(string) time.Duration  { return 10 * time.Millisecond }
func (uniformCost) ReinitTime(string) time.Duration { return 490 * time.Millisecond }
func (uniformCost) ScopeTime(s Scope) (time.Duration, time.Duration) {
	switch s {
	case ScopeWAR:
		return 71 * time.Millisecond, 957 * time.Millisecond
	case ScopeApp:
		return 33 * time.Millisecond, 7666 * time.Millisecond
	case ScopeProcess:
		return 0, 19083 * time.Millisecond
	case ScopeNode:
		return 2 * time.Second, 58 * time.Second
	default:
		return 10 * time.Millisecond, 490 * time.Millisecond
	}
}

// Reboot describes one in-progress or completed (micro)reboot: the group
// of components taken down, the modeled durations of the two phases, and
// what the crash released.
type Reboot struct {
	Scope   Scope
	Members []string
	// Crash and Reinit are the modeled durations of the two phases;
	// Duration() is their sum (the Table 3 "µRB time").
	Crash  time.Duration
	Reinit time.Duration
	// FreedBytes is the leaked memory released by the crash phase.
	FreedBytes int64
	// KilledCalls are the in-flight requests (root calls) whose
	// shepherds were killed, deduplicated across hops and members: one
	// entry per killed end-user request.
	KilledCalls []*Call
	// AbortedTxs is how many open transactions were rolled back.
	AbortedTxs int

	completed bool
}

// Duration returns the total modeled recovery time.
func (r *Reboot) Duration() time.Duration { return r.Crash + r.Reinit }

// RebootObserver is notified after a reboot completes. The fault injector
// subscribes to clear faults cured by the covering scope; metrics
// subscribe to count recovery events.
type RebootObserver func(r *Reboot)

// Handler is the tail of an interceptor chain: it receives a call (and
// its shepherd context) and produces the invocation result.
type Handler func(ctx context.Context, call *Call) (any, error)

// Interceptor wraps invocation handling. Interceptors registered with
// Server.Use run on every hop — the initial web-tier dispatch and every
// inter-component call — in registration order (the first registered is
// outermost). An interceptor may short-circuit by not calling next, and
// observes the outcome by calling it. Metrics accounting, fault
// injection, and call-path diagnosis all plug in here rather than inside
// containers.
type Interceptor func(ctx context.Context, call *Call, next Handler) (any, error)

// Server is the application server: it deploys applications, owns the
// naming registry and containers, runs the invocation pipeline, and
// implements the microreboot method. A Server models one
// application-server process (one node of the paper's cluster runs one
// Server).
type Server struct {
	mu         sync.Mutex
	registry   *Registry
	containers map[string]*Container
	apps       map[string][]string // app name → component names
	groups     map[string][]string // component → its recovery group (sorted)
	resources  map[string]any
	now        func() time.Duration
	costs      CostModel
	observers  []RebootObserver

	// interceptors is the user-registered middleware; chain caches the
	// composed pipeline (invalidated by Use, rebuilt lock-free on the
	// invocation hot path).
	interceptors []Interceptor
	chain        atomic.Pointer[Handler]

	// active tracks the in-flight calls currently shepherded through
	// each component, so a µRB can kill them. Maintained by Invoke —
	// the platform, not the container, owns shepherd bookkeeping.
	// Sharded per component (component name → *callSet) so concurrent
	// hops into different components do not contend on one lock.
	active sync.Map

	// hangPark makes Invoke park a call that reports ErrHang until its
	// context is cancelled (kill or lease expiry). Real-time servers
	// enable it; simulation drivers model the parking in virtual time
	// and keep it off.
	hangPark atomic.Bool

	// txs tracks open database transactions per component so a µRB can
	// abort exactly the transactions its components were driving. The
	// value is the transaction id at registration time: Tx objects are
	// pooled, so aborts go through the generation-checked AbortIf.
	txs map[string]map[*db.Tx]uint64

	// delayBeforeCrash is the optional grace delay between sentinel
	// rebind and the crash phase (Section 6.2's 200 ms experiment).
	delayBeforeCrash time.Duration

	reboots uint64
}

// Option configures a Server.
type Option func(*Server)

// WithClock sets the time source (virtual time in simulations).
func WithClock(now func() time.Duration) Option {
	return func(s *Server) { s.now = now }
}

// WithCostModel sets the reboot cost model.
func WithCostModel(m CostModel) Option {
	return func(s *Server) { s.costs = m }
}

// WithResource registers an application-wide resource (database handle,
// session store, ...) made available to components through Env.
func WithResource(key string, v any) Option {
	return func(s *Server) { s.resources[key] = v }
}

// WithInterceptors registers invocation interceptors at construction
// (equivalent to calling Use immediately).
func WithInterceptors(ins ...Interceptor) Option {
	return func(s *Server) { s.interceptors = append(s.interceptors, ins...) }
}

// WithHangParking enables context-aware parking of hung calls; see
// Server.SetHangParking.
func WithHangParking() Option {
	return func(s *Server) { s.hangPark.Store(true) }
}

// NewServer builds an empty application server.
func NewServer(opts ...Option) *Server {
	s := &Server{
		registry:   NewRegistry(),
		containers: map[string]*Container{},
		apps:       map[string][]string{},
		groups:     map[string][]string{},
		resources:  map[string]any{},
		now:        func() time.Duration { return 0 },
		costs:      uniformCost{},
		txs:        map[string]map[*db.Tx]uint64{},
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Registry exposes the naming service.
func (s *Server) Registry() *Registry { return s.registry }

// Now returns the server's current (virtual) time.
func (s *Server) Now() time.Duration { return s.now() }

// SetDelayBeforeCrash configures the grace period between binding the
// sentinel and crashing the component, letting in-flight requests drain
// (the paper measured a 200 ms delay; see Table 6).
func (s *Server) SetDelayBeforeCrash(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.delayBeforeCrash = d
}

// DelayBeforeCrash returns the configured grace period.
func (s *Server) DelayBeforeCrash() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.delayBeforeCrash
}

// SetHangParking controls what Invoke does with a call that reports
// ErrHang (an injected deadlock or infinite loop). When enabled — the
// right mode for servers driven by real goroutines, e.g. the HTTP front
// end — the call parks on its context and returns only when a microreboot
// kills it or its execution lease expires, faithfully wedging the
// shepherd. When disabled (default), ErrHang is surfaced synchronously so
// discrete-event drivers can model the parking in virtual time.
func (s *Server) SetHangParking(on bool) {
	s.hangPark.Store(on)
}

// OnReboot registers an observer called after each completed reboot.
func (s *Server) OnReboot(o RebootObserver) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observers = append(s.observers, o)
}

// Use appends interceptors to the server's invocation pipeline. They run
// on every hop in registration order (first registered is outermost),
// inside the built-in lease check and call-path recording.
func (s *Server) Use(ins ...Interceptor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.interceptors = append(s.interceptors, ins...)
	s.chain.Store(nil) // force rebuild
}

// handler returns the composed invocation pipeline, rebuilding it if the
// interceptor set changed. The cached chain is read lock-free so the
// invocation hot path does not contend on the server mutex.
func (s *Server) handler() Handler {
	if h := s.chain.Load(); h != nil {
		return *h
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if h := s.chain.Load(); h != nil {
		return *h
	}
	var h Handler = s.dispatch
	all := append([]Interceptor{checkLease, recordPath}, s.interceptors...)
	for i := len(all) - 1; i >= 0; i-- {
		in, next := all[i], h
		h = func(ctx context.Context, call *Call) (any, error) {
			return in(ctx, call, next)
		}
	}
	s.chain.Store(&h)
	return h
}

// checkLease is the built-in outermost interceptor: a request whose
// shepherd is already dead (killed or lease-expired) makes no further
// hops — the execution-lease check of the crash-only design.
func checkLease(ctx context.Context, call *Call, next Handler) (any, error) {
	if ctx.Err() != nil {
		return nil, CancelCause(ctx)
	}
	return next(ctx, call)
}

// recordPath is the built-in call-path interceptor: it records the
// component traversal that failure diagnosis and µRB kill-matching use.
func recordPath(ctx context.Context, call *Call, next Handler) (any, error) {
	call.Via(call.Component)
	return next(ctx, call)
}

// dispatch is the terminal handler: resolve the component through the
// naming service (sentinels and corrupted entries surface here) and hand
// the call to its container.
func (s *Server) dispatch(ctx context.Context, call *Call) (any, error) {
	c, err := s.registry.Lookup(call.Component)
	if err != nil {
		return nil, err
	}
	return c.Serve(ctx, call)
}

// Invoke runs one call against the named component through the
// interceptor pipeline. For the root hop of a request it binds the
// shepherd context: the call's TTL becomes a deadline (cause
// ErrLeaseExpired) and a microreboot kill becomes a cancellation (cause
// ErrKilled). Sub-invocations made by components pass the context their
// Serve received, so cancellation reaches every hop of the request.
func (s *Server) Invoke(ctx context.Context, component string, call *Call) (any, error) {
	if call == nil {
		return nil, errors.New("core: nil call")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	call.Component = component
	ctx, root := call.bindContext(ctx)
	if root != nil {
		defer root.unbind()
	}

	s.trackCall(component, call)
	defer s.untrackCall(component, call)

	res, err := s.handler()(ctx, call)
	if err != nil && errors.Is(err, ErrHang) && s.hangParking() {
		// Context-aware parking: the shepherd stays wedged until a µRB
		// kills it or the execution lease expires.
		<-ctx.Done()
		return nil, CancelCause(ctx)
	}
	return res, err
}

func (s *Server) hangParking() bool { return s.hangPark.Load() }

// callSet is one component's shard of the active-call table: an
// intrusive doubly-linked list threaded through the calls themselves, so
// track/untrack are pointer swaps — no map hashing, no allocation.
type callSet struct {
	mu   sync.Mutex
	head *Call
	n    int
}

func (s *Server) callShard(component string) *callSet {
	if v, ok := s.active.Load(component); ok {
		return v.(*callSet)
	}
	v, _ := s.active.LoadOrStore(component, &callSet{})
	return v.(*callSet)
}

// trackCall registers an in-flight call as shepherded through component.
func (s *Server) trackCall(component string, call *Call) {
	cs := s.callShard(component)
	cs.mu.Lock()
	call.trackNext = cs.head
	if cs.head != nil {
		cs.head.trackPrev = call
	}
	cs.head = call
	cs.n++
	cs.mu.Unlock()
}

func (s *Server) untrackCall(component string, call *Call) {
	cs := s.callShard(component)
	cs.mu.Lock()
	if call.trackPrev != nil {
		call.trackPrev.trackNext = call.trackNext
	} else {
		cs.head = call.trackNext
	}
	if call.trackNext != nil {
		call.trackNext.trackPrev = call.trackPrev
	}
	call.trackPrev, call.trackNext = nil, nil
	cs.n--
	cs.mu.Unlock()
}

// ActiveCalls reports how many calls are currently shepherded through the
// named component.
func (s *Server) ActiveCalls(component string) int {
	cs := s.callShard(component)
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.n
}

// killActive kills every call currently shepherded through component and
// returns them. The kill cancels each request's root context, so blocked
// or parked calls observe ctx.Done() immediately. Killing happens under
// the shard lock: untrackCall serializes against it, so once Invoke has
// untracked a call, no kill can reach it anymore — the invariant that
// makes Call.Release's pooling safe.
func (s *Server) killActive(component string) []*Call {
	cs := s.callShard(component)
	cs.mu.Lock()
	victims := make([]*Call, 0, cs.n)
	for call := cs.head; call != nil; call = call.trackNext {
		call.Kill()
		victims = append(victims, call)
	}
	cs.mu.Unlock()
	return victims
}

// Deploy installs an application: it creates one container per component,
// computes recovery groups from the hard references in the deployment
// descriptors, initializes every container, and binds names.
func (s *Server) Deploy(app Application) error {
	s.mu.Lock()
	if _, dup := s.apps[app.Name]; dup {
		s.mu.Unlock()
		return fmt.Errorf("core: application %s already deployed", app.Name)
	}
	var names []string
	for _, d := range app.Components {
		if d.Factory == nil {
			s.mu.Unlock()
			return fmt.Errorf("core: component %s has no factory", d.Name)
		}
		if _, dup := s.containers[d.Name]; dup {
			s.mu.Unlock()
			return fmt.Errorf("core: component %s already deployed", d.Name)
		}
		names = append(names, d.Name)
	}
	for _, d := range app.Components {
		env := &Env{
			Registry:      s.registry,
			Resources:     s.resources,
			Now:           s.now,
			Server:        s,
			componentName: d.Name,
		}
		s.containers[d.Name] = newContainer(d, env)
	}
	s.apps[app.Name] = names
	s.recomputeGroupsLocked()
	// Estimate per-component recovery for RetryAfter hints.
	for _, n := range names {
		c := s.containers[n]
		c.recoveryEstimate = s.groupDurationLocked(s.groups[n])
	}
	containers := make([]*Container, 0, len(names))
	for _, n := range names {
		containers = append(containers, s.containers[n])
	}
	s.mu.Unlock()

	// Initialize outside the server lock: component Init may call back
	// into the server (e.g. to look up resources).
	for _, c := range containers {
		if err := c.initialize(); err != nil {
			return err
		}
		s.registry.bind(c.Name(), c)
	}
	return nil
}

// recomputeGroupsLocked rebuilds recovery groups: connected components of
// the undirected hard-reference graph. Loose (naming-service) references
// do not join groups — that decoupling is what makes single-EJB µRBs
// possible at all.
func (s *Server) recomputeGroupsLocked() {
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		if parent[x] == "" {
			parent[x] = x
		}
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b string) { parent[find(a)] = find(b) }

	for name := range s.containers {
		find(name)
	}
	for name, c := range s.containers {
		for _, ref := range c.desc.HardRefs {
			if _, ok := s.containers[ref]; ok {
				union(name, ref)
			}
		}
	}
	members := map[string][]string{}
	for name := range s.containers {
		root := find(name)
		members[root] = append(members[root], name)
	}
	s.groups = map[string][]string{}
	for _, group := range members {
		sort.Strings(group)
		for _, name := range group {
			s.groups[name] = group
		}
	}
}

func (s *Server) groupDurationLocked(group []string) time.Duration {
	var total time.Duration
	for _, n := range group {
		d := s.costs.CrashTime(n) + s.costs.ReinitTime(n)
		if d > total {
			total = d // members reboot concurrently; the slowest dominates
		}
	}
	return total
}

// RecoveryGroup returns the recovery group containing the named component:
// the set of components that must microreboot together.
func (s *Server) RecoveryGroup(name string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotBound, name)
	}
	return append([]string(nil), g...), nil
}

// Container returns the container for a deployed component.
func (s *Server) Container(name string) (*Container, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.containers[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotBound, name)
	}
	return c, nil
}

// Components returns the names of all deployed components, sorted.
func (s *Server) Components() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.containers))
	for n := range s.containers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AppComponents returns the component names of a deployed application.
func (s *Server) AppComponents(app string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names, ok := s.apps[app]
	if !ok {
		return nil, fmt.Errorf("core: application %s not deployed", app)
	}
	return append([]string(nil), names...), nil
}

// RegisterTx associates an open transaction with the component driving
// it, so a microreboot of that component aborts the transaction (the
// container-managed rollback of the paper).
func (s *Server) RegisterTx(component string, tx *db.Tx) {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := s.txs[component]
	if set == nil {
		set = map[*db.Tx]uint64{}
		s.txs[component] = set
	}
	// Remember the id alongside the pointer: Tx objects are pooled, so a
	// later abort must be generation-checked (db.Tx.AbortIf) to be sure
	// it hits this registration's transaction and not a recycled reuse.
	set[tx] = tx.ID()
}

// ReleaseTx removes a finished transaction from tracking.
func (s *Server) ReleaseTx(component string, tx *db.Tx) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.txs[component], tx)
}

// Reboots reports how many (micro)reboots the server has completed.
func (s *Server) Reboots() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reboots
}

// BindSentinels binds recovery sentinels for the named components
// (expanded to recovery groups) without crashing them, and returns the
// affected members. This implements the Section 6.2 optimization of
// rebinding the name a grace period before the crash, so in-flight
// requests can drain while new arrivals already receive Retry-After.
func (s *Server) BindSentinels(names ...string) ([]string, error) {
	s.mu.Lock()
	memberSet := map[string]bool{}
	for _, n := range names {
		g, ok := s.groups[n]
		if !ok {
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: %s", ErrNotBound, n)
		}
		for _, m := range g {
			memberSet[m] = true
		}
	}
	var members []string
	for m := range memberSet {
		members = append(members, m)
	}
	sort.Strings(members)
	var estimate time.Duration
	for _, m := range members {
		if d := s.costs.CrashTime(m) + s.costs.ReinitTime(m); d > estimate {
			estimate = d
		}
	}
	s.mu.Unlock()
	for _, m := range members {
		s.registry.bindSentinelFor(m, estimate)
	}
	return members, nil
}

// BeginMicroreboot starts the crash phase of a microreboot of the named
// components (expanded to their recovery groups): sentinels are bound,
// instances destroyed, shepherded calls killed (their root contexts
// cancelled with cause ErrKilled), open transactions aborted, leaked
// resources released, and per-component metadata discarded.
//
// The returned Reboot carries the modeled phase durations; the caller
// waits out Duration() (really or in virtual time) and then calls
// CompleteMicroreboot. Use Microreboot for the one-shot form.
func (s *Server) BeginMicroreboot(names ...string) (*Reboot, error) {
	return s.beginScoped(ScopeComponent, names...)
}

func (s *Server) beginScoped(scope Scope, names ...string) (*Reboot, error) {
	if len(names) == 0 {
		return nil, errors.New("core: no components named")
	}
	s.mu.Lock()
	memberSet := map[string]bool{}
	for _, n := range names {
		g, ok := s.groups[n]
		if !ok {
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: %s", ErrNotBound, n)
		}
		for _, m := range g {
			memberSet[m] = true
		}
	}
	members := make([]string, 0, len(memberSet))
	for m := range memberSet {
		members = append(members, m)
	}
	sort.Strings(members)

	rb := &Reboot{Scope: scope, Members: members}
	switch scope {
	case ScopeComponent:
		// Group members recover concurrently; the slowest dominates.
		for _, m := range members {
			if ct := s.costs.CrashTime(m); ct > rb.Crash {
				rb.Crash = ct
			}
			if rt := s.costs.ReinitTime(m); rt > rb.Reinit {
				rb.Reinit = rt
			}
			// WAR components carry their own scope cost.
			if s.containers[m].desc.Kind == Web {
				wc, wr := s.costs.ScopeTime(ScopeWAR)
				if wc > rb.Crash {
					rb.Crash = wc
				}
				if wr > rb.Reinit {
					rb.Reinit = wr
				}
			}
		}
	default:
		rb.Crash, rb.Reinit = s.costs.ScopeTime(scope)
	}

	estimate := rb.Duration()
	containers := make([]*Container, 0, len(members))
	for _, m := range members {
		containers = append(containers, s.containers[m])
	}
	type txVictim struct {
		tx *db.Tx
		id uint64
	}
	var victims []txVictim
	for _, m := range members {
		for tx, id := range s.txs[m] {
			victims = append(victims, txVictim{tx: tx, id: id})
		}
		delete(s.txs, m)
	}
	s.mu.Unlock()

	for _, c := range containers {
		s.registry.bindSentinelFor(c.Name(), estimate)
	}
	for _, c := range containers {
		rb.FreedBytes += c.crash()
	}
	// Kill the shepherds of every call in flight through a member:
	// cancelling the root contexts propagates to children the way one
	// Java thread shepherds the whole request. A request traversing
	// several members is tracked once per hop; report it once.
	killedRoots := map[*Call]struct{}{}
	for _, m := range members {
		for _, call := range s.killActive(m) {
			root := call.Root()
			if _, dup := killedRoots[root]; dup {
				continue
			}
			killedRoots[root] = struct{}{}
			rb.KilledCalls = append(rb.KilledCalls, root)
		}
	}
	// Generation-checked abort: a registered transaction that finished
	// (and was pool-recycled) after collection fails the id check and is
	// skipped, instead of aborting the pointer's new owner.
	for _, v := range victims {
		if v.tx.AbortIf(v.id) == nil {
			rb.AbortedTxs++
		}
	}
	return rb, nil
}

// CompleteMicroreboot runs the reinit phase: containers are
// reinstantiated from their preserved factories, metadata is rebuilt from
// the descriptors, and names are rebound (which also heals any naming
// corruption). Observers fire after completion.
func (s *Server) CompleteMicroreboot(rb *Reboot) error {
	if rb == nil {
		return errors.New("core: nil reboot")
	}
	if rb.completed {
		return errors.New("core: reboot already completed")
	}
	for _, m := range rb.Members {
		c, err := s.Container(m)
		if err != nil {
			return err
		}
		if err := c.initialize(); err != nil {
			return err
		}
		s.registry.bind(m, c)
	}
	rb.completed = true
	s.mu.Lock()
	s.reboots++
	obs := append([]RebootObserver(nil), s.observers...)
	s.mu.Unlock()
	for _, o := range obs {
		o(rb)
	}
	return nil
}

// Microreboot performs a full microreboot synchronously (crash + reinit
// with no pause). Simulation drivers that must model the passage of
// recovery time use the Begin/Complete pair instead.
func (s *Server) Microreboot(names ...string) (*Reboot, error) {
	rb, err := s.BeginMicroreboot(names...)
	if err != nil {
		return nil, err
	}
	return rb, s.CompleteMicroreboot(rb)
}

// BeginScopedReboot starts a WAR-, app-, process- or node-scope reboot
// covering the given application's components (all components for process
// and node scopes).
func (s *Server) BeginScopedReboot(scope Scope, app string) (*Reboot, error) {
	var names []string
	switch scope {
	case ScopeWAR:
		comps, err := s.AppComponents(app)
		if err != nil {
			return nil, err
		}
		for _, n := range comps {
			c, err := s.Container(n)
			if err != nil {
				return nil, err
			}
			if c.Kind() == Web {
				names = append(names, n)
			}
		}
		if len(names) == 0 {
			return nil, fmt.Errorf("core: application %s has no web component", app)
		}
	case ScopeApp:
		comps, err := s.AppComponents(app)
		if err != nil {
			return nil, err
		}
		names = comps
	case ScopeProcess, ScopeNode:
		names = s.Components()
		if len(names) == 0 {
			return nil, errors.New("core: nothing deployed")
		}
	default:
		return nil, fmt.Errorf("core: BeginScopedReboot does not handle scope %v", scope)
	}
	return s.beginScoped(scope, names...)
}
