// Package detect implements the two fault detectors of Section 4.
//
// The first detector is simple and fast, running client-side: it flags
// network-level errors, HTTP 4xx/5xx analogs, failure keywords in the
// returned HTML, and application-specific problems (negative item IDs,
// being prompted to log in when already logged in).
//
// The second detector is comparison-based: it submits each request in
// parallel to the instance under test and to a separate known-good
// instance, flagging any differences — the only detector able to identify
// complex failures such as surreptitious corruption of a bid's dollar
// amount.
package detect

import (
	"context"
	"regexp"
	"strings"

	"repro/internal/core"
	"repro/internal/ebid"
	"repro/internal/workload"
)

// FailureType classifies what a detector saw.
type FailureType string

// Failure classifications.
const (
	None         FailureType = ""
	NetworkError FailureType = "network-error"
	HTTPError    FailureType = "http-error"
	KeywordMatch FailureType = "keyword"
	AppSpecific  FailureType = "app-specific"
	Discrepancy  FailureType = "comparison-mismatch"
)

// Verdict is a detector's judgment of one response.
type Verdict struct {
	Faulty bool
	Type   FailureType
	Detail string
}

var negativeID = regexp.MustCompile(`\b(user|item|bid) -\d+`)

// ClientSide is the fast first-line detector.
type ClientSide struct{}

// Classify judges a response. loggedIn tells the detector whether the
// client believes it has a session (to catch spurious login prompts).
func (ClientSide) Classify(op string, resp workload.Response, loggedIn bool) Verdict {
	if resp.Err != nil {
		msg := resp.Err.Error()
		switch {
		case strings.Contains(msg, "connection"):
			return Verdict{Faulty: true, Type: NetworkError, Detail: msg}
		case strings.Contains(msg, "503") || strings.Contains(msg, "retry after"):
			return Verdict{Faulty: true, Type: HTTPError, Detail: msg}
		default:
			return Verdict{Faulty: true, Type: HTTPError, Detail: msg}
		}
	}
	lower := strings.ToLower(resp.Body)
	for _, kw := range []string{"exception", "failed", "error"} {
		if strings.Contains(lower, kw) {
			return Verdict{Faulty: true, Type: KeywordMatch, Detail: kw}
		}
	}
	// Application-specific checks.
	if negativeID.MatchString(resp.Body) {
		return Verdict{Faulty: true, Type: AppSpecific, Detail: "negative id in response"}
	}
	if loggedIn && strings.Contains(lower, "please log in") {
		return Verdict{Faulty: true, Type: AppSpecific, Detail: "login prompt while logged in"}
	}
	return Verdict{}
}

// Comparison is the truth-comparing detector: it executes the same
// request against a known-good application instance and flags any
// difference. Timing-related nondeterminism is handled by normalizing
// volatile fields before comparing, as the paper's detector required
// "certain tweaks ... to account for timing-related nondeterminism".
type Comparison struct {
	// Good is the known-good instance on another machine.
	Good *ebid.App
}

var volatile = regexp.MustCompile(`\d+\.\d\d`)

// normalize strips volatile content (amounts that legitimately differ by
// interleaving) from a body before comparison.
func normalize(body string) string {
	return volatile.ReplaceAllString(body, "#")
}

// Check replays the call on the known-good instance and compares.
func (c *Comparison) Check(call *core.Call, resp workload.Response) Verdict {
	replay := &core.Call{Op: call.Op, SessionID: call.SessionID, Args: call.Args}
	goodBody, goodErr := c.Good.Execute(context.Background(), replay)
	if (goodErr == nil) != (resp.Err == nil) {
		return Verdict{Faulty: true, Type: Discrepancy,
			Detail: "error status differs from known-good instance"}
	}
	if goodErr == nil && normalize(goodBody) != normalize(resp.Body) {
		return Verdict{Faulty: true, Type: Discrepancy,
			Detail: "body differs from known-good instance"}
	}
	return Verdict{}
}
