package detect

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/ebid"
	"repro/internal/store/db"
	"repro/internal/store/session"
	"repro/internal/workload"
)

func TestClientSideClassification(t *testing.T) {
	d := ClientSide{}
	cases := []struct {
		name     string
		resp     workload.Response
		loggedIn bool
		want     FailureType
	}{
		{"ok", workload.Response{Body: "<html>item 3: thing</html>"}, false, None},
		{"network", workload.Response{Err: errors.New("cluster: connection refused")}, false, NetworkError},
		{"http503", workload.Response{Err: errors.New("cluster: 503 service unavailable")}, false, HTTPError},
		{"generic error", workload.Response{Err: errors.New("boom")}, false, HTTPError},
		{"keyword exception", workload.Response{Body: "<html>NullPointerException at ...</html>"}, false, KeywordMatch},
		{"keyword failed", workload.Response{Body: "<html>operation Failed</html>"}, false, KeywordMatch},
		{"negative id", workload.Response{Body: "<html>user -42 profile</html>"}, false, AppSpecific},
		{"login prompt while logged in", workload.Response{Body: "<html>please log in to bid</html>"}, true, AppSpecific},
		{"login prompt while logged out", workload.Response{Body: "<html>please log in to bid</html>"}, false, None},
	}
	for _, c := range cases {
		v := d.Classify("x", c.resp, c.loggedIn)
		if v.Type != c.want || v.Faulty != (c.want != None) {
			t.Errorf("%s: verdict = %+v, want type %q", c.name, v, c.want)
		}
	}
}

func newGoodApp(t *testing.T) *ebid.App {
	t.Helper()
	d := db.New(nil)
	cfg := ebid.DatasetConfig{Users: 50, Items: 100, BidsPerItem: 3, Categories: 5, Regions: 5, OldItems: 10}
	if err := ebid.LoadDataset(d, cfg); err != nil {
		t.Fatal(err)
	}
	app, err := ebid.New(d, session.NewFastS(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestComparisonDetectsWrongData(t *testing.T) {
	good := newGoodApp(t)
	cmp := &Comparison{Good: good}
	call := &core.Call{Op: ebid.ViewItem, Args: core.ArgMap{"item": int64(3)}}

	// Matching response: clean verdict.
	body, err := good.Execute(context.Background(), &core.Call{Op: ebid.ViewItem, Args: call.Args})
	if err != nil {
		t.Fatal(err)
	}
	if v := cmp.Check(call, workload.Response{Body: body}); v.Faulty {
		t.Fatalf("identical responses flagged: %+v", v)
	}

	// Surreptitiously wrong item name: only comparison can see it.
	wrong := workload.Response{Body: "<html>item 3: SWAPPED-NAME, max bid 7.00, 3 bids</html>"}
	if v := cmp.Check(call, wrong); !v.Faulty || v.Type != Discrepancy {
		t.Fatalf("wrong data not flagged: %+v", v)
	}

	// Error-status mismatch.
	if v := cmp.Check(call, workload.Response{Err: errors.New("x")}); !v.Faulty {
		t.Fatal("error mismatch not flagged")
	}
}

func TestComparisonToleratesTimingNondeterminism(t *testing.T) {
	good := newGoodApp(t)
	cmp := &Comparison{Good: good}
	call := &core.Call{Op: ebid.ViewItem, Args: core.ArgMap{"item": int64(3)}}
	body, _ := good.Execute(context.Background(), &core.Call{Op: ebid.ViewItem, Args: call.Args})
	// Perturb only a dollar amount (timing-dependent field): the
	// normalizer masks decimal amounts before comparing.
	perturbed := workload.Response{Body: replaceFirstAmount(body)}
	if v := cmp.Check(call, perturbed); v.Faulty {
		t.Fatalf("timing nondeterminism flagged as failure: %+v", v)
	}
}

func replaceFirstAmount(s string) string {
	return volatile.ReplaceAllString(s, "999.99")
}

func TestSamplerStrideAndEligibility(t *testing.T) {
	good := newGoodApp(t)
	var flagged []string
	s := &Sampler{
		Comp:  &Comparison{Good: good},
		Every: 4,
		OnDiscrepancy: func(op string, v Verdict) {
			flagged = append(flagged, op+"/"+v.Detail)
		},
	}

	call := &core.Call{Op: ebid.ViewItem, Args: core.ArgMap{"item": int64(3)}}
	body, err := good.Execute(context.Background(), &core.Call{Op: ebid.ViewItem, Args: call.Args})
	if err != nil {
		t.Fatal(err)
	}

	// Ineligible traffic is never replayed: writes would fork the
	// known-good instance, session reads cannot replay without state,
	// and failures are the client-side detector's job — a transient 503
	// replayed here would masquerade as corruption.
	s.Observe(&core.Call{Op: ebid.CommitBid}, workload.Response{Body: "x"})
	s.Observe(&core.Call{Op: ebid.AboutMe}, workload.Response{Body: "x"})
	s.Observe(call, workload.Response{Err: errors.New("503 retry after")})
	s.Observe(nil, workload.Response{})
	if seen, checked, _ := s.Stats(); seen != 0 || checked != 0 {
		t.Fatalf("ineligible ops counted: seen=%d checked=%d", seen, checked)
	}

	// Eight eligible ops at stride 4: exactly two replays.
	for i := 0; i < 8; i++ {
		s.Observe(call, workload.Response{Body: body})
	}
	if seen, checked, flaggedN := s.Stats(); seen != 8 || checked != 2 || flaggedN != 0 {
		t.Fatalf("stride accounting: seen=%d checked=%d flagged=%d, want 8/2/0", seen, checked, flaggedN)
	}

	// A corrupted sampled response is flagged and reported.
	for i := 0; i < 4; i++ {
		s.Observe(call, workload.Response{Body: "<html>item 3: SWAPPED, max bid 7.00</html>"})
	}
	if _, _, flaggedN := s.Stats(); flaggedN != 1 {
		t.Fatalf("flagged = %d, want 1 (one of the four corrupted ops sampled)", flaggedN)
	}
	if len(flagged) != 1 || flagged[0] != ebid.ViewItem+"/body differs from known-good instance" {
		t.Fatalf("OnDiscrepancy = %v", flagged)
	}
}

func TestSampledFrontendObservesCompletions(t *testing.T) {
	good := newGoodApp(t)
	s := &Sampler{Comp: &Comparison{Good: good}, Every: 1}
	var completed int
	fe := &SampledFrontend{Inner: frontendFunc(func(req *workload.Request) {
		// A stand-in node: fill in the call and complete with the
		// known-good body, as the real node does.
		req.Call = &core.Call{Op: req.Op, Args: req.Args}
		body, err := good.Execute(context.Background(), &core.Call{Op: req.Op, Args: req.Args})
		req.Complete(workload.Response{Body: body, Err: err})
	}), S: s}

	fe.Submit(&workload.Request{Op: ebid.ViewItem, Args: core.ArgMap{"item": int64(5)},
		Complete: func(workload.Response) { completed++ }})
	if completed != 1 {
		t.Fatal("inner completion not delivered")
	}
	if seen, checked, flagged := s.Stats(); seen != 1 || checked != 1 || flagged != 0 {
		t.Fatalf("sampler missed the live completion: %d/%d/%d", seen, checked, flagged)
	}
}

type frontendFunc func(*workload.Request)

func (f frontendFunc) Submit(req *workload.Request) { f(req) }
