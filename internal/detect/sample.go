package detect

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/ebid"
	"repro/internal/workload"
)

// DefaultSampleEvery is the default sampling stride: one in this many
// eligible operations is replayed against the known-good instance.
const DefaultSampleEvery = 16

// Sampler runs the Comparison detector on a deterministic 1-in-Every
// slice of live traffic, the way the paper ran its expensive second
// detector beside the cheap client-side checks. Only idempotent,
// session-free operations are eligible: the known-good instance shares
// the database but nothing else with the instance under test, so
// replaying a write (or a session-touching read) would fork the two.
//
// The sampler is safe for concurrent use (a live HTTP front end calls
// Observe from many goroutines).
type Sampler struct {
	// Comp replays against the known-good instance; required.
	Comp *Comparison
	// Every is the sampling stride (DefaultSampleEvery when zero).
	Every int64
	// OnDiscrepancy receives every mismatch — hosts publish these onto
	// the control-plane bus as discrepancy signals.
	OnDiscrepancy func(op string, v Verdict)

	seen, checked, flagged atomic.Int64
}

func (s *Sampler) stride() int64 {
	if s.Every <= 0 {
		return DefaultSampleEvery
	}
	return s.Every
}

// Observe offers one completed operation to the sampler; every
// stride'th eligible one is replayed and compared. Failed operations
// are not eligible: the client-side detector already classifies and
// reports them, and replaying a transient failure (a 503 during
// recovery, a killed call) would misfile it as corruption — a
// discrepancy means a response that LOOKED fine but wasn't.
func (s *Sampler) Observe(call *core.Call, resp workload.Response) {
	if s == nil || s.Comp == nil || call == nil || resp.Err != nil {
		return
	}
	info, ok := ebid.Info(call.Op)
	if !ok || !info.Idempotent || info.NeedsSession {
		return
	}
	if s.seen.Add(1)%s.stride() != 0 {
		return
	}
	s.checked.Add(1)
	if v := s.Comp.Check(call, resp); v.Faulty {
		s.flagged.Add(1)
		if s.OnDiscrepancy != nil {
			s.OnDiscrepancy(call.Op, v)
		}
	}
}

// Stats reports eligible operations seen, replays performed, and
// discrepancies flagged.
func (s *Sampler) Stats() (seen, checked, flagged int64) {
	return s.seen.Load(), s.checked.Load(), s.flagged.Load()
}

// SampledFrontend interposes the sampler on a frontend, so an emulated
// client population's live traffic is what gets sampled. The node fills
// in Request.Call, which carries the arguments the replay needs.
type SampledFrontend struct {
	Inner workload.Frontend
	S     *Sampler
}

// Submit implements workload.Frontend.
func (f *SampledFrontend) Submit(req *workload.Request) {
	inner := req.Complete
	req.Complete = func(resp workload.Response) {
		f.S.Observe(req.Call, resp)
		if inner != nil {
			inner(resp)
		}
	}
	f.Inner.Submit(req)
}
