package ebid

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/store/db"
	"repro/internal/store/session"
)

// WAR-served operations (static presentation data and session teardown).
const (
	OpHome       = "Home"
	OpBrowseMenu = "BrowseMenu"
	OpSellForm   = "SellForm"
	OpPutBidAuth = "PutBidAuth" // static login form page
	OpLogout     = "Logout"
)

// war is the web component: servlets that invoke the session components
// and format results. Static presentation data is an in-memory read-only
// file set (the paper keeps it on an Ext3FS filesystem, optionally
// mounted read-only).
type war struct {
	env    *core.Env
	static map[string]string
}

func newWARFactory() core.Factory {
	return func() core.Component { return &war{} }
}

// Init implements core.Component.
func (w *war) Init(env *core.Env) error {
	w.env = env
	w.static = map[string]string{
		OpHome:       "<html>eBid home page</html>",
		OpBrowseMenu: "<html>browse menu</html>",
		OpSellForm:   "<html>sell item form</html>",
		OpPutBidAuth: "<html>please log in to bid</html>",
	}
	return nil
}

// Stop implements core.Component.
func (w *war) Stop() error { return nil }

// Serve implements core.Component: the servlet dispatch.
func (w *war) Serve(ctx context.Context, call *core.Call) (any, error) {
	if page, ok := w.static[call.Op]; ok {
		return page, nil
	}
	if call.Op == OpLogout {
		store, err := sessionStore(w.env)
		if err != nil {
			return nil, err
		}
		if call.SessionID != "" {
			if err := store.Delete(call.SessionID); err != nil {
				return nil, err
			}
		}
		return "<html>logged out</html>", nil
	}
	// Dynamic operations route to the session component of the same
	// name; the sub-invocation goes through the server's interceptor
	// pipeline and inherits this request's shepherd context.
	child := call.Child(call.Op, call.Args)
	res, err := w.env.Server.Invoke(ctx, call.Op, child)
	// Propagate a slotted body from the child to this call before the
	// child is recycled, so the result string never transits `any`.
	if res == core.SlotResult {
		if body, ok := child.BodyResult(); ok {
			call.SetBodyResult(body)
		}
	}
	child.Release()
	return res, err
}

// App bundles a deployed eBid application with its resources.
type App struct {
	Server   *core.Server
	DB       *db.DB
	Sessions session.Store
	// Stats is the per-component latency/outcome accounting, collected
	// by an interceptor registered on the server.
	Stats   *metrics.InvocationStats
	warName string
}

// New builds a core.Server, deploys eBid on it, and returns the App.
// The clock argument supplies virtual time (may be nil for wall-clock).
// Invocation metrics run as an interceptor registered on the server.
func New(d *db.DB, sessions session.Store, clock func() time.Duration) (*App, error) {
	opts := []core.Option{
		core.WithResource(ResourceDB, d),
		core.WithResource(ResourceSessions, sessions),
		core.WithCostModel(CostModel{}),
	}
	if clock != nil {
		opts = append(opts, core.WithClock(clock))
	}
	srv := core.NewServer(opts...)
	stats := metrics.NewInvocationStats(clock)
	srv.Use(stats.Interceptor())
	app := &App{Server: srv, DB: d, Sessions: sessions, Stats: stats, warName: WAR}
	if err := srv.Deploy(Assemble()); err != nil {
		return nil, err
	}
	return app, nil
}

// Assemble returns the full eBid application descriptor set: 9 entity
// components, 17 stateless session components, and the WAR.
func Assemble() core.Application {
	app := core.Application{Name: "eBid"}
	app.Components = append(app.Components, entityDescriptors()...)
	app.Components = append(app.Components, sessionDescriptors()...)
	war := core.Descriptor{
		Name:    WAR,
		Kind:    core.Web,
		Factory: newWARFactory(),
	}
	for _, d := range sessionDescriptors() {
		war.Refs = append(war.Refs, d.Name)
	}
	app.Components = append(app.Components, war)
	return app
}

// Execute runs one end-user operation through the WAR, returning the
// response body. The context is the request's shepherd: pass the HTTP
// request context from real front ends (cancellation propagates into the
// components) or context.Background() from simulation drivers.
func (a *App) Execute(ctx context.Context, call *core.Call) (string, error) {
	res, err := a.Server.Invoke(ctx, a.warName, call)
	if err != nil {
		return "", err
	}
	// Typed result slot first: ops that rendered a body deposited it on
	// the call and returned the SlotResult sentinel. The `any` fallback
	// stays for static pages and for fault-injection interceptors, whose
	// fabricated results short-circuit the op (the slot is never set, so
	// injected corruption still reaches the comparison detector).
	if res == core.SlotResult {
		if body, ok := call.BodyResult(); ok {
			return body, nil
		}
		return "", nil
	}
	body, ok := res.(string)
	if !ok {
		return fmt.Sprint(res), nil
	}
	return body, nil
}
