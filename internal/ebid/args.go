package ebid

import (
	"strconv"
	"sync"

	"repro/internal/store/db"
)

// OpArgs is the typed argument codec for the end-user operations: one
// field per argument the 17 session components read, replacing the
// per-request map[string]any allocation on the hot path. A zero-valued
// field reads as absent — every numeric argument here is >= 1 when
// present — except Rating, where zero and negative values are legal and
// presence is carried explicitly by HasRating.
type OpArgs struct {
	User     int64
	Item     int64
	Category int64
	Region   int64
	Amount   float64
	Rating   int64
	// HasRating marks Rating as present.
	HasRating bool
}

// Arg implements core.Args.
func (a *OpArgs) Arg(name string) (any, bool) {
	switch name {
	case "user":
		if a.User != 0 {
			return a.User, true
		}
	case "item":
		if a.Item != 0 {
			return a.Item, true
		}
	case "category":
		if a.Category != 0 {
			return a.Category, true
		}
	case "region":
		if a.Region != 0 {
			return a.Region, true
		}
	case "amount":
		if a.Amount != 0 {
			return a.Amount, true
		}
	case "rating":
		if a.HasRating {
			return a.Rating, true
		}
	}
	return nil, false
}

// int64Arg is the boxing-free accessor the session components use on
// their fast path.
func (a *OpArgs) int64Arg(name string) (int64, bool) {
	switch name {
	case "user":
		if a.User != 0 {
			return a.User, true
		}
	case "item":
		if a.Item != 0 {
			return a.Item, true
		}
	case "category":
		if a.Category != 0 {
			return a.Category, true
		}
	case "region":
		if a.Region != 0 {
			return a.Region, true
		}
	case "rating":
		if a.HasRating {
			return a.Rating, true
		}
	}
	return 0, false
}

// SetString decodes one URL-style key=value pair into the codec,
// reporting whether the key is one it carries. HTTP front ends use it to
// route recognized query keys onto the typed path and fall back to a
// generic core.ArgMap for anything else.
func (a *OpArgs) SetString(key, val string) bool {
	switch key {
	case "user", "item", "category", "region", "rating":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return false
		}
		switch key {
		case "user":
			a.User = n
		case "item":
			a.Item = n
		case "category":
			a.Category = n
		case "region":
			a.Region = n
		case "rating":
			a.Rating = n
			a.HasRating = true
		}
		return true
	case "amount":
		x, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return false
		}
		a.Amount = x
		return true
	}
	return false
}

// EntityArgs is the typed argument codec for entity sub-operations (the
// load/create/update/byIndex/list/next hops session components make).
// Instances are pooled: invokeEntity releases them once the child call
// has been safely recycled.
type EntityArgs struct {
	Key int64
	// HasKey marks Key as present (opCreate distinguishes caller-chosen
	// keys from auto-assigned ones).
	HasKey bool
	Row    db.Row
	Tx     *db.Tx
	Col    string
	Val    any
	Limit  int
	Kind   string
}

// Arg implements core.Args.
func (a *EntityArgs) Arg(name string) (any, bool) {
	switch name {
	case "key":
		if a.HasKey {
			return a.Key, true
		}
	case "row":
		if a.Row != nil {
			return a.Row, true
		}
	case "tx":
		if a.Tx != nil {
			return a.Tx, true
		}
	case "col":
		if a.Col != "" {
			return a.Col, true
		}
	case "val":
		if a.Val != nil {
			return a.Val, true
		}
	case "limit":
		if a.Limit != 0 {
			return a.Limit, true
		}
	case "kind":
		if a.Kind != "" {
			return a.Kind, true
		}
	}
	return nil, false
}

var entityArgsPool = sync.Pool{New: func() any { return new(EntityArgs) }}

func newEntityArgs() *EntityArgs { return entityArgsPool.Get().(*EntityArgs) }

func (a *EntityArgs) release() {
	*a = EntityArgs{}
	entityArgsPool.Put(a)
}

// The constructors below build pooled EntityArgs for the hop shapes the
// session components use. tx may be nil (auto-commit hop).

func keyArgs(tx *db.Tx, key int64) *EntityArgs {
	a := newEntityArgs()
	a.Key, a.HasKey, a.Tx = key, true, tx
	return a
}

func rowArgs(tx *db.Tx, key int64, row db.Row) *EntityArgs {
	a := newEntityArgs()
	a.Key, a.HasKey, a.Row, a.Tx = key, true, row, tx
	return a
}

func byIndexArgs(col string, val any) *EntityArgs {
	a := newEntityArgs()
	a.Col, a.Val = col, val
	return a
}

func listArgs(limit int) *EntityArgs {
	a := newEntityArgs()
	a.Limit = limit
	return a
}

func kindArgs(tx *db.Tx, kind string) *EntityArgs {
	a := newEntityArgs()
	a.Kind, a.Tx = kind, tx
	return a
}
