package ebid

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/store/db"
	"repro/internal/store/session"
)

// argStep is one operation issued twice: once with the typed codec, once
// with the generic map the codec replaced.
type argStep struct {
	op     string
	typed  *OpArgs
	legacy core.ArgMap
}

// TestOpArgsMatchesArgMap drives two identical apps through every
// argument-carrying end-user operation — typed codec on one, ArgMap on
// the other — and requires identical response bodies. This is the
// round-trip guarantee: the codec encodes exactly what the map did.
func TestOpArgsMatchesArgMap(t *testing.T) {
	typedApp, _ := newApp(t)
	legacyApp, _ := newApp(t)

	steps := []argStep{
		{Authenticate, &OpArgs{User: 3}, core.ArgMap{"user": int64(3)}},
		{AboutMe, nil, nil},
		{BrowseCategories, nil, nil},
		{BrowseRegions, nil, nil},
		{ViewItem, &OpArgs{Item: 7}, core.ArgMap{"item": int64(7)}},
		{ViewUserInfo, &OpArgs{User: 2}, core.ArgMap{"user": int64(2)}},
		{ViewBidHistory, &OpArgs{Item: 5}, core.ArgMap{"item": int64(5)}},
		{SearchItemsByCategory, &OpArgs{Category: 2}, core.ArgMap{"category": int64(2)}},
		{SearchItemsByRegion, &OpArgs{Region: 3}, core.ArgMap{"region": int64(3)}},
		{MakeBid, &OpArgs{Item: 9}, core.ArgMap{"item": int64(9)}},
		{CommitBid, &OpArgs{Amount: 42.5}, core.ArgMap{"amount": 42.5}},
		{DoBuyNow, &OpArgs{Item: 11}, core.ArgMap{"item": int64(11)}},
		{CommitBuyNow, nil, nil},
		{LeaveUserFeedback, &OpArgs{User: 4}, core.ArgMap{"user": int64(4)}},
		// Rating zero and negative are legal values — presence must come
		// from HasRating, not from the value being non-zero.
		{CommitUserFeedback, &OpArgs{Rating: 0, HasRating: true}, core.ArgMap{"rating": int64(0)}},
		{LeaveUserFeedback, &OpArgs{User: 5}, core.ArgMap{"user": int64(5)}},
		{CommitUserFeedback, &OpArgs{Rating: -5, HasRating: true}, core.ArgMap{"rating": int64(-5)}},
		{RegisterNewItem, &OpArgs{Category: 1}, core.ArgMap{"category": int64(1)}},
		{RegisterNewUser, &OpArgs{Region: 2}, core.ArgMap{"region": int64(2)}},
		{OpLogout, nil, nil},
	}
	const sid = "codec-sess"
	for _, st := range steps {
		var typedArgs core.Args
		if st.typed != nil {
			typedArgs = st.typed
		}
		gotTyped, errTyped := typedApp.Execute(context.Background(),
			&core.Call{Op: st.op, SessionID: sid, Args: typedArgs})
		var legacyArgs core.Args
		if st.legacy != nil {
			legacyArgs = st.legacy
		}
		gotLegacy, errLegacy := legacyApp.Execute(context.Background(),
			&core.Call{Op: st.op, SessionID: sid, Args: legacyArgs})
		if (errTyped == nil) != (errLegacy == nil) {
			t.Fatalf("%s: typed err=%v, legacy err=%v", st.op, errTyped, errLegacy)
		}
		if gotTyped != gotLegacy {
			t.Fatalf("%s: typed body %q != legacy body %q", st.op, gotTyped, gotLegacy)
		}
	}
}

// TestOpArgsMissingBehavesLikeNil checks the zero-value-means-absent
// contract: an op invoked with a zero OpArgs must behave exactly like one
// invoked with nil args (the session components' defaulting kicks in for
// both), not read the zero values as real arguments.
func TestOpArgsMissingBehavesLikeNil(t *testing.T) {
	app, _ := newApp(t)
	for _, op := range []string{ViewItem, ViewUserInfo, ViewBidHistory, SearchItemsByCategory, SearchItemsByRegion} {
		bodyZero, errZero := app.Execute(context.Background(), &core.Call{Op: op, Args: &OpArgs{}})
		bodyNil, errNil := app.Execute(context.Background(), &core.Call{Op: op})
		if (errZero == nil) != (errNil == nil) {
			t.Fatalf("%s: zero err=%v, nil err=%v", op, errZero, errNil)
		}
		if bodyZero != bodyNil {
			t.Fatalf("%s: zero-args body %q != nil-args body %q", op, bodyZero, bodyNil)
		}
	}
}

// TestArgFailsClosedOnTypeMismatch: the generic accessor must report
// absence, not panic or mis-coerce, when the stored type differs from
// the requested one — for both the map and the typed codec.
func TestArgFailsClosedOnTypeMismatch(t *testing.T) {
	mapCall := &core.Call{Op: "x", Args: core.ArgMap{"user": int64(7)}}
	if _, ok := core.Arg[string](mapCall, "user"); ok {
		t.Fatal("Arg[string] coerced an int64 map value")
	}
	typedCall := &core.Call{Op: "x", Args: &OpArgs{User: 7}}
	if _, ok := core.Arg[string](typedCall, "user"); ok {
		t.Fatal("Arg[string] coerced an int64 codec value")
	}
	if v, ok := core.Arg[int64](typedCall, "user"); !ok || v != 7 {
		t.Fatalf("Arg[int64] through the codec = %v/%v", v, ok)
	}
	if _, ok := core.Arg[int64](typedCall, "nope"); ok {
		t.Fatal("unknown arg name reported present")
	}
}

func TestOpArgsSetString(t *testing.T) {
	oa := &OpArgs{}
	cases := map[string]string{
		"user": "3", "item": "9", "category": "2", "region": "4",
		"amount": "12.5", "rating": "-3",
	}
	for k, v := range cases {
		if !oa.SetString(k, v) {
			t.Fatalf("SetString(%s, %s) rejected", k, v)
		}
	}
	if oa.User != 3 || oa.Item != 9 || oa.Category != 2 || oa.Region != 4 {
		t.Fatalf("int fields = %+v", oa)
	}
	if oa.Amount != 12.5 || oa.Rating != -3 || !oa.HasRating {
		t.Fatalf("amount/rating = %+v", oa)
	}
	if oa.SetString("user", "notanumber") {
		t.Fatal("bad int accepted")
	}
	if oa.SetString("flavor", "vanilla") {
		t.Fatal("unknown key accepted")
	}
}

// TestEntityArgsArgMapCompat checks EntityArgs' generic accessor against
// the map semantics the entity layer's fallback path expects.
func TestEntityArgsArgMapCompat(t *testing.T) {
	tx := &db.Tx{}
	ea := &EntityArgs{Key: 5, HasKey: true, Tx: tx, Col: "user", Val: int64(9), Limit: 20, Kind: "bid"}
	for name, want := range map[string]any{
		"key": int64(5), "col": "user", "val": int64(9), "limit": 20, "kind": "bid",
	} {
		v, ok := ea.Arg(name)
		if !ok || v != want {
			t.Fatalf("Arg(%s) = %v/%v, want %v", name, v, ok, want)
		}
	}
	if v, ok := ea.Arg("tx"); !ok || v != tx {
		t.Fatalf("Arg(tx) = %v/%v", v, ok)
	}
	if _, ok := (&EntityArgs{}).Arg("key"); ok {
		t.Fatal("absent key reported present")
	}
	if _, ok := ea.Arg("row"); ok {
		t.Fatal("nil row reported present")
	}
}

// TestReleasedCallNotPooledWhenKilled guards the pooling invariant: a
// call retained by a kill (it lives on in Reboot.KilledCalls) must refuse
// Release so it is never recycled under the microreboot bookkeeping.
func TestReleasedCallNotPooledWhenKilled(t *testing.T) {
	call := core.NewCall("op", "s", nil, 0)
	call.Kill()
	if call.Release() {
		t.Fatal("killed call accepted Release")
	}
	fresh := core.NewCall("op2", "s", nil, 0)
	if !fresh.Release() {
		t.Fatal("fresh unkilled call refused Release")
	}
}

func init() {
	var _ core.Args = (*OpArgs)(nil)
	var _ core.Args = (*EntityArgs)(nil)
	var _ = session.NewFastS // keep imports honest if helpers move
}
