// Package ebid implements the crash-only auction application of the
// paper: a conversion of Rice University's RUBiS with the crash-only
// changes described in Section 3.3. It maintains user accounts, supports
// bidding/buying/selling of items, item search, customized summary
// screens ("AboutMe") and user feedback pages.
//
// State segregation follows the paper exactly: long-term data lives in
// the transactional database (internal/store/db), session data in a
// dedicated session store (internal/store/session — FastS or SSM), and
// static presentation data in an in-memory read-only file set standing in
// for the read-only Ext3FS mount.
//
// The application consists of 9 entity components and 17 stateless
// session components plus the WAR web component — the exact component
// roster of Table 3.
package ebid

import (
	"time"

	"repro/internal/core"
)

// Component names, matching Table 3 of the paper.
const (
	AboutMe               = "AboutMe"
	Authenticate          = "Authenticate"
	BrowseCategories      = "BrowseCategories"
	BrowseRegions         = "BrowseRegions"
	BuyNow                = "BuyNow" // entity
	CommitBid             = "CommitBid"
	CommitBuyNow          = "CommitBuyNow"
	CommitUserFeedback    = "CommitUserFeedback"
	DoBuyNow              = "DoBuyNow"
	IdentityManager       = "IdentityManager" // entity
	LeaveUserFeedback     = "LeaveUserFeedback"
	MakeBid               = "MakeBid"
	OldItem               = "OldItem" // entity
	RegisterNewItem       = "RegisterNewItem"
	RegisterNewUser       = "RegisterNewUser"
	SearchItemsByCategory = "SearchItemsByCategory"
	SearchItemsByRegion   = "SearchItemsByRegion"
	UserFeedback          = "UserFeedback" // entity
	ViewBidHistory        = "ViewBidHistory"
	ViewUserInfo          = "ViewUserInfo"
	ViewItem              = "ViewItem"
	WAR                   = "WAR"

	// EntityGroup members: the five entity EJBs whose container-spanning
	// relationships force them into one recovery group.
	EntCategory = "Category"
	EntRegion   = "Region"
	EntUser     = "User"
	EntItem     = "Item"
	EntBid      = "Bid"
)

// EntityGroupMembers lists the recovery group that Table 3 calls
// "EntityGroup": any µRB of one member reboots all five.
var EntityGroupMembers = []string{EntBid, EntCategory, EntItem, EntRegion, EntUser}

// recoveryCost holds one row of Table 3: measured crash and
// reinitialization times under load.
type recoveryCost struct {
	crash  time.Duration
	reinit time.Duration
}

// table3 reproduces the per-component recovery costs of Table 3
// (averages across 10 trials on a single-node system under sustained load
// from 500 concurrent clients).
var table3 = map[string]recoveryCost{
	AboutMe:               {9 * time.Millisecond, 542 * time.Millisecond},
	Authenticate:          {12 * time.Millisecond, 479 * time.Millisecond},
	BrowseCategories:      {11 * time.Millisecond, 400 * time.Millisecond},
	BrowseRegions:         {15 * time.Millisecond, 401 * time.Millisecond},
	BuyNow:                {9 * time.Millisecond, 462 * time.Millisecond},
	CommitBid:             {8 * time.Millisecond, 525 * time.Millisecond},
	CommitBuyNow:          {9 * time.Millisecond, 462 * time.Millisecond},
	CommitUserFeedback:    {9 * time.Millisecond, 522 * time.Millisecond},
	DoBuyNow:              {10 * time.Millisecond, 417 * time.Millisecond},
	IdentityManager:       {10 * time.Millisecond, 451 * time.Millisecond},
	LeaveUserFeedback:     {10 * time.Millisecond, 474 * time.Millisecond},
	MakeBid:               {9 * time.Millisecond, 515 * time.Millisecond},
	OldItem:               {10 * time.Millisecond, 519 * time.Millisecond},
	RegisterNewItem:       {13 * time.Millisecond, 434 * time.Millisecond},
	RegisterNewUser:       {13 * time.Millisecond, 588 * time.Millisecond},
	SearchItemsByCategory: {14 * time.Millisecond, 428 * time.Millisecond},
	SearchItemsByRegion:   {8 * time.Millisecond, 564 * time.Millisecond},
	UserFeedback:          {11 * time.Millisecond, 472 * time.Millisecond},
	ViewBidHistory:        {11 * time.Millisecond, 496 * time.Millisecond},
	ViewUserInfo:          {10 * time.Millisecond, 405 * time.Millisecond},
	ViewItem:              {10 * time.Millisecond, 436 * time.Millisecond},
	WAR:                   {71 * time.Millisecond, 957 * time.Millisecond},
}

// entityGroupCost is the Table 3 "EntityGroup" row: the five entities
// recover together, dominated by the group's joint reinitialization.
var entityGroupCost = recoveryCost{36 * time.Millisecond, 789 * time.Millisecond}

// Scope-level costs from Table 3: restarting the whole eBid application
// is optimized to avoid restarting each individual EJB (7,699 ms), and a
// JVM/JBoss process restart takes 19,083 ms. The node (OS reboot) figure
// is the paper's qualitative "minutes" level.
var scopeCosts = map[core.Scope]recoveryCost{
	core.ScopeWAR:     {71 * time.Millisecond, 957 * time.Millisecond},
	core.ScopeApp:     {33 * time.Millisecond, 7666 * time.Millisecond},
	core.ScopeProcess: {0, 19083 * time.Millisecond},
	core.ScopeNode:    {2 * time.Second, 100 * time.Second},
}

// CostModel implements core.CostModel with the calibrated Table 3 values.
type CostModel struct{}

var _ core.CostModel = CostModel{}

// CrashTime returns the forced-shutdown duration for a component.
func (CostModel) CrashTime(component string) time.Duration {
	if isEntityGroupMember(component) {
		return entityGroupCost.crash
	}
	if c, ok := table3[component]; ok {
		return c.crash
	}
	return 10 * time.Millisecond
}

// ReinitTime returns the redeploy+reinitialize duration for a component.
func (CostModel) ReinitTime(component string) time.Duration {
	if isEntityGroupMember(component) {
		return entityGroupCost.reinit
	}
	if c, ok := table3[component]; ok {
		return c.reinit
	}
	return 490 * time.Millisecond
}

// ScopeTime returns the crash/reinit pair for coarse-grained reboots.
func (CostModel) ScopeTime(s core.Scope) (time.Duration, time.Duration) {
	if c, ok := scopeCosts[s]; ok {
		return c.crash, c.reinit
	}
	return 10 * time.Millisecond, 490 * time.Millisecond
}

func isEntityGroupMember(name string) bool {
	for _, m := range EntityGroupMembers {
		if m == name {
			return true
		}
	}
	return false
}

// Service-time calibration (Table 5): fault-free request latency averages
// ~15 ms with FastS; externalizing session state to SSM adds marshalling
// and network cost, bringing the average to ~28 ms. The microreboot
// machinery itself costs about a millisecond of interceptor overhead.
const (
	// BaseServiceMean/Stddev model per-request CPU+DB time.
	BaseServiceMean   = 14 * time.Millisecond
	BaseServiceStddev = 5 * time.Millisecond
	// SSMAccessCost is the extra marshal+network+unmarshal cost charged
	// to each request that touches session state stored in SSM.
	SSMAccessCost = 13 * time.Millisecond
	// MicrorebootOverhead is the per-request interceptor overhead of the
	// µRB-enabled server (JBossµRB vs JBoss in Table 5).
	MicrorebootOverhead = 1 * time.Millisecond
)
