package ebid

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/store/db"
	"repro/internal/store/session"
)

func smallDataset() DatasetConfig {
	return DatasetConfig{
		Users: 50, Items: 200, BidsPerItem: 5,
		Categories: 5, Regions: 8, OldItems: 20, Seed: 1,
	}
}

func newApp(t *testing.T) (*App, *session.FastS) {
	t.Helper()
	d := db.New(nil)
	if err := LoadDataset(d, smallDataset()); err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	fs := session.NewFastS()
	app, err := New(d, fs, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return app, fs
}

func exec(t *testing.T, app *App, sessID, op string, args core.ArgMap) string {
	t.Helper()
	body, err := app.Execute(context.Background(), &core.Call{Op: op, SessionID: sessID, Args: args})
	if err != nil {
		t.Fatalf("Execute(%s): %v", op, err)
	}
	return body
}

func login(t *testing.T, app *App, sessID string, user int64) {
	t.Helper()
	exec(t, app, sessID, Authenticate, core.ArgMap{"user": user})
}

func TestDeploymentRoster(t *testing.T) {
	app, _ := newApp(t)
	comps := app.Server.Components()
	// 9 entities + 17 session + WAR = 27 components.
	if len(comps) != 27 {
		t.Fatalf("deployed %d components, want 27: %v", len(comps), comps)
	}
	// EntityGroup must be exactly the five Table 3 members.
	g, err := app.Server.RecoveryGroup(EntItem)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 5 {
		t.Fatalf("EntityGroup = %v, want 5 members", g)
	}
	for _, m := range g {
		if !isEntityGroupMember(m) {
			t.Fatalf("unexpected group member %s", m)
		}
	}
	// Session components microreboot alone.
	g2, _ := app.Server.RecoveryGroup(MakeBid)
	if len(g2) != 1 {
		t.Fatalf("MakeBid group = %v, want singleton", g2)
	}
}

func TestStaticAndReadOnlyOps(t *testing.T) {
	app, _ := newApp(t)
	for _, op := range []string{OpHome, OpBrowseMenu, OpSellForm, BrowseCategories, BrowseRegions, ViewBidHistory} {
		body := exec(t, app, "", op, nil)
		if body == "" {
			t.Fatalf("%s returned empty body", op)
		}
	}
	body := exec(t, app, "", ViewItem, core.ArgMap{"item": int64(3)})
	if want := "item 3"; !contains(body, want) {
		t.Fatalf("ViewItem body = %q, want contains %q", body, want)
	}
	body = exec(t, app, "", ViewUserInfo, core.ArgMap{"user": int64(2)})
	if !contains(body, "user 2") {
		t.Fatalf("ViewUserInfo body = %q", body)
	}
	body = exec(t, app, "", SearchItemsByCategory, core.ArgMap{"category": int64(2)})
	if !contains(body, "items") {
		t.Fatalf("Search body = %q", body)
	}
}

func TestViewItemFallsBackToOldItem(t *testing.T) {
	app, _ := newApp(t)
	// Delete item 5 so ViewItem must consult OldItem (old-item id 5 exists).
	tx, _ := app.DB.Begin()
	if err := tx.Delete(TblItems, 5); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	body := exec(t, app, "", ViewItem, core.ArgMap{"item": int64(5)})
	if !contains(body, "old item 5") {
		t.Fatalf("body = %q, want old item fallback", body)
	}
}

func TestLoginLogout(t *testing.T) {
	app, fs := newApp(t)
	login(t, app, "s1", 3)
	if fs.Len() != 1 {
		t.Fatalf("sessions = %d, want 1", fs.Len())
	}
	body := exec(t, app, "s1", AboutMe, nil)
	if !contains(body, "about user 3") {
		t.Fatalf("AboutMe body = %q", body)
	}
	exec(t, app, "s1", OpLogout, nil)
	if fs.Len() != 0 {
		t.Fatalf("sessions after logout = %d, want 0", fs.Len())
	}
	// Session ops now fail with the not-logged-in symptom.
	_, err := app.Execute(context.Background(), &core.Call{Op: AboutMe, SessionID: "s1"})
	if err == nil || !errors.Is(err, ErrNotLoggedIn) {
		t.Fatalf("AboutMe after logout err = %v, want ErrNotLoggedIn", err)
	}
}

func TestBidFlow(t *testing.T) {
	app, _ := newApp(t)
	login(t, app, "s1", 3)
	exec(t, app, "s1", MakeBid, core.ArgMap{"item": int64(7)})
	before, _ := app.DB.RowCount(TblBids)
	body := exec(t, app, "s1", CommitBid, core.ArgMap{"amount": 123.0})
	if !contains(body, "bid committed on item 7") {
		t.Fatalf("CommitBid body = %q", body)
	}
	after, _ := app.DB.RowCount(TblBids)
	if after != before+1 {
		t.Fatalf("bids %d -> %d, want +1", before, after)
	}
	// Item max_bid updated.
	tx, _ := app.DB.Begin()
	defer tx.Abort()
	item, err := tx.Get(TblItems, 7)
	if err != nil {
		t.Fatal(err)
	}
	if item["max_bid"].(float64) != 123.0 {
		t.Fatalf("max_bid = %v, want 123", item["max_bid"])
	}
}

func TestCommitBidWithoutSelection(t *testing.T) {
	app, _ := newApp(t)
	login(t, app, "s1", 3)
	_, err := app.Execute(context.Background(), &core.Call{Op: CommitBid, SessionID: "s1", Args: core.ArgMap{"amount": 5.0}})
	if err == nil {
		t.Fatal("CommitBid without MakeBid should fail")
	}
}

func TestBuyNowFlow(t *testing.T) {
	app, _ := newApp(t)
	login(t, app, "s2", 4)
	exec(t, app, "s2", DoBuyNow, core.ArgMap{"item": int64(9)})
	body := exec(t, app, "s2", CommitBuyNow, nil)
	if !contains(body, "purchase committed for item 9") {
		t.Fatalf("body = %q", body)
	}
	n, _ := app.DB.RowCount(TblBuys)
	if n != 1 {
		t.Fatalf("buys = %d, want 1", n)
	}
}

func TestFeedbackFlow(t *testing.T) {
	app, _ := newApp(t)
	login(t, app, "s3", 5)
	exec(t, app, "s3", LeaveUserFeedback, core.ArgMap{"user": int64(6)})
	body := exec(t, app, "s3", CommitUserFeedback, core.ArgMap{"rating": int64(3)})
	if !contains(body, "feedback committed for user 6") {
		t.Fatalf("body = %q", body)
	}
	tx, _ := app.DB.Begin()
	defer tx.Abort()
	u, _ := tx.Get(TblUsers, 6)
	if u["rating"].(int64) != int64(6%11)+3 {
		t.Fatalf("rating = %v", u["rating"])
	}
}

func TestRegisterNewUserAndItem(t *testing.T) {
	app, fs := newApp(t)
	body := exec(t, app, "s4", RegisterNewUser, core.ArgMap{"region": int64(2)})
	if !contains(body, "registered user 51") {
		t.Fatalf("body = %q, want user 51 (next id after 50)", body)
	}
	if fs.Len() != 1 {
		t.Fatal("RegisterNewUser must auto-login")
	}
	body = exec(t, app, "s4", RegisterNewItem, core.ArgMap{"category": int64(1)})
	if !contains(body, "registered item 201") {
		t.Fatalf("body = %q, want item 201", body)
	}
}

func TestSessionSurvivesMicroreboot(t *testing.T) {
	app, _ := newApp(t)
	login(t, app, "s5", 7)
	exec(t, app, "s5", MakeBid, core.ArgMap{"item": int64(3)})
	// Microreboot the whole EntityGroup plus MakeBid itself.
	if _, err := app.Server.Microreboot(MakeBid, EntItem); err != nil {
		t.Fatal(err)
	}
	// Session state survived; the user can commit the bid.
	body := exec(t, app, "s5", CommitBid, core.ArgMap{"amount": 9.0})
	if !contains(body, "bid committed") {
		t.Fatalf("post-µRB CommitBid body = %q", body)
	}
}

func TestCallsDuringMicrorebootGetRetryAfter(t *testing.T) {
	app, _ := newApp(t)
	rb, err := app.Server.BeginMicroreboot(ViewItem)
	if err != nil {
		t.Fatal(err)
	}
	_, err = app.Execute(context.Background(), &core.Call{Op: ViewItem, Args: core.ArgMap{"item": int64(1)}})
	var ra *core.RetryAfterError
	if !errors.As(err, &ra) {
		t.Fatalf("err = %v, want RetryAfterError", err)
	}
	// Other ops keep working during the µRB.
	exec(t, app, "", BrowseCategories, nil)
	if err := app.Server.CompleteMicroreboot(rb); err != nil {
		t.Fatal(err)
	}
	exec(t, app, "", ViewItem, core.ArgMap{"item": int64(1)})
}

func TestMicrorebootDurationMatchesTable3(t *testing.T) {
	app, _ := newApp(t)
	cases := map[string]time.Duration{
		ViewItem:         446 * time.Millisecond,
		RegisterNewUser:  601 * time.Millisecond,
		BrowseCategories: 411 * time.Millisecond,
	}
	for comp, want := range cases {
		rb, err := app.Server.BeginMicroreboot(comp)
		if err != nil {
			t.Fatal(err)
		}
		if rb.Duration() != want {
			t.Fatalf("%s µRB duration = %v, want %v", comp, rb.Duration(), want)
		}
		if err := app.Server.CompleteMicroreboot(rb); err != nil {
			t.Fatal(err)
		}
	}
	// EntityGroup: 36 + 789 = 825 ms.
	rb, err := app.Server.BeginMicroreboot(EntUser)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Duration() != 825*time.Millisecond {
		t.Fatalf("EntityGroup duration = %v, want 825ms", rb.Duration())
	}
	_ = app.Server.CompleteMicroreboot(rb)
	// Process restart: 19,083 ms.
	rb, err = app.Server.BeginScopedReboot(core.ScopeProcess, "")
	if err != nil {
		t.Fatal(err)
	}
	if rb.Duration() != 19083*time.Millisecond {
		t.Fatalf("process restart duration = %v, want 19.083s", rb.Duration())
	}
	_ = app.Server.CompleteMicroreboot(rb)
}

func TestFastSLossBreaksSessionsSSMDoesNot(t *testing.T) {
	// FastS: process restart loses sessions.
	app, fs := newApp(t)
	login(t, app, "s1", 3)
	fs.LoseAll() // the process-restart effect
	if _, err := app.Execute(context.Background(), &core.Call{Op: AboutMe, SessionID: "s1"}); !errors.Is(err, ErrNotLoggedIn) {
		t.Fatalf("err = %v, want ErrNotLoggedIn", err)
	}

	// SSM: survives process restarts by construction.
	d := db.New(nil)
	if err := LoadDataset(d, smallDataset()); err != nil {
		t.Fatal(err)
	}
	ssm := session.NewSSM(nil, 0)
	app2, err := New(d, ssm, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app2.Execute(context.Background(), &core.Call{Op: Authenticate, SessionID: "s1", Args: core.ArgMap{"user": int64(3)}}); err != nil {
		t.Fatal(err)
	}
	// Simulate process restart: SSM keeps its state (it is off-node).
	if _, err := app2.Execute(context.Background(), &core.Call{Op: AboutMe, SessionID: "s1"}); err != nil {
		t.Fatalf("AboutMe with SSM after restart: %v", err)
	}
}

func TestTxAbortedByMicroreboot(t *testing.T) {
	// A transaction left open by a component is rolled back by its µRB.
	app, _ := newApp(t)
	tx, err := app.DB.Begin()
	if err != nil {
		t.Fatal(err)
	}
	app.Server.RegisterTx(CommitBid, tx)
	rb, err := app.Server.Microreboot(CommitBid)
	if err != nil {
		t.Fatal(err)
	}
	if rb.AbortedTxs != 1 || !tx.Done() {
		t.Fatalf("AbortedTxs = %d, tx done = %v", rb.AbortedTxs, tx.Done())
	}
}

func TestCallPathTracing(t *testing.T) {
	app, _ := newApp(t)
	login(t, app, "s1", 3)
	call := &core.Call{Op: AboutMe, SessionID: "s1"}
	if _, err := app.Execute(context.Background(), call); err != nil {
		t.Fatal(err)
	}
	// Path must include WAR, the session component, and the entities.
	for _, want := range []string{WAR, AboutMe, EntUser, EntBid, BuyNow} {
		found := false
		for _, p := range call.Path {
			if p == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("path %v missing %s", call.Path, want)
		}
	}
}

func TestOpsMetadata(t *testing.T) {
	names := Operations()
	if len(names) != 22 {
		t.Fatalf("Operations() = %d ops, want 22", len(names))
	}
	for _, op := range names {
		info, ok := Info(op)
		if !ok {
			t.Fatalf("Info(%s) missing", op)
		}
		if info.Name != op {
			t.Fatalf("Info(%s).Name = %q", op, info.Name)
		}
		if info.Group == "" || info.Category == "" {
			t.Fatalf("%s missing group/category", op)
		}
		if len(info.Path) == 0 || info.Path[0] != WAR {
			t.Fatalf("%s path = %v, must start at WAR", op, info.Path)
		}
	}
	if !Touches(ViewItem, EntItem) {
		t.Fatal("ViewItem must touch Item")
	}
	// ViewItem touches Item; Item is in EntityGroup with Bid, so a Bid
	// µRB disturbs ViewItem.
	if !Touches(ViewItem, EntBid) {
		t.Fatal("EntityGroup expansion broken")
	}
	if Touches(OpHome, EntItem) {
		t.Fatal("Home must not touch entities")
	}
	if Touches("Ghost", WAR) {
		t.Fatal("unknown op should touch nothing")
	}
	if PathFor("Ghost") != nil {
		t.Fatal("unknown op should have nil path")
	}
}

func TestTable1CategoriesCovered(t *testing.T) {
	cats := map[string]bool{}
	for _, op := range Operations() {
		info, _ := Info(op)
		cats[info.Category] = true
	}
	for _, want := range []string{CatReadOnlyDB, CatSessionInit, CatStatic, CatSearch, CatSessionUpdate, CatDBUpdate} {
		if !cats[want] {
			t.Fatalf("no operation in category %q", want)
		}
	}
}

func TestDatasetScale(t *testing.T) {
	d := db.New(nil)
	cfg := smallDataset()
	if err := LoadDataset(d, cfg); err != nil {
		t.Fatal(err)
	}
	for tbl, want := range map[string]int{
		TblUsers:      cfg.Users,
		TblItems:      cfg.Items,
		TblCategories: cfg.Categories,
		TblRegions:    cfg.Regions,
		TblOldItems:   cfg.OldItems,
		TblBids:       cfg.Items * cfg.BidsPerItem / 10,
		TblIDSeq:      5,
	} {
		n, err := d.RowCount(tbl)
		if err != nil {
			t.Fatal(err)
		}
		if n != want {
			t.Fatalf("%s rows = %d, want %d", tbl, n, want)
		}
	}
	// Default and paper datasets keep the paper's bids:items ratio.
	if DefaultDataset().BidsPerItem != PaperDataset().BidsPerItem {
		t.Fatal("scaled dataset changed the bids-per-item shape")
	}
}

func TestIdentityManagerSequential(t *testing.T) {
	app, _ := newApp(t)
	var prev int64
	for i := 0; i < 5; i++ {
		res, err := app.Server.Invoke(context.Background(), IdentityManager,
			&core.Call{Op: "next", Args: core.ArgMap{"kind": "bid"}})
		if err != nil {
			t.Fatal(err)
		}
		id := res.(int64)
		if i > 0 && id != prev+1 {
			t.Fatalf("ids not sequential: %d then %d", prev, id)
		}
		prev = id
	}
	// Sequence survives a µRB of the IdentityManager (durable in DB).
	if _, err := app.Server.Microreboot(IdentityManager); err != nil {
		t.Fatal(err)
	}
	res, err := app.Server.Invoke(context.Background(), IdentityManager,
		&core.Call{Op: "next", Args: core.ArgMap{"kind": "bid"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.(int64) != prev+1 {
		t.Fatalf("post-µRB id = %v, want %d", res, prev+1)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || fmt.Sprintf("%s", s) != "" && index(s, sub) >= 0)
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
