package ebid

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/store/db"
)

// ResourceDB and ResourceSessions are the well-known Env resource keys
// under which the application server exposes the persistence tier and the
// session store to components.
const (
	ResourceDB       = "ebid.db"
	ResourceSessions = "ebid.sessions"
)

// Entity operation names (the sub-operations session components invoke on
// entity components through the naming service).
const (
	opLoad    = "load"
	opCreate  = "create"
	opUpdate  = "update"
	opByIndex = "byIndex"
	opList    = "list"
	opNextID  = "next"
)

// ErrNotLoggedIn is surfaced when an operation requires session state
// that does not exist (e.g. lost in a process restart). Exported so the
// HTTP front end can answer it as a client-recoverable condition (log in
// again) rather than a server error — under crash-only operation a
// session lapse is a normal event, not a failure.
var ErrNotLoggedIn = errors.New("ebid: not logged in")

// entity is the generic entity component: a persistent application object
// whose instances map to rows of one table (container-managed
// persistence). Higher-level operations are performed on it by stateless
// session components.
type entity struct {
	table string
	db    *db.DB
	env   *core.Env
}

func newEntityFactory(table string) core.Factory {
	return func() core.Component { return &entity{table: table} }
}

// Init implements core.Component.
func (e *entity) Init(env *core.Env) error {
	d, ok := core.Resource[*db.DB](env, ResourceDB)
	if !ok {
		return fmt.Errorf("ebid: entity %s: no database resource", e.table)
	}
	e.db = d
	e.env = env
	return nil
}

// Stop implements core.Component.
func (e *entity) Stop() error { return nil }

// entityArgView is the decoded argument set of one entity hop. It is
// built once per Serve: a direct type assertion on the typed codec (the
// hot path, no boxing) with a generic core.Arg fallback for map-backed
// args.
type entityArgView struct {
	key    int64
	hasKey bool
	row    db.Row
	tx     *db.Tx
	col    string
	val    any
	limit  int
	kind   string
}

func viewArgs(call *core.Call) entityArgView {
	if a, ok := call.Args.(*EntityArgs); ok {
		return entityArgView{
			key: a.Key, hasKey: a.HasKey, row: a.Row, tx: a.Tx,
			col: a.Col, val: a.Val, limit: a.Limit, kind: a.Kind,
		}
	}
	var v entityArgView
	v.key, v.hasKey = core.Arg[int64](call, "key")
	v.row, _ = core.Arg[db.Row](call, "row")
	v.tx, _ = core.Arg[*db.Tx](call, "tx")
	v.col, _ = core.Arg[string](call, "col")
	if call.Args != nil {
		v.val, _ = call.Args.Arg("val")
	}
	v.limit, _ = core.Arg[int](call, "limit")
	v.kind, _ = core.Arg[string](call, "kind")
	return v
}

// txFrom returns the caller-supplied transaction, or starts an
// auto-commit transaction (auto=true). Auto transactions are settled
// through finishTx; returning a flag instead of a settle closure keeps
// the per-call hot path free of the closure allocation.
func (e *entity) txFrom(v entityArgView) (tx *db.Tx, auto bool, err error) {
	if v.tx != nil {
		return v.tx, false, nil
	}
	t, err := e.db.Begin()
	if err != nil {
		return nil, false, err
	}
	return t, true, nil
}

// finishTx settles an auto-commit transaction: abort on failure, commit
// on success. Caller-supplied transactions pass through untouched. A
// transaction this goroutine settled itself goes back to the Tx pool;
// one finished under us (crash invalidation, µRB rollback) is left to
// the GC, since the finisher may still be touching it.
func finishTx(tx *db.Tx, auto bool, err error) error {
	if !auto {
		return err
	}
	if err != nil {
		if tx.Abort() == nil {
			tx.Recycle()
		}
		return err
	}
	if cerr := tx.Commit(); cerr != nil {
		return cerr
	}
	tx.Recycle()
	return nil
}

// Serve implements core.Component: the entity sub-operations.
func (e *entity) Serve(ctx context.Context, call *core.Call) (any, error) {
	v := viewArgs(call)
	tx, auto, err := e.txFrom(v)
	if err != nil {
		return nil, err
	}
	var res any
	switch call.Op {
	case opLoad:
		if !v.hasKey {
			return nil, finishTx(tx, auto, fmt.Errorf("ebid: %s load: missing key", e.table))
		}
		res, err = tx.Get(e.table, v.key)
	case opCreate:
		if v.row == nil {
			return nil, finishTx(tx, auto, fmt.Errorf("ebid: %s create: missing row", e.table))
		}
		if v.hasKey {
			err = tx.InsertWithKey(e.table, v.key, v.row)
			res = v.key
		} else {
			res, err = tx.Insert(e.table, v.row)
		}
	case opUpdate:
		if !v.hasKey {
			return nil, finishTx(tx, auto, fmt.Errorf("ebid: %s update: missing key", e.table))
		}
		if v.row == nil {
			return nil, finishTx(tx, auto, fmt.Errorf("ebid: %s update: missing row", e.table))
		}
		err = tx.Update(e.table, v.key, v.row)
	case opByIndex:
		var keys []int64
		keys, err = tx.Lookup(e.table, v.col, v.val)
		if err == nil {
			if _, typed := call.Args.(*EntityArgs); typed {
				// Typed-codec callers read the key list from the call's
				// result slot, skipping the []int64→any boxing. Map-args
				// callers (figures, tests) keep the boxed result.
				call.SetKeysResult(keys)
				res = core.SlotResult
			} else {
				res = keys
			}
		}
	case opList:
		limit := v.limit
		if limit <= 0 {
			limit = 20
		}
		var rows []db.Row
		err = tx.Scan(e.table, func(k int64, r db.Row) bool {
			rr := db.Row{"_key": k}
			for c, v := range r {
				rr[c] = v
			}
			rows = append(rows, rr)
			return len(rows) < limit
		})
		res = rows
	default:
		return nil, finishTx(tx, auto, fmt.Errorf("ebid: %s: unknown entity op %q", e.table, call.Op))
	}
	return res, finishTx(tx, auto, err)
}

// idManager is the IdentityManager entity: it generates the
// application-specific primary keys identifying rows that correspond to
// entity instances. Table 2's "corrupt primary keys" faults target this
// component's data handling.
type idManager struct {
	db  *db.DB
	env *core.Env
	// seqKeys caches the id_seq row key per kind (volatile instance
	// state, rebuilt on Init — hence restored by a µRB).
	seqKeys map[string]int64
}

func newIDManagerFactory() core.Factory {
	return func() core.Component { return &idManager{} }
}

// Init implements core.Component.
func (m *idManager) Init(env *core.Env) error {
	d, ok := core.Resource[*db.DB](env, ResourceDB)
	if !ok {
		return errors.New("ebid: IdentityManager: no database resource")
	}
	m.db = d
	m.env = env
	m.seqKeys = map[string]int64{}
	tx, err := d.Begin()
	if err != nil {
		// The database may be briefly down (crash-recovery window);
		// the cache is rebuilt lazily in that case.
		return nil
	}
	defer func() {
		if tx.Abort() == nil {
			tx.Recycle()
		}
	}()
	_ = tx.Scan(TblIDSeq, func(k int64, r db.Row) bool {
		if kind, ok := r["kind"].(string); ok {
			m.seqKeys[kind] = k
		}
		return true
	})
	return nil
}

// Stop implements core.Component.
func (m *idManager) Stop() error { return nil }

// Serve implements core.Component: op "next" allocates the next id for a
// kind, transactionally.
func (m *idManager) Serve(ctx context.Context, call *core.Call) (any, error) {
	if call.Op != opNextID {
		return nil, fmt.Errorf("ebid: IdentityManager: unknown op %q", call.Op)
	}
	v := viewArgs(call)
	kind := v.kind
	if kind == "" {
		return nil, errors.New("ebid: IdentityManager: missing kind")
	}
	tx := v.tx
	var err error
	if tx == nil {
		tx, err = m.db.Begin()
		if err != nil {
			return nil, err
		}
		defer func() {
			if !tx.Done() && tx.Commit() == nil {
				tx.Recycle()
			}
		}()
	}
	seqKey, ok := m.seqKeys[kind]
	if !ok {
		// Lazy rebuild after a recovery window.
		keys, err := tx.Lookup(TblIDSeq, "kind", kind)
		if err != nil || len(keys) == 0 {
			return nil, fmt.Errorf("ebid: IdentityManager: unknown kind %q", kind)
		}
		seqKey = keys[0]
		m.seqKeys[kind] = seqKey
	}
	// Lock-then-read: a plain Get would let two concurrent allocations
	// both observe the same counter and hand out duplicate ids.
	row, err := tx.GetForUpdate(TblIDSeq, seqKey)
	if err != nil {
		return nil, err
	}
	next := row["next"].(int64)
	// The row from Get is shared and immutable; bump the counter on a clone.
	upd := row.Clone()
	upd["next"] = next + 1
	if err := tx.Update(TblIDSeq, seqKey, upd); err != nil {
		return nil, err
	}
	return next, nil
}

// entityDescriptors returns the deployment descriptors for the nine
// entity components. The five EntityGroup members carry hard references
// to one another (container-spanning metadata relationships), which the
// server's transitive closure turns into the EntityGroup of Table 3.
func entityDescriptors() []core.Descriptor {
	entityFor := map[string]string{
		EntUser:      TblUsers,
		EntItem:      TblItems,
		EntBid:       TblBids,
		EntCategory:  TblCategories,
		EntRegion:    TblRegions,
		BuyNow:       TblBuys,
		OldItem:      TblOldItems,
		UserFeedback: TblFeedback,
	}
	txm := map[string]core.TxAttr{
		opLoad:    core.TxSupports,
		opCreate:  core.TxRequired,
		opUpdate:  core.TxRequired,
		opByIndex: core.TxSupports,
		opList:    core.TxSupports,
	}
	var out []core.Descriptor
	for _, name := range []string{EntUser, EntItem, EntBid, EntCategory, EntRegion, BuyNow, OldItem, UserFeedback} {
		d := core.Descriptor{
			Name:      name,
			Kind:      core.Entity,
			Factory:   newEntityFactory(entityFor[name]),
			TxMethods: txm,
		}
		if isEntityGroupMember(name) {
			// Chain the group members so their transitive closure is
			// the full EntityGroup: Bid→Item→User→Category→Region.
			switch name {
			case EntBid:
				d.HardRefs = []string{EntItem}
			case EntItem:
				d.HardRefs = []string{EntUser}
			case EntUser:
				d.HardRefs = []string{EntCategory}
			case EntCategory:
				d.HardRefs = []string{EntRegion}
			}
		}
		out = append(out, d)
	}
	out = append(out, core.Descriptor{
		Name:      IdentityManager,
		Kind:      core.Entity,
		Factory:   newIDManagerFactory(),
		TxMethods: map[string]core.TxAttr{opNextID: core.TxRequired},
	})
	return out
}
