package ebid

import (
	"sync"
	"sync/atomic"
)

// Body interning.
//
// The pooled renderBuf made formatting allocation-free, but done() still
// pays one []byte→string copy per response. On the read-dominated
// workload the same rows render to the same bytes over and over
// (ViewItem of a hot item, ViewUserInfo of an active seller), so the
// copy is almost always re-materializing a string that was already
// built. bodyIntern caches those strings keyed by a content hash of the
// rendered bytes: a hit returns the cached string with zero conversions,
// a miss (cold body, corrupted render, hash-bucket collision) falls back
// to the ordinary copy and installs it.
//
// Keying by content makes staleness impossible — a row change produces
// different bytes, which hash to a different key (or fail the equality
// check on a bucket collision) and simply miss. The only concern is
// growth, so the cache is sharded and bounded exactly like the store's
// row cache (rowcache.go): at capacity an arbitrary resident entry is
// evicted. Reset is wired to the same place the row cache resets (the
// store's crash path clears rows; bodies die with InternReset from the
// app when its database recovers) so a post-recovery fleet starts cold
// rather than serving a warm cache that the row tier no longer backs.
const (
	internShards   = 32
	internShardCap = 1024
)

type internShard struct {
	mu sync.RWMutex
	m  map[uint64]string

	hits, misses atomic.Uint64
}

type bodyIntern struct {
	shards [internShards]internShard
}

// interned is the process-wide body cache. Bodies are keyed by content,
// not by database instance, so one cache serves every app in the
// process (tests and the sim run several); cross-app collisions are
// harmless because equal bytes means equal body.
var interned bodyIntern

// internHash is FNV-1a over the rendered bytes — the same cheap hash the
// row cache uses for its keys.
func internHash(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// intern returns the canonical string for the rendered bytes, copying
// only on a miss. The equality check on a hit compiles to an
// allocation-free comparison (the string(b) conversion in a comparison
// does not materialize).
func (bi *bodyIntern) intern(b []byte) string {
	h := internHash(b)
	s := &bi.shards[h%internShards]
	s.mu.RLock()
	cached, ok := s.m[h]
	s.mu.RUnlock()
	if ok && cached == string(b) {
		s.hits.Add(1)
		return cached
	}
	s.misses.Add(1)
	body := string(b)
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[uint64]string, internShardCap)
	}
	if len(s.m) >= internShardCap {
		// Evict an arbitrary resident body (map iteration order), same
		// policy as the row cache: bounded beats clever here.
		for k := range s.m {
			delete(s.m, k)
			break
		}
	}
	s.m[h] = body
	s.mu.Unlock()
	return body
}

// reset drops every cached body (post-recovery cold start).
func (bi *bodyIntern) reset() {
	for i := range bi.shards {
		s := &bi.shards[i]
		s.mu.Lock()
		s.m = nil
		s.mu.Unlock()
	}
}

// stats sums hit/miss counters and resident entries across shards.
func (bi *bodyIntern) stats() (hits, misses uint64, entries int) {
	for i := range bi.shards {
		s := &bi.shards[i]
		hits += s.hits.Load()
		misses += s.misses.Load()
		s.mu.RLock()
		entries += len(s.m)
		s.mu.RUnlock()
	}
	return hits, misses, entries
}

// BodyInternStats reports body-intern cache hits, misses, and resident
// entries (exposed on the admin status endpoints).
func BodyInternStats() (hits, misses uint64, entries int) {
	return interned.stats()
}

// InternReset drops all interned bodies. The app calls it when its
// database recovers, alongside the row cache reset.
func InternReset() {
	interned.reset()
}
