package ebid

import "sort"

// Functional groups used in Figure 2 of the paper.
const (
	GroupBidBuySell  = "Bid/Buy/Sell"
	GroupBrowseView  = "Browse/View"
	GroupSearch      = "Search"
	GroupUserAccount = "User Account"
)

// Category labels of Table 1 (the client workload mix).
const (
	CatReadOnlyDB    = "Read-only DB access"
	CatSessionInit   = "Initialization/deletion of session state"
	CatStatic        = "Exclusively static HTML content"
	CatSearch        = "Search"
	CatSessionUpdate = "Session state updates"
	CatDBUpdate      = "Database updates"
)

// OpInfo is the static metadata of one end-user operation, derived from
// the application's structure: the recovery manager's URL→component-path
// mapping, the Figure 2 functional grouping, the Table 1 workload
// category, idempotency (for HTTP Retry-After), session requirements, and
// whether the operation is a commit point of a user action.
type OpInfo struct {
	Name string
	// Path is the static call path: servlet plus the components the
	// operation touches (derived by static analysis of the refs, as the
	// paper derives it from URL prefixes).
	Path []string
	// Group is the Figure 2 functional group.
	Group string
	// Category is the Table 1 workload category.
	Category string
	// Idempotent operations can be transparently retried after a 503.
	Idempotent bool
	// NeedsSession marks operations that fail without session state.
	NeedsSession bool
	// CommitPoint marks operations that complete a user action.
	CommitPoint bool
}

// ops is the static operation table.
var ops = map[string]OpInfo{
	OpHome:       {Group: GroupBrowseView, Category: CatStatic, Idempotent: true, Path: []string{WAR}},
	OpBrowseMenu: {Group: GroupBrowseView, Category: CatStatic, Idempotent: true, Path: []string{WAR}},
	OpSellForm:   {Group: GroupBidBuySell, Category: CatStatic, Idempotent: true, Path: []string{WAR}},
	OpPutBidAuth: {Group: GroupUserAccount, Category: CatStatic, Idempotent: true, Path: []string{WAR}},
	OpLogout:     {Group: GroupUserAccount, Category: CatSessionInit, CommitPoint: true, Path: []string{WAR}},

	Authenticate:    {Group: GroupUserAccount, Category: CatSessionInit, Idempotent: true, CommitPoint: true},
	RegisterNewUser: {Group: GroupUserAccount, Category: CatSessionInit, CommitPoint: true},

	BrowseCategories: {Group: GroupBrowseView, Category: CatReadOnlyDB, Idempotent: true},
	BrowseRegions:    {Group: GroupBrowseView, Category: CatReadOnlyDB, Idempotent: true},
	ViewItem:         {Group: GroupBrowseView, Category: CatReadOnlyDB, Idempotent: true},
	ViewUserInfo:     {Group: GroupBrowseView, Category: CatReadOnlyDB, Idempotent: true},
	ViewBidHistory:   {Group: GroupBrowseView, Category: CatReadOnlyDB, Idempotent: true},
	AboutMe:          {Group: GroupUserAccount, Category: CatReadOnlyDB, Idempotent: true, NeedsSession: true, CommitPoint: true},

	SearchItemsByCategory: {Group: GroupSearch, Category: CatSearch, Idempotent: true},
	SearchItemsByRegion:   {Group: GroupSearch, Category: CatSearch, Idempotent: true},

	MakeBid:           {Group: GroupBidBuySell, Category: CatSessionUpdate, NeedsSession: true},
	DoBuyNow:          {Group: GroupBidBuySell, Category: CatSessionUpdate, NeedsSession: true},
	LeaveUserFeedback: {Group: GroupUserAccount, Category: CatSessionUpdate, NeedsSession: true},

	CommitBid:          {Group: GroupBidBuySell, Category: CatDBUpdate, NeedsSession: true, CommitPoint: true},
	CommitBuyNow:       {Group: GroupBidBuySell, Category: CatDBUpdate, NeedsSession: true, CommitPoint: true},
	CommitUserFeedback: {Group: GroupUserAccount, Category: CatDBUpdate, NeedsSession: true, CommitPoint: true},
	RegisterNewItem:    {Group: GroupBidBuySell, Category: CatDBUpdate, NeedsSession: true, CommitPoint: true},
}

func init() {
	// Fill names and derive call paths from the deployment descriptors'
	// loose references: WAR → session component → entities.
	refs := map[string][]string{}
	for _, d := range sessionDescriptors() {
		refs[d.Name] = d.Refs
	}
	for name, info := range ops {
		info.Name = name
		if len(info.Path) == 0 {
			path := []string{WAR, name}
			path = append(path, refs[name]...)
			// Expand EntityGroup membership: touching one member means a
			// group µRB touches this path.
			info.Path = path
		}
		ops[name] = info
	}
}

// Info returns the metadata for an operation; ok is false for unknown
// operations.
func Info(op string) (OpInfo, bool) {
	i, ok := ops[op]
	return i, ok
}

// Operations returns all operation names, sorted.
func Operations() []string {
	names := make([]string, 0, len(ops))
	for n := range ops {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PathFor returns the static call path for an operation (empty for
// unknown operations). The recovery manager uses this as its URL→path
// mapping.
func PathFor(op string) []string {
	if i, ok := ops[op]; ok {
		return append([]string(nil), i.Path...)
	}
	return nil
}

// Touches reports whether an operation's static path includes the named
// component, counting EntityGroup expansion: an op that touches one group
// member is disturbed when any member reboots.
func Touches(op, component string) bool {
	info, ok := ops[op]
	if !ok {
		return false
	}
	for _, p := range info.Path {
		if p == component {
			return true
		}
		if isEntityGroupMember(p) && isEntityGroupMember(component) {
			return true
		}
	}
	return false
}
