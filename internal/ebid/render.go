package ebid

import (
	"fmt"
	"strconv"
	"sync"
)

// Pooled response-body rendering.
//
// Every eBid op used to build its HTML body with fmt.Sprintf, which costs
// one allocation per verb plus the interface boxing of each argument —
// the single largest allocation source on the read-dominated invoke path.
// renderBuf replaces it with a pooled []byte appended to via
// strconv.Append*, so formatting itself is allocation-free; only the
// final []byte→string conversion of done() allocates.
//
// Bodies must stay byte-identical to the old fmt.Sprintf output: the
// detect.Sampler comparison detector diffs live bodies against a shadow
// replica, so any drift would read as divergence. The any-typed column
// accessors (anyS/anyI/anyF2) therefore fast-path the schema types and
// fall back to the fmt verbs for anything else — a corrupted column
// renders exactly the "%!s(int64=5)"-style noise it always did, which is
// precisely what the detectors key on. TestRenderGoldenBodies holds this
// equivalence.

type renderBuf struct {
	b []byte
}

var renderPool = sync.Pool{
	New: func() any { return &renderBuf{b: make([]byte, 0, 128)} },
}

// render fetches a pooled builder. Pair with done (or release on error
// paths that abandon the body).
func render() *renderBuf {
	return renderPool.Get().(*renderBuf)
}

// s appends a literal string.
func (r *renderBuf) s(v string) *renderBuf {
	r.b = append(r.b, v...)
	return r
}

// i appends an int64 as %d.
func (r *renderBuf) i(v int64) *renderBuf {
	r.b = strconv.AppendInt(r.b, v, 10)
	return r
}

// n appends an int as %d (the len(...) arguments).
func (r *renderBuf) n(v int) *renderBuf {
	r.b = strconv.AppendInt(r.b, int64(v), 10)
	return r
}

// f2 appends a float64 as %.2f.
func (r *renderBuf) f2(v float64) *renderBuf {
	r.b = strconv.AppendFloat(r.b, v, 'f', 2, 64)
	return r
}

// anyS appends an any-typed value as %s would.
func (r *renderBuf) anyS(v any) *renderBuf {
	if s, ok := v.(string); ok {
		r.b = append(r.b, s...)
		return r
	}
	r.b = fmt.Appendf(r.b, "%s", v)
	return r
}

// anyI appends an any-typed value as %d would.
func (r *renderBuf) anyI(v any) *renderBuf {
	if i, ok := v.(int64); ok {
		return r.i(i)
	}
	r.b = fmt.Appendf(r.b, "%d", v)
	return r
}

// anyF2 appends an any-typed value as %.2f would.
func (r *renderBuf) anyF2(v any) *renderBuf {
	if f, ok := v.(float64); ok {
		return r.f2(f)
	}
	r.b = fmt.Appendf(r.b, "%.2f", v)
	return r
}

// done materializes the body as a string and recycles the builder. The
// returned string is safe to retain (it is a fresh copy, not the pooled
// buffer).
func (r *renderBuf) done() string {
	s := string(r.b)
	r.release()
	return s
}

// doneInterned is done() for hot, repetitive bodies: it returns the
// interned canonical string for the rendered bytes (zero conversions on
// a hit) and recycles the builder. Semantically identical to done() —
// same bytes in, same string out — so callers choose purely on body
// temperature: the read-only view ops intern, everything else copies.
func (r *renderBuf) doneInterned() string {
	s := interned.intern(r.b)
	r.release()
	return s
}

// release recycles the builder without materializing a string.
func (r *renderBuf) release() {
	r.b = r.b[:0]
	renderPool.Put(r)
}
