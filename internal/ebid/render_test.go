package ebid

import (
	"fmt"
	"math"
	"testing"
)

// TestRenderGoldenBodies proves the pooled renderer produces bodies
// byte-identical to the fmt.Sprintf formats it replaced, for every op
// body shape — including corrupted column values, where the fmt fallback
// must reproduce the exact "%!s(...)"-style noise the comparison
// detector keys on. The detect.Sampler diffs live bodies against a
// shadow replica, so any drift here would read as divergence.
func TestRenderGoldenBodies(t *testing.T) {
	// Column values as they arrive from db.Row: schema types plus the
	// shapes corruption produces (nil, wrong types).
	anyVals := []any{"alice", "", "item-1", int64(0), int64(-3), nil, 3.5, true}
	intIDs := []int64{0, 1, 7, -2, 1 << 40}
	floats := []float64{0, 0.004, 0.005, 1, 123.456, -0.0049, math.Copysign(0, -1), math.Inf(1), math.NaN()}
	counts := []int{0, 1, 10, 62}

	check := func(name, got, want string) {
		t.Helper()
		if got != want {
			t.Errorf("%s:\n got %q\nwant %q", name, got, want)
		}
	}

	for _, nick := range anyVals {
		for _, id := range intIDs {
			check("welcome",
				render().s("<html>welcome ").anyS(nick).s(" (user ").i(id).s(")</html>").done(),
				fmt.Sprintf("<html>welcome %s (user %d)</html>", nick, id))
			for _, nb := range counts {
				check("aboutme",
					render().s("<html>about user ").i(id).s(" (").anyS(nick).
						s("): ").n(nb).s(" bids, ").n(nb+1).s(" buys</html>").done(),
					fmt.Sprintf("<html>about user %d (%s): %d bids, %d buys</html>", id, nick, nb, nb+1))
			}
		}
	}

	for _, nb := range counts {
		check("categories",
			render().s("<html>").n(nb).s(" categories</html>").done(),
			fmt.Sprintf("<html>%d categories</html>", nb))
		check("regions",
			render().s("<html>").n(nb).s(" regions</html>").done(),
			fmt.Sprintf("<html>%d regions</html>", nb))
	}

	for _, id := range intIDs {
		for _, nb := range counts {
			check("search",
				render().s("<html>search ").s("category").s("=").i(id).s(": ").n(nb).s(" items</html>").done(),
				fmt.Sprintf("<html>search %s=%d: %d items</html>", "category", id, nb))
			check("bidhistory",
				render().s("<html>item ").i(id).s(" bid history: ").n(nb).s(" bids</html>").done(),
				fmt.Sprintf("<html>item %d bid history: %d bids</html>", id, nb))
		}
	}

	// ViewItem / old item: any-typed name, %.2f price, %d bid count.
	for _, name := range anyVals {
		for _, price := range floats {
			check("olditem",
				render().s("<html>old item ").i(9).s(": ").anyS(name).
					s(" sold at ").anyF2(price).s("</html>").done(),
				fmt.Sprintf("<html>old item %d: %s sold at %.2f</html>", int64(9), name, price))
			for _, nbids := range anyVals {
				check("viewitem",
					render().s("<html>item ").i(9).s(": ").anyS(name).
						s(", max bid ").anyF2(price).s(", ").anyI(nbids).s(" bids</html>").done(),
					fmt.Sprintf("<html>item %d: %s, max bid %.2f, %d bids</html>", int64(9), name, price, nbids))
			}
		}
	}

	// Corrupted max_bid (non-float) must render the same fmt noise.
	for _, bad := range anyVals {
		check("viewitem-corrupt",
			render().s("<html>item ").i(1).s(": ").anyS(bad).
				s(", max bid ").anyF2(bad).s(", ").anyI(bad).s(" bids</html>").done(),
			fmt.Sprintf("<html>item %d: %s, max bid %.2f, %d bids</html>", int64(1), bad, bad, bad))
	}

	for _, nick := range anyVals {
		for _, rating := range anyVals {
			check("viewuser",
				render().s("<html>user ").i(3).s(" (").anyS(nick).
					s("), rating ").anyI(rating).s(", ").n(2).s(" comments</html>").done(),
				fmt.Sprintf("<html>user %d (%s), rating %d, %d comments</html>", int64(3), nick, rating, 2))
		}
	}

	for _, id := range intIDs {
		check("bidform",
			render().s("<html>bid form for item ").i(id).s("</html>").done(),
			fmt.Sprintf("<html>bid form for item %d</html>", id))
		for _, amount := range floats {
			check("bidcommit",
				render().s("<html>bid committed on item ").i(id).s(" for ").f2(amount).s("</html>").done(),
				fmt.Sprintf("<html>bid committed on item %d for %.2f</html>", id, amount))
		}
		check("buynowform",
			render().s("<html>buy-now form for item ").i(id).s("</html>").done(),
			fmt.Sprintf("<html>buy-now form for item %d</html>", id))
		check("buynowcommit",
			render().s("<html>purchase committed for item ").i(id).s("</html>").done(),
			fmt.Sprintf("<html>purchase committed for item %d</html>", id))
		check("fbform",
			render().s("<html>feedback form for user ").i(id).s("</html>").done(),
			fmt.Sprintf("<html>feedback form for user %d</html>", id))
		check("fbcommit",
			render().s("<html>feedback committed for user ").i(id).s("</html>").done(),
			fmt.Sprintf("<html>feedback committed for user %d</html>", id))
		check("reguser",
			render().s("<html>registered user ").i(id).s("</html>").done(),
			fmt.Sprintf("<html>registered user %d</html>", id))
		check("regitem",
			render().s("<html>registered item ").i(id).s("</html>").done(),
			fmt.Sprintf("<html>registered item %d</html>", id))
	}
}

// BenchmarkRenderItemBody measures the formatting path alone (the pooled
// builder, recycled without materializing the string): this must be
// 0 allocs/op — the CI alloc gate flags any 0→N move.
func BenchmarkRenderItemBody(b *testing.B) {
	name, maxBid, nbBids := any("gadget"), any(123.45), any(int64(17))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rb := render().s("<html>item ").i(7).s(": ").anyS(name).
			s(", max bid ").anyF2(maxBid).s(", ").anyI(nbBids).s(" bids</html>")
		rb.release()
	}
}

// BenchmarkRenderItemBodyString includes the final []byte→string copy the
// ops pay to hand the body through the any-typed result: 1 alloc/op.
func BenchmarkRenderItemBodyString(b *testing.B) {
	name, maxBid, nbBids := any("gadget"), any(123.45), any(int64(17))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = render().s("<html>item ").i(7).s(": ").anyS(name).
			s(", max bid ").anyF2(maxBid).s(", ").anyI(nbBids).s(" bids</html>").done()
	}
}

// BenchmarkRenderItemBodyFmt is the fmt.Sprintf formatting this replaced,
// kept as the comparison point.
func BenchmarkRenderItemBodyFmt(b *testing.B) {
	name, maxBid, nbBids := any("gadget"), any(123.45), any(int64(17))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = fmt.Sprintf("<html>item %d: %s, max bid %.2f, %d bids</html>", int64(7), name, maxBid, nbBids)
	}
}
