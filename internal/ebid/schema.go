package ebid

import (
	"fmt"

	"repro/internal/store/db"
)

// Table names in the persistence tier.
const (
	TblUsers      = "users"
	TblItems      = "items"
	TblBids       = "bids"
	TblBuys       = "buys"
	TblCategories = "categories"
	TblRegions    = "regions"
	TblOldItems   = "old_items"
	TblFeedback   = "feedback"
	TblIDSeq      = "id_seq"
)

// MaxUserID bounds valid user ids; the primary-key corruption faults use
// values outside this range as "invalid" (type-checks, semantically
// impossible).
const MaxUserID = 1 << 40

// Schemas returns the full eBid database schema.
func Schemas() []db.Schema {
	return []db.Schema{
		{
			Name: TblUsers,
			Columns: []db.Column{
				{Name: "nickname", Type: db.Str},
				{Name: "rating", Type: db.Int},
				{Name: "region", Type: db.Int, Checked: 1, MinInt: 1, MaxInt: 1 << 20},
				{Name: "balance", Type: db.Float},
			},
			Indexes: []string{"region", "nickname"},
		},
		{
			Name: TblItems,
			Columns: []db.Column{
				{Name: "name", Type: db.Str},
				{Name: "seller", Type: db.Int, Checked: 1, MinInt: 1, MaxInt: MaxUserID},
				{Name: "category", Type: db.Int, Checked: 1, MinInt: 1, MaxInt: 1 << 20},
				{Name: "region", Type: db.Int, Checked: 1, MinInt: 1, MaxInt: 1 << 20},
				{Name: "price", Type: db.Float},
				{Name: "max_bid", Type: db.Float},
				{Name: "nb_bids", Type: db.Int},
				{Name: "quantity", Type: db.Int},
			},
			Indexes: []string{"category", "region", "seller"},
		},
		{
			Name: TblBids,
			Columns: []db.Column{
				{Name: "user", Type: db.Int, Checked: 1, MinInt: 1, MaxInt: MaxUserID},
				{Name: "item", Type: db.Int},
				{Name: "amount", Type: db.Float},
			},
			Indexes: []string{"user", "item"},
		},
		{
			Name: TblBuys,
			Columns: []db.Column{
				{Name: "user", Type: db.Int, Checked: 1, MinInt: 1, MaxInt: MaxUserID},
				{Name: "item", Type: db.Int},
				{Name: "quantity", Type: db.Int},
			},
			Indexes: []string{"user", "item"},
		},
		{
			Name: TblCategories,
			Columns: []db.Column{
				{Name: "name", Type: db.Str},
			},
		},
		{
			Name: TblRegions,
			Columns: []db.Column{
				{Name: "name", Type: db.Str},
			},
		},
		{
			Name: TblOldItems,
			Columns: []db.Column{
				{Name: "name", Type: db.Str},
				{Name: "seller", Type: db.Int},
				{Name: "final_price", Type: db.Float},
			},
			Indexes: []string{"seller"},
		},
		{
			Name: TblFeedback,
			Columns: []db.Column{
				{Name: "from_user", Type: db.Int, Checked: 1, MinInt: 1, MaxInt: MaxUserID},
				{Name: "to_user", Type: db.Int, Checked: 1, MinInt: 1, MaxInt: MaxUserID},
				{Name: "rating", Type: db.Int, Checked: 1, MinInt: -5, MaxInt: 5},
				{Name: "comment", Type: db.Str},
			},
			Indexes: []string{"to_user"},
		},
		{
			// id_seq backs the IdentityManager entity: one row per entity
			// kind holding the next application-level primary key. The
			// "corrupt primary keys" faults of Table 2 target this data.
			Name: TblIDSeq,
			Columns: []db.Column{
				{Name: "kind", Type: db.Str},
				{Name: "next", Type: db.Int, Checked: 1, MinInt: 1, MaxInt: MaxUserID},
			},
			Indexes: []string{"kind"},
		},
	}
}

// DatasetConfig scales the synthetic dataset. The paper's dataset was
// 132K items, 1.5M bids and 10K users; the default here is a 1:40 scale
// model with identical shape, so experiments run quickly. Benchmarks that
// want the full-size dataset can ask for it.
type DatasetConfig struct {
	Users       int
	Items       int
	BidsPerItem int
	Categories  int
	Regions     int
	OldItems    int
	Seed        int64
}

// DefaultDataset is the 1:40 scale model of the paper's dataset.
func DefaultDataset() DatasetConfig {
	return DatasetConfig{
		Users:       250,
		Items:       3300,
		BidsPerItem: 11, // 1.5M/132K ≈ 11 bids per item, preserved
		Categories:  20,
		Regions:     62,
		OldItems:    200,
		Seed:        1,
	}
}

// PaperDataset is the full-size dataset of the paper.
func PaperDataset() DatasetConfig {
	return DatasetConfig{
		Users:       10000,
		Items:       132000,
		BidsPerItem: 11,
		Categories:  20,
		Regions:     62,
		OldItems:    10000,
		Seed:        1,
	}
}

// LoadDataset creates the schema and populates the database.
func LoadDataset(d *db.DB, cfg DatasetConfig) error {
	for _, s := range Schemas() {
		if err := d.CreateTable(s); err != nil {
			return err
		}
	}
	tx, err := d.Begin()
	if err != nil {
		return err
	}
	defer func() {
		if !tx.Done() {
			_ = tx.Abort()
		}
	}()

	for i := 1; i <= cfg.Categories; i++ {
		if err := tx.InsertWithKey(TblCategories, int64(i), db.Row{"name": fmt.Sprintf("category-%d", i)}); err != nil {
			return err
		}
	}
	for i := 1; i <= cfg.Regions; i++ {
		if err := tx.InsertWithKey(TblRegions, int64(i), db.Row{"name": fmt.Sprintf("region-%d", i)}); err != nil {
			return err
		}
	}
	for i := 1; i <= cfg.Users; i++ {
		row := db.Row{
			"nickname": fmt.Sprintf("user%d", i),
			"rating":   int64(i % 11),
			"region":   int64(i%cfg.Regions + 1),
			"balance":  float64(100 + i%900),
		}
		if err := tx.InsertWithKey(TblUsers, int64(i), row); err != nil {
			return err
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}

	// Items and bids go in batched transactions to keep memory bounded.
	const batch = 2000
	for lo := 1; lo <= cfg.Items; lo += batch {
		tx, err := d.Begin()
		if err != nil {
			return err
		}
		hi := lo + batch - 1
		if hi > cfg.Items {
			hi = cfg.Items
		}
		for i := lo; i <= hi; i++ {
			row := db.Row{
				"name":     fmt.Sprintf("item-%d", i),
				"seller":   int64(i%cfg.Users + 1),
				"category": int64(i%cfg.Categories + 1),
				"region":   int64(i%cfg.Regions + 1),
				"price":    float64(1 + i%500),
				"max_bid":  float64(1 + i%500),
				"nb_bids":  int64(cfg.BidsPerItem),
				"quantity": int64(1 + i%5),
			}
			if err := tx.InsertWithKey(TblItems, int64(i), row); err != nil {
				_ = tx.Abort()
				return err
			}
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	// A thin slice of explicit bid rows (full 1.5M rows are summarized in
	// items.nb_bids; explicit rows back ViewBidHistory).
	nBids := cfg.Items * cfg.BidsPerItem / 10
	if nBids > 0 {
		for lo := 0; lo < nBids; lo += batch {
			tx, err := d.Begin()
			if err != nil {
				return err
			}
			hi := lo + batch
			if hi > nBids {
				hi = nBids
			}
			for i := lo; i < hi; i++ {
				row := db.Row{
					"user":   int64(i%cfg.Users + 1),
					"item":   int64(i%cfg.Items + 1),
					"amount": float64(1 + i%500),
				}
				if _, err := tx.Insert(TblBids, row); err != nil {
					_ = tx.Abort()
					return err
				}
			}
			if err := tx.Commit(); err != nil {
				return err
			}
		}
	}
	tx, err = d.Begin()
	if err != nil {
		return err
	}
	for i := 1; i <= cfg.OldItems; i++ {
		row := db.Row{
			"name":        fmt.Sprintf("old-item-%d", i),
			"seller":      int64(i%cfg.Users + 1),
			"final_price": float64(1 + i%500),
		}
		if err := tx.InsertWithKey(TblOldItems, int64(i), row); err != nil {
			_ = tx.Abort()
			return err
		}
	}
	// IdentityManager sequence rows.
	for kind, next := range map[string]int64{
		"user": int64(cfg.Users + 1),
		"item": int64(cfg.Items + 1),
		"bid":  int64(nBids + 1),
		"buy":  1,
		"fb":   1,
	} {
		if _, err := tx.Insert(TblIDSeq, db.Row{"kind": kind, "next": next}); err != nil {
			_ = tx.Abort()
			return err
		}
	}
	return tx.Commit()
}
