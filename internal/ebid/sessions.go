package ebid

import (
	"context"
	"errors"
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/store/db"
	"repro/internal/store/session"
)

// invokeEntity performs an inter-component call through the server's
// invocation pipeline, deriving a child call so the whole request shares
// one shepherd: the entity hop inherits this request's context, and a
// kill or lease expiry cancels every hop at once.
func invokeEntity(ctx context.Context, env *core.Env, call *core.Call, entityName, op string, args core.Args) (any, error) {
	child := call.Child(op, args)
	res, err := env.Server.Invoke(ctx, entityName, child)
	// Recycle the child and its typed args, but only if the child was not
	// retained by a kill (Release refuses and reports false in that case —
	// the args then stay reachable from the retained call).
	if child.Release() {
		if ea, ok := args.(*EntityArgs); ok {
			ea.release()
		}
	}
	return res, err
}

// invokeEntityKeys is invokeEntity for the opByIndex sub-operation: the
// entity deposits its key list in the child call's typed result slot, so
// the slice comes back without being boxed through `any`. The res
// fallback keeps map-args (legacy) and fault-injected results working.
func invokeEntityKeys(ctx context.Context, env *core.Env, call *core.Call, entityName string, args core.Args) ([]int64, error) {
	child := call.Child(opByIndex, args)
	res, err := env.Server.Invoke(ctx, entityName, child)
	keys, ok := child.KeysResult()
	if !ok {
		keys, _ = res.([]int64)
	}
	if child.Release() {
		if ea, ok := args.(*EntityArgs); ok {
			ea.release()
		}
	}
	return keys, err
}

// argInt64 reads one int64 operation argument, decoding straight off the
// typed codec when present (no boxing) and falling back to the generic
// path for map-backed args.
func argInt64(call *core.Call, name string) (int64, bool) {
	if a, ok := call.Args.(*OpArgs); ok {
		return a.int64Arg(name)
	}
	return core.Arg[int64](call, name)
}

// argFloat64 is argInt64's float counterpart (the "amount" argument).
func argFloat64(call *core.Call, name string) (float64, bool) {
	if a, ok := call.Args.(*OpArgs); ok {
		if a.Amount != 0 {
			return a.Amount, true
		}
		return 0, false
	}
	return core.Arg[float64](call, name)
}

// sessionStore fetches the session store resource.
func sessionStore(env *core.Env) (session.Store, error) {
	s, ok := core.Resource[session.Store](env, ResourceSessions)
	if !ok {
		return nil, errNoSessionStore
	}
	return s, nil
}

// loadSession reads the caller's session; a missing session surfaces as
// ErrNotLoggedIn (the "prompted to log in when already logged in" symptom
// end users see after session loss).
func loadSession(env *core.Env, call *core.Call) (*session.Session, session.Store, error) {
	store, err := sessionStore(env)
	if err != nil {
		return nil, nil, err
	}
	if call.SessionID == "" {
		return nil, nil, ErrNotLoggedIn
	}
	s, err := store.Read(call.SessionID)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrNotLoggedIn, err)
	}
	if s.UserID <= 0 {
		// Corrupted (nulled or invalidated) session data.
		return nil, nil, fmt.Errorf("ebid: session corrupt: bad userID %d", s.UserID)
	}
	return s, store, nil
}

// sessionComponent implements one end-user operation as a stateless
// session component: its Serve delegates to the op function.
type sessionComponent struct {
	name string
	op   func(ctx context.Context, env *core.Env, call *core.Call) (any, error)
	env  *core.Env
}

func (s *sessionComponent) Init(env *core.Env) error { s.env = env; return nil }
func (s *sessionComponent) Stop() error              { return nil }
func (s *sessionComponent) Serve(ctx context.Context, call *core.Call) (any, error) {
	return s.op(ctx, s.env, call)
}

// Pre-built hot-path errors: these branches fire on every faulty or
// misrouted request under injection campaigns, so they must not allocate
// (fmt.Errorf/errors.New with no dynamic operands build the same string
// every time).
var (
	errNoDatabase       = errors.New("ebid: no database resource")
	errNoSessionStore   = errors.New("ebid: no session store resource")
	errTxAbortedInRecov = errors.New("ebid: transaction aborted during recovery")
	errAuthBadUserID    = errors.New("ebid: Authenticate: bad user id")
	errBidNoItem        = errors.New("ebid: CommitBid: no item selected")
	errBuyNowNoItem     = errors.New("ebid: CommitBuyNow: no item selected")
	errFeedbackNoTarget = errors.New("ebid: CommitUserFeedback: no feedback target")
)

// beginTx starts a transaction on behalf of the named component and
// registers it with the server so that a µRB of the component aborts it.
func beginTx(env *core.Env, name string) (*db.Tx, func(err error) error, error) {
	d, ok := core.Resource[*db.DB](env, ResourceDB)
	if !ok {
		return nil, nil, errNoDatabase
	}
	tx, err := d.Begin()
	if err != nil {
		return nil, nil, err
	}
	env.Server.RegisterTx(name, tx)
	finish := func(opErr error) error {
		if tx.Done() {
			// Aborted under us (µRB rollback).
			env.Server.ReleaseTx(name, tx)
			if opErr == nil {
				opErr = errTxAbortedInRecov
			}
			return opErr
		}
		if opErr != nil {
			aborted := tx.Abort() == nil
			env.Server.ReleaseTx(name, tx)
			if aborted {
				tx.Recycle()
			}
			return opErr
		}
		cerr := tx.Commit()
		// Unregister before recycling: once the Tx goes back to the pool
		// it may be re-begun and re-registered, and the stale
		// registration must not still be present to collide with it.
		env.Server.ReleaseTx(name, tx)
		if cerr != nil {
			return cerr
		}
		tx.Recycle()
		return nil
	}
	return tx, finish, nil
}

// Each op* function below implements one Table 3 stateless session
// component.

func opAuthenticate(ctx context.Context, env *core.Env, call *core.Call) (any, error) {
	userID, ok := argInt64(call, "user")
	if !ok || userID <= 0 {
		return nil, errAuthBadUserID
	}
	res, err := invokeEntity(ctx, env, call, EntUser, opLoad, keyArgs(nil, userID))
	if err != nil {
		return nil, fmt.Errorf("ebid: Authenticate: %w", err)
	}
	row := res.(db.Row)
	store, err := sessionStore(env)
	if err != nil {
		return nil, err
	}
	sess := &session.Session{
		ID:      call.SessionID,
		UserID:  userID,
		Data:    map[string]string{"nickname": row["nickname"].(string)},
		Created: env.Now(),
	}
	if err := store.Write(sess); err != nil {
		return nil, err
	}
	return render().s("<html>welcome ").anyS(row["nickname"]).s(" (user ").i(userID).s(")</html>").done(), nil
}

func opAboutMe(ctx context.Context, env *core.Env, call *core.Call) (any, error) {
	sess, _, err := loadSession(env, call)
	if err != nil {
		return nil, err
	}
	userRes, err := invokeEntity(ctx, env, call, EntUser, opLoad, keyArgs(nil, sess.UserID))
	if err != nil {
		return nil, err
	}
	bids, err := invokeEntityKeys(ctx, env, call, EntBid, byIndexArgs("user", sess.UserID))
	if err != nil {
		return nil, err
	}
	buys, err := invokeEntityKeys(ctx, env, call, BuyNow, byIndexArgs("user", sess.UserID))
	if err != nil {
		return nil, err
	}
	row := userRes.(db.Row)
	call.SetBodyResult(render().s("<html>about user ").i(sess.UserID).s(" (").anyS(row["nickname"]).
		s("): ").n(len(bids)).s(" bids, ").n(len(buys)).s(" buys</html>").doneInterned())
	return core.SlotResult, nil
}

func opBrowseCategories(ctx context.Context, env *core.Env, call *core.Call) (any, error) {
	res, err := invokeEntity(ctx, env, call, EntCategory, opList, listArgs(20))
	if err != nil {
		return nil, err
	}
	call.SetBodyResult(render().s("<html>").n(len(res.([]db.Row))).s(" categories</html>").doneInterned())
	return core.SlotResult, nil
}

func opBrowseRegions(ctx context.Context, env *core.Env, call *core.Call) (any, error) {
	res, err := invokeEntity(ctx, env, call, EntRegion, opList, listArgs(62))
	if err != nil {
		return nil, err
	}
	call.SetBodyResult(render().s("<html>").n(len(res.([]db.Row))).s(" regions</html>").doneInterned())
	return core.SlotResult, nil
}

func searchItems(ctx context.Context, env *core.Env, call *core.Call, col string, argKey string) (any, error) {
	val, ok := argInt64(call, argKey)
	if !ok || val <= 0 {
		val = 1
	}
	ids, err := invokeEntityKeys(ctx, env, call, EntItem, byIndexArgs(col, val))
	if err != nil {
		return nil, err
	}
	shown := len(ids)
	if shown > 10 {
		shown = 10
	}
	// Load the first page of results.
	for _, id := range ids[:shown] {
		if _, err := invokeEntity(ctx, env, call, EntItem, opLoad, keyArgs(nil, id)); err != nil {
			return nil, err
		}
	}
	call.SetBodyResult(render().s("<html>search ").s(col).s("=").i(val).s(": ").n(len(ids)).s(" items</html>").doneInterned())
	return core.SlotResult, nil
}

func opSearchItemsByCategory(ctx context.Context, env *core.Env, call *core.Call) (any, error) {
	return searchItems(ctx, env, call, "category", "category")
}

func opSearchItemsByRegion(ctx context.Context, env *core.Env, call *core.Call) (any, error) {
	return searchItems(ctx, env, call, "region", "region")
}

func opViewItem(ctx context.Context, env *core.Env, call *core.Call) (any, error) {
	itemID, ok := argInt64(call, "item")
	if !ok || itemID <= 0 {
		itemID = 1
	}
	res, err := invokeEntity(ctx, env, call, EntItem, opLoad, keyArgs(nil, itemID))
	if err != nil {
		// Ended auctions move to OldItem.
		old, oldErr := invokeEntity(ctx, env, call, OldItem, opLoad, keyArgs(nil, itemID))
		if oldErr != nil {
			return nil, err
		}
		row := old.(db.Row)
		call.SetBodyResult(render().s("<html>old item ").i(itemID).s(": ").anyS(row["name"]).
			s(" sold at ").anyF2(row["final_price"]).s("</html>").doneInterned())
		return core.SlotResult, nil
	}
	row := res.(db.Row)
	call.SetBodyResult(render().s("<html>item ").i(itemID).s(": ").anyS(row["name"]).
		s(", max bid ").anyF2(row["max_bid"]).s(", ").anyI(row["nb_bids"]).s(" bids</html>").doneInterned())
	return core.SlotResult, nil
}

func opViewUserInfo(ctx context.Context, env *core.Env, call *core.Call) (any, error) {
	userID, ok := argInt64(call, "user")
	if !ok || userID <= 0 {
		userID = 1
	}
	res, err := invokeEntity(ctx, env, call, EntUser, opLoad, keyArgs(nil, userID))
	if err != nil {
		return nil, err
	}
	fb, err := invokeEntityKeys(ctx, env, call, UserFeedback, byIndexArgs("to_user", userID))
	if err != nil {
		return nil, err
	}
	row := res.(db.Row)
	call.SetBodyResult(render().s("<html>user ").i(userID).s(" (").anyS(row["nickname"]).
		s("), rating ").anyI(row["rating"]).s(", ").n(len(fb)).s(" comments</html>").doneInterned())
	return core.SlotResult, nil
}

func opViewBidHistory(ctx context.Context, env *core.Env, call *core.Call) (any, error) {
	itemID, ok := argInt64(call, "item")
	if !ok || itemID <= 0 {
		itemID = 1
	}
	keys, err := invokeEntityKeys(ctx, env, call, EntBid, byIndexArgs("item", itemID))
	if err != nil {
		return nil, err
	}
	call.SetBodyResult(render().s("<html>item ").i(itemID).s(" bid history: ").n(len(keys)).s(" bids</html>").doneInterned())
	return core.SlotResult, nil
}

func opMakeBid(ctx context.Context, env *core.Env, call *core.Call) (any, error) {
	sess, store, err := loadSession(env, call)
	if err != nil {
		return nil, err
	}
	itemID, ok := argInt64(call, "item")
	if !ok || itemID <= 0 {
		itemID = 1
	}
	if _, err := invokeEntity(ctx, env, call, EntItem, opLoad, keyArgs(nil, itemID)); err != nil {
		return nil, err
	}
	sess.Items = append(sess.Items, itemID)
	sess.Data["intent"] = "bid"
	if err := store.Write(sess); err != nil {
		return nil, err
	}
	call.SetBodyResult(render().s("<html>bid form for item ").i(itemID).s("</html>").doneInterned())
	return core.SlotResult, nil
}

func opCommitBid(ctx context.Context, env *core.Env, call *core.Call) (any, error) {
	sess, store, err := loadSession(env, call)
	if err != nil {
		return nil, err
	}
	if len(sess.Items) == 0 {
		return nil, errBidNoItem
	}
	itemID := sess.Items[len(sess.Items)-1]
	amount, ok := argFloat64(call, "amount")
	if !ok || amount <= 0 {
		amount = 1
	}
	tx, finish, err := beginTx(env, CommitBid)
	if err != nil {
		return nil, err
	}
	err = func() error {
		bidID, err := invokeEntity(ctx, env, call, IdentityManager, opNextID, kindArgs(tx, "bid"))
		if err != nil {
			return err
		}
		id, ok := bidID.(int64)
		if !ok || id <= 0 || id > MaxUserID {
			return fmt.Errorf("ebid: CommitBid: bad primary key %v", bidID)
		}
		row := db.Row{"user": sess.UserID, "item": itemID, "amount": amount}
		if _, err := invokeEntity(ctx, env, call, EntBid, opCreate, rowArgs(tx, id, row)); err != nil {
			return err
		}
		itemRes, err := invokeEntity(ctx, env, call, EntItem, opLoad, keyArgs(tx, itemID))
		if err != nil {
			return err
		}
		// Rows from the store are shared and immutable: derive the update
		// on a clone.
		item := itemRes.(db.Row).Clone()
		if amount > item["max_bid"].(float64) {
			item["max_bid"] = amount
		}
		item["nb_bids"] = item["nb_bids"].(int64) + 1
		_, err = invokeEntity(ctx, env, call, EntItem, opUpdate, rowArgs(tx, itemID, item))
		return err
	}()
	if err := finish(err); err != nil {
		return nil, err
	}
	sess.Items = sess.Items[:len(sess.Items)-1]
	delete(sess.Data, "intent")
	_ = store.Write(sess)
	return render().s("<html>bid committed on item ").i(itemID).s(" for ").f2(amount).s("</html>").done(), nil
}

func opDoBuyNow(ctx context.Context, env *core.Env, call *core.Call) (any, error) {
	sess, store, err := loadSession(env, call)
	if err != nil {
		return nil, err
	}
	itemID, ok := argInt64(call, "item")
	if !ok || itemID <= 0 {
		itemID = 1
	}
	if _, err := invokeEntity(ctx, env, call, EntItem, opLoad, keyArgs(nil, itemID)); err != nil {
		return nil, err
	}
	sess.Items = append(sess.Items, itemID)
	sess.Data["intent"] = "buy"
	if err := store.Write(sess); err != nil {
		return nil, err
	}
	call.SetBodyResult(render().s("<html>buy-now form for item ").i(itemID).s("</html>").doneInterned())
	return core.SlotResult, nil
}

func opCommitBuyNow(ctx context.Context, env *core.Env, call *core.Call) (any, error) {
	sess, store, err := loadSession(env, call)
	if err != nil {
		return nil, err
	}
	if len(sess.Items) == 0 {
		return nil, errBuyNowNoItem
	}
	itemID := sess.Items[len(sess.Items)-1]
	tx, finish, err := beginTx(env, CommitBuyNow)
	if err != nil {
		return nil, err
	}
	err = func() error {
		buyID, err := invokeEntity(ctx, env, call, IdentityManager, opNextID, kindArgs(tx, "buy"))
		if err != nil {
			return err
		}
		id, ok := buyID.(int64)
		if !ok || id <= 0 || id > MaxUserID {
			return fmt.Errorf("ebid: CommitBuyNow: bad primary key %v", buyID)
		}
		row := db.Row{"user": sess.UserID, "item": itemID, "quantity": int64(1)}
		if _, err := invokeEntity(ctx, env, call, BuyNow, opCreate, rowArgs(tx, id, row)); err != nil {
			return err
		}
		itemRes, err := invokeEntity(ctx, env, call, EntItem, opLoad, keyArgs(tx, itemID))
		if err != nil {
			return err
		}
		item := itemRes.(db.Row).Clone()
		if q := item["quantity"].(int64); q > 0 {
			item["quantity"] = q - 1
		}
		_, err = invokeEntity(ctx, env, call, EntItem, opUpdate, rowArgs(tx, itemID, item))
		return err
	}()
	if err := finish(err); err != nil {
		return nil, err
	}
	sess.Items = sess.Items[:len(sess.Items)-1]
	delete(sess.Data, "intent")
	_ = store.Write(sess)
	return render().s("<html>purchase committed for item ").i(itemID).s("</html>").done(), nil
}

func opLeaveUserFeedback(ctx context.Context, env *core.Env, call *core.Call) (any, error) {
	sess, store, err := loadSession(env, call)
	if err != nil {
		return nil, err
	}
	target, ok := argInt64(call, "user")
	if !ok || target <= 0 {
		target = 1
	}
	if _, err := invokeEntity(ctx, env, call, EntUser, opLoad, keyArgs(nil, target)); err != nil {
		return nil, err
	}
	sess.Data["fbTarget"] = strconv.FormatInt(target, 10)
	if err := store.Write(sess); err != nil {
		return nil, err
	}
	call.SetBodyResult(render().s("<html>feedback form for user ").i(target).s("</html>").doneInterned())
	return core.SlotResult, nil
}

func opCommitUserFeedback(ctx context.Context, env *core.Env, call *core.Call) (any, error) {
	sess, store, err := loadSession(env, call)
	if err != nil {
		return nil, err
	}
	targetStr, ok := sess.Data["fbTarget"]
	if !ok {
		return nil, errFeedbackNoTarget
	}
	target, err := strconv.ParseInt(targetStr, 10, 64)
	if err != nil || target <= 0 {
		return nil, fmt.Errorf("ebid: CommitUserFeedback: bad target %q", targetStr)
	}
	rating, ok := argInt64(call, "rating")
	if !ok || rating < -5 || rating > 5 {
		rating = 1
	}
	tx, finish, err := beginTx(env, CommitUserFeedback)
	if err != nil {
		return nil, err
	}
	err = func() error {
		fbID, err := invokeEntity(ctx, env, call, IdentityManager, opNextID, kindArgs(tx, "fb"))
		if err != nil {
			return err
		}
		id, ok := fbID.(int64)
		if !ok || id <= 0 || id > MaxUserID {
			return fmt.Errorf("ebid: CommitUserFeedback: bad primary key %v", fbID)
		}
		row := db.Row{"from_user": sess.UserID, "to_user": target, "rating": rating, "comment": "ok"}
		if _, err := invokeEntity(ctx, env, call, UserFeedback, opCreate, rowArgs(tx, id, row)); err != nil {
			return err
		}
		userRes, err := invokeEntity(ctx, env, call, EntUser, opLoad, keyArgs(tx, target))
		if err != nil {
			return err
		}
		user := userRes.(db.Row).Clone()
		user["rating"] = user["rating"].(int64) + rating
		_, err = invokeEntity(ctx, env, call, EntUser, opUpdate, rowArgs(tx, target, user))
		return err
	}()
	if err := finish(err); err != nil {
		return nil, err
	}
	delete(sess.Data, "fbTarget")
	_ = store.Write(sess)
	return render().s("<html>feedback committed for user ").i(target).s("</html>").done(), nil
}

func opRegisterNewUser(ctx context.Context, env *core.Env, call *core.Call) (any, error) {
	region, ok := argInt64(call, "region")
	if !ok || region <= 0 {
		region = 1
	}
	tx, finish, err := beginTx(env, RegisterNewUser)
	if err != nil {
		return nil, err
	}
	var newID int64
	err = func() error {
		idRes, err := invokeEntity(ctx, env, call, IdentityManager, opNextID, kindArgs(tx, "user"))
		if err != nil {
			return err
		}
		id, ok := idRes.(int64)
		if !ok || id <= 0 || id > MaxUserID {
			return fmt.Errorf("ebid: RegisterNewUser: bad primary key %v", idRes)
		}
		newID = id
		row := db.Row{
			"nickname": "user" + strconv.FormatInt(id, 10),
			"rating":   int64(0),
			"region":   region,
			"balance":  float64(100),
		}
		_, err = invokeEntity(ctx, env, call, EntUser, opCreate, rowArgs(tx, id, row))
		return err
	}()
	if err := finish(err); err != nil {
		return nil, err
	}
	// Auto-login the new user.
	store, err := sessionStore(env)
	if err != nil {
		return nil, err
	}
	sess := &session.Session{
		ID:      call.SessionID,
		UserID:  newID,
		Data:    map[string]string{"nickname": "user" + strconv.FormatInt(newID, 10)},
		Created: env.Now(),
	}
	if err := store.Write(sess); err != nil {
		return nil, err
	}
	return render().s("<html>registered user ").i(newID).s("</html>").done(), nil
}

func opRegisterNewItem(ctx context.Context, env *core.Env, call *core.Call) (any, error) {
	sess, _, err := loadSession(env, call)
	if err != nil {
		return nil, err
	}
	category, ok := argInt64(call, "category")
	if !ok || category <= 0 {
		category = 1
	}
	tx, finish, err := beginTx(env, RegisterNewItem)
	if err != nil {
		return nil, err
	}
	var newID int64
	err = func() error {
		idRes, err := invokeEntity(ctx, env, call, IdentityManager, opNextID, kindArgs(tx, "item"))
		if err != nil {
			return err
		}
		id, ok := idRes.(int64)
		if !ok || id <= 0 || id > MaxUserID {
			return fmt.Errorf("ebid: RegisterNewItem: bad primary key %v", idRes)
		}
		newID = id
		row := db.Row{
			"name":     "item-" + strconv.FormatInt(id, 10),
			"seller":   sess.UserID,
			"category": category,
			"region":   int64(1),
			"price":    float64(10),
			"max_bid":  float64(0),
			"nb_bids":  int64(0),
			"quantity": int64(1),
		}
		_, err = invokeEntity(ctx, env, call, EntItem, opCreate, rowArgs(tx, id, row))
		return err
	}()
	if err := finish(err); err != nil {
		return nil, err
	}
	return render().s("<html>registered item ").i(newID).s("</html>").done(), nil
}

// sessionDescriptors returns the deployment descriptors for the 17
// stateless session components.
func sessionDescriptors() []core.Descriptor {
	ops := map[string]func(context.Context, *core.Env, *core.Call) (any, error){
		AboutMe:               opAboutMe,
		Authenticate:          opAuthenticate,
		BrowseCategories:      opBrowseCategories,
		BrowseRegions:         opBrowseRegions,
		CommitBid:             opCommitBid,
		CommitBuyNow:          opCommitBuyNow,
		CommitUserFeedback:    opCommitUserFeedback,
		DoBuyNow:              opDoBuyNow,
		LeaveUserFeedback:     opLeaveUserFeedback,
		MakeBid:               opMakeBid,
		RegisterNewItem:       opRegisterNewItem,
		RegisterNewUser:       opRegisterNewUser,
		SearchItemsByCategory: opSearchItemsByCategory,
		SearchItemsByRegion:   opSearchItemsByRegion,
		ViewBidHistory:        opViewBidHistory,
		ViewUserInfo:          opViewUserInfo,
		ViewItem:              opViewItem,
	}
	// Loose references (resolved through the naming service); these feed
	// the recovery manager's URL→path mapping but do NOT merge recovery
	// groups.
	refs := map[string][]string{
		AboutMe:               {EntUser, EntBid, BuyNow},
		Authenticate:          {EntUser},
		BrowseCategories:      {EntCategory},
		BrowseRegions:         {EntRegion},
		CommitBid:             {IdentityManager, EntBid, EntItem},
		CommitBuyNow:          {IdentityManager, BuyNow, EntItem},
		CommitUserFeedback:    {IdentityManager, UserFeedback, EntUser},
		DoBuyNow:              {EntItem},
		LeaveUserFeedback:     {EntUser},
		MakeBid:               {EntItem},
		RegisterNewItem:       {IdentityManager, EntItem},
		RegisterNewUser:       {IdentityManager, EntUser},
		SearchItemsByCategory: {EntItem},
		SearchItemsByRegion:   {EntItem},
		ViewBidHistory:        {EntBid},
		ViewUserInfo:          {EntUser, UserFeedback},
		ViewItem:              {EntItem, OldItem},
	}
	var out []core.Descriptor
	for name, fn := range ops {
		name, fn := name, fn
		out = append(out, core.Descriptor{
			Name: name,
			Kind: core.StatelessSession,
			Refs: refs[name],
			Factory: func() core.Component {
				return &sessionComponent{name: name, op: fn}
			},
			TxMethods: map[string]core.TxAttr{name: core.TxRequired},
		})
	}
	return out
}
