package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/ebid"
)

// AblationDelayRow is one point of the sentinel-delay sweep.
type AblationDelayRow struct {
	Delay       time.Duration
	FailedPerRB float64
	// EffectiveRecovery is the client-visible recovery window (delay +
	// µRB duration).
	EffectiveRecovery time.Duration
}

// AblationDelayResult analyzes the tradeoff the paper measured at a
// single point (200 ms) but explicitly left unanalyzed: how long to wait
// between binding the recovery sentinel and crashing the component. A
// longer grace delay lets more in-flight requests drain (fewer failures)
// but extends the recovery window. This is an extension beyond the
// paper's evaluation.
type AblationDelayResult struct {
	Component string
	Rows      []AblationDelayRow
	// BestDelay is the smallest delay achieving within 10% of the
	// minimum failure count.
	BestDelay time.Duration
}

// AblationDelay sweeps the sentinel-to-crash delay for µRBs of the given
// component under load, with transparent retries enabled (the Table 6
// configuration).
func AblationDelay(o Options, component string) *AblationDelayResult {
	if component == "" {
		component = ebid.ViewItem
	}
	delays := []time.Duration{0, 50 * time.Millisecond, 100 * time.Millisecond,
		200 * time.Millisecond, 500 * time.Millisecond, time.Second}
	if o.Quick {
		delays = []time.Duration{0, 200 * time.Millisecond, time.Second}
	}
	trials := 10
	if o.Quick {
		trials = 4
	}
	res := &AblationDelayResult{Component: component}
	for _, delay := range delays {
		e := newEnv(o, o.clients(500), useFastS, cluster.NodeConfig{Retry503: true})
		e.emulator.Start()
		e.kernel.RunFor(o.scale(2 * time.Minute))
		before := e.recorder.BadOps()
		var rbDur time.Duration
		for i := 0; i < trials; i++ {
			if delay > 0 {
				if err := e.node.MicrorebootWithDelay(delay, component); err != nil {
					panic(err)
				}
			} else {
				if _, err := e.node.Microreboot(component); err != nil {
					panic(err)
				}
			}
			e.kernel.RunFor(20 * time.Second)
		}
		if c, err := e.node.Server().Container(component); err == nil {
			_ = c
		}
		if info, ok := ebid.Info(component); ok {
			_ = info
		}
		rbDur = ebid.CostModel{}.CrashTime(component) + ebid.CostModel{}.ReinitTime(component)
		e.emulator.Stop()
		e.emulator.FlushActions()
		e.kernel.RunFor(30 * time.Second)
		res.Rows = append(res.Rows, AblationDelayRow{
			Delay:             delay,
			FailedPerRB:       float64(e.recorder.BadOps()-before) / float64(trials),
			EffectiveRecovery: delay + rbDur,
		})
	}
	min := res.Rows[0].FailedPerRB
	for _, r := range res.Rows {
		if r.FailedPerRB < min {
			min = r.FailedPerRB
		}
	}
	for _, r := range res.Rows {
		if r.FailedPerRB <= min*1.1+0.5 {
			res.BestDelay = r.Delay
			break
		}
	}
	return res
}

// String renders the ablation table.
func (r *AblationDelayResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation (extension): sentinel-to-crash delay tradeoff for %s µRBs\n", r.Component)
	fmt.Fprintf(&b, "%10s %16s %20s\n", "delay", "failed per µRB", "effective recovery")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%10s %16.1f %20s\n", row.Delay, row.FailedPerRB, row.EffectiveRecovery)
	}
	fmt.Fprintf(&b, "smallest delay within 10%% of minimum failures: %s (paper used 200 ms untuned)\n", r.BestDelay)
	return b.String()
}
