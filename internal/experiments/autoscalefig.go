package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/controlplane"
	"repro/internal/metrics"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/store/session"
	"repro/internal/workload"
)

// ------------------------------------------------ Autoscaler (extension)

// AutoscaleResult is the control-plane autoscaling experiment: a two-node
// cluster shares a small SSM brick ring while the control plane watches
// per-shard populations. A surge of extra clients arrives; the Autoscaler
// controller — not the experiment — adds a shard once the load sits above
// its high watermark. The surge departs, leases lapse, and the controller
// removes the least-populated shard again. The claim mirrors the elastic
// figure's, with the decisions closed-loop: zero lost sessions and zero
// client-visible failures across both controller-driven ring changes.
type AutoscaleResult struct {
	Nodes                 int
	ShardsBefore          int
	Replicas, WriteQuorum int
	// Watermarks are mean sessions per shard.
	HighWater, LowWater           float64
	BaselineClients, SurgeClients int

	// The controller's resize log, reduced to its headline actions.
	Adds, Removes            int
	AddedShard, RemovedShard int
	AvgAtAdd, AvgAtRemove    float64
	ResizeErrors             int

	// SessionsAtPeak is the population high-water mark observed at the
	// add decision; SessionsAtEnd after the drain.
	SessionsAtPeak, SessionsAtEnd int

	RingVersion     uint64
	Converged       bool
	MigratedEntries int

	// LostAfterGrow/LostAtEnd count sessions unreadable after each
	// controller action settled (claim: 0).
	LostAfterGrow, LostAtEnd int
	// FailuresBefore/FailuresAfter bracket client-visible failures around
	// the whole autoscaling window.
	FailuresBefore, FailuresAfter int64
	TotalRequests                 int64

	// Migration-pacer evidence: the budget range it actually used and how
	// often it backed off under foreground latency.
	PacerMinBudget, PacerMaxBudget int
	PacerBackoffs                  int64
}

// FigureAutoscale runs the closed-loop resize experiment: 2 nodes on a
// shared 2-shard × 3-replica W=2 ring with a short session lease, a
// control plane ticking once a second with an Autoscaler and a
// load-adaptive MigrationPacer, a baseline client population, and a
// surge that arrives and later departs. All AddShard/RemoveShard calls
// come from the controller.
func FigureAutoscale(o Options) *AutoscaleResult {
	baseline := o.clients(60)
	surge := o.clients(600)
	ce := newClusterEnvFull(o, 2, baseline/2, useSharedCluster, cluster.NodeConfig{},
		func(k *sim.Kernel) *session.SSMCluster {
			cl, err := session.NewSSMCluster(session.ClusterConfig{
				Shards: 2, Replicas: 3, WriteQuorum: 2, Now: k.Now, LeaseTTL: time.Hour,
			})
			if err != nil {
				panic("experiments: autoscale cluster: " + err.Error())
			}
			return cl
		}, nil)
	cl := ce.bricks
	cfg := cl.Config()

	// Watermarks from the capacity plan: the surge must sit well above
	// the high water at the initial ring size, the post-drain baseline
	// well below the low water at the grown size.
	peak := float64(baseline + surge)
	res := &AutoscaleResult{
		Nodes:           2,
		ShardsBefore:    len(cl.ShardIDs()),
		Replicas:        cfg.Replicas,
		WriteQuorum:     cfg.WriteQuorum,
		HighWater:       peak / 4,
		LowWater:        peak / 16,
		BaselineClients: baseline,
		SurgeClients:    surge,
	}

	// The control plane: probes sample the ring each tick; the
	// autoscaler resizes it; the pacer adapts the migrator to client
	// latency (fed from the recorder's op tap); the recovery controller
	// keeps the brick-restart path on the same bus.
	plane := controlplane.New(controlplane.Config{Clock: ce.kernel.Now, Cluster: cl})
	scaler := controlplane.NewAutoscaler(cl, controlplane.AutoscalerConfig{
		MinShards: 2, MaxShards: 3,
		HighWater: res.HighWater, LowWater: res.LowWater,
		Sustain: 3, Cooldown: o.scale(time.Minute),
	})
	pacer := controlplane.NewMigrationPacer(cl, controlplane.PacerConfig{
		TargetP95: 80 * time.Millisecond,
	})
	rm := recovery.NewManager(ce.kernel, ce.nodes[0], recovery.Config{Threshold: 3})
	rm.Bricks = cl
	plane.Use(scaler)
	plane.Use(pacer)
	plane.Use(controlplane.NewRecoveryController(rm))
	// The latency tap: every completed op streams off the recorder onto
	// the bus, where the pacer watches the p95.
	ce.recorder.SetOnOp(func(op metrics.Op) {
		plane.ObserveOp(op.Latency(), op.OK)
	})
	pumpPlane(ce.kernel, plane, time.Second)
	pumpReaper(ce.kernel, cl, 15*time.Second)

	// Client monitors and the latency tap publish into the bus.
	ce.emulator.OnFailure(func(clientID int, op string, resp workload.Response) {
		plane.ReportFailure(op, "client-detector")
	})

	// --- baseline ------------------------------------------------------
	ce.emulator.Start()
	ce.kernel.RunFor(o.scale(3 * time.Minute))
	res.FailuresBefore = ce.recorder.BadOps()

	// --- surge arrives: the controller must grow the ring --------------
	ds := experimentDataset(o)
	surgeEm := workload.NewEmulator(ce.kernel, ce.lb, ce.recorder, workload.Config{
		Clients:        surge,
		ClientIDOffset: baseline,
		Users:          int64(ds.Users),
		Items:          int64(ds.Items),
		Categories:     int64(ds.Categories),
		Regions:        int64(ds.Regions),
	})
	surgeEm.OnFailure(func(clientID int, op string, resp workload.Response) {
		plane.ReportFailure(op, "client-detector")
	})
	surgeEm.Start()
	ce.kernel.RunFor(o.scale(6 * time.Minute))

	// Every live session must be readable after the grow settled.
	for _, id := range cl.SessionIDs() {
		if _, err := cl.Read(id); err != nil {
			res.LostAfterGrow++
		}
	}

	// --- surge departs: users log out, the controller must shrink ------
	surgeEm.Drain()
	ce.kernel.RunFor(o.scale(10 * time.Minute))

	ce.emulator.Stop()
	ce.emulator.FlushActions()
	surgeEm.FlushActions()
	ce.kernel.RunFor(30 * time.Second)

	for _, id := range cl.SessionIDs() {
		if _, err := cl.Read(id); err != nil {
			res.LostAtEnd++
		}
	}
	res.SessionsAtEnd = cl.Len()
	res.FailuresAfter = ce.recorder.BadOps()
	res.TotalRequests = ce.recorder.GoodOps() + ce.recorder.BadOps()
	res.RingVersion = cl.RingVersion()
	res.Converged = !cl.Migrating()
	res.MigratedEntries = cl.MigratedEntries()

	for _, act := range scaler.Actions {
		if act.Err != "" {
			res.ResizeErrors++
			continue
		}
		if act.Added {
			res.Adds++
			res.AddedShard = act.Shard
			res.AvgAtAdd = act.AvgLoad
			res.SessionsAtPeak = int(act.AvgLoad * float64(res.ShardsBefore))
		} else {
			res.Removes++
			res.RemovedShard = act.Shard
			res.AvgAtRemove = act.AvgLoad
		}
	}
	st := pacer.Status().(controlplane.PacerStatus)
	res.PacerMinBudget = st.MinUsed
	res.PacerMaxBudget = st.MaxUsed
	res.PacerBackoffs = st.Backoffs
	return res
}

// String renders the autoscaling summary.
func (r *AutoscaleResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Control-plane autoscaling (extension): %d-node cluster on a %d-shard × %d brick ring, W=%d\n",
		r.Nodes, r.ShardsBefore, r.Replicas, r.WriteQuorum)
	fmt.Fprintf(&b, "watermarks: add above %.0f sessions/shard, remove below %.0f; clients %d baseline + %d surge\n",
		r.HighWater, r.LowWater, r.BaselineClients, r.SurgeClients)
	fmt.Fprintf(&b, "grow:   controller added shard %d at %.0f sessions/shard (~%d sessions); lost after: %d (claim: 0)\n",
		r.AddedShard, r.AvgAtAdd, r.SessionsAtPeak, r.LostAfterGrow)
	fmt.Fprintf(&b, "shrink: controller removed shard %d at %.0f sessions/shard; lost at end: %d (claim: 0)\n",
		r.RemovedShard, r.AvgAtRemove, r.LostAtEnd)
	fmt.Fprintf(&b, "resizes: %d add / %d remove (errors: %d); ring generation %d; migration converged: %v (%d entries)\n",
		r.Adds, r.Removes, r.ResizeErrors, r.RingVersion, r.Converged, r.MigratedEntries)
	fmt.Fprintf(&b, "migration pacer: budget ranged %d..%d entries/step, %d latency backoffs\n",
		r.PacerMinBudget, r.PacerMaxBudget, r.PacerBackoffs)
	fmt.Fprintf(&b, "client-visible failures across both resizes: %d (claim: 0; %d requests total)\n",
		r.FailuresAfter-r.FailuresBefore, r.TotalRequests)
	fmt.Fprintf(&b, "sessions at end (post-drain): %d\n", r.SessionsAtEnd)
	return b.String()
}
