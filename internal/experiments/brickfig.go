package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/controlplane"
	"repro/internal/faults"
	"repro/internal/recovery"
)

// --------------------------------------------------- Brick crash (extension)

// BrickCrashResult is the brick-crash-under-load experiment: one SSM
// brick of an S×N cluster is crashed mid-run while emulated clients keep
// hammering the application. The paper's decoupling claim predicts zero
// lost sessions and zero client-visible failures as long as each shard
// keeps a write quorum (the surviving N-1 replicas), and a brick restart
// plus re-replication restores full redundancy.
type BrickCrashResult struct {
	Shards, Replicas, WriteQuorum int
	// CrashedBrick is the victim; EntriesLost is its replica state lost.
	CrashedBrick string
	EntriesLost  int
	// SessionsAtCrash is the live-session population when the brick died;
	// LostSessions counts those unreadable right after the crash.
	SessionsAtCrash int
	LostSessions    int
	// FailuresBefore/FailuresAfter bracket client-visible failures around
	// the crash window; the delta is the experiment's headline number.
	FailuresBefore, FailuresAfter int64
	// Detection + recovery: the RM restarts the brick after heartbeat
	// loss crosses its threshold.
	DetectedAt, RecoveredAt time.Duration
	CrashAt                 time.Duration
	BrickRestarted          bool
	// RestoredEntries is the victim's population after re-replication.
	RestoredEntries int
	// TotalRequests over the run (for rate context).
	TotalRequests int64
}

// FigureBrickCrash runs the brick-crash-under-load experiment on a
// single node backed by a 4×3 brick cluster with W=2: warm up, crash one
// brick under load, let a heartbeat monitor feed the recovery manager,
// and measure session loss and client-visible failures.
func FigureBrickCrash(o Options) *BrickCrashResult {
	e := newEnv(o, o.clients(500), useSSMCluster, cluster.NodeConfig{})
	cl := e.bricks
	cfg := cl.Config()
	res := &BrickCrashResult{Shards: cfg.Shards, Replicas: cfg.Replicas, WriteQuorum: cfg.WriteQuorum}

	// Recovery manager with the brick store attached, fed through the
	// control plane: the plane's brick probe publishes heartbeat loss
	// once a second and the recovery controller forwards it into the
	// manager's diagnosis (detection latency is threshold × tick).
	rm := recovery.NewManager(e.kernel, e.node, recovery.Config{Threshold: 3})
	rm.Bricks = cl
	plane := controlplane.New(controlplane.Config{Clock: e.kernel.Now, Cluster: cl})
	plane.Use(controlplane.NewRecoveryController(rm))
	pumpPlane(e.kernel, plane, time.Second)

	e.emulator.Start()
	warm := o.scale(3 * time.Minute)
	e.kernel.RunFor(warm)

	// Crash the most loaded brick under full client load.
	victim := cl.Bricks()[0]
	for _, b := range cl.Bricks() {
		if b.Len() > victim.Len() {
			victim = b
		}
	}
	res.CrashedBrick = victim.Name()
	res.CrashAt = e.kernel.Now()
	res.FailuresBefore = e.recorder.BadOps()
	ids := cl.SessionIDs()
	res.SessionsAtCrash = len(ids)
	res.EntriesLost = victim.Len()
	if _, err := e.injector.Inject(faults.Spec{Kind: faults.BrickCrash, Component: victim.Name()}); err != nil {
		panic("experiments: brick crash: " + err.Error())
	}
	// Zero-session-loss check: every pre-crash session must still be
	// readable from the surviving replicas, before any recovery runs.
	for _, id := range ids {
		if _, err := cl.Read(id); err != nil {
			res.LostSessions++
		}
	}

	// Keep the load running through detection, restart and re-replication.
	e.kernel.RunFor(o.scale(3 * time.Minute))
	e.emulator.Stop()
	e.emulator.FlushActions()
	e.kernel.RunFor(30 * time.Second)

	res.FailuresAfter = e.recorder.BadOps()
	res.TotalRequests = e.recorder.GoodOps() + e.recorder.BadOps()
	res.BrickRestarted = victim.Up() && victim.Restarts() == 1
	res.RestoredEntries = victim.Len()
	for _, a := range rm.Actions {
		if a.Target == "ssm-bricks" {
			res.DetectedAt = a.At
			res.RecoveredAt = a.At + a.Reboot.Duration()
			break
		}
	}
	return res
}

// String renders the brick-crash summary.
func (r *BrickCrashResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Brick crash under load (extension): %d×%d brick cluster, write quorum W=%d\n",
		r.Shards, r.Replicas, r.WriteQuorum)
	fmt.Fprintf(&b, "crashed %s at t=%v holding %d entries (%d live sessions cluster-wide)\n",
		r.CrashedBrick, r.CrashAt.Round(time.Second), r.EntriesLost, r.SessionsAtCrash)
	fmt.Fprintf(&b, "sessions lost to the crash:        %d (claim: 0)\n", r.LostSessions)
	fmt.Fprintf(&b, "client-visible failures in window: %d (claim: 0; %d requests total)\n",
		r.FailuresAfter-r.FailuresBefore, r.TotalRequests)
	if r.BrickRestarted {
		fmt.Fprintf(&b, "RM restarted the brick: detected t=%v, re-replicated %d entries by t=%v\n",
			r.DetectedAt.Round(time.Second), r.RestoredEntries, r.RecoveredAt.Round(time.Second))
	} else {
		fmt.Fprintf(&b, "brick was NOT restarted (detection failed?)\n")
	}
	return b.String()
}
