package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/store/session"
)

// ------------------------------------------------ Brick slow (extension)

// brickSlowRun is the latency view of one fail-stutter run: successful-
// operation response-time percentiles before and after the brick
// degrades, plus the cluster's routing counters.
type brickSlowRun struct {
	BaseP50, BaseP95, BaseP99 time.Duration
	SlowP50, SlowP95, SlowP99 time.Duration
	BaseMean, SlowMean        time.Duration
	SlowServed, Bypasses      int
	Failures                  int64
}

// BrickSlowResult is the fail-stutter experiment: one SSM brick of the
// cluster degrades (it answers, but late — the fail-stutter model of
// Ling et al.'s bricks) while emulated clients keep hammering the
// application. With the cluster's slow-replica read routing enabled,
// reads bypass the degraded brick and the client latency distribution
// holds; with routing disabled, every session whose shard's first
// replica is the slow brick pays the stutter, and the latency tail
// collapses.
type BrickSlowResult struct {
	Shards, Replicas, WriteQuorum int
	SlowBrick                     string
	Penalty                       time.Duration

	Routed, Unrouted brickSlowRun
}

// runBrickSlow runs one mode of the fail-stutter experiment.
func runBrickSlow(o Options, routed bool, res *BrickSlowResult) brickSlowRun {
	e := newEnv(o, o.clients(500), useSSMCluster, cluster.NodeConfig{})
	cl := e.bricks
	cl.SetSlowReadRouting(routed)
	cfg := cl.Config()
	res.Shards, res.Replicas, res.WriteQuorum = cfg.Shards, cfg.Replicas, cfg.WriteQuorum

	// Tap successful-op latencies into before/after sample sets around
	// the injection instant.
	warm := o.scale(3 * time.Minute)
	measure := o.scale(3 * time.Minute)
	var base, slow []time.Duration
	e.recorder.SetOnOp(func(op metrics.Op) {
		if !op.OK {
			return
		}
		if op.End < warm {
			base = append(base, op.Latency())
		} else {
			slow = append(slow, op.Latency())
		}
	})

	e.emulator.Start()
	e.kernel.RunFor(warm)

	// Degrade replica 0 of shard 0: the natural-order read head, so the
	// unrouted baseline pays the stutter on every shard-0 session.
	res.SlowBrick = "ssm/s0-r0"
	res.Penalty = session.SlowBrickPenalty
	if _, err := e.injector.Inject(faults.Spec{Kind: faults.BrickSlow, Component: res.SlowBrick}); err != nil {
		panic("experiments: brick slow: " + err.Error())
	}
	failuresAtInject := e.recorder.BadOps()
	e.kernel.RunFor(measure)
	e.emulator.Stop()
	e.emulator.FlushActions()
	e.kernel.RunFor(30 * time.Second)

	run := brickSlowRun{
		BaseP50:    metrics.ExactQuantile(base, 0.50),
		BaseP95:    metrics.ExactQuantile(base, 0.95),
		BaseP99:    metrics.ExactQuantile(base, 0.99),
		SlowP50:    metrics.ExactQuantile(slow, 0.50),
		SlowP95:    metrics.ExactQuantile(slow, 0.95),
		SlowP99:    metrics.ExactQuantile(slow, 0.99),
		BaseMean:   meanDuration(base),
		SlowMean:   meanDuration(slow),
		SlowServed: cl.SlowServedReads(),
		Bypasses:   cl.SlowBypasses(),
		Failures:   e.recorder.BadOps() - failuresAtInject,
	}
	return run
}

func meanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// FigureBrickSlow runs the fail-stutter experiment twice — slow-replica
// read routing on, then off — on a single node backed by the standard
// 4×3 W=2 brick cluster.
func FigureBrickSlow(o Options) *BrickSlowResult {
	res := &BrickSlowResult{}
	res.Routed = runBrickSlow(o, true, res)
	res.Unrouted = runBrickSlow(o, false, res)
	return res
}

// String renders the fail-stutter comparison.
func (r *BrickSlowResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fail-stutter brick (extension): %d×%d brick cluster, W=%d; %s degraded (+%v per stuttered read)\n",
		r.Shards, r.Replicas, r.WriteQuorum, r.SlowBrick, r.Penalty)
	fmt.Fprintf(&b, "%-28s %14s %14s\n", "successful-op latency", "routing on", "routing off")
	row := func(name string, on, off time.Duration) {
		fmt.Fprintf(&b, "%-28s %14v %14v\n", name, on.Round(time.Millisecond), off.Round(time.Millisecond))
	}
	row("p50 before degradation", r.Routed.BaseP50, r.Unrouted.BaseP50)
	row("p50 while degraded", r.Routed.SlowP50, r.Unrouted.SlowP50)
	row("p95 before degradation", r.Routed.BaseP95, r.Unrouted.BaseP95)
	row("p95 while degraded", r.Routed.SlowP95, r.Unrouted.SlowP95)
	row("p99 before degradation", r.Routed.BaseP99, r.Unrouted.BaseP99)
	row("p99 while degraded", r.Routed.SlowP99, r.Unrouted.SlowP99)
	row("mean while degraded", r.Routed.SlowMean, r.Unrouted.SlowMean)
	fmt.Fprintf(&b, "reads served by the slow brick: %d (routing on) vs %d (routing off); bypasses: %d\n",
		r.Routed.SlowServed, r.Unrouted.SlowServed, r.Routed.Bypasses)
	fmt.Fprintf(&b, "client-visible failures while degraded: %d / %d (fail-stutter, not fail-stop: claim 0 both)\n",
		r.Routed.Failures, r.Unrouted.Failures)
	return b.String()
}
