package experiments

// CatalogEntry names one experiment id accepted by cmd/experiments -only,
// with a one-line description for -list.
type CatalogEntry struct {
	ID          string
	Description string
}

// Catalog enumerates every figure/table id the runner knows, in the
// order the full suite prints them.
func Catalog() []CatalogEntry {
	return []CatalogEntry{
		{"table1", "workload operation mix of the emulated auction site"},
		{"table2", "fault kinds vs detection/recovery outcome"},
		{"table3", "recovery time: microreboot vs JVM restart vs node reboot"},
		{"figure1", "failed user actions during fault + recovery, by recovery kind"},
		{"figure2", "goodput timeline around a fault, microreboot vs restart"},
		{"figure3", "cluster goodput under rolling faults, with/without microreboots"},
		{"figure4", "failover + microreboot vs failover + restart (also table4)"},
		{"table5", "disk-backed vs SSM session state under recovery"},
		{"table6", "fault-model coverage summary"},
		{"figure5", "recovery cost vs cluster size; amortized engineering cost"},
		{"figure6", "proactive rolling rejuvenation vs reactive recovery"},
		{"ablation", "extension: sentinel-to-crash detection delay sweep"},
		{"brickcrash", "extension: SSM brick crash under load, zero lost sessions"},
		{"elastic", "extension: elastic ring shard add/remove under load"},
		{"autoscale", "extension: control-plane autoscaler resizes the ring under a surge"},
		{"brickslow", "extension: fail-stutter brick with/without slow-replica routing"},
		{"fleet", "extension: shedding + least-loaded routing vs static round-robin"},
		{"section61", "section 6.1 cost/benefit arithmetic from measured results"},
	}
}
