package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/ebid"
	"repro/internal/faults"
)

// ---------------------------------------------------------------- Figure 3

// Figure3Row is one cluster size's failover outcome.
type Figure3Row struct {
	Nodes int
	// Failed requests and sessions failed over, for both recovery modes.
	MicroFailed, RestartFailed     int64
	MicroSessions, RestartSessions int
	// Percent of total requests failed.
	MicroPct, RestartPct float64
}

// Figure3Result is failover under normal load across cluster sizes.
type Figure3Result struct{ Rows []Figure3Row }

// Figure3 runs the failover experiment: a µRB-curable fault in the most
// frequently called component of one node; the load balancer redirects
// that node's traffic while it recovers. With the default FastS store,
// session state is node local, so redirected session requests fail;
// Options.ClusterStore = "ssm-cluster" reruns the figure with a
// cross-node SSM brick cluster whose sessions survive the failover (the
// paper's §6.1 SSM variant).
func Figure3(o Options) *Figure3Result {
	sizes := []int{2, 4, 6, 8}
	if o.Quick {
		sizes = []int{2, 4}
	}
	res := &Figure3Result{}
	for _, n := range sizes {
		micro, microSess, microTotal := runFigure3(o, n, false)
		restart, restartSess, restartTotal := runFigure3(o, n, true)
		row := Figure3Row{
			Nodes:           n,
			MicroFailed:     micro,
			RestartFailed:   restart,
			MicroSessions:   microSess,
			RestartSessions: restartSess,
		}
		if microTotal > 0 {
			row.MicroPct = 100 * float64(micro) / float64(microTotal)
		}
		if restartTotal > 0 {
			row.RestartPct = 100 * float64(restart) / float64(restartTotal)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

func runFigure3(o Options, nNodes int, useRestart bool) (failed int64, sessionsFailedOver int, total int64) {
	ce := newClusterEnv(o, nNodes, o.clients(500), o.clusterKind())
	ce.fleetPlane(controlplane.FleetConfig{})
	ce.emulator.Start()
	warm := o.scale(3 * time.Minute)
	ce.kernel.RunFor(warm)

	bad := ce.nodes[0]
	// Inject the µRB-curable fault and recover with failover.
	if _, err := ce.injectors[0].Inject(faults.Spec{
		Kind: faults.TransientException, Component: ebid.BrowseCategories,
	}); err != nil {
		panic(err)
	}
	// Detection latency before RM notices and announces recovery on the
	// bus; the fleet controller drains the node's traffic.
	ce.kernel.RunFor(2 * time.Second)
	ce.lb.ResetFailoverStats()
	ce.plane.ReportNodeRecovery(bad.Name, true)
	var rb *core.Reboot
	var err error
	if useRestart {
		rb, err = bad.RebootScope(core.ScopeProcess)
	} else {
		rb, err = bad.Microreboot(ebid.BrowseCategories)
	}
	if err != nil {
		panic(err)
	}
	ce.kernel.Schedule(rb.Duration(), func() { ce.plane.ReportNodeRecovery(bad.Name, false) })

	ce.kernel.RunFor(o.scale(10*time.Minute) - warm - 2*time.Second)
	ce.emulator.Stop()
	ce.emulator.FlushActions()
	ce.kernel.RunFor(30 * time.Second)
	return ce.recorder.BadOps(), ce.lb.SessionsFailedOver(),
		ce.recorder.GoodOps() + ce.recorder.BadOps()
}

// String renders the failover table.
func (r *Figure3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: failover under normal load (paper: µRB ≈162, restart ≈2,280 failed requests)\n")
	fmt.Fprintf(&b, "%6s %12s %12s %14s %14s %10s %10s\n",
		"nodes", "µRB failed", "rst failed", "µRB sessions", "rst sessions", "µRB %", "rst %")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d %12d %12d %14d %14d %9.2f%% %9.2f%%\n",
			row.Nodes, row.MicroFailed, row.RestartFailed,
			row.MicroSessions, row.RestartSessions, row.MicroPct, row.RestartPct)
	}
	return b.String()
}

// ------------------------------------------------------ Figure 4 / Table 4

// Figure4Row is one cluster size's doubled-load failover outcome.
type Figure4Row struct {
	Nodes int
	// Peak mean response time during the recovery window, per mode.
	MicroPeak, RestartPeak time.Duration
	// Requests exceeding 8 s (Table 4).
	MicroOver8s, RestartOver8s int64
	// Response-time series (1-second buckets) for plotting.
	MicroSeries, RestartSeries []time.Duration
}

// Figure4Result is failover under doubled load (plus Table 4's >8 s
// counts).
type Figure4Result struct {
	Rows []Figure4Row
	// PaperOver8s reproduces Table 4 for reference.
	PaperRestartOver8s map[int]int
	PaperMicroOver8s   map[int]int
}

// Figure4 doubles the client population (1,000/node), lets the cluster
// stabilize, then fails one node over during recovery and tracks response
// times.
func Figure4(o Options) *Figure4Result {
	sizes := []int{2, 4, 6, 8}
	if o.Quick {
		sizes = []int{2, 4}
	}
	res := &Figure4Result{
		PaperRestartOver8s: map[int]int{2: 3227, 4: 530, 6: 55, 8: 9},
		PaperMicroOver8s:   map[int]int{2: 3, 4: 0, 6: 0, 8: 0},
	}
	for _, n := range sizes {
		mp, mo, ms := runFigure4(o, n, false)
		rp, ro, rs := runFigure4(o, n, true)
		res.Rows = append(res.Rows, Figure4Row{
			Nodes:     n,
			MicroPeak: mp, RestartPeak: rp,
			MicroOver8s: mo, RestartOver8s: ro,
			MicroSeries: ms, RestartSeries: rs,
		})
	}
	return res
}

func runFigure4(o Options, nNodes int, useRestart bool) (peak time.Duration, over8s int64, series []time.Duration) {
	// The overload dynamics require the full doubled population (the
	// paper's point is that a redirected node's worth of load pushes the
	// remaining nodes past saturation at small cluster sizes), so quick
	// mode shortens only the timeline, not the client count. Worker
	// pools are sized so per-node capacity sits just above the doubled
	// per-node load — the regime the paper's un-admission-controlled
	// servers operate in.
	ce := newClusterEnvCfg(o, nNodes, 1000, o.clusterKind(), cluster.NodeConfig{Workers: 4, CongestionScale: 400})
	ce.fleetPlane(controlplane.FleetConfig{})
	ce.emulator.Start()
	// Let the system stabilize at the higher load before injecting
	// (the paper extends the run to 13 minutes for this reason).
	warm := o.scale(5 * time.Minute)
	ce.kernel.RunFor(warm)

	bad := ce.nodes[0]
	if _, err := ce.injectors[0].Inject(faults.Spec{
		Kind: faults.TransientException, Component: ebid.BrowseCategories,
	}); err != nil {
		panic(err)
	}
	ce.kernel.RunFor(2 * time.Second)
	ce.plane.ReportNodeRecovery(bad.Name, true)
	var rb *core.Reboot
	var err error
	if useRestart {
		rb, err = bad.RebootScope(core.ScopeProcess)
	} else {
		rb, err = bad.Microreboot(ebid.BrowseCategories)
	}
	if err != nil {
		panic(err)
	}
	ce.kernel.Schedule(rb.Duration(), func() { ce.plane.ReportNodeRecovery(bad.Name, false) })

	ce.kernel.RunFor(o.scale(13*time.Minute) - warm - 2*time.Second)
	ce.emulator.Stop()
	ce.emulator.FlushActions()
	ce.kernel.RunFor(time.Minute)

	series = ce.recorder.MeanLatencySeries()
	for _, d := range series {
		if d > peak {
			peak = d
		}
	}
	return peak, ce.recorder.OverThreshold(), series
}

// String renders the doubled-load summary.
func (r *Figure4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: failover under doubled load — peak 1-sec mean response time\n")
	fmt.Fprintf(&b, "%6s %14s %14s\n", "nodes", "microreboot", "restart")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d %14s %14s\n", row.Nodes,
			row.MicroPeak.Round(time.Millisecond), row.RestartPeak.Round(time.Millisecond))
	}
	fmt.Fprintf(&b, "\nTable 4: requests exceeding 8 s during failover under doubled load\n")
	fmt.Fprintf(&b, "%6s %12s %12s %16s %16s\n", "nodes", "µRB", "restart", "paper µRB", "paper restart")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d %12d %12d %16d %16d\n", row.Nodes,
			row.MicroOver8s, row.RestartOver8s,
			r.PaperMicroOver8s[row.Nodes], r.PaperRestartOver8s[row.Nodes])
	}
	return b.String()
}

// Table4 returns the >8 s counts (it shares Figure 4's run).
func Table4(o Options) *Figure4Result { return Figure4(o) }

// ---------------------------------------------------------------- §6.1

// Section61Result compares failover schemes and derives the six-nines
// failure budgets of Sections 5.3 and 6.1.
type Section61Result struct {
	// FailoverMicroFailed: failover + µRB (Figure 3 scheme).
	FailoverMicroFailed int64
	// NoFailoverMicroFailed: µRB without failover (requests keep
	// flowing to the recovering node).
	NoFailoverMicroFailed int64
	// Six-nines budgets: allowed single-node failures per year for a
	// 24-node cluster at 99.9999% request success.
	BudgetRestart, BudgetFailoverMicro, BudgetNoFailoverMicro int
	// Inputs to the budget computation.
	ReqPerYear      float64
	AllowedFailures float64
	PerRestart      float64
}

// Section61 measures µRB-without-failover vs failover+µRB on a 2-node
// cluster and recomputes the paper's six-nines failure budgets.
func Section61(o Options, fig1 *Figure1Result, fig3 *Figure3Result) *Section61Result {
	res := &Section61Result{}
	// µRB without failover: same setup as Figure 3 but LB keeps routing
	// to the recovering node, which serves everything except the
	// µRB-affected component.
	ce := newClusterEnv(o, 2, o.clients(500), o.clusterKind())
	ce.lb.Failover = false
	ce.emulator.Start()
	ce.kernel.RunFor(o.scale(3 * time.Minute))
	if _, err := ce.injectors[0].Inject(faults.Spec{
		Kind: faults.TransientException, Component: ebid.BrowseCategories,
	}); err != nil {
		panic(err)
	}
	ce.kernel.RunFor(2 * time.Second)
	if _, err := ce.nodes[0].Microreboot(ebid.BrowseCategories); err != nil {
		panic(err)
	}
	ce.kernel.RunFor(o.scale(7 * time.Minute))
	ce.emulator.Stop()
	ce.emulator.FlushActions()
	res.NoFailoverMicroFailed = ce.recorder.BadOps()
	if len(fig3.Rows) > 0 {
		res.FailoverMicroFailed = fig3.Rows[0].MicroFailed
	}

	// Six-nines budget, as computed in the paper: the measured 8-node
	// cluster throughput extrapolated to 24 nodes and one year.
	res.ReqPerYear = 53.3e9
	res.AllowedFailures = res.ReqPerYear * 1e-6 // 53.3e3
	res.PerRestart = fig1.RestartAvgPerRecovery
	if res.PerRestart > 0 {
		res.BudgetRestart = int(res.AllowedFailures / res.PerRestart)
	}
	if res.FailoverMicroFailed > 0 {
		res.BudgetFailoverMicro = int(res.AllowedFailures / float64(res.FailoverMicroFailed))
	}
	perNoFailover := fig1.MicroAvgPerRecovery
	if perNoFailover > 0 {
		res.BudgetNoFailoverMicro = int(res.AllowedFailures / perNoFailover)
	}
	return res
}

// String renders the failover-scheme comparison.
func (r *Section61Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 6.1: alternative failover schemes\n")
	fmt.Fprintf(&b, "failover + µRB failed requests:    %d (paper: 162)\n", r.FailoverMicroFailed)
	fmt.Fprintf(&b, "µRB without failover failed reqs:  %d (paper: 78)\n", r.NoFailoverMicroFailed)
	fmt.Fprintf(&b, "six-nines budget, 24-node cluster (%.1e requests/year, %.0f may fail):\n",
		r.ReqPerYear, r.AllowedFailures)
	fmt.Fprintf(&b, "  JVM restarts:        %5d failures/year (paper: 23)\n", r.BudgetRestart)
	fmt.Fprintf(&b, "  failover + µRB:      %5d failures/year (paper: 329)\n", r.BudgetFailoverMicro)
	fmt.Fprintf(&b, "  µRB, no failover:    %5d failures/year (paper: 683)\n", r.BudgetNoFailoverMicro)
	return b.String()
}
