package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
)

// ------------------------------------------------ Elastic ring (extension)

// ElasticResult is the elastic-SSM experiment: a two-node cluster shares
// one SSM brick ring; under full client load a shard is added to the
// ring and, once its migration converges, one of the original shards is
// removed and drained. The SSM's elasticity claim predicts both ring
// changes are invisible to clients: zero sessions lost and zero
// client-visible request failures, with the background migrator moving
// entries between shards while the workload keeps running.
type ElasticResult struct {
	Nodes                 int
	ShardsBefore          int
	Replicas, WriteQuorum int

	// AddedShard / RemovedShard identify the two ring changes.
	AddedShard, RemovedShard int
	// RingVersion counts generations: 1 at start, 3 after add + remove.
	RingVersion uint64

	// SessionsAtAdd is the live population when the shard was added;
	// LostAtAdd counts those unreadable immediately after the ring change
	// (dual-read should mask the not-yet-migrated majority).
	SessionsAtAdd, LostAtAdd int
	// AddConverged: the migrator finished before the next phase;
	// MigratedAdd is its cumulative entry count; NewShardEntries is the
	// new shard's population after converging (non-vacuity check);
	// LostAfterAdd counts sessions unreadable after convergence.
	AddConverged    bool
	MigratedAdd     int
	NewShardEntries int
	LostAfterAdd    int

	// The same numbers for the shard-removal drain.
	SessionsAtRemove, LostAtRemove int
	RemoveConverged                bool
	MigratedRemove                 int
	RetiredBricks                  int
	LostAfterRemove                int

	// FailuresBefore/FailuresAfter bracket client-visible failures around
	// the whole elastic window; the delta is the headline number.
	FailuresBefore, FailuresAfter int64
	// TotalRequests over the run (for rate context).
	TotalRequests int64
}

// FigureElastic runs the elastic-ring experiment: a 2-node cluster on a
// shared 4×3 W=2 brick ring, a shard added under load, then an original
// shard removed and drained under load, with a background migrator
// pumping entries between owners throughout.
func FigureElastic(o Options) *ElasticResult {
	ce := newClusterEnvCfg(o, 2, o.clients(500), useSharedCluster, cluster.NodeConfig{})
	cl := ce.bricks
	cfg := cl.Config()
	res := &ElasticResult{
		Nodes:        2,
		ShardsBefore: len(cl.ShardIDs()),
		Replicas:     cfg.Replicas,
		WriteQuorum:  cfg.WriteQuorum,
	}
	// The background migrator: a recurring simulation event, the analog
	// of the live server's migration goroutine.
	pumpMigration(ce.kernel, cl, 50*time.Millisecond, 128)

	ce.emulator.Start()
	ce.kernel.RunFor(o.scale(2 * time.Minute))
	res.FailuresBefore = ce.recorder.BadOps()

	// --- grow: add a shard under load -----------------------------------
	idsAtAdd := cl.SessionIDs()
	res.SessionsAtAdd = len(idsAtAdd)
	shard, err := cl.AddShard()
	if err != nil {
		panic("experiments: AddShard: " + err.Error())
	}
	res.AddedShard = shard
	// Immediately after the ring change nothing has migrated yet: the
	// dual-read fallback must keep every session reachable.
	for _, id := range idsAtAdd {
		if _, err := cl.Read(id); err != nil {
			res.LostAtAdd++
		}
	}
	ce.kernel.RunFor(o.scale(2 * time.Minute))
	res.AddConverged = !cl.Migrating()
	res.MigratedAdd = cl.MigratedEntries()
	for _, b := range cl.Bricks() {
		if b.Shard() == shard {
			res.NewShardEntries += b.Len()
		}
	}
	for _, id := range cl.SessionIDs() {
		if _, err := cl.Read(id); err != nil {
			res.LostAfterAdd++
		}
	}

	// --- shrink: drain and remove an original shard ---------------------
	idsAtRemove := cl.SessionIDs()
	res.SessionsAtRemove = len(idsAtRemove)
	res.RemovedShard = 0
	if err := cl.RemoveShard(0); err != nil {
		panic("experiments: RemoveShard: " + err.Error())
	}
	for _, id := range idsAtRemove {
		if _, err := cl.Read(id); err != nil {
			res.LostAtRemove++
		}
	}
	ce.kernel.RunFor(o.scale(2 * time.Minute))
	res.RemoveConverged = !cl.Migrating()
	res.MigratedRemove = cl.MigratedEntries() - res.MigratedAdd
	res.RetiredBricks = len(cl.RetiredBricks())
	for _, id := range cl.SessionIDs() {
		if _, err := cl.Read(id); err != nil {
			res.LostAfterRemove++
		}
	}

	ce.emulator.Stop()
	ce.emulator.FlushActions()
	ce.kernel.RunFor(30 * time.Second)
	res.FailuresAfter = ce.recorder.BadOps()
	res.TotalRequests = ce.recorder.GoodOps() + ce.recorder.BadOps()
	res.RingVersion = cl.RingVersion()
	return res
}

// String renders the elastic-ring summary.
func (r *ElasticResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Elastic SSM ring (extension): %d-node cluster on a shared %d-shard × %d brick ring, W=%d\n",
		r.Nodes, r.ShardsBefore, r.Replicas, r.WriteQuorum)
	fmt.Fprintf(&b, "grow:   added shard %d with %d live sessions; lost at ring change: %d (claim: 0)\n",
		r.AddedShard, r.SessionsAtAdd, r.LostAtAdd)
	if r.AddConverged {
		fmt.Fprintf(&b, "        migration converged: %d entries moved, new shard holds %d; lost after: %d (claim: 0)\n",
			r.MigratedAdd, r.NewShardEntries, r.LostAfterAdd)
	} else {
		fmt.Fprintf(&b, "        migration did NOT converge in the window\n")
	}
	fmt.Fprintf(&b, "shrink: removed shard %d with %d live sessions; lost at ring change: %d (claim: 0)\n",
		r.RemovedShard, r.SessionsAtRemove, r.LostAtRemove)
	if r.RemoveConverged {
		fmt.Fprintf(&b, "        drain converged: %d entries moved, %d bricks retired; lost after: %d (claim: 0)\n",
			r.MigratedRemove, r.RetiredBricks, r.LostAfterRemove)
	} else {
		fmt.Fprintf(&b, "        drain did NOT converge in the window\n")
	}
	fmt.Fprintf(&b, "client-visible failures across both ring changes: %d (claim: 0; %d requests total)\n",
		r.FailuresAfter-r.FailuresBefore, r.TotalRequests)
	fmt.Fprintf(&b, "ring generation after both changes: %d\n", r.RingVersion)
	return b.String()
}
