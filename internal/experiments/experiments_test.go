package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/ebid"
)

var quick = Options{Quick: true}

func TestTable1MixShape(t *testing.T) {
	r := Table1(quick)
	if r.Total < 10000 {
		t.Fatalf("only %d requests", r.Total)
	}
	want := map[string]float64{
		ebid.CatReadOnlyDB: 0.32, ebid.CatSessionInit: 0.23, ebid.CatStatic: 0.12,
		ebid.CatSearch: 0.12, ebid.CatSessionUpdate: 0.11, ebid.CatDBUpdate: 0.10,
	}
	for cat, target := range want {
		if math.Abs(r.Share[cat]-target) > 0.05 {
			t.Errorf("%s = %.3f, want %.2f ± 0.05", cat, r.Share[cat], target)
		}
	}
	if !strings.Contains(r.String(), "Table 1") {
		t.Fatal("String() malformed")
	}
}

func TestTable2MatrixMatchesPaper(t *testing.T) {
	r := Table2(quick)
	if len(r.Rows) != 26 {
		t.Fatalf("rows = %d, want 26", len(r.Rows))
	}
	mismatches := 0
	for _, row := range r.Rows {
		if !row.Match {
			mismatches++
			t.Logf("MISMATCH: %s/%s observed %q paper %q", row.Fault, row.Mode, row.ObservedCure, row.PaperCure)
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d rows deviate from Table 2", mismatches)
	}
}

func TestTable3WithinPaperRange(t *testing.T) {
	r := Table3(quick)
	if len(r.Rows) != 25 { // 21 session/entity comps + EntityGroup + WAR + eBid + JVM
		t.Fatalf("rows = %d, want 25", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Paper == 0 {
			continue
		}
		ratio := float64(row.Total) / float64(row.Paper)
		if ratio < 0.95 || ratio > 1.05 {
			t.Errorf("%s: total %v vs paper %v", row.Component, row.Total, row.Paper)
		}
	}
	// Ordering: EJB µRB << app restart << process restart.
	var entityGroup, app, jvm time.Duration
	for _, row := range r.Rows {
		switch row.Component {
		case "EntityGroup":
			entityGroup = row.Total
		case "eBid":
			app = row.Total
		case "JVM restart":
			jvm = row.Total
		}
	}
	if !(entityGroup < app && app < jvm) {
		t.Fatalf("ordering broken: group=%v app=%v jvm=%v", entityGroup, app, jvm)
	}
}

func TestFigure1OrderOfMagnitude(t *testing.T) {
	r := Figure1(quick)
	if len(r.MicroActions) == 0 || len(r.RestartActions) == 0 {
		t.Fatalf("recovery actions: µRB=%d restart=%d", len(r.MicroActions), len(r.RestartActions))
	}
	if r.MicroFailedReqs == 0 {
		t.Fatal("µRB run failed zero requests — model too forgiving")
	}
	ratio := float64(r.RestartFailedReqs) / float64(r.MicroFailedReqs)
	if ratio < 8 {
		t.Fatalf("restart/µRB failed-request ratio = %.1f, want ≥8 (order of magnitude)", ratio)
	}
	t.Logf("failed: µRB=%d restart=%d (%.0fx); per-recovery µRB=%.0f restart=%.0f",
		r.MicroFailedReqs, r.RestartFailedReqs, ratio, r.MicroAvgPerRecovery, r.RestartAvgPerRecovery)
}

func TestFigure2MicroDisruptionIsPartial(t *testing.T) {
	r := Figure2(quick)
	if r.MicroTotalDown > 0 {
		t.Fatalf("µRB run had %v of total outage; paper: partial disruption only", r.MicroTotalDown)
	}
	if r.RestartTotalDown == 0 {
		t.Fatal("restart run showed no total outage; expected the restart window down")
	}
}

func TestFigure3ShapeHolds(t *testing.T) {
	r := Figure3(quick)
	for _, row := range r.Rows {
		if row.MicroFailed >= row.RestartFailed {
			t.Fatalf("%d nodes: µRB failed %d ≥ restart %d", row.Nodes, row.MicroFailed, row.RestartFailed)
		}
		if row.RestartSessions == 0 {
			t.Fatalf("%d nodes: no sessions failed over under restart", row.Nodes)
		}
	}
	// Relative failure percentage declines with cluster size.
	if len(r.Rows) >= 2 {
		first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
		if last.RestartPct >= first.RestartPct {
			t.Fatalf("restart %% did not decline with cluster size: %.2f -> %.2f",
				first.RestartPct, last.RestartPct)
		}
	}
	t.Log("\n" + r.String())
}

func TestFigure4ShapeHolds(t *testing.T) {
	r := Figure4(quick)
	for _, row := range r.Rows {
		if row.RestartOver8s < row.MicroOver8s {
			t.Fatalf("%d nodes: restart over-8s %d < µRB %d", row.Nodes, row.RestartOver8s, row.MicroOver8s)
		}
	}
	// Two-node restart must show heavy slow-request counts; µRB nearly none.
	first := r.Rows[0]
	if first.RestartOver8s == 0 {
		t.Fatal("2-node restart failover produced no >8s requests; overload model broken")
	}
	if first.MicroOver8s > first.RestartOver8s/10 {
		t.Fatalf("µRB over-8s %d not an order below restart %d", first.MicroOver8s, first.RestartOver8s)
	}
	t.Log("\n" + r.String())
}

func TestFigure5LeftCrossover(t *testing.T) {
	r := Figure5Left(quick)
	if r.CrossoverTdet < 5*time.Second {
		t.Fatalf("crossover Tdet = %v, want ≥5s (paper: 53.5s)", r.CrossoverTdet)
	}
	// Failed requests grow with Tdet for µRB.
	if r.Micro[len(r.Micro)-1].Failed <= r.Micro[0].Failed {
		t.Fatal("µRB failures did not grow with detection delay")
	}
	t.Log("\n" + r.String())
}

func TestFigure5RightTolerance(t *testing.T) {
	r := Figure5Right(78, 3917)
	if r.ToleratedFPRate < 0.95 {
		t.Fatalf("tolerated FP rate = %.3f, want ≥0.95 (paper: 0.98)", r.ToleratedFPRate)
	}
	// Monotone growth of failures with FP rate.
	for i := 1; i < len(r.MicroFailed); i++ {
		if r.MicroFailed[i] <= r.MicroFailed[i-1] {
			t.Fatal("µRB curve not monotone")
		}
	}
}

func TestFigure6Shape(t *testing.T) {
	r := Figure6(quick)
	if r.MicroFailed >= r.RestartFailed {
		t.Fatalf("µRB rejuvenation failed %d ≥ restart %d", r.MicroFailed, r.RestartFailed)
	}
	if r.MicroRejuvenations == 0 {
		t.Fatal("no microrejuvenation episodes happened")
	}
	if r.RestartCount == 0 {
		t.Fatal("baseline performed no restart rejuvenations")
	}
	if !r.GoodputNeverZero {
		t.Fatal("good Taw hit zero during microrejuvenation")
	}
	t.Log("\n" + r.String())
}

func TestBrickCrashZeroSessionLoss(t *testing.T) {
	r := FigureBrickCrash(quick)
	if r.SessionsAtCrash == 0 || r.EntriesLost == 0 {
		t.Fatalf("vacuous run: %d sessions, victim held %d entries", r.SessionsAtCrash, r.EntriesLost)
	}
	if r.LostSessions != 0 {
		t.Fatalf("lost %d sessions to a single brick crash, want 0 (N=%d, W=%d)",
			r.LostSessions, r.Replicas, r.WriteQuorum)
	}
	if delta := r.FailuresAfter - r.FailuresBefore; delta != 0 {
		t.Fatalf("brick crash surfaced %d client-visible failures, want 0", delta)
	}
	if !r.BrickRestarted {
		t.Fatal("recovery manager never restarted the dead brick")
	}
	if r.RestoredEntries == 0 {
		t.Fatal("re-replication restored nothing into the restarted brick")
	}
	if r.DetectedAt <= r.CrashAt {
		t.Fatalf("detection at %v not after crash at %v", r.DetectedAt, r.CrashAt)
	}
	t.Log("\n" + r.String())
}

func TestFigureElasticZeroLossUnderLoad(t *testing.T) {
	r := FigureElastic(quick)
	if r.SessionsAtAdd == 0 || r.SessionsAtRemove == 0 {
		t.Fatalf("vacuous run: %d sessions at add, %d at remove", r.SessionsAtAdd, r.SessionsAtRemove)
	}
	if !r.AddConverged || !r.RemoveConverged {
		t.Fatalf("migration did not converge: add=%v remove=%v", r.AddConverged, r.RemoveConverged)
	}
	if r.MigratedAdd == 0 || r.NewShardEntries == 0 {
		t.Fatalf("add-shard migration vacuous: moved %d, new shard holds %d", r.MigratedAdd, r.NewShardEntries)
	}
	if r.MigratedRemove == 0 || r.RetiredBricks != 3 {
		t.Fatalf("drain vacuous: moved %d, retired %d bricks", r.MigratedRemove, r.RetiredBricks)
	}
	if n := r.LostAtAdd + r.LostAfterAdd + r.LostAtRemove + r.LostAfterRemove; n != 0 {
		t.Fatalf("lost %d sessions across the ring changes, want 0 (%+v)", n, r)
	}
	if delta := r.FailuresAfter - r.FailuresBefore; delta != 0 {
		t.Fatalf("elastic resize surfaced %d client-visible failures, want 0", delta)
	}
	if r.RingVersion != 3 {
		t.Fatalf("ring generation = %d, want 3 (initial + add + remove)", r.RingVersion)
	}
	t.Log("\n" + r.String())
}

func TestFigure3SharedClusterKeepsShape(t *testing.T) {
	// Figures 3/4 rerun on a cross-node SSM brick cluster: failover still
	// happens, and µRB still beats the full restart, but the shared store
	// means redirected sessions survive the node's recovery.
	r := Figure3(Options{Quick: true, ClusterStore: "ssm-cluster"})
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range r.Rows {
		if row.MicroFailed > row.RestartFailed {
			t.Fatalf("%d nodes: µRB failed %d > restart %d", row.Nodes, row.MicroFailed, row.RestartFailed)
		}
		if row.RestartSessions == 0 {
			t.Fatalf("%d nodes: no sessions failed over under restart", row.Nodes)
		}
	}
	t.Log("\n" + r.String())
}

func TestTable5PerformanceShape(t *testing.T) {
	r := Table5(quick)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Throughput within a few percent across configs.
	base := r.Rows[0].Throughput
	for _, row := range r.Rows {
		if math.Abs(row.Throughput-base)/base > 0.05 {
			t.Fatalf("throughput varies >5%%: %v", r.Rows)
		}
	}
	// SSM latency 70-90% above FastS.
	fasts, ssm := r.Rows[1].MeanLatency, r.Rows[3].MeanLatency
	ratio := float64(ssm) / float64(fasts)
	if ratio < 1.4 || ratio > 2.2 {
		t.Fatalf("SSM/FastS latency ratio = %.2f, want ~1.7-1.9", ratio)
	}
	t.Log("\n" + r.String())
}

func TestTable6RetryMasking(t *testing.T) {
	r := Table6(quick)
	for _, row := range r.Rows {
		if row.Retry > row.NoRetry {
			t.Fatalf("%s: retry %f > no-retry %f", row.Component, row.Retry, row.NoRetry)
		}
		if row.DelayRetry > row.Retry {
			t.Fatalf("%s: delay+retry %f > retry %f", row.Component, row.DelayRetry, row.Retry)
		}
	}
	t.Log("\n" + r.String())
}

func TestSection61Budgets(t *testing.T) {
	fig1 := &Figure1Result{MicroAvgPerRecovery: 78, RestartAvgPerRecovery: 3917}
	fig3 := &Figure3Result{Rows: []Figure3Row{{Nodes: 2, MicroFailed: 162}}}
	r := Section61(quick, fig1, fig3)
	if r.BudgetRestart >= r.BudgetFailoverMicro || r.BudgetFailoverMicro >= r.BudgetNoFailoverMicro {
		t.Fatalf("budget ordering broken: %d / %d / %d",
			r.BudgetRestart, r.BudgetFailoverMicro, r.BudgetNoFailoverMicro)
	}
	if r.BudgetRestart < 5 || r.BudgetRestart > 50 {
		t.Fatalf("restart budget = %d, want ~13 (paper: 23)", r.BudgetRestart)
	}
	t.Log("\n" + r.String())
}

func TestAblationDelayTradeoff(t *testing.T) {
	r := AblationDelay(quick, "")
	if len(r.Rows) < 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// More grace must not increase failures (monotone non-increasing
	// within noise), and the effective recovery window must grow.
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if last.FailedPerRB > first.FailedPerRB+0.5 {
		t.Fatalf("failures grew with delay: %.1f -> %.1f", first.FailedPerRB, last.FailedPerRB)
	}
	if last.EffectiveRecovery <= first.EffectiveRecovery {
		t.Fatal("effective recovery did not grow with delay")
	}
	t.Log("\n" + r.String())
}

func TestFigureAutoscaleClosedLoopResize(t *testing.T) {
	r := FigureAutoscale(quick)
	if r.Adds != 1 || r.Removes != 1 {
		t.Fatalf("resizes = %d add / %d remove, want exactly 1 each (actions must come from the controller)", r.Adds, r.Removes)
	}
	if r.ResizeErrors != 0 {
		t.Fatalf("%d resize actions hit actuator errors", r.ResizeErrors)
	}
	if r.RingVersion != 3 {
		t.Fatalf("ring generation = %d, want 3 (initial + controller add + controller remove)", r.RingVersion)
	}
	if !r.Converged {
		t.Fatal("migration did not converge after the controller's resizes")
	}
	if r.AvgAtAdd <= r.HighWater {
		t.Fatalf("add fired at %.0f sessions/shard, below the %.0f high water", r.AvgAtAdd, r.HighWater)
	}
	if r.AvgAtRemove >= r.LowWater {
		t.Fatalf("remove fired at %.0f sessions/shard, above the %.0f low water", r.AvgAtRemove, r.LowWater)
	}
	if n := r.LostAfterGrow + r.LostAtEnd; n != 0 {
		t.Fatalf("lost %d sessions across the controller-driven resizes, want 0", n)
	}
	if delta := r.FailuresAfter - r.FailuresBefore; delta != 0 {
		t.Fatalf("autoscaling surfaced %d client-visible failures, want 0", delta)
	}
	if r.MigratedEntries == 0 {
		t.Fatal("vacuous run: the resizes migrated nothing")
	}
	// The pacer went to full throttle at least once (the post-drain ring
	// is idle) and stayed within its bounds.
	if r.PacerMaxBudget != 1024 {
		t.Fatalf("pacer max budget = %d, want 1024 (idle system should migrate at full throttle)", r.PacerMaxBudget)
	}
	if r.PacerMinBudget < 16 {
		t.Fatalf("pacer budget fell below its floor: %d", r.PacerMinBudget)
	}
	t.Log("\n" + r.String())
}

func TestFigureFleetRoutingBeatsRoundRobin(t *testing.T) {
	r := FigureFleet(quick)
	rr, routed := r.RoundRobin, r.Routed
	// The static balancer drowns the degraded node; queue-aware routing
	// plus shedding must hold the tail at least 2x lower (measured ~88x).
	if rr.P99 < 2*routed.P99 {
		t.Fatalf("p99: round-robin %v vs routed %v, want ≥2x separation", rr.P99, routed.P99)
	}
	if rr.MaxQueueDegraded < 4*routed.MaxQueueDegraded {
		t.Fatalf("degraded-node queue: rr %d vs routed %d, want ≥4x separation",
			rr.MaxQueueDegraded, routed.MaxQueueDegraded)
	}
	// Admission control actually engaged — and only in the shed run.
	if routed.Shed == 0 {
		t.Fatal("shedding policy never shed under fleet-wide overload")
	}
	if rr.Shed != 0 {
		t.Fatalf("round-robin run shed %d requests", rr.Shed)
	}
	// Overload slows the fleet; it must not eat state.
	if rr.LostSessions != 0 || routed.LostSessions != 0 {
		t.Fatalf("lost sessions: rr=%d routed=%d, want 0", rr.LostSessions, routed.LostSessions)
	}
	// Shedding trades rejected logins for served traffic: goodput must
	// not fall below the collapsing baseline.
	if routed.GoodOps < rr.GoodOps {
		t.Fatalf("goodput: routed %d < round-robin %d", routed.GoodOps, rr.GoodOps)
	}
	// The sampled comparison detector rode the live stream cleanly.
	if rr.SampledChecks == 0 || routed.SampledChecks == 0 {
		t.Fatalf("comparison sampler never ran: %d/%d checks", rr.SampledChecks, routed.SampledChecks)
	}
	if rr.Discrepancies != 0 || routed.Discrepancies != 0 {
		t.Fatalf("fault-free run flagged discrepancies: %d/%d", rr.Discrepancies, routed.Discrepancies)
	}
	t.Log("\n" + r.String())
}

func TestFigureBrickSlowRoutingHoldsTheTail(t *testing.T) {
	r := FigureBrickSlow(quick)
	// Fail-stutter, not fail-stop: nobody fails in either mode.
	if r.Routed.Failures != 0 || r.Unrouted.Failures != 0 {
		t.Fatalf("failures = %d routed / %d unrouted, want 0", r.Routed.Failures, r.Unrouted.Failures)
	}
	// With routing, the degraded brick serves nothing and the tail holds.
	if r.Routed.SlowServed != 0 {
		t.Fatalf("routing on still served %d reads from the slow brick", r.Routed.SlowServed)
	}
	if r.Routed.Bypasses == 0 {
		t.Fatal("vacuous run: routing never actually bypassed the slow brick")
	}
	withRouting := r.Routed.SlowP99 - r.Routed.BaseP99
	if withRouting > 50*time.Millisecond {
		t.Fatalf("p99 grew %v under degradation despite routing", withRouting)
	}
	// Without routing, the slow brick serves its shard and the tail
	// absorbs the stutter.
	if r.Unrouted.SlowServed == 0 {
		t.Fatal("routing off never read from the slow brick")
	}
	if gap := r.Unrouted.SlowP99 - r.Routed.SlowP99; gap < 100*time.Millisecond {
		t.Fatalf("unrouted p99 only %v above routed, want the fail-stutter penalty to show", gap)
	}
	t.Log("\n" + r.String())
}
