package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ebid"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/recovery"
	"repro/internal/workload"
)

// ---------------------------------------------------------------- Figure 1

// Figure1Result is the Taw timeline comparison of EJB microreboots vs
// JVM process restarts under the three-fault schedule of Figure 1.
type Figure1Result struct {
	// Good/Bad per-second series for both runs.
	MicroGood, MicroBad     []int64
	RestartGood, RestartBad []int64
	// Totals.
	MicroFailedReqs, RestartFailedReqs       int64
	MicroFailedActions, RestartFailedActions int64
	// Per-recovery averages (3 recovery events per run).
	MicroAvgPerRecovery, RestartAvgPerRecovery float64
	// Recovery actions taken.
	MicroActions, RestartActions []recovery.Action
	// The µRB-run recorder, reused by Figure 2.
	microRecorder *metrics.Recorder
}

// figure1Faults injects the paper's three faults: at 1/4 of the runtime a
// corrupted transaction method map in the EntityGroup (slowest-recovering
// group), at 2/4 a corrupted naming entry for RegisterNewUser
// (next-slowest), at 3/4 a transient exception in BrowseCategories (the
// most frequently called component).
func figure1Faults(e *env, runtime time.Duration) {
	e.kernel.ScheduleAt(runtime/4, func() {
		if _, err := e.injector.Inject(faults.Spec{
			Kind: faults.CorruptTxMethodMap, Component: ebid.EntItem, Mode: faults.ModeNull,
		}); err != nil {
			panic(err)
		}
	})
	e.kernel.ScheduleAt(runtime/2, func() {
		if _, err := e.injector.Inject(faults.Spec{
			Kind: faults.CorruptNaming, Component: ebid.RegisterNewUser, Mode: faults.ModeNull,
		}); err != nil {
			panic(err)
		}
	})
	e.kernel.ScheduleAt(3*runtime/4, func() {
		if _, err := e.injector.Inject(faults.Spec{
			Kind: faults.TransientException, Component: ebid.BrowseCategories,
		}); err != nil {
			panic(err)
		}
	})
}

// runFigure1 runs the 40-minute timeline with the given recovery scope.
func runFigure1(o Options, forceScope core.Scope) (*env, *recovery.Manager) {
	e := newEnv(o, o.clients(500), useFastS, cluster.NodeConfig{})
	rm := recovery.NewManager(e.kernel, e.node, recovery.Config{
		Threshold:  3,
		ForceScope: forceScope,
	})
	e.emulator.OnFailure(func(clientID int, op string, resp workload.Response) {
		// Session-loss failures after a process restart are knock-on
		// effects of the recovery itself, not new faults; reporting them
		// would send the manager into a restart loop.
		if resp.Err != nil && strings.Contains(resp.Err.Error(), "not logged in") {
			return
		}
		rm.Report(recovery.Report{Op: op, Kind: "client-detector"})
	})
	runtime := o.scale(40 * time.Minute)
	figure1Faults(e, runtime)
	e.emulator.Start()
	e.kernel.RunFor(runtime)
	e.emulator.Stop()
	e.emulator.FlushActions()
	e.kernel.RunFor(30 * time.Second)
	return e, rm
}

// Figure1 produces the action-weighted throughput timelines.
func Figure1(o Options) *Figure1Result {
	micro, microRM := runFigure1(o, 0)
	restart, restartRM := runFigure1(o, core.ScopeProcess)

	mg, mb := micro.recorder.Buckets()
	rg, rb := restart.recorder.Buckets()
	res := &Figure1Result{
		MicroGood: mg, MicroBad: mb,
		RestartGood: rg, RestartBad: rb,
		MicroFailedReqs:      micro.recorder.BadOps(),
		RestartFailedReqs:    restart.recorder.BadOps(),
		MicroFailedActions:   micro.recorder.FailedActions(),
		RestartFailedActions: restart.recorder.FailedActions(),
		MicroActions:         microRM.Actions,
		RestartActions:       restartRM.Actions,
		microRecorder:        micro.recorder,
	}
	if n := len(microRM.Actions); n > 0 {
		res.MicroAvgPerRecovery = float64(res.MicroFailedReqs) / float64(n)
	}
	if n := len(restartRM.Actions); n > 0 {
		res.RestartAvgPerRecovery = float64(res.RestartFailedReqs) / float64(n)
	}
	return res
}

// String summarizes the timeline comparison.
func (r *Figure1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: Taw under 3 faults — process restart vs microreboot\n")
	fmt.Fprintf(&b, "%-22s %16s %16s\n", "", "microreboot", "process restart")
	fmt.Fprintf(&b, "%-22s %16d %16d   (paper: 233 vs 11,752)\n", "failed requests",
		r.MicroFailedReqs, r.RestartFailedReqs)
	fmt.Fprintf(&b, "%-22s %16d %16d   (paper: 34 vs 3,101)\n", "failed actions",
		r.MicroFailedActions, r.RestartFailedActions)
	fmt.Fprintf(&b, "%-22s %16.0f %16.0f   (paper: 78 vs 3,917)\n", "failed per recovery",
		r.MicroAvgPerRecovery, r.RestartAvgPerRecovery)
	fmt.Fprintf(&b, "%-22s %16d %16d\n", "recovery events",
		len(r.MicroActions), len(r.RestartActions))
	if r.RestartFailedReqs > 0 && r.MicroFailedReqs > 0 {
		fmt.Fprintf(&b, "improvement: %.0fx fewer failed requests (paper: ~50x; ≥10x = order of magnitude)\n",
			float64(r.RestartFailedReqs)/float64(r.MicroFailedReqs))
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 2

// Figure2Result is the functional-disruption view around one recovery.
type Figure2Result struct {
	// Gaps per functional group during the µRB run.
	MicroGaps map[string][]metrics.Interval
	// Gaps during the restart run.
	RestartGaps map[string][]metrics.Interval
	// Windows of total unavailability (all four groups down).
	MicroTotalDown, RestartTotalDown time.Duration
}

// Figure2 reruns the Figure 1 third fault (transient exception in the
// most frequently called component) and reports which functional groups
// end users perceived as unavailable.
func Figure2(o Options) *Figure2Result {
	run := func(force core.Scope) map[string][]metrics.Interval {
		e := newEnv(o, o.clients(500), useFastS, cluster.NodeConfig{})
		rm := recovery.NewManager(e.kernel, e.node, recovery.Config{Threshold: 3, ForceScope: force})
		e.emulator.OnFailure(func(_ int, op string, resp workload.Response) {
			if resp.Err != nil && strings.Contains(resp.Err.Error(), "not logged in") {
				return
			}
			rm.Report(recovery.Report{Op: op})
		})
		e.kernel.ScheduleAt(o.scale(4*time.Minute), func() {
			if _, err := e.injector.Inject(faults.Spec{
				Kind: faults.TransientException, Component: ebid.BrowseCategories,
			}); err != nil {
				panic(err)
			}
		})
		e.emulator.Start()
		e.kernel.RunFor(o.scale(8 * time.Minute))
		e.emulator.Stop()
		e.emulator.FlushActions()
		return e.recorder.Unavailability()
	}
	res := &Figure2Result{
		MicroGaps:   run(0),
		RestartGaps: run(core.ScopeProcess),
	}
	res.MicroTotalDown = totalDown(res.MicroGaps)
	res.RestartTotalDown = totalDown(res.RestartGaps)
	return res
}

// totalDown sums the intersection-ish disruption: the longest gap across
// groups that overlaps all four (approximated by the max single-group gap
// common to every group's merged windows).
func totalDown(gaps map[string][]metrics.Interval) time.Duration {
	groups := []string{ebid.GroupBidBuySell, ebid.GroupBrowseView, ebid.GroupSearch, ebid.GroupUserAccount}
	var total time.Duration
	// A second counts as "totally down" when every group has a failed
	// request whose processing overlaps it.
	covered := func(ivs []metrics.Interval, t time.Duration) bool {
		for _, iv := range ivs {
			if iv.From < t+time.Second && iv.To > t {
				return true
			}
		}
		return false
	}
	var horizon time.Duration
	for _, g := range groups {
		for _, iv := range gaps[g] {
			if iv.To > horizon {
				horizon = iv.To
			}
		}
	}
	for t := time.Duration(0); t < horizon; t += time.Second {
		all := true
		for _, g := range groups {
			if !covered(gaps[g], t) {
				all = false
				break
			}
		}
		if all {
			total += time.Second
		}
	}
	return total
}

// String renders the per-group disruption summary.
func (r *Figure2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: functional disruption during recovery\n")
	groups := []string{ebid.GroupBidBuySell, ebid.GroupBrowseView, ebid.GroupSearch, ebid.GroupUserAccount}
	sum := func(ivs []metrics.Interval) time.Duration {
		var s time.Duration
		for _, iv := range ivs {
			s += iv.Length()
		}
		return s
	}
	fmt.Fprintf(&b, "%-16s %18s %18s\n", "group", "µRB disruption", "restart disruption")
	for _, g := range groups {
		fmt.Fprintf(&b, "%-16s %18s %18s\n", g,
			sum(r.MicroGaps[g]).Round(time.Second), sum(r.RestartGaps[g]).Round(time.Second))
	}
	fmt.Fprintf(&b, "total outage (all groups down): µRB=%s restart=%s (paper: none vs whole restart window)\n",
		r.MicroTotalDown, r.RestartTotalDown)
	return b.String()
}

// ---------------------------------------------------------------- Figure 5

// Figure5Point is one (Tdet, failed-requests) sample.
type Figure5Point struct {
	Tdet   time.Duration
	Failed int64
}

// Figure5LeftResult is the detection-time relaxation curve.
type Figure5LeftResult struct {
	Micro   []Figure5Point
	Restart []Figure5Point
	// CrossoverTdet is the detection delay at which µRB-based recovery
	// still beats restart with instant detection (paper: 53.5 s).
	CrossoverTdet time.Duration
}

// Figure5Left sweeps the failure-detection delay Tdet and counts failed
// requests for µRB vs process-restart recovery.
func Figure5Left(o Options) *Figure5LeftResult {
	delays := []time.Duration{0, time.Second, 5 * time.Second, 10 * time.Second,
		20 * time.Second, 40 * time.Second, 60 * time.Second, 100 * time.Second}
	if o.Quick {
		delays = []time.Duration{0, 5 * time.Second, 20 * time.Second, 60 * time.Second}
	}
	run := func(force core.Scope, tdet time.Duration) int64 {
		e := newEnv(o, o.clients(500), useFastS, cluster.NodeConfig{})
		rm := recovery.NewManager(e.kernel, e.node, recovery.Config{
			Threshold: 3, ForceScope: force, DetectionDelay: tdet,
		})
		e.emulator.OnFailure(func(_ int, op string, _ workload.Response) {
			rm.Report(recovery.Report{Op: op})
		})
		e.kernel.ScheduleAt(o.scale(3*time.Minute), func() {
			if _, err := e.injector.Inject(faults.Spec{
				Kind: faults.TransientException, Component: ebid.BrowseCategories,
			}); err != nil {
				panic(err)
			}
		})
		e.emulator.Start()
		e.kernel.RunFor(o.scale(3*time.Minute) + tdet + 3*time.Minute)
		e.emulator.Stop()
		e.emulator.FlushActions()
		return e.recorder.BadOps()
	}
	res := &Figure5LeftResult{}
	for _, d := range delays {
		res.Micro = append(res.Micro, Figure5Point{d, run(0, d)})
	}
	restartAt0 := run(core.ScopeProcess, 0)
	res.Restart = append(res.Restart, Figure5Point{0, restartAt0})
	for _, d := range delays[1:] {
		res.Restart = append(res.Restart, Figure5Point{d, run(core.ScopeProcess, d)})
	}
	// Crossover: largest Tdet where µRB failures ≤ restart@0 failures.
	for _, p := range res.Micro {
		if p.Failed <= restartAt0 {
			res.CrossoverTdet = p.Tdet
		}
	}
	return res
}

// String renders both curves.
func (r *Figure5LeftResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 (left): failed requests vs detection time Tdet\n")
	fmt.Fprintf(&b, "%10s %14s %14s\n", "Tdet", "microreboot", "restart")
	for i := range r.Micro {
		restart := int64(-1)
		if i < len(r.Restart) {
			restart = r.Restart[i].Failed
		}
		fmt.Fprintf(&b, "%10s %14d %14d\n", r.Micro[i].Tdet, r.Micro[i].Failed, restart)
	}
	fmt.Fprintf(&b, "µRB with Tdet up to %s still beats restart with instant detection (paper: 53.5 s)\n",
		r.CrossoverTdet)
	return b.String()
}

// Figure5RightResult is the false-positive tolerance curve, computed
// analytically from the measured per-recovery costs as the paper does:
// f(n) = n useless recoveries plus one useful one.
type Figure5RightResult struct {
	// Rates are the false-positive rates evaluated.
	Rates []float64
	// MicroFailed[i] and RestartFailed[i] are f(n) for rate n/(n+1).
	MicroFailed, RestartFailed []float64
	// ToleratedFPRate is the largest rate at which µRB still beats
	// restart with zero false positives (paper: 98%).
	ToleratedFPRate float64
	// Per-recovery costs used (measured by Figure 1).
	MicroCost, RestartCost float64
}

// Figure5Right computes the false-positive curves from the Figure 1
// per-recovery averages.
func Figure5Right(microCost, restartCost float64) *Figure5RightResult {
	res := &Figure5RightResult{MicroCost: microCost, RestartCost: restartCost}
	for _, n := range []float64{0, 1, 3, 9, 19, 49, 99, 199} {
		rate := n / (n + 1)
		res.Rates = append(res.Rates, rate)
		res.MicroFailed = append(res.MicroFailed, (n+1)*microCost)
		res.RestartFailed = append(res.RestartFailed, (n+1)*restartCost)
	}
	// µRB beats restart@FP=0 while (n+1)*micro <= restart.
	nMax := restartCost/microCost - 1
	if nMax > 0 {
		res.ToleratedFPRate = nMax / (nMax + 1)
	}
	return res
}

// String renders the curve.
func (r *Figure5RightResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 (right): failed requests vs false-positive rate\n")
	fmt.Fprintf(&b, "(per-recovery cost: µRB=%.0f, restart=%.0f failed requests)\n", r.MicroCost, r.RestartCost)
	fmt.Fprintf(&b, "%8s %14s %14s\n", "FP rate", "microreboot", "restart")
	for i, rate := range r.Rates {
		fmt.Fprintf(&b, "%7.1f%% %14.0f %14.0f\n", rate*100, r.MicroFailed[i], r.RestartFailed[i])
	}
	fmt.Fprintf(&b, "µRB tolerates false-positive rates up to %.1f%% (paper: 98%%)\n", r.ToleratedFPRate*100)
	return b.String()
}
