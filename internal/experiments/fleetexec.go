package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/cookiejar"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/ebid"
	"repro/internal/fleet"
)

// --------------------------------- Fleet routing over real processes

// FleetExecRun is one routing discipline's outcome against a live
// multi-process fleet, measured from the client side of real sockets.
type FleetExecRun struct {
	Policy        string
	P50, P95, P99 time.Duration
	GoodOps       int64
	BadOps        int64
	Shed          int64
	Relogins      int64
	Estab5xx      int64
	// PerBackend counts requests served per node (from the router).
	PerBackend map[string]int64
	// KillDowntime is how long the SIGKILLed backend was gone before
	// the supervisor had its next incarnation ready (routed phase only).
	KillDowntime time.Duration
	LostSessions int64
}

// FleetExecResult is the process-mode rerun of FigureFleet: the same
// comparison — static round-robin vs queue-aware routing + shedding
// with a degraded replica — but over ebid-server OS processes behind
// the reverse proxy, with a SIGKILL + supervised respawn injected
// mid-run in the routed phase.
type FleetExecResult struct {
	Backends     int
	DegradedNode string
	Degrade      time.Duration
	Clients      int
	Duration     time.Duration

	RoundRobin FleetExecRun
	Routed     FleetExecRun
}

// FigureFleetExec runs the experiment against real processes spawned
// from the ebid-server binary at bin. Quick mode shortens the phases to
// a few seconds.
func FigureFleetExec(o Options, bin string) (*FleetExecResult, error) {
	clients, phase := 40, 20*time.Second
	if o.Quick {
		clients, phase = 16, 4*time.Second
	}
	const nBackends = 3
	degrade := 25 * time.Millisecond

	res := &FleetExecResult{
		Backends:     nBackends,
		DegradedNode: "node0",
		Degrade:      degrade,
		Clients:      clients,
		Duration:     phase,
	}

	walDir, err := os.MkdirTemp("", "fleet-exec-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(walDir)

	ports, err := freePorts(nBackends)
	if err != nil {
		return nil, err
	}
	sup := fleet.New(nil)
	defer sup.Stop()
	backs := make([]*fleet.Backend, nBackends)
	for i := 0; i < nBackends; i++ {
		name := fmt.Sprintf("node%d", i)
		url := fmt.Sprintf("http://127.0.0.1:%d", ports[i])
		args := []string{
			"-addr", fmt.Sprintf("127.0.0.1:%d", ports[i]),
			"-node", name,
			"-wal", filepath.Join(walDir, name+".wal"),
			"-users", "60", "-items", "200",
			"-drain-timeout", "3s",
		}
		if i == 0 {
			args = append(args, "-degrade", degrade.String())
		}
		spec := fleet.ChildSpec{
			Name: name, Path: bin, Args: args,
			ReadyURL: url + "/healthz",
			Stdout:   devNull(), Stderr: devNull(),
		}
		if err := sup.Add(spec); err != nil {
			return nil, err
		}
		backs[i] = &fleet.Backend{Name: name, URL: url}
	}
	if err := waitAllReady(sup, nBackends, 20*time.Second); err != nil {
		return nil, err
	}

	res.RoundRobin = runFleetExec(backs, sup, cluster.NewRoundRobin(), clients, phase, "")
	res.Routed = runFleetExec(backs, sup,
		&cluster.SheddingPolicy{Inner: cluster.LeastLoadedPolicy{}, QueueWatermark: 16},
		clients, phase, "node1")
	return res, nil
}

func devNull() *os.File {
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		return nil
	}
	return f
}

// freePorts reserves n distinct ephemeral ports and releases them for
// the children to bind. The window between release and re-bind is a
// benign race in practice (nothing else binds on this host mid-test).
func freePorts(n int) ([]int, error) {
	out := make([]int, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners[i] = l
		out[i] = l.Addr().(*net.TCPAddr).Port
	}
	for _, l := range listeners {
		l.Close()
	}
	return out, nil
}

func waitAllReady(sup *fleet.Supervisor, n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ready := 0
		for _, st := range sup.Status() {
			if st.Ready {
				ready++
			}
		}
		if ready == n {
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("experiments: fleet not ready after %v", timeout)
}

// runFleetExec measures one policy phase. When killNode is non-empty,
// that backend is SIGKILLed a third of the way in — the phase then also
// measures the supervisor's respawn and the router's failover.
func runFleetExec(backs []*fleet.Backend, sup *fleet.Supervisor,
	policy cluster.RoutingPolicy, clients int, phase time.Duration, killNode string) FleetExecRun {

	// Fresh Backend values per phase: counters and affinity start clean.
	phaseBacks := make([]*fleet.Backend, len(backs))
	for i, b := range backs {
		phaseBacks[i] = &fleet.Backend{Name: b.Name, URL: b.URL}
	}
	router := fleet.NewRouter(policy, phaseBacks, 100*time.Millisecond)
	router.Start()
	defer router.Stop()
	proxy := &http.Server{Handler: router}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic("experiments: " + err.Error())
	}
	go proxy.Serve(ln)
	defer proxy.Close()
	base := fmt.Sprintf("http://127.0.0.1:%d", ln.Addr().(*net.TCPAddr).Port)

	run := FleetExecRun{Policy: policy.Name(), PerBackend: map[string]int64{}}
	var mu sync.Mutex
	var lats []time.Duration
	var good, bad, shed, relogins, estab5xx atomic.Int64

	deadline := time.Now().Add(phase)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			driveFleetClient(id, base, deadline, &mu, &lats, &good, &bad, &shed, &relogins, &estab5xx)
		}(c)
	}

	if killNode != "" {
		time.Sleep(phase / 3)
		if err := sup.Kill(killNode); err == nil {
			start := time.Now()
			for time.Now().Before(deadline) {
				if st := statusOf(sup, killNode); st != nil && st.Ready && st.Gen >= 2 {
					run.KillDowntime = time.Since(start)
					break
				}
				time.Sleep(20 * time.Millisecond)
			}
		}
	}
	wg.Wait()

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	run.P50, run.P95, run.P99 = q(0.50), q(0.95), q(0.99)
	run.GoodOps, run.BadOps = good.Load(), bad.Load()
	run.Shed, run.Relogins, run.Estab5xx = shed.Load(), relogins.Load(), estab5xx.Load()
	st := router.Status()
	run.LostSessions = st["lost_sessions"].(int64)
	for _, b := range phaseBacks {
		run.PerBackend[b.Name] = b.CompletedOps()
	}
	return run
}

func statusOf(sup *fleet.Supervisor, name string) *fleet.ChildStatus {
	for _, st := range sup.Status() {
		if st.Name == name {
			return &st
		}
	}
	return nil
}

// driveFleetClient is a minimal crash-only client: session loop with
// re-login on 401 and Retry-After honored on 503.
func driveFleetClient(id int, base string, deadline time.Time,
	mu *sync.Mutex, lats *[]time.Duration,
	good, bad, shed, relogins, estab5xx *atomic.Int64) {

	rng := rand.New(rand.NewSource(int64(id) + 1))
	jar, _ := cookiejar.New(nil)
	hc := &http.Client{Jar: jar, Timeout: 10 * time.Second}
	established := false
	curUser := int64(1)

	do := func(op, query string) {
		url := base + "/ebid/" + op
		if query != "" {
			url += "?" + query
		}
		for attempt := 0; attempt < 3; attempt++ {
			t0 := time.Now()
			resp, err := hc.Get(url)
			if err != nil {
				bad.Add(1)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			el := time.Since(t0)
			switch {
			case resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") != "":
				shed.Add(1)
				time.Sleep(50 * time.Millisecond) // compressed Retry-After for experiment time
				continue
			case resp.StatusCode == http.StatusUnauthorized:
				relogins.Add(1)
				established = false
				if op == ebid.Authenticate {
					bad.Add(1)
					return
				}
				if r2, err2 := hc.Get(base + "/ebid/" + ebid.Authenticate + fmt.Sprintf("?user=%d", curUser)); err2 == nil {
					_, _ = io.Copy(io.Discard, r2.Body)
					r2.Body.Close()
					if r2.StatusCode == http.StatusOK {
						established = true
						continue
					}
				}
				bad.Add(1)
				return
			case resp.StatusCode >= 500:
				if established {
					estab5xx.Add(1)
				}
				bad.Add(1)
				return
			case resp.StatusCode == http.StatusOK:
				good.Add(1)
				mu.Lock()
				*lats = append(*lats, el)
				mu.Unlock()
				return
			default:
				bad.Add(1)
				return
			}
		}
	}

	for time.Now().Before(deadline) {
		curUser = 1 + rng.Int63n(60)
		do(ebid.Authenticate, fmt.Sprintf("user=%d", curUser))
		established = true
		for i := 0; i < 4 && time.Now().Before(deadline); i++ {
			switch rng.Intn(3) {
			case 0:
				do(ebid.ViewItem, fmt.Sprintf("item=%d", 1+rng.Int63n(200)))
			case 1:
				do(ebid.BrowseCategories, "")
			case 2:
				do(ebid.AboutMe, "")
			}
		}
		do(ebid.OpLogout, "")
		established = false
	}
}

// String renders the process-fleet comparison.
func (r *FleetExecResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet routing over OS processes: %d ebid-server children behind the reverse proxy\n", r.Backends)
	fmt.Fprintf(&b, "(%s degraded by %v per op; %d clients, %v per phase; SIGKILL + respawn injected in the routed phase)\n\n",
		r.DegradedNode, r.Degrade, r.Clients, r.Duration)
	fmt.Fprintf(&b, "%-18s %9s %9s %9s %8s %6s %6s %9s %9s %6s\n",
		"policy", "p50", "p95", "p99", "good", "shed", "401s", "estab5xx", "downtime", "lost")
	for _, run := range []FleetExecRun{r.RoundRobin, r.Routed} {
		down := "-"
		if run.KillDowntime > 0 {
			down = run.KillDowntime.Round(time.Millisecond).String()
		}
		fmt.Fprintf(&b, "%-18s %9s %9s %9s %8d %6d %6d %9d %9s %6d\n",
			run.Policy,
			run.P50.Round(time.Millisecond), run.P95.Round(time.Millisecond), run.P99.Round(time.Millisecond),
			run.GoodOps, run.Shed, run.Relogins, run.Estab5xx, down, run.LostSessions)
	}
	var names []string
	for n := range r.Routed.PerBackend {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "\nrouted-phase per-backend completions:")
	for _, n := range names {
		fmt.Fprintf(&b, " %s=%d", n, r.Routed.PerBackend[n])
	}
	fmt.Fprintf(&b, "\n")
	if r.Routed.Estab5xx == 0 && r.RoundRobin.Estab5xx == 0 {
		fmt.Fprintf(&b, "no established session saw a 5xx in either phase — process death surfaced only as 401 re-logins (%d+%d)\n",
			r.RoundRobin.Relogins, r.Routed.Relogins)
	}
	return b.String()
}
