package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/controlplane"
	"repro/internal/detect"
	"repro/internal/ebid"
	"repro/internal/workload"
)

// --------------------------------------------- Fleet routing (extension)

// FleetRun is one routing discipline's outcome under overload with a
// degraded node.
type FleetRun struct {
	Policy string
	// Latency quantiles of served (successful) requests.
	P50, P95, P99 time.Duration
	// Over8s counts served requests past the web-abandonment limit.
	Over8s int64
	// Taw accounting.
	GoodOps, BadOps int64
	// Shed counts logins admission control turned away.
	Shed int64
	// MaxQueueDegraded/MaxQueueHealthy are the deepest queues the fleet
	// probe observed on the degraded node and on the best healthy node.
	MaxQueueDegraded, MaxQueueHealthy int
	// LostSessions counts stored sessions unreadable at the end
	// (claim: 0 — overload slows the fleet, it must not eat state).
	LostSessions int
	// Comparison-sampling evidence on this run's live traffic.
	SampledChecks, Discrepancies int64
}

// FleetResult compares static round-robin against queue-aware routing
// plus shedding on the same overloaded, partially degraded fleet.
type FleetResult struct {
	Nodes           int
	DegradedNode    string
	DegradedWorkers int
	Workers         int
	Clients         int
	Watermark       int

	RoundRobin FleetRun
	Routed     FleetRun
}

// queueWatch is a tiny plane controller recording the deepest queue the
// fleet probe saw per node.
type queueWatch struct{ max map[string]int }

func (q *queueWatch) Name() string { return "queue-watch" }
func (q *queueWatch) OnSignal(s controlplane.Signal) {
	if s.Kind == controlplane.SignalNodeLoad && s.Load.Queue > q.max[s.Node] {
		q.max[s.Node] = s.Load.Queue
	}
}
func (q *queueWatch) Tick(time.Duration) func() { return nil }
func (q *queueWatch) Status() any               { return q.max }

// FigureFleet runs the fleet-controller experiment: three nodes share
// an SSM brick cluster, node0 runs with half the workers (a degraded
// replica), and the client population is sized past the fleet's
// aggregate capacity — the regime of the paper's Figure 4, where
// servers without admission control let response times collapse. The
// run is repeated with the static round-robin balancer and with the
// control-plane fleet: queue-aware least-loaded routing plus shedding
// (new logins answered 503 + Retry-After while every queue is past the
// watermark). A sampled comparison detector rides the live traffic and
// publishes discrepancies on the same bus.
func FigureFleet(o Options) *FleetResult {
	const (
		nNodes          = 3
		workers         = 4
		degradedWorkers = 2
		perNode         = 1200 // fixed: the overload regime needs the full population
		watermark       = 16
	)
	res := &FleetResult{
		Nodes:           nNodes,
		DegradedNode:    nodeName(0),
		DegradedWorkers: degradedWorkers,
		Workers:         workers,
		Clients:         nNodes * perNode,
		Watermark:       watermark,
	}
	res.RoundRobin = runFleet(o, nil, perNode)
	res.Routed = runFleet(o, &cluster.SheddingPolicy{
		Inner:          cluster.LeastLoadedPolicy{},
		QueueWatermark: watermark,
	}, perNode)
	return res
}

// runFleet measures one routing discipline (nil policy: the round-robin
// default).
func runFleet(o Options, policy cluster.RoutingPolicy, perNode int) FleetRun {
	ce := newClusterEnvFull(o, 3, 0, useSharedCluster,
		cluster.NodeConfig{Workers: 4, CongestionScale: 200},
		nil,
		func(i int, cfg *cluster.NodeConfig) {
			if i == 0 {
				cfg.Workers = 2
			}
		})
	run := FleetRun{Policy: "round-robin"}
	if policy != nil {
		ce.lb.SetPolicy(policy)
		run.Policy = policy.Name()
	}

	// The control plane: the fleet probe samples every node each tick,
	// the fleet controller owns drain state (idle here — no recovery
	// fires), and a watcher keeps per-node queue high-water marks.
	plane := ce.fleetPlane(controlplane.FleetConfig{})
	qw := &queueWatch{max: map[string]int{}}
	plane.Use(qw)
	pumpPlane(ce.kernel, plane, time.Second)

	// The comparison detector samples the live stream against a
	// known-good instance sharing the database, publishing mismatches
	// as discrepancy signals.
	goodApp, err := ebid.New(ce.db, newStore(ce.kernel, useFastS), ce.kernel.Now)
	if err != nil {
		panic("experiments: known-good instance: " + err.Error())
	}
	sampler := &detect.Sampler{
		Comp:  &detect.Comparison{Good: goodApp},
		Every: 64,
		OnDiscrepancy: func(op string, v detect.Verdict) {
			plane.ReportDiscrepancy(op, v.Detail)
		},
	}

	ds := experimentDataset(o)
	em := workload.NewEmulator(ce.kernel, &detect.SampledFrontend{Inner: ce.lb, S: sampler},
		ce.recorder, workload.Config{
			Clients:      3 * perNode,
			StartStagger: time.Minute,
			Users:        int64(ds.Users),
			Items:        int64(ds.Items),
			Categories:   int64(ds.Categories),
			Regions:      int64(ds.Regions),
		})
	em.Start()
	ce.kernel.RunFor(o.scale(8 * time.Minute))
	em.Stop()
	em.FlushActions()
	ce.kernel.RunFor(time.Minute)

	run.P50 = ce.recorder.Latencies().Quantile(0.50)
	run.P95 = ce.recorder.Latencies().Quantile(0.95)
	run.P99 = ce.recorder.Latencies().Quantile(0.99)
	run.Over8s = ce.recorder.OverThreshold()
	run.GoodOps = ce.recorder.GoodOps()
	run.BadOps = ce.recorder.BadOps()
	run.Shed = ce.lb.Shed()
	for _, id := range ce.bricks.SessionIDs() {
		if _, err := ce.bricks.Read(id); err != nil {
			run.LostSessions++
		}
	}
	for name, q := range qw.max {
		if name == nodeName(0) {
			run.MaxQueueDegraded = q
		} else if q > run.MaxQueueHealthy {
			run.MaxQueueHealthy = q
		}
	}
	_, run.SampledChecks, _ = sampler.Stats()
	run.Discrepancies = plane.Status().Signals["discrepancy"]
	return run
}

// String renders the comparison.
func (r *FleetResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet routing (extension): %d nodes (%s degraded to %d/%d workers), %d clients past fleet capacity\n",
		r.Nodes, r.DegradedNode, r.DegradedWorkers, r.Workers, r.Clients)
	fmt.Fprintf(&b, "shedding watermark: %d queued/node; comparison detector sampling 1/64 of live reads\n\n", r.Watermark)
	fmt.Fprintf(&b, "%-18s %10s %10s %10s %8s %9s %7s %11s %11s %6s\n",
		"policy", "p50", "p95", "p99", ">8s", "good", "shed", "deg-queue", "ok-queue", "lost")
	for _, run := range []FleetRun{r.RoundRobin, r.Routed} {
		fmt.Fprintf(&b, "%-18s %10s %10s %10s %8d %9d %7d %11d %11d %6d\n",
			run.Policy,
			run.P50.Round(time.Millisecond), run.P95.Round(time.Millisecond), run.P99.Round(time.Millisecond),
			run.Over8s, run.GoodOps, run.Shed,
			run.MaxQueueDegraded, run.MaxQueueHealthy, run.LostSessions)
	}
	fmt.Fprintf(&b, "\ncomparison sampling: %d + %d replays, %d + %d discrepancies\n",
		r.RoundRobin.SampledChecks, r.Routed.SampledChecks,
		r.RoundRobin.Discrepancies, r.Routed.Discrepancies)
	if r.Routed.P99 > 0 {
		fmt.Fprintf(&b, "p99: %s vs %s — queue-aware routing + shedding holds the tail %.1fx lower under the same overload\n",
			r.RoundRobin.P99.Round(time.Millisecond), r.Routed.P99.Round(time.Millisecond),
			float64(r.RoundRobin.P99)/float64(r.Routed.P99))
	}
	return b.String()
}
