// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections 5 and 6). Each exported function runs one
// experiment on the simulation substrate and returns a structured result
// whose String method prints the same rows/series the paper reports.
//
// Absolute numbers are produced by the calibrated simulator, not the
// authors' 2004 testbed; EXPERIMENTS.md records paper-vs-measured values
// and verifies that the shape of every result (who wins, by what factor,
// where crossovers fall) is preserved.
package experiments

import (
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/controlplane"
	"repro/internal/ebid"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/store/db"
	"repro/internal/store/session"
	"repro/internal/workload"
)

// Options scales experiments; Quick shrinks durations and populations so
// the full suite runs in seconds (used by tests and benchmarks).
type Options struct {
	Quick bool
	// Seed selects the simulation seed. For backward compatibility a zero
	// Seed with SeedSet false means "use the documented default of 42";
	// set SeedSet to pin seed 0 explicitly (scenario specs and -seed do).
	Seed    int64
	SeedSet bool
	// ClusterStore selects the session store the multi-node cluster
	// experiments (Figures 3/4, Section 6.1) share across nodes: "fasts"
	// (default, node-local state — the paper's main configuration) or
	// "ssm-cluster" (a cross-node SSM brick cluster, the paper's §6.1
	// variant whose session state survives node restarts).
	ClusterStore string
}

// clusterKind maps ClusterStore onto the experiment store kind. Unknown
// names panic rather than silently measuring the wrong configuration.
func (o Options) clusterKind() storeKind {
	switch o.ClusterStore {
	case "ssm-cluster":
		return useSharedCluster
	case "ssm":
		return useSSM
	case "", "fasts":
		return useFastS
	default:
		panic("experiments: unknown ClusterStore " + strconv.Quote(o.ClusterStore))
	}
}

func (o Options) seed() int64 {
	if o.SeedSet {
		return o.Seed
	}
	if o.Seed == 0 {
		return 42
	}
	return o.Seed
}

// SeedValue reports the seed the experiment kernels will actually use
// (the documented default 42 unless a seed was given — zero counts as
// given only when SeedSet is true).
func (o Options) SeedValue() int64 { return o.seed() }

// scale shortens a duration in quick mode.
func (o Options) scale(d time.Duration) time.Duration {
	if o.Quick {
		return d / 4
	}
	return d
}

func (o Options) clients(n int) int {
	if o.Quick {
		return n / 2
	}
	return n
}

// Scaled exposes the quick-mode duration scaling to external drivers
// (the scenario engine shortens spec timelines exactly like figures).
func (o Options) Scaled(d time.Duration) time.Duration { return o.scale(d) }

// ScaledClients exposes the quick-mode population scaling.
func (o Options) ScaledClients(n int) int { return o.clients(n) }

// env is a single-node experiment environment.
type env struct {
	kernel   *sim.Kernel
	db       *db.DB
	store    session.Store
	node     *cluster.Node
	recorder *metrics.Recorder
	emulator *workload.Emulator
	injector *faults.Injector
	// bricks is non-nil when the store is the SSM brick cluster.
	bricks *session.SSMCluster
}

// storeKind selects the session store.
type storeKind int

const (
	useFastS storeKind = iota
	useSSM
	useSSMCluster
	// useSharedCluster gives every node of a multi-node environment the
	// same SSM brick cluster, so session state survives node restarts
	// and failover loses nothing.
	useSharedCluster
)

// newBrickCluster builds the standard 4×3 W=2 experiment brick cluster
// on the kernel's clock.
func newBrickCluster(k *sim.Kernel) *session.SSMCluster {
	cl, err := session.NewSSMCluster(session.ClusterConfig{
		Shards: 4, Replicas: 3, WriteQuorum: 2, Now: k.Now, LeaseTTL: time.Hour,
	})
	if err != nil {
		panic("experiments: cluster store: " + err.Error())
	}
	return cl
}

// newStore builds the session store for a kind on the kernel's clock.
func newStore(k *sim.Kernel, kind storeKind) session.Store {
	switch kind {
	case useSSM:
		return session.NewSSM(k.Now, time.Hour)
	case useSSMCluster, useSharedCluster:
		return newBrickCluster(k)
	default:
		return session.NewFastS()
	}
}

func experimentDataset(o Options) ebid.DatasetConfig {
	cfg := ebid.DefaultDataset()
	if o.Quick {
		cfg.Users, cfg.Items, cfg.OldItems = 100, 500, 50
	}
	return cfg
}

// newEnv builds a one-node environment with an emulated client
// population.
func newEnv(o Options, clients int, kind storeKind, nodeCfg cluster.NodeConfig) *env {
	k := sim.NewKernel(o.seed())
	d := db.New(nil)
	ds := experimentDataset(o)
	if err := ebid.LoadDataset(d, ds); err != nil {
		panic("experiments: dataset: " + err.Error())
	}
	store := newStore(k, kind)
	nodeCfg.Dataset = ds
	if nodeCfg.Name == "" {
		nodeCfg.Name = "node0"
	}
	n, err := cluster.NewNode(k, d, store, nodeCfg)
	if err != nil {
		panic("experiments: node: " + err.Error())
	}
	rec := metrics.NewRecorder(time.Second, 8*time.Second)
	em := workload.NewEmulator(k, n, rec, workload.Config{
		Clients:    clients,
		Users:      int64(ds.Users),
		Items:      int64(ds.Items),
		Categories: int64(ds.Categories),
		Regions:    int64(ds.Regions),
	})
	e := &env{
		kernel:   k,
		db:       d,
		store:    store,
		node:     n,
		recorder: rec,
		emulator: em,
		injector: faults.NewInjector(n.Server(), d, store),
	}
	if cl, ok := store.(*session.SSMCluster); ok {
		e.bricks = cl
	}
	return e
}

// clusterEnv is a multi-node environment sharing one database (and one
// SSM when requested), with a load balancer in front.
type clusterEnv struct {
	kernel   *sim.Kernel
	db       *db.DB
	nodes    []*cluster.Node
	lb       *cluster.LoadBalancer
	recorder *metrics.Recorder
	emulator *workload.Emulator
	// injectors, one per node.
	injectors []*faults.Injector
	sharedSSM *session.SSM
	// bricks is the cross-node brick cluster shared by every node when
	// the environment was built with useSharedCluster.
	bricks *session.SSMCluster
	// plane/fleet are set by fleetPlane: the control plane owning the
	// balancer's drain state.
	plane *controlplane.Plane
	fleet *controlplane.FleetController
}

func newClusterEnv(o Options, nNodes, clientsPerNode int, kind storeKind) *clusterEnv {
	return newClusterEnvCfg(o, nNodes, clientsPerNode, kind, cluster.NodeConfig{})
}

func newClusterEnvCfg(o Options, nNodes, clientsPerNode int, kind storeKind, nodeCfg cluster.NodeConfig) *clusterEnv {
	return newClusterEnvFull(o, nNodes, clientsPerNode, kind, nodeCfg, nil, nil)
}

// newClusterEnvFull is newClusterEnvCfg plus an optional brick-cluster
// builder, so experiments that need a non-standard ring geometry (the
// autoscaler figure starts small, with a short lease TTL) can supply
// their own shared cluster, and an optional per-node config hook for
// heterogeneous fleets (the fleet figure degrades one node's worker
// pool).
func newClusterEnvFull(o Options, nNodes, clientsPerNode int, kind storeKind, nodeCfg cluster.NodeConfig, bricks func(*sim.Kernel) *session.SSMCluster, perNode func(i int, cfg *cluster.NodeConfig)) *clusterEnv {
	k := sim.NewKernel(o.seed())
	d := db.New(nil)
	ds := experimentDataset(o)
	if err := ebid.LoadDataset(d, ds); err != nil {
		panic("experiments: dataset: " + err.Error())
	}
	ce := &clusterEnv{kernel: k, db: d}
	switch kind {
	case useSSM:
		ce.sharedSSM = session.NewSSM(k.Now, time.Hour)
	case useSharedCluster:
		if bricks != nil {
			ce.bricks = bricks(k)
		} else {
			ce.bricks = newBrickCluster(k)
		}
	}
	for i := 0; i < nNodes; i++ {
		var store session.Store
		switch kind {
		case useSSM:
			store = ce.sharedSSM
		case useSharedCluster:
			store = ce.bricks
		default:
			store = session.NewFastS()
		}
		cfg := nodeCfg
		cfg.Name = nodeName(i)
		cfg.Dataset = ds
		if perNode != nil {
			perNode(i, &cfg)
		}
		n, err := cluster.NewNode(k, d, store, cfg)
		if err != nil {
			panic("experiments: node: " + err.Error())
		}
		ce.nodes = append(ce.nodes, n)
		ce.injectors = append(ce.injectors, faults.NewInjector(n.Server(), d, store))
	}
	ce.lb = cluster.NewLoadBalancer(ce.nodes)
	ce.recorder = metrics.NewRecorder(time.Second, 8*time.Second)
	ce.emulator = workload.NewEmulator(k, ce.lb, ce.recorder, workload.Config{
		Clients:    nNodes * clientsPerNode,
		Users:      int64(ds.Users),
		Items:      int64(ds.Items),
		Categories: int64(ds.Categories),
		Regions:    int64(ds.Regions),
	})
	return ce
}

func nodeName(i int) string {
	return "node" + string(rune('0'+i))
}

// fleetPlane attaches a control plane whose FleetController owns the
// balancer's drain state: experiments stop flipping the LB directly and
// publish node-recovery signals instead, exactly as a recovery manager
// bound via controlplane.BindRecoveryLifecycle would.
func (ce *clusterEnv) fleetPlane(cfg controlplane.FleetConfig) *controlplane.Plane {
	ce.plane = controlplane.New(controlplane.Config{Clock: ce.kernel.Now, Fleet: ce.lb})
	ce.fleet = controlplane.NewFleetController(ce.lb, cfg)
	ce.plane.Use(ce.fleet)
	return ce.plane
}

// pumpEvery schedules fn as a recurring kernel event — the simulation
// analog of a live server's background ticker goroutine.
func pumpEvery(k *sim.Kernel, every time.Duration, fn func()) {
	var tick func()
	tick = func() {
		fn()
		k.Schedule(every, tick)
	}
	k.Schedule(every, tick)
}

// pumpMigration advances the brick cluster's migrator on a recurring
// schedule; the step is a cheap no-op while no ring change is in flight.
func pumpMigration(k *sim.Kernel, cl *session.SSMCluster, every time.Duration, batch int) {
	pumpEvery(k, every, func() { cl.MigrateStep(batch) })
}

// pumpPlane runs one control-plane observe–decide–act round per period.
func pumpPlane(k *sim.Kernel, plane *controlplane.Plane, every time.Duration) {
	pumpEvery(k, every, plane.Tick)
}

// pumpReaper runs recurring lease GC on the brick cluster. Without it, a
// load-watching controller would keep counting sessions whose leases
// lapsed long ago.
func pumpReaper(k *sim.Kernel, cl *session.SSMCluster, every time.Duration) {
	pumpEvery(k, every, func() { cl.ReapExpired() })
}
