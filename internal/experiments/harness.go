// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections 5 and 6). Each exported function runs one
// experiment on the simulation substrate and returns a structured result
// whose String method prints the same rows/series the paper reports.
//
// Absolute numbers are produced by the calibrated simulator, not the
// authors' 2004 testbed; EXPERIMENTS.md records paper-vs-measured values
// and verifies that the shape of every result (who wins, by what factor,
// where crossovers fall) is preserved.
package experiments

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/ebid"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/store/db"
	"repro/internal/store/session"
	"repro/internal/workload"
)

// Options scales experiments; Quick shrinks durations and populations so
// the full suite runs in seconds (used by tests and benchmarks).
type Options struct {
	Quick bool
	Seed  int64
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 42
	}
	return o.Seed
}

// scale shortens a duration in quick mode.
func (o Options) scale(d time.Duration) time.Duration {
	if o.Quick {
		return d / 4
	}
	return d
}

func (o Options) clients(n int) int {
	if o.Quick {
		return n / 2
	}
	return n
}

// env is a single-node experiment environment.
type env struct {
	kernel   *sim.Kernel
	db       *db.DB
	store    session.Store
	node     *cluster.Node
	recorder *metrics.Recorder
	emulator *workload.Emulator
	injector *faults.Injector
	// bricks is non-nil when the store is the SSM brick cluster.
	bricks *session.SSMCluster
}

// storeKind selects the session store.
type storeKind int

const (
	useFastS storeKind = iota
	useSSM
	useSSMCluster
)

// newStore builds the session store for a kind on the kernel's clock.
func newStore(k *sim.Kernel, kind storeKind) session.Store {
	switch kind {
	case useSSM:
		return session.NewSSM(k.Now, time.Hour)
	case useSSMCluster:
		cl, err := session.NewSSMCluster(session.ClusterConfig{
			Shards: 4, Replicas: 3, WriteQuorum: 2, Now: k.Now, LeaseTTL: time.Hour,
		})
		if err != nil {
			panic("experiments: cluster store: " + err.Error())
		}
		return cl
	default:
		return session.NewFastS()
	}
}

func experimentDataset(o Options) ebid.DatasetConfig {
	cfg := ebid.DefaultDataset()
	if o.Quick {
		cfg.Users, cfg.Items, cfg.OldItems = 100, 500, 50
	}
	return cfg
}

// newEnv builds a one-node environment with an emulated client
// population.
func newEnv(o Options, clients int, kind storeKind, nodeCfg cluster.NodeConfig) *env {
	k := sim.NewKernel(o.seed())
	d := db.New(nil)
	ds := experimentDataset(o)
	if err := ebid.LoadDataset(d, ds); err != nil {
		panic("experiments: dataset: " + err.Error())
	}
	store := newStore(k, kind)
	nodeCfg.Dataset = ds
	if nodeCfg.Name == "" {
		nodeCfg.Name = "node0"
	}
	n, err := cluster.NewNode(k, d, store, nodeCfg)
	if err != nil {
		panic("experiments: node: " + err.Error())
	}
	rec := metrics.NewRecorder(time.Second, 8*time.Second)
	em := workload.NewEmulator(k, n, rec, workload.Config{
		Clients:    clients,
		Users:      int64(ds.Users),
		Items:      int64(ds.Items),
		Categories: int64(ds.Categories),
		Regions:    int64(ds.Regions),
	})
	e := &env{
		kernel:   k,
		db:       d,
		store:    store,
		node:     n,
		recorder: rec,
		emulator: em,
		injector: faults.NewInjector(n.Server(), d, store),
	}
	if cl, ok := store.(*session.SSMCluster); ok {
		e.bricks = cl
	}
	return e
}

// clusterEnv is a multi-node environment sharing one database (and one
// SSM when requested), with a load balancer in front.
type clusterEnv struct {
	kernel   *sim.Kernel
	db       *db.DB
	nodes    []*cluster.Node
	lb       *cluster.LoadBalancer
	recorder *metrics.Recorder
	emulator *workload.Emulator
	// injectors, one per node.
	injectors []*faults.Injector
	sharedSSM *session.SSM
}

func newClusterEnv(o Options, nNodes, clientsPerNode int, kind storeKind) *clusterEnv {
	return newClusterEnvCfg(o, nNodes, clientsPerNode, kind, cluster.NodeConfig{})
}

func newClusterEnvCfg(o Options, nNodes, clientsPerNode int, kind storeKind, nodeCfg cluster.NodeConfig) *clusterEnv {
	k := sim.NewKernel(o.seed())
	d := db.New(nil)
	ds := experimentDataset(o)
	if err := ebid.LoadDataset(d, ds); err != nil {
		panic("experiments: dataset: " + err.Error())
	}
	ce := &clusterEnv{kernel: k, db: d}
	if kind == useSSM {
		ce.sharedSSM = session.NewSSM(k.Now, time.Hour)
	}
	for i := 0; i < nNodes; i++ {
		var store session.Store
		if kind == useSSM {
			store = ce.sharedSSM
		} else {
			store = session.NewFastS()
		}
		cfg := nodeCfg
		cfg.Name = nodeName(i)
		cfg.Dataset = ds
		n, err := cluster.NewNode(k, d, store, cfg)
		if err != nil {
			panic("experiments: node: " + err.Error())
		}
		ce.nodes = append(ce.nodes, n)
		ce.injectors = append(ce.injectors, faults.NewInjector(n.Server(), d, store))
	}
	ce.lb = cluster.NewLoadBalancer(ce.nodes)
	ce.recorder = metrics.NewRecorder(time.Second, 8*time.Second)
	ce.emulator = workload.NewEmulator(k, ce.lb, ce.recorder, workload.Config{
		Clients:    nNodes * clientsPerNode,
		Users:      int64(ds.Users),
		Items:      int64(ds.Items),
		Categories: int64(ds.Categories),
		Regions:    int64(ds.Regions),
	})
	return ce
}

func nodeName(i int) string {
	return "node" + string(rune('0'+i))
}
