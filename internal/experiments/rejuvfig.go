package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/ebid"
	"repro/internal/faults"
	"repro/internal/rejuv"
)

// ---------------------------------------------------------------- Figure 6

// Figure6Result is the microrejuvenation experiment: available memory
// over time with leaks in Item and ViewItem, and failed-request totals
// for µRB-based vs JVM-restart-based rejuvenation.
type Figure6Result struct {
	// Samples is the µRB run's available-memory timeline.
	Samples []rejuv.Sample
	// MicroFailed and RestartFailed are failed requests over the run
	// (paper: 1,383 vs 11,915).
	MicroFailed, RestartFailed int64
	// MicroRejuvenations / MicroComponentReboots / RestartCount.
	MicroRejuvenations    int
	MicroComponentReboots int
	RestartCount          int
	// GoodputNeverZero reports whether good Taw stayed above zero
	// throughout the µRB run (the paper's qualitative claim).
	GoodputNeverZero bool
}

// Figure6 injects a 2 KB/invocation leak in Item (via the entity path)
// and a 250 KB/invocation leak in ViewItem, with Malarm at 35% and
// Msufficient at 80% of a 1 GB heap, then runs rejuvenation for 30
// minutes in both modes.
func Figure6(o Options) *Figure6Result {
	run := func(useRestart bool) (*rejuv.Service, *env) {
		e := newEnv(o, o.clients(500), useFastS, cluster.NodeConfig{})
		// The paper chose leak rates that keep the experiment under 30
		// minutes; in quick mode the shorter run needs faster leaks.
		itemLeak, viewLeak := int64(2<<10), int64(250<<10)
		if o.Quick {
			viewLeak *= 4
		}
		if _, err := e.injector.Inject(faults.Spec{
			Kind: faults.AppMemoryLeak, Component: ebid.EntItem, LeakPerCall: itemLeak,
		}); err != nil {
			panic(err)
		}
		if _, err := e.injector.Inject(faults.Spec{
			Kind: faults.AppMemoryLeak, Component: ebid.ViewItem, LeakPerCall: viewLeak,
		}); err != nil {
			panic(err)
		}
		heap := rejuv.NewHeap(1<<30, 64<<20, e.node.Server(), nil)
		svc := rejuv.NewService(e.kernel, e.node, e.node.Server(), heap, rejuv.Config{
			Malarm:            350 << 20,
			Msufficient:       800 << 20,
			Interval:          5 * time.Second,
			UseProcessRestart: useRestart,
		})
		svc.Start()
		e.emulator.Start()
		e.kernel.RunFor(o.scale(30 * time.Minute))
		svc.Stop()
		e.emulator.Stop()
		e.emulator.FlushActions()
		e.kernel.RunFor(30 * time.Second)
		return svc, e
	}

	microSvc, microEnv := run(false)
	restartSvc, restartEnv := run(true)

	res := &Figure6Result{
		Samples:               microSvc.Samples,
		MicroFailed:           microEnv.recorder.BadOps(),
		RestartFailed:         restartEnv.recorder.BadOps(),
		MicroRejuvenations:    microSvc.Rejuvenations,
		MicroComponentReboots: microSvc.ComponentReboots,
		RestartCount:          restartSvc.ProcessRestarts,
	}
	// Check good Taw never hit zero during the µRB run (ignoring the
	// ramp-up minute).
	good, _ := microEnv.recorder.Buckets()
	res.GoodputNeverZero = true
	for i := 60; i < len(good)-1; i++ {
		if good[i] == 0 {
			res.GoodputNeverZero = false
			break
		}
	}
	return res
}

// String renders the rejuvenation summary with a coarse memory sparkline.
func (r *Figure6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: microrejuvenation under injected leaks (Item 2KB/call, ViewItem 250KB/call)\n")
	fmt.Fprintf(&b, "failed requests: µRB rejuvenation=%d, JVM-restart rejuvenation=%d (paper: 1,383 vs 11,915)\n",
		r.MicroFailed, r.RestartFailed)
	fmt.Fprintf(&b, "µRB rejuvenation episodes: %d (%d component reboots); JVM restarts in baseline: %d\n",
		r.MicroRejuvenations, r.MicroComponentReboots, r.RestartCount)
	fmt.Fprintf(&b, "good Taw never dropped to zero during microrejuvenation: %v (paper: true)\n", r.GoodputNeverZero)
	if r.MicroFailed > 0 {
		fmt.Fprintf(&b, "improvement: %.0fx fewer failed requests (paper: ~8.6x)\n",
			float64(r.RestartFailed)/float64(r.MicroFailed))
	}
	// Sparkline of available memory, one char per ~minute.
	if len(r.Samples) > 0 {
		const levels = " .:-=+*#%@"
		step := len(r.Samples) / 60
		if step == 0 {
			step = 1
		}
		b.WriteString("available memory: [")
		for i := 0; i < len(r.Samples); i += step {
			frac := float64(r.Samples[i].Available) / float64(1<<30)
			idx := int(frac * float64(len(levels)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(levels) {
				idx = len(levels) - 1
			}
			b.WriteByte(levels[idx])
		}
		b.WriteString("]\n")
	}
	return b.String()
}
