package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/controlplane"
	"repro/internal/ebid"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/store/db"
	"repro/internal/store/session"
	"repro/internal/workload"
)

// HarnessConfig describes the simulated environment an external driver —
// chiefly the declarative scenario engine in internal/scenario — wants
// built. It is the exported face of the same machinery the figures use
// (newClusterEnvFull), with errors instead of panics so a bad spec fails
// the scenario rather than the process.
type HarnessConfig struct {
	// Nodes is the application-server fleet size (default 1). Even a
	// single node sits behind a LoadBalancer so routing policies, drains
	// and fleet probes work uniformly.
	Nodes int
	// Store selects the session store: "fasts" (default, node-local),
	// "ssm" (one shared single-node SSM) or "ssm-cluster" (a shared
	// sharded/replicated brick cluster).
	Store string
	// Shards/Replicas/WriteQuorum/LeaseTTL set the brick-cluster
	// geometry when Store is "ssm-cluster" (defaults 4 × 3, W=2, 1 h).
	Shards, Replicas, WriteQuorum int
	LeaseTTL                      time.Duration
	// Node is the base per-node configuration (workers, congestion
	// model, retries); PerNode may specialize individual nodes
	// (heterogeneous fleets, e.g. one degraded replica).
	Node    cluster.NodeConfig
	PerNode func(i int, cfg *cluster.NodeConfig)
}

// Harness is a fully wired multi-node experiment environment: kernel,
// database, session store, nodes behind a load balancer, a Taw recorder
// and one fault injector per node. It is what scenario specs are
// interpreted onto.
type Harness struct {
	Opts      Options
	Kernel    *sim.Kernel
	DB        *db.DB
	Dataset   ebid.DatasetConfig
	Nodes     []*cluster.Node
	LB        *cluster.LoadBalancer
	Recorder  *metrics.Recorder
	Injectors []*faults.Injector
	// Bricks is the shared brick cluster (nil unless Store was
	// "ssm-cluster"); SharedSSM likewise for "ssm".
	Bricks    *session.SSMCluster
	SharedSSM *session.SSM
}

// NewHarness builds the environment. Unknown store names and invalid
// brick geometries are errors, not panics.
func NewHarness(o Options, cfg HarnessConfig) (*Harness, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	k := sim.NewKernel(o.seed())
	d := db.New(nil)
	ds := experimentDataset(o)
	if err := ebid.LoadDataset(d, ds); err != nil {
		return nil, fmt.Errorf("harness: dataset: %w", err)
	}
	h := &Harness{Opts: o, Kernel: k, DB: d, Dataset: ds}
	switch cfg.Store {
	case "", "fasts":
	case "ssm":
		ttl := cfg.LeaseTTL
		if ttl == 0 {
			ttl = time.Hour
		}
		h.SharedSSM = session.NewSSM(k.Now, ttl)
	case "ssm-cluster":
		ccfg := session.ClusterConfig{
			Shards:      cfg.Shards,
			Replicas:    cfg.Replicas,
			WriteQuorum: cfg.WriteQuorum,
			LeaseTTL:    cfg.LeaseTTL,
			Now:         k.Now,
		}
		if ccfg.Shards == 0 {
			ccfg.Shards = 4
		}
		if ccfg.Replicas == 0 {
			ccfg.Replicas = 3
		}
		if ccfg.WriteQuorum == 0 {
			ccfg.WriteQuorum = 2
		}
		if ccfg.LeaseTTL == 0 {
			ccfg.LeaseTTL = time.Hour
		}
		cl, err := session.NewSSMCluster(ccfg)
		if err != nil {
			return nil, fmt.Errorf("harness: brick cluster: %w", err)
		}
		h.Bricks = cl
	default:
		return nil, fmt.Errorf("harness: unknown store %q (want fasts, ssm or ssm-cluster)", cfg.Store)
	}
	for i := 0; i < cfg.Nodes; i++ {
		var store session.Store
		switch {
		case h.Bricks != nil:
			store = h.Bricks
		case h.SharedSSM != nil:
			store = h.SharedSSM
		default:
			store = session.NewFastS()
		}
		ncfg := cfg.Node
		ncfg.Name = nodeName(i)
		ncfg.Dataset = ds
		if cfg.PerNode != nil {
			cfg.PerNode(i, &ncfg)
		}
		n, err := cluster.NewNode(k, d, store, ncfg)
		if err != nil {
			return nil, fmt.Errorf("harness: node %d: %w", i, err)
		}
		h.Nodes = append(h.Nodes, n)
		h.Injectors = append(h.Injectors, faults.NewInjector(n.Server(), d, store))
	}
	h.LB = cluster.NewLoadBalancer(h.Nodes)
	h.Recorder = metrics.NewRecorder(time.Second, 8*time.Second)
	return h, nil
}

// NewEmulator builds a client population against the harness balancer,
// with dataset cardinalities pre-filled. idOffset keeps session ids of
// several populations (baseline + surges) distinct.
func (h *Harness) NewEmulator(clients, idOffset int, cfg workload.Config) *workload.Emulator {
	cfg.Clients = clients
	cfg.ClientIDOffset = idOffset
	cfg.Users = int64(h.Dataset.Users)
	cfg.Items = int64(h.Dataset.Items)
	cfg.Categories = int64(h.Dataset.Categories)
	cfg.Regions = int64(h.Dataset.Regions)
	return workload.NewEmulator(h.Kernel, h.LB, h.Recorder, cfg)
}

// PumpEvery schedules fn as a recurring kernel event.
func (h *Harness) PumpEvery(every time.Duration, fn func()) { pumpEvery(h.Kernel, every, fn) }

// PumpPlane runs one control-plane round per period.
func (h *Harness) PumpPlane(plane *controlplane.Plane, every time.Duration) {
	pumpPlane(h.Kernel, plane, every)
}

// PumpMigration advances the brick migrator on a recurring schedule (a
// no-op harness without a brick cluster).
func (h *Harness) PumpMigration(every time.Duration, batch int) {
	if h.Bricks != nil {
		pumpMigration(h.Kernel, h.Bricks, every, batch)
	}
}

// PumpReaper runs recurring lease GC on the brick cluster.
func (h *Harness) PumpReaper(every time.Duration) {
	if h.Bricks != nil {
		pumpReaper(h.Kernel, h.Bricks, every)
	}
}

// BrickRestarts sums restart counts across live bricks.
func (h *Harness) BrickRestarts() int {
	if h.Bricks == nil {
		return 0
	}
	total := 0
	for _, b := range h.Bricks.Bricks() {
		total += b.Restarts()
	}
	return total
}
