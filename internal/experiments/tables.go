package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/ebid"
	"repro/internal/faults"
	"repro/internal/workload"
)

// ---------------------------------------------------------------- Table 1

// Table1Result is the observed client workload mix.
type Table1Result struct {
	Total int64
	// Share maps Table 1 categories to their observed fraction.
	Share map[string]float64
}

// Table1 runs the client emulator at steady state and measures the
// operation mix by category.
func Table1(o Options) *Table1Result {
	e := newEnv(o, o.clients(500), useFastS, cluster.NodeConfig{})
	counts := map[string]int64{}
	var total int64
	e.emulator.OnFailure(func(int, string, workload.Response) {})
	// Count by intercepting completions through the recorder's ops is
	// indirect; instead track issued ops via a shim frontend.
	// Simpler: re-run classification over recorder buckets is lossy, so
	// we count in the Complete callback by wrapping the node.
	ds := experimentDataset(o)
	counter := &countingFrontend{inner: e.node, counts: counts}
	em := workload.NewEmulator(e.kernel, counter, nil, workload.Config{
		Clients:    o.clients(500),
		Users:      int64(ds.Users),
		Items:      int64(ds.Items),
		Categories: int64(ds.Categories),
		Regions:    int64(ds.Regions),
	})
	em.Start()
	e.kernel.RunFor(o.scale(40 * time.Minute))
	em.Stop()
	for _, n := range counts {
		total += n
	}
	res := &Table1Result{Total: total, Share: map[string]float64{}}
	for op, n := range counts {
		info, ok := ebid.Info(op)
		if !ok {
			continue
		}
		res.Share[info.Category] += float64(n) / float64(total)
	}
	return res
}

type countingFrontend struct {
	inner  workload.Frontend
	counts map[string]int64
}

func (c *countingFrontend) Submit(req *workload.Request) {
	c.counts[req.Op]++
	c.inner.Submit(req)
}

// String renders the table next to the paper's numbers.
func (r *Table1Result) String() string {
	paper := map[string]float64{
		ebid.CatReadOnlyDB:    0.32,
		ebid.CatSessionInit:   0.23,
		ebid.CatStatic:        0.12,
		ebid.CatSearch:        0.12,
		ebid.CatSessionUpdate: 0.11,
		ebid.CatDBUpdate:      0.10,
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: client workload mix (%d requests)\n", r.Total)
	fmt.Fprintf(&b, "%-48s %9s %7s\n", "category", "measured", "paper")
	for _, cat := range []string{ebid.CatReadOnlyDB, ebid.CatSessionInit, ebid.CatStatic,
		ebid.CatSearch, ebid.CatSessionUpdate, ebid.CatDBUpdate} {
		fmt.Fprintf(&b, "%-48s %8.1f%% %6.0f%%\n", cat, r.Share[cat]*100, paper[cat]*100)
	}
	return b.String()
}

// ---------------------------------------------------------------- Table 2

// Table2Row is one fault-injection outcome.
type Table2Row struct {
	Fault        string
	Mode         faults.Mode
	ObservedCure string
	PaperCure    string
	RepairNeeded bool
	Match        bool
}

// Table2Result is the full worst-case recovery matrix.
type Table2Result struct{ Rows []Table2Row }

// table2Campaign lists every Table 2 fault with the paper's worst-case
// reboot level.
type table2Case struct {
	spec  faults.Spec
	paper string
	// probeOp exercises the faulty path; probeSession logs in first.
	probeOp      string
	probeArgs    core.ArgMap
	probeSession bool
}

func table2Cases() []table2Case {
	return []table2Case{
		{faults.Spec{Kind: faults.Deadlock, Component: ebid.MakeBid}, "EJB", ebid.MakeBid, core.ArgMap{"item": int64(1)}, true},
		{faults.Spec{Kind: faults.InfiniteLoop, Component: ebid.ViewItem}, "EJB", ebid.ViewItem, core.ArgMap{"item": int64(1)}, false},
		{faults.Spec{Kind: faults.AppMemoryLeak, Component: ebid.ViewItem, LeakPerCall: 1 << 20}, "EJB", ebid.ViewItem, core.ArgMap{"item": int64(1)}, false},
		{faults.Spec{Kind: faults.TransientException, Component: ebid.BrowseCategories}, "EJB", ebid.BrowseCategories, nil, false},

		{faults.Spec{Kind: faults.CorruptPrimaryKeys, Mode: faults.ModeNull}, "EJB", ebid.RegisterNewItem, core.ArgMap{"category": int64(1)}, true},
		{faults.Spec{Kind: faults.CorruptPrimaryKeys, Mode: faults.ModeInvalid}, "EJB", ebid.RegisterNewItem, core.ArgMap{"category": int64(1)}, true},
		{faults.Spec{Kind: faults.CorruptPrimaryKeys, Mode: faults.ModeWrong}, "EJB ≈", ebid.RegisterNewItem, core.ArgMap{"category": int64(1)}, true},

		{faults.Spec{Kind: faults.CorruptNaming, Component: ebid.ViewUserInfo, Mode: faults.ModeNull}, "EJB", ebid.ViewUserInfo, core.ArgMap{"user": int64(1)}, false},
		{faults.Spec{Kind: faults.CorruptNaming, Component: ebid.ViewUserInfo, Mode: faults.ModeInvalid}, "EJB", ebid.ViewUserInfo, core.ArgMap{"user": int64(1)}, false},
		{faults.Spec{Kind: faults.CorruptNaming, Component: ebid.ViewUserInfo, Mode: faults.ModeWrong}, "EJB", ebid.ViewUserInfo, core.ArgMap{"user": int64(1)}, false},

		{faults.Spec{Kind: faults.CorruptTxMethodMap, Component: ebid.CommitBid, Mode: faults.ModeNull}, "EJB", ebid.CommitBid, core.ArgMap{"amount": 5.0}, true},
		{faults.Spec{Kind: faults.CorruptTxMethodMap, Component: ebid.CommitBid, Mode: faults.ModeInvalid}, "EJB", ebid.CommitBid, core.ArgMap{"amount": 5.0}, true},
		{faults.Spec{Kind: faults.CorruptTxMethodMap, Component: ebid.CommitBid, Mode: faults.ModeWrong}, "EJB ≈", ebid.CommitBid, core.ArgMap{"amount": 5.0}, true},

		{faults.Spec{Kind: faults.CorruptSessionAttrs, Component: ebid.ViewItem, Mode: faults.ModeNull}, "unnecessary", ebid.ViewItem, core.ArgMap{"item": int64(1)}, false},
		{faults.Spec{Kind: faults.CorruptSessionAttrs, Component: ebid.ViewItem, Mode: faults.ModeInvalid}, "unnecessary", ebid.ViewItem, core.ArgMap{"item": int64(1)}, false},
		{faults.Spec{Kind: faults.CorruptSessionAttrs, Component: ebid.ViewItem, Mode: faults.ModeWrong}, "EJB+WAR ≈", ebid.ViewItem, core.ArgMap{"item": int64(1)}, false},

		{faults.Spec{Kind: faults.CorruptFastS, SessionID: "probe", Mode: faults.ModeNull}, "WAR", ebid.AboutMe, nil, true},
		{faults.Spec{Kind: faults.CorruptFastS, SessionID: "probe", Mode: faults.ModeInvalid}, "WAR", ebid.AboutMe, nil, true},
		{faults.Spec{Kind: faults.CorruptFastS, SessionID: "probe", Mode: faults.ModeWrong}, "WAR ≈", ebid.AboutMe, nil, true},

		{faults.Spec{Kind: faults.CorruptSSM, SessionID: "probe"}, "checksum auto-discard", ebid.AboutMe, nil, true},
		{faults.Spec{Kind: faults.CorruptDB, Table: ebid.TblUsers, RowKey: 2, Column: "region", Mode: faults.ModeInvalid}, "table repair", ebid.ViewUserInfo, core.ArgMap{"user": int64(2)}, false},

		{faults.Spec{Kind: faults.MemLeakIntraJVM}, "JVM/JBoss", "", nil, false},
		{faults.Spec{Kind: faults.MemLeakExtraJVM}, "OS kernel", "", nil, false},
		{faults.Spec{Kind: faults.BitFlipMemory}, "JVM/JBoss ≈", ebid.OpHome, nil, false},
		{faults.Spec{Kind: faults.BitFlipRegisters}, "JVM/JBoss ≈", ebid.OpHome, nil, false},
		{faults.Spec{Kind: faults.BadSyscall}, "JVM/JBoss", ebid.OpHome, nil, false},
	}
}

// Table2 injects every fault of the paper's campaign into a fresh
// instance, drives the recursive recovery policy, and reports the
// observed worst-case reboot level against the paper's.
func Table2(o Options) *Table2Result {
	res := &Table2Result{}
	for _, tc := range table2Cases() {
		res.Rows = append(res.Rows, runTable2Case(o, tc))
	}
	return res
}

func runTable2Case(o Options, tc table2Case) Table2Row {
	storeKind := useFastS
	if tc.spec.Kind == faults.CorruptSSM {
		storeKind = useSSM
	}
	e := newEnv(o, 0, storeKind, cluster.NodeConfig{})
	app := e.node.App()

	// Establish the probe session when needed.
	if tc.probeSession {
		if _, err := app.Execute(context.Background(), &core.Call{Op: ebid.Authenticate, SessionID: "probe",
			Args: core.ArgMap{"user": int64(2)}}); err != nil {
			panic("experiments: probe login: " + err.Error())
		}
		if tc.probeOp == ebid.CommitBid || tc.probeOp == ebid.MakeBid {
			if _, err := app.Execute(context.Background(), &core.Call{Op: ebid.MakeBid, SessionID: "probe",
				Args: core.ArgMap{"item": int64(1)}}); err != nil {
				panic("experiments: probe MakeBid: " + err.Error())
			}
		}
	}

	f, err := e.injector.Inject(tc.spec)
	if err != nil {
		panic("experiments: inject " + tc.spec.Kind.String() + ": " + err.Error())
	}

	observed := driveRecursiveRecovery(e, f, tc)
	row := Table2Row{
		Fault:        tc.spec.Kind.String(),
		Mode:         tc.spec.Mode,
		ObservedCure: observed,
		PaperCure:    tc.paper,
		RepairNeeded: f.DataRepairNeeded,
	}
	row.Match = strings.TrimSuffix(strings.TrimSpace(row.PaperCure), " ≈") == row.ObservedCure ||
		strings.HasPrefix(row.PaperCure, row.ObservedCure)
	return row
}

// driveRecursiveRecovery applies the cheapest-first policy until the
// fault clears (per the injector's cure semantics) or the policy is
// exhausted. The health probe is the stand-in for the paper's
// comparison-based detector: it re-exercises the faulty path and, for
// silent wrong-data faults, consults the fault's own activity (which is
// what a comparison against a known-good instance would reveal).
func driveRecursiveRecovery(e *env, f *faults.ActiveFault, tc table2Case) string {
	app := e.node.App()
	exec := func(op, sess string, args core.ArgMap) error {
		_, err := app.Execute(context.Background(), &core.Call{Op: op, SessionID: sess, Args: args})
		return err
	}
	errStill := fmt.Errorf("fault symptoms persist")

	// attempt exercises the faulty path; relogin re-establishes session
	// state first (needed after recoveries that scrub or discard it).
	attempt := func(relogin bool) error {
		if tc.spec.Kind == faults.AppMemoryLeak {
			// A leak's symptom is unreclaimed memory, not request
			// failures: pump calls, then check the container's leak.
			c, err := e.node.Server().Container(tc.spec.Component)
			if err != nil {
				return err
			}
			before := c.LeakedBytes()
			if err := exec(tc.probeOp, "", tc.probeArgs); err != nil {
				return err
			}
			if before > 1<<24 { // accumulated leak past the alarm point
				return errStill
			}
			return nil
		}
		for i := 0; i < 3; i++ { // 3 probes catch intermittent faults
			sess := ""
			if tc.probeSession {
				sess = "probe"
				if relogin {
					if err := exec(ebid.Authenticate, sess, core.ArgMap{"user": int64(2)}); err != nil {
						return err
					}
				}
				if tc.probeOp == ebid.CommitBid {
					if err := exec(ebid.MakeBid, sess, core.ArgMap{"item": int64(1)}); err != nil {
						return err
					}
				}
			}
			if tc.probeOp == "" {
				if f.Active() {
					return errStill
				}
				return nil
			}
			if err := exec(tc.probeOp, sess, tc.probeArgs); err != nil {
				return err
			}
		}
		if f.Active() && !f.Persistent {
			// The request "succeeded" but the comparison detector
			// disagrees with the known-good instance (silent wrong data).
			return errStill
		}
		return nil
	}

	// Pump the leak past the alarm point so it has a visible symptom.
	if tc.spec.Kind == faults.AppMemoryLeak {
		for i := 0; i < 32; i++ {
			_ = exec(tc.probeOp, "", tc.probeArgs)
		}
	}

	if attempt(false) == nil {
		return "unnecessary"
	}
	// Self-curing faults: the first failure expunged them (instance
	// replacement, or SSM's checksum discard of the bad object); verify
	// with a clean session.
	if !f.Active() || tc.spec.Kind == faults.CorruptSSM {
		if tc.spec.Kind == faults.CorruptSSM {
			// The store already discarded the corrupt object.
			f.Deactivate()
		}
		if attempt(true) == nil {
			f.Deactivate()
			if tc.spec.Kind == faults.CorruptSSM {
				return "checksum auto-discard"
			}
			return "unnecessary"
		}
	}

	target := f.Spec.Component
	if target == "" {
		target = ebid.WAR
	}
	type step struct {
		label string
		act   func() (*core.Reboot, error)
	}
	var steps []step
	if target != ebid.WAR {
		steps = append(steps, step{"EJB", func() (*core.Reboot, error) { return e.node.Microreboot(target) }})
	}
	steps = append(steps,
		step{"WAR", func() (*core.Reboot, error) { return e.node.RebootScope(core.ScopeWAR) }},
		step{"application", func() (*core.Reboot, error) { return e.node.RebootScope(core.ScopeApp) }},
		step{"JVM/JBoss", func() (*core.Reboot, error) { return e.node.RebootScope(core.ScopeProcess) }},
		step{"OS kernel", func() (*core.Reboot, error) { return e.node.RebootScope(core.ScopeNode) }},
	)
	cured := ""
	sawEJB := false
	for _, s := range steps {
		rb, err := s.act()
		if err != nil {
			break
		}
		if s.label == "EJB" {
			sawEJB = true
		}
		e.kernel.RunFor(rb.Duration() + time.Second)
		if attempt(true) == nil {
			cured = s.label
			break
		}
	}
	if cured == "" {
		// Policy exhausted: manual repair is all that is left.
		if f.Spec.Kind == faults.CorruptDB {
			if _, err := e.db.RepairTable(f.Spec.Table); err == nil {
				f.Deactivate()
				if attempt(true) == nil {
					return "table repair"
				}
			}
		}
		return "manual/human"
	}
	// The EJB+WAR combination: the EJB step ran first but did not cure;
	// the WAR step completed the pair.
	if f.Spec.Kind == faults.CorruptSessionAttrs && f.Spec.Mode == faults.ModeWrong && cured == "WAR" && sawEJB {
		return "EJB+WAR"
	}
	return cured
}

// String renders the recovery matrix.
func (r *Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: worst-case recovery per injected fault\n")
	fmt.Fprintf(&b, "%-48s %-8s %-22s %-22s %s\n", "fault", "mode", "observed", "paper", "match")
	for _, row := range r.Rows {
		mode := string(row.Mode)
		if mode == "" {
			mode = "-"
		}
		obs := row.ObservedCure
		if row.RepairNeeded {
			obs += " ≈"
		}
		fmt.Fprintf(&b, "%-48s %-8s %-22s %-22s %v\n", row.Fault, mode, obs, row.PaperCure, row.Match)
	}
	return b.String()
}

// ---------------------------------------------------------------- Table 3

// Table3Row is one component's measured recovery time.
type Table3Row struct {
	Component string
	Crash     time.Duration
	Reinit    time.Duration
	Total     time.Duration
	Paper     time.Duration
}

// Table3Result holds per-component recovery times plus the coarse levels.
type Table3Result struct{ Rows []Table3Row }

// Table3 microreboots every component (10 trials each) under client load
// and reports crash/reinit/total times.
func Table3(o Options) *Table3Result {
	e := newEnv(o, o.clients(500), useFastS, cluster.NodeConfig{})
	e.emulator.Start()
	e.kernel.RunFor(o.scale(2 * time.Minute))

	paperTotals := map[string]time.Duration{
		ebid.AboutMe: 551 * time.Millisecond, ebid.Authenticate: 491 * time.Millisecond,
		ebid.BrowseCategories: 411 * time.Millisecond, ebid.BrowseRegions: 416 * time.Millisecond,
		ebid.BuyNow: 471 * time.Millisecond, ebid.CommitBid: 533 * time.Millisecond,
		ebid.CommitBuyNow: 471 * time.Millisecond, ebid.CommitUserFeedback: 531 * time.Millisecond,
		ebid.DoBuyNow: 427 * time.Millisecond, "EntityGroup": 825 * time.Millisecond,
		ebid.IdentityManager: 461 * time.Millisecond, ebid.LeaveUserFeedback: 484 * time.Millisecond,
		ebid.MakeBid: 514 * time.Millisecond, ebid.OldItem: 529 * time.Millisecond,
		ebid.RegisterNewItem: 447 * time.Millisecond, ebid.RegisterNewUser: 601 * time.Millisecond,
		ebid.SearchItemsByCategory: 442 * time.Millisecond, ebid.SearchItemsByRegion: 572 * time.Millisecond,
		ebid.UserFeedback: 483 * time.Millisecond, ebid.ViewBidHistory: 507 * time.Millisecond,
		ebid.ViewUserInfo: 415 * time.Millisecond, ebid.ViewItem: 446 * time.Millisecond,
		ebid.WAR: 1028 * time.Millisecond,
		"eBid":   7699 * time.Millisecond, "JVM restart": 19083 * time.Millisecond,
	}

	res := &Table3Result{}
	measure := func(name string, begin func() (*core.Reboot, error)) {
		trials := 10
		if o.Quick {
			trials = 3
		}
		var crash, reinit time.Duration
		for i := 0; i < trials; i++ {
			rb, err := begin()
			if err != nil {
				panic("experiments: table3 " + name + ": " + err.Error())
			}
			crash += rb.Crash
			reinit += rb.Reinit
			e.kernel.RunFor(rb.Duration() + 5*time.Second)
		}
		res.Rows = append(res.Rows, Table3Row{
			Component: name,
			Crash:     crash / time.Duration(trials),
			Reinit:    reinit / time.Duration(trials),
			Total:     (crash + reinit) / time.Duration(trials),
			Paper:     paperTotals[name],
		})
	}

	var sessionComps []string
	for _, c := range e.node.Server().Components() {
		if c == ebid.WAR || isEntityMember(c) {
			continue
		}
		sessionComps = append(sessionComps, c)
	}
	sort.Strings(sessionComps)
	for _, c := range sessionComps {
		measure(c, func() (*core.Reboot, error) { return e.node.Microreboot(c) })
	}
	measure("EntityGroup", func() (*core.Reboot, error) { return e.node.Microreboot(ebid.EntItem) })
	measure(ebid.WAR, func() (*core.Reboot, error) { return e.node.RebootScope(core.ScopeWAR) })
	measure("eBid", func() (*core.Reboot, error) { return e.node.RebootScope(core.ScopeApp) })
	measure("JVM restart", func() (*core.Reboot, error) { return e.node.RebootScope(core.ScopeProcess) })
	e.emulator.Stop()
	return res
}

func isEntityMember(name string) bool {
	for _, m := range ebid.EntityGroupMembers {
		if m == name {
			return true
		}
	}
	return false
}

// String renders the recovery-time table.
func (r *Table3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: average recovery times under load\n")
	fmt.Fprintf(&b, "%-24s %9s %9s %9s %9s\n", "component", "crash", "reinit", "µRB", "paper")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-24s %9s %9s %9s %9s\n", row.Component,
			fmtMs(row.Crash), fmtMs(row.Reinit), fmtMs(row.Total), fmtMs(row.Paper))
	}
	return b.String()
}

func fmtMs(d time.Duration) string {
	return fmt.Sprintf("%d ms", d.Milliseconds())
}

// ---------------------------------------------------------------- Table 5

// Table5Row is one configuration's fault-free performance.
type Table5Row struct {
	Config       string
	Throughput   float64
	MeanLatency  time.Duration
	PaperThru    float64
	PaperLatency time.Duration
}

// Table5Result compares the four configurations of Table 5.
type Table5Result struct{ Rows []Table5Row }

// Table5 measures steady-state fault-free throughput and latency for
// JBoss vs JBossµRB and FastS vs SSM.
func Table5(o Options) *Table5Result {
	run := func(kind storeKind, mrbDisabled bool) (float64, time.Duration) {
		e := newEnv(o, o.clients(500), kind, cluster.NodeConfig{MicrorebootDisabled: mrbDisabled})
		e.emulator.Start()
		warm := o.scale(2 * time.Minute)
		total := o.scale(12 * time.Minute)
		e.kernel.RunFor(total)
		e.emulator.Stop()
		e.emulator.FlushActions()
		return e.recorder.GoodputOver(warm, total), e.recorder.Latencies().Mean()
	}
	res := &Table5Result{}
	add := func(name string, kind storeKind, disabled bool, pThru float64, pLat time.Duration) {
		thru, lat := run(kind, disabled)
		res.Rows = append(res.Rows, Table5Row{
			Config: name, Throughput: thru, MeanLatency: lat,
			PaperThru: pThru, PaperLatency: pLat,
		})
	}
	add("JBoss + eBid/FastS", useFastS, true, 72.09, 15020*time.Microsecond)
	add("JBossµRB + eBid/FastS", useFastS, false, 72.42, 16080*time.Microsecond)
	add("JBoss + eBid/SSM", useSSM, true, 71.63, 28430*time.Microsecond)
	add("JBossµRB + eBid/SSM", useSSM, false, 70.86, 27690*time.Microsecond)
	return res
}

// String renders the performance table.
func (r *Table5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: fault-free performance\n")
	fmt.Fprintf(&b, "%-26s %12s %12s %12s %12s\n", "configuration", "thru req/s", "latency", "paper thru", "paper lat")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-26s %12.2f %12s %12.2f %12s\n", row.Config,
			row.Throughput, row.MeanLatency.Round(10*time.Microsecond),
			row.PaperThru, row.PaperLatency)
	}
	return b.String()
}

// ---------------------------------------------------------------- Table 6

// Table6Row is one component's retry-masking outcome.
type Table6Row struct {
	Component       string
	NoRetry         float64
	Retry           float64
	DelayRetry      float64
	PaperNoRetry    int
	PaperRetry      int
	PaperDelayRetry int
}

// Table6Result is the Retry-After masking table.
type Table6Result struct{ Rows []Table6Row }

// Table6 measures how HTTP/1.1 Retry-After masks microreboots, averaged
// over 10 µRB trials per component, in three configurations: no retry,
// transparent retry, and a 200 ms sentinel-to-crash delay plus retry.
func Table6(o Options) *Table6Result {
	paper := map[string][3]int{
		ebid.ViewItem:              {23, 16, 8},
		ebid.BrowseCategories:      {20, 8, 0},
		ebid.SearchItemsByCategory: {31, 15, 0},
		ebid.Authenticate:          {20, 9, 1},
	}
	trials := 10
	if o.Quick {
		trials = 3
	}
	run := func(comp string, retry bool, delay time.Duration) float64 {
		e := newEnv(o, o.clients(500), useFastS, cluster.NodeConfig{Retry503: retry})
		e.emulator.Start()
		e.kernel.RunFor(o.scale(2 * time.Minute))
		before := e.recorder.BadOps()
		for i := 0; i < trials; i++ {
			if delay > 0 {
				if err := e.node.MicrorebootWithDelay(delay, comp); err != nil {
					panic(err)
				}
			} else {
				if _, err := e.node.Microreboot(comp); err != nil {
					panic(err)
				}
			}
			e.kernel.RunFor(20 * time.Second)
		}
		e.emulator.Stop()
		e.emulator.FlushActions()
		e.kernel.RunFor(time.Minute)
		return float64(e.recorder.BadOps()-before) / float64(trials)
	}
	res := &Table6Result{}
	for _, comp := range []string{ebid.ViewItem, ebid.BrowseCategories, ebid.SearchItemsByCategory, ebid.Authenticate} {
		p := paper[comp]
		res.Rows = append(res.Rows, Table6Row{
			Component:       comp,
			NoRetry:         run(comp, false, 0),
			Retry:           run(comp, true, 0),
			DelayRetry:      run(comp, true, 200*time.Millisecond),
			PaperNoRetry:    p[0],
			PaperRetry:      p[1],
			PaperDelayRetry: p[2],
		})
	}
	return res
}

// String renders the masking table.
func (r *Table6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 6: masking microreboots with HTTP/1.1 Retry-After (failed requests per µRB)\n")
	fmt.Fprintf(&b, "%-24s %9s %9s %12s   %s\n", "component", "no retry", "retry", "delay+retry", "paper (no/retry/delay)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-24s %9.1f %9.1f %12.1f   %d / %d / %d\n", row.Component,
			row.NoRetry, row.Retry, row.DelayRetry,
			row.PaperNoRetry, row.PaperRetry, row.PaperDelayRetry)
	}
	return b.String()
}

// firstNonNil is a tiny helper used by the detect-based experiments.
func firstNonNil(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

var _ = detect.ClientSide{} // the detectors are exercised in figures.go
var _ = firstNonNil
