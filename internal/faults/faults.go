// Package faults implements the fault-injection campaign of Section 5.1:
// hooks that reproduce every failure mode of Table 2, with the cure
// semantics the paper observed (which reboot level, if any, clears each
// fault).
//
// Faults install hooks into the core machinery (container fault hooks,
// naming-entry corruption, transaction-method-map corruption), damage
// state stores directly, or model JVM/OS-level misbehavior at the web
// tier. The injector subscribes to the server's reboot notifications and
// deactivates each fault when a reboot of sufficient scope covers its
// target, so experiments observe exactly the recovery behavior of the
// paper's campaign.
package faults

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/ebid"
	"repro/internal/store/db"
	"repro/internal/store/session"
)

// Hook intercepts calls into a component, letting the fault injector
// simulate the Table 2 failure modes. A non-nil returned error is
// surfaced as the call's outcome; returning (true, nil, nil) lets the
// call proceed normally. Hooks run inside the server's interceptor
// pipeline — the Injector registers one Interceptor on the core.Server
// and dispatches to the hook installed for the target component.
type Hook func(ctx context.Context, call *core.Call) (proceed bool, result any, err error)

// Kind enumerates the injected fault types of Table 2.
type Kind int

// Fault kinds.
const (
	Deadlock Kind = iota
	InfiniteLoop
	AppMemoryLeak
	TransientException
	CorruptPrimaryKeys
	CorruptNaming
	CorruptTxMethodMap
	CorruptSessionAttrs
	CorruptFastS
	CorruptSSM
	CorruptDB
	MemLeakIntraJVM
	MemLeakExtraJVM
	BitFlipMemory
	BitFlipRegisters
	BadSyscall
	// BrickCrash kills one SSM brick (a session-state node of the Ling
	// et al. brick cluster); its replica state is lost until a brick
	// restart re-replicates the shard.
	BrickCrash
	// BrickSlow degrades one SSM brick; the cluster routes reads away
	// from it (fail-stutter, not fail-stop).
	BrickSlow
)

var kindNames = map[Kind]string{
	Deadlock:            "deadlock",
	InfiniteLoop:        "infinite loop",
	AppMemoryLeak:       "application memory leak",
	TransientException:  "transient exception",
	CorruptPrimaryKeys:  "corrupt primary keys",
	CorruptNaming:       "corrupt JNDI entries",
	CorruptTxMethodMap:  "corrupt transaction method map",
	CorruptSessionAttrs: "corrupt stateless session EJB attributes",
	CorruptFastS:        "corrupt data inside FastS",
	CorruptSSM:          "corrupt data inside SSM",
	CorruptDB:           "corrupt data inside MySQL",
	MemLeakIntraJVM:     "memory leak outside application (intra-JVM)",
	MemLeakExtraJVM:     "memory leak outside application (extra-JVM)",
	BitFlipMemory:       "bit flips in process memory",
	BitFlipRegisters:    "bit flips in process registers",
	BadSyscall:          "bad system call return values",
	BrickCrash:          "crash an SSM brick",
	BrickSlow:           "degrade an SSM brick",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Mode selects the corruption flavor for data-corruption faults: "null"
// elicits a NullPointerException analog on access, "invalid" is a
// non-null value that type-checks but is application-invalid, and "wrong"
// is valid but incorrect (e.g. swapped IDs).
type Mode string

// Corruption modes.
const (
	ModeNone    Mode = ""
	ModeNull    Mode = "null"
	ModeInvalid Mode = "invalid"
	ModeWrong   Mode = "wrong"
)

// Spec describes one fault to inject.
type Spec struct {
	Kind Kind
	// Component is the target component (hook-based faults).
	Component string
	// Mode selects the corruption flavor where applicable.
	Mode Mode
	// LeakPerCall sets the per-invocation leak for AppMemoryLeak.
	LeakPerCall int64
	// SessionID targets session-store corruption.
	SessionID string
	// Table/RowKey/Column target database corruption.
	Table  string
	RowKey int64
	Column string
}

// ErrInjected tags failures produced by injected faults.
var ErrInjected = errors.New("faults: injected")

// CureLevel describes what Table 2 says clears a fault.
type CureLevel int

// Cure levels, mirroring Table 2's "Reboot level" column.
const (
	CureNone      CureLevel = iota // self-curing (no reboot needed)
	CureComponent                  // EJB-level µRB
	CureWAR                        // WAR microreboot
	CureComponentAndWAR
	CureProcess // JVM/JBoss restart
	CureNode    // OS reboot
	CureManual  // manual repair (DB table repair)
)

func (c CureLevel) String() string {
	switch c {
	case CureNone:
		return "unnecessary"
	case CureComponent:
		return "EJB"
	case CureWAR:
		return "WAR"
	case CureComponentAndWAR:
		return "EJB+WAR"
	case CureProcess:
		return "JVM/JBoss"
	case CureNode:
		return "OS kernel"
	case CureManual:
		return "manual repair"
	default:
		return fmt.Sprintf("CureLevel(%d)", int(c))
	}
}

// ActiveFault is one injected fault.
type ActiveFault struct {
	Spec Spec
	// Cure is the minimal recovery that clears this fault.
	Cure CureLevel
	// DataRepairNeeded marks the ≈ rows of Table 2: service resumes
	// after reboot, but persistent data needs manual reconstruction.
	DataRepairNeeded bool
	// Persistent faults are bugs a reboot does not remove (memory-leak
	// code paths): the reboot reclaims their damage (Cure reports the
	// level that does), but the fault stays installed.
	Persistent bool

	inj    *Injector
	mu     sync.Mutex
	active bool
	// componentCured / warCured track the EJB+WAR combination cure.
	componentCured bool
	warCured       bool
	// remove uninstalls the fault's hook or damage.
	remove func()
	// onCure runs extra cleanup at cure time (e.g. scrubbing a corrupted
	// FastS session when the WAR reboots).
	onCure func()
	// hungTx is the lock-holding transaction of a deadlock fault.
	hungTx *db.Tx
}

// Active reports whether the fault is still live.
func (f *ActiveFault) Active() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.active
}

// Deactivate clears the fault manually (used by self-curing faults and
// test teardown).
func (f *ActiveFault) Deactivate() {
	f.mu.Lock()
	if !f.active {
		f.mu.Unlock()
		return
	}
	f.active = false
	remove, onCure := f.remove, f.onCure
	f.mu.Unlock()
	if remove != nil {
		remove()
	}
	if onCure != nil {
		onCure()
	}
}

// observeReboot applies a reboot event to the fault's cure state. Brick
// faults are exempt: bricks live on separate SSM machines, so no reboot
// of the application node — whatever its scope — can touch them. They
// clear only through the brick's own restart (the OnBrickRestart hook).
func (f *ActiveFault) observeReboot(rb *core.Reboot) {
	if f.Spec.Kind == BrickCrash || f.Spec.Kind == BrickSlow {
		return
	}
	f.mu.Lock()
	if !f.active || f.Persistent {
		f.mu.Unlock()
		return
	}
	covers := func(name string) bool {
		for _, m := range rb.Members {
			if m == name {
				return true
			}
		}
		return false
	}
	coversComponent := rb.Scope >= core.ScopeApp || covers(f.Spec.Component)
	coversWAR := rb.Scope >= core.ScopeApp || rb.Scope == core.ScopeWAR || covers(ebid.WAR)

	cured := false
	switch f.Cure {
	case CureComponent:
		cured = coversComponent
	case CureWAR:
		cured = coversWAR
	case CureComponentAndWAR:
		if coversComponent {
			f.componentCured = true
		}
		if coversWAR {
			f.warCured = true
		}
		cured = f.componentCured && f.warCured
	case CureProcess:
		cured = rb.Scope >= core.ScopeProcess
	case CureNode:
		cured = rb.Scope >= core.ScopeNode
	case CureManual, CureNone:
		cured = false
	}
	f.mu.Unlock()
	if cured {
		f.Deactivate()
	}
}

// Injector installs faults into one node's application. Hook-based
// faults run as an Interceptor registered on the core.Server: the
// injector keeps one hook per target component and dispatches from the
// invocation pipeline, so containers carry no fault-injection plumbing.
type Injector struct {
	server *core.Server
	db     *db.DB
	store  session.Store

	mu     sync.Mutex
	active []*ActiveFault
	hooks  map[string]Hook
	// extraJVMLeakBytes models leaked memory outside the application
	// (and, for the extra-JVM flavor, outside the process).
	intraJVMLeak int64
	extraJVMLeak int64
}

// NewInjector builds an injector for the application hosted on server.
// It registers the fault-dispatch interceptor on the server's invocation
// pipeline and subscribes to reboot notifications to apply cures.
func NewInjector(server *core.Server, d *db.DB, store session.Store) *Injector {
	inj := &Injector{server: server, db: d, store: store, hooks: map[string]Hook{}}
	server.Use(inj.interceptor)
	server.OnReboot(func(rb *core.Reboot) {
		inj.mu.Lock()
		faults := append([]*ActiveFault(nil), inj.active...)
		if rb.Scope >= core.ScopeProcess {
			inj.intraJVMLeak = 0
		}
		if rb.Scope >= core.ScopeNode {
			inj.extraJVMLeak = 0
		}
		inj.mu.Unlock()
		for _, f := range faults {
			f.observeReboot(rb)
		}
	})
	// Brick faults are cured by the brick's own crash/restart lifecycle,
	// not by application reboots: a restart (plus re-replication) clears
	// any crash or slowdown injected into that brick.
	if cl, ok := store.(*session.SSMCluster); ok {
		cl.OnBrickRestart(func(b *session.Brick) {
			inj.mu.Lock()
			faults := append([]*ActiveFault(nil), inj.active...)
			inj.mu.Unlock()
			for _, f := range faults {
				if (f.Spec.Kind == BrickCrash || f.Spec.Kind == BrickSlow) && f.Spec.Component == b.Name() {
					f.Deactivate()
				}
			}
		})
	}
	return inj
}

// interceptor is the fault-dispatch middleware registered on the server:
// when a hook is installed for the call's target component it runs before
// the component does, reproducing the paper's interposition point.
func (inj *Injector) interceptor(ctx context.Context, call *core.Call, next core.Handler) (any, error) {
	inj.mu.Lock()
	h := inj.hooks[call.Component]
	inj.mu.Unlock()
	if h != nil {
		proceed, res, err := h(ctx, call)
		if !proceed {
			return res, err
		}
	}
	return next(ctx, call)
}

// setHook installs (or, with nil, clears) the fault hook for a component.
func (inj *Injector) setHook(component string, h Hook) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if h == nil {
		delete(inj.hooks, component)
		return
	}
	inj.hooks[component] = h
}

// ActiveFaults returns the live faults.
func (inj *Injector) ActiveFaults() []*ActiveFault {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	var out []*ActiveFault
	for _, f := range inj.active {
		if f.Active() {
			out = append(out, f)
		}
	}
	return out
}

// JVMLeakBytes reports the modeled intra-JVM and extra-JVM leaks.
func (inj *Injector) JVMLeakBytes() (intra, extra int64) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.intraJVMLeak, inj.extraJVMLeak
}

// GrowJVMLeak advances the outside-the-application leak models.
func (inj *Injector) GrowJVMLeak(intra, extra int64) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.intraJVMLeak += intra
	inj.extraJVMLeak += extra
}
