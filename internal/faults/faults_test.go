package faults

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ebid"
	"repro/internal/store/db"
	"repro/internal/store/session"
)

func newTarget(t *testing.T, store session.Store) (*ebid.App, *Injector) {
	t.Helper()
	d := db.New(nil)
	cfg := ebid.DatasetConfig{Users: 50, Items: 100, BidsPerItem: 3, Categories: 5, Regions: 5, OldItems: 10}
	if err := ebid.LoadDataset(d, cfg); err != nil {
		t.Fatal(err)
	}
	app, err := ebid.New(d, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	return app, NewInjector(app.Server, d, store)
}

func call(op string, sess string, args core.ArgMap) *core.Call {
	return &core.Call{Op: op, SessionID: sess, Args: args}
}

func login(t *testing.T, app *ebid.App, sess string, user int64) {
	t.Helper()
	if _, err := app.Execute(context.Background(), call(ebid.Authenticate, sess, core.ArgMap{"user": user})); err != nil {
		t.Fatalf("login: %v", err)
	}
}

func TestDeadlockHangsAndMicrorebootCures(t *testing.T) {
	app, inj := newTarget(t, session.NewFastS())
	f, err := inj.Inject(Spec{Kind: Deadlock, Component: ebid.MakeBid})
	if err != nil {
		t.Fatal(err)
	}
	login(t, app, "s", 2)
	_, err = app.Execute(context.Background(), call(ebid.MakeBid, "s", core.ArgMap{"item": int64(1)}))
	if !errors.Is(err, core.ErrHang) {
		t.Fatalf("err = %v, want ErrHang", err)
	}
	// The deadlock holds a DB lock; a concurrent writer conflicts.
	tx, _ := app.DB.Begin()
	row, _ := tx.Get(ebid.TblUsers, 1)
	if err := tx.Update(ebid.TblUsers, 1, row); !errors.Is(err, db.ErrConflict) {
		t.Fatalf("expected lock conflict while deadlocked, got %v", err)
	}
	_ = tx.Abort()

	// EJB µRB cures the hang and rolls back the lock-holding tx.
	rb, err := app.Server.Microreboot(ebid.MakeBid)
	if err != nil {
		t.Fatal(err)
	}
	if rb.AbortedTxs == 0 {
		t.Fatal("µRB did not abort the deadlocked transaction")
	}
	if f.Active() {
		t.Fatal("fault still active after covering µRB")
	}
	if _, err := app.Execute(context.Background(), call(ebid.MakeBid, "s", core.ArgMap{"item": int64(1)})); err != nil {
		t.Fatalf("post-recovery call failed: %v", err)
	}
	// The lock is released.
	tx2, _ := app.DB.Begin()
	row, _ = tx2.Get(ebid.TblUsers, 1)
	if err := tx2.Update(ebid.TblUsers, 1, row); err != nil {
		t.Fatalf("lock not released: %v", err)
	}
	_ = tx2.Abort()
}

func TestTransientExceptionCuredByComponentNotOthers(t *testing.T) {
	app, inj := newTarget(t, session.NewFastS())
	f, err := inj.Inject(Spec{Kind: TransientException, Component: ebid.BrowseCategories})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Execute(context.Background(), call(ebid.BrowseCategories, "", nil)); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	// µRB of an unrelated component does not cure it.
	if _, err := app.Server.Microreboot(ebid.ViewItem); err != nil {
		t.Fatal(err)
	}
	if !f.Active() {
		t.Fatal("unrelated µRB cured the fault")
	}
	if _, err := app.Server.Microreboot(ebid.BrowseCategories); err != nil {
		t.Fatal(err)
	}
	if f.Active() {
		t.Fatal("covering µRB did not cure")
	}
	if _, err := app.Execute(context.Background(), call(ebid.BrowseCategories, "", nil)); err != nil {
		t.Fatalf("post-cure call: %v", err)
	}
}

func TestAppMemoryLeakReclaimedByMicroreboot(t *testing.T) {
	app, inj := newTarget(t, session.NewFastS())
	if _, err := inj.Inject(Spec{Kind: AppMemoryLeak, Component: ebid.ViewItem, LeakPerCall: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := app.Execute(context.Background(), call(ebid.ViewItem, "", core.ArgMap{"item": int64(1)})); err != nil {
			t.Fatal(err)
		}
	}
	c, _ := app.Server.Container(ebid.ViewItem)
	if c.LeakedBytes() != 5<<20 {
		t.Fatalf("leaked = %d, want 5MiB", c.LeakedBytes())
	}
	rb, err := app.Server.Microreboot(ebid.ViewItem)
	if err != nil {
		t.Fatal(err)
	}
	if rb.FreedBytes != 5<<20 {
		t.Fatalf("freed = %d", rb.FreedBytes)
	}
	// The leak *code* persists (the bug is not fixed by rebooting).
	if _, err := app.Execute(context.Background(), call(ebid.ViewItem, "", core.ArgMap{"item": int64(1)})); err != nil {
		t.Fatal(err)
	}
	c, _ = app.Server.Container(ebid.ViewItem)
	if c.LeakedBytes() != 1<<20 {
		t.Fatalf("leak code gone after µRB: %d", c.LeakedBytes())
	}
}

func TestCorruptPrimaryKeysModes(t *testing.T) {
	for _, mode := range []Mode{ModeNull, ModeInvalid, ModeWrong} {
		app, inj := newTarget(t, session.NewFastS())
		f, err := inj.Inject(Spec{Kind: CorruptPrimaryKeys, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		login(t, app, "s", 2)
		if _, err := app.Execute(context.Background(), call(ebid.MakeBid, "s", core.ArgMap{"item": int64(1)})); err != nil {
			t.Fatal(err)
		}
		if _, err := app.Execute(context.Background(), call(ebid.CommitBid, "s", core.ArgMap{"amount": 5.0})); err == nil {
			t.Fatalf("mode %s: CommitBid should fail with corrupted keys", mode)
		}
		if f.Cure != CureComponent {
			t.Fatalf("mode %s: cure = %v, want EJB", mode, f.Cure)
		}
		if (mode == ModeWrong) != f.DataRepairNeeded {
			t.Fatalf("mode %s: DataRepairNeeded = %v", mode, f.DataRepairNeeded)
		}
		if _, err := app.Server.Microreboot(ebid.IdentityManager); err != nil {
			t.Fatal(err)
		}
		if f.Active() {
			t.Fatalf("mode %s: not cured by IdentityManager µRB", mode)
		}
		if _, err := app.Execute(context.Background(), call(ebid.CommitBid, "s", core.ArgMap{"amount": 5.0})); err != nil {
			t.Fatalf("mode %s: post-cure CommitBid: %v", mode, err)
		}
	}
}

func TestCorruptNamingCuredByMicroreboot(t *testing.T) {
	for _, mode := range []Mode{ModeNull, ModeInvalid, ModeWrong} {
		app, inj := newTarget(t, session.NewFastS())
		f, err := inj.Inject(Spec{Kind: CorruptNaming, Component: ebid.ViewItem, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		_, err = app.Execute(context.Background(), call(ebid.ViewItem, "", core.ArgMap{"item": int64(1)}))
		if mode != ModeWrong && err == nil {
			t.Fatalf("mode %s: expected failure", mode)
		}
		if _, err := app.Server.Microreboot(ebid.ViewItem); err != nil {
			t.Fatal(err)
		}
		if f.Active() {
			t.Fatalf("mode %s: still active", mode)
		}
		if !app.Server.Registry().Healthy(ebid.ViewItem) {
			t.Fatalf("mode %s: binding not healed", mode)
		}
	}
}

func TestCorruptSessionAttrsSelfCuring(t *testing.T) {
	app, inj := newTarget(t, session.NewFastS())
	f, err := inj.Inject(Spec{Kind: CorruptSessionAttrs, Component: ebid.ViewItem, Mode: ModeNull})
	if err != nil {
		t.Fatal(err)
	}
	if f.Cure != CureNone {
		t.Fatalf("cure = %v, want unnecessary", f.Cure)
	}
	// First call fails; the container discards the bad instance.
	if _, err := app.Execute(context.Background(), call(ebid.ViewItem, "", core.ArgMap{"item": int64(1)})); err == nil {
		t.Fatal("first call should fail")
	}
	if f.Active() {
		t.Fatal("fault should have self-cured")
	}
	if _, err := app.Execute(context.Background(), call(ebid.ViewItem, "", core.ArgMap{"item": int64(1)})); err != nil {
		t.Fatalf("second call: %v", err)
	}
}

func TestCorruptSessionAttrsWrongNeedsEJBAndWAR(t *testing.T) {
	app, inj := newTarget(t, session.NewFastS())
	f, err := inj.Inject(Spec{Kind: CorruptSessionAttrs, Component: ebid.ViewItem, Mode: ModeWrong})
	if err != nil {
		t.Fatal(err)
	}
	body, err := app.Execute(context.Background(), call(ebid.ViewItem, "", core.ArgMap{"item": int64(7)}))
	if err != nil {
		t.Fatal(err)
	}
	if body != "<html>item 1: gadget, max bid 0.01, 1 bids</html>" {
		t.Fatalf("wrong-mode should silently return wrong data, got %q", body)
	}
	// EJB µRB alone is not enough.
	if _, err := app.Server.Microreboot(ebid.ViewItem); err != nil {
		t.Fatal(err)
	}
	if !f.Active() {
		t.Fatal("EJB µRB alone cured EJB+WAR fault")
	}
	// Adding the WAR reboot completes the cure.
	rb, err := app.Server.BeginScopedReboot(core.ScopeWAR, "eBid")
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Server.CompleteMicroreboot(rb); err != nil {
		t.Fatal(err)
	}
	if f.Active() {
		t.Fatal("EJB+WAR reboots did not cure the wrong-attribute fault")
	}
	body, err = app.Execute(context.Background(), call(ebid.ViewItem, "", core.ArgMap{"item": int64(7)}))
	if err != nil {
		t.Fatal(err)
	}
	if body == "<html>item 1: gadget, max bid 0.01, 1 bids</html>" {
		t.Fatal("still returning wrong data after cure")
	}
}

func TestCorruptFastSCuredByWARReboot(t *testing.T) {
	fs := session.NewFastS()
	app, inj := newTarget(t, fs)
	login(t, app, "victim", 3)
	f, err := inj.Inject(Spec{Kind: CorruptFastS, SessionID: "victim", Mode: ModeInvalid})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Execute(context.Background(), call(ebid.AboutMe, "victim", nil)); err == nil {
		t.Fatal("corrupted session should break AboutMe")
	}
	rb, err := app.Server.BeginScopedReboot(core.ScopeWAR, "eBid")
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Server.CompleteMicroreboot(rb); err != nil {
		t.Fatal(err)
	}
	if f.Active() {
		t.Fatal("WAR reboot did not cure FastS corruption")
	}
	// The damaged session was scrubbed: the user re-logs-in cleanly.
	if _, err := fs.Read("victim"); err == nil {
		t.Fatal("corrupted session not scrubbed")
	}
	login(t, app, "victim", 3)
	if _, err := app.Execute(context.Background(), call(ebid.AboutMe, "victim", nil)); err != nil {
		t.Fatalf("after re-login: %v", err)
	}
}

func TestCorruptSSMSelfCuring(t *testing.T) {
	ssm := session.NewSSM(nil, time.Hour)
	app, inj := newTarget(t, ssm)
	login(t, app, "v", 3)
	f, err := inj.Inject(Spec{Kind: CorruptSSM, SessionID: "v"})
	if err != nil {
		t.Fatal(err)
	}
	if f.Cure != CureNone {
		t.Fatalf("cure = %v, want none (checksum auto-discard)", f.Cure)
	}
	if _, err := app.Execute(context.Background(), call(ebid.AboutMe, "v", nil)); err == nil {
		t.Fatal("first read should fail (discard)")
	}
	if ssm.Discarded() != 1 {
		t.Fatalf("discarded = %d", ssm.Discarded())
	}
	login(t, app, "v", 3)
	if _, err := app.Execute(context.Background(), call(ebid.AboutMe, "v", nil)); err != nil {
		t.Fatalf("after re-login: %v", err)
	}
}

func TestCorruptDBNeedsTableRepair(t *testing.T) {
	app, inj := newTarget(t, session.NewFastS())
	f, err := inj.Inject(Spec{Kind: CorruptDB, Table: ebid.TblUsers, RowKey: 2, Column: "region", Mode: ModeInvalid})
	if err != nil {
		t.Fatal(err)
	}
	if f.Cure != CureManual || !f.DataRepairNeeded {
		t.Fatalf("cure = %v repair = %v", f.Cure, f.DataRepairNeeded)
	}
	// No reboot level cures it — not even a process restart.
	rb, _ := app.Server.BeginScopedReboot(core.ScopeProcess, "")
	_ = app.Server.CompleteMicroreboot(rb)
	if !f.Active() {
		t.Fatal("process restart should not cure DB corruption")
	}
	bad, _ := app.DB.CheckTable(ebid.TblUsers)
	if len(bad) != 1 {
		t.Fatalf("CheckTable = %v", bad)
	}
	if _, err := app.DB.RepairTable(ebid.TblUsers); err != nil {
		t.Fatal(err)
	}
	bad, _ = app.DB.CheckTable(ebid.TblUsers)
	if len(bad) != 0 {
		t.Fatal("repair did not fix the table")
	}
	f.Deactivate()
}

func TestJVMLevelFaultsNeedProcessRestart(t *testing.T) {
	app, inj := newTarget(t, session.NewFastS())
	f, err := inj.Inject(Spec{Kind: BadSyscall})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Execute(context.Background(), call(ebid.OpHome, "", nil)); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	// App-level reboot insufficient.
	rb, _ := app.Server.BeginScopedReboot(core.ScopeApp, "eBid")
	_ = app.Server.CompleteMicroreboot(rb)
	if !f.Active() {
		t.Fatal("app reboot cured a JVM-level fault")
	}
	rb, _ = app.Server.BeginScopedReboot(core.ScopeProcess, "")
	_ = app.Server.CompleteMicroreboot(rb)
	if f.Active() {
		t.Fatal("process restart did not cure")
	}
	if _, err := app.Execute(context.Background(), call(ebid.OpHome, "", nil)); err != nil {
		t.Fatalf("post-restart: %v", err)
	}
}

func TestExtraJVMLeakNeedsNodeReboot(t *testing.T) {
	app, inj := newTarget(t, session.NewFastS())
	f, err := inj.Inject(Spec{Kind: MemLeakExtraJVM})
	if err != nil {
		t.Fatal(err)
	}
	inj.GrowJVMLeak(0, 100<<20)
	rb, _ := app.Server.BeginScopedReboot(core.ScopeProcess, "")
	_ = app.Server.CompleteMicroreboot(rb)
	if f.Active() == false {
		t.Fatal("process restart cured an extra-JVM (kernel) leak")
	}
	_, extra := inj.JVMLeakBytes()
	if extra == 0 {
		t.Fatal("extra leak reset by process restart")
	}
	rb, _ = app.Server.BeginScopedReboot(core.ScopeNode, "")
	_ = app.Server.CompleteMicroreboot(rb)
	if f.Active() {
		t.Fatal("node reboot did not cure")
	}
	_, extra = inj.JVMLeakBytes()
	if extra != 0 {
		t.Fatal("node reboot did not reset extra leak")
	}
}

func newBrickCluster(t *testing.T) *session.SSMCluster {
	t.Helper()
	cl, err := session.NewSSMCluster(session.ClusterConfig{Shards: 2, Replicas: 3, WriteQuorum: 2, LeaseTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestBrickCrashMaskedByQuorumAndCuredByRestart(t *testing.T) {
	cl := newBrickCluster(t)
	app, inj := newTarget(t, cl)
	login(t, app, "s", 3)
	victim := cl.Bricks()[0].Name()
	f, err := inj.Inject(Spec{Kind: BrickCrash, Component: victim})
	if err != nil {
		t.Fatal(err)
	}
	if f.Cure != CureComponent {
		t.Fatalf("cure = %v, want EJB-equivalent brick µRB", f.Cure)
	}
	if got := cl.DeadBricks(); len(got) != 1 || got[0] != victim {
		t.Fatalf("DeadBricks = %v", got)
	}
	// One dead brick of three: session operations keep working.
	if _, err := app.Execute(context.Background(), call(ebid.AboutMe, "s", nil)); err != nil {
		t.Fatalf("session op with one brick down: %v", err)
	}
	login(t, app, "t", 4) // writes still reach the W=2 quorum
	// Restarting the brick re-replicates the shard and clears the fault.
	if _, err := cl.RestartBrick(victim); err != nil {
		t.Fatal(err)
	}
	if f.Active() {
		t.Fatal("brick-crash fault still active after brick restart")
	}
	if len(cl.DeadBricks()) != 0 {
		t.Fatalf("DeadBricks = %v after restart", cl.DeadBricks())
	}
}

func TestBrickCrashMidMigrationConvergesWithoutLoss(t *testing.T) {
	// Elasticity meets the fault campaign: a brick crash (faults.BrickCrash)
	// lands in the middle of an add-shard migration. The ring change must
	// still converge, the crashed brick restarts and re-replicates, and no
	// session is lost at any point.
	cl := newBrickCluster(t)
	app, inj := newTarget(t, cl)
	var ids []string
	for i := 0; i < 120; i++ {
		id := fmt.Sprintf("sess-%d", i)
		login(t, app, id, int64(3+i%20))
		ids = append(ids, id)
	}
	readAll := func(stage string) {
		t.Helper()
		for _, id := range ids {
			if _, err := cl.Read(id); err != nil {
				t.Fatalf("%s: session %s lost: %v", stage, id, err)
			}
		}
	}

	if _, err := cl.AddShard(); err != nil {
		t.Fatal(err)
	}
	if _, done := cl.MigrateStep(10); done {
		t.Fatal("migration finished in one small step — crash would not be mid-migration")
	}
	// Crash a brick of an old shard — a migration source — mid-stream.
	victim := cl.Bricks()[0]
	f, err := inj.Inject(Spec{Kind: BrickCrash, Component: victim.Name()})
	if err != nil {
		t.Fatal(err)
	}
	readAll("mid-migration with a brick down")
	if _, done := cl.MigrateAll(); !done {
		t.Fatal("migration did not converge with a source brick down")
	}
	readAll("after convergence")
	// Session ops through the application keep working throughout.
	if _, err := app.Execute(context.Background(), call(ebid.AboutMe, ids[0], nil)); err != nil {
		t.Fatalf("session op during migration chaos: %v", err)
	}
	// The brick restart (RM's brick µRB) clears the fault and
	// re-replicates whatever its shard still owns post-migration.
	if _, err := cl.RestartBrick(victim.Name()); err != nil {
		t.Fatal(err)
	}
	if f.Active() {
		t.Fatal("brick-crash fault still active after brick restart")
	}
	if victim.Len() == 0 {
		t.Fatal("restarted brick re-replicated nothing")
	}
	readAll("after brick restart")
}

func TestBrickSlowRoutedAroundAndCleared(t *testing.T) {
	cl := newBrickCluster(t)
	app, inj := newTarget(t, cl)
	login(t, app, "s", 3)
	// Target a brick on the session's shard so reads must route around it.
	shard := cl.ShardFor("s")
	victim := ""
	for _, b := range cl.Bricks() {
		if b.Shard() == shard {
			victim = b.Name()
			break
		}
	}
	f, err := inj.Inject(Spec{Kind: BrickSlow, Component: victim})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Execute(context.Background(), call(ebid.AboutMe, "s", nil)); err != nil {
		t.Fatalf("session op with slow brick: %v", err)
	}
	if cl.SlowBypasses() == 0 {
		t.Fatal("reads did not route around the slow brick")
	}
	f.Deactivate()
	b, _ := cl.BrickByName(victim)
	if b.Slow() {
		t.Fatal("Deactivate did not heal the slow brick")
	}
}

func TestBrickFaultsSurviveAppNodeReboots(t *testing.T) {
	// Regression: bricks live on separate SSM machines, so no reboot of
	// the application node — not even process scope — may cure a brick
	// fault. Only the brick's own restart clears it.
	cl := newBrickCluster(t)
	app, inj := newTarget(t, cl)
	victim := cl.Bricks()[0].Name()
	slowFault, err := inj.Inject(Spec{Kind: BrickSlow, Component: victim})
	if err != nil {
		t.Fatal(err)
	}
	crashFault, err := inj.Inject(Spec{Kind: BrickCrash, Component: victim})
	if err != nil {
		t.Fatal(err)
	}
	for _, scope := range []core.Scope{core.ScopeApp, core.ScopeProcess} {
		rb, _ := app.Server.BeginScopedReboot(scope, "eBid")
		_ = app.Server.CompleteMicroreboot(rb)
	}
	if !slowFault.Active() || !crashFault.Active() {
		t.Fatal("application-node reboot cured an off-node brick fault")
	}
	b, _ := cl.BrickByName(victim)
	if b.Up() {
		t.Fatal("crashed brick came back without a brick restart")
	}
	if _, err := cl.RestartBrick(victim); err != nil {
		t.Fatal(err)
	}
	if slowFault.Active() || crashFault.Active() {
		t.Fatal("brick restart did not clear the brick faults")
	}
}

func TestCorruptSSMWorksOnCluster(t *testing.T) {
	cl := newBrickCluster(t)
	app, inj := newTarget(t, cl)
	login(t, app, "v", 3)
	if _, err := inj.Inject(Spec{Kind: CorruptSSM, SessionID: "v"}); err != nil {
		t.Fatal(err)
	}
	// The cluster masks single-replica corruption: the damaged copy is
	// discarded and a healthy replica serves the read.
	if _, err := app.Execute(context.Background(), call(ebid.AboutMe, "v", nil)); err != nil {
		t.Fatalf("read after single-replica corruption: %v", err)
	}
	if cl.Discarded() != 1 {
		t.Fatalf("discarded = %d, want 1", cl.Discarded())
	}
}

func TestBrickFaultsRequireCluster(t *testing.T) {
	_, inj := newTarget(t, session.NewFastS())
	if _, err := inj.Inject(Spec{Kind: BrickCrash}); err == nil {
		t.Fatal("brick crash on FastS should fail")
	}
	cl := newBrickCluster(t)
	_, inj = newTarget(t, cl)
	if _, err := inj.Inject(Spec{Kind: BrickSlow, Component: "ssm/s9-r9"}); err == nil {
		t.Fatal("unknown brick name should fail")
	}
}

func TestKindAndCureStrings(t *testing.T) {
	for k := Deadlock; k <= BrickSlow; k++ {
		if k.String() == "" {
			t.Fatalf("Kind %d has empty name", k)
		}
	}
	for c := CureNone; c <= CureManual; c++ {
		if c.String() == "" {
			t.Fatalf("CureLevel %d has empty name", c)
		}
	}
}

func TestInjectUnknownComponent(t *testing.T) {
	_, inj := newTarget(t, session.NewFastS())
	if _, err := inj.Inject(Spec{Kind: TransientException, Component: "Ghost"}); err == nil {
		t.Fatal("injection into unknown component should fail")
	}
	if _, err := inj.Inject(Spec{Kind: CorruptSSM, SessionID: "x"}); err == nil {
		t.Fatal("SSM corruption on FastS store should fail")
	}
}
