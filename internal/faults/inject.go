package faults

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/ebid"
	"repro/internal/store/session"
)

// Inject installs the fault described by spec and returns its handle.
func (inj *Injector) Inject(spec Spec) (*ActiveFault, error) {
	f := &ActiveFault{Spec: spec, inj: inj, active: true}
	var err error
	switch spec.Kind {
	case Deadlock, InfiniteLoop:
		err = inj.injectHang(f)
	case AppMemoryLeak:
		err = inj.injectAppLeak(f)
	case TransientException:
		err = inj.injectException(f)
	case CorruptPrimaryKeys:
		err = inj.injectBadPrimaryKeys(f)
	case CorruptNaming:
		err = inj.injectNamingCorruption(f)
	case CorruptTxMethodMap:
		err = inj.injectTxMapCorruption(f)
	case CorruptSessionAttrs:
		err = inj.injectAttrCorruption(f)
	case CorruptFastS:
		err = inj.injectFastSCorruption(f)
	case CorruptSSM:
		err = inj.injectSSMCorruption(f)
	case CorruptDB:
		err = inj.injectDBCorruption(f)
	case MemLeakIntraJVM:
		f.Cure = CureProcess
		f.remove = func() {}
	case MemLeakExtraJVM:
		f.Cure = CureNode
		f.remove = func() {}
	case BitFlipMemory, BitFlipRegisters:
		err = inj.injectBitFlip(f)
	case BadSyscall:
		err = inj.injectBadSyscall(f)
	case BrickCrash:
		err = inj.injectBrickCrash(f)
	case BrickSlow:
		err = inj.injectBrickSlow(f)
	default:
		err = fmt.Errorf("faults: unknown kind %v", spec.Kind)
	}
	if err != nil {
		return nil, err
	}
	inj.mu.Lock()
	inj.active = append(inj.active, f)
	inj.mu.Unlock()
	return f, nil
}

// hookComponent installs a fault hook for the target component in the
// injector's server-level interceptor, recording its removal. The
// component must be deployed.
func (inj *Injector) hookComponent(f *ActiveFault, name string, hook Hook) error {
	if _, err := inj.server.Container(name); err != nil {
		return err
	}
	inj.setHook(name, hook)
	f.remove = func() { inj.setHook(name, nil) }
	return nil
}

// injectHang implements deadlocks and infinite loops: every call into the
// component wedges its shepherding thread. A deadlock additionally holds
// a database lock, which only the µRB-triggered transaction rollback
// releases.
func (inj *Injector) injectHang(f *ActiveFault) error {
	f.Cure = CureComponent
	comp := f.Spec.Component
	if f.Spec.Kind == Deadlock && inj.db != nil {
		// Take and hold a row lock, as a deadlocked transaction would.
		tx, err := inj.db.Begin()
		if err == nil {
			if row, gerr := tx.Get(ebid.TblUsers, 1); gerr == nil {
				_ = tx.Update(ebid.TblUsers, 1, row)
			}
			f.hungTx = tx
			inj.server.RegisterTx(comp, tx)
		}
	}
	return inj.hookComponent(f, comp, func(ctx context.Context, call *core.Call) (bool, any, error) {
		return false, nil, fmt.Errorf("%w: %v in %s: %w", ErrInjected, f.Spec.Kind, comp, core.ErrHang)
	})
}

// injectAppLeak leaks LeakPerCall bytes of container memory on every
// invocation. The leak code path survives µRBs (the bug is in the code),
// but each µRB releases the accumulated memory — the foundation of the
// microrejuvenation experiments. Cure level for Table 2 purposes is the
// EJB µRB that reclaims the memory.
func (inj *Injector) injectAppLeak(f *ActiveFault) error {
	f.Cure = CureComponent
	f.Persistent = true
	comp := f.Spec.Component
	per := f.Spec.LeakPerCall
	if per <= 0 {
		per = 1 << 10
	}
	c, err := inj.server.Container(comp)
	if err != nil {
		return err
	}
	return inj.hookComponent(f, comp, func(ctx context.Context, call *core.Call) (bool, any, error) {
		c.Leak(per)
		return true, nil, nil
	})
}

// injectException makes every call into the component raise the analog of
// an incorrectly handled Java exception, leaving the component broken
// until a µRB reinstantiates it.
func (inj *Injector) injectException(f *ActiveFault) error {
	f.Cure = CureComponent
	comp := f.Spec.Component
	return inj.hookComponent(f, comp, func(ctx context.Context, call *core.Call) (bool, any, error) {
		return false, nil, fmt.Errorf("%w: transient exception in %s", ErrInjected, comp)
	})
}

// injectBadPrimaryKeys corrupts the application-specific primary-key
// generation of the IdentityManager.
func (inj *Injector) injectBadPrimaryKeys(f *ActiveFault) error {
	f.Cure = CureComponent
	if f.Spec.Mode == ModeWrong {
		f.DataRepairNeeded = true
	}
	mode := f.Spec.Mode
	comp := ebid.IdentityManager
	f.Spec.Component = comp
	return inj.hookComponent(f, comp, func(ctx context.Context, call *core.Call) (bool, any, error) {
		switch mode {
		case ModeNull:
			// Null key: access blows up like a NullPointerException.
			return false, nil, fmt.Errorf("%w: null primary key from %s", ErrInjected, comp)
		case ModeInvalid:
			// Type-checks but is application-invalid (exceeds MaxUserID);
			// callers validating the key range reject it.
			return false, int64(ebid.MaxUserID + 7), nil
		case ModeWrong:
			// Valid-looking but colliding key: inserts hit duplicates.
			return false, int64(1), nil
		default:
			return false, nil, fmt.Errorf("%w: bad primary key mode %q", ErrInjected, mode)
		}
	})
}

// injectNamingCorruption damages the registry binding for the component.
func (inj *Injector) injectNamingCorruption(f *ActiveFault) error {
	f.Cure = CureComponent
	if err := inj.server.Registry().Corrupt(f.Spec.Component, string(f.Spec.Mode)); err != nil {
		return err
	}
	f.remove = func() {} // the µRB rebind heals the entry itself
	return nil
}

// injectTxMapCorruption damages the container's transaction method map.
func (inj *Injector) injectTxMapCorruption(f *ActiveFault) error {
	f.Cure = CureComponent
	if f.Spec.Mode == ModeWrong {
		// Transactions silently run with the wrong attribute; service
		// continues but persistent data may need reconstruction.
		f.DataRepairNeeded = true
	}
	c, err := inj.server.Container(f.Spec.Component)
	if err != nil {
		return err
	}
	if err := c.CorruptTxMethodMap(string(f.Spec.Mode)); err != nil {
		return err
	}
	f.remove = func() {} // reinit rebuilds the map from the descriptor
	return nil
}

// injectAttrCorruption corrupts class attributes of a stateless session
// component. Null/invalid corruption fails the first call, after which
// the container discards the bad instance — no reboot needed. Wrong
// corruption silently misbehaves until both the component and the WAR
// (which caches its views) are microrebooted.
func (inj *Injector) injectAttrCorruption(f *ActiveFault) error {
	comp := f.Spec.Component
	c, err := inj.server.Container(comp)
	if err != nil {
		return err
	}
	switch f.Spec.Mode {
	case ModeNull, ModeInvalid:
		f.Cure = CureNone
		fired := false
		inj.setHook(comp, func(ctx context.Context, call *core.Call) (bool, any, error) {
			if fired {
				return true, nil, nil
			}
			fired = true
			// The first call fails; the container replaces the instance,
			// naturally expunging the fault.
			_ = c.ReplaceInstance(0)
			f.Deactivate()
			return false, nil, fmt.Errorf("%w: corrupted attribute (%s) in %s", ErrInjected, f.Spec.Mode, comp)
		})
		f.remove = func() { inj.setHook(comp, nil) }
	case ModeWrong:
		f.Cure = CureComponentAndWAR
		f.DataRepairNeeded = true
		inj.setHook(comp, func(ctx context.Context, call *core.Call) (bool, any, error) {
			// Valid-looking but wrong output, e.g. surreptitiously
			// altered dollar amounts — only the comparison-based
			// detector can see this.
			return false, "<html>item 1: gadget, max bid 0.01, 1 bids</html>", nil
		})
		f.remove = func() { inj.setHook(comp, nil) }
	default:
		return fmt.Errorf("faults: attr corruption needs a mode")
	}
	return nil
}

// injectFastSCorruption damages a session object inside FastS. The WAR
// microreboot discards the damaged HttpSession, forcing a clean re-login.
func (inj *Injector) injectFastSCorruption(f *ActiveFault) error {
	fs, ok := inj.store.(*session.FastS)
	if !ok {
		return fmt.Errorf("faults: FastS corruption requires a FastS store")
	}
	f.Cure = CureWAR
	if f.Spec.Mode == ModeWrong {
		f.DataRepairNeeded = true
	}
	if err := fs.Corrupt(f.Spec.SessionID, string(f.Spec.Mode)); err != nil {
		return err
	}
	sid := f.Spec.SessionID
	f.Spec.Component = ebid.WAR
	f.remove = func() {}
	f.onCure = func() { _ = fs.Delete(sid) }
	return nil
}

// injectSSMCorruption flips bits in a stored session blob; the store's
// checksum detects and discards the bad copy on the next read, so no
// reboot is needed. Both SSM and the brick cluster support this (the
// cluster scopes the damage to one replica, which heals by read-repair).
func (inj *Injector) injectSSMCorruption(f *ActiveFault) error {
	m, ok := inj.store.(interface{ CorruptBits(string) error })
	if !ok {
		return fmt.Errorf("faults: SSM corruption requires an SSM or SSMCluster store")
	}
	f.Cure = CureNone
	if err := m.CorruptBits(f.Spec.SessionID); err != nil {
		return err
	}
	f.remove = func() {}
	return nil
}

// brickCluster asserts the injector's store is the brick cluster and
// resolves the target brick (defaulting to the first brick).
func (inj *Injector) brickCluster(f *ActiveFault) (*session.SSMCluster, string, error) {
	cl, ok := inj.store.(*session.SSMCluster)
	if !ok {
		return nil, "", fmt.Errorf("faults: brick faults require an SSMCluster store")
	}
	name := f.Spec.Component
	if name == "" {
		name = cl.Bricks()[0].Name()
		f.Spec.Component = name
	}
	if _, err := cl.BrickByName(name); err != nil {
		return nil, "", err
	}
	return cl, name, nil
}

// injectBrickCrash kills one session-state brick. With W ≤ N-1 live
// replicas per shard the application never notices; the fault clears when
// the brick is restarted (the recovery manager's brick µRB).
func (inj *Injector) injectBrickCrash(f *ActiveFault) error {
	cl, name, err := inj.brickCluster(f)
	if err != nil {
		return err
	}
	f.Cure = CureComponent // a brick µRB, performed by RM's brick path
	if err := cl.CrashBrick(name); err != nil {
		return err
	}
	f.remove = func() {}
	return nil
}

// injectBrickSlow degrades one brick; reads route around it until the
// fault is cleared or the brick is restarted.
func (inj *Injector) injectBrickSlow(f *ActiveFault) error {
	cl, name, err := inj.brickCluster(f)
	if err != nil {
		return err
	}
	f.Cure = CureComponent
	if err := cl.SetBrickSlow(name, true); err != nil {
		return err
	}
	f.remove = func() { _ = cl.SetBrickSlow(name, false) }
	return nil
}

// injectDBCorruption alters table contents directly; per Table 2 only a
// database table repair restores correctness.
func (inj *Injector) injectDBCorruption(f *ActiveFault) error {
	f.Cure = CureManual
	f.DataRepairNeeded = true
	table := f.Spec.Table
	if table == "" {
		table = ebid.TblUsers
	}
	key := f.Spec.RowKey
	if key == 0 {
		key = 1
	}
	col := f.Spec.Column
	if col == "" {
		col = "region"
	}
	switch f.Spec.Mode {
	case ModeNull:
		_, err := inj.db.CorruptRow(table, key, col, nil)
		f.remove = func() {}
		return err
	case ModeInvalid:
		_, err := inj.db.CorruptRow(table, key, col, int64(-99))
		f.remove = func() {}
		return err
	case ModeWrong:
		err := inj.db.SwapRows(table, key, key+1)
		f.remove = func() {}
		return err
	default:
		return fmt.Errorf("faults: DB corruption needs a mode")
	}
}

// injectBitFlip models low-level memory/register corruption underneath
// the JVM: the process misbehaves intermittently until restarted.
func (inj *Injector) injectBitFlip(f *ActiveFault) error {
	f.Cure = CureProcess
	f.DataRepairNeeded = true
	comp := f.Spec.Component
	if comp == "" {
		comp = ebid.WAR
		f.Spec.Component = comp
	}
	count := 0
	return inj.hookComponent(f, comp, func(ctx context.Context, call *core.Call) (bool, any, error) {
		count++
		if count%3 == 0 { // intermittent corruption
			return false, nil, fmt.Errorf("%w: %v under the JVM", ErrInjected, f.Spec.Kind)
		}
		return true, nil, nil
	})
}

// injectBadSyscall models bad system-call return values: every request
// through the process fails at a low level until the JVM is restarted.
func (inj *Injector) injectBadSyscall(f *ActiveFault) error {
	f.Cure = CureProcess
	comp := ebid.WAR
	f.Spec.Component = comp
	return inj.hookComponent(f, comp, func(ctx context.Context, call *core.Call) (bool, any, error) {
		return false, nil, fmt.Errorf("%w: bad syscall return in JVM I/O", ErrInjected)
	})
}
