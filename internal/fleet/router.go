package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/controlplane"
	"repro/internal/ebid"
	"repro/internal/workload"
)

// Backend is one ebid-server process as seen from the proxy. It
// implements cluster.Endpoint so the in-process routing policies route
// real processes: QueueDepth is the proxy-side in-flight count (requests
// this proxy has dispatched and not yet answered) and Busy is the
// backend's own in-flight gauge from its last /admin/fleet/status poll.
type Backend struct {
	Name string
	URL  string // e.g. http://127.0.0.1:8081

	inflight   atomic.Int64 // proxy-side dispatched, unanswered
	remoteBusy atomic.Int64 // backend-reported in_flight
	healthy    atomic.Bool
	draining   atomic.Bool
	completed  atomic.Int64
	failed     atomic.Int64
}

// QueueDepth implements cluster.Endpoint.
func (b *Backend) QueueDepth() int { return int(b.inflight.Load()) }

// Busy implements cluster.Endpoint.
func (b *Backend) Busy() int { return int(b.remoteBusy.Load()) }

// Healthy reports the last health poll's verdict.
func (b *Backend) Healthy() bool { return b.healthy.Load() }

// Draining reports whether the backend is excluded from new sessions.
func (b *Backend) Draining() bool { return b.draining.Load() }

// CompletedOps reports requests this backend answered below 500.
func (b *Backend) CompletedOps() int64 { return b.completed.Load() }

// BackendStatus is one backend's externally visible state on
// /admin/proxy/status.
type BackendStatus struct {
	Name      string `json:"name"`
	URL       string `json:"url"`
	Healthy   bool   `json:"healthy"`
	Draining  bool   `json:"draining"`
	InFlight  int64  `json:"in_flight"`
	Busy      int64  `json:"busy"`
	Completed int64  `json:"completed"`
	Failed    int64  `json:"failed"`
}

// Router is the reverse-proxy load balancer: it forwards /ebid/*
// requests to backend processes, keeps session affinity on the
// EBIDSESSION cookie, spills established sessions away from dead or
// draining backends (transparent failover — eBid operations are GETs,
// so a connection-level failure is safe to retry elsewhere), and
// answers policy shed decisions with 503 + Retry-After. It implements
// controlplane.FleetProbe so the control plane's fleet controller
// observes real processes through the same NodeStat samples it sees in
// simulation.
type Router struct {
	policy   cluster.RoutingPolicy
	backends []*Backend
	client   *http.Client
	poll     *http.Client

	mu       sync.Mutex
	affinity map[string]*Backend

	lostSessions atomic.Int64 // sessions with no live backend to fail over to
	spills       atomic.Int64 // established sessions re-pinned after a backend died
	shed         atomic.Int64
	retried      atomic.Int64 // transparent connection-level retries

	pollEvery time.Duration
	stop      chan struct{}
	stopOnce  sync.Once
}

// NewRouter builds a router over the given backends. pollEvery is the
// health/load poll interval (0 means 250ms).
func NewRouter(policy cluster.RoutingPolicy, backends []*Backend, pollEvery time.Duration) *Router {
	if pollEvery <= 0 {
		pollEvery = 250 * time.Millisecond
	}
	r := &Router{
		policy:   policy,
		backends: backends,
		affinity: map[string]*Backend{},
		client: &http.Client{
			Timeout: 30 * time.Second,
			// The proxy is the only client; keep plenty of idle conns
			// per backend so forwarding does not reconnect per request.
			Transport: &http.Transport{MaxIdleConnsPerHost: 256},
		},
		poll:      &http.Client{Timeout: 500 * time.Millisecond},
		pollEvery: pollEvery,
		stop:      make(chan struct{}),
	}
	return r
}

// Start launches the health/load poll loop. An initial synchronous
// sweep seeds health before the first request.
func (r *Router) Start() {
	r.pollOnce()
	go func() {
		tick := time.NewTicker(r.pollEvery)
		defer tick.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-tick.C:
				r.pollOnce()
			}
		}
	}()
}

// Stop halts the poll loop.
func (r *Router) Stop() { r.stopOnce.Do(func() { close(r.stop) }) }

// pollOnce refreshes every backend's health and load concurrently. One
// failed poll marks a backend unhealthy — for process fleets behind a
// local supervisor, a refused connection means the process is down, and
// optimism here turns into user-visible errors.
func (r *Router) pollOnce() {
	var wg sync.WaitGroup
	for _, b := range r.backends {
		wg.Add(1)
		go func(b *Backend) {
			defer wg.Done()
			resp, err := r.poll.Get(b.URL + "/admin/fleet/status")
			if err != nil {
				b.healthy.Store(false)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.healthy.Store(false)
				return
			}
			var st struct {
				InFlight int64 `json:"in_flight"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				b.healthy.Store(false)
				return
			}
			b.remoteBusy.Store(st.InFlight)
			b.healthy.Store(true)
		}(b)
	}
	wg.Wait()
}

// SetDrain implements half of controlplane.FleetActuator (see Actuator):
// a draining backend stops receiving new sessions; its established
// sessions spill to peers.
func (r *Router) SetDrain(node string, drain bool) bool {
	for _, b := range r.backends {
		if b.Name == node {
			b.draining.Store(drain)
			return true
		}
	}
	return false
}

// FleetStats implements controlplane.FleetProbe over the polled state.
func (r *Router) FleetStats() []controlplane.NodeStat {
	out := make([]controlplane.NodeStat, 0, len(r.backends))
	for _, b := range r.backends {
		out = append(out, controlplane.NodeStat{
			Node:      b.Name,
			Queue:     b.QueueDepth(),
			Busy:      b.Busy(),
			Down:      !b.Healthy(),
			Draining:  b.Draining(),
			Completed: b.completed.Load(),
			Failed:    b.failed.Load(),
		})
	}
	return out
}

// Status is the /admin/proxy/status payload.
func (r *Router) Status() map[string]any {
	backends := make([]BackendStatus, 0, len(r.backends))
	for _, b := range r.backends {
		backends = append(backends, BackendStatus{
			Name: b.Name, URL: b.URL,
			Healthy: b.Healthy(), Draining: b.Draining(),
			InFlight: b.inflight.Load(), Busy: b.remoteBusy.Load(),
			Completed: b.completed.Load(), Failed: b.failed.Load(),
		})
	}
	r.mu.Lock()
	pinned := len(r.affinity)
	r.mu.Unlock()
	return map[string]any{
		"policy":          r.policy.Name(),
		"backends":        backends,
		"pinned_sessions": pinned,
		"lost_sessions":   r.lostSessions.Load(),
		"spilled":         r.spills.Load(),
		"shed":            r.shed.Load(),
		"retried":         r.retried.Load(),
	}
}

// AllHealthy reports whether every backend passed its last poll — the
// /admin/proxy/ready gate.
func (r *Router) AllHealthy() bool {
	for _, b := range r.backends {
		if !b.Healthy() {
			return false
		}
	}
	return true
}

// routable collects candidates for new-session routing: healthy and not
// draining, falling back to all healthy (a draining fleet must still
// serve), then to everything (fail honestly somewhere).
func (r *Router) routable() []cluster.Endpoint {
	cands := make([]cluster.Endpoint, 0, len(r.backends))
	for _, b := range r.backends {
		if b.Healthy() && !b.Draining() {
			cands = append(cands, b)
		}
	}
	if len(cands) == 0 {
		for _, b := range r.backends {
			if b.Healthy() {
				cands = append(cands, b)
			}
		}
	}
	if len(cands) == 0 {
		for _, b := range r.backends {
			cands = append(cands, b)
		}
	}
	return cands
}

// sessionID pulls the EBIDSESSION cookie (empty when absent).
func sessionID(req *http.Request) string {
	if c, err := req.Cookie("EBIDSESSION"); err == nil {
		return c.Value
	}
	return ""
}

// opFromPath extracts the operation name from /ebid/<Op>.
func opFromPath(path string) string {
	if rest, ok := strings.CutPrefix(path, "/ebid/"); ok {
		return rest
	}
	return ""
}

// pick chooses the backend for one request, applying affinity, spill
// and the routing policy. It may return a ShedError via err.
func (r *Router) pick(op, sid string) (*Backend, error) {
	if sid != "" {
		r.mu.Lock()
		pinned := r.affinity[sid]
		r.mu.Unlock()
		if pinned != nil {
			if pinned.Healthy() && !pinned.Draining() {
				return pinned, nil
			}
			// Affinity target gone: spill the established session.
			cands := r.routable()
			if len(cands) == 0 || (len(cands) == 1 && cands[0].(*Backend) == pinned) {
				r.lostSessions.Add(1)
				r.unpin(sid)
				return nil, fmt.Errorf("fleet: no live backend for session")
			}
			wreq := workload.Request{Op: op, SessionID: sid}
			next := r.policy.RouteSpill(&wreq, cands).(*Backend)
			r.mu.Lock()
			r.affinity[sid] = next
			r.mu.Unlock()
			r.spills.Add(1)
			return next, nil
		}
	}
	cands := r.routable()
	if len(cands) == 0 {
		return nil, fmt.Errorf("fleet: no backends")
	}
	wreq := workload.Request{Op: op, SessionID: sid}
	picked, err := r.policy.RouteNew(&wreq, cands)
	if err != nil {
		return nil, err
	}
	b := picked.(*Backend)
	if sid != "" {
		// A cookie-carrying request with no pin (the client re-logged
		// in after a logout or lapse, so the backend re-uses the cookie
		// without a fresh Set-Cookie): pin where we route it, or its
		// follow-ups scatter across backends and lapse spuriously.
		r.mu.Lock()
		r.affinity[sid] = b
		r.mu.Unlock()
	}
	return b, nil
}

func (r *Router) unpin(sid string) {
	r.mu.Lock()
	delete(r.affinity, sid)
	r.mu.Unlock()
}

// connLevel reports a connection-level failure (refused, reset, broken
// pipe, truncated response) that happened before the backend could have
// acted on the request — safe to retry on a peer, since every eBid
// operation is an idempotent GET, and grounds to mark the backend
// unhealthy without waiting for the next poll.
func connLevel(err error) bool {
	var nerr *net.OpError
	return errors.As(err, &nerr) ||
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// ServeHTTP implements http.Handler for /ebid/* traffic.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	op := opFromPath(req.URL.Path)
	sid := sessionID(req)

	const maxAttempts = 3
	tried := map[*Backend]bool{}
	for attempt := 0; attempt < maxAttempts; attempt++ {
		b, err := r.pick(op, sid)
		if err != nil {
			var shed *cluster.ShedError
			if errors.As(err, &shed) {
				r.shed.Add(1)
				w.Header().Set("Retry-After", fmt.Sprintf("%d", int(shed.After.Seconds())))
				http.Error(w, "fleet at capacity, retry later", http.StatusServiceUnavailable)
				return
			}
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		if tried[b] {
			// The policy keeps picking a backend we already failed on;
			// mark and move on rather than hammering it.
			b.healthy.Store(false)
			continue
		}
		tried[b] = true

		done, _ := r.forward(w, req, b, op, sid)
		if done {
			return
		}
		// Connection-level failure: the backend is gone. Mark it down
		// now (the poll loop will confirm); pick() handles the spill on
		// the retry.
		b.healthy.Store(false)
		b.failed.Add(1)
		r.retried.Add(1)
	}
	http.Error(w, "no backend reachable", http.StatusBadGateway)
}

// forward proxies one request to b. It returns done=true when a
// response (any status) was relayed to the client, done=false when the
// failure was connection-level and the caller should retry elsewhere.
func (r *Router) forward(w http.ResponseWriter, req *http.Request, b *Backend, op, sid string) (bool, error) {
	out, err := http.NewRequestWithContext(req.Context(), req.Method, b.URL+req.URL.RequestURI(), nil)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return true, err
	}
	out.Header = req.Header.Clone()

	b.inflight.Add(1)
	resp, err := r.client.Do(out)
	b.inflight.Add(-1)
	if err != nil {
		if connLevel(err) {
			return false, err
		}
		http.Error(w, err.Error(), http.StatusBadGateway)
		return true, err
	}
	defer resp.Body.Close()

	// Learn affinity from the session cookie the backend assigns, and
	// retire it on logout or a session lapse (the 401 tells the client
	// to log in again — it will get a fresh pin then).
	for _, c := range resp.Cookies() {
		if c.Name == "EBIDSESSION" && c.Value != "" {
			r.mu.Lock()
			r.affinity[c.Value] = b
			r.mu.Unlock()
		}
	}
	if sid != "" {
		if resp.StatusCode == http.StatusUnauthorized || (op == ebid.OpLogout && resp.StatusCode == http.StatusOK) {
			r.unpin(sid)
		}
	}

	hdr := w.Header()
	for k, vv := range resp.Header {
		for _, v := range vv {
			hdr.Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	if resp.StatusCode >= 500 {
		b.failed.Add(1)
	} else {
		b.completed.Add(1)
	}
	return true, nil
}

// Actuator glues the Router and Supervisor into the control plane's
// FleetActuator: drains act on routing, reboots act on processes. With
// this in place controlplane.FleetController's rolling
// drain→reboot→restore cycle operates a real OS-process fleet.
type Actuator struct {
	Router *Router
	Sup    *Supervisor
}

// SetDrain implements controlplane.FleetActuator.
func (a *Actuator) SetDrain(node string, drain bool) bool {
	return a.Router.SetDrain(node, drain)
}

// RebootNode implements controlplane.FleetActuator: a hard node reboot —
// SIGKILL and wait for the supervisor to bring the next incarnation up
// ready, reporting the real downtime.
func (a *Actuator) RebootNode(node string) (time.Duration, error) {
	return a.Sup.Restart(node, false)
}
