package fleet

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
)

// fakeBackend is a minimal ebid-server stand-in: it assigns EBIDSESSION
// cookies on login ops, serves /admin/fleet/status, and counts hits.
type fakeBackend struct {
	name   string
	hits   atomic.Int64
	nextID atomic.Int64
	srv    *httptest.Server
	// block, when set, parks /ebid/ requests until released (for
	// driving up proxy-side queue depth).
	block   chan struct{}
	arrived chan struct{}
}

func newFakeBackend(name string) *fakeBackend {
	b := &fakeBackend{name: name}
	b.srv = httptest.NewServer(http.HandlerFunc(b.serve))
	return b
}

func (b *fakeBackend) serve(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/admin/fleet/status" {
		fmt.Fprintf(w, `{"node":%q,"in_flight":0}`, b.name)
		return
	}
	b.hits.Add(1)
	if b.arrived != nil {
		b.arrived <- struct{}{}
	}
	if b.block != nil {
		<-b.block
	}
	op := strings.TrimPrefix(r.URL.Path, "/ebid/")
	if cluster.IsLoginOp(op) {
		if _, err := r.Cookie("EBIDSESSION"); err != nil {
			http.SetCookie(w, &http.Cookie{
				Name:  "EBIDSESSION",
				Value: fmt.Sprintf("%s-s%d", b.name, b.nextID.Add(1)),
				Path:  "/",
			})
		}
	}
	fmt.Fprintf(w, "served by %s", b.name)
}

func testRouter(t *testing.T, policy cluster.RoutingPolicy, fakes ...*fakeBackend) (*Router, *httptest.Server) {
	t.Helper()
	backends := make([]*Backend, len(fakes))
	for i, f := range fakes {
		backends[i] = &Backend{Name: f.name, URL: f.srv.URL}
	}
	r := NewRouter(policy, backends, 20*time.Millisecond)
	r.Start()
	t.Cleanup(r.Stop)
	proxy := httptest.NewServer(r)
	t.Cleanup(proxy.Close)
	return r, proxy
}

// get issues one GET through the proxy, optionally with a session
// cookie, and returns status, body and any Set-Cookie session id.
func get(t *testing.T, url, sid string) (int, string, string) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	if sid != "" {
		req.AddCookie(&http.Cookie{Name: "EBIDSESSION", Value: sid})
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var body strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		body.Write(buf[:n])
		if err != nil {
			break
		}
	}
	newSID := ""
	for _, c := range resp.Cookies() {
		if c.Name == "EBIDSESSION" {
			newSID = c.Value
		}
	}
	return resp.StatusCode, body.String(), newSID
}

// TestRouterStickySession: once a login assigns a session cookie, every
// follow-up request with that cookie lands on the same backend.
func TestRouterStickySession(t *testing.T) {
	b0, b1 := newFakeBackend("node0"), newFakeBackend("node1")
	defer b0.srv.Close()
	defer b1.srv.Close()
	_, proxy := testRouter(t, cluster.NewRoundRobin(), b0, b1)

	status, body, sid := get(t, proxy.URL+"/ebid/Authenticate?user=1", "")
	if status != http.StatusOK || sid == "" {
		t.Fatalf("login: status %d, sid %q", status, sid)
	}
	owner := body[len("served by "):]
	var other *fakeBackend
	if owner == "node0" {
		other = b1
	} else {
		other = b0
	}
	before := other.hits.Load()
	for i := 0; i < 10; i++ {
		status, got, _ := get(t, proxy.URL+"/ebid/ViewItem?item=1", sid)
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, status)
		}
		if got != body {
			t.Fatalf("request %d went to %q, want %q", i, got, body)
		}
	}
	if other.hits.Load() != before {
		t.Errorf("non-affinity backend got %d extra hits", other.hits.Load()-before)
	}
}

// TestRouterFailoverSpill: when a session's backend dies, the request
// transparently fails over to a peer — 200 to the client, a spill
// recorded, no lost sessions.
func TestRouterFailoverSpill(t *testing.T) {
	b0, b1 := newFakeBackend("node0"), newFakeBackend("node1")
	defer b1.srv.Close()
	r, proxy := testRouter(t, cluster.NewRoundRobin(), b0, b1)

	// Pin a session to whichever backend answers the login.
	_, body, sid := get(t, proxy.URL+"/ebid/Authenticate?user=1", "")
	victim, survivor := b0, b1
	if strings.HasSuffix(body, "node1") {
		victim, survivor = b1, b0
	}
	victim.srv.Close()

	status, got, _ := get(t, proxy.URL+"/ebid/ViewItem?item=1", sid)
	if status != http.StatusOK {
		t.Fatalf("failover request: status %d, body %q", status, got)
	}
	if !strings.HasSuffix(got, survivor.name) {
		t.Fatalf("failover went to %q, want %s", got, survivor.name)
	}
	st := r.Status()
	if st["lost_sessions"].(int64) != 0 {
		t.Errorf("lost_sessions = %d, want 0", st["lost_sessions"])
	}
	if r.spills.Load()+r.retried.Load() == 0 {
		t.Error("neither a spill nor a transparent retry was recorded")
	}
	// The session is re-pinned: the next request needs no retry.
	retriedBefore := r.retried.Load()
	status, _, _ = get(t, proxy.URL+"/ebid/ViewItem?item=2", sid)
	if status != http.StatusOK {
		t.Fatalf("post-spill request: status %d", status)
	}
	if r.retried.Load() != retriedBefore {
		t.Error("re-pinned session still needed a transparent retry")
	}
}

// TestRouterDrainExcludesBackend: a draining backend receives no new
// sessions; established ones spill away from it.
func TestRouterDrainExcludesBackend(t *testing.T) {
	b0, b1 := newFakeBackend("node0"), newFakeBackend("node1")
	defer b0.srv.Close()
	defer b1.srv.Close()
	r, proxy := testRouter(t, cluster.NewRoundRobin(), b0, b1)

	// Pin a session, then drain its backend.
	_, body, sid := get(t, proxy.URL+"/ebid/Authenticate?user=1", "")
	pinned := "node0"
	if strings.HasSuffix(body, "node1") {
		pinned = "node1"
	}
	if !r.SetDrain(pinned, true) {
		t.Fatalf("SetDrain(%s) found no backend", pinned)
	}
	for i := 0; i < 6; i++ {
		status, got, _ := get(t, proxy.URL+"/ebid/ViewItem?item=1", sid)
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, status)
		}
		if strings.HasSuffix(got, pinned) {
			t.Fatalf("request %d reached draining backend %s", i, pinned)
		}
	}
	// New sessions avoid the draining backend too.
	for i := 0; i < 6; i++ {
		_, got, _ := get(t, proxy.URL+"/ebid/Authenticate?user=2", "")
		if strings.HasSuffix(got, pinned) {
			t.Fatalf("new session %d landed on draining backend %s", i, pinned)
		}
	}
	// Un-drain: the backend serves again.
	r.SetDrain(pinned, false)
	seen := false
	for i := 0; i < 10 && !seen; i++ {
		_, got, _ := get(t, proxy.URL+"/ebid/Authenticate?user=3", "")
		seen = strings.HasSuffix(got, pinned)
	}
	if !seen {
		t.Errorf("un-drained backend %s got no traffic in 10 logins", pinned)
	}
}

// TestRouterShed503: with the shedding policy and every backend past
// the queue watermark, a new login is answered 503 + Retry-After while
// non-login traffic still flows.
func TestRouterShed503(t *testing.T) {
	b0 := newFakeBackend("node0")
	defer b0.srv.Close()
	b0.block = make(chan struct{})
	b0.arrived = make(chan struct{}, 8)
	policy := &cluster.SheddingPolicy{Inner: cluster.NewRoundRobin(), QueueWatermark: 1, RetryAfter: 2 * time.Second}
	_, proxy := testRouter(t, policy, b0)

	// Park two non-login requests on the backend so the proxy-side
	// queue depth passes the watermark.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, _, _ := get(t, proxy.URL+"/ebid/ViewItem?item=1", "")
			if status != http.StatusOK {
				t.Errorf("parked request: status %d", status)
			}
		}()
	}
	<-b0.arrived
	<-b0.arrived

	status, _, _ := getWithRetryAfter(t, proxy.URL+"/ebid/Home", func(ra string) {
		if ra == "" {
			t.Error("503 without Retry-After")
		}
	})
	if status != http.StatusServiceUnavailable {
		t.Errorf("login at capacity: status %d, want 503", status)
	}
	close(b0.block)
	wg.Wait()

	// Capacity restored: logins are admitted again.
	status, _, _ = get(t, proxy.URL+"/ebid/Home", "")
	if status != http.StatusOK {
		t.Errorf("login after release: status %d, want 200", status)
	}
}

func getWithRetryAfter(t *testing.T, url string, check func(string)) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	check(resp.Header.Get("Retry-After"))
	return resp.StatusCode, "", ""
}

// TestRouterUnpinsOn401: a session-lapse 401 drops the affinity pin so
// the client's re-login can land anywhere.
func TestRouterUnpinsOn401(t *testing.T) {
	lapse := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/admin/fleet/status" {
			fmt.Fprint(w, `{"in_flight":0}`)
			return
		}
		http.Error(w, "session lapsed", http.StatusUnauthorized)
	}))
	defer lapse.Close()
	r := NewRouter(cluster.NewRoundRobin(), []*Backend{{Name: "node0", URL: lapse.URL}}, 20*time.Millisecond)
	r.Start()
	defer r.Stop()
	proxy := httptest.NewServer(r)
	defer proxy.Close()

	// Seed a pin by hand via the affinity-learning path: the backend
	// never sets cookies here, so plant one directly.
	r.mu.Lock()
	r.affinity["sid-1"] = r.backends[0]
	r.mu.Unlock()

	status, _, _ := get(t, proxy.URL+"/ebid/AboutMe", "sid-1")
	if status != http.StatusUnauthorized {
		t.Fatalf("status = %d, want 401", status)
	}
	r.mu.Lock()
	_, pinned := r.affinity["sid-1"]
	r.mu.Unlock()
	if pinned {
		t.Error("session still pinned after 401")
	}
}

// TestRouterProbeStats: the FleetProbe view reflects health and drain
// state, so the control plane sees the real fleet.
func TestRouterProbeStats(t *testing.T) {
	b0, b1 := newFakeBackend("node0"), newFakeBackend("node1")
	defer b1.srv.Close()
	r, _ := testRouter(t, cluster.LeastLoadedPolicy{}, b0, b1)

	r.SetDrain("node1", true)
	b0.srv.Close()
	time.Sleep(100 * time.Millisecond) // a few poll cycles

	stats := r.FleetStats()
	if len(stats) != 2 {
		t.Fatalf("got %d node stats, want 2", len(stats))
	}
	for _, st := range stats {
		switch st.Node {
		case "node0":
			if !st.Down {
				t.Error("node0 not reported down after its server closed")
			}
		case "node1":
			if !st.Draining {
				t.Error("node1 not reported draining")
			}
			if st.Down {
				t.Error("node1 reported down while healthy")
			}
		}
	}
	if r.AllHealthy() {
		t.Error("AllHealthy true with node0 dead")
	}
}

// BenchmarkProxyRouteNew measures the proxy-side routing decision (the
// pick path without any network I/O) — the fleet counterpart of the
// in-process BenchmarkLBRouteNew.
func BenchmarkProxyRouteNew(b *testing.B) {
	backends := make([]*Backend, 4)
	for i := range backends {
		backends[i] = &Backend{Name: fmt.Sprintf("node%d", i)}
		backends[i].healthy.Store(true)
	}
	r := NewRouter(cluster.LeastLoadedPolicy{}, backends, time.Hour)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.pick("ViewItem", ""); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProxyForward measures one full proxied request over real
// sockets — the end-to-end hop cost the reverse proxy adds.
func BenchmarkProxyForward(b *testing.B) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/admin/fleet/status" {
			fmt.Fprint(w, `{"in_flight":0}`)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer backend.Close()
	r := NewRouter(cluster.LeastLoadedPolicy{}, []*Backend{{Name: "node0", URL: backend.URL}}, time.Hour)
	r.Start()
	defer r.Stop()
	proxy := httptest.NewServer(r)
	defer proxy.Close()

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(proxy.URL + "/ebid/ViewItem?item=1")
		if err != nil {
			b.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}
