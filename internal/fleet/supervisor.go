// Package fleet runs a real multi-process eBid fleet: a Supervisor that
// spawns and resurrects ebid-server OS processes, and a Router that
// fronts them as a reverse-proxy load balancer reusing the cluster
// routing policies. Together they make the paper's node-scope recovery
// literal — "reboot the node" is SIGKILL + re-exec of a process, not a
// state reset inside one address space.
package fleet

import (
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"
)

// Defaults for ChildSpec knobs left zero.
const (
	DefaultReadyTimeout    = 15 * time.Second
	DefaultDrainTimeout    = 10 * time.Second
	DefaultBackoffMin      = 100 * time.Millisecond
	DefaultBackoffMax      = 5 * time.Second
	DefaultCrashLoopWindow = 30 * time.Second
	DefaultCrashLoopLimit  = 5
	readyPollInterval      = 25 * time.Millisecond
)

// ChildSpec describes one supervised process.
type ChildSpec struct {
	// Name identifies the child in events, status and actuator calls
	// (the fleet node name, e.g. "node0").
	Name string
	// Path and Args are the executable and its arguments (argv[1:]).
	Path string
	Args []string
	// ReadyURL, when set, is polled with GET until it answers 200 —
	// only then is the child Ready (and Restart returns). Empty means
	// ready as soon as the process starts.
	ReadyURL string
	// ReadyTimeout bounds the ready poll after each (re)spawn.
	ReadyTimeout time.Duration
	// DrainTimeout is how long a graceful stop (SIGTERM) waits before
	// escalating to SIGKILL.
	DrainTimeout time.Duration
	// BackoffMin/BackoffMax bound the exponential respawn backoff after
	// crashes. A deliberate Restart respawns immediately.
	BackoffMin, BackoffMax time.Duration
	// CrashLoopWindow/CrashLoopLimit: more than CrashLoopLimit crashes
	// inside CrashLoopWindow emits EventCrashLoop (the escalation
	// signal — the supervisor keeps trying at BackoffMax, but the
	// operator or control plane should widen the recovery scope).
	CrashLoopWindow time.Duration
	CrashLoopLimit  int
	// Stdout/Stderr receive the child's output (default: inherit).
	Stdout, Stderr *os.File
}

func (s *ChildSpec) withDefaults() ChildSpec {
	c := *s
	if c.ReadyTimeout <= 0 {
		c.ReadyTimeout = DefaultReadyTimeout
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = DefaultBackoffMin
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = DefaultBackoffMax
	}
	if c.CrashLoopWindow <= 0 {
		c.CrashLoopWindow = DefaultCrashLoopWindow
	}
	if c.CrashLoopLimit <= 0 {
		c.CrashLoopLimit = DefaultCrashLoopLimit
	}
	return c
}

// EventKind enumerates supervisor lifecycle events.
type EventKind int

const (
	// EventStarted: a process (re)spawned; Pid and Gen are set.
	EventStarted EventKind = iota
	// EventReady: the ready URL answered 200 (or no URL configured).
	EventReady
	// EventExited: the process exited; ExitCode is set (-1 when killed
	// by signal).
	EventExited
	// EventRespawn: the supervisor is about to respawn a crashed child
	// after Backoff.
	EventRespawn
	// EventCrashLoop: crash frequency exceeded the spec's loop limit —
	// process-scope recovery is not converging, escalate.
	EventCrashLoop
	// EventDrainKilled: a graceful stop exceeded DrainTimeout and the
	// child was SIGKILLed.
	EventDrainKilled
)

// String implements fmt.Stringer for log lines.
func (k EventKind) String() string {
	switch k {
	case EventStarted:
		return "started"
	case EventReady:
		return "ready"
	case EventExited:
		return "exited"
	case EventRespawn:
		return "respawn"
	case EventCrashLoop:
		return "crash-loop"
	case EventDrainKilled:
		return "drain-killed"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one supervisor observation, delivered to the callback passed
// to New (synchronously, from the child's monitor goroutine).
type Event struct {
	Kind    EventKind
	Child   string
	Pid     int
	Gen     int // incarnation number, 1 on first start
	Code    int // EventExited: exit code, -1 if signal-killed
	Backoff time.Duration
	Crashes int // crashes inside the loop window (EventCrashLoop)
}

// ChildStatus is one child's externally visible state.
type ChildStatus struct {
	Name     string `json:"name"`
	Pid      int    `json:"pid"`
	Gen      int    `json:"gen"`
	Ready    bool   `json:"ready"`
	Restarts int    `json:"restarts"` // respawns after crashes (not deliberate restarts)
	Stopped  bool   `json:"stopped"`
}

// child is the supervisor-internal state of one spec.
type child struct {
	spec ChildSpec

	mu            sync.Mutex
	cmd           *exec.Cmd
	gen           int
	ready         bool
	restarts      int // crash respawns
	stopped       bool
	expectRestart bool // next exit is deliberate: respawn with no crash accounting
	crashes       []time.Time
	done          chan struct{} // closed when the monitor goroutine returns
}

// Supervisor owns a set of child processes and keeps them alive: each
// child gets a monitor goroutine that waits on the process, applies
// crash-respawn backoff, and republishes lifecycle events. It is the
// process-scope analogue of the application server's microreboot
// machinery one level down the recovery hierarchy.
type Supervisor struct {
	mu       sync.Mutex
	children map[string]*child
	events   func(Event)
	client   *http.Client
	stopping bool
}

// New builds a Supervisor. events may be nil; when set it receives every
// lifecycle event synchronously and must not block for long.
func New(events func(Event)) *Supervisor {
	if events == nil {
		events = func(Event) {}
	}
	return &Supervisor{
		children: map[string]*child{},
		events:   events,
		client:   &http.Client{Timeout: 500 * time.Millisecond},
	}
}

// Add spawns the child and begins supervising it.
func (s *Supervisor) Add(spec ChildSpec) error {
	if spec.Name == "" || spec.Path == "" {
		return fmt.Errorf("fleet: child spec needs Name and Path")
	}
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		return fmt.Errorf("fleet: supervisor is stopping")
	}
	if _, dup := s.children[spec.Name]; dup {
		s.mu.Unlock()
		return fmt.Errorf("fleet: duplicate child %q", spec.Name)
	}
	c := &child{spec: spec.withDefaults(), done: make(chan struct{})}
	s.children[spec.Name] = c
	s.mu.Unlock()

	if err := s.spawn(c); err != nil {
		s.mu.Lock()
		delete(s.children, spec.Name)
		s.mu.Unlock()
		close(c.done)
		return err
	}
	go s.monitor(c)
	return nil
}

// spawn starts one incarnation of c and kicks off the ready poll.
func (s *Supervisor) spawn(c *child) error {
	cmd := exec.Command(c.spec.Path, c.spec.Args...)
	// Each child leads its own process group so hard kills take the
	// whole tree — an orphaned grandchild is a leaked node.
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	if c.spec.Stdout != nil {
		cmd.Stdout = c.spec.Stdout
	} else {
		cmd.Stdout = os.Stdout
	}
	if c.spec.Stderr != nil {
		cmd.Stderr = c.spec.Stderr
	} else {
		cmd.Stderr = os.Stderr
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("fleet: start %s: %w", c.spec.Name, err)
	}
	c.mu.Lock()
	c.cmd = cmd
	c.gen++
	c.ready = c.spec.ReadyURL == ""
	gen := c.gen
	c.mu.Unlock()
	s.events(Event{Kind: EventStarted, Child: c.spec.Name, Pid: cmd.Process.Pid, Gen: gen})
	if c.spec.ReadyURL == "" {
		s.events(Event{Kind: EventReady, Child: c.spec.Name, Pid: cmd.Process.Pid, Gen: gen})
	} else {
		go s.pollReady(c, gen, cmd.Process.Pid)
	}
	return nil
}

// pollReady marks generation gen ready once its ReadyURL answers 200.
// It gives up silently when the generation changes underneath it (the
// process died; the monitor handles that).
func (s *Supervisor) pollReady(c *child, gen, pid int) {
	deadline := time.Now().Add(c.spec.ReadyTimeout)
	for time.Now().Before(deadline) {
		resp, err := s.client.Get(c.spec.ReadyURL)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				c.mu.Lock()
				stale := c.gen != gen
				if !stale {
					c.ready = true
				}
				c.mu.Unlock()
				if !stale {
					s.events(Event{Kind: EventReady, Child: c.spec.Name, Pid: pid, Gen: gen})
				}
				return
			}
		}
		c.mu.Lock()
		stale := c.gen != gen
		c.mu.Unlock()
		if stale {
			return
		}
		time.Sleep(readyPollInterval)
	}
}

// monitor is the per-child goroutine: wait for exit, decide crash vs
// deliberate, respawn with backoff, escalate on crash loops.
func (s *Supervisor) monitor(c *child) {
	defer close(c.done)
	backoff := c.spec.BackoffMin
	for {
		c.mu.Lock()
		cmd := c.cmd
		gen := c.gen
		c.mu.Unlock()

		err := cmd.Wait()
		code := exitCode(err)
		// Sweep the dead incarnation's process group: whatever it
		// leaves behind (a grandchild that outlived a graceful exit)
		// is an unsupervised remnant of a node that no longer exists.
		_ = syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL)

		c.mu.Lock()
		c.ready = false
		deliberate := c.expectRestart
		c.expectRestart = false
		stopped := c.stopped
		pid := cmd.Process.Pid
		c.mu.Unlock()
		s.events(Event{Kind: EventExited, Child: c.spec.Name, Pid: pid, Gen: gen, Code: code})

		if stopped {
			return
		}

		wait := time.Duration(0)
		if deliberate {
			backoff = c.spec.BackoffMin
		} else {
			now := time.Now()
			c.mu.Lock()
			c.restarts++
			c.crashes = append(c.crashes, now)
			keep := c.crashes[:0]
			for _, t := range c.crashes {
				if now.Sub(t) <= c.spec.CrashLoopWindow {
					keep = append(keep, t)
				}
			}
			c.crashes = keep
			looping := len(c.crashes) > c.spec.CrashLoopLimit
			nCrashes := len(c.crashes)
			c.mu.Unlock()
			if looping {
				s.events(Event{Kind: EventCrashLoop, Child: c.spec.Name, Gen: gen, Crashes: nCrashes})
				backoff = c.spec.BackoffMax
			}
			wait = backoff
			backoff *= 2
			if backoff > c.spec.BackoffMax {
				backoff = c.spec.BackoffMax
			}
		}
		if wait > 0 {
			s.events(Event{Kind: EventRespawn, Child: c.spec.Name, Gen: gen, Backoff: wait})
			time.Sleep(wait)
		}

		c.mu.Lock()
		stopped = c.stopped
		c.mu.Unlock()
		if stopped {
			return
		}
		if err := s.spawn(c); err != nil {
			// Binary vanished or fork failed: treat as a crash and retry
			// at max backoff rather than abandoning the child.
			s.events(Event{Kind: EventRespawn, Child: c.spec.Name, Gen: gen, Backoff: c.spec.BackoffMax})
			time.Sleep(c.spec.BackoffMax)
			c.mu.Lock()
			stopped = c.stopped
			c.mu.Unlock()
			if stopped {
				return
			}
			if err := s.spawn(c); err != nil {
				return
			}
		}
	}
}

// exitCode extracts the exit status; -1 means killed by signal.
func exitCode(err error) int {
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
			return -1
		}
		return ee.ExitCode()
	}
	return -1
}

// Kill SIGKILLs the named child (chaos injection). The monitor sees the
// death as a crash and respawns with backoff — exactly what an external
// fault would look like.
func (s *Supervisor) Kill(name string) error {
	c, err := s.child(name)
	if err != nil {
		return err
	}
	c.mu.Lock()
	cmd := c.cmd
	c.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("fleet: %s is not running", name)
	}
	return hardKill(cmd)
}

// hardKill SIGKILLs the child's whole process group (it is the group
// leader), falling back to the process alone.
func hardKill(cmd *exec.Cmd) error {
	if err := syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL); err == nil {
		return nil
	}
	return cmd.Process.Kill()
}

// Restart performs a deliberate node reboot: signal the current
// incarnation (SIGTERM when graceful, SIGKILL otherwise), wait for the
// next incarnation to come up ready, and report how long the node was
// effectively down. Deliberate restarts skip crash accounting and
// respawn without backoff.
func (s *Supervisor) Restart(name string, graceful bool) (time.Duration, error) {
	c, err := s.child(name)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	cmd := c.cmd
	oldGen := c.gen
	c.expectRestart = true
	c.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return 0, fmt.Errorf("fleet: %s is not running", name)
	}
	start := time.Now()
	if graceful {
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			return 0, err
		}
	} else if err := hardKill(cmd); err != nil {
		return 0, err
	}
	deadline := time.Now().Add(c.spec.DrainTimeout + c.spec.ReadyTimeout + 5*time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		up := c.gen > oldGen && c.ready
		c.mu.Unlock()
		if up {
			return time.Since(start), nil
		}
		time.Sleep(readyPollInterval)
	}
	return time.Since(start), fmt.Errorf("fleet: %s did not come back ready", name)
}

// StopChild gracefully retires one child: SIGTERM, wait DrainTimeout,
// SIGKILL stragglers. The child is not respawned.
func (s *Supervisor) StopChild(name string) error {
	c, err := s.child(name)
	if err != nil {
		return err
	}
	s.stopOne(c)
	return nil
}

func (s *Supervisor) stopOne(c *child) {
	c.mu.Lock()
	c.stopped = true
	cmd := c.cmd
	gen := c.gen
	c.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return
	}
	_ = cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-c.done:
	case <-time.After(c.spec.DrainTimeout):
		_ = hardKill(cmd)
		s.events(Event{Kind: EventDrainKilled, Child: c.spec.Name, Pid: cmd.Process.Pid, Gen: gen})
		<-c.done
	}
}

// Stop retires every child concurrently and waits for all monitors to
// finish. The supervisor accepts no new children afterwards.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	s.stopping = true
	kids := make([]*child, 0, len(s.children))
	for _, c := range s.children {
		kids = append(kids, c)
	}
	s.mu.Unlock()
	var wg sync.WaitGroup
	for _, c := range kids {
		wg.Add(1)
		go func(c *child) {
			defer wg.Done()
			s.stopOne(c)
		}(c)
	}
	wg.Wait()
}

// Ready reports whether the named child's current incarnation is ready.
func (s *Supervisor) Ready(name string) bool {
	c, err := s.child(name)
	if err != nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ready
}

// Status reports every child's state. Order is not guaranteed; callers
// sort if they need stable output.
func (s *Supervisor) Status() []ChildStatus {
	s.mu.Lock()
	kids := make([]*child, 0, len(s.children))
	for _, c := range s.children {
		kids = append(kids, c)
	}
	s.mu.Unlock()
	out := make([]ChildStatus, 0, len(kids))
	for _, c := range kids {
		c.mu.Lock()
		st := ChildStatus{
			Name: c.spec.Name, Gen: c.gen, Ready: c.ready,
			Restarts: c.restarts, Stopped: c.stopped,
		}
		if c.cmd != nil && c.cmd.Process != nil {
			st.Pid = c.cmd.Process.Pid
		}
		c.mu.Unlock()
		out = append(out, st)
	}
	return out
}

func (s *Supervisor) child(name string) (*child, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.children[name]
	if !ok {
		return nil, fmt.Errorf("fleet: unknown child %q", name)
	}
	return c, nil
}
