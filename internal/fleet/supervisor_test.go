package fleet

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"syscall"
	"testing"
	"time"
)

// recorder collects supervisor events thread-safely.
type recorder struct {
	mu     sync.Mutex
	events []Event
}

func (r *recorder) record(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func (r *recorder) snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

func (r *recorder) count(k EventKind) int {
	n := 0
	for _, e := range r.snapshot() {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// waitFor polls cond until true or the deadline lapses.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestCrashRespawnBackoff: a child that dies instantly is respawned
// with exponentially growing backoff, and every crash is accounted.
func TestCrashRespawnBackoff(t *testing.T) {
	rec := &recorder{}
	s := New(rec.record)
	err := s.Add(ChildSpec{
		Name: "crasher", Path: "/bin/sh", Args: []string{"-c", "exit 3"},
		BackoffMin: 20 * time.Millisecond, BackoffMax: 200 * time.Millisecond,
		CrashLoopWindow: time.Minute, CrashLoopLimit: 1000,
	})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	defer s.Stop()

	waitFor(t, 5*time.Second, "3 respawns", func() bool { return rec.count(EventStarted) >= 4 })

	var backoffs []time.Duration
	for _, e := range rec.snapshot() {
		if e.Kind == EventRespawn {
			backoffs = append(backoffs, e.Backoff)
		}
		if e.Kind == EventExited && e.Code != 3 {
			t.Errorf("exit code = %d, want 3", e.Code)
		}
	}
	if len(backoffs) < 3 {
		t.Fatalf("saw %d respawn events, want >= 3", len(backoffs))
	}
	for i := 0; i < 2; i++ {
		if backoffs[i+1] < backoffs[i] {
			t.Errorf("backoff shrank: %v then %v", backoffs[i], backoffs[i+1])
		}
	}
	if backoffs[0] != 20*time.Millisecond {
		t.Errorf("first backoff = %v, want 20ms", backoffs[0])
	}
	st := s.Status()[0]
	if st.Restarts < 3 {
		t.Errorf("Restarts = %d, want >= 3", st.Restarts)
	}
}

// TestCrashLoopEscalation: crashing more than CrashLoopLimit times
// inside the window emits the escalation event and pins backoff at max.
func TestCrashLoopEscalation(t *testing.T) {
	rec := &recorder{}
	s := New(rec.record)
	err := s.Add(ChildSpec{
		Name: "looper", Path: "/bin/sh", Args: []string{"-c", "exit 1"},
		BackoffMin: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
		CrashLoopWindow: time.Minute, CrashLoopLimit: 2,
	})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	defer s.Stop()

	waitFor(t, 5*time.Second, "crash-loop event", func() bool { return rec.count(EventCrashLoop) >= 1 })
	for _, e := range rec.snapshot() {
		if e.Kind == EventCrashLoop && e.Crashes <= 2 {
			t.Errorf("escalated at %d crashes, want > limit (2)", e.Crashes)
		}
	}
}

// TestDrainTimeoutHardKill: a child that ignores SIGTERM is SIGKILLed
// once the drain deadline lapses.
func TestDrainTimeoutHardKill(t *testing.T) {
	rec := &recorder{}
	s := New(rec.record)
	err := s.Add(ChildSpec{
		Name: "stubborn", Path: "/bin/sh",
		Args:         []string{"-c", `trap "" TERM; while :; do sleep 0.05; done`},
		DrainTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	time.Sleep(100 * time.Millisecond) // let sh install the trap
	start := time.Now()
	if err := s.StopChild("stubborn"); err != nil {
		t.Fatalf("StopChild: %v", err)
	}
	if rec.count(EventDrainKilled) != 1 {
		t.Fatalf("drain-killed events = %d, want 1", rec.count(EventDrainKilled))
	}
	if took := time.Since(start); took < 150*time.Millisecond {
		t.Errorf("stop returned in %v, before the 150ms drain deadline", took)
	}
	st := s.Status()[0]
	if !st.Stopped {
		t.Error("child not marked stopped")
	}
	// The process must actually be dead.
	if st.Pid > 0 {
		if err := syscall.Kill(st.Pid, 0); err == nil {
			// Zombies answer signal 0 until reaped; monitor reaps via
			// Wait, so give it a beat.
			waitFor(t, time.Second, "process death", func() bool {
				return syscall.Kill(st.Pid, 0) != nil
			})
		}
	}
}

// TestGracefulStopNoKill: a cooperative child exits on SIGTERM inside
// the deadline — no hard kill, no respawn.
func TestGracefulStopNoKill(t *testing.T) {
	rec := &recorder{}
	s := New(rec.record)
	err := s.Add(ChildSpec{
		Name: "polite", Path: "/bin/sh",
		Args:         []string{"-c", `trap "exit 0" TERM; while :; do sleep 0.05; done`},
		DrainTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	time.Sleep(100 * time.Millisecond) // let sh install the trap
	s.Stop()
	if n := rec.count(EventDrainKilled); n != 0 {
		t.Errorf("drain-killed events = %d, want 0", n)
	}
	if n := rec.count(EventStarted); n != 1 {
		t.Errorf("started events = %d, want 1 (no respawn after deliberate stop)", n)
	}
}

// TestRestartDeliberate: Restart bumps the generation without charging
// a crash, and reports the downtime.
func TestRestartDeliberate(t *testing.T) {
	rec := &recorder{}
	s := New(rec.record)
	err := s.Add(ChildSpec{
		Name: "steady", Path: "/bin/sh", Args: []string{"-c", "sleep 60"},
		BackoffMin: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	defer s.Stop()

	down, err := s.Restart("steady", false)
	if err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if down <= 0 {
		t.Errorf("downtime = %v, want > 0", down)
	}
	st := s.Status()[0]
	if st.Gen != 2 {
		t.Errorf("gen = %d, want 2", st.Gen)
	}
	if st.Restarts != 0 {
		t.Errorf("Restarts = %d, want 0 (deliberate restart is not a crash)", st.Restarts)
	}
	if !st.Ready {
		t.Error("child not ready after restart")
	}
}

// TestKillRespawns: chaos SIGKILL is treated as a crash — the child
// comes back on its own with crash accounting.
func TestKillRespawns(t *testing.T) {
	rec := &recorder{}
	s := New(rec.record)
	err := s.Add(ChildSpec{
		Name: "victim", Path: "/bin/sh", Args: []string{"-c", "sleep 60"},
		BackoffMin: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	defer s.Stop()

	if err := s.Kill("victim"); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	waitFor(t, 5*time.Second, "respawn after SIGKILL", func() bool {
		st := s.Status()[0]
		return st.Gen == 2 && st.Ready
	})
	for _, e := range rec.snapshot() {
		if e.Kind == EventExited && e.Code != -1 {
			t.Errorf("exit code = %d, want -1 (signal death)", e.Code)
		}
	}
	if st := s.Status()[0]; st.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1", st.Restarts)
	}
}

// TestReadyURLGatesReadiness: with a ReadyURL configured the child is
// not ready until the URL answers 200.
func TestReadyURLGatesReadiness(t *testing.T) {
	var ok sync.Map // flips the probe target to 200
	probe := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, up := ok.Load("up"); up {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer probe.Close()

	rec := &recorder{}
	s := New(rec.record)
	err := s.Add(ChildSpec{
		Name: "gated", Path: "/bin/sh", Args: []string{"-c", "sleep 60"},
		ReadyURL: probe.URL, ReadyTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	defer s.Stop()

	time.Sleep(100 * time.Millisecond)
	if s.Ready("gated") {
		t.Fatal("ready before the probe URL answered 200")
	}
	ok.Store("up", true)
	waitFor(t, 2*time.Second, "readiness", func() bool { return s.Ready("gated") })
	if rec.count(EventReady) != 1 {
		t.Errorf("ready events = %d, want 1", rec.count(EventReady))
	}
}
