// Package httpfront serves a deployed eBid application over real HTTP,
// the way the paper's prototype served it from JBoss's embedded web
// server. End-user operations map to URLs; sessions ride on cookies; a
// component mid-microreboot yields HTTP 503 with a Retry-After header
// (Section 6.2); and the microreboot method is exposed over HTTP for
// remote invocation by a recovery manager, exactly as the paper's
// prototype allowed µRBs "programmatically from within the server, or
// remotely, over HTTP".
package httpfront

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/ebid"
)

// Front is the HTTP front end for one application server.
type Front struct {
	App   *ebid.App
	start time.Time
}

// New builds a front end for the given application.
func New(app *ebid.App) *Front {
	return &Front{App: app, start: time.Now()}
}

// Handler returns the HTTP handler: /ebid/<Operation> for end-user
// operations, /admin/microreboot, /admin/reboot, /admin/components.
func (f *Front) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ebid/", f.serveOp)
	mux.HandleFunc("/admin/microreboot", f.serveMicroreboot)
	mux.HandleFunc("/admin/reboot", f.serveReboot)
	mux.HandleFunc("/admin/components", f.serveComponents)
	return mux
}

// sessionID extracts (or assigns) the session cookie.
func (f *Front) sessionID(w http.ResponseWriter, r *http.Request) string {
	if c, err := r.Cookie("EBIDSESSION"); err == nil && c.Value != "" {
		return c.Value
	}
	id := fmt.Sprintf("http-%d", time.Now().UnixNano())
	http.SetCookie(w, &http.Cookie{Name: "EBIDSESSION", Value: id, Path: "/"})
	return id
}

// serveOp dispatches /ebid/<Op>?arg=value... into the application.
func (f *Front) serveOp(w http.ResponseWriter, r *http.Request) {
	op := strings.TrimPrefix(r.URL.Path, "/ebid/")
	info, ok := ebid.Info(op)
	if !ok {
		http.Error(w, "unknown operation "+op, http.StatusNotFound)
		return
	}
	args := map[string]any{}
	for key, vals := range r.URL.Query() {
		if len(vals) == 0 {
			continue
		}
		if n, err := strconv.ParseInt(vals[0], 10, 64); err == nil {
			args[key] = n
			continue
		}
		if x, err := strconv.ParseFloat(vals[0], 64); err == nil {
			args[key] = x
			continue
		}
		args[key] = vals[0]
	}
	call := &core.Call{
		Op:        op,
		SessionID: f.sessionID(w, r),
		Args:      args,
		TTL:       time.Minute,
	}
	body, err := f.App.Execute(call)
	if err != nil {
		var ra *core.RetryAfterError
		if errors.As(err, &ra) {
			// The paper's transparent-retry machinery: idempotent
			// requests may simply be reissued after this interval.
			secs := int(ra.After.Seconds())
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			http.Error(w, "component recovering: "+ra.Component, http.StatusServiceUnavailable)
			return
		}
		if errors.Is(err, core.ErrHang) {
			http.Error(w, "request wedged (deadlock/loop injected)", http.StatusGatewayTimeout)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	_ = info
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintln(w, body)
}

// serveMicroreboot handles POST /admin/microreboot?component=Name — the
// remotely invocable microreboot method added to the server.
func (f *Front) serveMicroreboot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	comp := r.URL.Query().Get("component")
	if comp == "" {
		http.Error(w, "component parameter required", http.StatusBadRequest)
		return
	}
	rb, err := f.App.Server.BeginMicroreboot(comp)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	// In real-time mode the modeled recovery interval elapses on the
	// wall clock before reintegration.
	go func() {
		time.Sleep(rb.Duration())
		_ = f.App.Server.CompleteMicroreboot(rb)
	}()
	writeJSON(w, map[string]any{
		"members":     rb.Members,
		"duration_ms": rb.Duration().Milliseconds(),
		"freed_bytes": rb.FreedBytes,
		"aborted_txs": rb.AbortedTxs,
	})
}

// serveReboot handles POST /admin/reboot?scope=war|app|process.
func (f *Front) serveReboot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var scope core.Scope
	switch r.URL.Query().Get("scope") {
	case "war":
		scope = core.ScopeWAR
	case "app":
		scope = core.ScopeApp
	case "process":
		scope = core.ScopeProcess
	default:
		http.Error(w, "scope must be war, app or process", http.StatusBadRequest)
		return
	}
	rb, err := f.App.Server.BeginScopedReboot(scope, "eBid")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	go func() {
		time.Sleep(rb.Duration())
		_ = f.App.Server.CompleteMicroreboot(rb)
	}()
	writeJSON(w, map[string]any{"scope": scope.String(), "members": rb.Members,
		"duration_ms": rb.Duration().Milliseconds()})
}

// serveComponents lists deployed components with their states.
func (f *Front) serveComponents(w http.ResponseWriter, r *http.Request) {
	type comp struct {
		Name     string   `json:"name"`
		Kind     string   `json:"kind"`
		State    string   `json:"state"`
		Group    []string `json:"recovery_group"`
		Served   uint64   `json:"served"`
		Failed   uint64   `json:"failed"`
		Rebooted uint64   `json:"rebooted"`
	}
	var out []comp
	for _, name := range f.App.Server.Components() {
		c, err := f.App.Server.Container(name)
		if err != nil {
			continue
		}
		g, _ := f.App.Server.RecoveryGroup(name)
		served, failed, rebooted := c.Stats()
		out = append(out, comp{
			Name: name, Kind: c.Kind().String(), State: c.State().String(),
			Group: g, Served: served, Failed: failed, Rebooted: rebooted,
		})
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
