// Package httpfront serves a deployed eBid application over real HTTP,
// the way the paper's prototype served it from JBoss's embedded web
// server. End-user operations map to URLs; sessions ride on cookies; a
// component mid-microreboot yields HTTP 503 with a Retry-After header
// (Section 6.2); and the microreboot method is exposed over HTTP for
// remote invocation by a recovery manager, exactly as the paper's
// prototype allowed µRBs "programmatically from within the server, or
// remotely, over HTTP".
//
// Every request is executed under its http.Request context: the server
// binds the execution lease (TTL) as a context deadline, and a
// microreboot that kills the request's shepherd cancels the context, so
// a wedged handler unblocks the moment recovery starts.
package httpfront

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/ebid"
	"repro/internal/store/session"
	"repro/internal/workload"
)

// DefaultRequestTTL is the execution lease granted to each HTTP request;
// a stuck request observes context cancellation when it expires.
const DefaultRequestTTL = time.Minute

// Front is the HTTP front end for one application server.
type Front struct {
	App *ebid.App
	// RequestTTL overrides the execution lease on incoming requests
	// (DefaultRequestTTL when zero).
	RequestTTL time.Duration
	// Cluster, when the session store is the SSM brick cluster, exposes
	// the elastic-ring control surface under /admin/ssm/ (shard add,
	// shard remove, ring status). Nil for the other stores.
	Cluster *session.SSMCluster
	// Plane, when set, receives every request's outcome as bus signals
	// (op latency, failure reports) and serves its operator status at
	// /admin/controlplane/status.
	Plane *controlplane.Plane
	// ShedWatermark, when positive, enables admission control: a request
	// that would start a session (no cookie yet) is answered 503 +
	// Retry-After while more than ShedWatermark requests are in flight.
	// Established sessions are never shed.
	ShedWatermark int
	// ShedRetryAfter overrides the interval advertised to shed clients
	// (default: the paper's 2 s).
	ShedRetryAfter time.Duration
	// Sampler, when set, replays a sampled fraction of idempotent
	// operations against a known-good shadow instance (the paper's
	// comparison detector on live traffic).
	Sampler *detect.Sampler
	// Node overrides how this server identifies itself in fleet-status
	// and health surfaces (NodeName when empty). A supervised fleet
	// member is told its name by the supervisor that spawned it.
	Node string
	// Degrade, when positive, stalls every operation by this much before
	// executing it — a deliberately slowed replica for exercising
	// queue-aware routing against a degraded backend over real sockets.
	Degrade time.Duration
	// Batch, when set, routes idempotent read-only operations through
	// the micro-batching lane: concurrently-arriving reads coalesce per
	// session shard into one back-to-back store pass (opt-in via the
	// -batch-lane server flag). Writes and non-idempotent ops bypass it.
	Batch *workload.Batcher
	start time.Time

	inflight atomic.Int64
	shedded  atomic.Int64
}

// NodeName is the default identity in fleet-status surfaces.
const NodeName = "http0"

// nodeName is the configured identity, or the single-node default.
func (f *Front) nodeName() string {
	if f.Node != "" {
		return f.Node
	}
	return NodeName
}

// FleetStats implements controlplane.FleetProbe for the single-node
// live server: in-flight requests stand in for busy workers so the
// plane's node-load signals carry real backpressure.
func (f *Front) FleetStats() []controlplane.NodeStat {
	return []controlplane.NodeStat{{
		Node:    f.nodeName(),
		Busy:    int(f.inflight.Load()),
		Workers: f.ShedWatermark,
	}}
}

// InFlight reports the requests currently executing.
func (f *Front) InFlight() int64 { return f.inflight.Load() }

// Shed reports how many requests admission control rejected.
func (f *Front) Shed() int64 { return f.shedded.Load() }

// New builds a front end for the given application. The server is put in
// hang-parking mode: a request wedged by a deadlock or infinite loop
// blocks on its context until a microreboot kills it or its lease
// expires, as a real servlet thread would.
func New(app *ebid.App) *Front {
	app.Server.SetHangParking(true)
	return &Front{App: app, start: time.Now()}
}

// Handler returns the HTTP handler: /ebid/<Operation> for end-user
// operations, /admin/microreboot, /admin/reboot, /admin/components, and
// — when the store is the SSM brick cluster — the elastic-ring controls
// /admin/ssm/addshard, /admin/ssm/removeshard and /admin/ssm/elastic.
func (f *Front) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ebid/", f.serveOp)
	mux.HandleFunc("/healthz", f.serveHealthz)
	mux.HandleFunc("/admin/microreboot", f.serveMicroreboot)
	mux.HandleFunc("/admin/reboot", f.serveReboot)
	mux.HandleFunc("/admin/components", f.serveComponents)
	mux.HandleFunc("/admin/ssm/addshard", f.serveAddShard)
	mux.HandleFunc("/admin/ssm/removeshard", f.serveRemoveShard)
	mux.HandleFunc("/admin/ssm/elastic", f.serveElastic)
	mux.HandleFunc("/admin/controlplane/status", f.serveControlPlane)
	mux.HandleFunc("/admin/fleet/status", f.serveFleet)
	return mux
}

// serveHealthz handles GET /healthz — the readiness/liveness probe a
// supervisor polls. The listener only opens after the dataset is loaded
// and the application deployed, so answering at all means ready; the
// body carries the identity a fleet supervisor matches children by.
func (f *Front) serveHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"ready":     true,
		"node":      f.nodeName(),
		"pid":       os.Getpid(),
		"uptime_ms": time.Since(f.start).Milliseconds(),
	})
}

// cacheStats snapshots the node's read-path caches: the store's row
// cache, the body-intern cache, and (when the lane is on) batching-lane
// traffic. Surfaced on both admin status endpoints so cache efficacy is
// observable on a live fleet, not only in benches.
func (f *Front) cacheStats() map[string]any {
	rh, rm, re := f.App.DB.RowCacheStats()
	ih, im, ie := ebid.BodyInternStats()
	out := map[string]any{
		"row_cache":   map[string]any{"hits": rh, "misses": rm, "entries": re},
		"body_intern": map[string]any{"hits": ih, "misses": im, "entries": ie},
	}
	if f.Batch != nil {
		direct, batched, bypassed := f.Batch.Stats()
		out["batch_lane"] = map[string]any{
			"direct": direct, "batched": batched, "bypassed": bypassed,
			"max_batch": f.Batch.MaxBatch,
		}
	}
	return out
}

// serveFleet handles GET /admin/fleet/status: the front's own admission
// counters, the comparison sampler's, the read-path cache counters, and
// — when a fleet controller runs on the plane — its per-node view and
// rolling-reboot log.
func (f *Front) serveFleet(w http.ResponseWriter, r *http.Request) {
	out := map[string]any{
		"node":           f.nodeName(),
		"in_flight":      f.inflight.Load(),
		"shed":           f.shedded.Load(),
		"shed_watermark": f.ShedWatermark,
		"caches":         f.cacheStats(),
	}
	if f.Sampler != nil {
		seen, checked, flagged := f.Sampler.Stats()
		out["comparison"] = map[string]int64{
			"eligible": seen, "checked": checked, "discrepancies": flagged,
		}
	}
	if f.Plane != nil {
		if st, ok := f.Plane.ControllerStatus("fleet"); ok {
			out["controller"] = st
		}
	}
	writeJSON(w, out)
}

// serveControlPlane handles GET /admin/controlplane/status: the plane's
// signal counters, each controller's snapshot, and the node's read-path
// cache counters. The plane's own keys are preserved verbatim; "caches"
// rides alongside them.
func (f *Front) serveControlPlane(w http.ResponseWriter, r *http.Request) {
	if f.Plane == nil {
		http.Error(w, "no control plane is running", http.StatusNotFound)
		return
	}
	st := f.Plane.Status()
	writeJSON(w, map[string]any{
		"now":         st.Now,
		"ticks":       st.Ticks,
		"signals":     st.Signals,
		"controllers": st.Controllers,
		"caches":      f.cacheStats(),
	})
}

// cluster gates the elastic endpoints on a brick-cluster store.
func (f *Front) cluster(w http.ResponseWriter) *session.SSMCluster {
	if f.Cluster == nil {
		http.Error(w, "session store is not an SSM brick cluster", http.StatusNotFound)
		return nil
	}
	return f.Cluster
}

// serveAddShard handles POST /admin/ssm/addshard: grow the ring by one
// shard; the server's background migrator drains entries to it.
func (f *Front) serveAddShard(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	cl := f.cluster(w)
	if cl == nil {
		return
	}
	shard, err := cl.AddShard()
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, session.ErrResizing) {
			status = http.StatusConflict
		}
		http.Error(w, err.Error(), status)
		return
	}
	var bricks []string
	for _, b := range cl.Bricks() {
		if b.Shard() == shard {
			bricks = append(bricks, b.Name())
		}
	}
	writeJSON(w, map[string]any{
		"shard":        shard,
		"bricks":       bricks,
		"ring_version": cl.RingVersion(),
	})
}

// serveRemoveShard handles POST /admin/ssm/removeshard?shard=N: the
// shard stops owning keys immediately and drains in the background; its
// bricks retire once the drain converges.
func (f *Front) serveRemoveShard(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	cl := f.cluster(w)
	if cl == nil {
		return
	}
	shard, err := strconv.Atoi(r.URL.Query().Get("shard"))
	if err != nil {
		http.Error(w, "shard parameter required", http.StatusBadRequest)
		return
	}
	if err := cl.RemoveShard(shard); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, session.ErrResizing) {
			status = http.StatusConflict
		}
		http.Error(w, err.Error(), status)
		return
	}
	writeJSON(w, map[string]any{
		"shard":        shard,
		"draining":     true,
		"ring_version": cl.RingVersion(),
	})
}

// serveElastic handles GET /admin/ssm/elastic: the ring status plus a
// per-brick population listing.
func (f *Front) serveElastic(w http.ResponseWriter, r *http.Request) {
	cl := f.cluster(w)
	if cl == nil {
		return
	}
	type brick struct {
		Name    string `json:"name"`
		Shard   int    `json:"shard"`
		Up      bool   `json:"up"`
		Entries int    `json:"entries"`
	}
	var bricks []brick
	for _, b := range cl.Bricks() {
		bricks = append(bricks, brick{Name: b.Name(), Shard: b.Shard(), Up: b.Up(), Entries: b.Len()})
	}
	writeJSON(w, map[string]any{
		"status":   cl.Elastic(),
		"sessions": cl.Len(),
		"bricks":   bricks,
	})
}

// sessionID extracts (or assigns) the session cookie. Fresh IDs come from
// crypto/rand so concurrent first requests can never collide.
func (f *Front) sessionID(w http.ResponseWriter, r *http.Request) string {
	if c, err := r.Cookie("EBIDSESSION"); err == nil && c.Value != "" {
		return c.Value
	}
	var buf [16]byte
	rand.Read(buf[:]) // never fails (aborts the program instead) since Go 1.24
	id := "http-" + hex.EncodeToString(buf[:])
	http.SetCookie(w, &http.Cookie{Name: "EBIDSESSION", Value: id, Path: "/"})
	return id
}

// retryAfterSeconds renders a Retry-After hint, rounding up to the
// HTTP-granularity whole second.
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// serveOp dispatches /ebid/<Op>?arg=value... into the application.
func (f *Front) serveOp(w http.ResponseWriter, r *http.Request) {
	op := strings.TrimPrefix(r.URL.Path, "/ebid/")
	info, ok := ebid.Info(op)
	if !ok {
		http.Error(w, "unknown operation "+op, http.StatusNotFound)
		return
	}
	cur := f.inflight.Add(1)
	defer f.inflight.Add(-1)
	if f.ShedWatermark > 0 && cur > int64(f.ShedWatermark) {
		// Admission control: past the watermark, requests that would
		// start a session are turned away at the door with a retry hint
		// instead of joining a queue that can only collapse (the paper's
		// point about overloaded servers without admission control).
		// Established sessions — anything already carrying a cookie —
		// are always served.
		if c, err := r.Cookie("EBIDSESSION"); err != nil || c.Value == "" {
			f.shedded.Add(1)
			after := f.ShedRetryAfter
			if after <= 0 {
				after = 2 * time.Second
			}
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(after)))
			http.Error(w, "overloaded: new sessions are being shed, retry shortly",
				http.StatusServiceUnavailable)
			return
		}
	}
	// Decode query args onto the typed codec when every key is one it
	// carries (the common case for the 25 eBid operations); otherwise fall
	// back to a generic map so unknown keys still reach the component.
	oa := &ebid.OpArgs{}
	var args core.Args = oa
	typed := true
	for key, vals := range r.URL.Query() {
		if len(vals) == 0 {
			continue
		}
		if typed {
			// "amount" historically parsed int-first into the generic
			// map, where float64-reading ops miss it and fall back to
			// their defaults; route integer amounts through the generic
			// decoder so that behavior is unchanged.
			intAmount := false
			if key == "amount" {
				_, err := strconv.ParseInt(vals[0], 10, 64)
				intAmount = err == nil
			}
			if !intAmount && oa.SetString(key, vals[0]) {
				continue
			}
			// Re-decode everything seen so far into the generic map.
			typed = false
			m := core.ArgMap{}
			for k, v := range r.URL.Query() {
				if len(v) == 0 {
					continue
				}
				if n, err := strconv.ParseInt(v[0], 10, 64); err == nil {
					m[k] = n
					continue
				}
				if x, err := strconv.ParseFloat(v[0], 64); err == nil {
					m[k] = x
					continue
				}
				m[k] = v[0]
			}
			args = m
			break
		}
	}
	ttl := f.RequestTTL
	if ttl <= 0 {
		ttl = DefaultRequestTTL
	}
	call := &core.Call{
		Op:        op,
		SessionID: f.sessionID(w, r),
		Args:      args,
		TTL:       ttl,
	}
	// The request context is the root of the call's shepherd: client
	// disconnects, lease expiry and µRB kills all cancel it.
	began := time.Now()
	if f.Degrade > 0 {
		// The degraded-replica stall charges wall time before the
		// operation, holding the request in flight so load probes and
		// queue-aware routing see the slowness as backpressure.
		select {
		case <-time.After(f.Degrade):
		case <-r.Context().Done():
		}
	}
	var body string
	var err error
	if f.Batch != nil && info.Idempotent &&
		(info.Category == ebid.CatReadOnlyDB || info.Category == ebid.CatStatic) {
		body, err = f.Batch.Do(r.Context(), call)
	} else {
		body, err = f.App.Execute(r.Context(), call)
	}
	// Measure before the sampled replay: the shadow execution is
	// detector overhead, not part of this request's latency.
	elapsed := time.Since(began)
	f.Sampler.Observe(call, workload.Response{Body: body, Err: err})
	if f.Plane != nil {
		f.Plane.ObserveOp(elapsed, err == nil)
		if err != nil {
			f.Plane.ReportFailure(op, failureKind(err))
		}
	}
	if err != nil {
		f.writeOpError(w, err)
		return
	}
	_ = info
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintln(w, body)
}

// failureKind classifies an invocation failure for the control plane's
// failure signals, mirroring the categories of writeOpError.
func failureKind(err error) string {
	var ra *core.RetryAfterError
	switch {
	case errors.As(err, &ra):
		return "recovering"
	case errors.Is(err, core.ErrKilled):
		return "killed"
	case errors.Is(err, core.ErrLeaseExpired) || errors.Is(err, context.DeadlineExceeded):
		return "lease-expired"
	case errors.Is(err, core.ErrHang):
		return "hang"
	case errors.Is(err, ebid.ErrNotLoggedIn):
		return "session-lapsed"
	default:
		return "http-error"
	}
}

// writeOpError maps invocation failures to HTTP statuses.
func (f *Front) writeOpError(w http.ResponseWriter, err error) {
	var ra *core.RetryAfterError
	switch {
	case errors.As(err, &ra):
		// The paper's transparent-retry machinery: idempotent requests
		// may simply be reissued after this interval.
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(ra.After)))
		http.Error(w, "component recovering: "+ra.Component, http.StatusServiceUnavailable)
	case errors.Is(err, core.ErrKilled):
		// The shepherd was killed by a microreboot: the component is
		// recovering right now, so the client should retry shortly.
		w.Header().Set("Retry-After", "1")
		http.Error(w, "request killed by recovery: "+err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, core.ErrLeaseExpired) || errors.Is(err, context.DeadlineExceeded):
		http.Error(w, "execution lease expired: "+err.Error(), http.StatusGatewayTimeout)
	case errors.Is(err, core.ErrHang):
		http.Error(w, "request wedged (deadlock/loop injected)", http.StatusGatewayTimeout)
	case errors.Is(err, ebid.ErrNotLoggedIn):
		// Crash-only semantics: a lapsed or unknown session (lease
		// expiry, a process restart that ate non-SSM state) is a normal
		// client-recoverable event, not a server error — 401 tells the
		// client to log in again, and fleet routers unpin the session.
		http.Error(w, "session lapsed: "+err.Error(), http.StatusUnauthorized)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// serveMicroreboot handles POST /admin/microreboot?component=Name — the
// remotely invocable microreboot method added to the server.
func (f *Front) serveMicroreboot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	comp := r.URL.Query().Get("component")
	if comp == "" {
		http.Error(w, "component parameter required", http.StatusBadRequest)
		return
	}
	rb, err := f.App.Server.BeginMicroreboot(comp)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	// In real-time mode the modeled recovery interval elapses on the
	// wall clock before reintegration.
	go func() {
		time.Sleep(rb.Duration())
		_ = f.App.Server.CompleteMicroreboot(rb)
	}()
	writeJSON(w, map[string]any{
		"members":      rb.Members,
		"duration_ms":  rb.Duration().Milliseconds(),
		"freed_bytes":  rb.FreedBytes,
		"aborted_txs":  rb.AbortedTxs,
		"killed_calls": len(rb.KilledCalls),
	})
}

// serveReboot handles POST /admin/reboot?scope=war|app|process.
func (f *Front) serveReboot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var scope core.Scope
	switch r.URL.Query().Get("scope") {
	case "war":
		scope = core.ScopeWAR
	case "app":
		scope = core.ScopeApp
	case "process":
		scope = core.ScopeProcess
	default:
		http.Error(w, "scope must be war, app or process", http.StatusBadRequest)
		return
	}
	rb, err := f.App.Server.BeginScopedReboot(scope, "eBid")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	go func() {
		time.Sleep(rb.Duration())
		_ = f.App.Server.CompleteMicroreboot(rb)
	}()
	writeJSON(w, map[string]any{"scope": scope.String(), "members": rb.Members,
		"duration_ms": rb.Duration().Milliseconds()})
}

// serveComponents lists deployed components with their states. Outcome
// counters come from the invocation-stats interceptor on the server.
func (f *Front) serveComponents(w http.ResponseWriter, r *http.Request) {
	type comp struct {
		Name      string   `json:"name"`
		Kind      string   `json:"kind"`
		State     string   `json:"state"`
		Group     []string `json:"recovery_group"`
		Served    uint64   `json:"served"`
		Failed    uint64   `json:"failed"`
		Rebooted  uint64   `json:"rebooted"`
		MeanLatMs float64  `json:"mean_latency_ms"`
	}
	var out []comp
	for _, name := range f.App.Server.Components() {
		c, err := f.App.Server.Container(name)
		if err != nil {
			continue
		}
		g, _ := f.App.Server.RecoveryGroup(name)
		st := f.App.Stats.Component(name)
		out = append(out, comp{
			Name: name, Kind: c.Kind().String(), State: c.State().String(),
			Group: g, Served: st.Served, Failed: st.Failed, Rebooted: c.Rebooted(),
			MeanLatMs: float64(st.MeanLatency().Microseconds()) / 1000,
		})
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
