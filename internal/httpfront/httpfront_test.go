package httpfront

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/controlplane"
	"repro/internal/detect"
	"repro/internal/ebid"
	"repro/internal/faults"
	"repro/internal/store/db"
	"repro/internal/store/session"
)

func newFront(t *testing.T) *Front {
	t.Helper()
	d := db.New(nil)
	cfg := ebid.DatasetConfig{Users: 20, Items: 50, BidsPerItem: 2, Categories: 5, Regions: 5, OldItems: 5}
	if err := ebid.LoadDataset(d, cfg); err != nil {
		t.Fatal(err)
	}
	app, err := ebid.New(d, session.NewFastS(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return New(app)
}

func TestEndToEndHTTPFlow(t *testing.T) {
	f := newFront(t)
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	jar := map[string]string{}
	do := func(method, path string) (*http.Response, string) {
		req, err := http.NewRequest(method, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range jar {
			req.AddCookie(&http.Cookie{Name: k, Value: v})
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range resp.Cookies() {
			jar[c.Name] = c.Value
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(body)
	}

	// Static page.
	resp, body := do("GET", "/ebid/Home")
	if resp.StatusCode != 200 || !strings.Contains(body, "eBid home") {
		t.Fatalf("Home: %d %q", resp.StatusCode, body)
	}
	// Login establishes the cookie session.
	resp, body = do("GET", "/ebid/Authenticate?user=3")
	if resp.StatusCode != 200 || !strings.Contains(body, "welcome") {
		t.Fatalf("Authenticate: %d %q", resp.StatusCode, body)
	}
	// Bid flow across requests (session state on the server).
	resp, _ = do("GET", "/ebid/MakeBid?item=7")
	if resp.StatusCode != 200 {
		t.Fatalf("MakeBid: %d", resp.StatusCode)
	}
	resp, body = do("GET", "/ebid/CommitBid?amount=42.5")
	if resp.StatusCode != 200 || !strings.Contains(body, "bid committed on item 7") {
		t.Fatalf("CommitBid: %d %q", resp.StatusCode, body)
	}
	// Unknown op.
	resp, _ = do("GET", "/ebid/Nope")
	if resp.StatusCode != 404 {
		t.Fatalf("unknown op: %d", resp.StatusCode)
	}
}

func TestMicrorebootOverHTTPAnd503(t *testing.T) {
	f := newFront(t)
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	// Trigger a µRB remotely.
	resp, err := http.Post(srv.URL+"/admin/microreboot?component=ViewItem", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rb struct {
		Members    []string `json:"members"`
		DurationMs int64    `json:"duration_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(rb.Members) != 1 || rb.Members[0] != "ViewItem" || rb.DurationMs != 446 {
		t.Fatalf("reboot = %+v", rb)
	}
	// While recovering: 503 + Retry-After.
	resp, err = http.Get(srv.URL + "/ebid/ViewItem?item=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("during µRB: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("missing Retry-After header")
	}
	// Other components keep serving.
	resp, err = http.Get(srv.URL + "/ebid/BrowseCategories")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("BrowseCategories during ViewItem µRB: %d", resp.StatusCode)
	}
	// GET on admin endpoint rejected.
	resp, _ = http.Get(srv.URL + "/admin/microreboot?component=ViewItem")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET admin: %d", resp.StatusCode)
	}
}

// A request hitting a mid-microreboot component must receive 503 with a
// Retry-After header that covers the component's remaining recovery time
// (ViewItem's modeled µRB is 446 ms → 1 s at HTTP granularity).
func TestRetryAfterPropagation(t *testing.T) {
	f := newFront(t)
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	rb, err := f.App.Server.BeginMicroreboot(ebid.ViewItem)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/ebid/ViewItem?item=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\" (ceil of 446ms)", got)
	}
	if err := f.App.Server.CompleteMicroreboot(rb); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(srv.URL + "/ebid/ViewItem?item=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("after reintegration: %d, want 200", resp.StatusCode)
	}
}

// A killed in-flight request must observe context cancellation: a request
// wedged inside a component (injected infinite loop) parks on its
// context, and the microreboot that destroys its shepherd unblocks it
// immediately with 503 + Retry-After.
func TestKilledInFlightRequestObservesCancellation(t *testing.T) {
	f := newFront(t)
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	inj := faults.NewInjector(f.App.Server, f.App.DB, f.App.Sessions)
	if _, err := inj.Inject(faults.Spec{Kind: faults.InfiniteLoop, Component: ebid.ViewItem}); err != nil {
		t.Fatal(err)
	}

	type result struct {
		status     int
		retryAfter string
		err        error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/ebid/ViewItem?item=1")
		if err != nil {
			done <- result{err: err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- result{status: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
	}()

	// Wait until the request is parked inside the wedged component.
	deadline := time.Now().Add(5 * time.Second)
	for f.App.Server.ActiveCalls(ebid.ViewItem) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never parked in ViewItem")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case r := <-done:
		t.Fatalf("wedged request returned before the µRB: %+v", r)
	case <-time.After(50 * time.Millisecond):
	}

	// The µRB kills the shepherd; the parked request must unblock.
	rb, err := f.App.Server.Microreboot(ebid.ViewItem)
	if err != nil {
		t.Fatal(err)
	}
	if len(rb.KilledCalls) == 0 {
		t.Fatal("µRB reported no killed calls")
	}
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("killed request transport error: %v", r.err)
		}
		if r.status != http.StatusServiceUnavailable {
			t.Fatalf("killed request status = %d, want 503", r.status)
		}
		if r.retryAfter == "" {
			t.Fatal("killed request missing Retry-After header")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("killed in-flight request did not observe context cancellation")
	}
}

// The execution lease is a real context deadline: a wedged request whose
// TTL expires returns 504 without any recovery action.
func TestLeaseExpiryReturns504(t *testing.T) {
	f := newFront(t)
	f.RequestTTL = 100 * time.Millisecond
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	inj := faults.NewInjector(f.App.Server, f.App.DB, f.App.Sessions)
	if _, err := inj.Inject(faults.Spec{Kind: faults.InfiniteLoop, Component: ebid.ViewItem}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err := http.Get(srv.URL + "/ebid/ViewItem?item=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("lease expiry took %v; context deadline not enforced", took)
	}
}

// Fresh session IDs must be collision-free under concurrent first
// requests (crypto/rand, not timestamps).
func TestSessionIDsUnique(t *testing.T) {
	f := newFront(t)
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	const n = 32
	ids := make(chan string, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, err := http.Get(srv.URL + "/ebid/Home")
			if err != nil {
				ids <- "err:" + err.Error()
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			for _, c := range resp.Cookies() {
				if c.Name == "EBIDSESSION" {
					ids <- c.Value
					return
				}
			}
			ids <- "missing"
		}()
	}
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		id := <-ids
		if id == "missing" || strings.HasPrefix(id, "err:") {
			t.Fatalf("bad session id result: %s", id)
		}
		if seen[id] {
			t.Fatalf("session id collision: %s", id)
		}
		seen[id] = true
	}
}

func TestComponentsEndpoint(t *testing.T) {
	f := newFront(t)
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/admin/components")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var comps []struct {
		Name  string   `json:"name"`
		State string   `json:"state"`
		Group []string `json:"recovery_group"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&comps); err != nil {
		t.Fatal(err)
	}
	if len(comps) != 27 {
		t.Fatalf("components = %d, want 27", len(comps))
	}
	for _, c := range comps {
		if c.State != "running" {
			t.Fatalf("%s state = %s", c.Name, c.State)
		}
	}
}

// newClusterFront builds a front whose store is the SSM brick cluster,
// with the elastic control surface enabled.
func newClusterFront(t *testing.T) (*Front, *session.SSMCluster) {
	t.Helper()
	d := db.New(nil)
	cfg := ebid.DatasetConfig{Users: 20, Items: 50, BidsPerItem: 2, Categories: 5, Regions: 5, OldItems: 5}
	if err := ebid.LoadDataset(d, cfg); err != nil {
		t.Fatal(err)
	}
	cl, err := session.NewSSMCluster(session.ClusterConfig{Shards: 2, Replicas: 3, WriteQuorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	app, err := ebid.New(d, cl, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := New(app)
	f.Cluster = cl
	return f, cl
}

func TestElasticEndpointsDriveTheRing(t *testing.T) {
	f, cl := newClusterFront(t)
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	// Populate some sessions through the app so migration has work.
	for i := 0; i < 40; i++ {
		resp, err := http.Get(srv.URL + "/ebid/Authenticate?user=3")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	// Grow the ring.
	resp, err := http.Post(srv.URL+"/admin/ssm/addshard", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var added struct {
		Shard       int      `json:"shard"`
		Bricks      []string `json:"bricks"`
		RingVersion uint64   `json:"ring_version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&added); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || added.Shard != 2 || len(added.Bricks) != 3 || added.RingVersion != 2 {
		t.Fatalf("addshard: status=%d %+v", resp.StatusCode, added)
	}

	// A second ring change mid-migration is refused with 409.
	resp, err = http.Post(srv.URL+"/admin/ssm/removeshard?shard=0", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("removeshard mid-migration status = %d, want 409", resp.StatusCode)
	}

	// The live server drives migration from a goroutine; stand in for it.
	if _, done := cl.MigrateAll(); !done {
		t.Fatal("migration did not converge")
	}

	// Status reflects the converged ring.
	resp, err = http.Get(srv.URL + "/admin/ssm/elastic")
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		Status struct {
			RingVersion uint64 `json:"ring_version"`
			Shards      []int  `json:"shards"`
			Migrating   bool   `json:"migrating"`
			Migrated    int    `json:"migrated_entries"`
		} `json:"status"`
		Sessions int `json:"sessions"`
		Bricks   []struct {
			Name string `json:"name"`
		} `json:"bricks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if status.Status.Migrating || status.Status.RingVersion != 2 || len(status.Status.Shards) != 3 {
		t.Fatalf("elastic status = %+v", status.Status)
	}
	if status.Sessions == 0 || len(status.Bricks) != 9 {
		t.Fatalf("sessions=%d bricks=%d, want populated 9-brick view", status.Sessions, len(status.Bricks))
	}

	// Shrink back down; drain and verify retirement.
	resp, err = http.Post(srv.URL+"/admin/ssm/removeshard?shard=0", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("removeshard status = %d", resp.StatusCode)
	}
	if _, done := cl.MigrateAll(); !done {
		t.Fatal("drain did not converge")
	}
	if got := cl.ShardIDs(); len(got) != 2 {
		t.Fatalf("shards after drain = %v", got)
	}
	// Sessions survived both ring changes.
	if cl.Len() == 0 {
		t.Fatal("sessions lost across elastic resize")
	}
}

func TestElasticEndpointsRequireClusterStore(t *testing.T) {
	f := newFront(t) // FastS-backed
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	for _, ep := range []string{"/admin/ssm/addshard", "/admin/ssm/removeshard?shard=0"} {
		resp, err := http.Post(srv.URL+ep, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s status = %d, want 404 without a cluster store", ep, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/admin/ssm/elastic")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("elastic status = %d, want 404 without a cluster store", resp.StatusCode)
	}
}

func TestControlPlaneStatusEndpoint(t *testing.T) {
	f := newFront(t)
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	// Without a plane attached, the endpoint is absent.
	resp, err := http.Get(srv.URL + "/admin/controlplane/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status without plane = %d, want 404", resp.StatusCode)
	}

	start := time.Now()
	f.Plane = controlplane.New(controlplane.Config{Clock: func() time.Duration { return time.Since(start) }})

	// Requests now stream signals onto the bus: one success, one failure.
	if _, err := http.Get(srv.URL + "/ebid/ViewItem?item=1"); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(srv.URL + "/ebid/AboutMe"); err != nil { // not logged in → failure
		t.Fatal(err)
	}

	resp, err = http.Get(srv.URL + "/admin/controlplane/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var st struct {
		Signals map[string]int64 `json:"signals"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Signals["latency"] != 2 {
		t.Fatalf("latency signals = %d, want 2", st.Signals["latency"])
	}
	if st.Signals["failure"] != 1 {
		t.Fatalf("failure signals = %d, want 1 (AboutMe without a session)", st.Signals["failure"])
	}
}

func TestAdmissionControlShedsNewSessions(t *testing.T) {
	f := newFront(t)
	f.ShedWatermark = 1
	f.ShedRetryAfter = 3 * time.Second
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	// Establish a session while the server is idle.
	resp, err := http.Get(srv.URL + "/ebid/Authenticate?user=3")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	var cookie *http.Cookie
	for _, c := range resp.Cookies() {
		if c.Name == "EBIDSESSION" {
			cookie = c
		}
	}
	if cookie == nil {
		t.Fatal("no session cookie issued")
	}

	// Wedge one worker so the in-flight count sits past the watermark.
	inj := faults.NewInjector(f.App.Server, f.App.DB, f.App.Sessions)
	if _, err := inj.Inject(faults.Spec{Kind: faults.InfiniteLoop, Component: ebid.ViewItem}); err != nil {
		t.Fatal(err)
	}
	go func() { http.Get(srv.URL + "/ebid/ViewItem?item=1") }()
	deadline := time.Now().Add(5 * time.Second)
	for f.App.Server.ActiveCalls(ebid.ViewItem) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never parked in ViewItem")
		}
		time.Sleep(time.Millisecond)
	}

	// A cookie-less request is turned away with a retry hint — and no
	// session cookie, so its retry is cheap.
	resp, err = http.Get(srv.URL + "/ebid/Home")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "3" {
		t.Fatalf("Retry-After = %q, want 3", resp.Header.Get("Retry-After"))
	}
	if len(resp.Cookies()) != 0 {
		t.Fatal("shed request was issued a session cookie")
	}

	// The established session rides through the overload.
	req, _ := http.NewRequest("GET", srv.URL+"/ebid/AboutMe", nil)
	req.AddCookie(cookie)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("established session status = %d, want 200", resp.StatusCode)
	}

	if f.Shed() != 1 {
		t.Fatalf("shed counter = %d, want 1", f.Shed())
	}
	// Free the parked worker.
	if _, err := f.App.Server.Microreboot(ebid.ViewItem); err != nil {
		t.Fatal(err)
	}
}

func TestFleetStatusEndpointWithSamplerAndPlane(t *testing.T) {
	d := db.New(nil)
	cfg := ebid.DatasetConfig{Users: 20, Items: 50, BidsPerItem: 2, Categories: 5, Regions: 5, OldItems: 5}
	if err := ebid.LoadDataset(d, cfg); err != nil {
		t.Fatal(err)
	}
	app, err := ebid.New(d, session.NewFastS(), nil)
	if err != nil {
		t.Fatal(err)
	}
	shadow, err := ebid.New(d, session.NewFastS(), nil)
	if err != nil {
		t.Fatal(err)
	}
	f := New(app)
	start := time.Now()
	f.Plane = controlplane.New(controlplane.Config{
		Clock: func() time.Duration { return time.Since(start) },
		Fleet: f,
	})
	f.Plane.Use(controlplane.NewFleetController(nil, controlplane.FleetConfig{}))
	f.Sampler = &detect.Sampler{
		Comp:  &detect.Comparison{Good: shadow},
		Every: 1,
		OnDiscrepancy: func(op string, v detect.Verdict) {
			f.Plane.ReportDiscrepancy(op, v.Detail)
		},
	}
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	// One sampled idempotent read against the identical shadow: checked,
	// no discrepancy.
	resp, err := http.Get(srv.URL + "/ebid/ViewItem?item=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	f.Plane.Tick() // the fleet probe publishes one node-load sample

	resp, err = http.Get(srv.URL + "/admin/fleet/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Node       string `json:"node"`
		Shed       int64  `json:"shed"`
		Comparison struct {
			Checked       int64 `json:"checked"`
			Discrepancies int64 `json:"discrepancies"`
		} `json:"comparison"`
		Controller struct {
			Nodes []controlplane.NodeStat `json:"nodes"`
		} `json:"controller"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Node != NodeName || st.Shed != 0 {
		t.Fatalf("fleet status = %+v", st)
	}
	if st.Comparison.Checked != 1 || st.Comparison.Discrepancies != 0 {
		t.Fatalf("comparison stats = %+v", st.Comparison)
	}
	if len(st.Controller.Nodes) != 1 || st.Controller.Nodes[0].Node != NodeName {
		t.Fatalf("controller view = %+v", st.Controller)
	}
}

// TestHealthzReady checks the supervisor's readiness probe answers with
// the configured node identity.
func TestHealthzReady(t *testing.T) {
	f := newFront(t)
	f.Node = "backend-2"
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var hz struct {
		Ready bool   `json:"ready"`
		Node  string `json:"node"`
		Pid   int    `json:"pid"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if !hz.Ready || hz.Node != "backend-2" || hz.Pid == 0 {
		t.Fatalf("healthz = %+v, want ready with node backend-2 and a pid", hz)
	}
}

// TestSessionLapse401 checks a session-requiring operation with no
// stored session answers 401 (client-recoverable: log in again), not a
// 5xx — the contract the fleet's failover path depends on after a
// backend loses its per-process session state.
func TestSessionLapse401(t *testing.T) {
	f := newFront(t)
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	req, err := http.NewRequest(http.MethodGet, srv.URL+"/ebid/AboutMe", nil)
	if err != nil {
		t.Fatal(err)
	}
	// An established cookie whose backend-side state is gone (the
	// killed-backend failover shape).
	req.AddCookie(&http.Cookie{Name: "EBIDSESSION", Value: "http-was-on-a-dead-backend"})
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status = %d (%s), want 401", resp.StatusCode, strings.TrimSpace(string(body)))
	}
}

// TestDegradeStallsOps checks the degraded-replica knob holds requests
// in flight for at least the configured stall.
func TestDegradeStallsOps(t *testing.T) {
	f := newFront(t)
	f.Degrade = 50 * time.Millisecond
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	start := time.Now()
	resp, err := http.Get(srv.URL + "/ebid/ViewItem?item=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("degraded op finished in %v, want >= 50ms", elapsed)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
}
