package httpfront

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/ebid"
	"repro/internal/store/db"
	"repro/internal/store/session"
)

func newFront(t *testing.T) *Front {
	t.Helper()
	d := db.New(nil)
	cfg := ebid.DatasetConfig{Users: 20, Items: 50, BidsPerItem: 2, Categories: 5, Regions: 5, OldItems: 5}
	if err := ebid.LoadDataset(d, cfg); err != nil {
		t.Fatal(err)
	}
	app, err := ebid.New(d, session.NewFastS(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return New(app)
}

func TestEndToEndHTTPFlow(t *testing.T) {
	f := newFront(t)
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	jar := map[string]string{}
	do := func(method, path string) (*http.Response, string) {
		req, err := http.NewRequest(method, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range jar {
			req.AddCookie(&http.Cookie{Name: k, Value: v})
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range resp.Cookies() {
			jar[c.Name] = c.Value
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(body)
	}

	// Static page.
	resp, body := do("GET", "/ebid/Home")
	if resp.StatusCode != 200 || !strings.Contains(body, "eBid home") {
		t.Fatalf("Home: %d %q", resp.StatusCode, body)
	}
	// Login establishes the cookie session.
	resp, body = do("GET", "/ebid/Authenticate?user=3")
	if resp.StatusCode != 200 || !strings.Contains(body, "welcome") {
		t.Fatalf("Authenticate: %d %q", resp.StatusCode, body)
	}
	// Bid flow across requests (session state on the server).
	resp, _ = do("GET", "/ebid/MakeBid?item=7")
	if resp.StatusCode != 200 {
		t.Fatalf("MakeBid: %d", resp.StatusCode)
	}
	resp, body = do("GET", "/ebid/CommitBid?amount=42.5")
	if resp.StatusCode != 200 || !strings.Contains(body, "bid committed on item 7") {
		t.Fatalf("CommitBid: %d %q", resp.StatusCode, body)
	}
	// Unknown op.
	resp, _ = do("GET", "/ebid/Nope")
	if resp.StatusCode != 404 {
		t.Fatalf("unknown op: %d", resp.StatusCode)
	}
}

func TestMicrorebootOverHTTPAnd503(t *testing.T) {
	f := newFront(t)
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	// Trigger a µRB remotely.
	resp, err := http.Post(srv.URL+"/admin/microreboot?component=ViewItem", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rb struct {
		Members    []string `json:"members"`
		DurationMs int64    `json:"duration_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(rb.Members) != 1 || rb.Members[0] != "ViewItem" || rb.DurationMs != 446 {
		t.Fatalf("reboot = %+v", rb)
	}
	// While recovering: 503 + Retry-After.
	resp, err = http.Get(srv.URL + "/ebid/ViewItem?item=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("during µRB: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("missing Retry-After header")
	}
	// Other components keep serving.
	resp, err = http.Get(srv.URL + "/ebid/BrowseCategories")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("BrowseCategories during ViewItem µRB: %d", resp.StatusCode)
	}
	// GET on admin endpoint rejected.
	resp, _ = http.Get(srv.URL + "/admin/microreboot?component=ViewItem")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET admin: %d", resp.StatusCode)
	}
}

func TestComponentsEndpoint(t *testing.T) {
	f := newFront(t)
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/admin/components")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var comps []struct {
		Name  string   `json:"name"`
		State string   `json:"state"`
		Group []string `json:"recovery_group"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&comps); err != nil {
		t.Fatal(err)
	}
	if len(comps) != 27 {
		t.Fatalf("components = %d, want 27", len(comps))
	}
	for _, c := range comps {
		if c.State != "running" {
			t.Fatalf("%s state = %s", c.Name, c.State)
		}
	}
}
