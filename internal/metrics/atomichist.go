package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// AtomicHistogram is a lock-free latency histogram: fixed log-spaced
// buckets (four sub-buckets per power of two, ~19% relative resolution)
// updated with a single atomic add per observation. Bucketing costs a
// bits.Len64 and a shift — no floating point, no locking — so it is
// cheap enough for the invocation hot path, unlike Histogram, whose
// math.Log bucketing and mutex are fine for experiment reporting but not
// for per-hop recording.
type AtomicHistogram struct {
	buckets [atomicHistSize]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
}

const (
	atomicHistSub  = 4 // sub-buckets per power of two
	atomicHistSize = 64 * atomicHistSub
)

// atomicBucket maps a non-negative value to its bucket index: values
// below 4 get exact buckets; larger values index by the top bit (the
// octave) refined by the next two bits (the quarter within it).
func atomicBucket(v uint64) int {
	if v < 4 {
		return int(v)
	}
	exp := bits.Len64(v) - 1
	sub := (v >> uint(exp-2)) & 3
	return exp*atomicHistSub + int(sub)
}

// atomicBucketUpper returns the largest value landing in bucket i. Only
// meaningful for indexes atomicBucket can produce (i < 4 or i >= 8).
func atomicBucketUpper(i int) int64 {
	if i < 4 {
		return int64(i)
	}
	exp := uint(i / atomicHistSub)
	sub := uint64(i % atomicHistSub)
	lower := uint64(1)<<exp + sub<<(exp-2)
	return int64(lower + 1<<(exp-2) - 1)
}

// Observe records one duration. Negative durations count as zero.
func (h *AtomicHistogram) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.buckets[atomicBucket(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *AtomicHistogram) Count() uint64 { return h.count.Load() }

// Mean returns the average observed duration.
func (h *AtomicHistogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / int64(n))
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) of the
// observed durations, accurate to the bucket resolution. Concurrent
// observations make the snapshot approximate, which is fine for the
// monitoring uses this serves.
func (h *AtomicHistogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	target := uint64(q * float64(n))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen >= target {
			return time.Duration(atomicBucketUpper(i))
		}
	}
	return time.Duration(atomicBucketUpper(atomicHistSize - 1))
}
