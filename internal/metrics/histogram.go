package metrics

import (
	"math"
	"sort"
	"time"
)

// Histogram is a latency histogram with logarithmically spaced buckets
// covering 1µs to ~17min, plus exact min/max/sum tracking. Quantile
// estimates are bucket-resolution (≤ ~8% relative error), which is ample
// for reproducing the paper's millisecond-scale latency tables.
type Histogram struct {
	counts [bucketCount]int64
	n      int64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

const (
	bucketCount = 200
	// Buckets are log-spaced: bucket i covers [base*g^i, base*g^(i+1)).
	histBase   = float64(time.Microsecond)
	histGrowth = 1.1
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64}
}

func bucketIndex(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	i := int(math.Log(float64(d)/histBase) / math.Log(histGrowth))
	if i < 0 {
		return 0
	}
	if i >= bucketCount {
		return bucketCount - 1
	}
	return i
}

func bucketUpper(i int) time.Duration {
	return time.Duration(histBase * math.Pow(histGrowth, float64(i+1)))
}

// Observe adds one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[bucketIndex(d)]++
	h.n++
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.n }

// Mean returns the exact sample mean (zero when empty).
func (h *Histogram) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return h.sum / time.Duration(h.n)
}

// Min returns the smallest sample (zero when empty).
func (h *Histogram) Min() time.Duration {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns an upper-bound estimate of the q-quantile, q in [0,1].
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < bucketCount; i++ {
		seen += h.counts[i]
		if seen >= rank {
			if i == bucketCount-1 {
				// The last bucket is open-ended; its upper bound is the
				// observed maximum.
				return h.max
			}
			u := bucketUpper(i)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max
}

// Merge adds all samples of other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.n == 0 {
		return
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.n += other.n
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// ExactQuantile computes a precise quantile from a raw sample slice. It is
// a helper for tests and small sample sets; it does not modify samples.
func ExactQuantile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := make([]time.Duration, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
