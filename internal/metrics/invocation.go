package metrics

import (
	"context"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// ComponentStats is the per-component invocation accounting gathered by
// InvocationStats: outcomes and cumulative latency of every hop that
// entered the component.
type ComponentStats struct {
	// Served counts invocations dispatched into the component.
	Served uint64
	// Failed counts invocations that returned an error (including
	// injected faults and mid-microreboot RetryAfter rejections).
	Failed uint64
	// TotalLatency is the summed processing time of all invocations.
	TotalLatency time.Duration
}

// MeanLatency returns the average per-invocation latency.
func (s ComponentStats) MeanLatency() time.Duration {
	if s.Served == 0 {
		return 0
	}
	return s.TotalLatency / time.Duration(s.Served)
}

// recorderStripes is the number of counter stripes per component; a
// power of two so the stripe pick is a mask.
const recorderStripes = 8

// recorderStripe is one padded counter cell. The padding keeps stripes
// on separate cache lines so concurrent hops into the same component do
// not false-share.
type recorderStripe struct {
	served  atomic.Uint64
	failed  atomic.Uint64
	latency atomic.Int64
	_       [104]byte
}

// componentRecorder accumulates one component's counters across stripes
// plus a lock-free latency histogram. Reads sum the stripes; sums are
// exact (each observation lands in exactly one stripe).
type componentRecorder struct {
	stripes [recorderStripes]recorderStripe
	hist    AtomicHistogram
}

func (r *componentRecorder) record(d time.Duration, err error) {
	// rand/v2's global generator is per-P and lock-free, so the stripe
	// pick itself never becomes the contention point.
	s := &r.stripes[rand.Uint64()&(recorderStripes-1)]
	s.served.Add(1)
	if err != nil {
		s.failed.Add(1)
	}
	if d > 0 {
		s.latency.Add(int64(d))
		r.hist.Observe(d)
	}
}

func (r *componentRecorder) snapshot() ComponentStats {
	var cs ComponentStats
	for i := range r.stripes {
		s := &r.stripes[i]
		cs.Served += s.served.Load()
		cs.Failed += s.failed.Load()
		cs.TotalLatency += time.Duration(s.latency.Load())
	}
	return cs
}

// InvocationStats is latency/outcome accounting for the component
// server's invocation pipeline. It plugs into core.Server as an
// Interceptor — the single extension point for cross-cutting measurement
// — replacing the per-container counters the server used to maintain by
// hand. Recording is lock-free: per-component recorders live in a
// sync.Map and update striped atomic counters, so concurrent hops never
// serialize on a stats mutex.
type InvocationStats struct {
	now       func() time.Duration
	recorders sync.Map // component name → *componentRecorder
}

// NewInvocationStats builds invocation accounting driven by the given
// time source (virtual time in simulations); nil means wall-clock time.
func NewInvocationStats(now func() time.Duration) *InvocationStats {
	if now == nil {
		epoch := time.Now()
		now = func() time.Duration { return time.Since(epoch) }
	}
	return &InvocationStats{now: now}
}

func (s *InvocationStats) recorder(name string) *componentRecorder {
	if v, ok := s.recorders.Load(name); ok {
		return v.(*componentRecorder)
	}
	v, _ := s.recorders.LoadOrStore(name, &componentRecorder{})
	return v.(*componentRecorder)
}

// Interceptor returns the middleware to register on a core.Server. It
// observes every hop: the initial web-tier dispatch and each
// inter-component call.
func (s *InvocationStats) Interceptor() core.Interceptor {
	return func(ctx context.Context, call *core.Call, next core.Handler) (any, error) {
		start := s.now()
		res, err := next(ctx, call)
		s.recorder(call.Component).record(s.now()-start, err)
		return res, err
	}
}

// Component returns a snapshot of one component's accounting.
func (s *InvocationStats) Component(name string) ComponentStats {
	if v, ok := s.recorders.Load(name); ok {
		return v.(*componentRecorder).snapshot()
	}
	return ComponentStats{}
}

// LatencyQuantile returns an upper bound for the q-quantile of one
// component's hop latency, from its lock-free histogram.
func (s *InvocationStats) LatencyQuantile(name string, q float64) time.Duration {
	if v, ok := s.recorders.Load(name); ok {
		return v.(*componentRecorder).hist.Quantile(q)
	}
	return 0
}

// Components returns the names of all components observed so far, sorted.
func (s *InvocationStats) Components() []string {
	var names []string
	s.recorders.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)
	return names
}

// Totals returns the summed served/failed counts across all components.
func (s *InvocationStats) Totals() (served, failed uint64) {
	s.recorders.Range(func(_, v any) bool {
		cs := v.(*componentRecorder).snapshot()
		served += cs.Served
		failed += cs.Failed
		return true
	})
	return served, failed
}
