package metrics

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
)

// ComponentStats is the per-component invocation accounting gathered by
// InvocationStats: outcomes and cumulative latency of every hop that
// entered the component.
type ComponentStats struct {
	// Served counts invocations dispatched into the component.
	Served uint64
	// Failed counts invocations that returned an error (including
	// injected faults and mid-microreboot RetryAfter rejections).
	Failed uint64
	// TotalLatency is the summed processing time of all invocations.
	TotalLatency time.Duration
}

// MeanLatency returns the average per-invocation latency.
func (s ComponentStats) MeanLatency() time.Duration {
	if s.Served == 0 {
		return 0
	}
	return s.TotalLatency / time.Duration(s.Served)
}

// InvocationStats is latency/outcome accounting for the component
// server's invocation pipeline. It plugs into core.Server as an
// Interceptor — the single extension point for cross-cutting measurement
// — replacing the per-container counters the server used to maintain by
// hand.
type InvocationStats struct {
	mu    sync.Mutex
	now   func() time.Duration
	stats map[string]*ComponentStats
}

// NewInvocationStats builds invocation accounting driven by the given
// time source (virtual time in simulations); nil means wall-clock time.
func NewInvocationStats(now func() time.Duration) *InvocationStats {
	if now == nil {
		epoch := time.Now()
		now = func() time.Duration { return time.Since(epoch) }
	}
	return &InvocationStats{now: now, stats: map[string]*ComponentStats{}}
}

// Interceptor returns the middleware to register on a core.Server. It
// observes every hop: the initial web-tier dispatch and each
// inter-component call.
func (s *InvocationStats) Interceptor() core.Interceptor {
	return func(ctx context.Context, call *core.Call, next core.Handler) (any, error) {
		start := s.now()
		res, err := next(ctx, call)
		s.record(call.Component, s.now()-start, err)
		return res, err
	}
}

func (s *InvocationStats) record(component string, d time.Duration, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs := s.stats[component]
	if cs == nil {
		cs = &ComponentStats{}
		s.stats[component] = cs
	}
	cs.Served++
	if err != nil {
		cs.Failed++
	}
	if d > 0 {
		cs.TotalLatency += d
	}
}

// Component returns a snapshot of one component's accounting.
func (s *InvocationStats) Component(name string) ComponentStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cs := s.stats[name]; cs != nil {
		return *cs
	}
	return ComponentStats{}
}

// Components returns the names of all components observed so far, sorted.
func (s *InvocationStats) Components() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.stats))
	for n := range s.stats {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Totals returns the summed served/failed counts across all components.
func (s *InvocationStats) Totals() (served, failed uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, cs := range s.stats {
		served += cs.Served
		failed += cs.Failed
	}
	return served, failed
}
