// Package metrics implements the evaluation metrics from the microreboot
// paper, chiefly action-weighted throughput (Taw).
//
// Taw views a user session as a sequence of actions; each action is a
// sequence of operations (HTTP requests) culminating in a commit point. An
// action succeeds or fails atomically: if any operation fails, every
// operation in the action is retroactively marked failed ("bad Taw");
// otherwise all count as "good Taw". The recorder keeps per-second buckets
// of good and bad operations so experiments can plot the same timelines as
// Figures 1, 2 and 4 of the paper.
package metrics

import (
	"fmt"
	"sort"
	"time"
)

// Op describes one completed operation (one HTTP request) for Taw
// accounting purposes.
type Op struct {
	Start time.Duration // virtual time the request entered the system
	End   time.Duration // virtual time the response (or failure) was observed
	Name  string        // end-user operation, e.g. "ViewItem"
	Group string        // functional group, e.g. "Browse/View"
	OK    bool          // whether this individual operation succeeded
}

// Latency returns the response time of the operation.
func (o Op) Latency() time.Duration { return o.End - o.Start }

// Recorder accumulates Taw and latency statistics over a run. The zero
// value is not usable; construct with NewRecorder.
type Recorder struct {
	bucket time.Duration

	good []int64 // operations of successful actions, by completion bucket
	bad  []int64 // operations of failed actions, by completion bucket

	latSum   []time.Duration // sum of latencies per bucket (successful ops only)
	latCount []int64

	totalGoodOps   int64
	totalBadOps    int64
	goodActions    int64
	failedActions  int64
	overThreshold  int64
	threshold      time.Duration
	latencies      *Histogram
	groupBad       map[string][]span // failed-request processing spans per group
	firstFail      time.Duration
	haveFirstFail  bool
	lastCompletion time.Duration

	// onOp, when set, observes every completed operation as its action is
	// accounted — the tap control loops use to stream latency and failure
	// signals out of the recorder instead of polling it.
	onOp func(Op)
}

type span struct{ from, to time.Duration }

// NewRecorder returns a recorder with the given bucket width (typically one
// second of virtual time, matching the paper's plots) and slow-request
// threshold (the paper uses 8 s, the common web-abandonment limit).
func NewRecorder(bucket, slowThreshold time.Duration) *Recorder {
	if bucket <= 0 {
		panic("metrics: bucket width must be positive")
	}
	return &Recorder{
		bucket:    bucket,
		threshold: slowThreshold,
		latencies: NewHistogram(),
		groupBad:  map[string][]span{},
	}
}

// SetOnOp installs an observer invoked once per completed operation (at
// action-accounting time, so an op's observation carries its action's
// retroactive verdict in Op.OK only for individually failed ops). Pass
// nil to remove it.
func (r *Recorder) SetOnOp(fn func(Op)) { r.onOp = fn }

func (r *Recorder) bucketOf(t time.Duration) int {
	if t < 0 {
		t = 0
	}
	return int(t / r.bucket)
}

func (r *Recorder) grow(i int) {
	for len(r.good) <= i {
		r.good = append(r.good, 0)
		r.bad = append(r.bad, 0)
		r.latSum = append(r.latSum, 0)
		r.latCount = append(r.latCount, 0)
	}
}

// Action records a completed action. failed indicates whether the action as
// a whole failed (any operation failed or the commit point was not
// reached); all of its operations are then counted as bad Taw regardless of
// their individual outcomes, mirroring the paper's retroactive marking.
func (r *Recorder) Action(ops []Op, failed bool) {
	if failed {
		r.failedActions++
	} else {
		r.goodActions++
	}
	for _, op := range ops {
		if r.onOp != nil {
			r.onOp(op)
		}
		i := r.bucketOf(op.End)
		r.grow(i)
		if op.End > r.lastCompletion {
			r.lastCompletion = op.End
		}
		if failed {
			r.bad[i]++
			r.totalBadOps++
			if !r.haveFirstFail || op.End < r.firstFail {
				r.firstFail, r.haveFirstFail = op.End, true
			}
			if !op.OK || op.Latency() > r.threshold && r.threshold > 0 {
				// Track the unavailability window for the op's group.
				r.groupBad[op.Group] = append(r.groupBad[op.Group], span{op.Start, op.End})
			}
		} else {
			r.good[i]++
			r.totalGoodOps++
			r.latSum[i] += op.Latency()
			r.latCount[i]++
			r.latencies.Observe(op.Latency())
			if r.threshold > 0 && op.Latency() > r.threshold {
				r.overThreshold++
			}
		}
	}
}

// ObserveLatency records a response time outside of action accounting (used
// for steady-state performance measurements, Table 5).
func (r *Recorder) ObserveLatency(d time.Duration) {
	r.latencies.Observe(d)
	if r.threshold > 0 && d > r.threshold {
		r.overThreshold++
	}
}

// GoodOps and BadOps return total operation counts.
func (r *Recorder) GoodOps() int64 { return r.totalGoodOps }

// BadOps returns the number of operations belonging to failed actions.
func (r *Recorder) BadOps() int64 { return r.totalBadOps }

// GoodActions returns the number of actions that succeeded atomically.
func (r *Recorder) GoodActions() int64 { return r.goodActions }

// FailedActions returns the number of actions marked failed.
func (r *Recorder) FailedActions() int64 { return r.failedActions }

// OverThreshold returns how many successful operations exceeded the slow
// threshold (plus failed ops recorded via ObserveLatency).
func (r *Recorder) OverThreshold() int64 { return r.overThreshold }

// Latencies exposes the latency histogram of successful operations.
func (r *Recorder) Latencies() *Histogram { return r.latencies }

// Buckets returns the per-bucket good and bad Taw series, both of length
// Len. The i'th entry covers virtual time [i*bucket, (i+1)*bucket).
func (r *Recorder) Buckets() (good, bad []int64) { return r.good, r.bad }

// MeanLatencySeries returns the average successful-request latency per
// bucket; buckets with no completions report zero.
func (r *Recorder) MeanLatencySeries() []time.Duration {
	out := make([]time.Duration, len(r.latSum))
	for i := range r.latSum {
		if r.latCount[i] > 0 {
			out[i] = r.latSum[i] / time.Duration(r.latCount[i])
		}
	}
	return out
}

// GoodputOver returns the mean good Taw (ops/sec) over the window [from,
// to) of virtual time.
func (r *Recorder) GoodputOver(from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	lo, hi := r.bucketOf(from), r.bucketOf(to)
	var sum int64
	for i := lo; i < hi && i < len(r.good); i++ {
		sum += r.good[i]
	}
	return float64(sum) / (to - from).Seconds()
}

// Unavailability returns, for each functional group, the merged spans of
// time during which some request of that group eventually failed — the
// gaps plotted in Figure 2.
func (r *Recorder) Unavailability() map[string][]Interval {
	out := map[string][]Interval{}
	for g, spans := range r.groupBad {
		out[g] = mergeSpans(spans)
	}
	return out
}

// Interval is a half-open window of virtual time.
type Interval struct{ From, To time.Duration }

// Length returns the duration of the interval.
func (iv Interval) Length() time.Duration { return iv.To - iv.From }

func (iv Interval) String() string {
	return fmt.Sprintf("[%v,%v)", iv.From, iv.To)
}

func mergeSpans(spans []span) []Interval {
	if len(spans) == 0 {
		return nil
	}
	sorted := make([]span, len(spans))
	copy(sorted, spans)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].from < sorted[j].from })
	var out []Interval
	cur := Interval{sorted[0].from, sorted[0].to}
	for _, s := range sorted[1:] {
		if s.from <= cur.To {
			if s.to > cur.To {
				cur.To = s.to
			}
			continue
		}
		out = append(out, cur)
		cur = Interval{s.from, s.to}
	}
	return append(out, cur)
}

// DipArea estimates the "area of the dip" in good Taw over [from, to):
// the shortfall of good throughput relative to the supplied steady-state
// baseline (ops/bucket), clamped at zero. The paper uses dip area as the
// visual measure of service disruption.
func (r *Recorder) DipArea(from, to time.Duration, baseline float64) float64 {
	lo, hi := r.bucketOf(from), r.bucketOf(to)
	var area float64
	for i := lo; i < hi; i++ {
		var g float64
		if i < len(r.good) {
			g = float64(r.good[i])
		}
		if short := baseline - g; short > 0 {
			area += short
		}
	}
	return area
}
