package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func op(start, end time.Duration, name, group string, ok bool) Op {
	return Op{Start: start, End: end, Name: name, Group: group, OK: ok}
}

func TestActionGoodBadBuckets(t *testing.T) {
	r := NewRecorder(time.Second, 8*time.Second)
	r.Action([]Op{
		op(0, 100*time.Millisecond, "Login", "User Account", true),
		op(1200*time.Millisecond, 1300*time.Millisecond, "ViewItem", "Browse/View", true),
	}, false)
	r.Action([]Op{
		op(2*time.Second, 2*time.Second+50*time.Millisecond, "MakeBid", "Bid/Buy/Sell", true),
		op(3*time.Second, 3*time.Second+50*time.Millisecond, "CommitBid", "Bid/Buy/Sell", false),
	}, true)

	good, bad := r.Buckets()
	if good[0] != 1 || good[1] != 1 {
		t.Fatalf("good buckets = %v, want 1 at [0] and [1]", good)
	}
	if bad[2] != 1 || bad[3] != 1 {
		t.Fatalf("bad buckets = %v, want 1 at [2] and [3]", bad)
	}
	if r.GoodOps() != 2 || r.BadOps() != 2 {
		t.Fatalf("ops = %d good / %d bad, want 2/2", r.GoodOps(), r.BadOps())
	}
	if r.GoodActions() != 1 || r.FailedActions() != 1 {
		t.Fatalf("actions = %d good / %d failed, want 1/1", r.GoodActions(), r.FailedActions())
	}
}

func TestRetroactiveMarking(t *testing.T) {
	// All ops in a failed action count as bad even if they individually
	// succeeded — the defining property of Taw.
	r := NewRecorder(time.Second, 0)
	ops := []Op{
		op(0, time.Millisecond, "a", "g", true),
		op(time.Second, time.Second+time.Millisecond, "b", "g", true),
		op(2*time.Second, 2*time.Second+time.Millisecond, "c", "g", false),
	}
	r.Action(ops, true)
	if r.GoodOps() != 0 {
		t.Fatalf("good ops = %d, want 0", r.GoodOps())
	}
	if r.BadOps() != 3 {
		t.Fatalf("bad ops = %d, want 3", r.BadOps())
	}
}

func TestGoodputOver(t *testing.T) {
	r := NewRecorder(time.Second, 0)
	for i := 0; i < 10; i++ {
		start := time.Duration(i) * time.Second
		r.Action([]Op{op(start, start+10*time.Millisecond, "x", "g", true)}, false)
	}
	got := r.GoodputOver(0, 10*time.Second)
	if got < 0.99 || got > 1.01 {
		t.Fatalf("goodput = %v, want ~1.0", got)
	}
}

func TestOverThreshold(t *testing.T) {
	r := NewRecorder(time.Second, 8*time.Second)
	r.Action([]Op{op(0, 9*time.Second, "slow", "g", true)}, false)
	r.Action([]Op{op(0, time.Second, "fast", "g", true)}, false)
	if r.OverThreshold() != 1 {
		t.Fatalf("OverThreshold = %d, want 1", r.OverThreshold())
	}
}

func TestMeanLatencySeries(t *testing.T) {
	r := NewRecorder(time.Second, 0)
	r.Action([]Op{
		op(0, 20*time.Millisecond, "a", "g", true),
		op(100*time.Millisecond, 140*time.Millisecond, "b", "g", true),
	}, false)
	series := r.MeanLatencySeries()
	if series[0] != 30*time.Millisecond {
		t.Fatalf("mean latency bucket 0 = %v, want 30ms", series[0])
	}
}

func TestUnavailabilityMerging(t *testing.T) {
	r := NewRecorder(time.Second, 0)
	r.Action([]Op{op(time.Second, 2*time.Second, "a", "Search", false)}, true)
	r.Action([]Op{op(1500*time.Millisecond, 3*time.Second, "b", "Search", false)}, true)
	r.Action([]Op{op(10*time.Second, 11*time.Second, "c", "Search", false)}, true)
	iv := r.Unavailability()["Search"]
	if len(iv) != 2 {
		t.Fatalf("intervals = %v, want 2 merged intervals", iv)
	}
	if iv[0].From != time.Second || iv[0].To != 3*time.Second {
		t.Fatalf("first interval = %v, want [1s,3s)", iv[0])
	}
	if iv[1].Length() != time.Second {
		t.Fatalf("second interval length = %v, want 1s", iv[1].Length())
	}
}

func TestDipArea(t *testing.T) {
	r := NewRecorder(time.Second, 0)
	// 5 ops/s for 4 seconds, then nothing for 2 seconds.
	for s := 0; s < 4; s++ {
		for i := 0; i < 5; i++ {
			st := time.Duration(s) * time.Second
			r.Action([]Op{op(st, st+time.Millisecond, "x", "g", true)}, false)
		}
	}
	area := r.DipArea(0, 6*time.Second, 5)
	if area != 10 { // two empty seconds × baseline 5
		t.Fatalf("dip area = %v, want 10", area)
	}
}

// Property: good + bad operation totals equal the number of ops submitted.
func TestPropertyTawConservation(t *testing.T) {
	f := func(counts []uint8, fails []bool) bool {
		r := NewRecorder(time.Second, 0)
		var want int64
		for i, c := range counts {
			n := int(c%7) + 1
			ops := make([]Op, n)
			for j := range ops {
				st := time.Duration(i) * 100 * time.Millisecond
				ops[j] = op(st, st+time.Millisecond, "x", "g", true)
			}
			failed := i < len(fails) && fails[i]
			r.Action(ops, failed)
			want += int64(n)
		}
		return r.GoodOps()+r.BadOps() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	samples := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond,
		40 * time.Millisecond, 50 * time.Millisecond,
	}
	for _, s := range samples {
		h.Observe(s)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Mean() != 30*time.Millisecond {
		t.Fatalf("mean = %v, want 30ms", h.Mean())
	}
	if h.Min() != 10*time.Millisecond || h.Max() != 50*time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	q := h.Quantile(0.5)
	if q < 25*time.Millisecond || q > 40*time.Millisecond {
		t.Fatalf("median estimate %v too far from 30ms", q)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		want := time.Duration(q*1000) * time.Millisecond
		got := h.Quantile(q)
		ratio := float64(got) / float64(want)
		if ratio < 0.85 || ratio > 1.20 {
			t.Fatalf("q=%v: got %v, want ~%v (ratio %v)", q, got, want, ratio)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Observe(10 * time.Millisecond)
	b.Observe(30 * time.Millisecond)
	a.Merge(b)
	if a.Count() != 2 || a.Mean() != 20*time.Millisecond {
		t.Fatalf("merged count=%d mean=%v", a.Count(), a.Mean())
	}
	if a.Min() != 10*time.Millisecond || a.Max() != 30*time.Millisecond {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	a.Merge(nil) // must not panic
}

func TestHistogramExtremes(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(-time.Second) // clamped into first bucket
	h.Observe(time.Hour)    // clamped into last bucket
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	if h.Quantile(1.0) != time.Hour {
		t.Fatalf("q1.0 = %v, want capped at max", h.Quantile(1.0))
	}
}

func TestExactQuantile(t *testing.T) {
	s := []time.Duration{5, 1, 3, 2, 4}
	if got := ExactQuantile(s, 0.5); got != 3 {
		t.Fatalf("median = %v, want 3", got)
	}
	if got := ExactQuantile(s, 1.0); got != 5 {
		t.Fatalf("max = %v, want 5", got)
	}
	if got := ExactQuantile(s, 0.0); got != 1 {
		t.Fatalf("min quantile = %v, want 1", got)
	}
	if got := ExactQuantile(nil, 0.5); got != 0 {
		t.Fatalf("empty = %v, want 0", got)
	}
	// Input must not be mutated.
	if s[0] != 5 {
		t.Fatal("ExactQuantile mutated its input")
	}
}

// Property: histogram quantile is monotone in q.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(raw []uint32) bool {
		h := NewHistogram()
		for _, v := range raw {
			h.Observe(time.Duration(v) * time.Microsecond)
		}
		prev := time.Duration(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Fatal(err)
	}
}
