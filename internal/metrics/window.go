package metrics

import "time"

// Window is a sliding-window latency sample buffer for control loops: it
// keeps every sample observed within the trailing width and answers exact
// quantile queries over them. Unlike Histogram (cumulative over a whole
// run), a Window forgets — which is what a controller pacing itself
// against *current* foreground latency needs.
//
// Samples must be observed in non-decreasing timestamp order (virtual or
// wall time both work); Observe prunes everything older than the window
// as it appends, so memory is bounded by the op rate times the width.
// Window is not safe for concurrent use; callers serialize (the control
// plane holds its own lock).
type Window struct {
	width  time.Duration
	at     []time.Duration // sample timestamps, non-decreasing
	values []time.Duration // corresponding latencies
}

// DefaultWindowWidth is the trailing width control loops default to.
const DefaultWindowWidth = 15 * time.Second

// NewWindow builds a sliding window of the given trailing width
// (DefaultWindowWidth when non-positive).
func NewWindow(width time.Duration) *Window {
	if width <= 0 {
		width = DefaultWindowWidth
	}
	return &Window{width: width}
}

// Width returns the trailing width.
func (w *Window) Width() time.Duration { return w.width }

// Observe appends one sample taken at the given time and prunes samples
// that have slid out of the window.
func (w *Window) Observe(at, v time.Duration) {
	w.at = append(w.at, at)
	w.values = append(w.values, v)
	w.Prune(at)
}

// Prune drops samples outside the trailing half-open window (now-width,
// now]. Controllers call it on ticks so an idle stream (no new
// observations) still empties the window.
func (w *Window) Prune(now time.Duration) {
	cut := now - w.width
	i := 0
	for i < len(w.at) && w.at[i] <= cut {
		i++
	}
	if i == 0 {
		return
	}
	n := copy(w.at, w.at[i:])
	w.at = w.at[:n]
	n = copy(w.values, w.values[i:])
	w.values = w.values[:n]
}

// Count returns the number of samples currently inside the window.
func (w *Window) Count() int { return len(w.at) }

// Quantile returns the exact q-quantile of the samples in the window
// (zero when empty).
func (w *Window) Quantile(q float64) time.Duration {
	if len(w.values) == 0 {
		return 0
	}
	return ExactQuantile(w.values, q)
}
