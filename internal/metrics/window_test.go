package metrics

import (
	"testing"
	"time"
)

func TestWindowQuantileSlides(t *testing.T) {
	w := NewWindow(10 * time.Second)
	for i := 1; i <= 10; i++ {
		w.Observe(time.Duration(i)*time.Second, time.Duration(i)*time.Millisecond)
	}
	if w.Count() != 10 {
		t.Fatalf("count = %d, want 10", w.Count())
	}
	if got := w.Quantile(1); got != 10*time.Millisecond {
		t.Fatalf("max = %v", got)
	}
	if got := w.Quantile(0.5); got != 5*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	// Sliding forward drops the early (small) samples: the median rises.
	for i := 11; i <= 15; i++ {
		w.Observe(time.Duration(i)*time.Second, time.Duration(i)*time.Millisecond)
	}
	if w.Count() != 10 { // samples at 6s..15s remain
		t.Fatalf("count after slide = %d, want 10", w.Count())
	}
	if got := w.Quantile(0.5); got != 10*time.Millisecond {
		t.Fatalf("p50 after slide = %v, want 10ms", got)
	}
}

func TestWindowPruneEmptiesIdleStream(t *testing.T) {
	w := NewWindow(5 * time.Second)
	w.Observe(time.Second, time.Millisecond)
	w.Observe(2*time.Second, time.Millisecond)
	w.Prune(30 * time.Second)
	if w.Count() != 0 {
		t.Fatalf("count = %d, want 0 after idle prune", w.Count())
	}
	if got := w.Quantile(0.95); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

func TestWindowDefaultWidth(t *testing.T) {
	if w := NewWindow(0); w.Width() != DefaultWindowWidth {
		t.Fatalf("width = %v, want default", w.Width())
	}
}

func TestRecorderOnOpObserver(t *testing.T) {
	r := NewRecorder(time.Second, 8*time.Second)
	var seen []Op
	r.SetOnOp(func(op Op) { seen = append(seen, op) })
	ops := []Op{
		{Start: 0, End: 10 * time.Millisecond, Name: "ViewItem", OK: true},
		{Start: 0, End: 20 * time.Millisecond, Name: "MakeBid", OK: false},
	}
	r.Action(ops, true)
	if len(seen) != 2 || seen[0].Name != "ViewItem" || seen[1].Name != "MakeBid" {
		t.Fatalf("observed = %+v", seen)
	}
	r.SetOnOp(nil)
	r.Action(ops, false)
	if len(seen) != 2 {
		t.Fatal("observer fired after removal")
	}
}
