package recovery

import "repro/internal/ebid"

// Diagnosis is the score-based diagnosis half of the recovery manager:
// it accumulates suspicion over components (and session-state bricks) as
// failure reports arrive, using the static URL→component-path mapping,
// and decides when the evidence crosses the action threshold. It is
// deliberately simplistic and yields false positives; part of the paper's
// point is that cheap recovery makes sloppy diagnosis tolerable (§6.3).
//
// Diagnosis holds no policy: what to do about a diagnosed target is the
// EscalationPolicy's job.
type Diagnosis struct {
	threshold     float64
	warWeight     float64
	sessionWeight float64
	entityWeight  float64

	scores map[string]float64
}

// NewDiagnosis builds a diagnosis engine from a (filled) manager config.
func NewDiagnosis(cfg Config) *Diagnosis {
	cfg.fill()
	return &Diagnosis{
		threshold:     cfg.Threshold,
		warWeight:     cfg.WARWeight,
		sessionWeight: cfg.SessionWeight,
		entityWeight:  cfg.EntityWeight,
		scores:        map[string]float64{},
	}
}

// ObserveFailure scores one failure observation and reports whether the
// top suspect crossed the threshold (target is only meaningful when
// triggered is true).
func (d *Diagnosis) ObserveFailure(r Report) (target string, triggered bool) {
	path := ebid.PathFor(r.Op)
	if len(path) == 0 {
		// Unknown URL: all we can blame is the web tier, at full weight.
		d.scores[ebid.WAR] += d.sessionWeight
	}
	for _, comp := range path {
		d.scores[comp] += d.weightOf(comp, r.Op)
	}
	return d.check()
}

// ObserveBrick scores one brick heartbeat-loss observation. Brick names
// score like components: crossing the threshold triggers recovery.
func (d *Diagnosis) ObserveBrick(brick string) (target string, triggered bool) {
	d.scores[brick] += d.sessionWeight
	return d.check()
}

func (d *Diagnosis) check() (string, bool) {
	if name, score := d.Top(); score >= d.threshold {
		return name, true
	}
	return "", false
}

func (d *Diagnosis) weightOf(comp, op string) float64 {
	if comp == ebid.WAR {
		return d.warWeight
	}
	if comp == op {
		return d.sessionWeight
	}
	return d.entityWeight
}

// Top returns the highest-scoring suspect in a single pass over the score
// map, breaking ties toward the alphabetically-first name so the result
// is deterministic regardless of map iteration order. (An earlier
// implementation rebuilt and sorted the full name slice on every report —
// O(n log n) per observation for the same answer.)
func (d *Diagnosis) Top() (string, float64) {
	best, bestScore := "", -1.0
	for n, s := range d.scores {
		if s > bestScore || (s == bestScore && (best == "" || n < best)) {
			best, bestScore = n, s
		}
	}
	return best, bestScore
}

// Reset clears accumulated suspicion (called when a recovery triggers:
// the evidence has been acted on).
func (d *Diagnosis) Reset() {
	d.scores = map[string]float64{}
}

// Scores returns a copy of the current suspicion table (for operator
// status surfaces).
func (d *Diagnosis) Scores() map[string]float64 {
	out := make(map[string]float64, len(d.scores))
	for n, s := range d.scores {
		out[n] = s
	}
	return out
}
