package recovery

import (
	"repro/internal/core"
	"repro/internal/ebid"
)

// Decision is the action an EscalationPolicy chose for one diagnosed
// target at one escalation level.
type Decision struct {
	// Scope is the reboot scope of the action.
	Scope core.Scope
	// Microreboot, when true, microreboots the diagnosed target itself
	// (its recovery group) instead of rebooting a whole scope.
	Microreboot bool
	// GiveUp ends automatic recovery: the manager notifies a human with
	// Reason and stops acting.
	GiveUp bool
	Reason string
}

// EscalationPolicy decides which recovery action to take for a diagnosed
// target. The manager computes the escalation level (0 on a fresh
// diagnosis, +1 each time the same target recurs within the escalation
// window) and delegates the decide step here, so alternative policies can
// be evaluated without forking the manager: the paper's recursive ladder
// (LadderPolicy), the legacy "one big hammer" baseline (ForceScopePolicy),
// or anything a test dreams up.
type EscalationPolicy interface {
	// Name identifies the policy in diagnostics.
	Name() string
	// Decide maps (diagnosed target, escalation level) to an action.
	Decide(target string, level int) Decision
	// BrickRecoveryFirst reports whether dead session-state bricks should
	// be restarted before the component action — a dead brick is the
	// cheapest explanation for widespread session failures.
	BrickRecoveryFirst() bool
}

// LadderPolicy is the paper's recursive recovery ladder: always try the
// cheapest reboot first, escalate on recurrence — EJB µRB → WAR → app →
// process → node → human.
type LadderPolicy struct{}

// Name implements EscalationPolicy.
func (LadderPolicy) Name() string { return "ladder" }

// BrickRecoveryFirst implements EscalationPolicy: a brick restart is as
// cheap as an EJB µRB, so it always goes first.
func (LadderPolicy) BrickRecoveryFirst() bool { return true }

// Decide implements EscalationPolicy.
func (LadderPolicy) Decide(target string, level int) Decision {
	switch level {
	case 0:
		if target == ebid.WAR {
			return Decision{Scope: core.ScopeWAR}
		}
		return Decision{Scope: core.ScopeComponent, Microreboot: true}
	case 1:
		return Decision{Scope: core.ScopeWAR}
	case 2:
		return Decision{Scope: core.ScopeApp}
	case 3:
		return Decision{Scope: core.ScopeProcess}
	case 4:
		return Decision{Scope: core.ScopeNode}
	default:
		return Decision{GiveUp: true, Reason: "recursive recovery policy exhausted for " + target}
	}
}

// ForceScopePolicy recovers everything with one fixed scope, whatever the
// diagnosis says — the legacy "restart the JVM for every failure"
// operation the paper uses as its baseline. It never restarts bricks
// first: the baseline must not quietly benefit from cheap brick recovery.
type ForceScopePolicy struct {
	Scope core.Scope
}

// Name implements EscalationPolicy.
func (p ForceScopePolicy) Name() string { return "force-" + p.Scope.String() }

// BrickRecoveryFirst implements EscalationPolicy.
func (ForceScopePolicy) BrickRecoveryFirst() bool { return false }

// Decide implements EscalationPolicy.
func (p ForceScopePolicy) Decide(string, int) Decision { return Decision{Scope: p.Scope} }
