package recovery

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ebid"
	"repro/internal/sim"
)

func TestLadderPolicyDecisions(t *testing.T) {
	p := LadderPolicy{}
	cases := []struct {
		target string
		level  int
		want   Decision
	}{
		{ebid.ViewItem, 0, Decision{Scope: core.ScopeComponent, Microreboot: true}},
		{ebid.WAR, 0, Decision{Scope: core.ScopeWAR}},
		{ebid.ViewItem, 1, Decision{Scope: core.ScopeWAR}},
		{ebid.ViewItem, 2, Decision{Scope: core.ScopeApp}},
		{ebid.ViewItem, 3, Decision{Scope: core.ScopeProcess}},
		{ebid.ViewItem, 4, Decision{Scope: core.ScopeNode}},
	}
	for _, c := range cases {
		if got := p.Decide(c.target, c.level); got != c.want {
			t.Errorf("Decide(%s, %d) = %+v, want %+v", c.target, c.level, got, c.want)
		}
	}
	if d := p.Decide(ebid.ViewItem, 5); !d.GiveUp || d.Reason == "" {
		t.Fatalf("level 5 = %+v, want give-up with a reason", p.Decide(ebid.ViewItem, 5))
	}
	if !p.BrickRecoveryFirst() {
		t.Fatal("ladder policy must try brick recovery first")
	}
}

// driveToLevel pushes the manager through repeated recoveries of the same
// target so the escalation level climbs one per round.
func driveToLevel(k *sim.Kernel, m *Manager, rounds int) {
	for i := 0; i < rounds; i++ {
		for j := 0; j < 2; j++ {
			m.Report(Report{Op: ebid.ViewItem})
		}
		k.RunFor(30 * time.Second)
	}
}

func TestUpperLadderProcessAndNodeReboots(t *testing.T) {
	// Levels 3 and 4 of the ladder — the expensive end the Figure 1
	// experiments never reach — must issue process and node reboots
	// before the policy exhausts.
	k := sim.NewKernel(1)
	fr := &fakeRebooter{}
	m := NewManager(k, fr, Config{Threshold: 2, Grace: time.Second, EscalationWindow: 10 * time.Minute})
	driveToLevel(k, m, 5) // levels 0..4
	want := []core.Scope{core.ScopeWAR, core.ScopeApp, core.ScopeProcess, core.ScopeNode}
	if !reflect.DeepEqual(fr.scopes, want) {
		t.Fatalf("scopes = %v, want %v", fr.scopes, want)
	}
	if m.HumanNotified() {
		t.Fatal("gave up before the ladder was exhausted")
	}
	if got := m.Actions[len(m.Actions)-1].Scope; got != core.ScopeNode {
		t.Fatalf("last action scope = %v, want node reboot", got)
	}
}

func TestNotifyHumanOnLadderExhaustion(t *testing.T) {
	k := sim.NewKernel(1)
	fr := &fakeRebooter{}
	var human []string
	m := NewManager(k, fr, Config{Threshold: 2, Grace: time.Second, EscalationWindow: 10 * time.Minute})
	m.NotifyHuman = func(r string) { human = append(human, r) }
	var events []string
	m.OnRecoveryStart = func() { events = append(events, "start") }
	m.OnRecoveryEnd = func() { events = append(events, "end") }
	driveToLevel(k, m, 6) // one past the node reboot
	if len(human) != 1 {
		t.Fatalf("human notifications = %v, want exactly one", human)
	}
	if !m.HumanNotified() {
		t.Fatal("HumanNotified() = false after exhaustion")
	}
	// The give-up still brackets itself with start/end so the LB
	// un-drains the node (5 recoveries + the give-up = 6 pairs).
	if len(events) != 12 || events[10] != "start" || events[11] != "end" {
		t.Fatalf("LB events = %v, want 6 start/end pairs", events)
	}
	// Once the human owns the incident, further evidence is ignored.
	driveToLevel(k, m, 1)
	if len(fr.scopes) != 4 || len(human) != 1 {
		t.Fatal("manager kept acting after notifying the human")
	}
}

// replayActions runs the same report stream through a manager built with
// cfg and returns its action log.
func replayActions(t *testing.T, cfg Config) []Action {
	t.Helper()
	k := sim.NewKernel(1)
	fr := &fakeRebooter{}
	m := NewManager(k, fr, cfg)
	m.Bricks = &fakeBricks{dead: []string{"ssm/s0-r0"}}
	for round := 0; round < 3; round++ {
		for i := 0; i < 3; i++ {
			m.Report(Report{Op: ebid.MakeBid, Kind: "http-error"})
		}
		m.ReportBrickFailure("ssm/s0-r0")
		k.RunFor(30 * time.Second)
	}
	return m.Actions
}

func TestForceScopePolicyMatchesForceScopeConfig(t *testing.T) {
	// Regression for the diagnosis/policy split: ForceScope expressed as
	// a policy must produce the exact action log the legacy ForceScope
	// config field produced for the same report stream — including NOT
	// taking the cheap brick-recovery path.
	legacy := replayActions(t, Config{Threshold: 3, ForceScope: core.ScopeProcess})
	policy := replayActions(t, Config{Threshold: 3, Policy: ForceScopePolicy{Scope: core.ScopeProcess}})
	if len(legacy) == 0 {
		t.Fatal("baseline produced no actions")
	}
	if !reflect.DeepEqual(actionsSummary(legacy), actionsSummary(policy)) {
		t.Fatalf("action logs diverge:\nlegacy: %+v\npolicy: %+v", legacy, policy)
	}
	for _, a := range legacy {
		if a.Target == "ssm-bricks" {
			t.Fatal("ForceScope baseline used brick recovery")
		}
		if a.Scope != core.ScopeProcess {
			t.Fatalf("scope = %v, want forced process restart", a.Scope)
		}
	}
}

// actionsSummary projects the comparable fields of an action log (the
// Reboot pointers differ across runs by construction).
func actionsSummary(actions []Action) []Action {
	out := make([]Action, len(actions))
	for i, a := range actions {
		out[i] = Action{At: a.At, Target: a.Target, Scope: a.Scope}
	}
	return out
}

// jumpPolicy is a custom escalation policy: straight to a process
// restart, give up on the first recurrence.
type jumpPolicy struct{}

func (jumpPolicy) Name() string             { return "jump" }
func (jumpPolicy) BrickRecoveryFirst() bool { return true }
func (jumpPolicy) Decide(target string, level int) Decision {
	if level > 0 {
		return Decision{GiveUp: true, Reason: "jump policy: " + target + " recurred"}
	}
	return Decision{Scope: core.ScopeProcess}
}

func TestCustomPolicyPluggedIn(t *testing.T) {
	// The point of the split: a new policy runs under the stock manager
	// without forking it.
	k := sim.NewKernel(1)
	fr := &fakeRebooter{}
	var human []string
	m := NewManager(k, fr, Config{Threshold: 2, Grace: time.Second, Policy: jumpPolicy{}})
	m.NotifyHuman = func(r string) { human = append(human, r) }
	driveToLevel(k, m, 2)
	if len(fr.scopes) != 1 || fr.scopes[0] != core.ScopeProcess {
		t.Fatalf("scopes = %v, want one process restart", fr.scopes)
	}
	if len(human) != 1 || human[0] != "jump policy: "+ebid.ViewItem+" recurred" {
		t.Fatalf("human = %v", human)
	}
	if m.Policy().Name() != "jump" {
		t.Fatalf("Policy().Name() = %q", m.Policy().Name())
	}
}

func TestDiagnosisTopDeterministicTieBreak(t *testing.T) {
	// Guard for the single-pass Top rewrite: equal scores must always
	// resolve to the alphabetically-first suspect, whatever the map
	// iteration order happens to be.
	for i := 0; i < 50; i++ {
		d := NewDiagnosis(Config{})
		_, _ = d.ObserveBrick("zeta")
		_, _ = d.ObserveBrick("alpha")
		_, _ = d.ObserveBrick("mid")
		if name, score := d.Top(); name != "alpha" || score != 1 {
			t.Fatalf("Top() = %q/%v, want alpha/1", name, score)
		}
	}
	d := NewDiagnosis(Config{})
	if name, score := d.Top(); name != "" || score != -1 {
		t.Fatalf("empty Top() = %q/%v", name, score)
	}
}

func TestDiagnosisThresholdAndReset(t *testing.T) {
	d := NewDiagnosis(Config{Threshold: 2})
	if _, triggered := d.ObserveBrick("ssm/s0-r0"); triggered {
		t.Fatal("triggered below threshold")
	}
	name, triggered := d.ObserveBrick("ssm/s0-r0")
	if !triggered || name != "ssm/s0-r0" {
		t.Fatalf("ObserveBrick = %q/%v, want trigger on the brick", name, triggered)
	}
	if got := d.Scores()["ssm/s0-r0"]; got != 2 {
		t.Fatalf("score = %v, want 2", got)
	}
	d.Reset()
	if len(d.Scores()) != 0 {
		t.Fatal("Reset left scores behind")
	}
}
