// Package recovery implements the paper's recovery manager (RM): it
// listens for failure reports from the client-side monitors, performs
// simple score-based diagnosis using the static URL→component-path
// mapping, and recovers the system with a recursive recovery policy that
// always tries the cheapest reboot first — EJB microreboot, then the WAR,
// then the whole application, then a JVM/JBoss process restart, then an
// operating-system reboot, and finally notifies a human.
//
// The diagnosis is deliberately simplistic and yields false positives;
// part of the paper's point is that cheap recovery makes sloppy diagnosis
// tolerable (Section 6.3).
package recovery

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/ebid"
	"repro/internal/sim"
)

// Rebooter abstracts the node-level recovery actions; *cluster.Node
// implements it.
type Rebooter interface {
	Microreboot(names ...string) (*core.Reboot, error)
	RebootScope(scope core.Scope) (*core.Reboot, error)
	Recovering() bool
}

// BrickStore abstracts the session-state brick cluster so RM can recover
// a dead brick the same way it microreboots an EJB: crash-restart it and
// let re-replication restore the shard. *session.SSMCluster implements it.
type BrickStore interface {
	// DeadBricks names the crashed bricks (heartbeat-loss view).
	DeadBricks() []string
	// RestartBrick reboots one brick and re-replicates its shard,
	// returning the modeled recovery duration.
	RestartBrick(name string) (time.Duration, error)
}

// Report is one failure observation from a monitor: the failed end-user
// operation (URL) and the failure type observed.
type Report struct {
	Op   string
	Kind string
}

// Config parameterizes the manager.
type Config struct {
	// Threshold is the score at which RM triggers recovery (default 3).
	Threshold float64
	// Grace is how long after a recovery completes RM ignores residual
	// failure reports before re-diagnosing (default 3 s).
	Grace time.Duration
	// EscalationWindow: a repeat recovery of the same target within this
	// window escalates to the next policy level (default 90 s).
	EscalationWindow time.Duration
	// RecurringLimit: after this many full escalations RM gives up and
	// notifies a human (default 1 — i.e. after the OS reboot fails).
	RecurringLimit int
	// Weights for path scoring. The WAR sits on every path, so it gets a
	// low weight; the operation's own session component is the most
	// suspicious; entities are shared across operations and accumulate
	// across distinct failing URLs.
	WARWeight     float64
	SessionWeight float64
	EntityWeight  float64
	// DetectionDelay postpones the recovery action after the threshold
	// is crossed (models Tdet in the Figure 5 experiments).
	DetectionDelay time.Duration
	// ForceScope, when non-zero, makes every recovery action use this
	// scope instead of the recursive policy — used to model legacy
	// "restart the JVM for everything" operation as the baseline.
	ForceScope core.Scope
}

func (c *Config) fill() {
	if c.Threshold == 0 {
		c.Threshold = 3
	}
	if c.Grace == 0 {
		c.Grace = 3 * time.Second
	}
	if c.EscalationWindow == 0 {
		c.EscalationWindow = 90 * time.Second
	}
	if c.RecurringLimit == 0 {
		c.RecurringLimit = 1
	}
	if c.WARWeight == 0 {
		c.WARWeight = 0.25
	}
	if c.SessionWeight == 0 {
		c.SessionWeight = 1.0
	}
	if c.EntityWeight == 0 {
		c.EntityWeight = 0.6
	}
}

// Action describes one recovery action RM took.
type Action struct {
	At     time.Duration
	Target string
	Scope  core.Scope
	Reboot *core.Reboot
}

// Manager is the recovery manager for one node.
type Manager struct {
	kernel *sim.Kernel
	target Rebooter
	cfg    Config

	scores          map[string]float64
	mutedUntil      time.Duration
	pendingRecovery bool

	// lastTarget/lastLevel drive the recursive escalation policy.
	lastTarget string
	lastLevel  int
	lastDone   time.Duration

	// Actions is the recovery log.
	Actions []Action
	// Bricks, when set, lets RM restart dead session-state bricks. It is
	// consulted before the component policy: a dead brick is the cheapest
	// explanation for widespread session failures, and restarting it is
	// as cheap as an EJB µRB.
	Bricks BrickStore
	// OnRecoveryStart/End let the load balancer be notified for
	// failover, as the paper's RM notifies LB.
	OnRecoveryStart func()
	OnRecoveryEnd   func()
	// NotifyHuman fires when the policy is exhausted or failures recur
	// beyond RecurringLimit.
	NotifyHuman func(reason string)

	humanNotified bool
}

// NewManager builds a recovery manager driving the given rebooter.
func NewManager(k *sim.Kernel, target Rebooter, cfg Config) *Manager {
	cfg.fill()
	return &Manager{
		kernel: k,
		target: target,
		cfg:    cfg,
		scores: map[string]float64{},
	}
}

// HumanNotified reports whether RM has given up on automatic recovery.
func (m *Manager) HumanNotified() bool { return m.humanNotified }

// Report feeds one failure observation into the manager (monitors send
// these the way the paper's monitors send UDP failure reports).
func (m *Manager) Report(r Report) {
	if m.pendingRecovery || m.target.Recovering() || m.kernel.Now() < m.mutedUntil || m.humanNotified {
		return
	}
	path := ebid.PathFor(r.Op)
	if len(path) == 0 {
		// Unknown URL: all we can blame is the web tier, at full weight.
		m.scores[ebid.WAR] += m.cfg.SessionWeight
	}
	for _, comp := range path {
		m.scores[comp] += m.weightOf(comp, r.Op)
	}
	if name, score := m.top(); score >= m.cfg.Threshold {
		m.trigger(name)
	}
}

// ReportBrickFailure feeds one brick heartbeat-loss observation into the
// manager (the SSM's brick monitors send these the way the paper's
// client monitors send UDP failure reports). Brick names score like
// components; crossing the threshold triggers recovery, and the brick
// path in recover restarts the dead brick.
func (m *Manager) ReportBrickFailure(brick string) {
	if m.pendingRecovery || m.target.Recovering() || m.kernel.Now() < m.mutedUntil || m.humanNotified {
		return
	}
	m.scores[brick] += m.cfg.SessionWeight
	if name, score := m.top(); score >= m.cfg.Threshold {
		m.trigger(name)
	}
}

func (m *Manager) weightOf(comp, op string) float64 {
	if comp == ebid.WAR {
		return m.cfg.WARWeight
	}
	if comp == op {
		return m.cfg.SessionWeight
	}
	return m.cfg.EntityWeight
}

// top returns the highest-scoring component (ties broken alphabetically
// for determinism).
func (m *Manager) top() (string, float64) {
	var names []string
	for n := range m.scores {
		names = append(names, n)
	}
	sort.Strings(names)
	best, bestScore := "", -1.0
	for _, n := range names {
		if m.scores[n] > bestScore {
			best, bestScore = n, m.scores[n]
		}
	}
	return best, bestScore
}

// trigger runs the recursive recovery policy against the diagnosed
// component, optionally after the configured detection delay.
func (m *Manager) trigger(name string) {
	m.pendingRecovery = true
	m.scores = map[string]float64{}
	fire := func() { m.recover(name) }
	if m.cfg.DetectionDelay > 0 {
		m.kernel.Schedule(m.cfg.DetectionDelay, fire)
	} else {
		fire()
	}
}

// recover picks the policy level. Repeated recovery of the same target
// within the escalation window moves one level up: EJB µRB → WAR → app →
// process → node → human.
func (m *Manager) recover(name string) {
	// Dead session-state bricks come first: they are the cheapest
	// recovery (a brick µRB plus re-replication) and the likeliest cause
	// of store-wide session failures. If the diagnosis was wrong, the
	// failures persist and the next trigger walks the component policy.
	// ForceScope wins, though — the legacy "restart the JVM for
	// everything" baseline must not quietly benefit from brick recovery.
	if m.Bricks != nil && m.cfg.ForceScope == 0 {
		if dead := m.Bricks.DeadBricks(); len(dead) > 0 {
			m.recoverBricks(dead)
			return
		}
	}
	level := 0
	if name == m.lastTarget && m.kernel.Now()-m.lastDone <= m.cfg.EscalationWindow {
		level = m.lastLevel + 1
	}
	m.lastTarget = name
	m.lastLevel = level

	if m.OnRecoveryStart != nil {
		m.OnRecoveryStart()
	}
	var (
		rb    *core.Reboot
		err   error
		scope core.Scope
	)
	if m.cfg.ForceScope != 0 {
		scope = m.cfg.ForceScope
		rb, err = m.target.RebootScope(scope)
		m.finishRecovery(name, scope, rb, err)
		return
	}
	switch level {
	case 0:
		scope = core.ScopeComponent
		if name == ebid.WAR {
			scope = core.ScopeWAR
			rb, err = m.target.RebootScope(core.ScopeWAR)
		} else {
			rb, err = m.target.Microreboot(name)
		}
	case 1:
		scope = core.ScopeWAR
		rb, err = m.target.RebootScope(core.ScopeWAR)
	case 2:
		scope = core.ScopeApp
		rb, err = m.target.RebootScope(core.ScopeApp)
	case 3:
		scope = core.ScopeProcess
		rb, err = m.target.RebootScope(core.ScopeProcess)
	case 4:
		scope = core.ScopeNode
		rb, err = m.target.RebootScope(core.ScopeNode)
	default:
		m.humanNotified = true
		m.pendingRecovery = false
		if m.NotifyHuman != nil {
			m.NotifyHuman("recursive recovery policy exhausted for " + name)
		}
		if m.OnRecoveryEnd != nil {
			m.OnRecoveryEnd()
		}
		return
	}
	m.finishRecovery(name, scope, rb, err)
}

// recoverBricks restarts every dead brick (they recover in parallel, so
// the modeled duration is the slowest restart) and logs one EJB-scope
// action with the restarted bricks as members. A brick that refuses to
// restart is skipped rather than aborting the whole action: with an
// elastic ring, a brick can vanish between the heartbeat-loss report and
// the recovery action (its shard drained and retired), and that is a
// healthy outcome, not an emergency. Only when no dead brick could be
// restarted at all does RM escalate to a human.
func (m *Manager) recoverBricks(dead []string) {
	m.lastTarget = "ssm-bricks"
	m.lastLevel = 0
	if m.OnRecoveryStart != nil {
		m.OnRecoveryStart()
	}
	var longest time.Duration
	var restarted []string
	var lastErr error
	for _, brick := range dead {
		d, err := m.Bricks.RestartBrick(brick)
		if err != nil {
			lastErr = err
			continue
		}
		restarted = append(restarted, brick)
		if d > longest {
			longest = d
		}
	}
	if len(restarted) == 0 {
		m.finishRecovery("ssm-bricks", core.ScopeComponent, nil, lastErr)
		return
	}
	rb := &core.Reboot{Scope: core.ScopeComponent, Members: restarted, Reinit: longest}
	m.finishRecovery("ssm-bricks", core.ScopeComponent, rb, nil)
}

func (m *Manager) finishRecovery(name string, scope core.Scope, rb *core.Reboot, err error) {
	if err != nil {
		m.humanNotified = true
		m.pendingRecovery = false
		if m.NotifyHuman != nil {
			m.NotifyHuman("recovery action failed: " + err.Error())
		}
		if m.OnRecoveryEnd != nil {
			m.OnRecoveryEnd()
		}
		return
	}
	m.Actions = append(m.Actions, Action{At: m.kernel.Now(), Target: name, Scope: scope, Reboot: rb})
	// Recovery completes when the reboot does; residual failure reports
	// stay muted for the Grace window after that.
	m.kernel.Schedule(rb.Duration(), func() {
		m.pendingRecovery = false
		m.lastDone = m.kernel.Now()
		m.mutedUntil = m.kernel.Now() + m.cfg.Grace
		if m.OnRecoveryEnd != nil {
			m.OnRecoveryEnd()
		}
	})
}
