// Package recovery implements the paper's recovery manager (RM) as the
// diagnose/decide half of an observe–decide–act control loop: it listens
// for failure reports from the client-side monitors, performs simple
// score-based diagnosis using the static URL→component-path mapping
// (Diagnosis), and recovers the system through a pluggable
// EscalationPolicy. The default LadderPolicy is the paper's recursive
// recovery ladder — always try the cheapest reboot first: EJB
// microreboot, then the WAR, then the whole application, then a
// JVM/JBoss process restart, then an operating-system reboot, and
// finally notify a human. ForceScopePolicy models the legacy "restart
// the JVM for everything" baseline.
//
// The diagnosis is deliberately simplistic and yields false positives;
// part of the paper's point is that cheap recovery makes sloppy diagnosis
// tolerable (Section 6.3).
package recovery

import (
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// Rebooter abstracts the node-level recovery actions; *cluster.Node
// implements it.
type Rebooter interface {
	Microreboot(names ...string) (*core.Reboot, error)
	RebootScope(scope core.Scope) (*core.Reboot, error)
	Recovering() bool
}

// BrickStore abstracts the session-state brick cluster so RM can recover
// a dead brick the same way it microreboots an EJB: crash-restart it and
// let re-replication restore the shard. *session.SSMCluster implements it.
type BrickStore interface {
	// DeadBricks names the crashed bricks (heartbeat-loss view).
	DeadBricks() []string
	// RestartBrick reboots one brick and re-replicates its shard,
	// returning the modeled recovery duration.
	RestartBrick(name string) (time.Duration, error)
}

// Report is one failure observation from a monitor: the failed end-user
// operation (URL) and the failure type observed.
type Report struct {
	Op   string
	Kind string
}

// Config parameterizes the manager.
type Config struct {
	// Threshold is the score at which RM triggers recovery (default 3).
	Threshold float64
	// Grace is how long after a recovery completes RM ignores residual
	// failure reports before re-diagnosing (default 3 s).
	Grace time.Duration
	// EscalationWindow: a repeat recovery of the same target within this
	// window escalates to the next policy level (default 90 s).
	EscalationWindow time.Duration
	// RecurringLimit: after this many full escalations RM gives up and
	// notifies a human (default 1 — i.e. after the OS reboot fails).
	RecurringLimit int
	// Weights for path scoring. The WAR sits on every path, so it gets a
	// low weight; the operation's own session component is the most
	// suspicious; entities are shared across operations and accumulate
	// across distinct failing URLs.
	WARWeight     float64
	SessionWeight float64
	EntityWeight  float64
	// DetectionDelay postpones the recovery action after the threshold
	// is crossed (models Tdet in the Figure 5 experiments).
	DetectionDelay time.Duration
	// Policy decides the recovery action for a diagnosed target (default
	// LadderPolicy, the paper's recursive ladder). Policy wins over
	// ForceScope when both are set.
	Policy EscalationPolicy
	// ForceScope, when non-zero, makes every recovery action use this
	// scope instead of the recursive policy — shorthand for Policy:
	// ForceScopePolicy{Scope}, kept to model legacy "restart the JVM for
	// everything" operation as the baseline.
	ForceScope core.Scope
}

func (c *Config) fill() {
	if c.Threshold == 0 {
		c.Threshold = 3
	}
	if c.Grace == 0 {
		c.Grace = 3 * time.Second
	}
	if c.EscalationWindow == 0 {
		c.EscalationWindow = 90 * time.Second
	}
	if c.RecurringLimit == 0 {
		c.RecurringLimit = 1
	}
	if c.WARWeight == 0 {
		c.WARWeight = 0.25
	}
	if c.SessionWeight == 0 {
		c.SessionWeight = 1.0
	}
	if c.EntityWeight == 0 {
		c.EntityWeight = 0.6
	}
	if c.Policy == nil {
		if c.ForceScope != 0 {
			c.Policy = ForceScopePolicy{Scope: c.ForceScope}
		} else {
			c.Policy = LadderPolicy{}
		}
	}
}

// Action describes one recovery action RM took.
type Action struct {
	At     time.Duration
	Target string
	Scope  core.Scope
	Reboot *core.Reboot
}

// Manager is the recovery manager for one node: the Diagnosis engine
// accumulates evidence, the EscalationPolicy picks actions, and the
// manager owns the loop state in between (grace muting, escalation
// level, the action log).
type Manager struct {
	kernel *sim.Kernel
	target Rebooter
	cfg    Config

	diag            *Diagnosis
	policy          EscalationPolicy
	mutedUntil      time.Duration
	pendingRecovery bool

	// lastTarget/lastLevel drive the escalation-level accounting handed
	// to the policy.
	lastTarget string
	lastLevel  int
	lastDone   time.Duration

	// Actions is the recovery log.
	Actions []Action
	// Bricks, when set, lets RM restart dead session-state bricks. It is
	// consulted before the component policy (when the policy allows): a
	// dead brick is the cheapest explanation for widespread session
	// failures, and restarting it is as cheap as an EJB µRB.
	Bricks BrickStore
	// OnRecoveryStart/End announce the recovery lifecycle. The manager
	// never touches the load balancer itself: hosts bind these to the
	// control-plane bus (controlplane.BindRecoveryLifecycle), where the
	// fleet controller turns them into LB drain/restore — the paper's
	// "RM notifies LB" failover, as an observe–decide–act hop.
	OnRecoveryStart func()
	OnRecoveryEnd   func()
	// NotifyHuman fires when the policy is exhausted or failures recur
	// beyond RecurringLimit.
	NotifyHuman func(reason string)

	humanNotified bool
}

// NewManager builds a recovery manager driving the given rebooter.
func NewManager(k *sim.Kernel, target Rebooter, cfg Config) *Manager {
	cfg.fill()
	return &Manager{
		kernel: k,
		target: target,
		cfg:    cfg,
		diag:   NewDiagnosis(cfg),
		policy: cfg.Policy,
	}
}

// Policy returns the manager's escalation policy.
func (m *Manager) Policy() EscalationPolicy { return m.policy }

// Diagnosis exposes the diagnosis engine (operator status surfaces read
// the live suspicion table through it).
func (m *Manager) Diagnosis() *Diagnosis { return m.diag }

// HumanNotified reports whether RM has given up on automatic recovery.
func (m *Manager) HumanNotified() bool { return m.humanNotified }

// muted reports whether new evidence should be ignored right now:
// recovery in flight, inside the post-recovery grace window, or the
// human has taken over.
func (m *Manager) muted() bool {
	return m.pendingRecovery || m.target.Recovering() || m.kernel.Now() < m.mutedUntil || m.humanNotified
}

// Report feeds one failure observation into the manager (monitors send
// these the way the paper's monitors send UDP failure reports).
func (m *Manager) Report(r Report) {
	if m.muted() {
		return
	}
	if name, triggered := m.diag.ObserveFailure(r); triggered {
		m.trigger(name)
	}
}

// ReportBrickFailure feeds one brick heartbeat-loss observation into the
// manager (the SSM's brick monitors send these the way the paper's
// client monitors send UDP failure reports).
func (m *Manager) ReportBrickFailure(brick string) {
	if m.muted() {
		return
	}
	if name, triggered := m.diag.ObserveBrick(brick); triggered {
		m.trigger(name)
	}
}

// trigger runs the recovery policy against the diagnosed component,
// optionally after the configured detection delay.
func (m *Manager) trigger(name string) {
	m.pendingRecovery = true
	m.diag.Reset()
	fire := func() { m.recover(name) }
	if m.cfg.DetectionDelay > 0 {
		m.kernel.Schedule(m.cfg.DetectionDelay, fire)
	} else {
		fire()
	}
}

// recover computes the escalation level (repeated recovery of the same
// target within the escalation window moves one level up) and acts on
// the policy's decision.
func (m *Manager) recover(name string) {
	// Dead session-state bricks come first when the policy permits: they
	// are the cheapest recovery (a brick µRB plus re-replication) and the
	// likeliest cause of store-wide session failures. If the diagnosis
	// was wrong, the failures persist and the next trigger walks the
	// component policy.
	if m.Bricks != nil && m.policy.BrickRecoveryFirst() {
		if dead := m.Bricks.DeadBricks(); len(dead) > 0 {
			m.recoverBricks(dead)
			return
		}
	}
	level := 0
	if name == m.lastTarget && m.kernel.Now()-m.lastDone <= m.cfg.EscalationWindow {
		level = m.lastLevel + 1
	}
	m.lastTarget = name
	m.lastLevel = level

	if m.OnRecoveryStart != nil {
		m.OnRecoveryStart()
	}
	d := m.policy.Decide(name, level)
	if d.GiveUp {
		m.humanNotified = true
		m.pendingRecovery = false
		if m.NotifyHuman != nil {
			m.NotifyHuman(d.Reason)
		}
		if m.OnRecoveryEnd != nil {
			m.OnRecoveryEnd()
		}
		return
	}
	var (
		rb  *core.Reboot
		err error
	)
	if d.Microreboot {
		rb, err = m.target.Microreboot(name)
	} else {
		rb, err = m.target.RebootScope(d.Scope)
	}
	m.finishRecovery(name, d.Scope, rb, err)
}

// recoverBricks restarts every dead brick (they recover in parallel, so
// the modeled duration is the slowest restart) and logs one EJB-scope
// action with the restarted bricks as members. A brick that refuses to
// restart is skipped rather than aborting the whole action: with an
// elastic ring, a brick can vanish between the heartbeat-loss report and
// the recovery action (its shard drained and retired), and that is a
// healthy outcome, not an emergency. Only when no dead brick could be
// restarted at all does RM escalate to a human.
func (m *Manager) recoverBricks(dead []string) {
	m.lastTarget = "ssm-bricks"
	m.lastLevel = 0
	if m.OnRecoveryStart != nil {
		m.OnRecoveryStart()
	}
	var longest time.Duration
	var restarted []string
	var lastErr error
	for _, brick := range dead {
		d, err := m.Bricks.RestartBrick(brick)
		if err != nil {
			lastErr = err
			continue
		}
		restarted = append(restarted, brick)
		if d > longest {
			longest = d
		}
	}
	if len(restarted) == 0 {
		m.finishRecovery("ssm-bricks", core.ScopeComponent, nil, lastErr)
		return
	}
	rb := &core.Reboot{Scope: core.ScopeComponent, Members: restarted, Reinit: longest}
	m.finishRecovery("ssm-bricks", core.ScopeComponent, rb, nil)
}

func (m *Manager) finishRecovery(name string, scope core.Scope, rb *core.Reboot, err error) {
	if err != nil {
		m.humanNotified = true
		m.pendingRecovery = false
		if m.NotifyHuman != nil {
			m.NotifyHuman("recovery action failed: " + err.Error())
		}
		if m.OnRecoveryEnd != nil {
			m.OnRecoveryEnd()
		}
		return
	}
	m.Actions = append(m.Actions, Action{At: m.kernel.Now(), Target: name, Scope: scope, Reboot: rb})
	// Recovery completes when the reboot does; residual failure reports
	// stay muted for the Grace window after that.
	m.kernel.Schedule(rb.Duration(), func() {
		m.pendingRecovery = false
		m.lastDone = m.kernel.Now()
		m.mutedUntil = m.kernel.Now() + m.cfg.Grace
		if m.OnRecoveryEnd != nil {
			m.OnRecoveryEnd()
		}
	})
}
