package recovery

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ebid"
	"repro/internal/sim"
)

// fakeRebooter records recovery actions without a real node.
type fakeRebooter struct {
	micro  [][]string
	scopes []core.Scope
	// failAll makes every action error (for NotifyHuman paths).
	failAll bool
	cost    time.Duration
}

func (f *fakeRebooter) Microreboot(names ...string) (*core.Reboot, error) {
	if f.failAll {
		return nil, core.ErrNotBound
	}
	f.micro = append(f.micro, names)
	return &core.Reboot{Scope: core.ScopeComponent, Members: names, Reinit: f.costOr(500 * time.Millisecond)}, nil
}

func (f *fakeRebooter) RebootScope(scope core.Scope) (*core.Reboot, error) {
	if f.failAll {
		return nil, core.ErrNotBound
	}
	f.scopes = append(f.scopes, scope)
	return &core.Reboot{Scope: scope, Reinit: f.costOr(time.Second)}, nil
}

func (f *fakeRebooter) costOr(d time.Duration) time.Duration {
	if f.cost > 0 {
		return f.cost
	}
	return d
}

func (f *fakeRebooter) Recovering() bool { return false }

func TestDiagnosisBlamesTheFailingOperation(t *testing.T) {
	k := sim.NewKernel(1)
	fr := &fakeRebooter{}
	m := NewManager(k, fr, Config{Threshold: 3})
	for i := 0; i < 3; i++ {
		m.Report(Report{Op: ebid.MakeBid, Kind: "http-error"})
	}
	k.Drain()
	if len(fr.micro) != 1 || fr.micro[0][0] != ebid.MakeBid {
		t.Fatalf("recovery actions = %v, want µRB of MakeBid", fr.micro)
	}
	if len(m.Actions) != 1 || m.Actions[0].Scope != core.ScopeComponent {
		t.Fatalf("actions = %+v", m.Actions)
	}
}

func TestDiagnosisBlamesSharedEntityAcrossOps(t *testing.T) {
	// Failures across many different operations that all touch the
	// EntityGroup should accumulate on an entity, not any single session
	// component.
	k := sim.NewKernel(1)
	fr := &fakeRebooter{}
	m := NewManager(k, fr, Config{Threshold: 2})
	m.Report(Report{Op: ebid.ViewItem})
	m.Report(Report{Op: ebid.SearchItemsByCategory})
	m.Report(Report{Op: ebid.MakeBid})
	m.Report(Report{Op: ebid.DoBuyNow})
	k.Drain()
	if len(fr.micro) != 1 {
		t.Fatalf("recoveries = %v", fr.micro)
	}
	if fr.micro[0][0] != ebid.EntItem {
		t.Fatalf("blamed %v, want the shared Item entity", fr.micro[0])
	}
}

func TestEscalationLadder(t *testing.T) {
	k := sim.NewKernel(1)
	fr := &fakeRebooter{}
	var human []string
	m := NewManager(k, fr, Config{Threshold: 2, Grace: time.Second, EscalationWindow: 10 * time.Minute})
	m.NotifyHuman = func(reason string) { human = append(human, reason) }

	fail := func() {
		for i := 0; i < 2; i++ {
			m.Report(Report{Op: ebid.ViewItem})
		}
		k.RunFor(30 * time.Second)
	}
	fail() // level 0: EJB µRB
	fail() // level 1: WAR
	fail() // level 2: app
	fail() // level 3: process
	fail() // level 4: node
	fail() // level 5: human

	if len(fr.micro) != 1 {
		t.Fatalf("µRBs = %v, want 1", fr.micro)
	}
	want := []core.Scope{core.ScopeWAR, core.ScopeApp, core.ScopeProcess, core.ScopeNode}
	if len(fr.scopes) != len(want) {
		t.Fatalf("scopes = %v, want %v", fr.scopes, want)
	}
	for i := range want {
		if fr.scopes[i] != want[i] {
			t.Fatalf("scopes = %v, want %v", fr.scopes, want)
		}
	}
	if len(human) != 1 {
		t.Fatalf("human notifications = %v", human)
	}
	if !m.HumanNotified() {
		t.Fatal("HumanNotified() = false")
	}
	// Once the human is notified, RM stops acting.
	fail()
	if len(fr.scopes) != len(want) {
		t.Fatal("RM acted after giving up")
	}
}

func TestEscalationResetsAcrossWindow(t *testing.T) {
	k := sim.NewKernel(1)
	fr := &fakeRebooter{}
	m := NewManager(k, fr, Config{Threshold: 2, Grace: time.Second, EscalationWindow: time.Minute})
	for i := 0; i < 2; i++ {
		m.Report(Report{Op: ebid.ViewItem})
	}
	k.RunFor(30 * time.Second)
	// Well past the escalation window: same target starts at level 0.
	k.RunFor(10 * time.Minute)
	for i := 0; i < 2; i++ {
		m.Report(Report{Op: ebid.ViewItem})
	}
	k.Drain()
	if len(fr.micro) != 2 || len(fr.scopes) != 0 {
		t.Fatalf("micro=%v scopes=%v, want two component-level µRBs", fr.micro, fr.scopes)
	}
}

func TestReportsMutedDuringRecovery(t *testing.T) {
	k := sim.NewKernel(1)
	fr := &fakeRebooter{cost: 10 * time.Second}
	m := NewManager(k, fr, Config{Threshold: 2, Grace: 5 * time.Second})
	for i := 0; i < 2; i++ {
		m.Report(Report{Op: ebid.ViewItem})
	}
	// Recovery in progress: the flood of residual failures is ignored.
	for i := 0; i < 100; i++ {
		m.Report(Report{Op: ebid.ViewItem})
	}
	k.RunFor(20 * time.Second)
	if len(fr.micro) != 1 {
		t.Fatalf("recoveries = %d, want 1 (reports during recovery muted)", len(fr.micro))
	}
}

func TestDetectionDelayPostponesRecovery(t *testing.T) {
	k := sim.NewKernel(1)
	fr := &fakeRebooter{}
	m := NewManager(k, fr, Config{Threshold: 1, DetectionDelay: 30 * time.Second})
	m.Report(Report{Op: ebid.ViewItem})
	k.RunFor(10 * time.Second)
	if len(fr.micro) != 0 {
		t.Fatal("recovery fired before the detection delay")
	}
	k.RunFor(25 * time.Second)
	if len(fr.micro) != 1 {
		t.Fatal("recovery did not fire after the detection delay")
	}
}

func TestLBNotifications(t *testing.T) {
	k := sim.NewKernel(1)
	fr := &fakeRebooter{}
	m := NewManager(k, fr, Config{Threshold: 1, Grace: time.Second})
	var events []string
	m.OnRecoveryStart = func() { events = append(events, "start") }
	m.OnRecoveryEnd = func() { events = append(events, "end") }
	m.Report(Report{Op: ebid.ViewItem})
	k.RunFor(time.Minute)
	if len(events) != 2 || events[0] != "start" || events[1] != "end" {
		t.Fatalf("events = %v", events)
	}
}

func TestActionFailureNotifiesHuman(t *testing.T) {
	k := sim.NewKernel(1)
	fr := &fakeRebooter{failAll: true}
	var human []string
	m := NewManager(k, fr, Config{Threshold: 1})
	m.NotifyHuman = func(r string) { human = append(human, r) }
	m.Report(Report{Op: ebid.ViewItem})
	k.Drain()
	if len(human) != 1 {
		t.Fatalf("human = %v", human)
	}
}

func TestUnknownOpStillScored(t *testing.T) {
	k := sim.NewKernel(1)
	fr := &fakeRebooter{}
	m := NewManager(k, fr, Config{Threshold: 1})
	m.Report(Report{Op: "TotallyUnknown"})
	k.Drain()
	// Unknown URLs fall back to blaming the WAR.
	if len(fr.scopes) != 1 || fr.scopes[0] != core.ScopeWAR {
		t.Fatalf("scopes = %v, want WAR reboot", fr.scopes)
	}
}
