package recovery

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ebid"
	"repro/internal/sim"
)

// fakeRebooter records recovery actions without a real node.
type fakeRebooter struct {
	micro  [][]string
	scopes []core.Scope
	// failAll makes every action error (for NotifyHuman paths).
	failAll bool
	cost    time.Duration
}

func (f *fakeRebooter) Microreboot(names ...string) (*core.Reboot, error) {
	if f.failAll {
		return nil, core.ErrNotBound
	}
	f.micro = append(f.micro, names)
	return &core.Reboot{Scope: core.ScopeComponent, Members: names, Reinit: f.costOr(500 * time.Millisecond)}, nil
}

func (f *fakeRebooter) RebootScope(scope core.Scope) (*core.Reboot, error) {
	if f.failAll {
		return nil, core.ErrNotBound
	}
	f.scopes = append(f.scopes, scope)
	return &core.Reboot{Scope: scope, Reinit: f.costOr(time.Second)}, nil
}

func (f *fakeRebooter) costOr(d time.Duration) time.Duration {
	if f.cost > 0 {
		return f.cost
	}
	return d
}

func (f *fakeRebooter) Recovering() bool { return false }

func TestDiagnosisBlamesTheFailingOperation(t *testing.T) {
	k := sim.NewKernel(1)
	fr := &fakeRebooter{}
	m := NewManager(k, fr, Config{Threshold: 3})
	for i := 0; i < 3; i++ {
		m.Report(Report{Op: ebid.MakeBid, Kind: "http-error"})
	}
	k.Drain()
	if len(fr.micro) != 1 || fr.micro[0][0] != ebid.MakeBid {
		t.Fatalf("recovery actions = %v, want µRB of MakeBid", fr.micro)
	}
	if len(m.Actions) != 1 || m.Actions[0].Scope != core.ScopeComponent {
		t.Fatalf("actions = %+v", m.Actions)
	}
}

func TestDiagnosisBlamesSharedEntityAcrossOps(t *testing.T) {
	// Failures across many different operations that all touch the
	// EntityGroup should accumulate on an entity, not any single session
	// component.
	k := sim.NewKernel(1)
	fr := &fakeRebooter{}
	m := NewManager(k, fr, Config{Threshold: 2})
	m.Report(Report{Op: ebid.ViewItem})
	m.Report(Report{Op: ebid.SearchItemsByCategory})
	m.Report(Report{Op: ebid.MakeBid})
	m.Report(Report{Op: ebid.DoBuyNow})
	k.Drain()
	if len(fr.micro) != 1 {
		t.Fatalf("recoveries = %v", fr.micro)
	}
	if fr.micro[0][0] != ebid.EntItem {
		t.Fatalf("blamed %v, want the shared Item entity", fr.micro[0])
	}
}

func TestEscalationLadder(t *testing.T) {
	k := sim.NewKernel(1)
	fr := &fakeRebooter{}
	var human []string
	m := NewManager(k, fr, Config{Threshold: 2, Grace: time.Second, EscalationWindow: 10 * time.Minute})
	m.NotifyHuman = func(reason string) { human = append(human, reason) }

	fail := func() {
		for i := 0; i < 2; i++ {
			m.Report(Report{Op: ebid.ViewItem})
		}
		k.RunFor(30 * time.Second)
	}
	fail() // level 0: EJB µRB
	fail() // level 1: WAR
	fail() // level 2: app
	fail() // level 3: process
	fail() // level 4: node
	fail() // level 5: human

	if len(fr.micro) != 1 {
		t.Fatalf("µRBs = %v, want 1", fr.micro)
	}
	want := []core.Scope{core.ScopeWAR, core.ScopeApp, core.ScopeProcess, core.ScopeNode}
	if len(fr.scopes) != len(want) {
		t.Fatalf("scopes = %v, want %v", fr.scopes, want)
	}
	for i := range want {
		if fr.scopes[i] != want[i] {
			t.Fatalf("scopes = %v, want %v", fr.scopes, want)
		}
	}
	if len(human) != 1 {
		t.Fatalf("human notifications = %v", human)
	}
	if !m.HumanNotified() {
		t.Fatal("HumanNotified() = false")
	}
	// Once the human is notified, RM stops acting.
	fail()
	if len(fr.scopes) != len(want) {
		t.Fatal("RM acted after giving up")
	}
}

func TestEscalationResetsAcrossWindow(t *testing.T) {
	k := sim.NewKernel(1)
	fr := &fakeRebooter{}
	m := NewManager(k, fr, Config{Threshold: 2, Grace: time.Second, EscalationWindow: time.Minute})
	for i := 0; i < 2; i++ {
		m.Report(Report{Op: ebid.ViewItem})
	}
	k.RunFor(30 * time.Second)
	// Well past the escalation window: same target starts at level 0.
	k.RunFor(10 * time.Minute)
	for i := 0; i < 2; i++ {
		m.Report(Report{Op: ebid.ViewItem})
	}
	k.Drain()
	if len(fr.micro) != 2 || len(fr.scopes) != 0 {
		t.Fatalf("micro=%v scopes=%v, want two component-level µRBs", fr.micro, fr.scopes)
	}
}

func TestReportsMutedDuringRecovery(t *testing.T) {
	k := sim.NewKernel(1)
	fr := &fakeRebooter{cost: 10 * time.Second}
	m := NewManager(k, fr, Config{Threshold: 2, Grace: 5 * time.Second})
	for i := 0; i < 2; i++ {
		m.Report(Report{Op: ebid.ViewItem})
	}
	// Recovery in progress: the flood of residual failures is ignored.
	for i := 0; i < 100; i++ {
		m.Report(Report{Op: ebid.ViewItem})
	}
	k.RunFor(20 * time.Second)
	if len(fr.micro) != 1 {
		t.Fatalf("recoveries = %d, want 1 (reports during recovery muted)", len(fr.micro))
	}
}

func TestGraceMutesResidualReportsAfterRecovery(t *testing.T) {
	// Regression: finishRecovery used to set mutedUntil = now(), so the
	// Grace window never muted anything — the first residual failure
	// report after a recovery immediately re-triggered diagnosis.
	k := sim.NewKernel(1)
	fr := &fakeRebooter{cost: 500 * time.Millisecond}
	m := NewManager(k, fr, Config{Threshold: 1, Grace: 5 * time.Second})
	m.Report(Report{Op: ebid.ViewItem})
	k.RunFor(time.Second) // recovery completes at 500ms; muted until 5.5s
	if len(fr.micro) != 1 {
		t.Fatalf("recoveries = %d, want 1", len(fr.micro))
	}
	m.Report(Report{Op: ebid.ViewItem}) // residual failure at t=1s
	k.RunFor(time.Second)
	if len(fr.micro) != 1 {
		t.Fatalf("residual report inside the grace window re-triggered recovery (got %d)", len(fr.micro))
	}
	k.RunFor(10 * time.Second) // well past mutedUntil
	m.Report(Report{Op: ebid.ViewItem})
	k.Drain()
	// The repeat recovery escalates (same target within the window), so
	// count recovery actions rather than µRBs.
	if len(m.Actions) != 2 {
		t.Fatalf("report after the grace window was ignored (actions = %+v)", m.Actions)
	}
}

// fakeBricks is a BrickStore double: bricks die and restart by name.
type fakeBricks struct {
	dead      []string
	restarted []string
	fail      bool
	// failNames makes specific bricks refuse to restart (a retired brick
	// whose shard was removed from the elastic ring).
	failNames map[string]bool
}

func (f *fakeBricks) DeadBricks() []string { return append([]string(nil), f.dead...) }

func (f *fakeBricks) RestartBrick(name string) (time.Duration, error) {
	if f.fail || f.failNames[name] {
		return 0, core.ErrNotBound
	}
	f.restarted = append(f.restarted, name)
	for i, d := range f.dead {
		if d == name {
			f.dead = append(f.dead[:i], f.dead[i+1:]...)
			break
		}
	}
	return 2 * time.Second, nil
}

func TestBrickFailureRecoversBrickLikeAnEJB(t *testing.T) {
	k := sim.NewKernel(1)
	fr := &fakeRebooter{}
	fb := &fakeBricks{dead: []string{"ssm/s0-r1"}}
	m := NewManager(k, fr, Config{Threshold: 3})
	m.Bricks = fb
	for i := 0; i < 3; i++ {
		m.ReportBrickFailure("ssm/s0-r1")
	}
	k.Drain()
	if len(fb.restarted) != 1 || fb.restarted[0] != "ssm/s0-r1" {
		t.Fatalf("restarted = %v, want the dead brick", fb.restarted)
	}
	if len(fr.micro) != 0 || len(fr.scopes) != 0 {
		t.Fatalf("RM rebooted application components (%v/%v) for a brick failure", fr.micro, fr.scopes)
	}
	if len(m.Actions) != 1 || m.Actions[0].Target != "ssm-bricks" || m.Actions[0].Scope != core.ScopeComponent {
		t.Fatalf("actions = %+v", m.Actions)
	}
	if got := m.Actions[0].Reboot.Duration(); got != 2*time.Second {
		t.Fatalf("modeled brick recovery = %v, want 2s", got)
	}
}

func TestDeadBrickPreemptsComponentPolicy(t *testing.T) {
	// Session failures diagnosed onto a component still recover the dead
	// brick first — the cheapest explanation for store-wide failures.
	k := sim.NewKernel(1)
	fr := &fakeRebooter{}
	fb := &fakeBricks{dead: []string{"ssm/s2-r0"}}
	m := NewManager(k, fr, Config{Threshold: 3})
	m.Bricks = fb
	for i := 0; i < 3; i++ {
		m.Report(Report{Op: ebid.MakeBid, Kind: "http-error"})
	}
	k.Drain()
	if len(fb.restarted) != 1 {
		t.Fatalf("dead brick not restarted: %v", fb.restarted)
	}
	if len(fr.micro) != 0 {
		t.Fatalf("component µRB ran before brick recovery: %v", fr.micro)
	}
	// With the brick healthy again, recurring failures walk the normal
	// component policy.
	k.RunFor(time.Minute)
	for i := 0; i < 3; i++ {
		m.Report(Report{Op: ebid.MakeBid, Kind: "http-error"})
	}
	k.Drain()
	if len(fr.micro) != 1 || fr.micro[0][0] != ebid.MakeBid {
		t.Fatalf("component recovery after brick heal = %v", fr.micro)
	}
}

func TestForceScopeOverridesBrickRecovery(t *testing.T) {
	// The legacy "restart the JVM for everything" baseline (ForceScope)
	// must not quietly use the cheap brick recovery path.
	k := sim.NewKernel(1)
	fr := &fakeRebooter{}
	fb := &fakeBricks{dead: []string{"ssm/s0-r0"}}
	m := NewManager(k, fr, Config{Threshold: 1, ForceScope: core.ScopeProcess})
	m.Bricks = fb
	m.ReportBrickFailure("ssm/s0-r0")
	k.Drain()
	if len(fb.restarted) != 0 {
		t.Fatalf("ForceScope baseline restarted bricks: %v", fb.restarted)
	}
	if len(fr.scopes) != 1 || fr.scopes[0] != core.ScopeProcess {
		t.Fatalf("scopes = %v, want the forced process restart", fr.scopes)
	}
}

func TestRetiredBrickSkippedDuringBrickRecovery(t *testing.T) {
	// A brick can vanish between the heartbeat-loss report and the
	// recovery action — its shard was drained and retired by an elastic
	// ring change. RM must restart the bricks that still exist and not
	// treat the vanished one as an emergency.
	k := sim.NewKernel(1)
	fr := &fakeRebooter{}
	fb := &fakeBricks{
		dead:      []string{"ssm/s0-r0", "ssm/s1-r2"},
		failNames: map[string]bool{"ssm/s0-r0": true}, // retired mid-flight
	}
	var human []string
	m := NewManager(k, fr, Config{Threshold: 1})
	m.Bricks = fb
	m.NotifyHuman = func(r string) { human = append(human, r) }
	m.ReportBrickFailure("ssm/s1-r2")
	k.Drain()
	if len(human) != 0 {
		t.Fatalf("human notified for a retired brick: %v", human)
	}
	if len(fb.restarted) != 1 || fb.restarted[0] != "ssm/s1-r2" {
		t.Fatalf("restarted = %v, want just the live dead brick", fb.restarted)
	}
	if len(m.Actions) != 1 {
		t.Fatalf("actions = %+v", m.Actions)
	}
	if members := m.Actions[0].Reboot.Members; len(members) != 1 || members[0] != "ssm/s1-r2" {
		t.Fatalf("action members = %v, want only the restarted brick", members)
	}
}

func TestBrickRestartFailureNotifiesHuman(t *testing.T) {
	k := sim.NewKernel(1)
	fr := &fakeRebooter{}
	fb := &fakeBricks{dead: []string{"ssm/s0-r0"}, fail: true}
	var human []string
	m := NewManager(k, fr, Config{Threshold: 1})
	m.Bricks = fb
	m.NotifyHuman = func(r string) { human = append(human, r) }
	m.ReportBrickFailure("ssm/s0-r0")
	k.Drain()
	if len(human) != 1 {
		t.Fatalf("human notifications = %v", human)
	}
}

func TestDetectionDelayPostponesRecovery(t *testing.T) {
	k := sim.NewKernel(1)
	fr := &fakeRebooter{}
	m := NewManager(k, fr, Config{Threshold: 1, DetectionDelay: 30 * time.Second})
	m.Report(Report{Op: ebid.ViewItem})
	k.RunFor(10 * time.Second)
	if len(fr.micro) != 0 {
		t.Fatal("recovery fired before the detection delay")
	}
	k.RunFor(25 * time.Second)
	if len(fr.micro) != 1 {
		t.Fatal("recovery did not fire after the detection delay")
	}
}

func TestLBNotifications(t *testing.T) {
	k := sim.NewKernel(1)
	fr := &fakeRebooter{}
	m := NewManager(k, fr, Config{Threshold: 1, Grace: time.Second})
	var events []string
	m.OnRecoveryStart = func() { events = append(events, "start") }
	m.OnRecoveryEnd = func() { events = append(events, "end") }
	m.Report(Report{Op: ebid.ViewItem})
	k.RunFor(time.Minute)
	if len(events) != 2 || events[0] != "start" || events[1] != "end" {
		t.Fatalf("events = %v", events)
	}
}

func TestActionFailureNotifiesHuman(t *testing.T) {
	k := sim.NewKernel(1)
	fr := &fakeRebooter{failAll: true}
	var human []string
	m := NewManager(k, fr, Config{Threshold: 1})
	m.NotifyHuman = func(r string) { human = append(human, r) }
	m.Report(Report{Op: ebid.ViewItem})
	k.Drain()
	if len(human) != 1 {
		t.Fatalf("human = %v", human)
	}
}

func TestUnknownOpStillScored(t *testing.T) {
	k := sim.NewKernel(1)
	fr := &fakeRebooter{}
	m := NewManager(k, fr, Config{Threshold: 1})
	m.Report(Report{Op: "TotallyUnknown"})
	k.Drain()
	// Unknown URLs fall back to blaming the WAR.
	if len(fr.scopes) != 1 || fr.scopes[0] != core.ScopeWAR {
		t.Fatalf("scopes = %v, want WAR reboot", fr.scopes)
	}
}
