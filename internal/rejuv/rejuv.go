// Package rejuv implements the microrejuvenation service of Section 6.4:
// a server-side service that watches available JVM memory and, when it
// drops below a low watermark (Malarm), microreboots components in a
// rolling fashion — ordered by how much memory each component's last µRB
// released — until availability exceeds a high watermark (Msufficient).
// If rebooting every component is not enough, the whole process is
// restarted, exactly as the paper's service falls back.
package rejuv

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// Rebooter is the node-level recovery interface the service drives
// (*cluster.Node implements it).
type Rebooter interface {
	Microreboot(names ...string) (*core.Reboot, error)
	RebootScope(scope core.Scope) (*core.Reboot, error)
	Recovering() bool
}

// Heap models the JVM heap: fixed size, a baseline in use by the server
// itself, component leaks tracked by the containers, and an optional
// extra source (leaks outside the application).
type Heap struct {
	Size     int64
	Baseline int64
	server   *core.Server
	extra    func() int64
}

// NewHeap builds a heap model over the server's containers. extra may be
// nil.
func NewHeap(size, baseline int64, server *core.Server, extra func() int64) *Heap {
	return &Heap{Size: size, Baseline: baseline, server: server, extra: extra}
}

// Available returns the modeled free memory.
func (h *Heap) Available() int64 {
	used := h.Baseline
	for _, name := range h.server.Components() {
		c, err := h.server.Container(name)
		if err != nil {
			continue
		}
		used += c.LeakedBytes()
	}
	if h.extra != nil {
		used += h.extra()
	}
	avail := h.Size - used
	if avail < 0 {
		avail = 0
	}
	return avail
}

// Config parameterizes the rejuvenation service. The paper's experiment
// uses a 1 GB heap with Malarm at 35% and Msufficient at 80%.
type Config struct {
	Malarm      int64
	Msufficient int64
	// Interval between memory checks (default 5 s).
	Interval time.Duration
	// UseProcessRestart switches the service to whole-JVM rejuvenation
	// (the paper's baseline comparison).
	UseProcessRestart bool
}

// Service is the rejuvenation service for one node.
type Service struct {
	kernel *sim.Kernel
	node   Rebooter
	heap   *Heap
	server *core.Server
	cfg    Config

	// released remembers how much memory each recovery group's last µRB
	// released; the candidate list is kept sorted by it, descending.
	released map[string]int64

	// Samples records (time, available) pairs for the Figure 6 plot.
	Samples []Sample
	// Rejuvenations counts rolling-µRB episodes; ProcessRestarts counts
	// JVM-level rejuvenations.
	Rejuvenations   int
	ProcessRestarts int
	// ComponentReboots counts individual group µRBs performed.
	ComponentReboots int

	rejuvenating bool
	stopped      bool
}

// Sample is one memory observation.
type Sample struct {
	At        time.Duration
	Available int64
}

// NewService builds a rejuvenation service.
func NewService(k *sim.Kernel, node Rebooter, server *core.Server, heap *Heap, cfg Config) *Service {
	if cfg.Interval == 0 {
		cfg.Interval = 5 * time.Second
	}
	return &Service{
		kernel:   k,
		node:     node,
		heap:     heap,
		server:   server,
		cfg:      cfg,
		released: map[string]int64{},
	}
}

// Start begins periodic memory checks.
func (s *Service) Start() { s.kernel.Schedule(s.cfg.Interval, s.tick) }

// Stop halts the service.
func (s *Service) Stop() { s.stopped = true }

func (s *Service) tick() {
	if s.stopped {
		return
	}
	avail := s.heap.Available()
	s.Samples = append(s.Samples, Sample{At: s.kernel.Now(), Available: avail})
	if !s.rejuvenating && avail < s.cfg.Malarm {
		s.rejuvenating = true
		if s.cfg.UseProcessRestart {
			s.processRejuvenate()
		} else {
			s.microRejuvenate(s.candidates(), 0)
		}
	}
	s.kernel.Schedule(s.cfg.Interval, s.tick)
}

// candidates returns recovery-group representatives sorted by expected
// released memory (descending), with never-measured groups last in
// deterministic order — the paper's self-sorting candidate list.
func (s *Service) candidates() []string {
	seen := map[string]bool{}
	var groups []string
	for _, name := range s.server.Components() {
		g, err := s.server.RecoveryGroup(name)
		if err != nil || len(g) == 0 {
			continue
		}
		rep := g[0]
		if !seen[rep] {
			seen[rep] = true
			groups = append(groups, rep)
		}
	}
	sort.SliceStable(groups, func(i, j int) bool {
		return s.released[groups[i]] > s.released[groups[j]]
	})
	return groups
}

// microRejuvenate reboots candidates one at a time until memory recovers.
func (s *Service) microRejuvenate(cands []string, idx int) {
	if s.stopped {
		s.rejuvenating = false
		return
	}
	if s.heap.Available() >= s.cfg.Msufficient {
		s.rejuvenating = false
		s.Rejuvenations++
		return
	}
	if idx >= len(cands) {
		// Every component rebooted and still below threshold: restart
		// the whole JVM.
		s.processRejuvenate()
		return
	}
	rep := cands[idx]
	rb, err := s.node.Microreboot(rep)
	if err != nil {
		s.rejuvenating = false
		return
	}
	s.ComponentReboots++
	s.released[rep] = rb.FreedBytes
	s.kernel.Schedule(rb.Duration(), func() {
		s.Samples = append(s.Samples, Sample{At: s.kernel.Now(), Available: s.heap.Available()})
		s.microRejuvenate(cands, idx+1)
	})
}

// processRejuvenate restarts the JVM process.
func (s *Service) processRejuvenate() {
	rb, err := s.node.RebootScope(core.ScopeProcess)
	if err != nil {
		s.rejuvenating = false
		return
	}
	s.ProcessRestarts++
	s.kernel.Schedule(rb.Duration(), func() {
		s.rejuvenating = false
		s.Rejuvenations++
		s.Samples = append(s.Samples, Sample{At: s.kernel.Now(), Available: s.heap.Available()})
	})
}
