package rejuv

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/ebid"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/store/db"
	"repro/internal/store/session"
)

func testNode(t *testing.T, k *sim.Kernel) (*cluster.Node, *faults.Injector) {
	t.Helper()
	d := db.New(nil)
	cfg := ebid.DatasetConfig{Users: 50, Items: 100, BidsPerItem: 3, Categories: 5, Regions: 5, OldItems: 10}
	if err := ebid.LoadDataset(d, cfg); err != nil {
		t.Fatal(err)
	}
	store := session.NewFastS()
	n, err := cluster.NewNode(k, d, store, cluster.NodeConfig{Name: "n0"})
	if err != nil {
		t.Fatal(err)
	}
	return n, faults.NewInjector(n.Server(), d, store)
}

func TestHeapAccounting(t *testing.T) {
	k := sim.NewKernel(1)
	n, inj := testNode(t, k)
	heap := NewHeap(1<<30, 100<<20, n.Server(), func() int64 {
		intra, _ := inj.JVMLeakBytes()
		return intra
	})
	base := heap.Available()
	if base != 1<<30-100<<20 {
		t.Fatalf("baseline available = %d", base)
	}
	c, _ := n.Server().Container(ebid.ViewItem)
	c.Leak(50 << 20)
	if heap.Available() != base-50<<20 {
		t.Fatalf("available after leak = %d", heap.Available())
	}
	inj.GrowJVMLeak(10<<20, 0)
	if heap.Available() != base-60<<20 {
		t.Fatalf("available with extra = %d", heap.Available())
	}
}

func TestMicrorejuvenationReclaimsMemory(t *testing.T) {
	k := sim.NewKernel(2)
	n, _ := testNode(t, k)
	heap := NewHeap(1<<30, 100<<20, n.Server(), nil)
	svc := NewService(k, n, n.Server(), heap, Config{
		Malarm:      350 << 20,
		Msufficient: 800 << 20,
		Interval:    5 * time.Second,
	})
	svc.Start()

	// Leak 700 MB into ViewItem: available drops below Malarm.
	c, _ := n.Server().Container(ebid.ViewItem)
	c.Leak(700 << 20)
	k.RunFor(2 * time.Minute)
	if avail := heap.Available(); avail < 800<<20 {
		t.Fatalf("available = %dMB, want ≥800MB after rejuvenation", avail>>20)
	}
	if svc.Rejuvenations != 1 {
		t.Fatalf("rejuvenations = %d, want 1", svc.Rejuvenations)
	}
	if svc.ProcessRestarts != 0 {
		t.Fatalf("process restarts = %d, want 0", svc.ProcessRestarts)
	}
	if n.Down() {
		t.Fatal("node went down during microrejuvenation")
	}
	svc.Stop()
}

func TestLearningOrdersCandidates(t *testing.T) {
	k := sim.NewKernel(3)
	n, _ := testNode(t, k)
	heap := NewHeap(1<<30, 100<<20, n.Server(), nil)
	svc := NewService(k, n, n.Server(), heap, Config{
		Malarm: 350 << 20, Msufficient: 800 << 20, Interval: 5 * time.Second,
	})
	svc.Start()
	leak := func() {
		c, _ := n.Server().Container(ebid.ViewItem)
		c.Leak(650 << 20)
	}
	leak()
	k.RunFor(5 * time.Minute) // first rejuvenation: service learns who leaks
	firstRoundReboots := svc.ComponentReboots
	leak()
	k.RunFor(5 * time.Minute) // second: ViewItem is first on the list
	secondRoundReboots := svc.ComponentReboots - firstRoundReboots
	if secondRoundReboots >= firstRoundReboots {
		t.Fatalf("learning ineffective: first=%d second=%d reboots", firstRoundReboots, secondRoundReboots)
	}
	if secondRoundReboots != 1 {
		t.Fatalf("second rejuvenation took %d reboots, want 1 (ViewItem first)", secondRoundReboots)
	}
	svc.Stop()
}

func TestFallbackToProcessRestart(t *testing.T) {
	k := sim.NewKernel(4)
	n, inj := testNode(t, k)
	// The leak is outside the application: no component µRB can reclaim
	// it, so the service must escalate to a JVM restart.
	heap := NewHeap(1<<30, 100<<20, n.Server(), func() int64 {
		intra, _ := inj.JVMLeakBytes()
		return intra
	})
	svc := NewService(k, n, n.Server(), heap, Config{
		Malarm: 350 << 20, Msufficient: 800 << 20, Interval: 5 * time.Second,
	})
	svc.Start()
	inj.GrowJVMLeak(700<<20, 0)
	k.RunFor(5 * time.Minute)
	if svc.ProcessRestarts != 1 {
		t.Fatalf("process restarts = %d, want 1", svc.ProcessRestarts)
	}
	if avail := heap.Available(); avail < 800<<20 {
		t.Fatalf("available = %dMB after process rejuvenation", avail>>20)
	}
	svc.Stop()
}

func TestWholeProcessRejuvenationMode(t *testing.T) {
	k := sim.NewKernel(5)
	n, _ := testNode(t, k)
	heap := NewHeap(1<<30, 100<<20, n.Server(), nil)
	svc := NewService(k, n, n.Server(), heap, Config{
		Malarm: 350 << 20, Msufficient: 800 << 20,
		Interval: 5 * time.Second, UseProcessRestart: true,
	})
	svc.Start()
	c, _ := n.Server().Container(ebid.ViewItem)
	c.Leak(700 << 20)
	k.RunFor(2 * time.Minute)
	if svc.ProcessRestarts != 1 || svc.ComponentReboots != 0 {
		t.Fatalf("restarts=%d µRBs=%d, want 1/0", svc.ProcessRestarts, svc.ComponentReboots)
	}
	svc.Stop()
}

func TestSamplesRecorded(t *testing.T) {
	k := sim.NewKernel(6)
	n, _ := testNode(t, k)
	heap := NewHeap(1<<30, 0, n.Server(), nil)
	svc := NewService(k, n, n.Server(), heap, Config{Malarm: 1, Msufficient: 2, Interval: time.Second})
	svc.Start()
	k.RunFor(10 * time.Second)
	if len(svc.Samples) < 9 {
		t.Fatalf("samples = %d, want ~10", len(svc.Samples))
	}
	svc.Stop()
	k.RunFor(time.Minute)
	after := len(svc.Samples)
	k.RunFor(time.Minute)
	if len(svc.Samples) != after {
		t.Fatal("samples recorded after Stop")
	}
}
