package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
)

// LoadFile parses one spec file.
func LoadFile(path string) (*Spec, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(path, string(src))
}

// LoadDir parses every *.toml under dir (sorted by filename) and rejects
// duplicate scenario names — two specs answering to one name would make
// campaign reports ambiguous.
func LoadDir(dir string) ([]*Spec, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.toml"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("scenario: no *.toml specs under %s", dir)
	}
	sort.Strings(paths)
	var specs []*Spec
	byName := map[string]string{}
	for _, p := range paths {
		s, err := LoadFile(p)
		if err != nil {
			return nil, err
		}
		if prev, dup := byName[s.Name]; dup {
			return nil, fmt.Errorf("%s: duplicate scenario name %q (already defined in %s)", p, s.Name, prev)
		}
		byName[s.Name] = p
		specs = append(specs, s)
	}
	return specs, nil
}

// Result is one campaign entry: the scenario's outcome plus the campaign
// verdict, which inverts Passed for negative controls (an ExpectFail
// scenario proves the assertion machinery fires by failing).
type Result struct {
	Outcome *Outcome
	// Pass is the campaign-level verdict.
	Pass bool
}

// Campaign is a batch of scenario runs.
type Campaign struct {
	Results []Result
	Elapsed time.Duration
}

// Passed reports whether every scenario met its campaign verdict.
func (c *Campaign) Passed() bool {
	for _, r := range c.Results {
		if !r.Pass {
			return false
		}
	}
	return len(c.Results) > 0
}

// RunCampaign runs each spec in order. Run errors (unbuildable
// environments) are returned immediately — they mean the spec is wrong,
// not that an invariant failed.
func RunCampaign(specs []*Spec, o experiments.Options) (*Campaign, error) {
	c := &Campaign{}
	start := time.Now()
	for _, s := range specs {
		out, err := Run(s, o)
		if err != nil {
			return nil, err
		}
		c.Results = append(c.Results, Result{Outcome: out, Pass: out.Passed != out.ExpectFail})
	}
	c.Elapsed = time.Since(start).Round(time.Millisecond)
	return c, nil
}

// Table renders the campaign as a pass/fail matrix.
func (c *Campaign) Table() string {
	var b strings.Builder
	w := 8
	for _, r := range c.Results {
		if len(r.Outcome.Name) > w {
			w = len(r.Outcome.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s  %-7s  %s\n", w, "scenario", "verdict", "detail")
	for _, r := range c.Results {
		verdict := "PASS"
		if !r.Pass {
			verdict = "FAIL"
		}
		detail := summarizeChecks(r.Outcome)
		fmt.Fprintf(&b, "%-*s  %-7s  %s\n", w, r.Outcome.Name, verdict, detail)
	}
	n := 0
	for _, r := range c.Results {
		if r.Pass {
			n++
		}
	}
	fmt.Fprintf(&b, "%d/%d scenarios passed in %v\n", n, len(c.Results), c.Elapsed)
	return b.String()
}

func summarizeChecks(o *Outcome) string {
	if o.ExpectFail {
		if o.Passed {
			return "negative control did NOT fail — assertions are not firing"
		}
		return "negative control failed as designed"
	}
	var bad []string
	for _, ch := range o.Checks {
		if !ch.OK {
			bad = append(bad, fmt.Sprintf("%s got %s want %s", ch.Name, ch.Got, ch.Want))
		}
	}
	if len(bad) == 0 {
		return fmt.Sprintf("%d checks ok", len(o.Checks))
	}
	return strings.Join(bad, "; ")
}

// jsonCheck/jsonResult shape the machine-readable artifact CI uploads.
type jsonCheck struct {
	Name string `json:"name"`
	OK   bool   `json:"ok"`
	Got  string `json:"got"`
	Want string `json:"want"`
}

type jsonResult struct {
	Scenario   string      `json:"scenario"`
	Pass       bool        `json:"pass"`
	ExpectFail bool        `json:"expect_fail,omitempty"`
	Seed       int64       `json:"seed"`
	GoodOps    int64       `json:"good_ops"`
	BadOps     int64       `json:"bad_ops"`
	P99Millis  float64     `json:"p99_ms"`
	Checks     []jsonCheck `json:"checks"`
}

// JSON renders the campaign matrix as an artifact blob.
func (c *Campaign) JSON() ([]byte, error) {
	out := struct {
		Passed  bool         `json:"passed"`
		Results []jsonResult `json:"results"`
	}{Passed: c.Passed()}
	for _, r := range c.Results {
		o := r.Outcome
		jr := jsonResult{
			Scenario:   o.Name,
			Pass:       r.Pass,
			ExpectFail: o.ExpectFail,
			Seed:       o.Seed,
			GoodOps:    o.GoodOps,
			BadOps:     o.BadOps,
			P99Millis:  float64(o.P99) / float64(time.Millisecond),
		}
		for _, ch := range o.Checks {
			jr.Checks = append(jr.Checks, jsonCheck{Name: ch.Name, OK: ch.OK, Got: ch.Got, Want: ch.Want})
		}
		out.Results = append(out.Results, jr)
	}
	return json.MarshalIndent(out, "", "  ")
}

// MatrixSpecs generates the builtin fault × store × routing campaign:
// representative Table-2 fault kinds (plus the brick extensions) crossed
// with both session-store backends and both ends of the routing-policy
// spectrum. Combinations the substrate rules out (brick faults without
// the brick cluster) are skipped rather than emitted as expected
// failures, so every generated scenario asserts real invariants.
func MatrixSpecs() []*Spec {
	type kindCase struct {
		token      string
		component  string
		mode       string
		session    string
		leak       int64
		bricksOnly bool
	}
	kinds := []kindCase{
		{token: "deadlock", component: "MakeBid"},
		{token: "infinite-loop", component: "ViewItem"},
		{token: "transient-exception", component: "BrowseCategories"},
		{token: "corrupt-naming", component: "ViewUserInfo", mode: "null"},
		{token: "app-memory-leak", component: "ViewItem", leak: 1 << 20},
		{token: "brick-crash", component: "@heaviest", bricksOnly: true},
		{token: "brick-slow", bricksOnly: true},
		{token: "corrupt-ssm", session: "@live", bricksOnly: true},
	}
	stores := []string{"fasts", "ssm-cluster"}
	routings := []string{RoutingRoundRobin, RoutingShedLeast}

	var specs []*Spec
	for _, kc := range kinds {
		for _, store := range stores {
			if kc.bricksOnly && store != "ssm-cluster" {
				continue
			}
			for _, routing := range routings {
				s := &Spec{
					Name: fmt.Sprintf("matrix/%s/%s/%s", kc.token, store, routing),
					Description: fmt.Sprintf("builtin matrix: %s under %s store, %s routing",
						kc.token, store, routing),
					Cluster: ClusterSpec{
						Nodes:        2,
						Store:        store,
						Routing:      routing,
						DegradedNode: -1,
					},
					Load: LoadSpec{
						Clients:      120,
						Warmup:       time.Minute,
						Run:          2 * time.Minute,
						ScaleClients: true,
					},
					Plane: PlaneSpec{Recovery: true, RecoveryThreshold: 3},
					Faults: []FaultSpec{{
						At:          70 * time.Second,
						Kind:        kindNames[kc.token],
						Component:   kc.component,
						Mode:        faults.Mode(kc.mode),
						Session:     kc.session,
						LeakPerCall: kc.leak,
					}},
				}
				if routing == RoutingShedLeast {
					s.Cluster.ShedWatermark = 64
				}
				zero := 0
				s.Assert.HumanPages = &zero
				s.Assert.MinGoodOps = 200
				if store == "ssm-cluster" {
					s.Assert.LostSessions = &zero
				}
				specs = append(specs, s)
			}
		}
	}
	return specs
}
