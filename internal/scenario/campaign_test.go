package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func scenariosDir(t *testing.T) string {
	t.Helper()
	dir := filepath.Join("..", "..", "scenarios")
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("scenarios dir missing: %v", err)
	}
	return dir
}

func TestLoadDirShippedLibrary(t *testing.T) {
	specs, err := LoadDir(scenariosDir(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) < 12 {
		t.Fatalf("shipped scenario library has %d specs, want >= 12", len(specs))
	}
	names := map[string]bool{}
	negatives := 0
	for _, s := range specs {
		if names[s.Name] {
			t.Fatalf("duplicate scenario name %q", s.Name)
		}
		names[s.Name] = true
		if s.ExpectFail {
			negatives++
		}
		if s.Description == "" {
			t.Errorf("scenario %q has no description", s.Name)
		}
	}
	if negatives == 0 {
		t.Fatal("library carries no negative-control (expect_fail) scenario")
	}
	for _, ported := range []string{"brickcrash", "elastic", "fleet"} {
		if !names[ported] {
			t.Errorf("ported figure scenario %q missing from library", ported)
		}
	}
}

func TestLoadDirRejectsDuplicateNames(t *testing.T) {
	dir := t.TempDir()
	spec := "name = \"twin\"\n[load]\nclients = 1\nrun = \"1s\"\n"
	for _, f := range []string{"a.toml", "b.toml"} {
		if err := os.WriteFile(filepath.Join(dir, f), []byte(spec), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, err := LoadDir(dir)
	if err == nil {
		t.Fatal("duplicate scenario names accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `duplicate scenario name "twin"`) ||
		!strings.Contains(msg, "a.toml") || !strings.Contains(msg, "b.toml") {
		t.Fatalf("error does not name both files: %v", err)
	}
}

func TestMatrixSpecsCrossTheCampaignAxes(t *testing.T) {
	specs := MatrixSpecs()
	if len(specs) != 26 {
		t.Fatalf("matrix size = %d, want 26 (8 kinds × 2 stores × 2 routings − 6 brick×fasts skips)", len(specs))
	}
	names := map[string]bool{}
	stores, routings, kinds := map[string]bool{}, map[string]bool{}, map[string]bool{}
	for _, s := range specs {
		if names[s.Name] {
			t.Fatalf("duplicate matrix name %q", s.Name)
		}
		names[s.Name] = true
		stores[s.Cluster.Store] = true
		routings[s.Cluster.Routing] = true
		if len(s.Faults) != 1 {
			t.Fatalf("matrix spec %q has %d faults, want 1", s.Name, len(s.Faults))
		}
		kinds[kindToken(s.Faults[0].Kind)] = true
		// Every generated spec must satisfy the same validation a file
		// would: the matrix is not allowed to cheat the schema.
		if err := s.validate("matrix"); err != nil {
			t.Errorf("matrix spec %q fails validation: %v", s.Name, err)
		}
		// And must survive a Marshal/Parse round-trip, proving the whole
		// matrix is expressible as on-disk scenario files.
		round, err := Parse(s.Name, s.Marshal())
		if err != nil {
			t.Fatalf("matrix spec %q does not re-parse: %v\n%s", s.Name, err, s.Marshal())
		}
		if !reflect.DeepEqual(s, round) {
			t.Fatalf("matrix spec %q drifts through Marshal/Parse:\n%s", s.Name, s.Marshal())
		}
	}
	if !stores["fasts"] || !stores["ssm-cluster"] {
		t.Fatalf("stores covered = %v, want fasts and ssm-cluster", stores)
	}
	if !routings[RoutingRoundRobin] || !routings[RoutingShedLeast] {
		t.Fatalf("routings covered = %v", routings)
	}
	if len(kinds) != 8 {
		t.Fatalf("fault kinds covered = %v, want 8", kinds)
	}
}
