package scenario

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/controlplane"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/recovery"
	"repro/internal/workload"
)

// Check is one evaluated invariant.
type Check struct {
	Name string
	OK   bool
	Got  string
	Want string
}

// Outcome is the structured result of one scenario run: the measured
// counters plus every invariant verdict.
type Outcome struct {
	Name       string
	ExpectFail bool
	// Passed reports whether every asserted invariant held. A campaign
	// inverts it for ExpectFail scenarios.
	Passed bool
	Checks []Check

	P50, P95, P99 time.Duration
	Over8s        int64
	GoodOps       int64
	BadOps        int64
	// FailuresDelta is BadOps growth after the warmup baseline.
	FailuresDelta int64
	// Goodput is the action-weighted throughput over the last quarter of
	// the measured window (ops/s).
	Goodput       float64
	LostSessions  int
	HumanPages    int
	Shed          int64
	Rejuvenations int64
	BrickRestarts int
	RingVersion   int
	Converged     bool
	ActiveFaults  int
	Sessions      int
	Seed          int64
}

// Run interprets one scenario spec onto a fresh harness environment and
// evaluates its invariants. Spec errors (bad store names, impossible
// quorums) come back as errors; invariant violations come back inside a
// non-nil Outcome with Passed == false.
func Run(spec *Spec, o experiments.Options) (*Outcome, error) {
	if spec.Seed != nil && !o.SeedSet {
		o.Seed, o.SeedSet = *spec.Seed, true
	}

	c := spec.Cluster
	hcfg := experiments.HarnessConfig{
		Nodes:       c.Nodes,
		Store:       c.Store,
		Shards:      c.Shards,
		Replicas:    c.Replicas,
		WriteQuorum: c.WriteQuorum,
		LeaseTTL:    c.LeaseTTL,
		Node: cluster.NodeConfig{
			Workers:         c.Workers,
			CongestionScale: c.CongestionScale,
		},
	}
	if c.DegradedNode >= 0 {
		deg, w := c.DegradedNode, c.DegradedWorkers
		hcfg.PerNode = func(i int, cfg *cluster.NodeConfig) {
			if i == deg {
				cfg.Workers = w
			}
		}
	}
	h, err := experiments.NewHarness(o, hcfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", spec.Name, err)
	}
	out := &Outcome{Name: spec.Name, ExpectFail: spec.ExpectFail, Seed: o.SeedValue()}

	switch c.Routing {
	case "", RoutingRoundRobin:
		// balancer default
	case RoutingLeastLoaded:
		h.LB.SetPolicy(cluster.LeastLoadedPolicy{})
	case RoutingShedLeast:
		h.LB.SetPolicy(&cluster.SheddingPolicy{Inner: cluster.LeastLoadedPolicy{}, QueueWatermark: c.ShedWatermark})
	case RoutingShedRoundRobin:
		h.LB.SetPolicy(&cluster.SheddingPolicy{Inner: cluster.NewRoundRobin(), QueueWatermark: c.ShedWatermark})
	}

	// Control plane: the single observe–decide–act loop every scenario
	// runs, whether or not any controller is attached.
	p := spec.Plane
	tick := p.Tick
	if tick == 0 {
		tick = time.Second
	}
	pcfg := controlplane.Config{Clock: h.Kernel.Now, Fleet: h.LB}
	if h.Bricks != nil {
		pcfg.Cluster = h.Bricks
	}
	plane := controlplane.New(pcfg)

	var rm *recovery.Manager
	if p.Recovery {
		rm = recovery.NewManager(h.Kernel, h.Nodes[0], recovery.Config{Threshold: float64(p.RecoveryThreshold)})
		if h.Bricks != nil {
			rm.Bricks = h.Bricks
		}
		rm.NotifyHuman = func(reason string) { out.HumanPages++ }
		plane.Use(controlplane.NewRecoveryController(rm))
		if c.Nodes > 1 {
			controlplane.BindRecoveryLifecycle(plane, rm, h.Nodes[0].Name)
		}
	}

	var fleet *controlplane.FleetController
	if c.Nodes > 1 || p.RejuvenateEvery > 0 {
		fleet = controlplane.NewFleetController(h.LB, controlplane.FleetConfig{
			RejuvenateEvery: o.Scaled(p.RejuvenateEvery),
			DrainTimeout:    p.DrainTimeout,
		})
		plane.Use(fleet)
	}

	if p.Autoscale {
		plane.Use(controlplane.NewAutoscaler(h.Bricks, controlplane.AutoscalerConfig{
			MinShards: p.AutoscaleMin, MaxShards: p.AutoscaleMax,
			HighWater: float64(p.HighWater), LowWater: float64(p.LowWater),
			Sustain: p.Sustain, Cooldown: o.Scaled(p.Cooldown),
			WarmUp: o.Scaled(p.ResizeWarmup),
		}))
	}
	if p.Pacer {
		plane.Use(controlplane.NewMigrationPacer(h.Bricks, controlplane.PacerConfig{
			TargetP95: p.PacerTargetP95,
		}))
	}
	h.PumpPlane(plane, tick)

	// Migration pump: a pacer owns the migrator when present; otherwise
	// ring events and autoscaling need a fixed-rate pump or RemoveShard
	// drains would never converge.
	if h.Bricks != nil && !p.Pacer {
		every, batch := p.MigrateEvery, p.MigrateBatch
		if every == 0 && (len(spec.Ring) > 0 || p.Autoscale) {
			every = 50 * time.Millisecond
		}
		if every > 0 {
			if batch == 0 {
				batch = 128
			}
			h.PumpMigration(every, batch)
		}
	}
	if p.ReapEvery > 0 {
		h.PumpReaper(p.ReapEvery)
	}

	h.Recorder.SetOnOp(func(op metrics.Op) { plane.ObserveOp(op.Latency(), op.OK) })
	onFailure := func(clientID int, op string, resp workload.Response) {
		// Session-loss failures after a recovery are knock-on effects of
		// the recovery itself; reporting them would loop the manager.
		if resp.Err != nil && strings.Contains(resp.Err.Error(), "not logged in") {
			return
		}
		// Deferred one kernel step: a recovery fired from inside a plane
		// tick kills in-flight requests, and their failure callbacks must
		// not re-enter the plane while its lock is held.
		h.Kernel.Schedule(0, func() { plane.ReportFailure(op, "client-detector") })
	}

	// Client populations: the base load plus any surges, ids disjoint.
	l := spec.Load
	baseClients := l.Clients
	if l.ScaleClients {
		baseClients = o.ScaledClients(baseClients)
	}
	wcfg := workload.Config{ThinkMean: l.ThinkMean, StartStagger: l.Stagger}
	base := h.NewEmulator(baseClients, 0, wcfg)
	base.OnFailure(onFailure)
	emulators := []*workload.Emulator{base}
	offset := baseClients
	for _, su := range spec.Surges {
		n := su.Clients
		if l.ScaleClients {
			n = o.ScaledClients(n)
		}
		em := h.NewEmulator(n, offset, wcfg)
		em.OnFailure(onFailure)
		emulators = append(emulators, em)
		offset += n
		h.Kernel.Schedule(o.Scaled(su.At), em.Start)
		if su.LeaveAt > 0 {
			h.Kernel.Schedule(o.Scaled(su.LeaveAt), em.Drain)
		}
	}

	// Scheduled fault injections and ring events. Event errors become
	// failed checks, not aborts — a scenario that can't inject its fault
	// must not report a vacuous pass.
	var active []*faults.ActiveFault
	eventChecks := []Check{}
	for i := range spec.Faults {
		f := spec.Faults[i]
		h.Kernel.Schedule(o.Scaled(f.At), func() {
			// Snapshot live sessions first: the zero-loss probe must ask
			// about sessions that existed before the crash, not after.
			var ids []string
			if f.Kind == faults.BrickCrash {
				ids = preEventIDs(h)
			}
			af, err := injectFault(h, f)
			if err != nil {
				eventChecks = append(eventChecks, Check{
					Name: "inject:" + kindToken(f.Kind), Got: err.Error(), Want: "injected",
				})
				return
			}
			active = append(active, af)
			if f.Kind == faults.BrickCrash {
				out.LostSessions += unreadable(h, ids)
			}
		})
	}
	for i := range spec.Ring {
		r := spec.Ring[i]
		h.Kernel.Schedule(o.Scaled(r.At), func() {
			var err error
			if r.Action == "add" {
				_, err = h.Bricks.AddShard()
			} else {
				id := r.Shard
				if !r.shardSet {
					ids := h.Bricks.ShardIDs()
					id = ids[len(ids)-1]
				}
				err = h.Bricks.RemoveShard(id)
			}
			if err != nil {
				eventChecks = append(eventChecks, Check{
					Name: "ring:" + r.Action, Got: err.Error(), Want: "applied",
				})
				return
			}
			out.LostSessions += unreadable(h, h.Bricks.SessionIDs())
		})
	}

	// Timeline: warmup (baseline probe at its end), measured run, stop,
	// flush, cooldown drain.
	warmup, run := o.Scaled(l.Warmup), o.Scaled(l.Run)
	cooldown := l.Cooldown
	if cooldown == 0 {
		cooldown = 30 * time.Second
	}
	var failBase int64
	h.Kernel.Schedule(warmup, func() { failBase = h.Recorder.BadOps() })
	base.Start()
	h.Kernel.RunFor(warmup + run)
	for _, em := range emulators {
		em.Stop()
	}
	for _, em := range emulators {
		em.FlushActions()
	}
	h.Kernel.RunFor(cooldown)

	// Collect.
	out.Checks = append(out.Checks, eventChecks...)
	lat := h.Recorder.Latencies()
	out.P50, out.P95, out.P99 = lat.Quantile(0.50), lat.Quantile(0.95), lat.Quantile(0.99)
	out.Over8s = h.Recorder.OverThreshold()
	out.GoodOps, out.BadOps = h.Recorder.GoodOps(), h.Recorder.BadOps()
	out.FailuresDelta = out.BadOps - failBase
	out.Goodput = h.Recorder.GoodputOver(warmup+run*3/4, warmup+run)
	out.Shed = h.LB.Shed()
	if fleet != nil {
		out.Rejuvenations = fleet.Rejuvenations()
	}
	if h.Bricks != nil {
		out.BrickRestarts = h.BrickRestarts()
		out.RingVersion = int(h.Bricks.RingVersion())
		out.Converged = !h.Bricks.Migrating()
		out.Sessions = h.Bricks.Len()
	}
	for _, af := range active {
		if af.Active() {
			out.ActiveFaults++
		}
	}

	evaluate(spec, out)
	return out, nil
}

// injectFault resolves spec-level sentinels ("@heaviest" victim brick,
// "@live" session) against run-time state and fires the injector.
func injectFault(h *experiments.Harness, f FaultSpec) (*faults.ActiveFault, error) {
	comp := f.Component
	if comp == "@heaviest" {
		if h.Bricks == nil {
			return nil, fmt.Errorf("@heaviest needs the brick cluster")
		}
		bricks := h.Bricks.Bricks()
		victim := bricks[0]
		for _, b := range bricks {
			if b.Up() && b.Len() > victim.Len() {
				victim = b
			}
		}
		comp = victim.Name()
	}
	sid := f.Session
	if sid == "@live" {
		ids := preEventIDs(h)
		if len(ids) == 0 {
			return nil, fmt.Errorf("@live: no live sessions to corrupt")
		}
		sid = ids[0]
	}
	inj := h.Injectors[f.Node]
	return inj.Inject(faults.Spec{
		Kind:        f.Kind,
		Component:   comp,
		Mode:        f.Mode,
		LeakPerCall: f.LeakPerCall,
		SessionID:   sid,
		Table:       f.Table,
		RowKey:      f.RowKey,
		Column:      f.Column,
	})
}

// preEventIDs snapshots the brick cluster's live session ids, sorted so
// sentinel resolution is deterministic.
func preEventIDs(h *experiments.Harness) []string {
	if h.Bricks == nil {
		return nil
	}
	ids := h.Bricks.SessionIDs()
	sort.Strings(ids)
	return ids
}

// unreadable counts sessions from ids that can no longer be read — the
// zero-session-loss probe the brick figures run after every crash and
// ring event.
func unreadable(h *experiments.Harness, ids []string) int {
	lost := 0
	for _, id := range ids {
		if _, err := h.Bricks.Read(id); err != nil {
			lost++
		}
	}
	return lost
}

// evaluate turns the [assert] table into Checks and the overall verdict.
func evaluate(spec *Spec, out *Outcome) {
	a := spec.Assert
	add := func(name string, ok bool, got, want string) {
		out.Checks = append(out.Checks, Check{Name: name, OK: ok, Got: got, Want: want})
	}
	if a.LostSessions != nil {
		add("lost_sessions", out.LostSessions == *a.LostSessions,
			fmt.Sprint(out.LostSessions), fmt.Sprint(*a.LostSessions))
	}
	if a.HumanPages != nil {
		add("human_pages", out.HumanPages == *a.HumanPages,
			fmt.Sprint(out.HumanPages), fmt.Sprint(*a.HumanPages))
	}
	if a.MaxP99 > 0 {
		add("max_p99", out.P99 <= a.MaxP99, out.P99.String(), "<= "+a.MaxP99.String())
	}
	if a.MaxFailures != nil {
		add("max_failures", out.FailuresDelta <= *a.MaxFailures,
			fmt.Sprint(out.FailuresDelta), fmt.Sprintf("<= %d", *a.MaxFailures))
	}
	if a.MinGoodput > 0 {
		add("min_goodput", out.Goodput >= a.MinGoodput,
			fmt.Sprintf("%.2f", out.Goodput), fmt.Sprintf(">= %.2f", a.MinGoodput))
	}
	if a.MinGoodOps > 0 {
		add("min_good_ops", out.GoodOps >= a.MinGoodOps,
			fmt.Sprint(out.GoodOps), fmt.Sprintf(">= %d", a.MinGoodOps))
	}
	if a.Converged != nil {
		add("converged", out.Converged == *a.Converged,
			fmt.Sprint(out.Converged), fmt.Sprint(*a.Converged))
	}
	if a.RingVersion != nil {
		add("ring_version", out.RingVersion == *a.RingVersion,
			fmt.Sprint(out.RingVersion), fmt.Sprint(*a.RingVersion))
	}
	if a.MinBrickRestarts > 0 {
		add("min_brick_restarts", out.BrickRestarts >= a.MinBrickRestarts,
			fmt.Sprint(out.BrickRestarts), fmt.Sprintf(">= %d", a.MinBrickRestarts))
	}
	if a.MinRejuvenations > 0 {
		add("min_rejuvenations", out.Rejuvenations >= int64(a.MinRejuvenations),
			fmt.Sprint(out.Rejuvenations), fmt.Sprintf(">= %d", a.MinRejuvenations))
	}
	if a.MinShed != nil {
		add("min_shed", out.Shed >= *a.MinShed,
			fmt.Sprint(out.Shed), fmt.Sprintf(">= %d", *a.MinShed))
	}
	if a.MaxShed != nil {
		add("max_shed", out.Shed <= *a.MaxShed,
			fmt.Sprint(out.Shed), fmt.Sprintf("<= %d", *a.MaxShed))
	}
	if a.MaxOver8s != nil {
		add("max_over_8s", out.Over8s <= *a.MaxOver8s,
			fmt.Sprint(out.Over8s), fmt.Sprintf("<= %d", *a.MaxOver8s))
	}
	if a.FaultsCleared != nil {
		add("faults_cleared", (out.ActiveFaults == 0) == *a.FaultsCleared,
			fmt.Sprintf("%d active", out.ActiveFaults), fmt.Sprintf("cleared=%t", *a.FaultsCleared))
	}
	out.Passed = true
	for _, ch := range out.Checks {
		if !ch.OK {
			out.Passed = false
		}
	}
}

// String renders the outcome as a short report.
func (o *Outcome) String() string {
	var b strings.Builder
	verdict := "PASS"
	if !o.Passed {
		verdict = "FAIL"
	}
	if o.ExpectFail {
		verdict += " (negative control: expected FAIL)"
	}
	fmt.Fprintf(&b, "scenario %s: %s (seed %d)\n", o.Name, verdict, o.Seed)
	fmt.Fprintf(&b, "  ops good/bad %d/%d (Δfail %d)  p50/p95/p99 %v/%v/%v  goodput %.2f ops/s\n",
		o.GoodOps, o.BadOps, o.FailuresDelta,
		o.P50.Round(time.Millisecond), o.P95.Round(time.Millisecond), o.P99.Round(time.Millisecond), o.Goodput)
	if o.Sessions > 0 || o.RingVersion > 0 {
		fmt.Fprintf(&b, "  bricks: %d sessions, ring v%d, converged=%t, restarts %d, lost %d\n",
			o.Sessions, o.RingVersion, o.Converged, o.BrickRestarts, o.LostSessions)
	}
	if o.Shed > 0 || o.Rejuvenations > 0 || o.HumanPages > 0 {
		fmt.Fprintf(&b, "  shed %d, rejuvenations %d, human pages %d\n", o.Shed, o.Rejuvenations, o.HumanPages)
	}
	for _, c := range o.Checks {
		mark := "ok"
		if !c.OK {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "  [%4s] %-18s got %s want %s\n", mark, c.Name, c.Got, c.Want)
	}
	return strings.TrimRight(b.String(), "\n")
}
