package scenario

import (
	"path/filepath"
	"testing"

	"repro/internal/experiments"
)

func quick() experiments.Options { return experiments.Options{Quick: true} }

func loadScenario(t *testing.T, name string) *Spec {
	t.Helper()
	s, err := LoadFile(filepath.Join("..", "..", "scenarios", name+".toml"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func checkByName(t *testing.T, out *Outcome, name string) Check {
	t.Helper()
	for _, ch := range out.Checks {
		if ch.Name == name {
			return ch
		}
	}
	t.Fatalf("outcome carries no %q check: %+v", name, out.Checks)
	return Check{}
}

// TestDeliberatelyBrokenScenarioFails is the checker's self-test: a
// scenario asserting an unreachable goodput floor must come back FAIL
// with the violated check identified — if it passes, the invariant
// machinery is decorative.
func TestDeliberatelyBrokenScenarioFails(t *testing.T) {
	s, err := Parse("broken.toml", `name = "broken"
[load]
clients = 5
warmup = "10s"
run = "30s"
[assert]
min_good_ops = 1000000000
max_p99 = "1ms"
`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(s, quick())
	if err != nil {
		t.Fatal(err)
	}
	if out.Passed {
		t.Fatal("impossible assertions passed — the checker is not checking")
	}
	if ch := checkByName(t, out, "min_good_ops"); ch.OK {
		t.Fatalf("min_good_ops check = %+v, want failure", ch)
	}
	if ch := checkByName(t, out, "max_p99"); ch.OK {
		t.Fatalf("max_p99 check = %+v, want failure", ch)
	}
}

// TestNegativeControlScenarioFails runs the shipped negative control: an
// unreplicated ring whose brick crash genuinely loses sessions. The run
// must FAIL its lost_sessions assertion, and the campaign must count
// that failure as the scenario passing (ExpectFail inversion).
func TestNegativeControlScenarioFails(t *testing.T) {
	s := loadScenario(t, "negative-brickloss")
	if !s.ExpectFail {
		t.Fatal("negative-brickloss is not marked expect_fail")
	}
	c, err := RunCampaign([]*Spec{s}, quick())
	if err != nil {
		t.Fatal(err)
	}
	out := c.Results[0].Outcome
	if out.Passed {
		t.Fatal("negative control passed its assertions — session loss was not detected")
	}
	if out.LostSessions == 0 {
		t.Fatalf("unreplicated brick crash lost %d sessions, want > 0", out.LostSessions)
	}
	if ch := checkByName(t, out, "lost_sessions"); ch.OK {
		t.Fatalf("lost_sessions check = %+v, want failure", ch)
	}
	if !c.Results[0].Pass || !c.Passed() {
		t.Fatal("campaign did not invert the negative control's verdict")
	}
}

// The three ported figure scenarios must reproduce their figures'
// regression invariants when run through the scenario engine.

func TestScenarioBrickCrashMatchesFigure(t *testing.T) {
	out, err := Run(loadScenario(t, "brickcrash"), quick())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Passed {
		t.Fatalf("scenario failed:\n%s", out)
	}
	if out.LostSessions != 0 {
		t.Fatalf("lost %d sessions across the crash, want 0", out.LostSessions)
	}
	if out.FailuresDelta != 0 {
		t.Fatalf("user-visible failures grew by %d, want 0", out.FailuresDelta)
	}
	if out.BrickRestarts < 1 {
		t.Fatal("crashed brick never restarted")
	}
	if out.HumanPages != 0 {
		t.Fatalf("recovery paged a human %d times", out.HumanPages)
	}
}

func TestScenarioElasticMatchesFigure(t *testing.T) {
	out, err := Run(loadScenario(t, "elastic"), quick())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Passed {
		t.Fatalf("scenario failed:\n%s", out)
	}
	if out.RingVersion != 3 {
		t.Fatalf("ring version = %d after add+remove, want 3", out.RingVersion)
	}
	if !out.Converged {
		t.Fatal("migration did not converge by scenario end")
	}
	if out.LostSessions != 0 || out.FailuresDelta != 0 {
		t.Fatalf("resharding was not invisible: lost=%d Δfail=%d", out.LostSessions, out.FailuresDelta)
	}
}

func TestScenarioFleetMatchesFigure(t *testing.T) {
	shed, err := Run(loadScenario(t, "fleet"), quick())
	if err != nil {
		t.Fatal(err)
	}
	if !shed.Passed {
		t.Fatalf("fleet scenario failed:\n%s", shed)
	}
	rr, err := Run(loadScenario(t, "fleet-roundrobin"), quick())
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Passed {
		t.Fatalf("fleet-roundrobin scenario failed:\n%s", rr)
	}
	// The figure's separation: the shedding policy sheds, static
	// round-robin never does, and both keep every session.
	if shed.Shed == 0 {
		t.Fatal("shedding fleet shed nothing under overload")
	}
	if rr.Shed != 0 {
		t.Fatalf("round-robin fleet shed %d requests", rr.Shed)
	}
	if shed.LostSessions != 0 || rr.LostSessions != 0 {
		t.Fatalf("sessions lost: shed=%d rr=%d", shed.LostSessions, rr.LostSessions)
	}
}

// TestRunDeterministic: same spec, same seed, same kernel — bitwise
// identical counters.
func TestRunDeterministic(t *testing.T) {
	src := `name = "det"
seed = 7
[cluster]
nodes = 2
store = "ssm-cluster"
[load]
clients = 40
warmup = "20s"
run = "1m"
[controlplane]
recovery = true
[[fault]]
at = "30s"
kind = "transient-exception"
component = "ViewItem"
`
	s, err := Parse("det.toml", src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(s, quick())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s, quick())
	if err != nil {
		t.Fatal(err)
	}
	if a.Seed != 7 || b.Seed != 7 {
		t.Fatalf("spec seed not honored: %d/%d", a.Seed, b.Seed)
	}
	if a.GoodOps != b.GoodOps || a.BadOps != b.BadOps || a.P99 != b.P99 || a.Sessions != b.Sessions {
		t.Fatalf("nondeterministic runs:\na=%+v\nb=%+v", a, b)
	}
	// An explicit harness seed overrides the spec's.
	c, err := Run(s, experiments.Options{Quick: true, Seed: 11, SeedSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.Seed != 11 {
		t.Fatalf("explicit -seed lost to the spec seed: %d", c.Seed)
	}
}
