package scenario

import (
	"fmt"
	"strings"
	"time"
)

// Marshal renders the spec as canonical TOML: only non-default fields
// are emitted, so Parse(Marshal(Parse(f))) is structurally identical to
// Parse(f) — the golden round-trip test leans on this.
func (s *Spec) Marshal() string {
	var w writer
	w.kv("name", s.Name)
	w.kvStr("description", s.Description)
	if s.Seed != nil {
		w.kv("seed", *s.Seed)
	}
	if s.ExpectFail {
		w.kv("expect_fail", true)
	}

	c := s.Cluster
	w.section("cluster", func() {
		w.kvInt("nodes", c.Nodes)
		w.kvStr("store", c.Store)
		w.kvInt("shards", c.Shards)
		w.kvInt("replicas", c.Replicas)
		w.kvInt("write_quorum", c.WriteQuorum)
		w.kvDur("lease_ttl", c.LeaseTTL)
		w.kvInt("workers", c.Workers)
		w.kvInt("congestion_scale", c.CongestionScale)
		w.kvStr("routing", c.Routing)
		w.kvInt("shed_watermark", c.ShedWatermark)
		if c.DegradedNode >= 0 {
			w.kv("degraded_node", int64(c.DegradedNode))
			w.kvInt("degraded_workers", c.DegradedWorkers)
		}
	})

	l := s.Load
	w.section("load", func() {
		w.kvInt("clients", l.Clients)
		w.kvDur("warmup", l.Warmup)
		w.kvDur("run", l.Run)
		w.kvDur("cooldown", l.Cooldown)
		w.kvDur("stagger", l.Stagger)
		w.kvDur("think_mean", l.ThinkMean)
		if l.scaleClientsSet {
			w.kv("scale_clients", l.ScaleClients)
		}
	})

	for _, su := range s.Surges {
		w.header("[[surge]]")
		w.kvDur("at", su.At)
		w.kvInt("clients", su.Clients)
		w.kvDur("leave_at", su.LeaveAt)
	}

	p := s.Plane
	w.section("controlplane", func() {
		w.kvDur("tick", p.Tick)
		if p.Recovery {
			w.kv("recovery", true)
		}
		w.kvInt("recovery_threshold", p.RecoveryThreshold)
		w.kvDur("rejuvenate_every", p.RejuvenateEvery)
		w.kvDur("drain_timeout", p.DrainTimeout)
		if p.Autoscale {
			w.kv("autoscale", true)
		}
		w.kvInt("autoscale_min", p.AutoscaleMin)
		w.kvInt("autoscale_max", p.AutoscaleMax)
		w.kvInt("high_water", p.HighWater)
		w.kvInt("low_water", p.LowWater)
		w.kvInt("sustain", p.Sustain)
		w.kvDur("cooldown", p.Cooldown)
		w.kvDur("resize_warmup", p.ResizeWarmup)
		if p.Pacer {
			w.kv("pacer", true)
		}
		w.kvDur("pacer_target_p95", p.PacerTargetP95)
		w.kvDur("migrate_every", p.MigrateEvery)
		w.kvInt("migrate_batch", p.MigrateBatch)
		w.kvDur("reap_every", p.ReapEvery)
	})

	for _, f := range s.Faults {
		w.header("[[fault]]")
		w.kvDur("at", f.At)
		w.kv("kind", kindToken(f.Kind))
		w.kvStr("component", f.Component)
		w.kvStr("mode", string(f.Mode))
		w.kvStr("session", f.Session)
		w.kvStr("table", f.Table)
		if f.RowKey != 0 {
			w.kv("row", f.RowKey)
		}
		w.kvStr("column", f.Column)
		if f.LeakPerCall != 0 {
			w.kv("leak_per_call", f.LeakPerCall)
		}
		w.kvInt("node", f.Node)
	}

	for _, r := range s.Ring {
		w.header("[[ring]]")
		w.kvDur("at", r.At)
		w.kv("action", r.Action)
		if r.shardSet {
			w.kv("shard", int64(r.Shard))
		}
	}

	a := s.Assert
	w.section("assert", func() {
		if a.LostSessions != nil {
			w.kv("lost_sessions", int64(*a.LostSessions))
		}
		if a.HumanPages != nil {
			w.kv("human_pages", int64(*a.HumanPages))
		}
		w.kvDur("max_p99", a.MaxP99)
		if a.MaxFailures != nil {
			w.kv("max_failures", *a.MaxFailures)
		}
		if a.MinGoodput != 0 {
			w.kv("min_goodput", a.MinGoodput)
		}
		if a.MinGoodOps != 0 {
			w.kv("min_good_ops", a.MinGoodOps)
		}
		if a.Converged != nil {
			w.kv("converged", *a.Converged)
		}
		if a.RingVersion != nil {
			w.kv("ring_version", int64(*a.RingVersion))
		}
		w.kvInt("min_brick_restarts", a.MinBrickRestarts)
		w.kvInt("min_rejuvenations", a.MinRejuvenations)
		if a.MinShed != nil {
			w.kv("min_shed", *a.MinShed)
		}
		if a.MaxShed != nil {
			w.kv("max_shed", *a.MaxShed)
		}
		if a.MaxOver8s != nil {
			w.kv("max_over_8s", *a.MaxOver8s)
		}
		if a.FaultsCleared != nil {
			w.kv("faults_cleared", *a.FaultsCleared)
		}
	})

	return w.String()
}

// writer accumulates TOML lines; section buffers a table and drops it
// entirely when the body emitted nothing.
type writer struct {
	b       strings.Builder
	pending string // buffered header not yet known to have a body
}

func (w *writer) String() string { return w.b.String() }

func (w *writer) header(h string) {
	if w.b.Len() > 0 {
		w.b.WriteByte('\n')
	}
	w.b.WriteString(h)
	w.b.WriteByte('\n')
	w.pending = ""
}

func (w *writer) section(name string, body func()) {
	w.pending = "[" + name + "]"
	body()
	w.pending = ""
}

func (w *writer) emit(line string) {
	if w.pending != "" {
		if w.b.Len() > 0 {
			w.b.WriteByte('\n')
		}
		w.b.WriteString(w.pending)
		w.b.WriteByte('\n')
		w.pending = ""
	}
	w.b.WriteString(line)
	w.b.WriteByte('\n')
}

func (w *writer) kv(key string, v any) {
	switch x := v.(type) {
	case string:
		w.emit(key + " = " + quote(x))
	case bool:
		w.emit(fmt.Sprintf("%s = %t", key, x))
	case int64:
		w.emit(fmt.Sprintf("%s = %d", key, x))
	case float64:
		s := fmt.Sprintf("%g", x)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		w.emit(key + " = " + s)
	default:
		panic(fmt.Sprintf("scenario: marshal: unsupported %T", v))
	}
}

// kvStr/kvInt/kvDur emit only non-zero values.
func (w *writer) kvStr(key, v string) {
	if v != "" {
		w.kv(key, v)
	}
}

func (w *writer) kvInt(key string, v int) {
	if v != 0 {
		w.kv(key, int64(v))
	}
}

func (w *writer) kvDur(key string, v time.Duration) {
	if v != 0 {
		w.kv(key, v.String())
	}
}
