package scenario

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/faults"
)

// Spec is one parsed scenario. Fields mirror the TOML schema raw —
// defaults are applied by the engine at run time, not at parse time, so
// Marshal/Parse round-trips are exact.
type Spec struct {
	// Name uniquely identifies the scenario within a campaign (required).
	Name        string
	Description string
	// Seed pins the simulation seed; nil means the harness default (42).
	// Zero is a valid explicit seed.
	Seed *int64
	// ExpectFail marks a negative control: the campaign passes this
	// scenario only if its invariants FAIL (proving assertions fire).
	ExpectFail bool

	Cluster ClusterSpec
	Load    LoadSpec
	Surges  []SurgeSpec
	Plane   PlaneSpec
	Faults  []FaultSpec
	Ring    []RingSpec
	Assert  AssertSpec
}

// ClusterSpec is the [cluster] table.
type ClusterSpec struct {
	Nodes int    // app-server fleet size (default 1)
	Store string // fasts | ssm | ssm-cluster (default fasts)
	// Brick-ring geometry (ssm-cluster only; zero = 4×3 W=2, 1h lease).
	Shards, Replicas, WriteQuorum int
	LeaseTTL                      time.Duration
	// Node shape.
	Workers         int
	CongestionScale int
	// Routing selects the balancer policy: round-robin (default),
	// least-loaded, shed+least-loaded or shed+round-robin.
	Routing       string
	ShedWatermark int
	// DegradedNode/DegradedWorkers shrink one node's worker pool
	// (heterogeneous fleets, as in the fleet figure). -1 = none.
	DegradedNode    int
	DegradedWorkers int
}

// LoadSpec is the [load] table.
type LoadSpec struct {
	Clients   int           // base population (required)
	Warmup    time.Duration // settle time before the measured window
	Run       time.Duration // measured window (required)
	Cooldown  time.Duration // post-Stop drain (default 30s)
	Stagger   time.Duration // client start stagger (default: think mean)
	ThinkMean time.Duration
	// ScaleClients applies quick-mode population scaling (default true);
	// overload scenarios that need the full population turn it off.
	ScaleClients    bool
	scaleClientsSet bool // whether the key appeared (for Marshal)
}

// SurgeSpec is one [[surge]]: an extra population joining at At and
// (when LeaveAt > 0) draining away at LeaveAt.
type SurgeSpec struct {
	At      time.Duration
	Clients int
	LeaveAt time.Duration
}

// PlaneSpec is the [controlplane] table.
type PlaneSpec struct {
	Tick time.Duration // observe–decide–act period (default 1s)

	Recovery          bool // recovery manager + controller on node 0
	RecoveryThreshold int

	RejuvenateEvery time.Duration // fleet rolling rejuvenation period
	DrainTimeout    time.Duration

	Autoscale                  bool
	AutoscaleMin, AutoscaleMax int
	HighWater, LowWater        int
	Sustain                    int
	Cooldown                   time.Duration
	ResizeWarmup               time.Duration

	Pacer          bool
	PacerTargetP95 time.Duration

	MigrateEvery time.Duration // fixed-rate migration pump
	MigrateBatch int
	ReapEvery    time.Duration // lease GC period
}

// FaultSpec is one [[fault]] schedule entry.
type FaultSpec struct {
	At   time.Duration
	Kind faults.Kind
	// Component targets hook-based faults, or names the victim brick for
	// brick-crash/brick-slow ("" = injector default).
	Component string
	Mode      faults.Mode
	// Session targets session-store corruption; the sentinel "@live"
	// resolves to a live brick-cluster session at injection time.
	Session     string
	Table       string
	RowKey      int64
	Column      string
	LeakPerCall int64
	// Node selects which node's injector fires (default 0).
	Node int
}

// RingSpec is one [[ring]] event.
type RingSpec struct {
	At       time.Duration
	Action   string // add | remove
	Shard    int    // shard id for remove (default: highest live shard)
	shardSet bool
}

// AssertSpec is the [assert] table: the invariant vocabulary. Pointer
// fields distinguish "not asserted" from "asserted zero".
type AssertSpec struct {
	LostSessions     *int          // exact lost-session count (usually 0)
	HumanPages       *int          // exact human-notification count (usually 0)
	MaxP99           time.Duration // cumulative p99 bound
	MaxFailures      *int64        // bound on BadOps growth after warmup
	MinGoodput       float64       // Taw floor over the last quarter of the run
	MinGoodOps       int64         // absolute completed-ops floor
	Converged        *bool         // brick migration finished by scenario end
	RingVersion      *int          // exact final ring version
	MinBrickRestarts int
	MinRejuvenations int
	MinShed          *int64
	MaxShed          *int64
	MaxOver8s        *int64 // ops slower than the 8s failure-equivalent cutoff
	FaultsCleared    *bool  // no injected fault still active at scenario end
}

// kindNames maps spec kind tokens onto injector kinds (kebab-case,
// mirroring Table 2's rows plus the brick extensions).
var kindNames = map[string]faults.Kind{
	"deadlock":              faults.Deadlock,
	"infinite-loop":         faults.InfiniteLoop,
	"app-memory-leak":       faults.AppMemoryLeak,
	"transient-exception":   faults.TransientException,
	"corrupt-primary-keys":  faults.CorruptPrimaryKeys,
	"corrupt-naming":        faults.CorruptNaming,
	"corrupt-tx-method-map": faults.CorruptTxMethodMap,
	"corrupt-session-attrs": faults.CorruptSessionAttrs,
	"corrupt-fasts":         faults.CorruptFastS,
	"corrupt-ssm":           faults.CorruptSSM,
	"corrupt-db":            faults.CorruptDB,
	"memleak-intra-jvm":     faults.MemLeakIntraJVM,
	"memleak-extra-jvm":     faults.MemLeakExtraJVM,
	"bitflip-memory":        faults.BitFlipMemory,
	"bitflip-registers":     faults.BitFlipRegisters,
	"bad-syscall":           faults.BadSyscall,
	"brick-crash":           faults.BrickCrash,
	"brick-slow":            faults.BrickSlow,
}

// kindToken inverts kindNames for Marshal.
func kindToken(k faults.Kind) string {
	for tok, kk := range kindNames {
		if kk == k {
			return tok
		}
	}
	return fmt.Sprintf("kind-%d", int(k))
}

// KindTokens lists the accepted [[fault]] kind names, sorted.
func KindTokens() []string {
	out := make([]string, 0, len(kindNames))
	for tok := range kindNames {
		out = append(out, tok)
	}
	sort.Strings(out)
	return out
}

// Routing policy tokens.
const (
	RoutingRoundRobin     = "round-robin"
	RoutingLeastLoaded    = "least-loaded"
	RoutingShedLeast      = "shed+least-loaded"
	RoutingShedRoundRobin = "shed+round-robin"
)

var routingTokens = map[string]bool{
	RoutingRoundRobin: true, RoutingLeastLoaded: true,
	RoutingShedLeast: true, RoutingShedRoundRobin: true,
}

// Parse parses and validates one scenario spec. file is used in error
// messages only.
func Parse(file, src string) (*Spec, error) {
	d, err := parseTOML(file, src)
	if err != nil {
		return nil, err
	}
	s := &Spec{}
	b := &binder{doc: d}

	// Top level.
	top := d.top
	s.Name = b.str(top, "name", "")
	s.Description = b.str(top, "description", "")
	if v, line, ok := b.take(top, "seed"); ok {
		n, err := asInt(v)
		if err != nil {
			b.fail(line, "seed: %v", err)
		}
		s.Seed = &n
	}
	s.ExpectFail = b.boolean(top, "expect_fail", false)

	// [cluster]
	if t := b.table("cluster"); t != nil {
		c := &s.Cluster
		c.Nodes = b.i(t, "nodes", 0)
		c.Store = b.str(t, "store", "")
		c.Shards = b.i(t, "shards", 0)
		c.Replicas = b.i(t, "replicas", 0)
		c.WriteQuorum = b.i(t, "write_quorum", 0)
		c.LeaseTTL = b.dur(t, "lease_ttl", 0)
		c.Workers = b.i(t, "workers", 0)
		c.CongestionScale = b.i(t, "congestion_scale", 0)
		c.Routing = b.str(t, "routing", "")
		c.ShedWatermark = b.i(t, "shed_watermark", 0)
		c.DegradedNode = b.i(t, "degraded_node", -1)
		c.DegradedWorkers = b.i(t, "degraded_workers", 0)
		if c.Routing != "" && !routingTokens[c.Routing] {
			b.fail(t.line, "cluster: unknown routing %q (want %s)", c.Routing, strings.Join(routingTokenList(), ", "))
		}
		switch c.Store {
		case "", "fasts", "ssm", "ssm-cluster":
		default:
			b.fail(t.line, "cluster: unknown store %q (want fasts, ssm or ssm-cluster)", c.Store)
		}
	} else {
		s.Cluster.DegradedNode = -1
	}

	// [load]
	s.Load.ScaleClients = true
	if t := b.table("load"); t != nil {
		l := &s.Load
		l.Clients = b.i(t, "clients", 0)
		l.Warmup = b.dur(t, "warmup", 0)
		l.Run = b.dur(t, "run", 0)
		l.Cooldown = b.dur(t, "cooldown", 0)
		l.Stagger = b.dur(t, "stagger", 0)
		l.ThinkMean = b.dur(t, "think_mean", 0)
		if v, line, ok := b.take(t, "scale_clients"); ok {
			bv, ok := v.(bool)
			if !ok {
				b.fail(line, "scale_clients: want true or false")
			}
			l.ScaleClients = bv
			l.scaleClientsSet = true
		}
		if l.Clients <= 0 {
			b.fail(t.line, "load: clients must be a positive integer")
		}
		if l.Run <= 0 {
			b.fail(t.line, "load: run must be a positive duration")
		}
	} else {
		b.fail(1, "missing required [load] table")
	}

	// [[surge]]
	for _, t := range b.array("surge") {
		su := SurgeSpec{
			At:      b.dur(t, "at", 0),
			Clients: b.i(t, "clients", 0),
			LeaveAt: b.dur(t, "leave_at", 0),
		}
		if su.Clients <= 0 {
			b.fail(t.line, "surge: clients must be a positive integer")
		}
		if su.LeaveAt != 0 && su.LeaveAt <= su.At {
			b.fail(t.line, "surge: leave_at must be after at")
		}
		s.Surges = append(s.Surges, su)
	}

	// [controlplane]
	if t := b.table("controlplane"); t != nil {
		p := &s.Plane
		p.Tick = b.dur(t, "tick", 0)
		p.Recovery = b.boolean(t, "recovery", false)
		p.RecoveryThreshold = b.i(t, "recovery_threshold", 0)
		p.RejuvenateEvery = b.dur(t, "rejuvenate_every", 0)
		p.DrainTimeout = b.dur(t, "drain_timeout", 0)
		p.Autoscale = b.boolean(t, "autoscale", false)
		p.AutoscaleMin = b.i(t, "autoscale_min", 0)
		p.AutoscaleMax = b.i(t, "autoscale_max", 0)
		p.HighWater = b.i(t, "high_water", 0)
		p.LowWater = b.i(t, "low_water", 0)
		p.Sustain = b.i(t, "sustain", 0)
		p.Cooldown = b.dur(t, "cooldown", 0)
		p.ResizeWarmup = b.dur(t, "resize_warmup", 0)
		p.Pacer = b.boolean(t, "pacer", false)
		p.PacerTargetP95 = b.dur(t, "pacer_target_p95", 0)
		p.MigrateEvery = b.dur(t, "migrate_every", 0)
		p.MigrateBatch = b.i(t, "migrate_batch", 0)
		p.ReapEvery = b.dur(t, "reap_every", 0)
	}

	// [[fault]]
	for _, t := range b.array("fault") {
		f := FaultSpec{At: b.dur(t, "at", 0)}
		kindTok := b.str(t, "kind", "")
		kind, ok := kindNames[kindTok]
		if !ok {
			b.fail(t.line, "fault: unknown kind %q (want one of %s)", kindTok, strings.Join(KindTokens(), ", "))
		}
		f.Kind = kind
		f.Component = b.str(t, "component", "")
		mode := b.str(t, "mode", "")
		switch faults.Mode(mode) {
		case faults.ModeNone, faults.ModeNull, faults.ModeInvalid, faults.ModeWrong:
			f.Mode = faults.Mode(mode)
		default:
			b.fail(t.line, "fault: unknown mode %q (want null, invalid or wrong)", mode)
		}
		f.Session = b.str(t, "session", "")
		f.Table = b.str(t, "table", "")
		f.RowKey = b.i64(t, "row", 0)
		f.Column = b.str(t, "column", "")
		f.LeakPerCall = b.i64(t, "leak_per_call", 0)
		f.Node = b.i(t, "node", 0)
		s.Faults = append(s.Faults, f)
	}

	// [[ring]]
	for _, t := range b.array("ring") {
		r := RingSpec{At: b.dur(t, "at", 0), Action: b.str(t, "action", "")}
		switch r.Action {
		case "add", "remove":
		default:
			b.fail(t.line, "ring: unknown action %q (want add or remove)", r.Action)
		}
		if v, line, ok := b.take(t, "shard"); ok {
			n, err := asInt(v)
			if err != nil {
				b.fail(line, "ring: shard: %v", err)
			}
			r.Shard = int(n)
			r.shardSet = true
		}
		s.Ring = append(s.Ring, r)
	}

	// [assert]
	if t := b.table("assert"); t != nil {
		a := &s.Assert
		a.LostSessions = b.intPtr(t, "lost_sessions")
		a.HumanPages = b.intPtr(t, "human_pages")
		a.MaxP99 = b.dur(t, "max_p99", 0)
		a.MaxFailures = b.i64Ptr(t, "max_failures")
		a.MinGoodput = b.f64(t, "min_goodput", 0)
		a.MinGoodOps = b.i64(t, "min_good_ops", 0)
		a.Converged = b.boolPtr(t, "converged")
		a.RingVersion = b.intPtr(t, "ring_version")
		a.MinBrickRestarts = b.i(t, "min_brick_restarts", 0)
		a.MinRejuvenations = b.i(t, "min_rejuvenations", 0)
		a.MinShed = b.i64Ptr(t, "min_shed")
		a.MaxShed = b.i64Ptr(t, "max_shed")
		a.MaxOver8s = b.i64Ptr(t, "max_over_8s")
		a.FaultsCleared = b.boolPtr(t, "faults_cleared")
	}

	if b.err != nil {
		return nil, b.err
	}
	// Leftover keys and tables are unknown: hard errors.
	if err := b.unknown(); err != nil {
		return nil, err
	}
	if s.Name == "" {
		return nil, d.errf(1, "missing required top-level key \"name\"")
	}
	if err := s.validate(file); err != nil {
		return nil, err
	}
	return s, nil
}

// validate enforces cross-field consistency a single binder call can't
// see (brick-dependent faults, ring events and assertions need the
// shared brick-cluster store, and so on).
func (s *Spec) validate(file string) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%s: scenario %q: %s", file, s.Name, fmt.Sprintf(format, args...))
	}
	onBricks := s.Cluster.Store == "ssm-cluster"
	for _, f := range s.Faults {
		switch f.Kind {
		case faults.BrickCrash, faults.BrickSlow, faults.CorruptSSM:
			if !onBricks && !(f.Kind == faults.CorruptSSM && s.Cluster.Store == "ssm") {
				return bad("fault %s requires cluster store ssm-cluster", kindToken(f.Kind))
			}
		case faults.CorruptFastS:
			if s.Cluster.Store != "" && s.Cluster.Store != "fasts" {
				return bad("fault corrupt-fasts requires the fasts store")
			}
		}
		if f.Node < 0 || (s.Cluster.Nodes > 0 && f.Node >= s.Cluster.Nodes) || (s.Cluster.Nodes == 0 && f.Node > 0) {
			return bad("fault node %d out of range", f.Node)
		}
	}
	if len(s.Ring) > 0 && !onBricks {
		return bad("[[ring]] events require cluster store ssm-cluster")
	}
	if s.Plane.Autoscale && !onBricks {
		return bad("controlplane autoscale requires cluster store ssm-cluster")
	}
	if s.Plane.Pacer && !onBricks {
		return bad("controlplane pacer requires cluster store ssm-cluster")
	}
	a := s.Assert
	if (a.LostSessions != nil || a.RingVersion != nil || a.Converged != nil || a.MinBrickRestarts > 0) && !onBricks {
		return bad("brick-level assertions (lost_sessions, ring_version, converged, min_brick_restarts) require cluster store ssm-cluster")
	}
	if a.MinShed != nil && !strings.HasPrefix(s.Cluster.Routing, "shed") {
		return bad("min_shed requires a shedding routing policy")
	}
	if s.Cluster.Routing != "" && strings.HasPrefix(s.Cluster.Routing, "shed") && s.Cluster.ShedWatermark <= 0 {
		return bad("shedding routing requires a positive shed_watermark")
	}
	if s.Plane.RejuvenateEvery > 0 && s.Cluster.Nodes < 2 {
		return bad("rolling rejuvenation needs at least 2 nodes (one must hold the fort)")
	}
	return nil
}

func routingTokenList() []string {
	return []string{RoutingRoundRobin, RoutingLeastLoaded, RoutingShedLeast, RoutingShedRoundRobin}
}

// binder consumes keys from parsed tables with type checking, recording
// the first error.
type binder struct {
	doc *doc
	err error
	// bound remembers consumed tables: their leftover keys are unknown
	// too, and the sweep must still see them.
	bound []*table
}

func (b *binder) fail(line int, format string, args ...any) {
	if b.err == nil {
		b.err = b.doc.errf(line, format, args...)
	}
}

func (b *binder) table(name string) *table {
	t := b.doc.tables[name]
	if t != nil {
		delete(b.doc.tables, name)
		b.bound = append(b.bound, t)
	}
	return t
}

func (b *binder) array(name string) []*table {
	a := b.doc.arrays[name]
	delete(b.doc.arrays, name)
	b.bound = append(b.bound, a...)
	return a
}

func (b *binder) take(t *table, key string) (any, int, bool) {
	v, ok := t.keys[key]
	if !ok {
		return nil, 0, false
	}
	delete(t.keys, key)
	return v.v, v.line, true
}

func (b *binder) str(t *table, key, def string) string {
	v, line, ok := b.take(t, key)
	if !ok {
		return def
	}
	s, ok := v.(string)
	if !ok {
		b.fail(line, "%s: want a quoted string", key)
		return def
	}
	return s
}

func (b *binder) boolean(t *table, key string, def bool) bool {
	v, line, ok := b.take(t, key)
	if !ok {
		return def
	}
	bv, ok := v.(bool)
	if !ok {
		b.fail(line, "%s: want true or false", key)
		return def
	}
	return bv
}

func asInt(v any) (int64, error) {
	n, ok := v.(int64)
	if !ok {
		return 0, fmt.Errorf("want an integer")
	}
	return n, nil
}

func (b *binder) i64(t *table, key string, def int64) int64 {
	v, line, ok := b.take(t, key)
	if !ok {
		return def
	}
	n, err := asInt(v)
	if err != nil {
		b.fail(line, "%s: %v", key, err)
		return def
	}
	return n
}

func (b *binder) i(t *table, key string, def int) int {
	v, line, ok := b.take(t, key)
	if !ok {
		return def
	}
	n, err := asInt(v)
	if err != nil {
		b.fail(line, "%s: %v", key, err)
		return def
	}
	return int(n)
}

func (b *binder) f64(t *table, key string, def float64) float64 {
	v, line, ok := b.take(t, key)
	if !ok {
		return def
	}
	switch n := v.(type) {
	case float64:
		return n
	case int64:
		return float64(n)
	}
	b.fail(line, "%s: want a number", key)
	return def
}

func (b *binder) dur(t *table, key string, def time.Duration) time.Duration {
	v, line, ok := b.take(t, key)
	if !ok {
		return def
	}
	s, ok := v.(string)
	if !ok {
		b.fail(line, "%s: want a duration string like \"90s\"", key)
		return def
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		b.fail(line, "%s: %v", key, err)
		return def
	}
	return d
}

func (b *binder) intPtr(t *table, key string) *int {
	v, line, ok := b.take(t, key)
	if !ok {
		return nil
	}
	n, err := asInt(v)
	if err != nil {
		b.fail(line, "%s: %v", key, err)
		return nil
	}
	i := int(n)
	return &i
}

func (b *binder) i64Ptr(t *table, key string) *int64 {
	v, line, ok := b.take(t, key)
	if !ok {
		return nil
	}
	n, err := asInt(v)
	if err != nil {
		b.fail(line, "%s: %v", key, err)
		return nil
	}
	return &n
}

func (b *binder) boolPtr(t *table, key string) *bool {
	v, line, ok := b.take(t, key)
	if !ok {
		return nil
	}
	bv, ok := v.(bool)
	if !ok {
		b.fail(line, "%s: want true or false", key)
		return nil
	}
	return &bv
}

// unknown reports the first leftover (unconsumed) key or table.
func (b *binder) unknown() error {
	var errs []string
	collect := func(t *table) {
		prefix := ""
		if t.name != "" {
			prefix = "[" + t.name + "] "
		}
		keys := make([]string, 0, len(t.keys))
		for k := range t.keys {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			errs = append(errs, fmt.Sprintf("%s:%d: unknown key %s%q", b.doc.file, t.keys[k].line, prefix, k))
		}
	}
	collect(b.doc.top)
	for _, t := range b.bound {
		collect(t)
	}
	names := make([]string, 0, len(b.doc.tables))
	for n := range b.doc.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := b.doc.tables[n]
		errs = append(errs, fmt.Sprintf("%s:%d: unknown table [%s]", b.doc.file, t.line, n))
	}
	names = names[:0]
	for n := range b.doc.arrays {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := b.doc.arrays[n][0]
		errs = append(errs, fmt.Sprintf("%s:%d: unknown table [[%s]]", b.doc.file, t.line, n))
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("%s", strings.Join(errs, "\n"))
}
