package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// minimalSpec is the smallest valid scenario.
const minimalSpec = `name = "t"
[load]
clients = 10
run = "1m"
`

func TestParseMinimal(t *testing.T) {
	s, err := Parse("min.toml", minimalSpec)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "t" || s.Load.Clients != 10 || s.Load.Run.Minutes() != 1 {
		t.Fatalf("spec = %+v", s)
	}
	if !s.Load.ScaleClients {
		t.Fatal("scale_clients must default to true")
	}
	if s.Cluster.DegradedNode != -1 {
		t.Fatalf("degraded_node default = %d, want -1", s.Cluster.DegradedNode)
	}
}

// wantParseErr asserts the parse fails and the error names the file and
// every fragment — with the line number when lineHint > 0.
func wantParseErr(t *testing.T, src string, lineHint int, fragments ...string) {
	t.Helper()
	_, err := Parse("test.toml", src)
	if err == nil {
		t.Fatalf("parse accepted bad spec:\n%s", src)
	}
	msg := err.Error()
	if !strings.Contains(msg, "test.toml") {
		t.Fatalf("error does not name the file: %v", err)
	}
	if lineHint > 0 && !strings.Contains(msg, fmt.Sprintf("test.toml:%d", lineHint)) {
		t.Fatalf("error does not carry line %d: %v", lineHint, err)
	}
	for _, f := range fragments {
		if !strings.Contains(msg, f) {
			t.Fatalf("error %q missing fragment %q", msg, f)
		}
	}
}

func TestParseUnknownKeysAreHardErrors(t *testing.T) {
	// Top-level typo, with exact line.
	wantParseErr(t, `name = "t"
typo_key = 1
[load]
clients = 10
run = "1m"
`, 2, `unknown key "typo_key"`)

	// Table-scoped typo names its table.
	wantParseErr(t, `name = "t"
[load]
clients = 10
run = "1m"
bogus = true
`, 5, `unknown key [load] "bogus"`)

	// Unknown table.
	wantParseErr(t, minimalSpec+`[gremlins]
x = 1
`, 0, "unknown table [gremlins]")

	// Unknown array-of-tables.
	wantParseErr(t, minimalSpec+`[[chaos]]
at = "1m"
`, 0, "unknown table [[chaos]]")
}

func TestParseUnknownEnumsAreHardErrors(t *testing.T) {
	wantParseErr(t, minimalSpec+`[[fault]]
at = "30s"
kind = "gremlins"
`, 0, `unknown kind "gremlins"`, "deadlock", "brick-crash")

	wantParseErr(t, minimalSpec+`[[fault]]
at = "30s"
kind = "deadlock"
mode = "sideways"
`, 0, `unknown mode "sideways"`)

	wantParseErr(t, `name = "t"
[cluster]
routing = "random"
[load]
clients = 10
run = "1m"
`, 0, `unknown routing "random"`, RoutingShedLeast)

	wantParseErr(t, `name = "t"
[cluster]
store = "redis"
[load]
clients = 10
run = "1m"
`, 0, `unknown store "redis"`)

	wantParseErr(t, minimalSpec+`[[ring]]
at = "1m"
action = "explode"
`, 0, `unknown action "explode"`)
}

func TestParseDuplicateKeysRejected(t *testing.T) {
	wantParseErr(t, `name = "t"
[load]
clients = 10
clients = 20
run = "1m"
`, 4, "duplicate key")
	wantParseErr(t, minimalSpec+`[cluster]
nodes = 1
[cluster]
nodes = 2
`, 0, "duplicate table")
}

func TestParseRequiredFields(t *testing.T) {
	wantParseErr(t, `[load]
clients = 10
run = "1m"
`, 0, `missing required top-level key "name"`)
	wantParseErr(t, `name = "t"
`, 0, "missing required [load] table")
	wantParseErr(t, `name = "t"
[load]
run = "1m"
`, 0, "clients must be a positive integer")
	wantParseErr(t, `name = "t"
[load]
clients = 10
`, 0, "run must be a positive duration")
}

func TestParseTypeMismatches(t *testing.T) {
	wantParseErr(t, `name = 7
[load]
clients = 10
run = "1m"
`, 1, "want a quoted string")
	wantParseErr(t, `name = "t"
[load]
clients = "lots"
run = "1m"
`, 3, "want an integer")
	wantParseErr(t, `name = "t"
[load]
clients = 10
run = "banana"
`, 4, "run")
}

func TestValidateCrossFieldRules(t *testing.T) {
	cases := []struct {
		name, src, frag string
	}{
		{"brick fault without bricks", minimalSpec + "[[fault]]\nat = \"1s\"\nkind = \"brick-crash\"\n",
			"requires cluster store ssm-cluster"},
		{"ring without bricks", minimalSpec + "[[ring]]\nat = \"1s\"\naction = \"add\"\n",
			"[[ring]] events require cluster store ssm-cluster"},
		{"autoscale without bricks", minimalSpec + "[controlplane]\nautoscale = true\n",
			"autoscale requires cluster store ssm-cluster"},
		{"min_shed without shed routing", minimalSpec + "[assert]\nmin_shed = 1\n",
			"min_shed requires a shedding routing policy"},
		{"shed routing without watermark",
			"name = \"t\"\n[cluster]\nrouting = \"shed+least-loaded\"\n[load]\nclients = 10\nrun = \"1m\"\n",
			"positive shed_watermark"},
		{"rejuvenation on lone node", minimalSpec + "[controlplane]\nrejuvenate_every = \"2m\"\n",
			"at least 2 nodes"},
		{"fault node out of range", minimalSpec + "[[fault]]\nat = \"1s\"\nkind = \"deadlock\"\nnode = 3\n",
			"node 3 out of range"},
		{"brick assert without bricks", minimalSpec + "[assert]\nlost_sessions = 0\n",
			"require cluster store ssm-cluster"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("test.toml", tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("err = %v, want fragment %q", err, tc.frag)
			}
		})
	}
}

// TestGoldenRoundTrip proves Marshal is a faithful inverse of Parse over
// every shipped scenario: parse(marshal(parse(f))) == parse(f).
func TestGoldenRoundTrip(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.toml"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no scenario specs found: %v", err)
	}
	for _, p := range paths {
		t.Run(filepath.Base(p), func(t *testing.T) {
			src, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			orig, err := Parse(p, string(src))
			if err != nil {
				t.Fatal(err)
			}
			round, err := Parse(p+"#roundtrip", orig.Marshal())
			if err != nil {
				t.Fatalf("re-parse of marshalled spec failed: %v\n%s", err, orig.Marshal())
			}
			if !reflect.DeepEqual(orig, round) {
				t.Fatalf("round-trip drift:\noriginal: %+v\nround:    %+v\nmarshal:\n%s", orig, round, orig.Marshal())
			}
		})
	}
}

func TestKindTokensCoverInjectorVocabulary(t *testing.T) {
	toks := KindTokens()
	if !sort.StringsAreSorted(toks) {
		t.Fatal("KindTokens not sorted")
	}
	if len(toks) != len(kindNames) {
		t.Fatalf("len = %d, want %d", len(toks), len(kindNames))
	}
	for _, tok := range toks {
		if kindToken(kindNames[tok]) != tok {
			t.Fatalf("kindToken(%v) = %q, want %q", kindNames[tok], kindToken(kindNames[tok]), tok)
		}
	}
}
