// Package scenario interprets declarative chaos-campaign specs — TOML
// files describing a cluster, a client load shape, scheduled faults and
// ring events, control-plane knobs, and invariant assertions — onto the
// simulation substrate via the exported experiments harness, and checks
// the paper's invariants (zero lost sessions, bounded p99, no human
// pages, goodput floors) against the outcome.
package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// The spec format is a strict subset of TOML, parsed by hand because the
// module carries no dependencies: comments, [table] and [[array-of-table]]
// headers (single-segment bare keys only), and key = value lines where a
// value is a basic "quoted" string, an integer, a float, or a boolean.
// Durations are strings in Go syntax ("90s", "2m30s"). Every key and
// header remembers its line so binding errors point at the offending
// spec line, and unknown keys/tables are hard errors — a typoed
// "sched_watermark" must not silently weaken a campaign.

// value is one parsed scalar with its source line.
type value struct {
	line int
	v    any // string, int64, float64 or bool
}

// table is one [header] (or the implicit top-level table): an unordered
// key set whose entries are deleted as the binder consumes them, so
// whatever remains afterwards is by construction unknown.
type table struct {
	file string
	name string // "" for top level
	line int
	keys map[string]value
}

// doc is a parsed spec file.
type doc struct {
	file   string
	top    *table
	tables map[string]*table   // [name]
	arrays map[string][]*table // [[name]]
}

func (d *doc) errf(line int, format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", d.file, line, fmt.Sprintf(format, args...))
}

// parseTOML parses src as the strict subset described above.
func parseTOML(file, src string) (*doc, error) {
	d := &doc{
		file:   file,
		top:    &table{file: file, keys: map[string]value{}},
		tables: map[string]*table{},
		arrays: map[string][]*table{},
	}
	cur := d.top
	for i, raw := range strings.Split(src, "\n") {
		line := i + 1
		s := strings.TrimSpace(stripComment(raw))
		if s == "" {
			continue
		}
		switch {
		case strings.HasPrefix(s, "[["):
			if !strings.HasSuffix(s, "]]") {
				return nil, d.errf(line, "malformed array-of-tables header %q", s)
			}
			name := strings.TrimSpace(s[2 : len(s)-2])
			if !bareKey(name) {
				return nil, d.errf(line, "invalid table name %q (single bare key expected)", name)
			}
			if _, dup := d.tables[name]; dup {
				return nil, d.errf(line, "[[%s]] conflicts with earlier [%s]", name, name)
			}
			cur = &table{file: file, name: name, line: line, keys: map[string]value{}}
			d.arrays[name] = append(d.arrays[name], cur)
		case strings.HasPrefix(s, "["):
			if !strings.HasSuffix(s, "]") {
				return nil, d.errf(line, "malformed table header %q", s)
			}
			name := strings.TrimSpace(s[1 : len(s)-1])
			if !bareKey(name) {
				return nil, d.errf(line, "invalid table name %q (single bare key expected)", name)
			}
			if _, dup := d.tables[name]; dup {
				return nil, d.errf(line, "duplicate table [%s]", name)
			}
			if _, dup := d.arrays[name]; dup {
				return nil, d.errf(line, "[%s] conflicts with earlier [[%s]]", name, name)
			}
			cur = &table{file: file, name: name, line: line, keys: map[string]value{}}
			d.tables[name] = cur
		default:
			eq := strings.Index(s, "=")
			if eq < 0 {
				return nil, d.errf(line, "expected key = value, got %q", s)
			}
			key := strings.TrimSpace(s[:eq])
			if !bareKey(key) {
				return nil, d.errf(line, "invalid key %q", key)
			}
			if _, dup := cur.keys[key]; dup {
				return nil, d.errf(line, "duplicate key %q", key)
			}
			v, err := parseValue(strings.TrimSpace(s[eq+1:]))
			if err != nil {
				return nil, d.errf(line, "key %q: %v", key, err)
			}
			cur.keys[key] = value{line: line, v: v}
		}
	}
	return d, nil
}

// stripComment drops a trailing # comment, honoring quoted strings.
func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inStr {
				i++ // skip escaped char
			}
		case '"':
			inStr = !inStr
		case '#':
			if !inStr {
				return s[:i]
			}
		}
	}
	return s
}

func bareKey(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

func parseValue(s string) (any, error) {
	switch {
	case s == "":
		return nil, fmt.Errorf("missing value")
	case s == "true":
		return true, nil
	case s == "false":
		return false, nil
	case s[0] == '"':
		return unquote(s)
	}
	if strings.ContainsAny(s, ".eE") && !strings.HasPrefix(s, "0x") {
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return f, nil
		}
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n, nil
	}
	return nil, fmt.Errorf("unsupported value %q (want \"string\", integer, float, true or false)", s)
}

func unquote(s string) (string, error) {
	if len(s) < 2 || s[len(s)-1] != '"' {
		return "", fmt.Errorf("unterminated string %s", s)
	}
	body := s[1 : len(s)-1]
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c == '"' {
			return "", fmt.Errorf("unescaped quote inside string %s", s)
		}
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf("dangling escape in string %s", s)
		}
		switch body[i] {
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case 'r':
			b.WriteByte('\r')
		default:
			return "", fmt.Errorf("unsupported escape \\%c", body[i])
		}
	}
	return b.String(), nil
}

// quote renders s as a TOML basic string (inverse of unquote).
func quote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}
