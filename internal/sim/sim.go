// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and a priority queue of scheduled
// events. Experiments built on the kernel are exactly reproducible: given
// the same seed and the same sequence of Schedule calls, the event order
// and all random draws are identical across runs. This is the substitute
// substrate for the paper's physical testbed (see DESIGN.md §3): a
// 40-minute experiment timeline executes in milliseconds of wall-clock
// time while preserving the timing relationships that drive the results.
//
// Events scheduled for the same virtual instant fire in the order they
// were scheduled (FIFO tie-breaking by sequence number), which keeps the
// simulation deterministic even under heavy event fan-out.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Event is a callback scheduled to run at a virtual instant.
type Event func()

// scheduled is an entry in the kernel's event heap.
type scheduled struct {
	at    time.Duration // virtual time since kernel start
	seq   uint64        // FIFO tie-breaker for equal timestamps
	fn    Event
	index int // heap index, maintained by heap.Interface
	dead  bool
}

// eventHeap orders events by (at, seq).
type eventHeap []*scheduled

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*scheduled)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	k  *Kernel
	ev *scheduled
}

// Stop cancels the timer. It reports whether the event had not yet fired.
// Stopping an already-fired or already-stopped timer is a no-op.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.dead {
		return false
	}
	if t.ev.index < 0 { // already popped and executed
		t.ev.dead = true
		return false
	}
	t.ev.dead = true
	heap.Remove(&t.k.events, t.ev.index)
	return true
}

// Kernel is a single-threaded discrete-event scheduler with a virtual
// clock. It is not safe for concurrent use: all event callbacks run on the
// goroutine that calls Run/Step, which is the intended usage.
type Kernel struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	rng    *rand.Rand
	// processed counts events executed, for diagnostics and test budgets.
	processed uint64
	// limit guards against runaway simulations; 0 means unlimited.
	limit uint64
}

// NewKernel returns a kernel whose random source is seeded with seed.
// The virtual clock starts at zero.
func NewKernel(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time (duration since kernel start).
func (k *Kernel) Now() time.Duration { return k.now }

// Rand returns the kernel's deterministic random source. All stochastic
// decisions in a simulation must draw from this source to preserve
// reproducibility.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Processed reports how many events have executed so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// SetEventLimit installs a hard cap on the number of events Run will
// execute, as a guard against accidental unbounded simulations. Zero
// removes the cap.
func (k *Kernel) SetEventLimit(n uint64) { k.limit = n }

// Pending reports how many events are waiting in the queue.
func (k *Kernel) Pending() int { return len(k.events) }

// Schedule arranges for fn to run after delay d of virtual time. Negative
// delays are treated as zero (run at the current instant, after events
// already scheduled for this instant). It returns a Timer that can cancel
// the event.
func (k *Kernel) Schedule(d time.Duration, fn Event) *Timer {
	if fn == nil {
		panic("sim: Schedule called with nil event")
	}
	if d < 0 {
		d = 0
	}
	ev := &scheduled{at: k.now + d, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.events, ev)
	return &Timer{k: k, ev: ev}
}

// ScheduleAt arranges for fn to run at absolute virtual time t. Times in
// the past are clamped to now.
func (k *Kernel) ScheduleAt(t time.Duration, fn Event) *Timer {
	return k.Schedule(t-k.now, fn)
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports false when the queue is empty.
func (k *Kernel) Step() bool {
	for len(k.events) > 0 {
		ev := heap.Pop(&k.events).(*scheduled)
		if ev.dead {
			continue
		}
		if ev.at < k.now {
			panic(fmt.Sprintf("sim: event scheduled at %v but clock already at %v", ev.at, k.now))
		}
		k.now = ev.at
		k.processed++
		ev.fn()
		return true
	}
	return false
}

// RunUntil executes events until the virtual clock would pass deadline or
// the queue empties. Events scheduled exactly at deadline do execute. On
// return the clock is set to deadline if it had not already advanced past
// it, so successive RunUntil calls compose naturally.
func (k *Kernel) RunUntil(deadline time.Duration) {
	for len(k.events) > 0 {
		if k.limit > 0 && k.processed >= k.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v", k.limit, k.now))
		}
		next := k.peek()
		if next.at > deadline {
			break
		}
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
}

// RunFor advances the simulation by d of virtual time.
func (k *Kernel) RunFor(d time.Duration) { k.RunUntil(k.now + d) }

// Drain executes events until the queue is empty. Use with care: a
// simulation with self-rescheduling processes never drains.
func (k *Kernel) Drain() {
	for k.Step() {
		if k.limit > 0 && k.processed >= k.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v", k.limit, k.now))
		}
	}
}

func (k *Kernel) peek() *scheduled {
	// Dead events may be sitting at the top; skip them lazily.
	for len(k.events) > 0 && k.events[0].dead {
		heap.Pop(&k.events)
	}
	if len(k.events) == 0 {
		return &scheduled{at: 1<<62 - 1}
	}
	return k.events[0]
}

// Exponential draws from an exponential distribution with the given mean,
// optionally capped (cap <= 0 means uncapped). This matches the TPC-W
// think-time model used by the paper's client emulator: exponential with a
// mean of 7 s, capped at 70 s.
func (k *Kernel) Exponential(mean, capAt time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	d := time.Duration(k.rng.ExpFloat64() * float64(mean))
	if capAt > 0 && d > capAt {
		d = capAt
	}
	return d
}

// Uniform draws a duration uniformly from [lo, hi).
func (k *Kernel) Uniform(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(k.rng.Int63n(int64(hi-lo)))
}

// Normal draws from a normal distribution with the given mean and standard
// deviation, clamped at zero so it can be used directly as a service time.
func (k *Kernel) Normal(mean, stddev time.Duration) time.Duration {
	d := time.Duration(k.rng.NormFloat64()*float64(stddev) + float64(mean))
	if d < 0 {
		d = 0
	}
	return d
}
