package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	k := NewKernel(1)
	var got []int
	k.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	k.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	k.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	k.Drain()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 30*time.Millisecond {
		t.Fatalf("clock = %v, want 30ms", k.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	k := NewKernel(1)
	var got []int
	for i := 0; i < 50; i++ {
		i := i
		k.Schedule(time.Second, func() { got = append(got, i) })
	}
	k.Drain()
	if len(got) != 50 {
		t.Fatalf("executed %d events, want 50", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break order broken at %d: got %v", i, got)
		}
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	k := NewKernel(1)
	fired := false
	k.Schedule(5*time.Second, func() { fired = true })
	k.RunUntil(3 * time.Second)
	if fired {
		t.Fatal("event fired before its timestamp")
	}
	if k.Now() != 3*time.Second {
		t.Fatalf("clock = %v, want 3s", k.Now())
	}
	k.RunUntil(5 * time.Second)
	if !fired {
		t.Fatal("event scheduled exactly at deadline did not fire")
	}
}

func TestRunForComposes(t *testing.T) {
	k := NewKernel(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		k.Schedule(time.Second, tick)
	}
	k.Schedule(time.Second, tick)
	k.RunFor(10 * time.Second)
	if count != 10 {
		t.Fatalf("ticks = %d, want 10", count)
	}
	k.RunFor(5 * time.Second)
	if count != 15 {
		t.Fatalf("ticks = %d, want 15", count)
	}
}

func TestTimerStop(t *testing.T) {
	k := NewKernel(1)
	fired := false
	tm := k.Schedule(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	k.RunFor(2 * time.Second)
	if fired {
		t.Fatal("stopped event fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	k := NewKernel(1)
	tm := k.Schedule(time.Millisecond, func() {})
	k.Drain()
	if tm.Stop() {
		t.Fatal("Stop after fire returned true")
	}
}

func TestStopInterleavedWithPeek(t *testing.T) {
	// A stopped event at the head of the queue must not block RunUntil.
	k := NewKernel(1)
	fired := 0
	tm := k.Schedule(time.Second, func() { fired++ })
	k.Schedule(2*time.Second, func() { fired++ })
	tm.Stop()
	k.RunUntil(3 * time.Second)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	k := NewKernel(1)
	k.RunUntil(10 * time.Second)
	fired := time.Duration(-1)
	k.Schedule(-5*time.Second, func() { fired = k.Now() })
	k.Drain()
	if fired != 10*time.Second {
		t.Fatalf("event fired at %v, want 10s", fired)
	}
}

func TestScheduleAtPastClamped(t *testing.T) {
	k := NewKernel(1)
	k.RunUntil(time.Minute)
	var at time.Duration
	k.ScheduleAt(10*time.Second, func() { at = k.Now() })
	k.Drain()
	if at != time.Minute {
		t.Fatalf("past ScheduleAt fired at %v, want 1m", at)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []time.Duration {
		k := NewKernel(seed)
		var stamps []time.Duration
		var loop func()
		n := 0
		loop = func() {
			stamps = append(stamps, k.Now())
			n++
			if n < 100 {
				k.Schedule(k.Exponential(7*time.Second, 70*time.Second), loop)
			}
		}
		k.Schedule(0, loop)
		k.Drain()
		return stamps
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at event %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if i >= len(c) || a[i] != c[i] {
			same = false
			break
		}
	}
	if same && len(a) == len(c) {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestExponentialCap(t *testing.T) {
	k := NewKernel(7)
	for i := 0; i < 10000; i++ {
		d := k.Exponential(7*time.Second, 70*time.Second)
		if d < 0 || d > 70*time.Second {
			t.Fatalf("draw %v outside [0, 70s]", d)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	k := NewKernel(7)
	var sum time.Duration
	const n = 200000
	for i := 0; i < n; i++ {
		sum += k.Exponential(7*time.Second, 0)
	}
	mean := sum / n
	if mean < 6500*time.Millisecond || mean > 7500*time.Millisecond {
		t.Fatalf("sample mean %v too far from 7s", mean)
	}
}

func TestUniformBounds(t *testing.T) {
	k := NewKernel(3)
	for i := 0; i < 10000; i++ {
		d := k.Uniform(5*time.Millisecond, 10*time.Millisecond)
		if d < 5*time.Millisecond || d >= 10*time.Millisecond {
			t.Fatalf("uniform draw %v outside [5ms, 10ms)", d)
		}
	}
	if got := k.Uniform(time.Second, time.Second); got != time.Second {
		t.Fatalf("degenerate uniform = %v, want 1s", got)
	}
}

func TestNormalNonNegative(t *testing.T) {
	k := NewKernel(3)
	for i := 0; i < 10000; i++ {
		if d := k.Normal(time.Millisecond, 5*time.Millisecond); d < 0 {
			t.Fatalf("normal draw %v negative", d)
		}
	}
}

func TestEventLimit(t *testing.T) {
	k := NewKernel(1)
	k.SetEventLimit(10)
	var loop func()
	loop = func() { k.Schedule(time.Second, loop) }
	k.Schedule(0, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on event limit")
		}
	}()
	k.RunUntil(time.Hour)
}

func TestNilEventPanics(t *testing.T) {
	k := NewKernel(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nil event")
		}
	}()
	k.Schedule(0, nil)
}

// Property: for any set of delays, events fire in sorted timestamp order.
func TestPropertyEventsFireInOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel(99)
		var fired []time.Duration
		for _, d := range delays {
			k.Schedule(time.Duration(d)*time.Millisecond, func() {
				fired = append(fired, k.Now())
			})
		}
		k.Drain()
		if len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: clock never moves backwards across an arbitrary event mix.
func TestPropertyMonotonicClock(t *testing.T) {
	f := func(delays []uint16, stops []bool) bool {
		k := NewKernel(5)
		last := time.Duration(-1)
		ok := true
		var timers []*Timer
		for _, d := range delays {
			timers = append(timers, k.Schedule(time.Duration(d)*time.Microsecond, func() {
				if k.Now() < last {
					ok = false
				}
				last = k.Now()
			}))
		}
		for i, s := range stops {
			if s && i < len(timers) {
				timers[i].Stop()
			}
		}
		k.Drain()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestProcessedCount(t *testing.T) {
	k := NewKernel(1)
	for i := 0; i < 25; i++ {
		k.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	k.Drain()
	if k.Processed() != 25 {
		t.Fatalf("Processed = %d, want 25", k.Processed())
	}
}

func TestPendingCount(t *testing.T) {
	k := NewKernel(1)
	k.Schedule(time.Second, func() {})
	k.Schedule(2*time.Second, func() {})
	if k.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", k.Pending())
	}
	k.Drain()
	if k.Pending() != 0 {
		t.Fatalf("Pending after drain = %d, want 0", k.Pending())
	}
}
