package db_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/store/db"
)

// Tests for the concurrent read path: shared-lock reads, the row cache,
// and their interaction with commits, crashes, recovery, and repair.
// These are primarily -race exercisers; the staleness test also asserts a
// linearizability bound on the row cache.

func kvDB(t *testing.T) *db.DB {
	t.Helper()
	d := db.New(nil)
	schema := db.Schema{
		Name:    "kv",
		Columns: []db.Column{{Name: "v", Type: db.Int}, {Name: "tag", Type: db.Str}},
		Indexes: []string{"tag"},
	}
	if err := d.CreateTable(schema); err != nil {
		t.Fatal(err)
	}
	tx, err := d.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(1); k <= 8; k++ {
		if err := tx.InsertWithKey("kv", k, db.Row{"v": int64(0), "tag": "t"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return d
}

// tolerable reports whether err is an error a reader may legitimately see
// while the database is being crashed/recovered/aborted under it.
func tolerable(err error) bool {
	return err == nil ||
		errors.Is(err, db.ErrCrashed) ||
		errors.Is(err, db.ErrTxDone) ||
		errors.Is(err, db.ErrConflict)
}

// TestConcurrentReadsDuringCommits hammers lock-free/shared-lock reads
// (Get, Lookup, Scan) against committing writers, row corruption, and
// table repair. Run under -race this proves readers never observe a row
// mid-mutation: rows are immutable and installed copy-on-write.
func TestConcurrentReadsDuringCommits(t *testing.T) {
	d := kvDB(t)
	const (
		readers = 4
		writes  = 400
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writers: bump counters through the transactional API.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := int64(w + 1) // disjoint keys: no conflicts between writers
			for i := 1; i <= writes; i++ {
				tx, err := d.Begin()
				if err != nil {
					t.Errorf("Begin: %v", err)
					return
				}
				if err := tx.Update("kv", key, db.Row{"v": int64(i), "tag": "t"}); err != nil {
					t.Errorf("Update: %v", err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("Commit: %v", err)
					return
				}
			}
		}(w)
	}

	// A corruptor + repairer: bypasses the transactional API the way the
	// Table 2 fault campaign does, exercising the copy-on-write swap and
	// cache invalidation against live readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := d.CorruptRow("kv", 7, "v", nil); err != nil {
				t.Errorf("CorruptRow: %v", err)
				return
			}
			if _, err := d.CheckTable("kv"); err != nil {
				t.Errorf("CheckTable: %v", err)
				return
			}
			if _, err := d.RepairTable("kv"); err != nil {
				t.Errorf("RepairTable: %v", err)
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx, err := d.Begin()
				if err != nil {
					t.Errorf("Begin: %v", err)
					return
				}
				for k := int64(1); k <= 8; k++ {
					row, err := tx.Get("kv", k)
					if err != nil {
						t.Errorf("Get(%d): %v", k, err)
						return
					}
					// Touch the value: -race flags this if a writer could
					// mutate the row in place.
					_ = row["v"]
				}
				if _, err := tx.Lookup("kv", "tag", "t"); err != nil {
					t.Errorf("Lookup: %v", err)
					return
				}
				if err := tx.Scan("kv", func(_ int64, r db.Row) bool { _ = r["v"]; return true }); err != nil {
					t.Errorf("Scan: %v", err)
					return
				}
				if err := tx.Commit(); err != nil && !errors.Is(err, db.ErrTxDone) {
					t.Errorf("read-only Commit: %v", err)
					return
				}
			}
		}()
	}

	// The writers bound the test; stop the readers once both have
	// finished all their commits (visible in the commit counter).
	go func() {
		for {
			commits, _, _ := d.Stats()
			if commits >= uint64(2*writes) {
				close(stop)
				return
			}
		}
	}()
	wg.Wait()

	// Final state must reflect every commit.
	for w := 0; w < 2; w++ {
		tx, err := d.Begin()
		if err != nil {
			t.Fatal(err)
		}
		row, err := tx.Get("kv", int64(w+1))
		if err != nil {
			t.Fatal(err)
		}
		if got := row["v"].(int64); got != writes {
			t.Fatalf("key %d: v = %d, want %d", w+1, got, writes)
		}
		_ = tx.Commit()
	}
}

// TestConcurrentReadsAcrossCrashRecover races readers against full
// crash/recover cycles and mass aborts. Readers must only ever see clean
// outcomes: success or ErrCrashed/ErrTxDone — never a torn row or a
// stale cache entry resurrected across a crash.
func TestConcurrentReadsAcrossCrashRecover(t *testing.T) {
	d := kvDB(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx, err := d.Begin()
				if err != nil {
					if !tolerable(err) {
						t.Errorf("Begin: %v", err)
					}
					continue
				}
				if row, err := tx.Get("kv", 3); err == nil {
					_ = row["v"]
				} else if !tolerable(err) {
					t.Errorf("Get: %v", err)
				}
				if err := tx.Commit(); err != nil && !tolerable(err) {
					t.Errorf("Commit: %v", err)
				}
			}
		}()
	}

	// One writer keeps commits flowing so the WAL grows across cycles.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			tx, err := d.Begin()
			if err != nil {
				continue
			}
			if err := tx.Update("kv", 5, db.Row{"v": i, "tag": "t"}); err != nil {
				_ = tx.Abort()
				continue
			}
			_ = tx.Commit()
		}
	}()

	for cycle := 0; cycle < 30; cycle++ {
		d.Crash()
		if !d.Crashed() {
			t.Fatal("Crashed() = false after Crash")
		}
		if err := d.Recover(); err != nil {
			t.Fatalf("Recover: %v", err)
		}
		d.AbortAll(nil)
	}
	close(stop)
	wg.Wait()

	// After the last Recover the table must be complete.
	n, err := d.RowCount("kv")
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("RowCount = %d, want 8", n)
	}
}

// TestRowCacheNeverServesStale is the staleness bound: a reader that
// starts after a commit returned must see that commit's value (or newer),
// whether its Get is served by the row cache or the table. The writer
// publishes the committed version only after Commit returns; readers
// snapshot that floor before reading and require value ≥ floor.
func TestRowCacheNeverServesStale(t *testing.T) {
	d := kvDB(t)
	const commits = 2000
	var floor atomic.Int64 // highest version known committed
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := int64(1); i <= commits; i++ {
			tx, err := d.Begin()
			if err != nil {
				t.Errorf("Begin: %v", err)
				return
			}
			if err := tx.Update("kv", 1, db.Row{"v": i, "tag": "t"}); err != nil {
				t.Errorf("Update: %v", err)
				return
			}
			if err := tx.Commit(); err != nil {
				t.Errorf("Commit: %v", err)
				return
			}
			floor.Store(i) // published strictly after the commit returned
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				want := floor.Load()
				tx, err := d.Begin()
				if err != nil {
					t.Errorf("Begin: %v", err)
					return
				}
				row, err := tx.Get("kv", 1)
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if got := row["v"].(int64); got < want {
					t.Errorf("stale read: v = %d, but %d was committed before the read began", got, want)
					return
				}
				_ = tx.Commit()
			}
		}()
	}
	wg.Wait()

	hits, misses, _ := d.RowCacheStats()
	if hits == 0 {
		t.Errorf("row cache took no hits (misses=%d); staleness test exercised nothing", misses)
	}
}

// TestRowCacheServesCommittedValueAfterInvalidation pins the basic cache
// protocol: fill on read, invalidate on commit, refill with the new value.
func TestRowCacheServesCommittedValueAfterInvalidation(t *testing.T) {
	d := kvDB(t)
	read := func() int64 {
		tx, err := d.Begin()
		if err != nil {
			t.Fatal(err)
		}
		defer tx.Commit()
		row, err := tx.Get("kv", 2)
		if err != nil {
			t.Fatal(err)
		}
		return row["v"].(int64)
	}
	if got := read(); got != 0 {
		t.Fatalf("v = %d, want 0", got)
	}
	read() // second read: served from cache
	hits, _, entries := d.RowCacheStats()
	if hits == 0 || entries == 0 {
		t.Fatalf("expected cache hits and resident entries, got hits=%d entries=%d", hits, entries)
	}

	tx, err := d.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("kv", 2, db.Row{"v": int64(42), "tag": "t"}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := read(); got != 42 {
		t.Fatalf("after commit: v = %d, want 42 (stale cache?)", got)
	}

	// Crash wipes the cache; recovery must not resurrect old values.
	d.Crash()
	if err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := read(); got != 42 {
		t.Fatalf("after crash+recover: v = %d, want 42", got)
	}

	// Corruption invalidates the damaged key...
	if _, err := d.CorruptRow("kv", 2, "v", int64(-7)); err != nil {
		t.Fatal(err)
	}
	if got := read(); got != -7 {
		t.Fatalf("after corruption: v = %d, want -7", got)
	}
	// ...and repair restores the WAL truth, dropping cached damage.
	if _, err := d.RepairTable("kv"); err != nil {
		t.Fatal(err)
	}
	if got := read(); got != 42 {
		t.Fatalf("after repair: v = %d, want 42", got)
	}
}
