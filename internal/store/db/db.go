// Package db implements a crash-safe transactional table store — the
// persistence tier of the reproduction, standing in for the MySQL database
// used by the paper's eBid prototype.
//
// Like the original, the store:
//
//   - gives entity components container-managed persistence: each entity
//     instance's state maps to a row in a table;
//   - aborts and rolls back any transactions still open when the component
//     driving them is microrebooted;
//   - is crash-safe: committed data survives a crash via a write-ahead
//     log, and recovery replays the log (the paper notes "MySQL is
//     crash-safe and recovers fast for our datasets");
//   - supports deliberate corruption of table contents and subsequent
//     table repair, reproducing the "corrupt data inside MySQL" row of
//     Table 2 (worst case: database table repair needed).
//
// The store is safe for concurrent use. The read path is concurrent:
// Get/Lookup/Scan take only a shared lock (Commit keeps exclusivity), rows
// are immutable once installed — readers receive the live row, never a
// copy — and hot Get lookups are served from a sharded read-through row
// cache that commits invalidate before they return.
package db

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ColType enumerates the column types supported by the store.
type ColType int

// Supported column types.
const (
	Int ColType = iota
	Str
	Float
	Bool
)

func (t ColType) String() string {
	switch t {
	case Int:
		return "int"
	case Str:
		return "str"
	case Float:
		return "float"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// Column describes one column of a table schema.
type Column struct {
	Name     string
	Type     ColType
	Nullable bool
	// MinInt/MaxInt bound Int columns when Checked is true; used by
	// integrity checking to detect "invalid" corruption (e.g. a userID
	// larger than the maximum userID).
	Checked int64
	MinInt  int64
	MaxInt  int64
}

// Schema describes a table: its name, columns, and secondary indexes.
type Schema struct {
	Name    string
	Columns []Column
	// Indexes lists column names to maintain equality indexes on.
	Indexes []string
}

func (s Schema) column(name string) (Column, bool) {
	for _, c := range s.Columns {
		if c.Name == name {
			return c, true
		}
	}
	return Column{}, false
}

// Row is a single record: column name to value. Values must be int64,
// string, float64, bool, or nil (for nullable columns).
//
// Rows handed out by Get and Scan are the live table rows: they must be
// treated as immutable. Mutation goes through the transactional write API
// (which installs a fresh row object on commit, copy-on-write) — callers
// that want to derive an updated row Clone first.
type Row map[string]any

// clone returns a deep-enough copy (values are scalars).
func (r Row) clone() Row {
	c := make(Row, len(r))
	for k, v := range r {
		c[k] = v
	}
	return c
}

// Clone returns a copy of the row. Rows returned by Get/Scan are shared,
// immutable objects; Clone before mutating.
func (r Row) Clone() Row { return r.clone() }

// Errors returned by the store.
var (
	ErrNoTable      = errors.New("db: no such table")
	ErrNoRow        = errors.New("db: no such row")
	ErrDupKey       = errors.New("db: duplicate primary key")
	ErrTxDone       = errors.New("db: transaction already finished")
	ErrConflict     = errors.New("db: lock conflict")
	ErrBadValue     = errors.New("db: value violates schema")
	ErrCrashed      = errors.New("db: database is crashed")
	ErrDupTable     = errors.New("db: table already exists")
	ErrRowCorrupted = errors.New("db: row failed integrity check")
)

// table holds the live rows and indexes for one schema.
type table struct {
	schema Schema
	rows   map[int64]Row
	// indexes: column name → value key → set of row ids.
	indexes map[string]map[any]map[int64]struct{}
	// locks: row id → owning transaction id (simple exclusive row locks).
	locks   map[int64]uint64
	nextKey int64
}

func newTable(s Schema) *table {
	t := &table{
		schema:  s,
		rows:    map[int64]Row{},
		indexes: map[string]map[any]map[int64]struct{}{},
		locks:   map[int64]uint64{},
		nextKey: 1,
	}
	for _, col := range s.Indexes {
		t.indexes[col] = map[any]map[int64]struct{}{}
	}
	return t
}

func (t *table) indexAdd(id int64, r Row) {
	for col, idx := range t.indexes {
		v := r[col]
		set := idx[v]
		if set == nil {
			set = map[int64]struct{}{}
			idx[v] = set
		}
		set[id] = struct{}{}
	}
}

func (t *table) indexRemove(id int64, r Row) {
	for col, idx := range t.indexes {
		v := r[col]
		if set := idx[v]; set != nil {
			delete(set, id)
			if len(set) == 0 {
				delete(idx, v)
			}
		}
	}
}

// validate checks r against the schema. Corrupted writes bypass this via
// the fault-injection entry points.
func (t *table) validate(r Row) error {
	for _, col := range t.schema.Columns {
		v, present := r[col.Name]
		if !present || v == nil {
			if col.Nullable {
				continue
			}
			return fmt.Errorf("%w: column %s of %s is not nullable", ErrBadValue, col.Name, t.schema.Name)
		}
		switch col.Type {
		case Int:
			iv, ok := v.(int64)
			if !ok {
				return fmt.Errorf("%w: column %s wants int64, got %T", ErrBadValue, col.Name, v)
			}
			if col.Checked != 0 && (iv < col.MinInt || iv > col.MaxInt) {
				return fmt.Errorf("%w: column %s value %d outside [%d,%d]", ErrBadValue, col.Name, iv, col.MinInt, col.MaxInt)
			}
		case Str:
			if _, ok := v.(string); !ok {
				return fmt.Errorf("%w: column %s wants string, got %T", ErrBadValue, col.Name, v)
			}
		case Float:
			if _, ok := v.(float64); !ok {
				return fmt.Errorf("%w: column %s wants float64, got %T", ErrBadValue, col.Name, v)
			}
		case Bool:
			if _, ok := v.(bool); !ok {
				return fmt.Errorf("%w: column %s wants bool, got %T", ErrBadValue, col.Name, v)
			}
		}
	}
	return nil
}

// txShardCount shards the open-transaction table so Begin/Commit pairs on
// the read path never funnel through one mutex.
const txShardCount = 16

// txTable tracks live transactions so a crash can invalidate them and a
// microreboot can abort them. Sharded by transaction id.
type txTable struct {
	shards [txShardCount]txShard
}

type txShard struct {
	mu sync.Mutex
	m  map[uint64]*Tx
	// pad the shard to a cache line so neighboring shards don't false-share.
	_ [40]byte
}

func (tt *txTable) shard(id uint64) *txShard { return &tt.shards[id%txShardCount] }

func (tt *txTable) add(tx *Tx) {
	id := tx.ID()
	s := tt.shard(id)
	s.mu.Lock()
	if s.m == nil {
		s.m = map[uint64]*Tx{}
	}
	s.m[id] = tx
	s.mu.Unlock()
}

func (tt *txTable) remove(id uint64) {
	s := tt.shard(id)
	s.mu.Lock()
	delete(s.m, id)
	s.mu.Unlock()
}

// invalidateAll marks every tracked transaction done and clears the table
// (the crash path).
func (tt *txTable) invalidateAll() {
	for i := range tt.shards {
		s := &tt.shards[i]
		s.mu.Lock()
		for _, tx := range s.m {
			tx.invalidate()
		}
		clear(s.m)
		s.mu.Unlock()
	}
}

// txRef pins a transaction pointer to the generation it carried when
// collected, so a later abort can be generation-checked (AbortIf).
type txRef struct {
	tx *Tx
	id uint64
}

// collect returns the tracked transactions rejected by keep (nil keep
// collects all), each paired with its id at collection time.
func (tt *txTable) collect(keep func(txID uint64) bool) []txRef {
	var out []txRef
	for i := range tt.shards {
		s := &tt.shards[i]
		s.mu.Lock()
		for id, tx := range s.m {
			if keep == nil || !keep(id) {
				out = append(out, txRef{tx: tx, id: id})
			}
		}
		s.mu.Unlock()
	}
	return out
}

// DB is the database instance.
//
// Locking: mu is a reader/writer lock over the table state. Reads
// (Get/Lookup/Scan/RowCount/...) take the shared side; anything that
// mutates tables, rows, indexes or row locks (Insert/Update/Delete,
// Commit, Crash/Recover, corruption/repair) takes the exclusive side.
// Rows installed in tables are immutable — every write installs a fresh
// Row object — so readers may hand the live row to callers without
// copying. The crashed flag and the statistics counters are atomics so
// the read fast path (including row-cache hits) never touches mu's write
// side.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*table
	wal    *WAL
	nextTx atomic.Uint64
	// crashed is set under mu (write side) but read lock-free by the
	// cache-hit fast path.
	crashed atomic.Bool
	// txs tracks live transactions so a crash can invalidate them.
	txs txTable
	// cache is the read-through row cache over committed rows. Fills
	// happen under mu's read side; commits invalidate written keys while
	// still holding the write side, so a cache hit is never older than
	// the last committed write.
	cache rowCache
	// txPool recycles Tx objects (see Tx.Recycle). Per-DB so a pooled
	// Tx's db pointer never changes, which keeps the generation-checked
	// abort path (AbortIf) free of racy field rewrites.
	txPool sync.Pool
	// stats
	commits, aborts, conflicts atomic.Uint64
}

// New creates an empty database writing its log to the given WAL. A nil
// wal means an in-memory WAL is created (still replayable via Recover).
func New(wal *WAL) *DB {
	if wal == nil {
		wal = NewWAL()
	}
	return &DB{tables: map[string]*table{}, wal: wal}
}

// CreateTable registers a new table.
func (d *DB) CreateTable(s Schema) error {
	d.mu.Lock()
	if d.crashed.Load() {
		d.mu.Unlock()
		return ErrCrashed
	}
	if _, ok := d.tables[s.Name]; ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrDupTable, s.Name)
	}
	d.tables[s.Name] = newTable(s)
	wait := d.wal.append(walRecord{Kind: recCreateTable, Table: s.Name, Schema: &s})
	d.mu.Unlock()
	// Wait for the sink flush outside d.mu so concurrent commits can form
	// a group behind this one.
	wait.Wait()
	return nil
}

// Tables returns the sorted table names.
func (d *DB) Tables() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	names := make([]string, 0, len(d.tables))
	for n := range d.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Stats reports commit/abort/conflict counters.
func (d *DB) Stats() (commits, aborts, conflicts uint64) {
	return d.commits.Load(), d.aborts.Load(), d.conflicts.Load()
}

// RowCacheStats reports row-cache hits, misses, and resident entries.
func (d *DB) RowCacheStats() (hits, misses uint64, entries int) {
	return d.cache.stats()
}

// Crash simulates a machine crash: all volatile state is dropped and every
// open transaction becomes unusable. Committed data remains in the WAL;
// call Recover to bring the database back.
func (d *DB) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashed.Store(true)
	d.txs.invalidateAll()
	d.tables = map[string]*table{}
	d.cache.reset()
}

// Recover replays the WAL, restoring all committed state. It is the
// analog of MySQL's fast crash recovery.
func (d *DB) Recover() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tables = map[string]*table{}
	d.cache.reset()
	for _, rec := range d.wal.committed() {
		switch rec.Kind {
		case recCreateTable:
			d.tables[rec.Table] = newTable(*rec.Schema)
		case recInsert:
			t := d.tables[rec.Table]
			if t == nil {
				return fmt.Errorf("db: WAL references unknown table %q", rec.Table)
			}
			t.rows[rec.Key] = rec.Row.clone()
			t.indexAdd(rec.Key, rec.Row)
			if rec.Key >= t.nextKey {
				t.nextKey = rec.Key + 1
			}
		case recUpdate:
			t := d.tables[rec.Table]
			if t == nil {
				return fmt.Errorf("db: WAL references unknown table %q", rec.Table)
			}
			if old, ok := t.rows[rec.Key]; ok {
				t.indexRemove(rec.Key, old)
			}
			t.rows[rec.Key] = rec.Row.clone()
			t.indexAdd(rec.Key, rec.Row)
		case recDelete:
			t := d.tables[rec.Table]
			if t == nil {
				return fmt.Errorf("db: WAL references unknown table %q", rec.Table)
			}
			if old, ok := t.rows[rec.Key]; ok {
				t.indexRemove(rec.Key, old)
				delete(t.rows, rec.Key)
			}
		}
	}
	d.crashed.Store(false)
	return nil
}

// Crashed reports whether the database is currently down.
func (d *DB) Crashed() bool {
	return d.crashed.Load()
}

// RowCount returns the number of rows in a table.
func (d *DB) RowCount(tableName string) (int, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.crashed.Load() {
		return 0, ErrCrashed
	}
	t, ok := d.tables[tableName]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	return len(t.rows), nil
}
