package db

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func userSchema() Schema {
	return Schema{
		Name: "users",
		Columns: []Column{
			{Name: "name", Type: Str},
			{Name: "rating", Type: Int, Checked: 1, MinInt: -100, MaxInt: 100},
			{Name: "region", Type: Int},
			{Name: "email", Type: Str, Nullable: true},
		},
		Indexes: []string{"region"},
	}
}

func mustBegin(t *testing.T, d *DB) *Tx {
	t.Helper()
	tx, err := d.Begin()
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	return tx
}

func newUserDB(t *testing.T) *DB {
	t.Helper()
	d := New(nil)
	if err := d.CreateTable(userSchema()); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	return d
}

func TestInsertGetCommit(t *testing.T) {
	d := newUserDB(t)
	tx := mustBegin(t, d)
	key, err := tx.Insert("users", Row{"name": "alice", "rating": int64(5), "region": int64(1)})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	got, err := tx.Get("users", key)
	if err != nil {
		t.Fatalf("Get inside tx: %v", err)
	}
	if got["name"] != "alice" {
		t.Fatalf("name = %v, want alice", got["name"])
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	tx2 := mustBegin(t, d)
	defer tx2.Abort()
	got, err = tx2.Get("users", key)
	if err != nil {
		t.Fatalf("Get after commit: %v", err)
	}
	if got["rating"] != int64(5) {
		t.Fatalf("rating = %v, want 5", got["rating"])
	}
}

func TestAbortRollsBack(t *testing.T) {
	d := newUserDB(t)
	tx := mustBegin(t, d)
	key, err := tx.Insert("users", Row{"name": "bob", "rating": int64(1), "region": int64(2)})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	tx2 := mustBegin(t, d)
	defer tx2.Abort()
	if _, err := tx2.Get("users", key); !errors.Is(err, ErrNoRow) {
		t.Fatalf("Get after abort: err = %v, want ErrNoRow", err)
	}
}

func TestUpdateVisibility(t *testing.T) {
	d := newUserDB(t)
	tx := mustBegin(t, d)
	key, _ := tx.Insert("users", Row{"name": "carol", "rating": int64(0), "region": int64(1)})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2 := mustBegin(t, d)
	if err := tx2.Update("users", key, Row{"name": "carol", "rating": int64(9), "region": int64(1)}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	// Own write visible.
	r, _ := tx2.Get("users", key)
	if r["rating"] != int64(9) {
		t.Fatalf("own write invisible: rating = %v", r["rating"])
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	tx3 := mustBegin(t, d)
	defer tx3.Abort()
	r, _ = tx3.Get("users", key)
	if r["rating"] != int64(9) {
		t.Fatalf("committed write invisible: rating = %v", r["rating"])
	}
}

func TestLockConflictFailsFast(t *testing.T) {
	d := newUserDB(t)
	tx := mustBegin(t, d)
	key, _ := tx.Insert("users", Row{"name": "dan", "rating": int64(0), "region": int64(1)})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	a := mustBegin(t, d)
	b := mustBegin(t, d)
	if err := a.Update("users", key, Row{"name": "dan", "rating": int64(1), "region": int64(1)}); err != nil {
		t.Fatalf("first update: %v", err)
	}
	err := b.Update("users", key, Row{"name": "dan", "rating": int64(2), "region": int64(1)})
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("second update err = %v, want ErrConflict", err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	// After a commits, b can retry.
	if err := b.Update("users", key, Row{"name": "dan", "rating": int64(2), "region": int64(1)}); err != nil {
		t.Fatalf("retry update: %v", err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	_, _, conflicts := d.Stats()
	if conflicts != 1 {
		t.Fatalf("conflicts = %d, want 1", conflicts)
	}
}

func TestSchemaValidation(t *testing.T) {
	d := newUserDB(t)
	tx := mustBegin(t, d)
	defer tx.Abort()
	cases := []Row{
		{"name": nil, "rating": int64(0), "region": int64(1)},     // null non-nullable
		{"name": "x", "rating": int64(101), "region": int64(1)},   // out of range
		{"name": "x", "rating": "not-an-int", "region": int64(1)}, // wrong type
		{"name": 42, "rating": int64(0), "region": int64(1)},      // wrong type for str
		{"rating": int64(0), "region": int64(1)},                  // missing non-nullable
	}
	for i, r := range cases {
		if _, err := tx.Insert("users", r); !errors.Is(err, ErrBadValue) {
			t.Fatalf("case %d: err = %v, want ErrBadValue", i, err)
		}
	}
	// Nullable column may be omitted.
	if _, err := tx.Insert("users", Row{"name": "ok", "rating": int64(0), "region": int64(1)}); err != nil {
		t.Fatalf("valid row rejected: %v", err)
	}
}

func TestIndexLookup(t *testing.T) {
	d := newUserDB(t)
	tx := mustBegin(t, d)
	k1, _ := tx.Insert("users", Row{"name": "a", "rating": int64(0), "region": int64(7)})
	k2, _ := tx.Insert("users", Row{"name": "b", "rating": int64(0), "region": int64(7)})
	_, _ = tx.Insert("users", Row{"name": "c", "rating": int64(0), "region": int64(8)})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2 := mustBegin(t, d)
	defer tx2.Abort()
	keys, err := tx2.Lookup("users", "region", int64(7))
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if len(keys) != 2 || keys[0] != k1 || keys[1] != k2 {
		t.Fatalf("Lookup = %v, want [%d %d]", keys, k1, k2)
	}
	if _, err := tx2.Lookup("users", "name", "a"); err == nil {
		t.Fatal("Lookup on unindexed column should error")
	}
}

func TestLookupSeesOwnWrites(t *testing.T) {
	d := newUserDB(t)
	tx := mustBegin(t, d)
	k, _ := tx.Insert("users", Row{"name": "a", "rating": int64(0), "region": int64(3)})
	keys, err := tx.Lookup("users", "region", int64(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != k {
		t.Fatalf("uncommitted insert invisible to own Lookup: %v", keys)
	}
	if err := tx.Delete("users", k); err != nil {
		t.Fatal(err)
	}
	keys, _ = tx.Lookup("users", "region", int64(3))
	if len(keys) != 0 {
		t.Fatalf("deleted row still visible: %v", keys)
	}
	tx.Abort()
}

func TestIndexMaintainedAcrossUpdate(t *testing.T) {
	d := newUserDB(t)
	tx := mustBegin(t, d)
	k, _ := tx.Insert("users", Row{"name": "a", "rating": int64(0), "region": int64(1)})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := mustBegin(t, d)
	if err := tx2.Update("users", k, Row{"name": "a", "rating": int64(0), "region": int64(2)}); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	tx3 := mustBegin(t, d)
	defer tx3.Abort()
	if keys, _ := tx3.Lookup("users", "region", int64(1)); len(keys) != 0 {
		t.Fatalf("stale index entry for old region: %v", keys)
	}
	if keys, _ := tx3.Lookup("users", "region", int64(2)); len(keys) != 1 {
		t.Fatalf("missing index entry for new region: %v", keys)
	}
}

func TestScan(t *testing.T) {
	d := newUserDB(t)
	tx := mustBegin(t, d)
	for i := 0; i < 5; i++ {
		_, _ = tx.Insert("users", Row{"name": "u", "rating": int64(i), "region": int64(1)})
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := mustBegin(t, d)
	defer tx2.Abort()
	var seen []int64
	err := tx2.Scan("users", func(k int64, r Row) bool {
		seen = append(seen, k)
		return len(seen) < 3 // early stop
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[0] != 1 || seen[2] != 3 {
		t.Fatalf("scan keys = %v, want [1 2 3]", seen)
	}
}

func TestCrashRecovery(t *testing.T) {
	d := newUserDB(t)
	tx := mustBegin(t, d)
	k1, _ := tx.Insert("users", Row{"name": "durable", "rating": int64(1), "region": int64(1)})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Uncommitted transaction at crash time must vanish.
	tx2 := mustBegin(t, d)
	k2, _ := tx2.Insert("users", Row{"name": "volatile", "rating": int64(2), "region": int64(1)})

	d.Crash()
	if !d.Crashed() {
		t.Fatal("Crashed() = false after Crash")
	}
	if _, err := d.Begin(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Begin on crashed db: err = %v, want ErrCrashed", err)
	}
	if err := tx2.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("commit of tx open across crash: err = %v, want ErrTxDone", err)
	}
	if err := d.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	tx3 := mustBegin(t, d)
	defer tx3.Abort()
	if _, err := tx3.Get("users", k1); err != nil {
		t.Fatalf("committed row lost in crash: %v", err)
	}
	if _, err := tx3.Get("users", k2); !errors.Is(err, ErrNoRow) {
		t.Fatalf("uncommitted row survived crash: err = %v", err)
	}
}

func TestRecoverPreservesKeyAllocator(t *testing.T) {
	d := newUserDB(t)
	tx := mustBegin(t, d)
	k1, _ := tx.Insert("users", Row{"name": "a", "rating": int64(0), "region": int64(1)})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	if err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	tx2 := mustBegin(t, d)
	k2, err := tx2.Insert("users", Row{"name": "b", "rating": int64(0), "region": int64(1)})
	if err != nil {
		t.Fatal(err)
	}
	if k2 <= k1 {
		t.Fatalf("key reuse after recovery: k1=%d k2=%d", k1, k2)
	}
	tx2.Abort()
}

func TestCorruptionDetectAndRepair(t *testing.T) {
	d := newUserDB(t)
	tx := mustBegin(t, d)
	k, _ := tx.Insert("users", Row{"name": "victim", "rating": int64(10), "region": int64(1)})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Null corruption: detectable.
	if _, err := d.CorruptRow("users", k, "name", nil); err != nil {
		t.Fatalf("CorruptRow: %v", err)
	}
	bad, err := d.CheckTable("users")
	if err != nil || len(bad) != 1 || bad[0] != k {
		t.Fatalf("CheckTable = %v, %v; want [%d]", bad, err, k)
	}
	n, err := d.RepairTable("users")
	if err != nil || n != 1 {
		t.Fatalf("RepairTable = %d, %v", n, err)
	}
	tx2 := mustBegin(t, d)
	defer tx2.Abort()
	r, err := tx2.Get("users", k)
	if err != nil || r["name"] != "victim" {
		t.Fatalf("post-repair row = %v, %v", r, err)
	}
	if bad, _ := d.CheckTable("users"); len(bad) != 0 {
		t.Fatalf("corruption remains after repair: %v", bad)
	}
}

func TestInvalidCorruptionDetected(t *testing.T) {
	d := newUserDB(t)
	tx := mustBegin(t, d)
	k, _ := tx.Insert("users", Row{"name": "x", "rating": int64(0), "region": int64(1)})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// rating 5000 type-checks but violates the Checked range: "invalid".
	if _, err := d.CorruptRow("users", k, "rating", int64(5000)); err != nil {
		t.Fatal(err)
	}
	bad, _ := d.CheckTable("users")
	if len(bad) != 1 {
		t.Fatalf("invalid corruption not detected: %v", bad)
	}
}

func TestWrongValueCorruptionUndetectable(t *testing.T) {
	// "Wrong" corruption is schema-valid; CheckTable must NOT flag it —
	// this is why the paper requires manual repair for it.
	d := newUserDB(t)
	tx := mustBegin(t, d)
	a, _ := tx.Insert("users", Row{"name": "a", "rating": int64(1), "region": int64(1)})
	b, _ := tx.Insert("users", Row{"name": "b", "rating": int64(2), "region": int64(1)})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := d.SwapRows("users", a, b); err != nil {
		t.Fatal(err)
	}
	bad, _ := d.CheckTable("users")
	if len(bad) != 0 {
		t.Fatalf("wrong-value corruption unexpectedly detected: %v", bad)
	}
	tx2 := mustBegin(t, d)
	defer tx2.Abort()
	r, _ := tx2.Get("users", a)
	if r["name"] != "b" {
		t.Fatalf("swap did not take effect: %v", r)
	}
}

func TestAbortAll(t *testing.T) {
	d := newUserDB(t)
	t1 := mustBegin(t, d)
	t2 := mustBegin(t, d)
	t3 := mustBegin(t, d)
	keep := t2.ID()
	n := d.AbortAll(func(id uint64) bool { return id == keep })
	if n != 2 {
		t.Fatalf("AbortAll aborted %d, want 2", n)
	}
	if !t1.Done() || t2.Done() || !t3.Done() {
		t.Fatalf("done states = %v %v %v, want true false true", t1.Done(), t2.Done(), t3.Done())
	}
	t2.Abort()
}

func TestInsertWithKeyDuplicate(t *testing.T) {
	d := newUserDB(t)
	tx := mustBegin(t, d)
	r := Row{"name": "x", "rating": int64(0), "region": int64(1)}
	if err := tx.InsertWithKey("users", 42, r); err != nil {
		t.Fatal(err)
	}
	if err := tx.InsertWithKey("users", 42, r); !errors.Is(err, ErrDupKey) {
		t.Fatalf("dup insert err = %v, want ErrDupKey", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := mustBegin(t, d)
	defer tx2.Abort()
	if err := tx2.InsertWithKey("users", 42, r); !errors.Is(err, ErrDupKey) {
		t.Fatalf("dup insert of committed key err = %v, want ErrDupKey", err)
	}
	// Auto keys must not collide with explicit keys.
	k, err := tx2.Insert("users", r)
	if err != nil {
		t.Fatal(err)
	}
	if k <= 42 {
		t.Fatalf("auto key %d collides with explicit key space", k)
	}
}

func TestWALSinkMirrors(t *testing.T) {
	var buf bytes.Buffer
	w := NewWALWithSink(&buf)
	d := New(w)
	if err := d.CreateTable(userSchema()); err != nil {
		t.Fatal(err)
	}
	tx := mustBegin(t, d)
	_, _ = tx.Insert("users", Row{"name": "m", "rating": int64(0), "region": int64(1)})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"users"`) {
		t.Fatalf("WAL sink missing table record: %q", out)
	}
	if strings.Count(out, "\n") < 3 { // create + insert + commit mark
		t.Fatalf("WAL sink too short: %q", out)
	}
}

func TestTruncatedWALDropsUncommitted(t *testing.T) {
	w := NewWAL()
	d := New(w)
	if err := d.CreateTable(userSchema()); err != nil {
		t.Fatal(err)
	}
	tx := mustBegin(t, d)
	_, _ = tx.Insert("users", Row{"name": "a", "rating": int64(0), "region": int64(1)})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := mustBegin(t, d)
	_, _ = tx2.Insert("users", Row{"name": "b", "rating": int64(0), "region": int64(1)})
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	// Damage the log: drop the second commit's mark.
	w.TruncateTail(1)
	d.Crash()
	if err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	n, _ := d.RowCount("users")
	if n != 1 {
		t.Fatalf("rows after recovery from truncated WAL = %d, want 1", n)
	}
}

func TestConcurrentDisjointCommits(t *testing.T) {
	d := newUserDB(t)
	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx, err := d.Begin()
				if err != nil {
					errs <- err
					return
				}
				if _, err := tx.Insert("users", Row{"name": "w", "rating": int64(w), "region": int64(w)}); err != nil {
					errs <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	n, _ := d.RowCount("users")
	if n != workers*perWorker {
		t.Fatalf("rows = %d, want %d", n, workers*perWorker)
	}
}

// Property: a random interleaving of commit/abort transactions leaves the
// database equal to applying only the committed ones, and crash+recover
// reproduces exactly the same state (atomicity + durability).
func TestPropertyAtomicityAndDurability(t *testing.T) {
	type step struct {
		Rating int8
		Commit bool
	}
	f := func(steps []step) bool {
		d := newUserDB(t)
		want := map[int64]int64{}
		for _, s := range steps {
			tx, err := d.Begin()
			if err != nil {
				return false
			}
			k, err := tx.Insert("users", Row{"name": "p", "rating": int64(s.Rating % 100), "region": int64(1)})
			if err != nil {
				return false
			}
			if s.Commit {
				if err := tx.Commit(); err != nil {
					return false
				}
				want[k] = int64(s.Rating % 100)
			} else {
				if err := tx.Abort(); err != nil {
					return false
				}
			}
		}
		check := func() bool {
			tx, err := d.Begin()
			if err != nil {
				return false
			}
			defer tx.Abort()
			got := map[int64]int64{}
			_ = tx.Scan("users", func(k int64, r Row) bool {
				got[k] = r["rating"].(int64)
				return true
			})
			if len(got) != len(want) {
				return false
			}
			for k, v := range want {
				if got[k] != v {
					return false
				}
			}
			return true
		}
		if !check() {
			return false
		}
		d.Crash()
		if err := d.Recover(); err != nil {
			return false
		}
		return check()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(21))}); err != nil {
		t.Fatal(err)
	}
}

func TestErrNoTable(t *testing.T) {
	d := New(nil)
	tx, err := d.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Abort()
	if _, err := tx.Get("ghost", 1); !errors.Is(err, ErrNoTable) {
		t.Fatalf("err = %v, want ErrNoTable", err)
	}
	if _, err := d.CheckTable("ghost"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("CheckTable err = %v, want ErrNoTable", err)
	}
	if err := d.CreateTable(Schema{Name: "t"}); err != nil {
		t.Fatal(err)
	}
	if err := d.CreateTable(Schema{Name: "t"}); !errors.Is(err, ErrDupTable) {
		t.Fatalf("dup CreateTable err = %v, want ErrDupTable", err)
	}
}

func TestTxDoneGuards(t *testing.T) {
	d := newUserDB(t)
	tx := mustBegin(t, d)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert("users", Row{"name": "x", "rating": int64(0), "region": int64(1)}); !errors.Is(err, ErrTxDone) {
		t.Fatalf("Insert after commit err = %v, want ErrTxDone", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("double commit err = %v, want ErrTxDone", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("abort after commit err = %v, want ErrTxDone", err)
	}
}
