package db

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// runConcurrentCommits drives workers×per transactions, each inserting
// two rows, against d. It fails the test on any error.
func runConcurrentCommits(t *testing.T, d *DB, workers, per int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tx, err := d.Begin()
				if err != nil {
					errs <- err
					return
				}
				for j := 0; j < 2; j++ {
					if _, err := tx.Insert("users", Row{"name": fmt.Sprintf("w%d-%d-%d", w, i, j),
						"rating": int64(0), "region": int64(w)}); err != nil {
						errs <- err
						return
					}
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestGroupCommitBatchesAndPreservesOrder checks the two core properties
// of group commit: concurrent committers coalesce into shared sink
// flushes (fewer batches than commits), and the sink's record order is
// identical to the authoritative in-memory log.
func TestGroupCommitBatchesAndPreservesOrder(t *testing.T) {
	var sunk bytes.Buffer
	w := NewWALWithSink(&sunk)
	w.SetCommitWindow(2 * time.Millisecond)
	d := New(w)
	if err := d.CreateTable(userSchema()); err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 20
	runConcurrentCommits(t, d, workers, per)

	batches, flushed, maxBatch := w.GroupCommitStats()
	if flushed != uint64(w.Len()) {
		t.Fatalf("flushed %d records, log has %d — commits returned before their flush", flushed, w.Len())
	}
	commits := uint64(workers * per)
	if batches >= commits {
		t.Fatalf("batches = %d for %d commits: no coalescing happened", batches, commits)
	}
	if maxBatch < 3 {
		t.Fatalf("maxBatch = %d: no batch ever held more than one transaction", maxBatch)
	}

	// The sink must mirror the in-memory log exactly, in order — group
	// commit moves the flush boundary, never the contents.
	var mirrored []walRecord
	dec := json.NewDecoder(strings.NewReader(sunk.String()))
	for dec.More() {
		var rec walRecord
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("sink decode: %v", err)
		}
		mirrored = append(mirrored, rec)
	}
	w.mu.Lock()
	mem := append([]walRecord(nil), w.records...)
	w.mu.Unlock()
	if len(mirrored) != len(mem) {
		t.Fatalf("sink has %d records, memory has %d", len(mirrored), len(mem))
	}
	for i := range mem {
		a, b := mem[i], mirrored[i]
		if a.Kind != b.Kind || a.Table != b.Table || a.Key != b.Key || a.TxID != b.TxID {
			t.Fatalf("record %d: memory %+v != sink %+v", i, a, b)
		}
	}
}

// TestGroupCommitCrashMidBatchReplaysOnlyCommitted simulates a crash that
// cuts the log inside a commit group: the transaction whose commit mark
// was lost must vanish entirely on Recover (both of its rows), while
// every transaction whose mark survived is replayed whole — batching must
// not weaken per-transaction atomicity.
func TestGroupCommitCrashMidBatchReplaysOnlyCommitted(t *testing.T) {
	w := NewWALWithSink(io.Discard)
	w.SetCommitWindow(time.Millisecond)
	d := New(w)
	if err := d.CreateTable(userSchema()); err != nil {
		t.Fatal(err)
	}
	const workers, per = 4, 10
	runConcurrentCommits(t, d, workers, per)

	// The log always ends with a commit mark (writes+mark append
	// atomically); dropping it leaves that transaction's two inserts
	// mark-less — the crash-mid-batch shape.
	w.mu.Lock()
	last := w.records[len(w.records)-1]
	w.mu.Unlock()
	if last.Kind != recCommitMark {
		t.Fatalf("log does not end with a commit mark: %+v", last)
	}
	victim := last.TxID
	w.TruncateTail(1)

	// The victim's orphaned writes must still be in the damaged log.
	var victimKeys []int64
	w.mu.Lock()
	for _, rec := range w.records {
		if rec.Kind == recInsert && rec.TxID == victim {
			victimKeys = append(victimKeys, rec.Key)
		}
	}
	w.mu.Unlock()
	if len(victimKeys) != 2 {
		t.Fatalf("victim tx %d has %d insert records in the log, want 2", victim, len(victimKeys))
	}

	d.Crash()
	if err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	n, err := d.RowCount("users")
	if err != nil {
		t.Fatal(err)
	}
	if want := (workers*per - 1) * 2; n != want {
		t.Fatalf("rows after recovery = %d, want %d (exactly the marked transactions)", n, want)
	}
	tx := mustBegin(t, d)
	defer tx.Abort()
	for _, k := range victimKeys {
		if _, err := tx.Get("users", k); err == nil {
			t.Fatalf("victim row %d survived recovery without its commit mark", k)
		}
	}
}
