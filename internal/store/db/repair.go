package db

import (
	"fmt"
	"sort"
)

// Corruption support and table repair.
//
// The fault-injection campaign of Table 2 corrupts database table contents
// "by manually altering table contents" — bypassing the transactional
// API — and observes that recovery requires database table repair (no
// reboot level fixes it). These entry points reproduce that: CorruptRow
// replaces a live row with a damaged copy without validation or logging,
// CheckTable detects schema violations, and RepairTable restores the
// damaged table from the authoritative WAL history.

// CorruptRow overwrites one column of a committed row, bypassing
// validation, locking and the WAL — as a stray pointer or operator error
// would. It returns the previous value.
//
// The damage is installed copy-on-write (clone, mutate the clone, swap it
// in) so lock-free readers holding the old row never observe a torn
// write; they simply keep the pre-corruption value, as a racing read
// would under any serialization.
func (d *DB) CorruptRow(tableName string, key int64, column string, value any) (any, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed.Load() {
		return nil, ErrCrashed
	}
	tbl, ok := d.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	row, ok := tbl.rows[key]
	if !ok {
		return nil, fmt.Errorf("%w: %d in %s", ErrNoRow, key, tableName)
	}
	old := row[column]
	damaged := row.clone()
	damaged[column] = value
	tbl.indexRemove(key, row)
	tbl.rows[key] = damaged
	tbl.indexAdd(key, damaged)
	d.cache.invalidate(tableName, key)
	return old, nil
}

// SwapRows swaps the contents of two rows ("wrong value" corruption: data
// that is valid from the schema's point of view but semantically wrong,
// e.g. swapping IDs between two users).
func (d *DB) SwapRows(tableName string, a, b int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed.Load() {
		return ErrCrashed
	}
	tbl, ok := d.tables[tableName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	ra, ok := tbl.rows[a]
	if !ok {
		return fmt.Errorf("%w: %d in %s", ErrNoRow, a, tableName)
	}
	rb, ok := tbl.rows[b]
	if !ok {
		return fmt.Errorf("%w: %d in %s", ErrNoRow, b, tableName)
	}
	tbl.indexRemove(a, ra)
	tbl.indexRemove(b, rb)
	tbl.rows[a], tbl.rows[b] = rb, ra
	tbl.indexAdd(a, rb)
	tbl.indexAdd(b, ra)
	d.cache.invalidate(tableName, a)
	d.cache.invalidate(tableName, b)
	return nil
}

// CheckTable validates every row of a table against its schema and
// returns the keys of rows that fail ("null" and "invalid" corruption are
// detectable this way; "wrong value" corruption is not, which is why the
// paper marks those cases as requiring manual repair). It only reads, so
// it runs under the shared lock, concurrent with live traffic.
func (d *DB) CheckTable(tableName string) ([]int64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.crashed.Load() {
		return nil, ErrCrashed
	}
	tbl, ok := d.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	var bad []int64
	for key, row := range tbl.rows {
		if err := tbl.validate(row); err != nil {
			bad = append(bad, key)
		}
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i] < bad[j] })
	return bad, nil
}

// RepairTable rebuilds a single table from the WAL's committed history,
// discarding any unlogged (corrupted) modifications. It returns the number
// of rows restored. This is the "database table repair" recovery action of
// Table 2.
func (d *DB) RepairTable(tableName string) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed.Load() {
		return 0, ErrCrashed
	}
	old, ok := d.tables[tableName]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	fresh := newTable(old.schema)
	for _, rec := range d.wal.committed() {
		if rec.Table != tableName {
			continue
		}
		switch rec.Kind {
		case recInsert, recUpdate:
			if prev, ok := fresh.rows[rec.Key]; ok {
				fresh.indexRemove(rec.Key, prev)
			}
			fresh.rows[rec.Key] = rec.Row.clone()
			fresh.indexAdd(rec.Key, rec.Row)
			if rec.Key >= fresh.nextKey {
				fresh.nextKey = rec.Key + 1
			}
		case recDelete:
			if prev, ok := fresh.rows[rec.Key]; ok {
				fresh.indexRemove(rec.Key, prev)
				delete(fresh.rows, rec.Key)
			}
		}
	}
	// Preserve the key allocator high-water mark.
	if old.nextKey > fresh.nextKey {
		fresh.nextKey = old.nextKey
	}
	d.tables[tableName] = fresh
	// Every cached row of this table may now differ from the rebuilt
	// truth; drop the whole cache rather than track per-table membership.
	d.cache.reset()
	return len(fresh.rows), nil
}
