package db

import (
	"sync"
	"sync/atomic"
)

// rowCache is a sharded read-through cache over committed rows, keyed
// (table, key). It exists for the hot point lookups of the read-heavy
// eBid mix (ViewItem/ViewUser), where the map probe under the table
// RWMutex is the remaining cost.
//
// Consistency protocol (what keeps a hit from ever being stale):
//
//   - fills happen only while the filler holds db.mu's READ side, so a
//     fill can never interleave with a commit's apply step;
//   - Commit deletes every written (table,key) while still holding
//     db.mu's WRITE side, before the commit returns;
//   - Crash/Recover/RepairTable clear the whole cache under the write
//     side; CorruptRow/SwapRows invalidate the affected keys.
//
// A reader that hits the cache without taking db.mu therefore observes a
// value at least as new as the last commit that returned — i.e. the
// cache is linearizable with respect to committed writes.
const rowCacheShards = 32

// rowCacheShardCap bounds resident entries per shard (~64K rows total),
// enough for the hot set of the eBid dataset without unbounded growth.
const rowCacheShardCap = 2048

type rowCacheKey struct {
	table string
	key   int64
}

type rowCacheShard struct {
	mu sync.RWMutex
	m  map[rowCacheKey]Row
	// hit/miss counters live per shard so the read path never bounces a
	// single global cache line.
	hits   atomic.Uint64
	misses atomic.Uint64
}

type rowCache struct {
	shards [rowCacheShards]rowCacheShard
}

func rowCacheHash(table string, key int64) uint64 {
	// FNV-1a over the table name, then mix in the row key.
	h := uint64(14695981039346656037)
	for i := 0; i < len(table); i++ {
		h = (h ^ uint64(table[i])) * 1099511628211
	}
	h ^= uint64(key)
	h *= 1099511628211
	return h
}

func (c *rowCache) shard(table string, key int64) *rowCacheShard {
	return &c.shards[rowCacheHash(table, key)%rowCacheShards]
}

func (c *rowCache) get(table string, key int64) (Row, bool) {
	s := c.shard(table, key)
	s.mu.RLock()
	r, ok := s.m[rowCacheKey{table, key}]
	s.mu.RUnlock()
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return r, ok
}

// put installs a committed row. Callers must hold db.mu (read side is
// enough — see the protocol above).
func (c *rowCache) put(table string, key int64, r Row) {
	s := c.shard(table, key)
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[rowCacheKey]Row, 64)
	}
	if len(s.m) >= rowCacheShardCap {
		// Evict an arbitrary entry; the map's iteration order gives us a
		// cheap pseudo-random victim.
		for k := range s.m {
			delete(s.m, k)
			break
		}
	}
	s.m[rowCacheKey{table, key}] = r
	s.mu.Unlock()
}

// invalidate drops one key. Callers must hold db.mu's write side.
func (c *rowCache) invalidate(table string, key int64) {
	s := c.shard(table, key)
	s.mu.Lock()
	delete(s.m, rowCacheKey{table, key})
	s.mu.Unlock()
}

// reset drops everything. Callers must hold db.mu's write side.
func (c *rowCache) reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		clear(s.m)
		s.mu.Unlock()
	}
}

func (c *rowCache) stats() (hits, misses uint64, entries int) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		entries += len(s.m)
		s.mu.RUnlock()
		hits += s.hits.Load()
		misses += s.misses.Load()
	}
	return hits, misses, entries
}
